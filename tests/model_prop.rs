//! Property tests for the static analytical performance model
//! ([`gpu_sim::model`]) over randomly synthesized mechanisms: predictions
//! are deterministic (bit-stable, integer cycle counts), the per-warp
//! component terms sum *exactly* to the predicted total (the profiler's
//! closed-set invariant, inherited by construction), and the predicted
//! total never undercuts the issue cycles it is built from.

use chemkin::reference::tables::{DiffusionTables, ViscosityTables};
use chemkin::synth;
use gpu_sim::arch::GpuArch;
use gpu_sim::model::predict;
use proptest::prelude::*;
use singe::config::CompileOptions;
use singe::{Compiler, Variant};

/// Compile a warp-specialized kernel for a synthesized mechanism.
fn synth_kernel(
    n_species: usize,
    seed: u64,
    diffusion: bool,
    warps: usize,
    arch: &GpuArch,
) -> gpu_sim::isa::Kernel {
    let m = synth::via_text(&synth::SynthConfig {
        name: format!("mp{n_species}_{seed}"),
        n_species,
        n_reactions: n_species * 2,
        n_qssa: 0,
        n_stiff: 0,
        seed,
    });
    let dfg = if diffusion {
        singe::kernels::diffusion::diffusion_dfg(&DiffusionTables::build(&m), warps)
    } else {
        singe::kernels::viscosity::viscosity_dfg(&ViscosityTables::build(&m), warps)
    };
    Compiler::new(arch)
        .options(CompileOptions::with_warps(warps))
        .compile(&dfg, Variant::WarpSpecialized)
        .expect("synth kernel compiles")
        .kernel
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn model_invariants_hold_on_synth_mechanisms(
        n_species in 4usize..9,
        seed in 0u64..1000,
        diffusion in proptest::bool::ANY,
        warps in 2usize..6,
        kepler in proptest::bool::ANY,
    ) {
        let arch = if kepler { GpuArch::kepler_k20c() } else { GpuArch::fermi_c2070() };
        let kernel = synth_kernel(n_species, seed, diffusion, warps, &arch);

        let a = predict(&kernel, &arch).expect("model accepts compiled kernels");
        let b = predict(&kernel, &arch).expect("model accepts compiled kernels");

        // Determinism: integer cycle counts, bit-stable across calls.
        prop_assert_eq!(a.cta.total_cycles, b.cta.total_cycles);
        for (wa, wb) in a.cta.warps.iter().zip(&b.cta.warps) {
            prop_assert_eq!(wa.issue, wb.issue);
            prop_assert_eq!(&wa.barrier_wait, &wb.barrier_wait);
            prop_assert_eq!(wa.icache_miss, wb.icache_miss);
            prop_assert_eq!(wa.const_replay, wb.const_replay);
            prop_assert_eq!(wa.overhead, wb.overhead);
            prop_assert_eq!(wa.idle, wb.idle);
        }
        prop_assert_eq!(&a.counts, &b.counts);

        // Closed-set attribution: every warp's component terms sum
        // exactly to the predicted CTA total.
        a.cta.check_attribution().expect("attribution sums per warp");
        for wc in &a.cta.warps {
            let sum = wc.issue
                + wc.barrier_wait.iter().sum::<u64>()
                + wc.icache_miss
                + wc.const_replay
                + wc.overhead
                + wc.idle;
            prop_assert_eq!(sum, a.cta.total_cycles);
        }

        // The warp-group rollup partitions the warps: group cycles sum to
        // the per-warp cycles, every warp appears exactly once.
        let mut seen = vec![false; a.cta.warps.len()];
        let mut group_issue = 0u64;
        for g in &a.groups {
            group_issue += g.cycles.issue;
            for &w in &g.warps {
                prop_assert!(!seen[w], "warp {} in two groups", w);
                seen[w] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "every warp grouped");
        prop_assert_eq!(group_issue, a.cta.warps.iter().map(|w| w.issue).sum::<u64>());

        // The predicted total can never undercut any warp's issue
        // cycles — waiting and stalls only add on top.
        let max_issue = a.cta.warps.iter().map(|w| w.issue).max().unwrap_or(0);
        prop_assert!(a.cta.total_cycles >= max_issue);
        prop_assert!(a.cta.total_cycles > 0);
    }
}
