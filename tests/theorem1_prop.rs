//! Property test of the whole warp-specializing pipeline: random dataflow
//! graphs are mapped, scheduled (Theorem 1), barrier-allocated, overlaid,
//! and executed on the simulator — they must never deadlock and must match
//! a host evaluation of the same graph.

use proptest::prelude::*;
use singe::{Compiler, Variant};
use singe::config::{CompileOptions, Placement};
use singe::dfg::{Dfg, Operation};
use singe::expr::{eval, Expr, RowRef, Stmt};
use gpu_sim::arch::GpuArch;
use gpu_sim::isa::ArrayDecl;
use gpu_sim::launch::{launch, LaunchInputs, LaunchMode};

/// Build a random layered DAG: `layers x width` ops, each combining 1-2
/// values from earlier layers with a per-op constant; final op stores a
/// combination of the last layer.
fn random_dfg(layers: usize, width: usize, seeds: Vec<u32>) -> Dfg {
    let mut ops = Vec::new();
    let mut var: u32 = 0;
    let mut prev: Vec<u32> = Vec::new();
    let mut s = seeds.into_iter().cycle();
    let mut nexts = move || s.next().unwrap();
    for layer in 0..layers {
        let mut cur = Vec::new();
        for wi in 0..width {
            let v = var;
            var += 1;
            let e = if layer == 0 {
                Expr::Input { array: 0, row: RowRef::Fixed(0) }
                    .mul(Expr::Const(0))
                    .add(Expr::Lit(1.0))
            } else {
                let a = prev[(nexts() as usize) % prev.len()];
                let b = prev[(nexts() as usize) % prev.len()];
                // Keep values bounded: average then scale by a constant.
                Expr::Var(a).add(Expr::Var(b)).mul(Expr::Lit(0.5)).mul(Expr::Const(0))
            };
            ops.push(Operation {
                name: format!("op{layer}_{wi}"),
                body: vec![Stmt::DefVar(v, e)],
                n_locals: 0,
                consts: vec![0.5 + ((nexts() % 100) as f64) / 100.0],
                irows: vec![],
                pinned_warp: None,
                phase: layer as u32,
            });
            cur.push(v);
        }
        prev = cur;
    }
    let sum = prev.iter().fold(Expr::Lit(0.0), |a, &v| a.add(Expr::Var(v)));
    ops.push(Operation {
        name: "store".into(),
        body: vec![Stmt::Store { array: 1, row: RowRef::Fixed(0), value: sum }],
        n_locals: 0,
        consts: vec![],
        irows: vec![],
        pinned_warp: None,
        phase: layers as u32,
    });
    Dfg {
        name: "prop".into(),
        ops,
        n_vars: var,
        arrays: vec![
            ArrayDecl { name: "in".into(), rows: 1, output: false },
            ArrayDecl { name: "out".into(), rows: 1, output: true },
        ],
        force_shared: vec![],
    }
}

/// Host evaluation of the random DAG for one input value.
fn host_eval(dfg: &Dfg, input: f64) -> f64 {
    let order = dfg.topo_order().unwrap();
    let mut vars = vec![0.0f64; dfg.n_vars as usize];
    let mut out = 0.0;
    for o in order {
        let op = &dfg.ops[o];
        for s in &op.body {
            match s {
                Stmt::DefVar(v, e) => {
                    vars[*v as usize] =
                        eval(e, &op.consts, &[], &|x| vars[x as usize], &|_, _| input);
                }
                Stmt::Store { value, .. } => {
                    out = eval(value, &op.consts, &[], &|x| vars[x as usize], &|_, _| input);
                }
                Stmt::Local(..) => unreachable!(),
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn pipeline_never_deadlocks_and_matches_host(
        layers in 1usize..5,
        width in 1usize..6,
        warps in 1usize..6,
        buffered in proptest::bool::ANY,
        seeds in proptest::collection::vec(0u32..1000, 8..32),
    ) {
        let dfg = random_dfg(layers, width, seeds);
        let placement = if buffered { Placement::Buffer(8) } else { Placement::Store };
        let opts =
            CompileOptions::builder().warps(warps).point_iters(2).placement(placement).build();
        let arch = GpuArch::kepler_k20c();
        // Tiny buffer pools may legally be infeasible; everything else
        // must compile.
        let compiled = match Compiler::new(&arch).options(opts).compile(&dfg, Variant::WarpSpecialized) {
            Ok(c) => c,
            Err(singe::CompileError::ResourceExhausted(_)) if buffered => return Ok(()),
            Err(e) => panic!("compile failed: {e}"),
        };
        let points = compiled.kernel.points_per_cta;
        let input: Vec<f64> = (0..points).map(|i| 1.0 + i as f64 * 0.125).collect();
        // Deadlock would be reported as an error here (Theorem 1 property).
        let out = launch(
            &compiled.kernel,
            &arch,
            &LaunchInputs { arrays: vec![&input, &[]] },
            points,
            LaunchMode::Full,
        ).expect("no deadlock, no memory faults");
        for (p, &x) in input.iter().enumerate() {
            let want = host_eval(&dfg, x);
            let got = out.outputs[1][p];
            prop_assert!(
                (got - want).abs() <= 1e-9 * want.abs().max(1.0),
                "point {p}: got {got}, want {want}"
            );
        }
    }
}
