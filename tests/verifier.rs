//! Integration tests for the independent schedule verifier: the Figure 2
//! protocol (clean and deliberately broken), resource overflows, and a
//! sweep asserting every end-to-end kernel the compilers emit passes.

use chemkin::reference::tables::DiffusionTables;
use chemkin::synth;
use gpu_sim::arch::GpuArch;
use gpu_sim::isa::*;
use gpu_sim::launch::{launch, LaunchInputs, LaunchMode};
use singe::config::{CompileOptions, Placement};
use singe::kernels::{chemistry, diffusion, viscosity};
use singe::{Compiler, Variant};
use singe::verify::{verify_kernel, ViolationKind};
use singe::{CompileError, VerifyLevel};

/// Figure 2's producer/consumer protocol over a point loop. When
/// `swap_arrive_sync` each warp syncs *before* the partner's arrive can
/// execute (sync-first instead of arrive-first) — the classic circular
/// wait.
fn figure2_kernel(iters: u32, swap_arrive_sync: bool) -> Kernel {
    // Wait for "buffer empty", fill, signal "full".
    let producer = vec![
        Node::Op(Instr::BarSync { bar: 0, warps: 2 }),
        Node::Op(Instr::StShared { src: Op::Imm(1.0), addr: SAddr::lane(0), lane_pred: None }),
        Node::Op(Instr::BarArrive { bar: 1, warps: 2 }),
    ];
    let consumer = if swap_arrive_sync {
        vec![
            Node::Op(Instr::BarSync { bar: 1, warps: 2 }),
            Node::Op(Instr::LdShared { dst: 0, addr: SAddr::lane(0) }),
            Node::Op(Instr::BarArrive { bar: 0, warps: 2 }),
        ]
    } else {
        vec![
            // Signal "buffer empty", wait for "full", drain.
            Node::Op(Instr::BarArrive { bar: 0, warps: 2 }),
            Node::Op(Instr::BarSync { bar: 1, warps: 2 }),
            Node::Op(Instr::LdShared { dst: 0, addr: SAddr::lane(0) }),
        ]
    };
    let body = if swap_arrive_sync {
        // Producer's WarpIf first so its sync runs before the consumer's
        // arrive could ever execute.
        vec![Node::PointLoop {
            iters,
            body: vec![
                Node::WarpIf { mask: 0b01, body: producer },
                Node::WarpIf { mask: 0b10, body: consumer },
            ],
        }]
    } else {
        vec![Node::PointLoop {
            iters,
            body: vec![
                Node::WarpIf { mask: 0b10, body: consumer },
                Node::WarpIf { mask: 0b01, body: producer },
            ],
        }]
    };
    Kernel {
        name: if swap_arrive_sync { "fig2_swapped".into() } else { "fig2".into() },
        body,
        warps_per_cta: 2,
        points_per_cta: 32 * iters as usize,
        dregs_per_thread: 2,
        iregs_per_thread: 1,
        shared_words: 32,
        local_words_per_thread: 0,
        const_banks: vec![],
        iconst_banks: vec![],
        barriers_used: 2,
        global_arrays: vec![],
        spilled_bytes_per_thread: 0,
        exp_const_from_registers: false,
    }
}

#[test]
fn figure2_protocol_verifies_clean() {
    let k = figure2_kernel(20, false);
    let arch = GpuArch::kepler_k20c();
    let r = verify_kernel(&k, &arch).expect("Figure 2 protocol is safe");
    assert_eq!(r.warps, 2);
    assert_eq!(r.barrier_ids, 2);
    // One generation per barrier per iteration.
    assert_eq!(r.generations, 2 * 20);
}

#[test]
fn figure2_with_swapped_arrive_sync_deadlocks() {
    let k = figure2_kernel(20, true);
    let arch = GpuArch::kepler_k20c();
    let errs = verify_kernel(&k, &arch).unwrap_err();
    assert!(errs.iter().any(|v| v.kind == ViolationKind::Deadlock), "{errs:?}");
    // Cross-check: the simulator's scheduler agrees this kernel hangs.
    let sim = launch(&k, &arch, &LaunchInputs { arrays: vec![] }, k.points_per_cta, LaunchMode::Full);
    assert!(sim.is_err(), "simulator should also report a deadlock");
}

#[test]
fn barrier_id_overflow_is_rejected() {
    let mut k = figure2_kernel(1, false);
    // Rewrite barrier 1 to an id beyond the architecture's barrier file.
    fn rewrite(nodes: &mut [Node]) {
        for n in nodes {
            match n {
                Node::Op(Instr::BarArrive { bar, .. }) | Node::Op(Instr::BarSync { bar, .. })
                    if *bar == 1 => {
                        *bar = 20;
                    }
                Node::WarpIf { body, .. } => rewrite(body),
                Node::WarpSwitch { cases, .. } => {
                    for c in cases {
                        rewrite(c);
                    }
                }
                Node::Loop { body, .. } | Node::PointLoop { body, .. } => rewrite(body),
                _ => {}
            }
        }
    }
    rewrite(&mut k.body);
    k.barriers_used = 21;
    let arch = GpuArch::kepler_k20c();
    let errs = verify_kernel(&k, &arch).unwrap_err();
    assert!(
        errs.iter().any(|v| v.kind == ViolationKind::Resource && v.msg.contains("barrier id 20")),
        "{errs:?}"
    );
}

/// Slot recycling across PointLoop generations: the consumer frees the
/// producer's buffer *before* loading from it, so the next generation's
/// store overlaps the previous generation's load — flagged as a race,
/// while the corrected ordering verifies clean.
#[test]
fn generation_recycling_race_flagged_and_fix_accepted() {
    let build = |load_before_free: bool| {
        let mut consumer = vec![Node::Op(Instr::BarSync { bar: 0, warps: 2 })];
        if load_before_free {
            consumer.push(Node::Op(Instr::LdShared { dst: 0, addr: SAddr::lane(0) }));
            consumer.push(Node::Op(Instr::BarArrive { bar: 1, warps: 2 }));
        } else {
            consumer.push(Node::Op(Instr::BarArrive { bar: 1, warps: 2 }));
            consumer.push(Node::Op(Instr::LdShared { dst: 0, addr: SAddr::lane(0) }));
        }
        let mut k = figure2_kernel(4, false);
        k.body = vec![Node::PointLoop {
            iters: 4,
            body: vec![
                Node::WarpIf {
                    mask: 0b01,
                    body: vec![
                        Node::Op(Instr::StShared {
                            src: Op::Imm(1.0),
                            addr: SAddr::lane(0),
                            lane_pred: None,
                        }),
                        Node::Op(Instr::BarArrive { bar: 0, warps: 2 }),
                        Node::Op(Instr::BarSync { bar: 1, warps: 2 }),
                    ],
                },
                Node::WarpIf { mask: 0b10, body: consumer },
            ],
        }];
        k
    };
    let arch = GpuArch::kepler_k20c();
    let errs = verify_kernel(&build(false), &arch).unwrap_err();
    assert!(errs.iter().any(|v| v.kind == ViolationKind::Race), "{errs:?}");
    assert!(!errs.iter().any(|v| v.kind == ViolationKind::Deadlock), "{errs:?}");
    verify_kernel(&build(true), &arch).expect("corrected ordering is clean");
}

/// Every kernel from all three compilers, across both architectures and
/// all three kernel families, verifies clean.
#[test]
fn all_end_to_end_kernels_verify_clean() {
    let m = synth::dme();
    let archs = [GpuArch::fermi_c2070(), GpuArch::kepler_k20c()];
    for arch in &archs {
        for kind in 0..3 {
            let warps = 4;
            let (dfg, placement) = match kind {
                0 => (
                    viscosity::viscosity_dfg(
                        &chemkin::reference::tables::ViscosityTables::build(&m),
                        warps,
                    ),
                    Placement::Store,
                ),
                1 => (
                    diffusion::diffusion_dfg(
                        &chemkin::reference::tables::DiffusionTables::build(&m),
                        warps,
                    ),
                    Placement::Mixed(128),
                ),
                _ => (
                    chemistry::chemistry_dfg(
                        &chemkin::reference::tables::ChemistrySpec::build(&m),
                        warps,
                    ),
                    Placement::Buffer(128),
                ),
            };
            let opts = CompileOptions::builder()
                .warps(warps)
                .point_iters(2)
                .placement(placement)
                .build();
            // The compiler already enforces VerifyLevel::Basic internally;
            // re-run the verifier explicitly to assert a clean report.
            let c = Compiler::new(arch).options(opts);
            let ws = c.compile(&dfg, Variant::WarpSpecialized).expect("ws compiles");
            verify_kernel(&ws.kernel, arch).expect("ws verifies");
            let nv = c.compile(&dfg, Variant::Naive).expect("naive compiles");
            verify_kernel(&nv.kernel, arch).expect("naive verifies");
            let bl = c.compile(&dfg, Variant::Baseline).expect("baseline compiles");
            verify_kernel(&bl.kernel, arch).expect("baseline verifies");
        }
    }
}

/// §6.2: the unsafe barrier-removal ablation compiles under Basic (so the
/// timing study still runs) but is rejected under Strict.
#[test]
fn strict_rejects_barrier_ablation() {
    let m = synth::via_text(&synth::SynthConfig {
        name: "abl".into(),
        n_species: 10,
        n_reactions: 12,
        n_qssa: 0,
        n_stiff: 0,
        seed: 6,
    });
    let dfg = diffusion::diffusion_dfg(&DiffusionTables::build(&m), 4);
    let arch = GpuArch::fermi_c2070();
    let mut opts = CompileOptions::builder()
        .warps(4)
        .point_iters(2)
        .placement(Placement::Mixed(96))
        .unsafe_remove_barriers(true)
        .build();
    assert!(matches!(opts.verify, VerifyLevel::Basic));
    Compiler::new(&arch)
        .options(opts.clone())
        .compile(&dfg, Variant::WarpSpecialized)
        .expect("Basic waives the deliberate ablation");

    opts.verify = VerifyLevel::Strict;
    let err = Compiler::new(&arch)
        .options(opts)
        .compile(&dfg, Variant::WarpSpecialized)
        .unwrap_err();
    assert!(matches!(err, CompileError::Verification(_)), "{err}");
    // The new error plumbing exposes the verification payload through
    // `std::error::Error::source`.
    let src = std::error::Error::source(&err).expect("Verification carries a source");
    assert!(src.to_string().contains("schedule verification"), "{src}");
}
