//! Schedule-search property battery ([`singe::search`]).
//!
//! Three property families, all on small synthetic mechanisms so the
//! full space stays enumerable:
//!
//! * **Exhaustive equivalence**: beam search with a full-width beam and
//!   a full simulation budget must land on exactly the exhaustive
//!   sweep's winner (bit-identical simulated seconds) over the same
//!   enumerated space — the beam is a pruning of the sweep, never a
//!   different optimum.
//! * **Determinism**: search results (winner, every predicted and
//!   simulated value, evaluation order) are bit-stable across `--jobs 1`
//!   vs `--jobs 8`.
//! * **Safety**: every schedule the search returns — the winner and
//!   every oracle-simulated survivor — passes the independent PR 1
//!   verifier at `Strict`.

use chemkin::reference::tables::ViscosityTables;
use chemkin::state::{GridDims, GridState};
use chemkin::synth;
use gpu_sim::arch::GpuArch;
use singe::autotune::autotune_with_jobs;
use singe::config::{CompileOptions, Placement};
use singe::kernels::launch_arrays;
use singe::kernels::viscosity::viscosity_dfg;
use singe::search::{
    autotune_search_in_space_with_jobs, autotune_search_with_jobs, BeamSearch, SearchBudget,
    SearchSpace,
};
use singe::verify::verify_kernel;
use singe::VerifyLevel;

fn synth_mech(n_species: usize, seed: u64) -> chemkin::Mechanism {
    synth::via_text(&synth::SynthConfig {
        name: format!("sp{n_species}_{seed}"),
        n_species,
        n_reactions: n_species * 2,
        n_qssa: 0,
        n_stiff: 0,
        seed,
    })
}

fn inputs_for(n_species: usize) -> impl Fn(&gpu_sim::isa::Kernel, usize) -> Vec<Vec<f64>> + Sync {
    move |k: &gpu_sim::isa::Kernel, pts: usize| {
        let g = GridState::random(GridDims { nx: pts, ny: 1, nz: 1 }, n_species, 1234);
        launch_arrays(&k.global_arrays, &g)
            .expect("known arrays")
            .iter()
            .map(|s| s.to_vec())
            .collect()
    }
}

/// A small space whose exhaustive enumeration stays cheap: two warp
/// counts, two stream depths, one placement, the uniform-reads toggle.
fn small_space(arch: &GpuArch) -> SearchSpace {
    let mut space = SearchSpace::for_arch(arch);
    space.warps = vec![3, 4];
    space.point_iters = vec![1, 2];
    space.placements = vec![Placement::Store];
    space.pipeline_depths = vec![1, 2];
    space.w_flops = vec![1.0];
    space.w_regs = vec![0.5];
    space.w_locality = vec![0.25];
    space.toggle_uniform_shared_reads = true;
    space.toggle_exp_const = false;
    space
}

#[test]
fn full_width_beam_matches_the_exhaustive_sweep() {
    let mech = synth_mech(6, 41);
    let t = ViscosityTables::build(&mech);
    let dfg = viscosity_dfg(&t, 3);
    let arch = GpuArch::kepler_k20c();
    let space = small_space(&arch);
    // On-lattice base: off-lattice bases are legal (the search admits
    // them as extra seeds), but the equality property wants the beam's
    // reachable set to be exactly the enumerated space.
    let base = CompileOptions::builder().warps(3).point_iters(2).build();
    let inputs = inputs_for(6);

    // The exhaustive sweep over the whole enumerated space: every
    // candidate compiled and simulated.
    let all = space.enumerate(&base);
    assert!(all.len() >= 8 && all.len() <= 32, "space should be small, got {}", all.len());
    let sweep = autotune_with_jobs(&dfg, &arch, &all, 256, &inputs, 2).expect("sweep runs");
    let sweep_best =
        sweep.points.iter().filter_map(|p| p.seconds).fold(f64::INFINITY, f64::min);

    // Full-width beam, full simulation budget: the beam prunes nothing,
    // so its oracle must see (at least) every candidate the sweep ran.
    let budget = SearchBudget::builder()
        .beam_width(all.len())
        .rounds(8)
        .sim_top_k(all.len())
        .max_model_evals(10 * all.len())
        .build();
    let search = autotune_search_in_space_with_jobs(
        &dfg, &arch, &space, &base, &BeamSearch, &budget, 256, &inputs, 2,
    )
    .expect("search runs");
    assert_eq!(
        search.outcome.best_seconds.to_bits(),
        sweep_best.to_bits(),
        "full-width beam winner {} != exhaustive winner {}",
        search.outcome.best_seconds,
        sweep_best
    );
    // And the beam reached the whole space.
    assert_eq!(search.outcome.model_evals, all.len());
}

#[test]
fn search_is_bit_stable_across_worker_counts() {
    let mech = synth_mech(6, 42);
    let t = ViscosityTables::build(&mech);
    let dfg = viscosity_dfg(&t, 3);
    let arch = GpuArch::kepler_k20c();
    let base = CompileOptions::with_warps(3);
    let budget =
        SearchBudget::builder().beam_width(4).rounds(2).sim_top_k(3).max_model_evals(72).build();
    let inputs = inputs_for(6);

    let a = autotune_search_with_jobs(&dfg, &arch, &base, &budget, 256, &inputs, 1)
        .expect("search at jobs=1");
    let b = autotune_search_with_jobs(&dfg, &arch, &base, &budget, 256, &inputs, 8)
        .expect("search at jobs=8");

    assert_eq!(format!("{:?}", a.outcome.best_options), format!("{:?}", b.outcome.best_options));
    assert_eq!(a.outcome.best_seconds.to_bits(), b.outcome.best_seconds.to_bits());
    assert_eq!(a.outcome.model_evals, b.outcome.model_evals);
    assert_eq!(a.outcome.simulations, b.outcome.simulations);
    assert_eq!(a.outcome.points.len(), b.outcome.points.len());
    for (pa, pb) in a.outcome.points.iter().zip(&b.outcome.points) {
        assert_eq!(format!("{:?}", pa.options), format!("{:?}", pb.options));
        assert_eq!(
            pa.predicted_seconds.map(f64::to_bits),
            pb.predicted_seconds.map(f64::to_bits)
        );
        assert_eq!(
            pa.simulated_seconds.map(f64::to_bits),
            pb.simulated_seconds.map(f64::to_bits)
        );
        assert_eq!(pa.round, pb.round);
    }
}

#[test]
fn every_returned_schedule_passes_strict_verification() {
    let mech = synth_mech(8, 43);
    let t = ViscosityTables::build(&mech);
    let dfg = viscosity_dfg(&t, 4);
    let inputs = inputs_for(8);
    for arch in [GpuArch::kepler_k20c(), GpuArch::hopper()] {
        let base = CompileOptions::with_warps(4);
        let budget = SearchBudget::builder()
            .beam_width(4)
            .rounds(2)
            .sim_top_k(4)
            .max_model_evals(64)
            .build();
        let search = autotune_search_with_jobs(&dfg, &arch, &base, &budget, 256, &inputs, 2)
            .expect("search runs");
        // The winner passes the independent verifier...
        assert!(
            verify_kernel(&search.best.kernel, &arch).is_ok(),
            "winner fails Strict verification on {}",
            arch.name
        );
        // ...and so does every oracle-simulated survivor, recompiled
        // with Strict enforcement turned on in the compiler itself.
        let compiler = singe::Compiler::new(&arch);
        for p in search.outcome.points.iter().filter(|p| p.simulated_seconds.is_some()) {
            let mut opts = p.options.clone();
            opts.verify = VerifyLevel::Strict;
            let c = compiler
                .clone()
                .options(opts)
                .compile(&dfg, singe::Variant::WarpSpecialized)
                .expect("simulated survivor recompiles under Strict");
            assert!(verify_kernel(&c.kernel, &arch).is_ok());
        }
    }
}
