//! Cross-crate integration: parse a mechanism from text, compile each
//! kernel with both compilers on both simulated architectures, execute on
//! the simulator, and compare against the CPU reference implementations.

use chemkin::reference::tables::{ChemistrySpec, DiffusionTables, ViscosityTables};
use chemkin::reference::{reference_chemistry, reference_diffusion, reference_viscosity};
use chemkin::state::{GridDims, GridState};
use chemkin::synth;
use gpu_sim::arch::GpuArch;
use gpu_sim::launch::{launch, LaunchInputs, LaunchMode};
use singe::config::{CompileOptions, Placement};
use singe::{Compiler, Variant};
use singe::kernels::{chemistry, diffusion, launch_arrays, viscosity};

fn mech() -> chemkin::Mechanism {
    synth::via_text(&synth::SynthConfig {
        name: "e2e".into(),
        n_species: 10,
        n_reactions: 18,
        n_qssa: 2,
        n_stiff: 3,
        seed: 2024,
    })
}

fn run(kernel: &gpu_sim::isa::Kernel, arch: &GpuArch, n: usize, seed: u64) -> (GridState, Vec<Vec<f64>>) {
    let points = kernel.points_per_cta * 2;
    let g = GridState::random(GridDims { nx: points, ny: 1, nz: 1 }, n, seed);
    let arrays = launch_arrays(&kernel.global_arrays, &g).expect("known arrays");
    let out = launch(kernel, arch, &LaunchInputs { arrays }, points, LaunchMode::Full)
        .expect("launch succeeds");
    (g, out.outputs)
}

#[test]
fn viscosity_all_compilers_all_archs() {
    let m = mech();
    let t = ViscosityTables::build(&m);
    for arch in [GpuArch::fermi_c2070(), GpuArch::kepler_k20c()] {
        let dfg = viscosity_dfg_for(&t, 4);
        let c = Compiler::new(&arch)
            .options(CompileOptions::builder().warps(4).point_iters(2).build());
        let ws = c.compile(&dfg, Variant::WarpSpecialized).unwrap();
        let base = Compiler::new(&arch)
            .options(CompileOptions::with_warps(2))
            .compile(&dfg, Variant::Baseline)
            .unwrap();
        for k in [&ws.kernel, &base.kernel] {
            let (g, outs) = run(k, &arch, t.n, 7);
            let expect = reference_viscosity(&t, &g);
            for (p, want) in expect.iter().enumerate() {
                let got = outs[viscosity::ARR_OUT as usize][p];
                assert!(((got - want) / want).abs() < 1e-10, "{}: {got} vs {want}", k.name);
            }
        }
    }
}

fn viscosity_dfg_for(t: &ViscosityTables, warps: usize) -> singe::Dfg {
    viscosity::viscosity_dfg(t, warps)
}

#[test]
fn diffusion_all_compilers_all_archs() {
    let m = mech();
    let t = DiffusionTables::build(&m);
    for arch in [GpuArch::fermi_c2070(), GpuArch::kepler_k20c()] {
        let dfg = diffusion::diffusion_dfg(&t, 3);
        let opts = CompileOptions::builder()
            .warps(3)
            .point_iters(2)
            .placement(Placement::Mixed(96))
            .build();
        let ws = Compiler::new(&arch).options(opts).compile(&dfg, Variant::WarpSpecialized).unwrap();
        let base = Compiler::new(&arch)
            .options(CompileOptions::with_warps(2))
            .compile(&dfg, Variant::Baseline)
            .unwrap();
        for k in [&ws.kernel, &base.kernel] {
            let (g, outs) = run(k, &arch, t.n, 8);
            let points = g.points();
            let expect = reference_diffusion(&t, &g);
            for s in 0..t.n {
                for p in 0..points {
                    let got = outs[diffusion::ARR_OUT as usize][s * points + p];
                    let want = expect[s * points + p];
                    assert!(((got - want) / want).abs() < 1e-10, "{}", k.name);
                }
            }
        }
    }
}

#[test]
fn chemistry_all_compilers_all_archs() {
    let m = mech();
    let spec = ChemistrySpec::build(&m);
    for arch in [GpuArch::fermi_c2070(), GpuArch::kepler_k20c()] {
        let dfg = chemistry::chemistry_dfg(&spec, 4);
        let opts = CompileOptions::builder()
            .warps(4)
            .point_iters(2)
            .placement(Placement::Buffer(120))
            .w_locality(1.0)
            .build();
        let ws = Compiler::new(&arch).options(opts).compile(&dfg, Variant::WarpSpecialized).unwrap();
        let base = Compiler::new(&arch)
            .options(CompileOptions::with_warps(2))
            .compile(&dfg, Variant::Baseline)
            .unwrap();
        for k in [&ws.kernel, &base.kernel] {
            let (g, outs) = run(k, &arch, spec.n_trans, 9);
            let points = g.points();
            let expect = reference_chemistry(&spec, &g);
            let scale = expect.iter().fold(0.0f64, |a, v| a.max(v.abs())).max(1e-300);
            for s in 0..spec.n_trans {
                for p in 0..points {
                    let got = outs[chemistry::ARR_OUT as usize][s * points + p];
                    let want = expect[s * points + p];
                    let tol = 1e-9 * (got.abs() + want.abs()) + 1e-9 * scale;
                    assert!((got - want).abs() <= tol, "{}: {got:e} vs {want:e}", k.name);
                }
            }
        }
    }
}

#[test]
fn warp_specialized_beats_baseline_where_the_paper_says() {
    // Shape check on the real DME mechanism: viscosity speedups hold on
    // both architectures, and Kepler's exceeds Fermi's (§6.1).
    let m = synth::dme();
    let t = ViscosityTables::build(&m);
    let mut speedups = Vec::new();
    for arch in [GpuArch::fermi_c2070(), GpuArch::kepler_k20c()] {
        let dfg = viscosity::viscosity_dfg(&t, 10);
        let opts = CompileOptions::builder().warps(10).point_iters(4).build();
        let ws = Compiler::new(&arch).options(opts).compile(&dfg, Variant::WarpSpecialized).unwrap();
        let base = Compiler::new(&arch)
            .options(CompileOptions::with_warps(8))
            .compile(&dfg, Variant::Baseline)
            .unwrap();
        let mut tp = Vec::new();
        for k in [&base.kernel, &ws.kernel] {
            let points = k.points_per_cta;
            let g = GridState::random(GridDims { nx: points, ny: 1, nz: 1 }, t.n, 3);
            let arrays = launch_arrays(&k.global_arrays, &g).expect("known arrays");
            let out = launch(k, &arch, &LaunchInputs { arrays }, points, LaunchMode::Full).unwrap();
            let r = gpu_sim::timing::estimate(k, &arch, &out.report.counts, 64 * 64 * 64);
            tp.push(r.points_per_sec);
        }
        assert!(tp[1] > tp[0], "{}: ws {} <= baseline {}", arch.name, tp[1], tp[0]);
        speedups.push(tp[1] / tp[0]);
    }
    assert!(speedups[1] > speedups[0], "Kepler speedup should exceed Fermi: {speedups:?}");
}
