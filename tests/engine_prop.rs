//! Differential property tests for the segment-compiled execution engine
//! (`gpu-sim`'s fast path behind `run_cta`) against the reference
//! interpreter (`run_cta_profiled` with no profiler), over randomly
//! synthesized mechanisms and all three compiler variants:
//!
//! * outputs are **bit-identical** (`f64::to_bits`, not approximate), and
//!   `EventCounts` are equal field-for-field — the engine's bulk
//!   per-segment accounting must reproduce per-instruction bookkeeping
//!   exactly;
//! * full-grid launches are byte-identical between `jobs = 1` and
//!   `jobs = 8` with the parallel CTA fan-out enabled — the ordered pool
//!   must never let worker count leak into results.

use chemkin::reference::tables::{DiffusionTables, ViscosityTables};
use chemkin::state::{GridDims, GridState};
use chemkin::synth;
use gpu_sim::arch::GpuArch;
use gpu_sim::interp::{run_cta, run_cta_profiled};
use gpu_sim::{flatten_cached, LaunchConfig, LaunchInputs, LaunchMode};
use proptest::prelude::*;
use singe::config::CompileOptions;
use singe::kernels::launch_arrays;
use singe::{Compiler, Variant};

fn synth_mech(n_species: usize, seed: u64) -> chemkin::Mechanism {
    synth::via_text(&synth::SynthConfig {
        name: format!("ep{n_species}_{seed}"),
        n_species,
        n_reactions: n_species * 2,
        n_qssa: 0,
        n_stiff: 0,
        seed,
    })
}

fn synth_kernel(
    mech: &chemkin::Mechanism,
    diffusion: bool,
    warps: usize,
    variant: Variant,
    arch: &GpuArch,
) -> gpu_sim::isa::Kernel {
    let dfg = if diffusion {
        singe::kernels::diffusion::diffusion_dfg(&DiffusionTables::build(mech), warps)
    } else {
        singe::kernels::viscosity::viscosity_dfg(&ViscosityTables::build(mech), warps)
    };
    Compiler::new(arch)
        .options(CompileOptions::with_warps(warps))
        .compile(&dfg, variant)
        .expect("synth kernel compiles")
        .kernel
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Engine and interpreter agree bit-for-bit on outputs and
    /// EventCounts for one CTA of a synthesized kernel, with and without
    /// event collection.
    #[test]
    fn engine_matches_interpreter_bit_for_bit(
        n_species in 4usize..9,
        seed in 0u64..1000,
        diffusion in proptest::bool::ANY,
        warps in 2usize..6,
        kepler in proptest::bool::ANY,
        variant_ix in 0usize..3,
    ) {
        let arch = if kepler { GpuArch::kepler_k20c() } else { GpuArch::fermi_c2070() };
        let variant =
            [Variant::WarpSpecialized, Variant::Baseline, Variant::Naive][variant_ix];
        let mech = synth_mech(n_species, seed);
        let kernel = synth_kernel(&mech, diffusion, warps, variant, &arch);
        let prog = flatten_cached(&kernel);
        let points = kernel.points_per_cta;
        let grid = GridState::random(
            GridDims { nx: points, ny: 1, nz: 1 },
            mech.n_transported(),
            seed ^ 0x9e37,
        );
        let arrays = launch_arrays(&kernel.global_arrays, &grid).expect("known arrays");

        for collect in [false, true] {
            let eng = run_cta(&kernel, &prog, &arrays, points, 0, collect, &arch)
                .expect("engine runs");
            let itp = run_cta_profiled(&kernel, &prog, &arrays, points, 0, collect, &arch, None)
                .expect("interpreter runs");
            prop_assert_eq!(&eng.counts, &itp.counts);
            prop_assert_eq!(eng.out_buffers.len(), itp.out_buffers.len());
            for (a, b) in eng.out_buffers.iter().zip(&itp.out_buffers) {
                prop_assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(b.iter()) {
                    prop_assert_eq!(x.to_bits(), y.to_bits());
                }
            }
        }
    }

    /// Full-grid launches are identical at any worker count: the ordered
    /// pool fans CTAs out in parallel but commits results in CTA order.
    #[test]
    fn parallel_grid_launch_is_deterministic(
        n_species in 4usize..8,
        seed in 0u64..500,
        kepler in proptest::bool::ANY,
    ) {
        let arch = if kepler { GpuArch::kepler_k20c() } else { GpuArch::fermi_c2070() };
        let mech = synth_mech(n_species, seed);
        let kernel = synth_kernel(&mech, false, 4, Variant::WarpSpecialized, &arch);
        // Several CTAs so the parallel fan-out actually engages.
        let total_points = kernel.points_per_cta * 4;
        let grid = GridState::random(
            GridDims { nx: total_points, ny: 1, nz: 1 },
            mech.n_transported(),
            seed ^ 0x51,
        );
        let arrays = launch_arrays(&kernel.global_arrays, &grid).expect("known arrays");

        let run = |jobs: usize| {
            gpu_sim::launch_with_config(
                &kernel,
                &arch,
                &LaunchInputs { arrays: arrays.clone() },
                total_points,
                LaunchConfig { mode: LaunchMode::Full, profile: false, trace_events: false, jobs },
            )
            .expect("launch succeeds")
        };
        let a = run(1);
        let b = run(8);
        prop_assert_eq!(a.report.seconds.to_bits(), b.report.seconds.to_bits());
        prop_assert_eq!(a.outputs.len(), b.outputs.len());
        for (oa, ob) in a.outputs.iter().zip(&b.outputs) {
            prop_assert_eq!(oa.len(), ob.len());
            for (x, y) in oa.iter().zip(ob.iter()) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }
}
