//! Differential property tests for the segment-compiled execution engine
//! (`gpu-sim`'s fast path behind `run_cta`) against the reference
//! interpreter (`run_cta_profiled` with no profiler), over randomly
//! synthesized mechanisms and all three compiler variants:
//!
//! * outputs are **bit-identical** (`f64::to_bits`, not approximate), and
//!   `EventCounts` are equal field-for-field — the engine's bulk
//!   per-segment accounting must reproduce per-instruction bookkeeping
//!   exactly;
//! * full-grid launches are byte-identical between `jobs = 1` and
//!   `jobs = 8` with the parallel CTA fan-out enabled — the ordered pool
//!   must never let worker count leak into results;
//! * randomly synthesized instruction streams whose operands, immediates,
//!   constant banks, and global inputs are saturated with IEEE-754 edge
//!   cases (NaN with payload, ±∞, subnormals, ±0) stay bit-identical
//!   through the engine's whole optimization pipeline — constant-shuffle
//!   folding, copy propagation, mul+add/sub fusion, dead-code
//!   elimination, and immediate splatting.

use chemkin::reference::tables::{DiffusionTables, ViscosityTables};
use chemkin::state::{GridDims, GridState};
use chemkin::synth;
use gpu_sim::arch::GpuArch;
use gpu_sim::interp::{run_cta, run_cta_profiled};
use gpu_sim::{flatten_cached, LaunchConfig, LaunchInputs, LaunchMode};
use proptest::prelude::*;
use singe::config::CompileOptions;
use singe::kernels::launch_arrays;
use singe::{Compiler, Variant};

fn synth_mech(n_species: usize, seed: u64) -> chemkin::Mechanism {
    synth::via_text(&synth::SynthConfig {
        name: format!("ep{n_species}_{seed}"),
        n_species,
        n_reactions: n_species * 2,
        n_qssa: 0,
        n_stiff: 0,
        seed,
    })
}

fn synth_kernel(
    mech: &chemkin::Mechanism,
    diffusion: bool,
    warps: usize,
    variant: Variant,
    arch: &GpuArch,
) -> gpu_sim::isa::Kernel {
    let dfg = if diffusion {
        singe::kernels::diffusion::diffusion_dfg(&DiffusionTables::build(mech), warps)
    } else {
        singe::kernels::viscosity::viscosity_dfg(&ViscosityTables::build(mech), warps)
    };
    Compiler::new(arch)
        .options(CompileOptions::with_warps(warps))
        .compile(&dfg, variant)
        .expect("synth kernel compiles")
        .kernel
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Engine and interpreter agree bit-for-bit on outputs and
    /// EventCounts for one CTA of a synthesized kernel, with and without
    /// event collection.
    #[test]
    fn engine_matches_interpreter_bit_for_bit(
        n_species in 4usize..9,
        seed in 0u64..1000,
        diffusion in proptest::bool::ANY,
        warps in 2usize..6,
        kepler in proptest::bool::ANY,
        variant_ix in 0usize..3,
    ) {
        let arch = if kepler { GpuArch::kepler_k20c() } else { GpuArch::fermi_c2070() };
        let variant =
            [Variant::WarpSpecialized, Variant::Baseline, Variant::Naive][variant_ix];
        let mech = synth_mech(n_species, seed);
        let kernel = synth_kernel(&mech, diffusion, warps, variant, &arch);
        let prog = flatten_cached(&kernel);
        let points = kernel.points_per_cta;
        let grid = GridState::random(
            GridDims { nx: points, ny: 1, nz: 1 },
            mech.n_transported(),
            seed ^ 0x9e37,
        );
        let arrays = launch_arrays(&kernel.global_arrays, &grid).expect("known arrays");

        for collect in [false, true] {
            let eng = run_cta(&kernel, &prog, &arrays, points, 0, collect, &arch)
                .expect("engine runs");
            let itp = run_cta_profiled(&kernel, &prog, &arrays, points, 0, collect, &arch, None)
                .expect("interpreter runs");
            prop_assert_eq!(&eng.counts, &itp.counts);
            prop_assert_eq!(eng.out_buffers.len(), itp.out_buffers.len());
            for (a, b) in eng.out_buffers.iter().zip(&itp.out_buffers) {
                prop_assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(b.iter()) {
                    prop_assert_eq!(x.to_bits(), y.to_bits());
                }
            }
        }
    }

    /// Full-grid launches are identical at any worker count: the ordered
    /// pool fans CTAs out in parallel but commits results in CTA order.
    #[test]
    fn parallel_grid_launch_is_deterministic(
        n_species in 4usize..8,
        seed in 0u64..500,
        kepler in proptest::bool::ANY,
    ) {
        let arch = if kepler { GpuArch::kepler_k20c() } else { GpuArch::fermi_c2070() };
        let mech = synth_mech(n_species, seed);
        let kernel = synth_kernel(&mech, false, 4, Variant::WarpSpecialized, &arch);
        // Several CTAs so the parallel fan-out actually engages.
        let total_points = kernel.points_per_cta * 4;
        let grid = GridState::random(
            GridDims { nx: total_points, ny: 1, nz: 1 },
            mech.n_transported(),
            seed ^ 0x51,
        );
        let arrays = launch_arrays(&kernel.global_arrays, &grid).expect("known arrays");

        let run = |jobs: usize| {
            gpu_sim::launch_with_config(
                &kernel,
                &arch,
                &LaunchInputs { arrays: arrays.clone() },
                total_points,
                LaunchConfig { mode: LaunchMode::Full, profile: false, trace_events: false, jobs },
            )
            .expect("launch succeeds")
        };
        let a = run(1);
        let b = run(8);
        prop_assert_eq!(a.report.seconds.to_bits(), b.report.seconds.to_bits());
        prop_assert_eq!(a.outputs.len(), b.outputs.len());
        for (oa, ob) in a.outputs.iter().zip(&b.outputs) {
            prop_assert_eq!(oa.len(), ob.len());
            for (x, y) in oa.iter().zip(ob.iter()) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Special-value operand streams.
// ---------------------------------------------------------------------------

use gpu_sim::isa::{
    ArrayDecl, GAddr, GlobalId, IdxInstr, IdxOp, Instr, Kernel, Node, Op, PointRef, SAddr,
};

/// Every awkward IEEE-754 citizen plus a few ordinary values. Selected by
/// index so a single `u64` drawn by proptest picks one; the engine's
/// optimizer must carry each through folding, fusion, copy propagation,
/// and immediate splatting bit-identically — including the NaN payload.
fn special(sel: u64) -> f64 {
    const SPECIALS: [u64; 13] = [
        0x7ff8_0000_0000_0000, // canonical quiet NaN
        0x7ff8_dead_beef_0001, // quiet NaN with a payload
        0x7ff0_0000_0000_0000, // +inf
        0xfff0_0000_0000_0000, // -inf
        0x8000_0000_0000_0000, // -0.0
        0x0000_0000_0000_0000, // +0.0
        0x0000_0000_0000_0001, // smallest positive subnormal
        0x8000_0000_0000_0001, // smallest-magnitude negative subnormal
        0x000f_ffff_ffff_ffff, // largest subnormal
        0x0010_0000_0000_0000, // smallest normal
        0x3ff0_0000_0000_0000, // 1.0
        0xbff8_0000_0000_0000, // -1.5
        0x7e37_e43c_8800_759c, // 1e300
    ];
    f64::from_bits(SPECIALS[(sel % SPECIALS.len() as u64) as usize])
}

/// One-warp kernel skeleton with a constant bank full of special values
/// (staged through a lane-indexed `LdConst`, so shuffles off it hit the
/// constant-fold path) and one input / one output global array.
fn stream_kernel(name: String, body: Vec<Node>, bank_seed: u64) -> Kernel {
    Kernel {
        name,
        body,
        warps_per_cta: 1,
        points_per_cta: 32,
        dregs_per_thread: 8,
        iregs_per_thread: 4,
        shared_words: 64,
        local_words_per_thread: 2,
        const_banks: vec![(0..32).map(|i| special(bank_seed.wrapping_add(i))).collect()],
        iconst_banks: vec![],
        barriers_used: 1,
        global_arrays: vec![
            ArrayDecl { name: "in".into(), rows: 1, output: false },
            ArrayDecl { name: "out".into(), rows: 1, output: true },
        ],
        spilled_bytes_per_thread: 0,
        exp_const_from_registers: false,
    }
}

/// Decode one drawn `u64` into a short instruction burst. Bursts are
/// chosen to hit every optimizer path: mul feeding add/sub (fusion),
/// chained movs (copy propagation), shuffles off the staged constant
/// chunk (constant folding), writes to a register the tail never reads
/// (dead-code elimination), and immediate operands (splatting).
fn burst(v: u64) -> Vec<Instr> {
    // Registers: 0 = global input, 7 = staged constants, 1..=6 general.
    let dst = 1 + ((v >> 8) % 6) as u16;
    let t = 1 + ((v >> 12) % 6) as u16;
    let ra = ((v >> 16) % 8) as u16;
    let rb = ((v >> 20) % 8) as u16;
    let a = if (v >> 32) & 1 == 0 { Op::Reg(ra) } else { Op::Imm(special(v >> 33)) };
    let b = if (v >> 40) & 1 == 0 { Op::Reg(rb) } else { Op::Imm(special(v >> 41)) };
    match v % 10 {
        // A guaranteed-fusable mul→add / mul→sub pair through a staging
        // register (the engine's FusedMulBin path).
        0 => vec![
            Instr::DMul { dst: t, a, b },
            Instr::DAdd { dst, a: Op::Reg(t), b },
        ],
        1 => vec![
            Instr::DMul { dst: t, a, b },
            Instr::DSub { dst, a: Op::Reg(t), b: Op::Reg(ra) },
        ],
        // A mov chain (copy propagation food).
        2 => vec![
            Instr::DMov { dst: t, src: a },
            Instr::DMov { dst, src: Op::Reg(t) },
        ],
        3 => vec![Instr::DAdd { dst, a, b }],
        4 => vec![Instr::DDiv { dst, a, b }],
        5 => vec![Instr::DFma { dst, a, b, c: Op::Reg(ra), const_c: false }],
        6 => vec![Instr::DMax { dst, a, b }, Instr::DMin { dst: t, a: Op::Reg(dst), b }],
        7 => vec![Instr::DNeg { dst, a }, Instr::DSqrt { dst: t, a: Op::Reg(dst) }],
        // Broadcast one special constant out of the staged chunk — folds
        // to an immediate at lowering, then splats.
        8 => vec![
            Instr::Shfl { dst, src: 7, lane: ((v >> 24) % 32) as u8 },
            Instr::DMul { dst: t, a: Op::Reg(dst), b },
        ],
        // A single-lane store to a stride-0 mirror address read back by
        // all lanes (the LdSharedBcast path), with special values in it.
        _ => vec![
            Instr::StShared {
                src: a,
                addr: SAddr { base: None, imm: 9, lane_stride: 0 },
                lane_pred: Some(((v >> 24) % 32) as u8),
            },
            Instr::LdShared { dst, addr: SAddr { base: None, imm: 9, lane_stride: 0 } },
        ],
    }
}

/// Decode one drawn `u64` into an exp-heavy burst aimed at the engine's
/// transcendental paths: adjacent independent exps (the `ExpBatch`
/// grouping), dependent exp-of-exp chains (must never batch), repeated
/// operands (exp CSE), `exp(a)*exp(b)` shapes with immediate operands
/// (the lowering rewrite gate — applied only when provably
/// bit-identical, rejected otherwise), exps of special immediates
/// (±inf, NaN payloads, subnormals, overflow/underflow edges), and a
/// lane-predicated shared-memory stage feeding an exp.
fn exp_burst(v: u64) -> Vec<Instr> {
    // Registers: 0 = global input, 7 = staged constants, 1..=6 general.
    let dst = 1 + ((v >> 8) % 6) as u16;
    let t = 1 + ((v >> 12) % 6) as u16;
    let ra = ((v >> 16) % 8) as u16;
    let a = if (v >> 32) & 1 == 0 { Op::Reg(ra) } else { Op::Imm(special(v >> 33)) };
    match v % 8 {
        // Adjacent independent exps: batchable when dst/src chunks stay
        // disjoint, and the batched evaluation must be bit-identical to
        // the interpreter's one-at-a-time order.
        0 => vec![
            Instr::DExp { dst, a },
            Instr::DExp { dst: t, a: Op::Reg(7) },
        ],
        // Dependent chain exp(exp(x)) — the batcher must flush between
        // the two (overflow saturation and NaN pass through both hops).
        1 => vec![
            Instr::DExp { dst: t, a },
            Instr::DExp { dst, a: Op::Reg(t) },
        ],
        // Repeated operand — exp CSE rewrites the second into a mov.
        2 => vec![
            Instr::DExp { dst: t, a },
            Instr::DExp { dst, a },
        ],
        // exp(0)*exp(b): the one input-independent shape the mul rewrite
        // gate may accept (±0.0 operand, corpus-checked); the engine must
        // be bit-identical whether it rewrote or not.
        3 => vec![
            Instr::DExp { dst: t, a: Op::Imm(if (v >> 24) & 1 == 0 { 0.0 } else { -0.0 }) },
            Instr::DExp { dst, a },
            Instr::DMul { dst, a: Op::Reg(t), b: Op::Reg(dst) },
        ],
        // exp(c)*exp(b) with a non-zero (often special) immediate — the
        // gate almost always rejects this; rejection must not perturb
        // results.
        4 => vec![
            Instr::DExp { dst: t, a: Op::Imm(special(v >> 25)) },
            Instr::DExp { dst, a },
            Instr::DMul { dst, a: Op::Reg(dst), b: Op::Reg(t) },
        ],
        // Special immediate straight into exp: saturation edges
        // (±709.78.., ±745.13..) and non-finite inputs.
        5 => vec![Instr::DExp { dst, a: Op::Imm(special(v >> 33)) }],
        // Lane-predicated single-lane store, broadcast back, then exp —
        // predication must mask exactly the same lanes in both engines.
        6 => vec![
            Instr::StShared {
                src: a,
                addr: SAddr { base: None, imm: 11, lane_stride: 0 },
                lane_pred: Some(((v >> 24) % 32) as u8),
            },
            Instr::LdShared { dst, addr: SAddr { base: None, imm: 11, lane_stride: 0 } },
            Instr::DExp { dst: t, a: Op::Reg(dst) },
        ],
        // exp feeding the fused mul→add path (FusedMulBin after an
        // ExpBatch member's scatter).
        _ => vec![
            Instr::DExp { dst: t, a },
            Instr::DMul { dst, a: Op::Reg(t), b: Op::Reg(ra) },
            Instr::DAdd { dst, a: Op::Reg(dst), b: Op::Reg(t) },
        ],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Engine and interpreter agree bit-for-bit — NaN payloads included —
    /// on randomly synthesized streams saturated with IEEE-754 edge
    /// cases in every operand position: immediates (splatting), constant
    /// banks (shuffle folding), and global inputs.
    #[test]
    fn special_value_streams_match_interpreter_bit_for_bit(
        bursts in proptest::collection::vec(0u64..u64::MAX, 6..24),
        bank_seed in 0u64..1000,
        input_seed in 0u64..1000,
    ) {
        let mut body = vec![
            // Stage the special-value constant bank into register 7 via a
            // lane-indexed load: shuffles off it are lowering-time known.
            Node::Op(Instr::Idx(IdxInstr::LaneId { dst: 0 })),
            Node::Op(Instr::LdConst { dst: 7, bank: 0, idx: IdxOp::Reg(0) }),
            Node::Op(Instr::LdGlobal {
                dst: 0,
                addr: GAddr { array: GlobalId(0), row: IdxOp::Imm(0), point: PointRef::Lane },
                ldg: false,
            }),
        ];
        for &v in &bursts {
            body.extend(burst(v).into_iter().map(Node::Op));
        }
        // Fold registers 1..=3 into the stored value; registers 4..=6 may
        // end up dead, which the engine's DCE must not let change results.
        body.push(Node::Op(Instr::DAdd { dst: 1, a: Op::Reg(1), b: Op::Reg(2) }));
        body.push(Node::Op(Instr::DMul { dst: 1, a: Op::Reg(1), b: Op::Reg(3) }));
        body.push(Node::Op(Instr::StGlobal {
            src: Op::Reg(1),
            addr: GAddr { array: GlobalId(1), row: IdxOp::Imm(0), point: PointRef::Lane },
        }));

        let kernel = stream_kernel(format!("special{bank_seed}_{input_seed}"), body, bank_seed);
        let prog = flatten_cached(&kernel);
        let input: Vec<f64> =
            (0..32).map(|i| special(input_seed.wrapping_add(i * 7))).collect();
        let arrays: Vec<&[f64]> = vec![&input, &[]];
        let arch = GpuArch::kepler_k20c();

        for collect in [false, true] {
            let eng = run_cta(&kernel, &prog, &arrays, 32, 0, collect, &arch)
                .expect("engine runs");
            let itp = run_cta_profiled(&kernel, &prog, &arrays, 32, 0, collect, &arch, None)
                .expect("interpreter runs");
            prop_assert_eq!(&eng.counts, &itp.counts);
            for (a, b) in eng.out_buffers.iter().zip(&itp.out_buffers) {
                prop_assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(b.iter()) {
                    prop_assert_eq!(x.to_bits(), y.to_bits());
                }
            }
        }
    }

    /// Exp-heavy streams: batched groups, dependent chains, CSE'd
    /// repeats, gated `exp(a)*exp(b)` rewrites, saturation edges, and
    /// predicated lanes all stay bit-identical — EventCounts included —
    /// between the engine and the profiled interpreter. Runs under
    /// whichever exp family the build selected (libm by default, the
    /// vectorized vmath kernel with `--features vexp`); CI exercises
    /// both, and within a process the two executors must always agree.
    #[test]
    fn exp_heavy_streams_match_interpreter_bit_for_bit(
        bursts in proptest::collection::vec(0u64..u64::MAX, 4..20),
        bank_seed in 0u64..1000,
        input_seed in 0u64..1000,
    ) {
        let mut body = vec![
            Node::Op(Instr::Idx(IdxInstr::LaneId { dst: 0 })),
            Node::Op(Instr::LdConst { dst: 7, bank: 0, idx: IdxOp::Reg(0) }),
            Node::Op(Instr::LdGlobal {
                dst: 0,
                addr: GAddr { array: GlobalId(0), row: IdxOp::Imm(0), point: PointRef::Lane },
                ldg: false,
            }),
        ];
        for &v in &bursts {
            body.extend(exp_burst(v).into_iter().map(Node::Op));
        }
        body.push(Node::Op(Instr::DAdd { dst: 1, a: Op::Reg(1), b: Op::Reg(2) }));
        body.push(Node::Op(Instr::DMul { dst: 1, a: Op::Reg(1), b: Op::Reg(3) }));
        body.push(Node::Op(Instr::StGlobal {
            src: Op::Reg(1),
            addr: GAddr { array: GlobalId(1), row: IdxOp::Imm(0), point: PointRef::Lane },
        }));

        let kernel = stream_kernel(format!("expheavy{bank_seed}_{input_seed}"), body, bank_seed);
        let prog = flatten_cached(&kernel);
        // Inputs biased toward exp's interesting range: saturation edges,
        // subnormal-producing arguments, and raw special bit patterns.
        let input: Vec<f64> = (0..32)
            .map(|i| match i % 4 {
                0 => special(input_seed.wrapping_add(i * 7)),
                1 => 709.0 + (i as f64) * 0.1,  // straddles the +inf edge
                2 => -744.0 - (i as f64) * 0.1, // straddles deep underflow
                _ => (i as f64) * 0.37 - 6.0,   // ordinary magnitudes
            })
            .collect();
        let arrays: Vec<&[f64]> = vec![&input, &[]];
        let arch = GpuArch::kepler_k20c();

        for collect in [false, true] {
            let eng = run_cta(&kernel, &prog, &arrays, 32, 0, collect, &arch)
                .expect("engine runs");
            let itp = run_cta_profiled(&kernel, &prog, &arrays, 32, 0, collect, &arch, None)
                .expect("interpreter runs");
            prop_assert_eq!(&eng.counts, &itp.counts);
            for (a, b) in eng.out_buffers.iter().zip(&itp.out_buffers) {
                prop_assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(b.iter()) {
                    prop_assert_eq!(x.to_bits(), y.to_bits());
                }
            }
        }
    }
}
