//! Pipeline-schedule test battery (K-stage async producer/consumer
//! pipelines).
//!
//! Two property families:
//!
//! * **Differential**: a kernel compiled at pipeline depth K ∈ {2,3,4}
//!   must produce outputs bit-identical (`f64::to_bits`) to the same
//!   mechanism compiled at K = 1, on every architecture where the depth
//!   fits the named-barrier file; and at every depth the segment engine
//!   must agree bit-for-bit with the profiled interpreter on outputs
//!   *and* `EventCounts`.
//! * **Mutation**: each of three schedule-breaking mutations (drop a
//!   buffer-empty signal, swap a data barrier with the empty ring,
//!   shrink the slot ring by one entry) must be rejected by the
//!   independent schedule verifier — zero silent passes. The drop and
//!   shrink mutations run against a hand-built canonical pipeline with a
//!   pure-consumer warp: on dense mechanism graphs where every consumer
//!   is also a producer, the data barriers alone can transitively supply
//!   the write-after-read edges and make the empty ring genuinely
//!   redundant, which would let a compiled-kernel mutant pass *soundly*.
//!   The canonical kernel has no such back edges, so every mutation is
//!   provably a protocol break.

use chemkin::reference::tables::{DiffusionTables, ViscosityTables};
use chemkin::state::{GridDims, GridState};
use chemkin::synth;
use gpu_sim::arch::GpuArch;
use gpu_sim::interp::{run_cta, run_cta_profiled};
use gpu_sim::isa::{IdxInstr, Instr, Kernel, Node, Op, SAddr};
use gpu_sim::flatten_cached;
use proptest::prelude::*;
use singe::config::CompileOptions;
use singe::kernels::launch_arrays;
use singe::verify::verify_kernel;
use singe::{CompileError, Compiler, Variant};

fn synth_mech(n_species: usize, seed: u64) -> chemkin::Mechanism {
    synth::via_text(&synth::SynthConfig {
        name: format!("pp{n_species}_{seed}"),
        n_species,
        n_reactions: n_species * 2,
        n_qssa: 0,
        n_stiff: 0,
        seed,
    })
}

fn dfg_for(mech: &chemkin::Mechanism, diffusion: bool, warps: usize) -> singe::dfg::Dfg {
    if diffusion {
        singe::kernels::diffusion::diffusion_dfg(&DiffusionTables::build(mech), warps)
    } else {
        singe::kernels::viscosity::viscosity_dfg(&ViscosityTables::build(mech), warps)
    }
}

fn compile_at_depth(
    dfg: &singe::dfg::Dfg,
    warps: usize,
    k: usize,
    arch: &GpuArch,
) -> Result<singe::codegen::Compiled, CompileError> {
    let opts = CompileOptions::builder()
        .warps(warps)
        .point_iters(4)
        .pipeline_depth(k)
        .build();
    Compiler::new(arch).options(opts).compile(dfg, Variant::WarpSpecialized)
}

/// Run one CTA through the engine and the profiled interpreter, assert
/// they agree bit-for-bit, and return the engine's output buffers.
fn run_both(
    kernel: &Kernel,
    arrays: &[&[f64]],
    arch: &GpuArch,
) -> Result<Vec<Vec<f64>>, TestCaseError> {
    let prog = flatten_cached(kernel);
    let points = kernel.points_per_cta;
    let mut out = Vec::new();
    for collect in [false, true] {
        let eng =
            run_cta(kernel, &prog, arrays, points, 0, collect, arch).expect("engine runs");
        let itp = run_cta_profiled(kernel, &prog, arrays, points, 0, collect, arch, None)
            .expect("interpreter runs");
        prop_assert_eq!(&eng.counts, &itp.counts);
        prop_assert_eq!(eng.out_buffers.len(), itp.out_buffers.len());
        for (a, b) in eng.out_buffers.iter().zip(&itp.out_buffers) {
            prop_assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b.iter()) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        out = eng.out_buffers;
    }
    Ok(out)
}

fn arches() -> [GpuArch; 3] {
    [GpuArch::fermi_c2070(), GpuArch::kepler_k20c(), GpuArch::hopper()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// K ∈ {2,3,4} pipelined schedules produce outputs bit-identical to
    /// the K = 1 protocol, and engine/interpreter agree at every depth,
    /// on all three architectures. Depths whose rotated-barrier demand
    /// exceeds a small arch's named-barrier file may fail to compile
    /// with `ResourceExhausted` (never anything else); Hopper's 64-entry
    /// file must always fit.
    #[test]
    fn pipelined_outputs_bit_identical_to_single_buffered(
        n_species in 4usize..9,
        seed in 0u64..1000,
        diffusion in proptest::bool::ANY,
        warps in 2usize..6,
    ) {
        let mech = synth_mech(n_species, seed);
        let dfg = dfg_for(&mech, diffusion, warps);
        for arch in arches() {
            let base = compile_at_depth(&dfg, warps, 1, &arch).expect("K=1 compiles");
            prop_assert_eq!(base.stats.pipeline_depth, 1);
            let points = base.kernel.points_per_cta;
            let grid = GridState::random(
                GridDims { nx: points, ny: 1, nz: 1 },
                mech.n_transported(),
                seed ^ 0x9e37,
            );
            let arrays = launch_arrays(&base.kernel.global_arrays, &grid).expect("arrays");
            let golden = run_both(&base.kernel, &arrays, &arch)?;

            for k in 2usize..=4 {
                let compiled = match compile_at_depth(&dfg, warps, k, &arch) {
                    Ok(c) => c,
                    Err(CompileError::ResourceExhausted(_)) => {
                        // Only the 16-barrier archs may run out of ids.
                        prop_assert!(
                            arch.named_barriers_per_sm <= 16,
                            "{} exhausted barriers at K={}", arch.name, k
                        );
                        continue;
                    }
                    Err(e) => return Err(TestCaseError::Fail(format!(
                        "K={k} on {}: {e}", arch.name
                    ))),
                };
                // Pipelining engages exactly when there is cross-warp
                // traffic and no CTA-wide pass barrier already paces the
                // schedule; otherwise the compiler must fall back to the
                // classic protocol rather than emit a broken hybrid. The
                // requested depth is lowered to the largest value the
                // barrier file and shared memory can host (mirroring the
                // compiler's clamp), never silently something else.
                if base.stats.sync_points > 0 && base.stats.full_barriers == 0 {
                    // K=1 uses one pass barrier on top of the sync colors.
                    let colors = base.stats.barriers_used - 1;
                    let slots = base.stats.shared_slots;
                    let mut expected = k;
                    while expected > 1
                        && ((colors + 1) * expected > arch.named_barriers_per_sm
                            || expected * slots * 32 * 8 > arch.shared_per_sm)
                    {
                        expected -= 1;
                    }
                    prop_assert_eq!(compiled.stats.pipeline_depth, expected);
                } else {
                    prop_assert_eq!(compiled.stats.pipeline_depth, 1);
                }
                let out = run_both(&compiled.kernel, &arrays, &arch)?;
                prop_assert_eq!(golden.len(), out.len());
                for (a, b) in golden.iter().zip(&out) {
                    prop_assert_eq!(a.len(), b.len());
                    for (x, y) in a.iter().zip(b.iter()) {
                        prop_assert_eq!(x.to_bits(), y.to_bits());
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Verifier mutation battery.
// ---------------------------------------------------------------------------

/// Depth-first node-tree edit: apply `f` to every instruction list.
fn edit_nodes(nodes: &mut Vec<Node>, f: &mut dyn FnMut(&mut Vec<Node>)) {
    f(nodes);
    for n in nodes.iter_mut() {
        match n {
            Node::WarpIf { body, .. }
            | Node::Loop { body, .. }
            | Node::PointLoop { body, .. } => edit_nodes(body, f),
            Node::WarpSwitch { cases, .. } => {
                for c in cases.iter_mut() {
                    edit_nodes(c, f);
                }
            }
            Node::Op(_) => {}
        }
    }
}

/// The canonical K-stage pipeline the compiler emits, built by hand:
/// warp 0 produces into a K-slot ring, warp 1 (a pure consumer) reads.
/// Full barriers `0..K` pace data-ready, the empty ring `K..2K` paces
/// slot recycling: the consumer pre-arms every ring entry in a prologue,
/// frees its slot at the end of each iteration, and the producer drains
/// outstanding frees in an epilogue.
fn canonical_pipeline(k: u8, iters: u32) -> (Kernel, u8) {
    let empty_base = k;
    let pipe_off = Node::Op(Instr::Idx(IdxInstr::PipeOff { dst: 0, k, stride: 32 }));
    let slot = SAddr::dyn_lane(0, 0);
    let body = vec![
        Node::WarpIf {
            mask: 0b10,
            body: (0..k)
                .map(|r| Node::Op(Instr::BarArrive { bar: empty_base + r, warps: 2 }))
                .collect(),
        },
        Node::PointLoop {
            iters,
            body: vec![
                pipe_off,
                Node::WarpIf {
                    mask: 0b01,
                    body: vec![
                        Node::Op(Instr::BarSyncStage { base: empty_base, k, warps: 2 }),
                        Node::Op(Instr::StShared {
                            src: Op::Imm(1.0),
                            addr: slot,
                            lane_pred: None,
                        }),
                        Node::Op(Instr::BarArriveStage { base: 0, k, warps: 2 }),
                    ],
                },
                Node::WarpIf {
                    mask: 0b10,
                    body: vec![
                        Node::Op(Instr::BarSyncStage { base: 0, k, warps: 2 }),
                        Node::Op(Instr::LdShared { dst: 0, addr: slot }),
                        Node::Op(Instr::BarArriveStage { base: empty_base, k, warps: 2 }),
                    ],
                },
            ],
        },
        Node::WarpIf {
            mask: 0b01,
            body: (0..k)
                .map(|r| Node::Op(Instr::BarSync { bar: empty_base + r, warps: 2 }))
                .collect(),
        },
    ];
    let kernel = Kernel {
        name: "canonical-pipeline".into(),
        body,
        warps_per_cta: 2,
        points_per_cta: 32 * iters as usize,
        dregs_per_thread: 2,
        iregs_per_thread: 1,
        shared_words: k as usize * 32,
        local_words_per_thread: 0,
        const_banks: vec![],
        iconst_banks: vec![],
        barriers_used: 2 * k as usize,
        global_arrays: vec![],
        spilled_bytes_per_thread: 0,
        exp_const_from_registers: false,
    };
    kernel.check().expect("canonical pipeline is well-formed");
    (kernel, empty_base)
}

/// A verified-clean *compiled* pipelined kernel: 3 warps so the
/// viscosity dfg has cross-warp traffic, K = 2 so every arch's barrier
/// file fits.
fn compiled_pipeline(arch: &GpuArch) -> (Kernel, u8) {
    let mech = synth_mech(6, 42);
    let dfg = dfg_for(&mech, false, 3);
    let c = compile_at_depth(&dfg, 3, 2, arch).expect("pipelined kernel compiles");
    assert_eq!(c.stats.pipeline_depth, 2, "pipeline must engage for the mutation battery");
    let empty_base = (c.kernel.barriers_used - 2) as u8;
    (c.kernel, empty_base)
}

/// Mutation 1: drop the consumer's buffer-empty arrive. The producer's
/// ring sync K iterations later can never complete: deadlock.
fn drop_empty_signal(kernel: &mut Kernel, empty_base: u8) -> bool {
    let mut dropped = false;
    edit_nodes(&mut kernel.body, &mut |nodes| {
        if dropped {
            return;
        }
        if let Some(i) = nodes.iter().position(|n| matches!(
            n,
            Node::Op(Instr::BarArriveStage { base, .. }) if *base == empty_base
        )) {
            nodes.remove(i);
            dropped = true;
        }
    });
    dropped
}

/// Mutation 2: swap a data-ready stage barrier with the buffer-empty
/// ring (exchange the `base` operands of the two syncs). Consumers now
/// wake on "slot free" instead of "data ready": the store→load edge
/// disappears and the producer waits on a barrier no one refills.
fn swap_full_empty(kernel: &mut Kernel, empty_base: u8) -> bool {
    let mut swapped = false;
    edit_nodes(&mut kernel.body, &mut |nodes| {
        for n in nodes.iter_mut() {
            if swapped {
                return;
            }
            if let Node::Op(Instr::BarSyncStage { base, .. }) = n {
                if *base < empty_base {
                    *base = empty_base;
                    swapped = true;
                }
            }
        }
    });
    if !swapped {
        return false;
    }
    let mut fixed = false;
    edit_nodes(&mut kernel.body, &mut |nodes| {
        for n in nodes.iter_mut() {
            if fixed {
                return;
            }
            if let Node::Op(Instr::BarSyncStage { base, .. }) = n {
                if *base == empty_base {
                    *base = 0;
                    fixed = true;
                }
            }
        }
    });
    fixed
}

/// Mutation 3: shrink the slot ring by one entry — the `PipeOff` rotates
/// modulo K-1 while the barrier protocol still paces K generations, so
/// two in-flight generations share a slot with no ordering edge.
fn shrink_ring(kernel: &mut Kernel) -> bool {
    let mut shrunk = false;
    edit_nodes(&mut kernel.body, &mut |nodes| {
        for n in nodes.iter_mut() {
            if shrunk {
                return;
            }
            if let Node::Op(Instr::Idx(IdxInstr::PipeOff { k, .. })) = n {
                if *k >= 2 {
                    *k -= 1;
                    shrunk = true;
                }
            }
        }
    });
    shrunk
}

fn assert_rejected(kernel: &Kernel, arch: &GpuArch, what: &str) {
    let errs = verify_kernel(kernel, arch)
        .err()
        .unwrap_or_else(|| panic!("{}: {what} mutant passed verification silently", arch.name));
    assert!(!errs.is_empty());
}

#[test]
fn compiled_pipeline_verifies_clean() {
    for arch in arches() {
        let (kernel, _) = compiled_pipeline(&arch);
        let report = verify_kernel(&kernel, &arch)
            .unwrap_or_else(|v| panic!("{}: clean pipeline rejected: {v:?}", arch.name));
        assert!(report.generations > 0, "{}: no barrier generations ran", arch.name);
    }
}

#[test]
fn canonical_pipeline_verifies_clean() {
    for k in 2u8..=4 {
        let (kernel, _) = canonical_pipeline(k, 8);
        for arch in arches() {
            let report = verify_kernel(&kernel, &arch)
                .unwrap_or_else(|v| panic!("{}: K={k} rejected: {v:?}", arch.name));
            assert!(report.generations > 0);
        }
    }
}

#[test]
fn dropping_an_empty_signal_is_rejected() {
    for k in 2u8..=4 {
        let (mut kernel, empty_base) = canonical_pipeline(k, 8);
        assert!(drop_empty_signal(&mut kernel, empty_base), "K={k}: no signal found");
        for arch in arches() {
            assert_rejected(&kernel, &arch, "drop-empty-arrive");
        }
    }
}

#[test]
fn swapping_full_and_empty_barriers_is_rejected() {
    // On the canonical pipeline at every depth...
    for k in 2u8..=4 {
        let (mut kernel, empty_base) = canonical_pipeline(k, 8);
        assert!(swap_full_empty(&mut kernel, empty_base), "K={k}: no pair found");
        for arch in arches() {
            assert_rejected(&kernel, &arch, "swap-full-empty");
        }
    }
    // ...and on a real compiled schedule on every arch.
    for arch in arches() {
        let (mut kernel, empty_base) = compiled_pipeline(&arch);
        assert!(swap_full_empty(&mut kernel, empty_base), "{}: no pair found", arch.name);
        assert_rejected(&kernel, &arch, "swap-full-empty");
    }
}

#[test]
fn shrinking_the_slot_ring_is_rejected() {
    for k in 2u8..=4 {
        let (mut kernel, _) = canonical_pipeline(k, 8);
        assert!(shrink_ring(&mut kernel), "K={k}: no PipeOff found");
        for arch in arches() {
            assert_rejected(&kernel, &arch, "shrink-ring");
        }
    }
}
