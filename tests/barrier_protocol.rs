//! Integration tests of the named-barrier machinery end to end: the
//! Figure 2 producer/consumer protocol under reuse, the paper's
//! footnote-1 occupancy interaction, and barrier-count accounting across
//! compiled kernels.

use chemkin::reference::tables::{ChemistrySpec, DiffusionTables};
use chemkin::synth;
use gpu_sim::arch::GpuArch;
use gpu_sim::isa::*;
use gpu_sim::launch::{launch, LaunchInputs, LaunchMode};
use gpu_sim::occupancy::occupancy;
use singe::{Compiler, Variant};
use singe::config::{CompileOptions, Placement};
use singe::kernels::{chemistry, diffusion};

/// Figure 2's two-barrier producer/consumer protocol, iterated many times
/// through a point loop so the barriers are recycled across generations —
/// the pattern multi-pass kernels depend on.
#[test]
fn figure2_protocol_under_heavy_reuse() {
    let iters = 50u32;
    let kernel = Kernel {
        name: "fig2".into(),
        body: vec![Node::PointLoop {
            iters,
            body: vec![
                // Consumer signals "buffer empty" (non-blocking arrive).
                Node::WarpIf {
                    mask: 0b10,
                    body: vec![Node::Op(Instr::BarArrive { bar: 0, warps: 2 })],
                },
                // Producer waits for empty, fills, signals full.
                Node::WarpIf {
                    mask: 0b01,
                    body: vec![
                        Node::Op(Instr::BarSync { bar: 0, warps: 2 }),
                        Node::Op(Instr::LdGlobal {
                            dst: 0,
                            addr: GAddr {
                                array: GlobalId(0),
                                row: IdxOp::Imm(0),
                                point: PointRef::Lane,
                            },
                            ldg: false,
                        }),
                        Node::Op(Instr::DAdd { dst: 0, a: Op::Reg(0), b: Op::Imm(1.0) }),
                        Node::Op(Instr::StShared {
                            src: Op::Reg(0),
                            addr: SAddr::lane(0),
                            lane_pred: None,
                        }),
                        Node::Op(Instr::BarArrive { bar: 1, warps: 2 }),
                    ],
                },
                // Consumer waits for full, accumulates into the output.
                Node::WarpIf {
                    mask: 0b10,
                    body: vec![
                        Node::Op(Instr::BarSync { bar: 1, warps: 2 }),
                        Node::Op(Instr::LdShared { dst: 1, addr: SAddr::lane(0) }),
                        Node::Op(Instr::StGlobal {
                            src: Op::Reg(1),
                            addr: GAddr {
                                array: GlobalId(1),
                                row: IdxOp::Imm(0),
                                point: PointRef::Lane,
                            },
                        }),
                    ],
                },
            ],
        }],
        warps_per_cta: 2,
        points_per_cta: 32 * iters as usize,
        dregs_per_thread: 4,
        iregs_per_thread: 1,
        shared_words: 32,
        local_words_per_thread: 0,
        const_banks: vec![],
        iconst_banks: vec![],
        barriers_used: 2,
        global_arrays: vec![
            ArrayDecl { name: "in".into(), rows: 1, output: false },
            ArrayDecl { name: "out".into(), rows: 1, output: true },
        ],
        spilled_bytes_per_thread: 0,
        exp_const_from_registers: false,
    };
    let arch = GpuArch::kepler_k20c();
    let points = kernel.points_per_cta;
    let input: Vec<f64> = (0..points).map(|i| i as f64).collect();
    let out = launch(&kernel, &arch, &LaunchInputs { arrays: vec![&input, &[]] }, points, LaunchMode::Full)
        .expect("protocol must not deadlock across generations");
    for (p, (&o, &i)) in out.outputs[1].iter().zip(&input).enumerate() {
        assert_eq!(o, i + 1.0, "point {p}");
    }
}

/// Footnote 1: named barriers restrict occupancy like shared memory and
/// registers do. A kernel using 16 barriers can never run two CTAs per SM.
#[test]
fn named_barriers_limit_occupancy_of_compiled_chemistry() {
    let m = synth::via_text(&synth::SynthConfig {
        name: "occ".into(),
        n_species: 12,
        n_reactions: 30,
        n_qssa: 3,
        n_stiff: 3,
        seed: 5,
    });
    let spec = ChemistrySpec::build(&m);
    let dfg = chemistry::chemistry_dfg(&spec, 8);
    let opts = CompileOptions::builder()
        .warps(8)
        .point_iters(2)
        .placement(Placement::Buffer(64))
        .w_locality(1.0)
        .build();
    let arch = GpuArch::kepler_k20c();
    let c = Compiler::new(&arch).options(opts).compile(&dfg, Variant::WarpSpecialized).unwrap();
    let occ = occupancy(&c.kernel, &arch);
    assert!(
        occ.ctas_per_sm * c.kernel.barriers_used <= arch.named_barriers_per_sm,
        "barrier occupancy violated: {} CTAs x {} barriers",
        occ.ctas_per_sm,
        c.kernel.barriers_used
    );
}

/// Diffusion's rotation rounds must use barriers (the §6.2 overhead), and
/// the unsafe-removal ablation must strip every barrier instruction.
#[test]
fn barrier_ablation_strips_all_barriers() {
    let m = synth::via_text(&synth::SynthConfig {
        name: "abl".into(),
        n_species: 10,
        n_reactions: 12,
        n_qssa: 0,
        n_stiff: 0,
        seed: 6,
    });
    let t = DiffusionTables::build(&m);
    let dfg = diffusion::diffusion_dfg(&t, 4);
    let arch = GpuArch::fermi_c2070();
    let mut opts = CompileOptions::builder()
        .warps(4)
        .point_iters(2)
        .placement(Placement::Mixed(96))
        .build();
    let compiler = Compiler::new(&arch);
    let with = compiler.clone().options(opts.clone()).compile(&dfg, Variant::WarpSpecialized).unwrap();
    opts.unsafe_remove_barriers = true;
    let without = compiler.options(opts).compile(&dfg, Variant::WarpSpecialized).unwrap();

    let count_bars = |k: &Kernel| {
        let mut n = 0;
        k.visit_ops(&mut |i| {
            if matches!(i, Instr::BarArrive { .. } | Instr::BarSync { .. }) {
                n += 1;
            }
        });
        n
    };
    assert!(count_bars(&with.kernel) > 0, "diffusion must synchronize");
    assert_eq!(count_bars(&without.kernel), 0, "ablation must remove all barriers");
}
