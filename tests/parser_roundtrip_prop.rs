//! Property tests over the mechanism input path: any synthetic mechanism,
//! serialized to the four CHEMKIN-style text files and re-parsed, must
//! reproduce the same structure, rate constants, thermodynamics, and
//! kernel-table footprints.

use chemkin::reference::tables::{ChemistrySpec, ViscosityTables};
use chemkin::synth::{self, MechanismFiles, SynthConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn synthesize_serialize_parse_roundtrip(
        n_species in 4usize..24,
        extra_reactions in 0usize..30,
        n_qssa in 0usize..4,
        n_stiff in 0usize..5,
        seed in 0u64..10_000,
    ) {
        prop_assume!(n_qssa + n_stiff <= n_species);
        let cfg = SynthConfig {
            name: "prop".into(),
            n_species,
            n_reactions: n_species + extra_reactions,
            n_qssa,
            n_stiff,
            seed,
        };
        let m = synth::synthesize(&cfg);
        let files = MechanismFiles::from_mechanism(&m);
        let m2 = files.parse("prop").expect("round-trip parse");

        prop_assert_eq!(m.n_species(), m2.n_species());
        prop_assert_eq!(m.n_reactions(), m2.n_reactions());
        prop_assert_eq!(&m.qssa, &m2.qssa);
        // Stoichiometry survives exactly.
        for (a, b) in m.reactions.iter().zip(m2.reactions.iter()) {
            prop_assert_eq!(&a.reactants, &b.reactants);
            prop_assert_eq!(&a.products, &b.products);
        }
        // Rate constants survive to high precision at a few temperatures.
        for (a, b) in m.reactions.iter().zip(m2.reactions.iter()) {
            for t in [500.0, 1200.0, 2400.0] {
                let (ka, kb) = (a.rate.forward(t, 1e-5), b.rate.forward(t, 1e-5));
                if ka != 0.0 {
                    prop_assert!(((ka - kb) / ka).abs() < 1e-9, "{} vs {}", ka, kb);
                }
            }
        }
        // Thermo survives.
        for (a, b) in m.thermo.iter().zip(m2.thermo.iter()) {
            for t in [400.0, 1600.0] {
                prop_assert!((a.g_rt(t) - b.g_rt(t)).abs() < 1e-6 * a.g_rt(t).abs().max(1.0));
            }
        }
        // Derived kernel tables agree (the compiler consumes these).
        let v1 = ViscosityTables::build(&m);
        let v2 = ViscosityTables::build(&m2);
        prop_assert_eq!(v1.n, v2.n);
        for (a, b) in v1.pair_a.iter().zip(v2.pair_a.iter()) {
            prop_assert!((a - b).abs() < 1e-9 * a.abs().max(1.0));
        }
        let c1 = ChemistrySpec::build(&m);
        let c2 = ChemistrySpec::build(&m2);
        prop_assert_eq!(c1.qssa_reaction_indices(), c2.qssa_reaction_indices());
    }

    #[test]
    fn chemistry_reference_is_always_finite(
        n_species in 4usize..16,
        n_qssa in 0usize..3,
        seed in 0u64..10_000,
        state_seed in 0u64..1_000,
    ) {
        prop_assume!(n_qssa + 2 <= n_species);
        let cfg = SynthConfig {
            name: "fin".into(),
            n_species,
            n_reactions: n_species + 6,
            n_qssa,
            n_stiff: 2,
            seed,
        };
        let m = synth::synthesize(&cfg);
        let spec = ChemistrySpec::build(&m);
        let g = chemkin::state::GridState::random(
            chemkin::state::GridDims { nx: 8, ny: 1, nz: 1 },
            spec.n_trans,
            state_seed,
        );
        let out = chemkin::reference::reference_chemistry(&spec, &g);
        for v in out {
            prop_assert!(v.is_finite(), "non-finite wdot {v}");
        }
    }
}

/// Deterministic pin of the case recorded in
/// `parser_roundtrip_prop.proptest-regressions` (`n_species = 5,
/// extra_reactions = 0, n_qssa = 3, n_stiff = 0, seed = 0`): a QSSA-heavy
/// mechanism whose species list is dominated by non-transported species.
/// The regression file only replays under the RNG stream that produced
/// it, so the shrunk configuration is pinned explicitly here — across a
/// band of seeds, since the failure was in the QSSA section round-trip,
/// not in one sampled reaction set.
#[test]
fn qssa_heavy_roundtrip_regression() {
    for seed in 0..50u64 {
        let cfg = SynthConfig {
            name: "prop".into(),
            n_species: 5,
            n_reactions: 5,
            n_qssa: 3,
            n_stiff: 0,
            seed,
        };
        let m = synth::synthesize(&cfg);
        let files = MechanismFiles::from_mechanism(&m);
        let m2 = files.parse("prop").expect("round-trip parse");
        assert_eq!(m.n_species(), m2.n_species(), "seed {seed}");
        assert_eq!(m.n_reactions(), m2.n_reactions(), "seed {seed}");
        assert_eq!(m.qssa, m2.qssa, "seed {seed}");
        for (a, b) in m.reactions.iter().zip(m2.reactions.iter()) {
            assert_eq!(a.reactants, b.reactants, "seed {seed}");
            assert_eq!(a.products, b.products, "seed {seed}");
            for t in [500.0, 1200.0, 2400.0] {
                let (ka, kb) = (a.rate.forward(t, 1e-5), b.rate.forward(t, 1e-5));
                if ka != 0.0 {
                    assert!(((ka - kb) / ka).abs() < 1e-9, "seed {seed}: {ka} vs {kb}");
                }
            }
        }
    }
}
