//! `singe-repro` — workspace umbrella for the PPoPP 2014 *Singe*
//! reproduction.
//!
//! Re-exports the three library crates so the workspace-level examples and
//! integration tests can use one dependency:
//!
//! * [`chemkin`] — mechanism parsing, rate models, CPU reference kernels,
//!   synthetic DME/heptane mechanisms;
//! * [`gpu_sim`] — the simulated Fermi/Kepler GPU (functional SIMT
//!   interpreter + analytic timing model);
//! * [`singe`] — the warp-specializing compiler and its data-parallel
//!   baseline.
//!
//! See `README.md` for the tour, `DESIGN.md` for the system inventory and
//! substitution rationale, and `EXPERIMENTS.md` for paper-vs-measured
//! results on every table and figure.

pub use chemkin;
pub use gpu_sim;
pub use singe;

/// Convenience: compile the three §3 kernels of a mechanism with the
/// paper's placement strategies and return them keyed by name.
pub fn compile_all_kernels(
    mech: &chemkin::Mechanism,
    arch: &gpu_sim::arch::GpuArch,
    warps: usize,
) -> Result<Vec<(String, gpu_sim::isa::Kernel)>, singe::CompileError> {
    use chemkin::reference::tables::{ChemistrySpec, DiffusionTables, ViscosityTables};
    use singe::config::{CompileOptions, Placement};
    use singe::kernels::{chemistry, diffusion, viscosity};
    use singe::{Compiler, Variant};

    let mut out = Vec::new();
    let vis = Compiler::new(arch)
        .options(CompileOptions::builder().warps(warps).placement(Placement::Store).build())
        .compile(
            &viscosity::viscosity_dfg(&ViscosityTables::build(mech), warps),
            Variant::WarpSpecialized,
        )?;
    out.push(("viscosity".to_string(), vis.kernel));
    let diff = Compiler::new(arch)
        .options(CompileOptions::builder().warps(warps).placement(Placement::Mixed(176)).build())
        .compile(
            &diffusion::diffusion_dfg(&DiffusionTables::build(mech), warps),
            Variant::WarpSpecialized,
        )?;
    out.push(("diffusion".to_string(), diff.kernel));
    let chem = Compiler::new(arch)
        .options(
            CompileOptions::builder()
                .warps(warps)
                .placement(Placement::Buffer(176))
                .w_locality(1.0)
                .build(),
        )
        .compile(
            &chemistry::chemistry_dfg(&ChemistrySpec::build(mech), warps),
            Variant::WarpSpecialized,
        )?;
    out.push(("chemistry".to_string(), chem.kernel));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_all_for_a_small_mechanism() {
        let m = chemkin::synth::via_text(&chemkin::synth::SynthConfig {
            name: "umbrella".into(),
            n_species: 8,
            n_reactions: 12,
            n_qssa: 2,
            n_stiff: 2,
            seed: 1,
        });
        let arch = gpu_sim::arch::GpuArch::kepler_k20c();
        let kernels = compile_all_kernels(&m, &arch, 4).unwrap();
        assert_eq!(kernels.len(), 3);
        for (name, k) in &kernels {
            assert!(k.static_instructions() > 0, "{name} emitted no code");
            assert!(k.barriers_used <= 16);
        }
    }
}
