//! Drive the brute-force autotuner (paper §4) over the viscosity kernel:
//! warp counts and streaming depths are explored exhaustively and scored
//! with the simulator's timing model.
//!
//! Run with: `cargo run --release --example autotune_viscosity`

use chemkin::reference::tables::ViscosityTables;
use chemkin::state::{GridDims, GridState};
use chemkin::synth;
use gpu_sim::arch::GpuArch;
use singe::autotune::{autotune, candidate_grid};
use singe::config::Placement;
use singe::kernels::launch_arrays;
use singe::kernels::viscosity::viscosity_dfg;

fn main() {
    let mech = synth::dme();
    let t = ViscosityTables::build(&mech);
    let arch = GpuArch::kepler_k20c();
    println!(
        "autotuning viscosity for '{}' ({} species) on {}",
        mech.name, t.n, arch.name
    );

    // The paper: "the search space for Singe was never more than a few
    // hundred points because warp-specialized decisions dealt with very
    // coarse-grained properties such as the number of target warps."
    let candidates = candidate_grid(Placement::Store);
    println!("{} candidate configurations", candidates.len());

    // One DFG per warp count (the partitioning is warp-count-dependent —
    // the §4 stage-1 input includes the target warp count).
    let n = t.n;
    let mut results = Vec::new();
    let mut failures = Vec::new();
    for cand in &candidates {
        let dfg = viscosity_dfg(&t, cand.warps);
        let r = autotune(&dfg, &arch, std::slice::from_ref(cand), 4096, &|k, pts| {
            let g = GridState::random(GridDims { nx: pts, ny: 1, nz: 1 }, n, 7);
            launch_arrays(&k.global_arrays, &g).expect("known arrays").iter().map(|s| s.to_vec()).collect()
        });
        match r {
            Ok(r) => match (r.points[0].seconds, &r.points[0].failure) {
                (Some(sec), _) => results.push((cand.clone(), sec)),
                (None, Some(why)) => failures.push((cand.clone(), why.to_string())),
                (None, None) => failures.push((cand.clone(), "unknown failure".into())),
            },
            Err(e) => failures.push((cand.clone(), format!("did not compile: {e}"))),
        }
    }
    results.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());

    println!("\n{:>6} {:>6} {:>14}", "warps", "iters", "sim us / 4096pt");
    for (opts, sec) in results.iter().take(8) {
        println!("{:>6} {:>6} {:>14.1}", opts.warps, opts.point_iters, sec * 1e6);
    }
    if !failures.is_empty() {
        println!("\n{} candidate(s) failed:", failures.len());
        for (opts, why) in &failures {
            println!("{:>6} {:>6}   {}", opts.warps, opts.point_iters, why);
        }
    }
    let best = &results[0].0;
    println!("\nbest: {} warps, {} point iterations", best.warps, best.point_iters);
    println!(
        "(the Figure 9 peak structure favors warp counts dividing the {} species — \
         larger counts can still win by raising occupancy)",
        t.n
    );
}
