//! Drive the autotuner (paper §4) over the viscosity kernel in both
//! modes: the brute-force exhaustive sweep scores every candidate with
//! the simulator's timing model, and the model-guided mode ranks every
//! candidate with the static analytical performance model first and only
//! simulates the top-K predictions.
//!
//! Run with: `cargo run --release --example autotune_viscosity`
//!
//! Pass `--search` to run the model-driven beam search instead: it
//! explores the full schedule space (warps x iters x placement x
//! pipeline depth x partition weights x flags), scoring every candidate
//! with the static model and simulating only the top-K survivors, and
//! prints the beam trajectory round by round.

use chemkin::reference::tables::ViscosityTables;
use chemkin::state::{GridDims, GridState};
use chemkin::synth;
use gpu_sim::arch::GpuArch;
use singe::autotune::{autotune, autotune_guided, candidate_grid_extended, GUIDED_TOP_K};
use singe::config::{CompileOptions, Placement};
use singe::kernels::launch_arrays;
use singe::kernels::viscosity::viscosity_dfg;
use singe::search::{autotune_search, SearchBudget};

/// `--search` mode: beam search over the full schedule space, with the
/// per-round trajectory (best model prediction vs best oracle time).
fn search_mode(t: &ViscosityTables, arch: &GpuArch) {
    let n = t.n;
    let base = CompileOptions::with_warps(4);
    let dfg = viscosity_dfg(t, base.warps);
    let budget = SearchBudget::builder().build();
    println!(
        "beam search: width {}, {} rounds, top-{} simulated, <= {} model evals",
        budget.beam_width, budget.rounds, budget.sim_top_k, budget.max_model_evals
    );
    let search = autotune_search(&dfg, arch, &base, &budget, 4096, &|k, pts| {
        let g = GridState::random(GridDims { nx: pts, ny: 1, nz: 1 }, n, 7);
        launch_arrays(&k.global_arrays, &g).expect("known arrays").iter().map(|s| s.to_vec()).collect()
    })
    .expect("search runs");
    let o = &search.outcome;

    println!("\n{:>6} {:>10} {:>18} {:>18}", "round", "scored", "best model us", "best sim us");
    for r in &o.rounds {
        let pred = r.best_predicted.map_or("-".into(), |s| format!("{:.1}", s * 1e6));
        let sim = r.best_simulated.map_or("-".into(), |s| format!("{:.1}", s * 1e6));
        println!("{:>6} {:>10} {:>18} {:>18}", r.round, r.evaluated, pred, sim);
    }
    println!(
        "\nscored {} candidates, simulated {} ({:.0}%)",
        o.model_evals,
        o.simulations,
        100.0 * o.sim_fraction()
    );
    let b = &o.best_options;
    println!(
        "best: {} warps, {} point iterations, depth {}, {:?} placement -> {:.1} us / 4096pt",
        b.warps,
        b.point_iters,
        b.pipeline_depth,
        b.placement,
        o.best_seconds * 1e6
    );
}

fn main() {
    let mech = synth::dme();
    let t = ViscosityTables::build(&mech);
    let arch = GpuArch::kepler_k20c();
    if std::env::args().any(|a| a == "--search") {
        println!(
            "schedule search: viscosity for '{}' ({} species) on {}",
            mech.name, t.n, arch.name
        );
        search_mode(&t, &arch);
        return;
    }
    println!(
        "autotuning viscosity for '{}' ({} species) on {}",
        mech.name, t.n, arch.name
    );

    // The paper: "the search space for Singe was never more than a few
    // hundred points because warp-specialized decisions dealt with very
    // coarse-grained properties such as the number of target warps."
    let candidates = candidate_grid_extended(Placement::Store);
    println!("{} candidate configurations", candidates.len());

    // One DFG per warp count (the partitioning is warp-count-dependent —
    // the §4 stage-1 input includes the target warp count). Each
    // candidate is both simulated and predicted by the static model, so
    // the table doubles as a model-accuracy readout.
    let n = t.n;
    let mut results = Vec::new();
    let mut failures = Vec::new();
    for cand in &candidates {
        let dfg = viscosity_dfg(&t, cand.warps);
        let r = autotune(&dfg, &arch, std::slice::from_ref(cand), 4096, &|k, pts| {
            let g = GridState::random(GridDims { nx: pts, ny: 1, nz: 1 }, n, 7);
            launch_arrays(&k.global_arrays, &g).expect("known arrays").iter().map(|s| s.to_vec()).collect()
        });
        match r {
            Ok(r) => match (r.points[0].seconds, &r.points[0].failure) {
                (Some(sec), _) => results.push((cand.clone(), sec, r.points[0].predicted_seconds)),
                (None, Some(why)) => failures.push((cand.clone(), why.to_string())),
                (None, None) => failures.push((cand.clone(), "unknown failure".into())),
            },
            Err(e) => failures.push((cand.clone(), format!("did not compile: {e}"))),
        }
    }
    results.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());

    println!(
        "\n{:>6} {:>6} {:>16} {:>16}",
        "warps", "iters", "sim us / 4096pt", "model us"
    );
    for (opts, sec, pred) in results.iter().take(8) {
        match pred {
            Some(p) => println!(
                "{:>6} {:>6} {:>16.1} {:>16.1}",
                opts.warps,
                opts.point_iters,
                sec * 1e6,
                p * 1e6
            ),
            None => println!("{:>6} {:>6} {:>16.1} {:>16}", opts.warps, opts.point_iters, sec * 1e6, "-"),
        }
    }
    if !failures.is_empty() {
        println!("\n{} candidate(s) failed:", failures.len());
        for (opts, why) in &failures {
            println!("{:>6} {:>6}   {}", opts.warps, opts.point_iters, why);
        }
    }
    let best = &results[0].0;
    println!("\nexhaustive best: {} warps, {} point iterations", best.warps, best.point_iters);

    // Model-guided mode over a single fixed DFG parameterization: rank
    // all candidates with the static model, simulate only the top-K.
    let dfg = viscosity_dfg(&t, 2);
    let guided = autotune_guided(&dfg, &arch, &candidates, 4096, GUIDED_TOP_K, &|k, pts| {
        let g = GridState::random(GridDims { nx: pts, ny: 1, nz: 1 }, n, 7);
        launch_arrays(&k.global_arrays, &g).expect("known arrays").iter().map(|s| s.to_vec()).collect()
    })
    .expect("guided autotune runs");
    let simulated = guided.points.iter().filter(|p| p.seconds.is_some()).count();
    println!(
        "\nmodel-guided (top-{GUIDED_TOP_K}): simulated {simulated}/{} candidates, \
         best {} warps, {} point iterations",
        candidates.len(),
        guided.best_options.warps,
        guided.best_options.point_iters
    );
    println!(
        "(the Figure 9 peak structure favors warp counts dividing the {} species — \
         larger counts can still win by raising occupancy)",
        t.n
    );
}
