//! Quickstart: parse a mechanism, compile the viscosity kernel both ways,
//! run them on the simulated Kepler GPU, and check against the CPU
//! reference.
//!
//! Run with: `cargo run --release --example quickstart`

use chemkin::reference::tables::ViscosityTables;
use chemkin::reference::reference_viscosity;
use chemkin::state::{GridDims, GridState};
use chemkin::synth;
use gpu_sim::arch::GpuArch;
use gpu_sim::launch::{launch, LaunchInputs, LaunchMode};
use singe::config::CompileOptions;
use singe::{Compiler, Variant};
use singe::kernels::viscosity::{viscosity_dfg, ARR_OUT};
use singe::kernels::launch_arrays;

fn main() {
    // 1. Get a mechanism. `synth::dme()` generates the paper's DME-sized
    //    mechanism (175 reactions, 39 species) as CHEMKIN text and parses
    //    it back — the same path a real mechanism file would take.
    let mech = synth::dme();
    println!(
        "mechanism '{}': {} reactions, {} species ({} transported after QSSA)",
        mech.name,
        mech.n_reactions(),
        mech.n_species(),
        mech.n_transported()
    );

    // 2. Build the viscosity dataflow graph and compile it twice.
    let tables = ViscosityTables::build(&mech);
    let arch = GpuArch::kepler_k20c();
    let opts = CompileOptions::builder().warps(10).point_iters(4).build();
    let dfg = viscosity_dfg(&tables, opts.warps);

    let ws = Compiler::new(&arch)
        .options(opts)
        .compile(&dfg, Variant::WarpSpecialized)
        .expect("warp-specialized compile");
    let base = Compiler::new(&arch)
        .options(CompileOptions::with_warps(8))
        .compile(&dfg, Variant::Baseline)
        .expect("baseline compile");
    println!(
        "warp-specialized: {} warps/CTA, {} regs32/thread, {} shared bytes, {} named barriers, {} constant regs",
        ws.kernel.warps_per_cta,
        ws.kernel.regs32_per_thread(),
        ws.kernel.shared_bytes(),
        ws.kernel.barriers_used,
        ws.stats.const_regs_per_thread,
    );
    println!(
        "baseline: {} regs32/thread, {} bytes spilled/thread, {} KB of constants",
        base.kernel.regs32_per_thread(),
        base.kernel.spilled_bytes_per_thread,
        base.kernel.total_dconstants() * 8 / 1024,
    );

    // 3. Run on a small grid and compare against the CPU reference.
    let points = ws.kernel.points_per_cta * 8;
    let grid = GridState::random(GridDims { nx: points, ny: 1, nz: 1 }, tables.n, 42);
    let expect = reference_viscosity(&tables, &grid);

    for (name, kernel) in [("warp-specialized", &ws.kernel), ("baseline", &base.kernel)] {
        let pts = points.div_ceil(kernel.points_per_cta) * kernel.points_per_cta;
        let g = GridState::random(GridDims { nx: pts, ny: 1, nz: 1 }, tables.n, 42);
        let arrays = launch_arrays(&kernel.global_arrays, &g).expect("known arrays");
        let out = launch(kernel, &arch, &LaunchInputs { arrays }, pts, LaunchMode::Full)
            .expect("launch");
        let max_rel = (0..points)
            .map(|p| ((out.outputs[ARR_OUT as usize][p] - expect[p]) / expect[p]).abs())
            .fold(0.0f64, f64::max);
        println!(
            "{name}: max relative error vs CPU reference = {max_rel:.2e} | simulated {:.2} Mpoints/s ({})",
            out.report.points_per_sec / 1e6,
            out.report.limiter
        );
        assert!(max_rel < 1e-10, "kernel must match the reference");
    }
    println!("both kernels match the CPU reference.");
}
