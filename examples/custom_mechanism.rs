//! Author a small mechanism directly in the CHEMKIN text format (Figure 4
//! syntax), parse it through the full Singe input path, compile all three
//! kernels, and print the generated CUDA-flavored source for inspection.
//!
//! Run with: `cargo run --release --example custom_mechanism`

use chemkin::parser::parse_mechanism;
use chemkin::reference::tables::{ChemistrySpec, DiffusionTables, ViscosityTables};
use gpu_sim::arch::GpuArch;
use singe::config::{CompileOptions, Placement};
use singe::{Compiler, Variant};
use singe::cuda;
use singe::kernels::{chemistry, diffusion, viscosity};

// The Figure 4 reaction-file syntax: labeled reactions, Troe falloff with
// low-pressure limits and third-body efficiencies, explicit reverse rates.
const CHEMKIN: &str = r#"
ELEMENTS
h c o
END
SPECIES
ch4 ch3 h h2 oh h2o o2 ho2
END
REACTIONS
!1 ch3+h(+m) = ch4(+m)  2.138e+15 -0.40 0.000E+00
  low / 3.310E+30 -4.00 2108. /
  troe/0.0 1.E-15 1.E-15 40./
  h2/2/ h2o/5/
!2 ch4+h = ch3+h2  1.727E+04 3.00 8.224E+03
  rev / 6.610E+02 3.00 7.744E+03 /
!3 ch4+oh => ch3+h2o  1.930E+05 2.40 2.106E+03
!4 h+o2 = oh+oh  1.915E+14 0.00 1.644E+04
!5 h+o2+m = ho2+m  1.475E+12 0.60 0.000E+00
  h2o/11/ h2/2/
!6 ho2+h = oh+oh  7.079E+13 0.00 2.950E+02
END
"#;

const THERMO: &str = "THERMO\n300.0 1000.0 5000.0
ch4\n 1.68 1.02e-2 -3.8e-6 6.8e-10 -4.5e-14\n -1.0e4 9.6 5.15 -1.37e-2 4.9e-5\n -4.8e-8 1.66e-11 -1.02e4 -4.6
ch3\n 2.97 5.8e-3 -1.97e-6 3.07e-10 -1.8e-14\n -2.5e3 4.7 3.66 2.1e-3 5.5e-6\n -6.7e-9 2.5e-12 -2.4e3 1.6
h\n 2.5 0.0 0.0 0.0 0.0\n 2.54e4 -0.45 2.5 0.0 0.0\n 0.0 0.0 2.54e4 -0.45
h2\n 3.34 -4.9e-5 4.99e-7 -1.8e-10 2.0e-14\n -950.0 -3.2 2.34 7.98e-3 -1.95e-5\n 2.0e-8 -7.4e-12 -917.9 0.68
oh\n 2.86 1.0e-3 -2.3e-7 2.0e-11 -1.0e-15\n 3.7e3 5.7 3.99 -2.4e-3 4.6e-6\n -3.9e-9 1.4e-12 3.6e3 -0.1
h2o\n 2.67 3.0e-3 -8.7e-7 1.2e-10 -6.4e-15\n -2.99e4 6.86 4.2 -2.0e-3 6.5e-6\n -5.5e-9 1.8e-12 -3.03e4 -0.85
o2\n 3.66 6.5e-4 -1.4e-7 2.0e-11 -1.3e-15\n -1.2e3 3.4 3.78 -3.0e-3 9.8e-6\n -9.7e-9 3.2e-12 -1.06e3 3.66
ho2\n 4.17 1.9e-3 -5.2e-7 7.1e-11 -3.8e-15\n 31.0 2.96 4.3 -4.7e-3 2.1e-5\n -2.4e-8 9.2e-12 294.8 3.72
END";

const TRANSPORT: &str = "TRANSPORT
ch4 2 141.40 3.746 0.000 2.600 13.000
ch3 1 144.00 3.800 0.000 0.000 0.000
h   0 145.00 2.050 0.000 0.000 0.000
h2  1  38.00 2.920 0.000 0.790 280.00
oh  1  80.00 2.750 0.000 0.000 0.000
h2o 2 572.40 2.605 1.844 0.000 4.000
o2  1 107.40 3.458 0.000 1.600 3.800
ho2 2 107.40 3.458 0.000 0.000 1.000
END";

const QSSA: &str = "QSSA\nch3\nEND\nSTIFF\nh oh\nEND";

fn main() {
    let mech = parse_mechanism("methane-demo", CHEMKIN, THERMO, TRANSPORT, Some(QSSA))
        .expect("mechanism parses");
    let c = mech.characteristics();
    println!(
        "parsed '{}': {} reactions, {} species, {} QSSA, {} stiff",
        mech.name, c.reactions, c.species, c.qssa, c.stiff
    );

    let arch = GpuArch::kepler_k20c();
    // One builder per kernel: `CompileOptions` is `#[non_exhaustive]`, so
    // options compose through the builder rather than struct updates.
    let base = || CompileOptions::builder().warps(3).point_iters(1);

    let vis = Compiler::new(&arch)
        .options(base().build())
        .compile(&viscosity::viscosity_dfg(&ViscosityTables::build(&mech), 3), Variant::WarpSpecialized)
        .expect("viscosity compiles");
    println!("\n--- generated CUDA (viscosity, first 40 lines) ---");
    for line in cuda::render(&vis.kernel).lines().take(40) {
        println!("{line}");
    }

    let diff = Compiler::new(&arch)
        .options(base().placement(Placement::Mixed(96)).build())
        .compile(&diffusion::diffusion_dfg(&DiffusionTables::build(&mech), 3), Variant::WarpSpecialized)
        .expect("diffusion compiles");
    let chem = Compiler::new(&arch)
        .options(base().warps(4).placement(Placement::Buffer(120)).w_locality(1.0).build())
        .compile(&chemistry::chemistry_dfg(&ChemistrySpec::build(&mech), 4), Variant::WarpSpecialized)
        .expect("chemistry compiles");

    println!("\nkernel summary:");
    for (name, k) in
        [("viscosity", &vis.kernel), ("diffusion", &diff.kernel), ("chemistry", &chem.kernel)]
    {
        println!(
            "  {name:<10} {} warps, {} static instrs, {} named barriers, {} B shared",
            k.warps_per_cta,
            k.static_instructions(),
            k.barriers_used,
            k.shared_bytes()
        );
    }
}
