//! Full combustion step: run viscosity, diffusion, and chemistry in
//! sequence on a simulated grid — the diffusion outputs feed the chemistry
//! kernel's stiffness phase, exactly the coupling the paper's Listing 4
//! loads from global memory.
//!
//! Run with: `cargo run --release --example chemistry_pipeline`

use chemkin::reference::tables::{ChemistrySpec, DiffusionTables, ViscosityTables};
use chemkin::state::{GridDims, GridState};
use chemkin::synth;
use gpu_sim::arch::GpuArch;
use gpu_sim::launch::{launch, LaunchInputs, LaunchMode};
use singe::config::{CompileOptions, Placement};
use singe::{Compiler, Variant};
use singe::kernels::{chemistry, diffusion, launch_arrays, viscosity};

fn main() {
    // A mid-sized mechanism keeps the functional simulation quick.
    let mech = synth::via_text(&synth::SynthConfig {
        name: "demo".into(),
        n_species: 16,
        n_reactions: 40,
        n_qssa: 3,
        n_stiff: 5,
        seed: 11,
    });
    let n = mech.n_transported();
    let arch = GpuArch::kepler_k20c();
    println!("mechanism '{}', {} transported species, {}", mech.name, n, arch.name);

    // Compile the three kernels with their §4.1 placement strategies
    // through the unified front door.
    let vis = Compiler::new(&arch)
        .options(
            CompileOptions::builder().warps(4).point_iters(2).placement(Placement::Store).build(),
        )
        .compile(
            &viscosity::viscosity_dfg(&ViscosityTables::build(&mech), 4),
            Variant::WarpSpecialized,
        )
        .expect("viscosity");
    let diff = Compiler::new(&arch)
        .options(
            CompileOptions::builder()
                .warps(4)
                .point_iters(2)
                .placement(Placement::Mixed(128))
                .build(),
        )
        .compile(
            &diffusion::diffusion_dfg(&DiffusionTables::build(&mech), 4),
            Variant::WarpSpecialized,
        )
        .expect("diffusion");
    let chem = Compiler::new(&arch)
        .options(
            CompileOptions::builder()
                .warps(8)
                .point_iters(2)
                .placement(Placement::Buffer(150))
                .w_locality(1.0)
                .build(),
        )
        .compile(
            &chemistry::chemistry_dfg(&ChemistrySpec::build(&mech), 8),
            Variant::WarpSpecialized,
        )
        .expect("chemistry");

    let points = 256;
    let mut grid = GridState::random(GridDims { nx: points, ny: 1, nz: 1 }, n, 99);

    // 1. Viscosity.
    let arrays = launch_arrays(&vis.kernel.global_arrays, &grid).expect("known arrays");
    let vout = launch(&vis.kernel, &arch, &LaunchInputs { arrays }, points, LaunchMode::Full)
        .expect("viscosity launch");
    println!(
        "viscosity : {:>8.2} Mpts/s  ({} barriers, {} const regs/thread, limiter {})",
        vout.report.points_per_sec / 1e6,
        vis.kernel.barriers_used,
        vis.stats.const_regs_per_thread,
        vout.report.limiter
    );

    // 2. Diffusion — its per-species outputs feed chemistry's stiffness.
    let arrays = launch_arrays(&diff.kernel.global_arrays, &grid).expect("known arrays");
    let dout = launch(&diff.kernel, &arch, &LaunchInputs { arrays }, points, LaunchMode::Full)
        .expect("diffusion launch");
    println!(
        "diffusion : {:>8.2} Mpts/s  ({} sync points, {} merged, limiter {})",
        dout.report.points_per_sec / 1e6,
        diff.stats.sync_points,
        diff.stats.merged_syncs,
        dout.report.limiter
    );
    grid.diffusion = dout.outputs[diffusion::ARR_OUT as usize].clone();

    // 3. Chemistry, consuming the diffusion rates (Listing 4 coupling).
    let arrays = launch_arrays(&chem.kernel.global_arrays, &grid).expect("known arrays");
    let cout = launch(&chem.kernel, &arch, &LaunchInputs { arrays }, points, LaunchMode::Full)
        .expect("chemistry launch");
    println!(
        "chemistry : {:>8.2} Mpts/s  ({} shared slots recycled through {} pass barriers, limiter {})",
        cout.report.points_per_sec / 1e6,
        chem.stats.shared_slots,
        chem.kernel.barriers_used,
        cout.report.limiter
    );

    // Sanity: the chemistry output matches the CPU reference fed with the
    // same diffusion rates.
    let spec = ChemistrySpec::build(&mech);
    let expect = chemkin::reference::reference_chemistry(&spec, &grid);
    let got = &cout.outputs[chemistry::ARR_OUT as usize];
    let scale = expect.iter().fold(0.0f64, |a, v| a.max(v.abs()));
    let max_err = got
        .iter()
        .zip(expect.iter())
        .map(|(g, w)| (g - w).abs() / scale)
        .fold(0.0f64, f64::max);
    println!("chemistry vs CPU reference: max scaled error {max_err:.2e}");
    assert!(max_err < 1e-9);
    println!("pipeline complete — all kernels consistent with the reference.");
}
