//! NASA seven-coefficient polynomial thermodynamics.
//!
//! The THERMO input file gives, per species, two temperature ranges with
//! seven coefficients each. These feed the equilibrium-constant evaluation
//! used for reverse reaction rates in the chemistry kernel (paper §3.4) and
//! are the "table of thermodynamic coefficients" of paper §3.1.

use crate::R_CAL;

/// NASA-7 polynomial pair for one species.
///
/// Nondimensional properties over a temperature range are
///
/// ```text
/// cp/R  = a1 + a2 T + a3 T^2 + a4 T^3 + a5 T^4
/// H/RT  = a1 + a2/2 T + a3/3 T^2 + a4/4 T^3 + a5/5 T^4 + a6/T
/// S/R   = a1 ln T + a2 T + a3/2 T^2 + a4/3 T^3 + a5/4 T^4 + a7
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NasaPoly {
    /// Lower bound of validity (K).
    pub t_low: f64,
    /// Switch-over temperature between the two ranges (K).
    pub t_mid: f64,
    /// Upper bound of validity (K).
    pub t_high: f64,
    /// Coefficients for `T < t_mid`.
    pub low: [f64; 7],
    /// Coefficients for `T >= t_mid`.
    pub high: [f64; 7],
}

impl NasaPoly {
    /// Select the coefficient set for temperature `t`.
    fn coeffs(&self, t: f64) -> &[f64; 7] {
        if t < self.t_mid {
            &self.low
        } else {
            &self.high
        }
    }

    /// Nondimensional heat capacity `cp/R`.
    pub fn cp_r(&self, t: f64) -> f64 {
        let a = self.coeffs(t);
        a[0] + t * (a[1] + t * (a[2] + t * (a[3] + t * a[4])))
    }

    /// Nondimensional enthalpy `H/(R T)`.
    pub fn h_rt(&self, t: f64) -> f64 {
        let a = self.coeffs(t);
        a[0] + t * (a[1] / 2.0 + t * (a[2] / 3.0 + t * (a[3] / 4.0 + t * a[4] / 5.0)))
            + a[5] / t
    }

    /// Nondimensional entropy `S/R`.
    pub fn s_r(&self, t: f64) -> f64 {
        let a = self.coeffs(t);
        a[0] * t.ln() + t * (a[1] + t * (a[2] / 2.0 + t * (a[3] / 3.0 + t * a[4] / 4.0))) + a[6]
    }

    /// Nondimensional Gibbs free energy `G/(R T) = H/RT - S/R`.
    pub fn g_rt(&self, t: f64) -> f64 {
        self.h_rt(t) - self.s_r(t)
    }

    /// Enthalpy in cal/mol.
    pub fn enthalpy_cal(&self, t: f64) -> f64 {
        self.h_rt(t) * R_CAL * t
    }

    /// A physically plausible default for a species of molecular weight `w`
    /// and atom count `n`, used by the synthetic mechanism generator.
    ///
    /// Heavier molecules get larger heat capacities (more vibrational
    /// modes); the enthalpy offset `a6` scales with size so equilibrium
    /// constants stay in a sane range.
    pub fn plausible(w: f64, n: u32, salt: f64) -> NasaPoly {
        let dof = 2.5 + 1.5 * f64::from(n.max(1));
        let a1 = dof * (1.0 + 0.05 * salt);
        let a2 = 1.0e-3 * (1.0 + 0.3 * salt) * f64::from(n);
        let a3 = -2.0e-7 * f64::from(n);
        let a4 = 2.0e-11 * f64::from(n);
        let a5 = -5.0e-16 * f64::from(n);
        // Kept modest so reaction Gibbs differences (and thus equilibrium
        // constants) stay in a numerically sane range at low temperatures.
        let a6 = -50.0 * w * (1.0 + 0.2 * salt);
        let a7 = 3.0 + 0.5 * f64::from(n) + salt;
        let low = [a1, a2, a3, a4, a5, a6, a7];
        // High range: slightly stiffer cp, continuous-ish at t_mid.
        let high = [
            a1 * 1.1,
            a2 * 0.8,
            a3 * 0.5,
            a4 * 0.25,
            a5 * 0.1,
            a6,
            a7 * 0.95,
        ];
        NasaPoly {
            t_low: 300.0,
            t_mid: 1000.0,
            t_high: 5000.0,
            low,
            high,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> NasaPoly {
        NasaPoly::plausible(28.0, 2, 0.1)
    }

    #[test]
    fn cp_is_positive_over_range() {
        let p = sample();
        for t in [300.0, 700.0, 1000.0, 1800.0, 3000.0] {
            assert!(p.cp_r(t) > 0.0, "cp/R at {t}");
        }
    }

    #[test]
    fn gibbs_is_h_minus_ts() {
        let p = sample();
        let t = 1500.0;
        assert!((p.g_rt(t) - (p.h_rt(t) - p.s_r(t))).abs() < 1e-12);
    }

    #[test]
    fn range_selection_switches_at_mid() {
        let mut p = sample();
        p.high[0] = 99.0; // make ranges obviously different
        assert!((p.cp_r(999.9) - p.cp_r(1000.1)).abs() > 1.0);
    }

    #[test]
    fn enthalpy_units() {
        let p = sample();
        let t = 1000.0;
        assert!((p.enthalpy_cal(t) - p.h_rt(t) * R_CAL * t).abs() < 1e-9);
    }

    #[test]
    fn heavier_species_have_larger_cp() {
        let light = NasaPoly::plausible(2.0, 2, 0.0);
        let heavy = NasaPoly::plausible(100.0, 23, 0.0);
        assert!(heavy.cp_r(1000.0) > light.cp_r(1000.0));
    }
}
