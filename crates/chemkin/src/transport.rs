//! Transport properties: per-species viscosity fits and per-pair diffusion
//! fits ("table of diffusion and viscosity coefficients", paper §3.1).
//!
//! The paper's kernels consume third-order polynomial fits evaluated in the
//! exponent (paper §3.2 and §3.3):
//!
//! ```text
//! vis_i(T)  = exp(eta_i0  + eta_i1 T  + eta_i2 T^2  + eta_i3 T^3)
//! d_ij(T)   = exp(delta_ij0 + delta_ij1 T + delta_ij2 T^2 + delta_ij3 T^3)
//! ```
//!
//! The TRANSPORT input file carries raw Lennard-Jones-style molecular
//! parameters (as in real CHEMKIN `tran.dat` files); the polynomial fits are
//! derived from those parameters by smooth deterministic formulas. Real
//! CHEMKIN performs collision-integral fits; our derivation preserves the
//! *structure* (same polynomial form, same working-set and constant
//! footprint) which is what the paper's performance story depends on.

/// Raw molecular transport parameters for one species, as stored in the
/// TRANSPORT file.
#[derive(Debug, Clone, PartialEq)]
pub struct TransportFit {
    /// Geometry index (0 = atom, 1 = linear, 2 = nonlinear), CHEMKIN style.
    pub shape: u8,
    /// Lennard-Jones well depth over Boltzmann constant, K.
    pub eps_over_k: f64,
    /// Lennard-Jones collision diameter, Angstrom.
    pub sigma: f64,
    /// Dipole moment, Debye.
    pub dipole: f64,
    /// Polarizability, Angstrom^3.
    pub polarizability: f64,
    /// Rotational relaxation collision number at 298 K.
    pub zrot: f64,
}

impl TransportFit {
    /// Derive the four viscosity-exponent polynomial coefficients
    /// `eta_0..eta_3` for a species of molecular weight `w`.
    ///
    /// Chosen so that `exp(poly(T))` stays within physically plausible gas
    /// viscosities (1e-5 .. 3e-4 P) over `T in [300, 3000]` K.
    pub fn viscosity_poly(&self, w: f64) -> [f64; 4] {
        let e0 = -11.0 + 0.40 * w.ln() - 0.05 * self.sigma + 0.02 * self.dipole
            - 0.01 * f64::from(self.shape);
        let e1 = 8.0e-4 * (1.0 + 0.10 * (self.eps_over_k / 500.0).tanh());
        let e2 = -1.5e-7 * (1.0 + 0.05 * (self.sigma - 3.0));
        let e3 = 1.5e-11 * (1.0 + 0.02 * self.polarizability);
        [e0, e1, e2, e3]
    }
}

/// The symmetric `N x N x 4` matrix of pair diffusion-fit coefficients
/// (`delta` in paper §3.3). The diagonal is zero and never computed — the
/// paper's Figure 5 partitioning exploits exactly this structure.
#[derive(Debug, Clone)]
pub struct PairDiffusion {
    n: usize,
    /// Row-major `[i][j]` coefficient quadruples; `coeffs[i][j] == coeffs[j][i]`.
    coeffs: Vec<[f64; 4]>,
}

impl PairDiffusion {
    /// Build the pair matrix from per-species parameters and weights using
    /// symmetric combining rules.
    pub fn derive(fits: &[TransportFit], weights: &[f64]) -> PairDiffusion {
        assert_eq!(fits.len(), weights.len());
        let n = fits.len();
        let mut coeffs = vec![[0.0f64; 4]; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let sig = 0.5 * (fits[i].sigma + fits[j].sigma);
                let eps = (fits[i].eps_over_k * fits[j].eps_over_k).sqrt();
                // Reduced mass drives the leading coefficient.
                let mu = weights[i] * weights[j] / (weights[i] + weights[j]);
                let d0 = -12.0 - 0.30 * mu.ln() - 0.04 * sig;
                let d1 = 1.2e-3 * (1.0 + 0.08 * (eps / 600.0).tanh());
                let d2 = -2.0e-7 * (1.0 + 0.03 * (sig - 3.0));
                let d3 = 2.0e-11;
                let c = [d0, d1, d2, d3];
                coeffs[i * n + j] = c;
                coeffs[j * n + i] = c;
            }
        }
        PairDiffusion { n, coeffs }
    }

    /// Construct directly from a full coefficient table (used by tests and
    /// by mechanisms loaded from explicit data). Panics if not symmetric
    /// with a zero diagonal.
    pub fn from_table(n: usize, coeffs: Vec<[f64; 4]>) -> PairDiffusion {
        assert_eq!(coeffs.len(), n * n);
        for i in 0..n {
            assert_eq!(coeffs[i * n + i], [0.0; 4], "diagonal must be zero");
            for j in 0..n {
                assert_eq!(coeffs[i * n + j], coeffs[j * n + i], "must be symmetric");
            }
        }
        PairDiffusion { n, coeffs }
    }

    /// Number of species.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Coefficient quadruple for pair `(i, j)`.
    pub fn pair(&self, i: usize, j: usize) -> [f64; 4] {
        self.coeffs[i * self.n + j]
    }

    /// Evaluate `d_ij(T) = exp(poly(T))`; the diagonal is exactly zero
    /// (`exp` is never applied there — the matrix entry is defined as 0).
    pub fn eval(&self, i: usize, j: usize, t: f64) -> f64 {
        if i == j {
            return 0.0;
        }
        let c = self.pair(i, j);
        (c[0] + t * (c[1] + t * (c[2] + t * c[3]))).exp()
    }

    /// Bytes of double-precision constants required to store the strictly
    /// off-diagonal pair coefficients once (4 doubles per unordered pair) —
    /// used when reporting constant-footprint numbers.
    pub fn constant_bytes(&self) -> usize {
        self.n * (self.n - 1) / 2 * 4 * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fit(sigma: f64, eps: f64) -> TransportFit {
        TransportFit {
            shape: 1,
            eps_over_k: eps,
            sigma,
            dipole: 0.0,
            polarizability: 1.0,
            zrot: 1.0,
        }
    }

    #[test]
    fn viscosity_plausible_over_temperature_range() {
        let f = fit(3.6, 240.0);
        let p = f.viscosity_poly(28.0);
        for t in [300.0, 1000.0, 2000.0, 3000.0] {
            let v = (p[0] + t * (p[1] + t * (p[2] + t * p[3]))).exp();
            assert!(v > 1e-6 && v < 1e-2, "viscosity {v} at T={t}");
        }
    }

    #[test]
    fn pair_matrix_is_symmetric_zero_diagonal() {
        let fits: Vec<_> = (0..5).map(|i| fit(3.0 + 0.2 * i as f64, 100.0 + 50.0 * i as f64)).collect();
        let w: Vec<f64> = (0..5).map(|i| 10.0 + 5.0 * i as f64).collect();
        let pd = PairDiffusion::derive(&fits, &w);
        for i in 0..5 {
            assert_eq!(pd.pair(i, i), [0.0; 4]);
            assert_eq!(pd.eval(i, i, 1500.0), 0.0);
            for j in 0..5 {
                assert_eq!(pd.pair(i, j), pd.pair(j, i));
            }
        }
    }

    #[test]
    fn diffusion_values_plausible() {
        let fits: Vec<_> = (0..3).map(|i| fit(3.0, 150.0 + i as f64)).collect();
        let w = vec![2.0, 28.0, 100.0];
        let pd = PairDiffusion::derive(&fits, &w);
        for t in [300.0, 1500.0, 3000.0] {
            let d = pd.eval(0, 2, t);
            assert!(d > 0.0 && d.is_finite());
        }
    }

    #[test]
    fn constant_bytes_matches_closed_form() {
        let fits: Vec<_> = (0..10).map(|_| fit(3.0, 100.0)).collect();
        let w = vec![10.0; 10];
        let pd = PairDiffusion::derive(&fits, &w);
        assert_eq!(pd.constant_bytes(), 45 * 32);
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn from_table_rejects_asymmetry() {
        let mut t = vec![[0.0; 4]; 4];
        t[1] = [1.0, 0.0, 0.0, 0.0]; // (0,1) != (1,0)
        PairDiffusion::from_table(2, t);
    }
}
