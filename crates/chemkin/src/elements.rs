//! The subset of the periodic table needed by combustion mechanisms.
//!
//! Combustion chemistry for hydrocarbon fuels (the paper's DME and
//! n-heptane mechanisms) only involves a handful of elements; we model the
//! common CHEMKIN set plus argon and helium for bath gases.

use crate::error::{ChemError, Result};

/// A chemical element appearing in species composition lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Element {
    H,
    C,
    O,
    N,
    Ar,
    He,
}

impl Element {
    /// All supported elements in declaration order.
    pub const ALL: [Element; 6] = [
        Element::H,
        Element::C,
        Element::O,
        Element::N,
        Element::Ar,
        Element::He,
    ];

    /// Standard atomic weight in g/mol (CODATA, truncated).
    pub fn atomic_weight(self) -> f64 {
        match self {
            Element::H => 1.00794,
            Element::C => 12.0107,
            Element::O => 15.9994,
            Element::N => 14.0067,
            Element::Ar => 39.948,
            Element::He => 4.002602,
        }
    }

    /// Canonical CHEMKIN symbol (upper case).
    pub fn symbol(self) -> &'static str {
        match self {
            Element::H => "H",
            Element::C => "C",
            Element::O => "O",
            Element::N => "N",
            Element::Ar => "AR",
            Element::He => "HE",
        }
    }

    /// Parse a (case-insensitive) element symbol.
    pub fn parse(sym: &str) -> Result<Element> {
        match sym.to_ascii_uppercase().as_str() {
            "H" => Ok(Element::H),
            "C" => Ok(Element::C),
            "O" => Ok(Element::O),
            "N" => Ok(Element::N),
            "AR" => Ok(Element::Ar),
            "HE" => Ok(Element::He),
            other => Err(ChemError::UnknownElement(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        for e in Element::ALL {
            assert_eq!(Element::parse(e.symbol()).unwrap(), e);
        }
    }

    #[test]
    fn parse_is_case_insensitive() {
        assert_eq!(Element::parse("ar").unwrap(), Element::Ar);
        assert_eq!(Element::parse("h").unwrap(), Element::H);
    }

    #[test]
    fn unknown_element_is_rejected() {
        assert!(matches!(
            Element::parse("XE"),
            Err(ChemError::UnknownElement(_))
        ));
    }

    #[test]
    fn weights_are_positive_and_ordered_sensibly() {
        assert!(Element::H.atomic_weight() < Element::C.atomic_weight());
        assert!(Element::C.atomic_weight() < Element::Ar.atomic_weight());
        for e in Element::ALL {
            assert!(e.atomic_weight() > 0.0);
        }
    }
}
