//! `chemkin` — combustion-chemistry substrate for the Singe reproduction.
//!
//! This crate provides everything the Singe compiler (PPoPP 2014) consumes:
//!
//! * a data model for chemical mechanisms (species, reactions, thermodynamic
//!   and transport coefficients) following the CHEMKIN-III conventions the
//!   paper's declarative data DSL is based on (paper §3.1),
//! * parsers for the four input files Singe reads: the CHEMKIN reaction
//!   file (paper Figure 4), the THERMO file, the TRANSPORT file, and the
//!   optional QSSA/stiffness file,
//! * a writer that regenerates the text format (round-trip tested),
//! * deterministic synthetic mechanism generators reproducing the paper's
//!   Figure 3 characteristics for DME and n-heptane,
//! * scalar CPU **reference implementations** of the three kernels the paper
//!   studies — viscosity (§3.2), diffusion (§3.3) and chemistry (§3.4) —
//!   which serve as ground truth for every compiled GPU kernel, and
//! * structure-of-arrays grid state helpers matching the field layout the
//!   paper describes (each field contiguous for coalesced loads).

// Indexed `for i in 0..n` loops over parallel arrays are the prevailing
// idiom in the numeric kernels here; iterator rewrites obscure them.
#![allow(clippy::needless_range_loop)]

pub mod elements;
pub mod error;
pub mod mechanism;
pub mod parser;
pub mod reaction;
pub mod reference;
pub mod species;
pub mod state;
pub mod synth;
pub mod thermo;
pub mod transport;
pub mod writer;

pub use error::{ChemError, Result};
pub use mechanism::{Mechanism, QssaSpec, SpeciesId};
pub use reaction::{Arrhenius, RateModel, Reaction, ReverseSpec, ThirdBody, TroeParams};
pub use species::Species;
pub use state::{GridDims, GridState};
pub use thermo::NasaPoly;
pub use transport::{PairDiffusion, TransportFit};

/// Universal gas constant in cal/(mol·K) — CHEMKIN activation energies are
/// conventionally given in cal/mol.
pub const R_CAL: f64 = 1.987_204_258_640_83;
/// Standard atmosphere in dyn/cm^2 (CGS), the unit system CHEMKIN uses.
pub const P_ATM: f64 = 1.013_25e6;
/// Minimum molar fraction used by the diffusion clamp (paper §3.3, `eps`).
pub const MIN_MOLE_FRAC: f64 = 1.0e-12;
