//! Reaction rate models: Arrhenius, Lindemann and Troe falloff,
//! Landau-Teller, explicit-reverse and equilibrium-reverse reactions, and
//! third-body efficiencies — the full set named in paper §3.4.

use crate::mechanism::SpeciesId;
use crate::R_CAL;

/// Modified Arrhenius parameters: `k(T) = a * T^beta * exp(-e_act / (R T))`
/// with `e_act` in cal/mol (CHEMKIN convention).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arrhenius {
    /// Pre-exponential factor (units depend on reaction order).
    pub a: f64,
    /// Temperature exponent.
    pub beta: f64,
    /// Activation energy, cal/mol.
    pub e_act: f64,
}

impl Arrhenius {
    /// Construct from the three numbers on a CHEMKIN reaction line.
    pub fn new(a: f64, beta: f64, e_act: f64) -> Arrhenius {
        Arrhenius { a, beta, e_act }
    }

    /// Evaluate the rate constant at temperature `t` (K).
    pub fn eval(&self, t: f64) -> f64 {
        self.a * t.powf(self.beta) * (-self.e_act / (R_CAL * t)).exp()
    }

    /// Evaluate in logarithmic space, as the paper's optimized kernels do
    /// (§6: "the use of logarithmic-space computations"):
    /// `ln k = ln a + beta ln T - e/(R T)`.
    pub fn eval_log(&self, ln_t: f64, inv_rt: f64) -> f64 {
        (self.a.ln() + self.beta * ln_t - self.e_act * inv_rt).exp()
    }
}

/// Troe falloff blending parameters (`troe/a t3 t1 t2/` auxiliary line).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TroeParams {
    /// Weighting between the two exponential terms.
    pub a: f64,
    /// First falloff temperature, K.
    pub t3: f64,
    /// Second falloff temperature, K.
    pub t1: f64,
    /// Optional third temperature, K (`None` for the 3-parameter form).
    pub t2: Option<f64>,
}

impl TroeParams {
    /// Center broadening factor `F_cent(T)`.
    pub fn f_cent(&self, t: f64) -> f64 {
        let mut f = (1.0 - self.a) * (-t / self.t3).exp() + self.a * (-t / self.t1).exp();
        if let Some(t2) = self.t2 {
            f += (-t2 / t).exp();
        }
        // Clamp away from zero so log10 stays finite (tiny F_cent means the
        // falloff is essentially Lindemann-like anyway).
        f.max(1.0e-30)
    }
}

/// How the forward rate constant of a reaction is computed.
#[derive(Debug, Clone, PartialEq)]
pub enum RateModel {
    /// Plain modified Arrhenius.
    Arrhenius(Arrhenius),
    /// Lindemann pressure falloff: high- and low-pressure limits blended by
    /// the reduced pressure `pr = k_low [M] / k_inf`.
    Lindemann {
        /// High-pressure limit.
        high: Arrhenius,
        /// Low-pressure limit (`low/.../` auxiliary line).
        low: Arrhenius,
    },
    /// Troe falloff: Lindemann plus the Troe broadening factor `F`.
    Troe {
        /// High-pressure limit.
        high: Arrhenius,
        /// Low-pressure limit.
        low: Arrhenius,
        /// Troe parameters (`troe/.../` auxiliary line).
        troe: TroeParams,
    },
    /// Landau-Teller vibrational-relaxation form:
    /// `k = a T^beta exp(-e/(R T) + b T^{-1/3} + c T^{-2/3})`.
    LandauTeller {
        /// Arrhenius part.
        arrhenius: Arrhenius,
        /// `b` coefficient (`lt/b c/` auxiliary line).
        b: f64,
        /// `c` coefficient.
        c: f64,
    },
}

impl RateModel {
    /// Forward rate constant given temperature `t` and third-body
    /// concentration `m` (mol/cm^3); `m` is ignored by non-falloff models.
    pub fn forward(&self, t: f64, m: f64) -> f64 {
        match self {
            RateModel::Arrhenius(a) => a.eval(t),
            RateModel::Lindemann { high, low } => {
                let kinf = high.eval(t);
                let pr = low.eval(t) * m / kinf;
                kinf * pr / (1.0 + pr)
            }
            RateModel::Troe { high, low, troe } => {
                let kinf = high.eval(t);
                let pr = low.eval(t) * m / kinf;
                if pr <= 0.0 {
                    return 0.0;
                }
                // Exactly the scheme of the paper's Listing 1, where
                // `fcent` holds log10 of the center broadening factor.
                let lfc = troe.f_cent(t).log10();
                let flogpr = pr.log10() - 0.4 - 0.67 * lfc;
                let fdenom = 0.75 - 1.27 * lfc - 0.14 * flogpr;
                let mut fquan = flogpr / fdenom;
                fquan = lfc / (1.0 + fquan * fquan);
                const DLN10: f64 = std::f64::consts::LN_10;
                kinf * pr / (1.0 + pr) * (fquan * DLN10).exp()
            }
            RateModel::LandauTeller { arrhenius, b, c } => {
                let t13 = t.cbrt();
                arrhenius.eval(t) * (b / t13 + c / (t13 * t13)).exp()
            }
        }
    }

    /// Number of double-precision constants this model needs per reaction —
    /// the paper notes "between 6 and 15 double precision constants per
    /// reaction" (§3.4).
    pub fn constant_count(&self) -> usize {
        match self {
            RateModel::Arrhenius(_) => 3,
            RateModel::Lindemann { .. } => 6,
            RateModel::Troe { troe, .. } => 6 + 3 + usize::from(troe.t2.is_some()),
            RateModel::LandauTeller { .. } => 5,
        }
    }

    /// True if the model depends on the third-body concentration.
    pub fn is_falloff(&self) -> bool {
        matches!(self, RateModel::Lindemann { .. } | RateModel::Troe { .. })
    }
}

/// How the reverse rate constant is obtained.
#[derive(Debug, Clone, PartialEq)]
pub enum ReverseSpec {
    /// Irreversible reaction: reverse rate is zero.
    Irreversible,
    /// Explicit Arrhenius reverse parameters (`rev/.../` auxiliary line).
    Explicit(Arrhenius),
    /// Reverse computed from the equilibrium constant via thermo data.
    Equilibrium,
}

/// Third-body collision efficiencies (`(+m)` reactions; `h2/2/ h2o/5/`
/// auxiliary entries in Figure 4).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ThirdBody {
    /// Per-species enhancement factors; species not listed default to 1.0.
    pub efficiencies: Vec<(SpeciesId, f64)>,
}

impl ThirdBody {
    /// Effective third-body concentration `[M] = sum_i eff_i [X_i]`.
    pub fn concentration(&self, conc: &[f64]) -> f64 {
        let mut m: f64 = conc.iter().sum();
        for &(s, eff) in &self.efficiencies {
            m += (eff - 1.0) * conc[s];
        }
        m
    }
}

/// A single mechanism reaction: stoichiometry plus rate specification.
#[derive(Debug, Clone, PartialEq)]
pub struct Reaction {
    /// Comment label (`!1`, `!2`, ... in Figure 4) or empty.
    pub label: String,
    /// Reactant `(species, stoichiometric coefficient)` pairs.
    pub reactants: Vec<(SpeciesId, f64)>,
    /// Product `(species, stoichiometric coefficient)` pairs.
    pub products: Vec<(SpeciesId, f64)>,
    /// Forward rate model.
    pub rate: RateModel,
    /// Reverse rate specification.
    pub reverse: ReverseSpec,
    /// Third-body efficiencies if this is a `(+m)` or `+m` reaction.
    pub third_body: Option<ThirdBody>,
}

impl Reaction {
    /// Net stoichiometric coefficient of `s` (products minus reactants).
    pub fn net_stoich(&self, s: SpeciesId) -> f64 {
        let p: f64 = self
            .products
            .iter()
            .filter(|(id, _)| *id == s)
            .map(|(_, c)| c)
            .sum();
        let r: f64 = self
            .reactants
            .iter()
            .filter(|(id, _)| *id == s)
            .map(|(_, c)| c)
            .sum();
        p - r
    }

    /// All species ids mentioned by the reaction (with duplicates removed).
    pub fn species(&self) -> Vec<SpeciesId> {
        let mut v: Vec<SpeciesId> = self
            .reactants
            .iter()
            .chain(self.products.iter())
            .map(|(s, _)| *s)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// True if the reaction mentions species `s` on either side.
    pub fn involves(&self, s: SpeciesId) -> bool {
        self.reactants.iter().any(|(id, _)| *id == s)
            || self.products.iter().any(|(id, _)| *id == s)
    }

    /// Total double-precision constant count (forward model + explicit
    /// reverse if present), mirroring the paper's per-reaction accounting.
    pub fn constant_count(&self) -> usize {
        self.rate.constant_count()
            + match self.reverse {
                ReverseSpec::Explicit(_) => 3,
                _ => 0,
            }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrhenius_matches_formula() {
        let a = Arrhenius::new(1.0e13, 0.5, 1000.0);
        let t: f64 = 1200.0;
        let expect = 1.0e13 * t.powf(0.5) * (-1000.0 / (R_CAL * t)).exp();
        assert!((a.eval(t) - expect).abs() / expect < 1e-14);
    }

    #[test]
    fn log_space_evaluation_agrees() {
        let a = Arrhenius::new(2.138e15, -0.4, 2108.0);
        let t = 1500.0;
        let direct = a.eval(t);
        let logspace = a.eval_log(t.ln(), 1.0 / (R_CAL * t));
        assert!((direct - logspace).abs() / direct < 1e-12);
    }

    #[test]
    fn lindemann_limits() {
        let high = Arrhenius::new(2.138e15, -0.40, 0.0);
        let low = Arrhenius::new(3.310e30, -4.00, 2108.0);
        let model = RateModel::Lindemann { high, low };
        let t = 1500.0;
        // At huge [M] the rate approaches the high-pressure limit.
        let k_hi = model.forward(t, 1.0e12);
        assert!((k_hi - high.eval(t)).abs() / high.eval(t) < 1e-3);
        // At tiny [M] it approaches k_low * [M].
        let m = 1.0e-18;
        let k_lo = model.forward(t, m);
        assert!((k_lo - low.eval(t) * m).abs() / k_lo < 1e-3);
    }

    #[test]
    fn troe_reduces_toward_lindemann_when_fcent_is_one() {
        // F_cent == 1 makes log10(F_cent) == 0 and the broadening factor 1.
        let high = Arrhenius::new(1.0e14, 0.0, 0.0);
        let low = Arrhenius::new(1.0e20, 0.0, 0.0);
        let troe = TroeParams { a: 1.0, t3: 1.0, t1: 1.0e30, t2: None };
        let lin = RateModel::Lindemann { high, low };
        let tro = RateModel::Troe { high, low, troe };
        let t = 1000.0;
        let m = 1.0e-6;
        let (kl, kt) = (lin.forward(t, m), tro.forward(t, m));
        assert!((kl - kt).abs() / kl < 1e-6, "{kl} vs {kt}");
    }

    #[test]
    fn landau_teller_extra_exponent() {
        let arr = Arrhenius::new(1.0e10, 0.0, 0.0);
        let model = RateModel::LandauTeller { arrhenius: arr, b: 100.0, c: -50.0 };
        let t: f64 = 2000.0;
        let t13 = t.cbrt();
        let expect = arr.eval(t) * (100.0 / t13 - 50.0 / (t13 * t13)).exp();
        let got = model.forward(t, 0.0);
        assert!((got - expect).abs() / expect < 1e-13);
    }

    #[test]
    fn constant_counts_are_in_paper_range() {
        let a = Arrhenius::new(1.0, 0.0, 0.0);
        let models = [
            RateModel::Arrhenius(a),
            RateModel::Lindemann { high: a, low: a },
            RateModel::Troe { high: a, low: a, troe: TroeParams { a: 0.0, t3: 1.0, t1: 1.0, t2: Some(40.0) } },
            RateModel::LandauTeller { arrhenius: a, b: 0.0, c: 0.0 },
        ];
        for m in &models {
            let c = m.constant_count();
            assert!((3..=15).contains(&c), "{c}");
        }
    }

    #[test]
    fn third_body_efficiencies() {
        let tb = ThirdBody { efficiencies: vec![(0, 2.0), (2, 5.0)] };
        let conc = [1.0, 1.0, 1.0];
        // sum = 3, plus (2-1)*1 + (5-1)*1 = 8
        assert!((tb.concentration(&conc) - 8.0).abs() < 1e-14);
    }

    #[test]
    fn net_stoich() {
        // 2A + B -> A + 3C
        let r = Reaction {
            label: String::new(),
            reactants: vec![(0, 2.0), (1, 1.0)],
            products: vec![(0, 1.0), (2, 3.0)],
            rate: RateModel::Arrhenius(Arrhenius::new(1.0, 0.0, 0.0)),
            reverse: ReverseSpec::Irreversible,
            third_body: None,
        };
        assert_eq!(r.net_stoich(0), -1.0);
        assert_eq!(r.net_stoich(1), -1.0);
        assert_eq!(r.net_stoich(2), 3.0);
        assert_eq!(r.species(), vec![0, 1, 2]);
        assert!(r.involves(1) && !r.involves(3));
    }
}
