//! Error type shared by all chemkin parsing and validation stages.

use std::fmt;

/// Errors produced while parsing or validating mechanism inputs.
#[derive(Debug, Clone, PartialEq)]
pub enum ChemError {
    /// A syntax error in one of the input files, with line number context.
    Parse {
        /// Which file kind the error occurred in ("CHEMKIN", "THERMO", ...).
        file: &'static str,
        /// 1-based line number.
        line: usize,
        /// Human-readable description.
        msg: String,
    },
    /// A reference to a species name that was never declared.
    UnknownSpecies(String),
    /// A reference to an element symbol outside the supported periodic table.
    UnknownElement(String),
    /// Mechanism-level consistency violation (e.g. missing thermo data).
    Validation(String),
}

impl fmt::Display for ChemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChemError::Parse { file, line, msg } => {
                write!(f, "{file} parse error at line {line}: {msg}")
            }
            ChemError::UnknownSpecies(s) => write!(f, "unknown species '{s}'"),
            ChemError::UnknownElement(s) => write!(f, "unknown element '{s}'"),
            ChemError::Validation(s) => write!(f, "mechanism validation failed: {s}"),
        }
    }
}

impl std::error::Error for ChemError {}

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ChemError>;

impl ChemError {
    /// Helper for constructing parse errors.
    pub fn parse(file: &'static str, line: usize, msg: impl Into<String>) -> Self {
        ChemError::Parse {
            file,
            line,
            msg: msg.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_location() {
        let e = ChemError::parse("CHEMKIN", 12, "bad token");
        let s = e.to_string();
        assert!(s.contains("CHEMKIN"));
        assert!(s.contains("12"));
        assert!(s.contains("bad token"));
    }

    #[test]
    fn display_unknown_species() {
        assert_eq!(
            ChemError::UnknownSpecies("xy2".into()).to_string(),
            "unknown species 'xy2'"
        );
    }
}
