//! Parsers for the four Singe input files (paper §3.1):
//!
//! * the CHEMKIN reaction file (Figure 4 syntax) — [`chemkin_file`],
//! * the THERMO file of NASA-7 coefficients — [`thermo_file`],
//! * the TRANSPORT file of molecular parameters — [`transport_file`],
//! * the optional QSSA/stiffness file — [`qssa_file`].
//!
//! The formats follow CHEMKIN-III conventions with whitespace-separated
//! fields (the historical fixed-column layout is relaxed; everything else —
//! section keywords, auxiliary `low/`, `troe/`, `rev/`, `lt/` lines,
//! third-body efficiencies, `(+m)` falloff markers — matches Figure 4).

pub mod chemkin_file;
pub mod qssa_file;
pub mod thermo_file;
pub mod transport_file;

use crate::error::Result;
use crate::mechanism::Mechanism;

pub use chemkin_file::parse_chemkin;
pub use qssa_file::parse_qssa;
pub use thermo_file::parse_thermo;
pub use transport_file::parse_transport;

/// Parse a complete mechanism from its (up to four) input files, then
/// validate it — the full Singe input path.
pub fn parse_mechanism(
    name: &str,
    chemkin_text: &str,
    thermo_text: &str,
    transport_text: &str,
    qssa_text: Option<&str>,
) -> Result<Mechanism> {
    let skeleton = parse_chemkin(chemkin_text)?;
    let thermo = parse_thermo(thermo_text, &skeleton)?;
    let transport = parse_transport(transport_text, &skeleton)?;
    let qssa = match qssa_text {
        Some(t) => parse_qssa(t, &skeleton)?,
        None => Default::default(),
    };
    Mechanism {
        name: name.to_string(),
        species: skeleton.species,
        thermo,
        transport,
        reactions: skeleton.reactions,
        qssa,
    }
    .validate()
}

/// Intermediate result of parsing just the CHEMKIN reaction file: species
/// list plus reactions, before thermo/transport data is attached.
#[derive(Debug, Clone)]
pub struct Skeleton {
    /// Declared species in declaration order.
    pub species: Vec<crate::species::Species>,
    /// Parsed reactions.
    pub reactions: Vec<crate::reaction::Reaction>,
}

impl Skeleton {
    /// Resolve a species name to its index.
    pub fn species_index(&self, name: &str) -> Result<usize> {
        let lower = name.to_ascii_lowercase();
        self.species
            .iter()
            .position(|s| s.name == lower)
            .ok_or_else(|| crate::error::ChemError::UnknownSpecies(name.to_string()))
    }
}

/// Strip a trailing `!...` comment (when the `!` is not the label marker at
/// the start of a reaction line) and surrounding whitespace.
pub(crate) fn strip_comment(line: &str) -> &str {
    // A '!' at column 0 is handled by the reaction parser (Figure 4 labels);
    // elsewhere it begins a comment.
    match line.char_indices().skip(1).find(|(_, c)| *c == '!') {
        Some((i, _)) => line[..i].trim(),
        None => line.trim(),
    }
}

/// Parse an f64 accepting Fortran-style `D` exponents (`1.0d+3`).
pub(crate) fn parse_f64(tok: &str) -> Option<f64> {
    let s = tok.replace(['d', 'D'], "e");
    s.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strip_comment_keeps_leading_bang() {
        assert_eq!(strip_comment("!1 a = b  1 2 3"), "!1 a = b  1 2 3");
        assert_eq!(strip_comment("a = b ! note"), "a = b");
    }

    #[test]
    fn fortran_exponents() {
        assert_eq!(parse_f64("1.5d3"), Some(1500.0));
        assert_eq!(parse_f64("2.0E-2"), Some(0.02));
        assert_eq!(parse_f64("x"), None);
    }
}
