//! Parser for the optional QSSA/stiffness file (the fourth Singe input,
//! paper §3.1):
//!
//! ```text
//! QSSA
//! ch2 ch2(s) hco
//! END
//! STIFF
//! h o oh ho2
//! END
//! ```

use super::{strip_comment, Skeleton};
use crate::error::{ChemError, Result};
use crate::mechanism::QssaSpec;

const FILE: &str = "QSSA";

/// Parse the QSSA/STIFF species lists.
pub fn parse_qssa(text: &str, sk: &Skeleton) -> Result<QssaSpec> {
    #[derive(PartialEq)]
    enum Sec {
        None,
        Qssa,
        Stiff,
    }
    let mut sec = Sec::None;
    let mut spec = QssaSpec::default();
    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = strip_comment(raw);
        if line.is_empty() || line.starts_with('!') {
            continue;
        }
        if line.eq_ignore_ascii_case("qssa") {
            sec = Sec::Qssa;
            continue;
        }
        if line.eq_ignore_ascii_case("stiff") {
            sec = Sec::Stiff;
            continue;
        }
        if line.eq_ignore_ascii_case("end") {
            sec = Sec::None;
            continue;
        }
        if sec == Sec::None {
            return Err(ChemError::parse(
                FILE,
                lineno,
                "species list outside QSSA/STIFF section",
            ));
        }
        for tok in line.split_whitespace() {
            let idx = sk.species_index(tok)?;
            let list = if sec == Sec::Qssa {
                &mut spec.qssa
            } else {
                &mut spec.stiff
            };
            if list.contains(&idx) {
                return Err(ChemError::parse(
                    FILE,
                    lineno,
                    format!("duplicate species '{tok}'"),
                ));
            }
            list.push(idx);
        }
    }
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::species::Species;

    fn sk() -> Skeleton {
        Skeleton {
            species: ["h", "o", "oh", "h2o"]
                .iter()
                .map(|n| Species::from_formula(n).unwrap())
                .collect(),
            reactions: vec![],
        }
    }

    #[test]
    fn parses_both_sections() {
        let text = "QSSA\noh\nEND\nSTIFF\nh o\nEND\n";
        let q = parse_qssa(text, &sk()).unwrap();
        assert_eq!(q.qssa, vec![2]);
        assert_eq!(q.stiff, vec![0, 1]);
    }

    #[test]
    fn duplicate_rejected() {
        let text = "QSSA\noh oh\nEND\n";
        assert!(parse_qssa(text, &sk()).is_err());
    }

    #[test]
    fn outside_section_rejected() {
        assert!(parse_qssa("oh\n", &sk()).is_err());
    }

    #[test]
    fn empty_file_is_empty_spec() {
        let q = parse_qssa("", &sk()).unwrap();
        assert!(q.qssa.is_empty() && q.stiff.is_empty());
    }
}
