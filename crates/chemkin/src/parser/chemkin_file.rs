//! Parser for the CHEMKIN reaction file — the Figure 4 input format.
//!
//! ```text
//! ELEMENTS
//! h c o n
//! END
//! SPECIES
//! ch4 ch3 h h2 h2o oh
//! END
//! REACTIONS
//! !1 ch3+h(+m) = ch4(+m)  2.138e+15 -0.40 0.000E+00
//!   low / 3.310E+30 -4.00 2108. /
//!   troe/0.0 1.E-15 1.E-15 40./
//!   h2/2/ h2o/5/
//! !2 ch4+h = ch3+h2  1.727E+04 3.00 8.224E+03
//!   rev / 6.610E+02 3.00 7.744E+03 /
//! END
//! ```

use super::{parse_f64, strip_comment, Skeleton};
use crate::elements::Element;
use crate::error::{ChemError, Result};
use crate::reaction::{Arrhenius, RateModel, Reaction, ReverseSpec, ThirdBody, TroeParams};
use crate::species::Species;

const FILE: &str = "CHEMKIN";

#[derive(Debug, PartialEq, Eq, Clone, Copy)]
enum Section {
    None,
    Elements,
    Species,
    Reactions,
}

/// Parse the reaction file into a [`Skeleton`] (species + reactions).
pub fn parse_chemkin(text: &str) -> Result<Skeleton> {
    let mut section = Section::None;
    let mut species: Vec<Species> = Vec::new();
    let mut reactions: Vec<PendingReaction> = Vec::new();
    // Elements are parsed for validation but composition comes from names.
    let mut declared_elements: Vec<Element> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = if section == Section::Reactions {
            // In the reactions section a leading '!' is a label (Figure 4).
            let t = raw.trim();
            if t.starts_with('!') && !t.contains('=') {
                continue; // pure comment
            }
            if t.starts_with('!') {
                t.to_string()
            } else {
                strip_comment(raw).to_string()
            }
        } else {
            let t = raw.trim();
            if t.starts_with('!') {
                continue;
            }
            strip_comment(raw).to_string()
        };
        if line.is_empty() {
            continue;
        }
        let upper = line.to_ascii_uppercase();
        match upper.as_str() {
            "ELEMENTS" | "ELEM" => {
                section = Section::Elements;
                continue;
            }
            "SPECIES" | "SPEC" => {
                section = Section::Species;
                continue;
            }
            "REACTIONS" | "REAC" => {
                section = Section::Reactions;
                continue;
            }
            "END" => {
                section = Section::None;
                continue;
            }
            _ => {}
        }
        match section {
            Section::None => {
                return Err(ChemError::parse(
                    FILE,
                    lineno,
                    format!("unexpected content outside a section: '{line}'"),
                ));
            }
            Section::Elements => {
                for tok in line.split_whitespace() {
                    declared_elements.push(Element::parse(tok)?);
                }
            }
            Section::Species => {
                parse_species_line(&line, lineno, &mut species)?;
            }
            Section::Reactions => {
                if line.contains('=') && !is_aux_line(&line) {
                    reactions.push(parse_reaction_line(&line, lineno)?);
                } else {
                    let last = reactions.last_mut().ok_or_else(|| {
                        ChemError::parse(FILE, lineno, "auxiliary line before any reaction")
                    })?;
                    parse_aux_line(&line, lineno, last)?;
                }
            }
        }
    }

    let skeleton_species = species;
    let sk = Skeleton {
        species: skeleton_species,
        reactions: Vec::new(),
    };
    let mut resolved = Vec::with_capacity(reactions.len());
    for p in reactions {
        resolved.push(p.resolve(&sk)?);
    }
    Ok(Skeleton {
        species: sk.species,
        reactions: resolved,
    })
}

/// Species declarations: bare names (composition derived from the name as a
/// molecular formula, ignoring parenthesized suffixes like `ch2(s)`), or
/// explicit composition `name / h2 c1 / `.
fn parse_species_line(line: &str, lineno: usize, out: &mut Vec<Species>) -> Result<()> {
    let mut rest = line;
    while !rest.trim().is_empty() {
        let rest_t = rest.trim_start();
        let name_end = rest_t
            .find(|c: char| c.is_whitespace() || c == '/')
            .unwrap_or(rest_t.len());
        let name = &rest_t[..name_end];
        if name.is_empty() {
            return Err(ChemError::parse(FILE, lineno, "empty species name"));
        }
        let after = rest_t[name_end..].trim_start();
        if let Some(stripped) = after.strip_prefix('/') {
            // Explicit composition: tokens like "c2" "h6" up to closing '/'.
            let close = stripped.find('/').ok_or_else(|| {
                ChemError::parse(FILE, lineno, "unterminated composition block")
            })?;
            let comp_str = &stripped[..close];
            let mut comp = Vec::new();
            for tok in comp_str.split_whitespace() {
                let split = tok
                    .find(|c: char| c.is_ascii_digit())
                    .unwrap_or(tok.len());
                let elem = Element::parse(&tok[..split])?;
                let count: u32 = if split == tok.len() {
                    1
                } else {
                    tok[split..].parse().map_err(|_| {
                        ChemError::parse(FILE, lineno, format!("bad element count '{tok}'"))
                    })?
                };
                comp.push((elem, count));
            }
            out.push(Species::new(name, comp));
            rest = &stripped[close + 1..];
        } else {
            // Derive composition from the name; strip parenthetical suffixes.
            let base: String = name.chars().filter(|c| c.is_ascii_alphanumeric()).collect();
            let sp = Species::from_formula(&base).map_err(|_| {
                ChemError::parse(
                    FILE,
                    lineno,
                    format!("cannot derive composition for species '{name}' — use 'name / el# ... /'"),
                )
            })?;
            out.push(Species::new(name, sp.composition));
            rest = after;
        }
    }
    Ok(())
}

/// One side of a reaction equation, pre-resolution.
#[derive(Debug, Default, Clone)]
struct SideSpec {
    terms: Vec<(String, f64)>,
    /// `(+m)` falloff marker present.
    falloff: bool,
    /// bare `+m` third-body term present.
    three_body: bool,
}

#[derive(Debug, Clone)]
struct PendingReaction {
    label: String,
    lhs: SideSpec,
    rhs: SideSpec,
    arrhenius: Arrhenius,
    reversible: bool,
    low: Option<Arrhenius>,
    troe: Option<TroeParams>,
    rev: Option<Arrhenius>,
    lt: Option<(f64, f64)>,
    efficiencies: Vec<(String, f64)>,
    lineno: usize,
}

impl PendingReaction {
    fn resolve(self, sk: &Skeleton) -> Result<Reaction> {
        let to_ids = |side: &SideSpec| -> Result<Vec<(usize, f64)>> {
            side.terms
                .iter()
                .map(|(n, c)| sk.species_index(n).map(|i| (i, *c)))
                .collect()
        };
        let reactants = to_ids(&self.lhs)?;
        let products = to_ids(&self.rhs)?;
        let falloff = self.lhs.falloff || self.rhs.falloff;
        let three_body = self.lhs.three_body || self.rhs.three_body;

        let rate = match (&self.low, &self.troe, &self.lt) {
            (Some(low), Some(troe), None) => RateModel::Troe {
                high: self.arrhenius,
                low: *low,
                troe: *troe,
            },
            (Some(low), None, None) => RateModel::Lindemann {
                high: self.arrhenius,
                low: *low,
            },
            (None, None, Some((b, c))) => RateModel::LandauTeller {
                arrhenius: self.arrhenius,
                b: *b,
                c: *c,
            },
            (None, None, None) => RateModel::Arrhenius(self.arrhenius),
            _ => {
                return Err(ChemError::parse(
                    FILE,
                    self.lineno,
                    "inconsistent auxiliary data (troe without low, or lt mixed with falloff)",
                ))
            }
        };
        if rate.is_falloff() && !falloff {
            return Err(ChemError::parse(
                FILE,
                self.lineno,
                "low/troe given for a reaction without (+m)",
            ));
        }

        let third_body = if falloff || three_body {
            let mut eff = Vec::new();
            for (name, v) in &self.efficiencies {
                eff.push((sk.species_index(name)?, *v));
            }
            Some(ThirdBody { efficiencies: eff })
        } else if !self.efficiencies.is_empty() {
            return Err(ChemError::parse(
                FILE,
                self.lineno,
                "third-body efficiencies on a reaction without m",
            ));
        } else {
            None
        };

        let reverse = match (self.rev, self.reversible) {
            (Some(a), true) => ReverseSpec::Explicit(a),
            (Some(_), false) => {
                return Err(ChemError::parse(
                    FILE,
                    self.lineno,
                    "rev/ given for an irreversible reaction",
                ))
            }
            (None, true) => ReverseSpec::Equilibrium,
            (None, false) => ReverseSpec::Irreversible,
        };

        Ok(Reaction {
            label: self.label,
            reactants,
            products,
            rate,
            reverse,
            third_body,
        })
    }
}

fn is_aux_line(line: &str) -> bool {
    let l = line.trim_start().to_ascii_lowercase();
    l.starts_with("low")
        || l.starts_with("troe")
        || l.starts_with("rev")
        || l.starts_with("lt")
        || l.starts_with("dup")
        || is_efficiency_line(&l)
}

fn is_efficiency_line(l: &str) -> bool {
    // "h2/2/ h2o/5/" — name/value/ pairs, no '=' sign.
    !l.contains('=')
        && l.split_whitespace()
            .all(|tok| tok.matches('/').count() == 2 && tok.ends_with('/'))
        && !l.trim().is_empty()
}

fn parse_reaction_line(line: &str, lineno: usize) -> Result<PendingReaction> {
    let mut s = line.trim();
    let mut label = String::new();
    if let Some(stripped) = s.strip_prefix('!') {
        let mut it = stripped.splitn(2, char::is_whitespace);
        label = it.next().unwrap_or_default().to_string();
        s = it.next().unwrap_or("").trim();
    }
    // Split off the trailing three Arrhenius numbers.
    let toks: Vec<&str> = s.split_whitespace().collect();
    if toks.len() < 4 {
        return Err(ChemError::parse(FILE, lineno, "reaction line too short"));
    }
    let nums: Vec<f64> = toks[toks.len() - 3..]
        .iter()
        .map(|t| parse_f64(t))
        .collect::<Option<Vec<_>>>()
        .ok_or_else(|| ChemError::parse(FILE, lineno, "bad Arrhenius numbers"))?;
    let eq = toks[..toks.len() - 3].join(" ");

    let (lhs_str, rhs_str, reversible) = if let Some(i) = eq.find("<=>") {
        (&eq[..i], &eq[i + 3..], true)
    } else if let Some(i) = eq.find("=>") {
        (&eq[..i], &eq[i + 2..], false)
    } else if let Some(i) = eq.find('=') {
        (&eq[..i], &eq[i + 1..], true)
    } else {
        return Err(ChemError::parse(FILE, lineno, "no '=' in reaction"));
    };

    let lhs = parse_side(lhs_str, lineno)?;
    let rhs = parse_side(rhs_str, lineno)?;
    Ok(PendingReaction {
        label,
        lhs,
        rhs,
        arrhenius: Arrhenius::new(nums[0], nums[1], nums[2]),
        reversible,
        low: None,
        troe: None,
        rev: None,
        lt: None,
        efficiencies: Vec::new(),
        lineno,
    })
}

fn parse_side(side: &str, lineno: usize) -> Result<SideSpec> {
    let mut spec = SideSpec::default();
    let mut s = side.replace(' ', "");
    // Falloff marker.
    if let Some(i) = s.to_ascii_lowercase().find("(+m)") {
        spec.falloff = true;
        s.replace_range(i..i + 4, "");
    }
    for term in s.split('+').filter(|t| !t.is_empty()) {
        if term.eq_ignore_ascii_case("m") {
            spec.three_body = true;
            continue;
        }
        // Leading integer coefficient, e.g. "2oh".
        let digits = term.chars().take_while(|c| c.is_ascii_digit()).count();
        // Careful: names can start with digits? No — CHEMKIN species start
        // with a letter or are quoted; ours start with a letter.
        let (coeff, name) = if digits > 0 && term[digits..].starts_with(|c: char| c.is_ascii_alphabetic()) {
            let c: f64 = term[..digits].parse().map_err(|_| {
                ChemError::parse(FILE, lineno, format!("bad coefficient in '{term}'"))
            })?;
            (c, &term[digits..])
        } else {
            (1.0, term)
        };
        if name.is_empty() {
            return Err(ChemError::parse(FILE, lineno, "empty species term"));
        }
        spec.terms.push((name.to_ascii_lowercase(), coeff));
    }
    if spec.terms.is_empty() {
        return Err(ChemError::parse(FILE, lineno, "reaction side has no species"));
    }
    Ok(spec)
}

fn parse_aux_line(line: &str, lineno: usize, r: &mut PendingReaction) -> Result<()> {
    let l = line.trim();
    let lower = l.to_ascii_lowercase();
    if lower.starts_with("dup") {
        return Ok(()); // duplicates allowed implicitly
    }
    if lower.starts_with("low") || lower.starts_with("troe") || lower.starts_with("rev")
        || (lower.starts_with("lt") && lower[2..].trim_start().starts_with('/'))
    {
        let open = l.find('/').ok_or_else(|| {
            ChemError::parse(FILE, lineno, "auxiliary keyword without '/'")
        })?;
        let close = l.rfind('/').unwrap();
        if close <= open {
            return Err(ChemError::parse(FILE, lineno, "unterminated auxiliary block"));
        }
        let nums: Vec<f64> = l[open + 1..close]
            .split_whitespace()
            .map(parse_f64)
            .collect::<Option<Vec<_>>>()
            .ok_or_else(|| ChemError::parse(FILE, lineno, "bad auxiliary numbers"))?;
        if lower.starts_with("low") {
            if nums.len() != 3 {
                return Err(ChemError::parse(FILE, lineno, "low/ needs 3 numbers"));
            }
            r.low = Some(Arrhenius::new(nums[0], nums[1], nums[2]));
        } else if lower.starts_with("troe") {
            if nums.len() != 3 && nums.len() != 4 {
                return Err(ChemError::parse(FILE, lineno, "troe/ needs 3 or 4 numbers"));
            }
            r.troe = Some(TroeParams {
                a: nums[0],
                t3: nums[1],
                t1: nums[2],
                t2: nums.get(3).copied(),
            });
        } else if lower.starts_with("rev") {
            if nums.len() != 3 {
                return Err(ChemError::parse(FILE, lineno, "rev/ needs 3 numbers"));
            }
            r.rev = Some(Arrhenius::new(nums[0], nums[1], nums[2]));
        } else {
            if nums.len() != 2 {
                return Err(ChemError::parse(FILE, lineno, "lt/ needs 2 numbers"));
            }
            r.lt = Some((nums[0], nums[1]));
        }
        return Ok(());
    }
    if is_efficiency_line(&lower) {
        for tok in l.split_whitespace() {
            let mut parts = tok.split('/');
            let name = parts.next().unwrap_or_default();
            let val = parts
                .next()
                .and_then(parse_f64)
                .ok_or_else(|| ChemError::parse(FILE, lineno, format!("bad efficiency '{tok}'")))?;
            r.efficiencies.push((name.to_ascii_lowercase(), val));
        }
        return Ok(());
    }
    Err(ChemError::parse(
        FILE,
        lineno,
        format!("unrecognized auxiliary line '{l}'"),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
ELEMENTS
h c o
END
SPECIES
ch4 ch3 h h2 oh h2o
END
REACTIONS
!1 ch3+h(+m) = ch4(+m)  2.138e+15 -0.40 0.000E+00
  low / 3.310E+30 -4.00 2108. /
  troe/0.0 1.E-15 1.E-15 40./
  h2/2/ h2o/5/
!2 ch4+h = ch3+h2  1.727E+04 3.00 8.224E+03
  rev / 6.610E+02 3.00 7.744E+03 /
!3 ch4+oh => ch3+h2o  1.930E+05 2.40 2.106E+03
END
"#;

    #[test]
    fn parses_figure4_sample() {
        let sk = parse_chemkin(SAMPLE).unwrap();
        assert_eq!(sk.species.len(), 6);
        assert_eq!(sk.reactions.len(), 3);

        let r1 = &sk.reactions[0];
        assert_eq!(r1.label, "1");
        assert!(matches!(r1.rate, RateModel::Troe { .. }));
        let tb = r1.third_body.as_ref().unwrap();
        assert_eq!(tb.efficiencies.len(), 2);
        assert!(matches!(r1.reverse, ReverseSpec::Equilibrium));

        let r2 = &sk.reactions[1];
        assert!(matches!(r2.rate, RateModel::Arrhenius(_)));
        assert!(matches!(r2.reverse, ReverseSpec::Explicit(_)));

        let r3 = &sk.reactions[2];
        assert!(matches!(r3.reverse, ReverseSpec::Irreversible));
    }

    #[test]
    fn troe_numbers_survive() {
        let sk = parse_chemkin(SAMPLE).unwrap();
        if let RateModel::Troe { low, troe, .. } = &sk.reactions[0].rate {
            assert!((low.a - 3.310e30).abs() / 3.31e30 < 1e-12);
            assert_eq!(troe.t2, Some(40.0));
        } else {
            panic!("expected troe");
        }
    }

    #[test]
    fn coefficients_parse() {
        let text = "SPECIES\noh h2o o2\nEND\nREACTIONS\n2oh = h2o + o2 1.0 0.0 0.0\nEND\n";
        // Note: unbalanced chemistry, but the parser doesn't care.
        let sk = parse_chemkin(text).unwrap();
        assert_eq!(sk.reactions[0].reactants, vec![(0, 2.0)]);
        assert_eq!(sk.reactions[0].products.len(), 2);
    }

    #[test]
    fn bare_third_body() {
        let text = "SPECIES\nh oh h2o\nEND\nREACTIONS\nh + oh + m = h2o + m 1.0 0.0 0.0\nEND\n";
        let sk = parse_chemkin(text).unwrap();
        let r = &sk.reactions[0];
        assert!(r.third_body.is_some());
        assert!(matches!(r.rate, RateModel::Arrhenius(_)));
    }

    #[test]
    fn landau_teller() {
        let text = "SPECIES\nh oh\nEND\nREACTIONS\nh + h = oh 1.0 0.0 100.0\n lt / 50.0 -10.0 /\nEND\n";
        let sk = parse_chemkin(text).unwrap();
        assert!(matches!(
            sk.reactions[0].rate,
            RateModel::LandauTeller { b, c, .. } if b == 50.0 && c == -10.0
        ));
    }

    #[test]
    fn unknown_species_rejected() {
        let text = "SPECIES\nh\nEND\nREACTIONS\nh + xx = h 1.0 0.0 0.0\nEND\n";
        assert!(matches!(
            parse_chemkin(text),
            Err(ChemError::UnknownSpecies(_))
        ));
    }

    #[test]
    fn aux_before_reaction_rejected() {
        let text = "SPECIES\nh\nEND\nREACTIONS\nlow / 1 2 3 /\nEND\n";
        assert!(parse_chemkin(text).is_err());
    }

    #[test]
    fn troe_without_low_rejected() {
        let text =
            "SPECIES\nh h2\nEND\nREACTIONS\nh+h(+m) = h2(+m) 1.0 0.0 0.0\n troe/0.5 1 1/\nEND\n";
        assert!(parse_chemkin(text).is_err());
    }

    #[test]
    fn explicit_composition_species() {
        let text = "SPECIES\nch2(s) / c1 h2 /\nfuel / c7 h16 /\nEND\nREACTIONS\nch2(s) = fuel 1 0 0\nEND\n";
        let sk = parse_chemkin(text).unwrap();
        assert_eq!(sk.species[0].name, "ch2(s)");
        assert!((sk.species[1].molecular_weight() - 100.2).abs() < 0.1);
    }

    #[test]
    fn comments_ignored() {
        let text = "! header\nSPECIES\nh ! the atom\nEND\nREACTIONS\n! pure comment\nh + h = h 1 0 0\nEND\n";
        let sk = parse_chemkin(text).unwrap();
        assert_eq!(sk.reactions.len(), 1);
    }
}
