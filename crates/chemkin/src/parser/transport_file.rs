//! Parser for the TRANSPORT file: molecular parameters per species, in the
//! style of CHEMKIN `tran.dat`:
//!
//! ```text
//! TRANSPORT
//! ! name shape eps/k sigma dipole polarizability zrot
//! ch4   2  141.40  3.746  0.000  2.600  13.000
//! END
//! ```

use super::{parse_f64, strip_comment, Skeleton};
use crate::error::{ChemError, Result};
use crate::transport::TransportFit;

const FILE: &str = "TRANSPORT";

/// Parse TRANSPORT text, returning fits in the skeleton's species order.
pub fn parse_transport(text: &str, sk: &Skeleton) -> Result<Vec<TransportFit>> {
    let mut result: Vec<Option<TransportFit>> = vec![None; sk.species.len()];
    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = strip_comment(raw);
        if line.is_empty()
            || line.eq_ignore_ascii_case("transport")
            || line.eq_ignore_ascii_case("end")
            || line.starts_with('!')
        {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        if toks.len() != 7 {
            return Err(ChemError::parse(
                FILE,
                lineno,
                format!("expected 7 fields, got {}", toks.len()),
            ));
        }
        let idx = sk.species_index(toks[0])?;
        let shape: u8 = toks[1]
            .parse()
            .map_err(|_| ChemError::parse(FILE, lineno, "bad shape index"))?;
        if shape > 2 {
            return Err(ChemError::parse(FILE, lineno, "shape index must be 0..=2"));
        }
        let nums: Vec<f64> = toks[2..]
            .iter()
            .map(|t| parse_f64(t))
            .collect::<Option<Vec<_>>>()
            .ok_or_else(|| ChemError::parse(FILE, lineno, "bad numeric field"))?;
        if nums[0] <= 0.0 || nums[1] <= 0.0 {
            return Err(ChemError::parse(
                FILE,
                lineno,
                "eps/k and sigma must be positive",
            ));
        }
        result[idx] = Some(TransportFit {
            shape,
            eps_over_k: nums[0],
            sigma: nums[1],
            dipole: nums[2],
            polarizability: nums[3],
            zrot: nums[4],
        });
    }
    result
        .into_iter()
        .enumerate()
        .map(|(i, f)| {
            f.ok_or_else(|| {
                ChemError::Validation(format!(
                    "missing TRANSPORT data for species '{}'",
                    sk.species[i].name
                ))
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::species::Species;

    fn sk() -> Skeleton {
        Skeleton {
            species: vec![
                Species::from_formula("ch4").unwrap(),
                Species::from_formula("h2").unwrap(),
            ],
            reactions: vec![],
        }
    }

    #[test]
    fn parses_fields() {
        let text = "TRANSPORT\nh2 1 38.0 2.92 0.0 0.79 280.0\nch4 2 141.4 3.746 0.0 2.6 13.0\nEND\n";
        let fits = parse_transport(text, &sk()).unwrap();
        assert_eq!(fits[0].shape, 2); // ch4 is species 0
        assert!((fits[0].eps_over_k - 141.4).abs() < 1e-12);
        assert!((fits[1].sigma - 2.92).abs() < 1e-12);
    }

    #[test]
    fn missing_species_error() {
        let text = "h2 1 38.0 2.92 0.0 0.79 280.0\n";
        assert!(matches!(
            parse_transport(text, &sk()),
            Err(ChemError::Validation(_))
        ));
    }

    #[test]
    fn wrong_field_count_error() {
        let text = "h2 1 38.0 2.92\n";
        assert!(parse_transport(text, &sk()).is_err());
    }

    #[test]
    fn negative_sigma_rejected() {
        let text = "h2 1 38.0 -2.92 0.0 0.79 280.0\nch4 2 141.4 3.746 0.0 2.6 13.0\n";
        assert!(parse_transport(text, &sk()).is_err());
    }
}
