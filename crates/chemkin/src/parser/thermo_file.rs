//! Parser for the THERMO file: NASA-7 coefficients, two ranges per species.
//!
//! Relaxed CHEMKIN layout — one header line with the default temperature
//! ranges, then four lines per species (header + 14 coefficients, upper
//! range first, matching the NASA convention):
//!
//! ```text
//! THERMO
//! 300.0 1000.0 5000.0
//! ch4 300.0 1000.0 5000.0
//!  1.0 2.0e-3 -3.0e-7 4.0e-11 -5.0e-16
//!  -1.2e4 8.0 0.9 1.8e-3 -2.5e-7
//!  3.0e-11 -4.0e-16 -1.19e4 9.0
//! END
//! ```

use super::{parse_f64, strip_comment, Skeleton};
use crate::error::{ChemError, Result};
use crate::thermo::NasaPoly;

const FILE: &str = "THERMO";

/// Parse THERMO text, returning polynomials in the skeleton's species order.
pub fn parse_thermo(text: &str, sk: &Skeleton) -> Result<Vec<NasaPoly>> {
    let lines: Vec<(usize, String)> = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, strip_comment(l).to_string()))
        .filter(|(_, l)| !l.is_empty())
        .collect();

    let mut it = lines.iter().peekable();
    // Optional THERMO keyword.
    if let Some((_, l)) = it.peek() {
        if l.eq_ignore_ascii_case("thermo") {
            it.next();
        }
    }
    // Default ranges line.
    let (ln, defaults) = it
        .next()
        .ok_or_else(|| ChemError::parse(FILE, 0, "empty THERMO file"))?;
    let def: Vec<f64> = defaults
        .split_whitespace()
        .map(parse_f64)
        .collect::<Option<Vec<_>>>()
        .ok_or_else(|| ChemError::parse(FILE, *ln, "bad default temperature ranges"))?;
    if def.len() != 3 {
        return Err(ChemError::parse(FILE, *ln, "expected 'Tlow Tmid Thigh'"));
    }

    let mut result: Vec<Option<NasaPoly>> = vec![None; sk.species.len()];
    while let Some((ln, header)) = it.next() {
        if header.eq_ignore_ascii_case("end") {
            break;
        }
        let mut toks = header.split_whitespace();
        let name = toks
            .next()
            .ok_or_else(|| ChemError::parse(FILE, *ln, "missing species name"))?;
        let ranges: Vec<f64> = toks.map(parse_f64).collect::<Option<Vec<_>>>().ok_or_else(
            || ChemError::parse(FILE, *ln, "bad species temperature ranges"),
        )?;
        let (t_low, t_mid, t_high) = match ranges.len() {
            0 => (def[0], def[1], def[2]),
            3 => (ranges[0], ranges[1], ranges[2]),
            _ => {
                return Err(ChemError::parse(
                    FILE,
                    *ln,
                    "species header needs 0 or 3 temperatures",
                ))
            }
        };
        let mut coeffs = Vec::with_capacity(14);
        while coeffs.len() < 14 {
            let (cl, cline) = it
                .next()
                .ok_or_else(|| ChemError::parse(FILE, *ln, "truncated coefficient block"))?;
            for tok in cline.split_whitespace() {
                coeffs.push(parse_f64(tok).ok_or_else(|| {
                    ChemError::parse(FILE, *cl, format!("bad coefficient '{tok}'"))
                })?);
            }
        }
        if coeffs.len() != 14 {
            return Err(ChemError::parse(FILE, *ln, "expected exactly 14 coefficients"));
        }
        let idx = sk.species_index(name)?;
        let mut high = [0.0; 7];
        let mut low = [0.0; 7];
        high.copy_from_slice(&coeffs[..7]);
        low.copy_from_slice(&coeffs[7..]);
        result[idx] = Some(NasaPoly {
            t_low,
            t_mid,
            t_high,
            low,
            high,
        });
    }

    result
        .into_iter()
        .enumerate()
        .map(|(i, p)| {
            p.ok_or_else(|| {
                ChemError::Validation(format!(
                    "missing THERMO data for species '{}'",
                    sk.species[i].name
                ))
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::species::Species;

    fn sk() -> Skeleton {
        Skeleton {
            species: vec![
                Species::from_formula("h2").unwrap(),
                Species::from_formula("o2").unwrap(),
            ],
            reactions: vec![],
        }
    }

    const TEXT: &str = "THERMO\n300 1000 5000\n\
o2\n 3.2 1e-3 -1e-7 1e-11 -1e-15\n -1000 4.0 3.1 0.9e-3 -1e-7\n 1e-11 -1e-15 -990 4.2\n\
h2 200 900 6000\n 2.9 1e-3 -1e-7 1e-11 -1e-15\n -800 3.0 2.8 0.8e-3 -1e-7\n 1e-11 -1e-15 -795 3.1\n\
END\n";

    #[test]
    fn parses_in_species_order() {
        let polys = parse_thermo(TEXT, &sk()).unwrap();
        assert_eq!(polys.len(), 2);
        // h2 was declared second in file but is species 0.
        assert_eq!(polys[0].t_mid, 900.0);
        assert_eq!(polys[1].t_mid, 1000.0);
        assert!((polys[1].high[0] - 3.2).abs() < 1e-12);
        assert!((polys[1].low[0] - 3.1).abs() < 1e-12);
    }

    #[test]
    fn missing_species_is_error() {
        let text = "300 1000 5000\nh2\n 1 2 3 4 5\n 6 7 1 2 3\n 4 5 6 7\nEND";
        assert!(matches!(
            parse_thermo(text, &sk()),
            Err(ChemError::Validation(_))
        ));
    }

    #[test]
    fn unknown_species_is_error() {
        let text = "300 1000 5000\nxx\n 1 2 3 4 5\n 6 7 1 2 3\n 4 5 6 7\nEND";
        assert!(matches!(
            parse_thermo(text, &sk()),
            Err(ChemError::UnknownSpecies(_))
        ));
    }

    #[test]
    fn truncated_block_is_error() {
        let text = "300 1000 5000\nh2\n 1 2 3 4 5\n";
        assert!(parse_thermo(text, &sk()).is_err());
    }
}
