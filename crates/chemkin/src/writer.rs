//! Serialization of mechanisms back to the four input-file formats.
//!
//! `parse(write(mechanism))` round-trips (verified by tests and by the
//! synthetic mechanism generator, which always goes through text so the
//! parser path is exercised end-to-end).

use crate::mechanism::Mechanism;
use crate::reaction::{RateModel, Reaction, ReverseSpec};
use std::fmt::Write as _;

/// Emit the CHEMKIN reaction file (ELEMENTS/SPECIES/REACTIONS sections).
pub fn write_chemkin(m: &Mechanism) -> String {
    let mut out = String::new();
    out.push_str("ELEMENTS\n");
    let mut elems: Vec<&'static str> = Vec::new();
    for s in &m.species {
        for (e, _) in &s.composition {
            if !elems.contains(&e.symbol()) {
                elems.push(e.symbol());
            }
        }
    }
    let _ = writeln!(out, "{}", elems.join(" "));
    out.push_str("END\nSPECIES\n");
    for s in &m.species {
        // Always write explicit composition: robust for names like ch2(s).
        let comp: Vec<String> = s
            .composition
            .iter()
            .map(|(e, n)| format!("{}{}", e.symbol().to_ascii_lowercase(), n))
            .collect();
        let _ = writeln!(out, "{} / {} /", s.name, comp.join(" "));
    }
    out.push_str("END\nREACTIONS\n");
    for r in &m.reactions {
        write_reaction(&mut out, m, r);
    }
    out.push_str("END\n");
    out
}

fn side_string(m: &Mechanism, terms: &[(usize, f64)], falloff: bool, three_body: bool) -> String {
    let mut parts: Vec<String> = terms
        .iter()
        .map(|(s, c)| {
            if (*c - 1.0).abs() < 1e-12 {
                m.species[*s].name.clone()
            } else {
                format!("{}{}", *c as u64, m.species[*s].name)
            }
        })
        .collect();
    if three_body {
        parts.push("m".to_string());
    }
    let mut s = parts.join("+");
    if falloff {
        s.push_str("(+m)");
    }
    s
}

fn write_reaction(out: &mut String, m: &Mechanism, r: &Reaction) {
    let falloff = r.rate.is_falloff();
    let three_body = r.third_body.is_some() && !falloff;
    let lhs = side_string(m, &r.reactants, falloff, three_body);
    let rhs = side_string(m, &r.products, falloff, three_body);
    let arrow = match r.reverse {
        ReverseSpec::Irreversible => "=>",
        _ => "=",
    };
    let (a, beta, e) = match &r.rate {
        RateModel::Arrhenius(p) => (p.a, p.beta, p.e_act),
        RateModel::Lindemann { high, .. } | RateModel::Troe { high, .. } => {
            (high.a, high.beta, high.e_act)
        }
        RateModel::LandauTeller { arrhenius, .. } => {
            (arrhenius.a, arrhenius.beta, arrhenius.e_act)
        }
    };
    let label = if r.label.is_empty() {
        String::new()
    } else {
        format!("!{} ", r.label)
    };
    let _ = writeln!(out, "{label}{lhs} {arrow} {rhs}  {a:.17e} {beta:.17e} {e:.17e}");
    match &r.rate {
        RateModel::Lindemann { low, .. } => {
            let _ = writeln!(out, "  low / {:.17e} {:.17e} {:.17e} /", low.a, low.beta, low.e_act);
        }
        RateModel::Troe { low, troe, .. } => {
            let _ = writeln!(out, "  low / {:.17e} {:.17e} {:.17e} /", low.a, low.beta, low.e_act);
            match troe.t2 {
                Some(t2) => {
                    let _ = writeln!(
                        out,
                        "  troe/ {:.17e} {:.17e} {:.17e} {:.17e} /",
                        troe.a, troe.t3, troe.t1, t2
                    );
                }
                None => {
                    let _ = writeln!(
                        out,
                        "  troe/ {:.17e} {:.17e} {:.17e} /",
                        troe.a, troe.t3, troe.t1
                    );
                }
            }
        }
        RateModel::LandauTeller { b, c, .. } => {
            let _ = writeln!(out, "  lt / {b:.17e} {c:.17e} /");
        }
        RateModel::Arrhenius(_) => {}
    }
    if let ReverseSpec::Explicit(rev) = &r.reverse {
        let _ = writeln!(out, "  rev / {:.17e} {:.17e} {:.17e} /", rev.a, rev.beta, rev.e_act);
    }
    if let Some(tb) = &r.third_body {
        if !tb.efficiencies.is_empty() {
            let effs: Vec<String> = tb
                .efficiencies
                .iter()
                .map(|(s, v)| format!("{}/{}/", m.species[*s].name, v))
                .collect();
            let _ = writeln!(out, "  {}", effs.join(" "));
        }
    }
}

/// Emit the THERMO file.
pub fn write_thermo(m: &Mechanism) -> String {
    let mut out = String::from("THERMO\n300.0 1000.0 5000.0\n");
    for (s, p) in m.species.iter().zip(m.thermo.iter()) {
        let _ = writeln!(out, "{} {} {} {}", s.name, p.t_low, p.t_mid, p.t_high);
        let h = &p.high;
        let l = &p.low;
        let _ = writeln!(out, " {:.17e} {:.17e} {:.17e} {:.17e} {:.17e}", h[0], h[1], h[2], h[3], h[4]);
        let _ = writeln!(out, " {:.17e} {:.17e} {:.17e} {:.17e} {:.17e}", h[5], h[6], l[0], l[1], l[2]);
        let _ = writeln!(out, " {:.17e} {:.17e} {:.17e} {:.17e}", l[3], l[4], l[5], l[6]);
    }
    out.push_str("END\n");
    out
}

/// Emit the TRANSPORT file.
pub fn write_transport(m: &Mechanism) -> String {
    let mut out = String::from("TRANSPORT\n");
    for (s, t) in m.species.iter().zip(m.transport.iter()) {
        let _ = writeln!(
            out,
            "{} {} {:.6} {:.6} {:.6} {:.6} {:.6}",
            s.name, t.shape, t.eps_over_k, t.sigma, t.dipole, t.polarizability, t.zrot
        );
    }
    out.push_str("END\n");
    out
}

/// Emit the QSSA/STIFF file (empty string if the spec is empty).
pub fn write_qssa(m: &Mechanism) -> String {
    if m.qssa.qssa.is_empty() && m.qssa.stiff.is_empty() {
        return String::new();
    }
    let mut out = String::from("QSSA\n");
    for &s in &m.qssa.qssa {
        let _ = writeln!(out, "{}", m.species[s].name);
    }
    out.push_str("END\nSTIFF\n");
    for &s in &m.qssa.stiff {
        let _ = writeln!(out, "{}", m.species[s].name);
    }
    out.push_str("END\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_mechanism;
    use crate::synth;

    #[test]
    fn roundtrip_small_synthetic() {
        let m = synth::synthesize(&synth::SynthConfig {
            name: "rt".into(),
            n_species: 12,
            n_reactions: 20,
            n_qssa: 3,
            n_stiff: 4,
            seed: 7,
        });
        let ck = write_chemkin(&m);
        let th = write_thermo(&m);
        let tr = write_transport(&m);
        let qs = write_qssa(&m);
        let m2 = parse_mechanism("rt", &ck, &th, &tr, Some(&qs)).unwrap();
        assert_eq!(m.n_species(), m2.n_species());
        assert_eq!(m.n_reactions(), m2.n_reactions());
        assert_eq!(m.qssa, m2.qssa);
        for (a, b) in m.reactions.iter().zip(m2.reactions.iter()) {
            assert_eq!(a.reactants, b.reactants);
            assert_eq!(a.products, b.products);
            // Rate constants survive within print precision.
            let t = 1500.0;
            let ka = a.rate.forward(t, 1e-5);
            let kb = b.rate.forward(t, 1e-5);
            assert!(
                ((ka - kb) / ka.max(1e-300)).abs() < 1e-4,
                "rate mismatch {ka} vs {kb}"
            );
        }
        for (a, b) in m.thermo.iter().zip(m2.thermo.iter()) {
            assert!((a.cp_r(1000.0) - b.cp_r(1000.0)).abs() < 1e-6);
        }
    }
}
