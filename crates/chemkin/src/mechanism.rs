//! The validated mechanism aggregate: species + thermo + transport +
//! reactions + optional QSSA/stiffness specification.

use crate::error::{ChemError, Result};
use crate::reaction::Reaction;
use crate::species::Species;
use crate::thermo::NasaPoly;
use crate::transport::{PairDiffusion, TransportFit};

/// Index of a species within its mechanism.
pub type SpeciesId = usize;

/// The optional fourth Singe input: quasi-steady-state-approximation and
/// stiffness species sets (paper §3.1).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QssaSpec {
    /// Species removed from the transported set and reconstructed
    /// algebraically inside the chemistry kernel.
    pub qssa: Vec<SpeciesId>,
    /// Species requiring the stiffness correction computation.
    pub stiff: Vec<SpeciesId>,
}

/// Summary row of the paper's Figure 3 table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Characteristics {
    /// Number of reactions.
    pub reactions: usize,
    /// Number of species (before QSSA reduction).
    pub species: usize,
    /// Number of QSSA species.
    pub qssa: usize,
    /// Number of stiff species.
    pub stiff: usize,
}

/// A full chemical mechanism, the unit of input to the Singe compiler.
#[derive(Debug, Clone)]
pub struct Mechanism {
    /// Mechanism name ("dme", "heptane", ...).
    pub name: String,
    /// All species, including QSSA species.
    pub species: Vec<Species>,
    /// NASA-7 thermodynamics, parallel to `species`.
    pub thermo: Vec<NasaPoly>,
    /// Raw transport parameters, parallel to `species`.
    pub transport: Vec<TransportFit>,
    /// All reactions.
    pub reactions: Vec<Reaction>,
    /// QSSA / stiffness specification (possibly empty).
    pub qssa: QssaSpec,
}

impl Mechanism {
    /// Number of species including QSSA species.
    pub fn n_species(&self) -> usize {
        self.species.len()
    }

    /// Number of reactions.
    pub fn n_reactions(&self) -> usize {
        self.reactions.len()
    }

    /// Species that remain after QSSA reduction — the `N` of the viscosity
    /// and diffusion kernels (e.g. heptane: 68 - 16 = 52, paper §3.1).
    pub fn transported(&self) -> Vec<SpeciesId> {
        (0..self.n_species())
            .filter(|s| !self.qssa.qssa.contains(s))
            .collect()
    }

    /// Number of transported species.
    pub fn n_transported(&self) -> usize {
        self.n_species() - self.qssa.qssa.len()
    }

    /// Molecular weights for all species.
    pub fn weights(&self) -> Vec<f64> {
        self.species.iter().map(|s| s.molecular_weight()).collect()
    }

    /// Figure 3 row for this mechanism.
    pub fn characteristics(&self) -> Characteristics {
        Characteristics {
            reactions: self.n_reactions(),
            species: self.n_species(),
            qssa: self.qssa.qssa.len(),
            stiff: self.qssa.stiff.len(),
        }
    }

    /// Index of a species by (case-insensitive) name.
    pub fn species_index(&self, name: &str) -> Result<SpeciesId> {
        let lower = name.to_ascii_lowercase();
        self.species
            .iter()
            .position(|s| s.name == lower)
            .ok_or_else(|| ChemError::UnknownSpecies(name.to_string()))
    }

    /// Viscosity-exponent polynomials for the transported species, in
    /// transported order (the `eta` table of paper §3.2).
    pub fn viscosity_polys(&self) -> Vec<[f64; 4]> {
        let w = self.weights();
        self.transported()
            .iter()
            .map(|&s| self.transport[s].viscosity_poly(w[s]))
            .collect()
    }

    /// Molecular weights of the transported species, in transported order.
    pub fn transported_weights(&self) -> Vec<f64> {
        let w = self.weights();
        self.transported().iter().map(|&s| w[s]).collect()
    }

    /// Pair diffusion coefficient matrix over the transported species
    /// (the symmetric `N x N x 4` `delta` of paper §3.3).
    pub fn pair_diffusion(&self) -> PairDiffusion {
        let ids = self.transported();
        let fits: Vec<TransportFit> = ids.iter().map(|&s| self.transport[s].clone()).collect();
        let w = self.weights();
        let ws: Vec<f64> = ids.iter().map(|&s| w[s]).collect();
        PairDiffusion::derive(&fits, &ws)
    }

    /// Bytes of double-precision constants the viscosity kernel needs: two
    /// constants per ordered pair of distinct transported species
    /// (paper §3.2 — 13.9 KB for DME, 42.4 KB for heptane).
    pub fn viscosity_constant_bytes(&self) -> usize {
        let n = self.n_transported();
        n * (n - 1) * 2 * 8
    }

    /// Indices (into `reactions`) of reactions involving any QSSA species —
    /// the rates the QSSA phase consumes (paper §3.4: "usually between half
    /// and two-thirds of the reaction rates").
    pub fn qssa_reactions(&self) -> Vec<usize> {
        self.reactions
            .iter()
            .enumerate()
            .filter(|(_, r)| self.qssa.qssa.iter().any(|&q| r.involves(q)))
            .map(|(i, _)| i)
            .collect()
    }

    /// The QSSA dependence DAG: edge `(a, b)` (indices into `qssa.qssa`)
    /// means species `b`'s algebraic reconstruction consumes species `a`'s.
    ///
    /// Derived from reaction structure: QSSA species `a` feeds `b` when some
    /// reaction consumes `a` and produces `b`. Edges are oriented from the
    /// earlier to the later species in QSSA declaration order, which makes
    /// the graph acyclic by construction — mirroring the solvable ordering
    /// that mechanism-reduction tools emit (paper §3.4, Figure 7).
    pub fn qssa_dag(&self) -> Vec<(usize, usize)> {
        let q = &self.qssa.qssa;
        let mut edges = Vec::new();
        for (ai, &a) in q.iter().enumerate() {
            for (bi, &b) in q.iter().enumerate() {
                if ai >= bi {
                    continue;
                }
                let coupled = self.reactions.iter().any(|r| {
                    (r.reactants.iter().any(|(s, _)| *s == a)
                        && r.products.iter().any(|(s, _)| *s == b))
                        || (r.reactants.iter().any(|(s, _)| *s == b)
                            && r.products.iter().any(|(s, _)| *s == a))
                });
                if coupled {
                    edges.push((ai, bi));
                }
            }
        }
        edges
    }

    /// Validate internal consistency; returns `self` for chaining.
    pub fn validate(self) -> Result<Mechanism> {
        let n = self.n_species();
        if self.thermo.len() != n {
            return Err(ChemError::Validation(format!(
                "{} thermo entries for {} species",
                self.thermo.len(),
                n
            )));
        }
        if self.transport.len() != n {
            return Err(ChemError::Validation(format!(
                "{} transport entries for {} species",
                self.transport.len(),
                n
            )));
        }
        for (i, r) in self.reactions.iter().enumerate() {
            for (s, c) in r.reactants.iter().chain(r.products.iter()) {
                if *s >= n {
                    return Err(ChemError::Validation(format!(
                        "reaction {i} references species id {s} out of range"
                    )));
                }
                if *c <= 0.0 {
                    return Err(ChemError::Validation(format!(
                        "reaction {i} has non-positive stoichiometric coefficient"
                    )));
                }
            }
            if r.reactants.is_empty() || r.products.is_empty() {
                return Err(ChemError::Validation(format!(
                    "reaction {i} must have reactants and products"
                )));
            }
            if let Some(tb) = &r.third_body {
                for (s, _) in &tb.efficiencies {
                    if *s >= n {
                        return Err(ChemError::Validation(format!(
                            "reaction {i} third-body references species id {s}"
                        )));
                    }
                }
            }
        }
        for &s in self.qssa.qssa.iter().chain(self.qssa.stiff.iter()) {
            if s >= n {
                return Err(ChemError::Validation(format!(
                    "QSSA/stiff species id {s} out of range"
                )));
            }
        }
        // A species cannot be both QSSA (reconstructed) and stiff (transported
        // with a correction).
        for s in &self.qssa.stiff {
            if self.qssa.qssa.contains(s) {
                return Err(ChemError::Validation(format!(
                    "species id {s} is both QSSA and stiff"
                )));
            }
        }
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reaction::{Arrhenius, RateModel, ReverseSpec};

    fn tiny() -> Mechanism {
        let species: Vec<Species> = ["h2", "o2", "h2o", "oh"]
            .iter()
            .map(|n| Species::from_formula(n).unwrap())
            .collect();
        let thermo = species
            .iter()
            .map(|s| NasaPoly::plausible(s.molecular_weight(), s.atom_count(), 0.0))
            .collect();
        let transport = species
            .iter()
            .map(|_| TransportFit {
                shape: 1,
                eps_over_k: 100.0,
                sigma: 3.0,
                dipole: 0.0,
                polarizability: 1.0,
                zrot: 1.0,
            })
            .collect();
        let r = Reaction {
            label: "1".into(),
            reactants: vec![(0, 1.0), (1, 1.0)],
            products: vec![(3, 2.0)],
            rate: RateModel::Arrhenius(Arrhenius::new(1e13, 0.0, 5000.0)),
            reverse: ReverseSpec::Equilibrium,
            third_body: None,
        };
        Mechanism {
            name: "tiny".into(),
            species,
            thermo,
            transport,
            reactions: vec![r],
            qssa: QssaSpec::default(),
        }
    }

    #[test]
    fn validates_ok() {
        assert!(tiny().validate().is_ok());
    }

    #[test]
    fn rejects_out_of_range_species() {
        let mut m = tiny();
        m.reactions[0].products.push((17, 1.0));
        assert!(m.validate().is_err());
    }

    #[test]
    fn rejects_mismatched_thermo() {
        let mut m = tiny();
        m.thermo.pop();
        assert!(m.validate().is_err());
    }

    #[test]
    fn rejects_qssa_stiff_overlap() {
        let mut m = tiny();
        m.qssa.qssa = vec![3];
        m.qssa.stiff = vec![3];
        assert!(m.validate().is_err());
    }

    #[test]
    fn transported_excludes_qssa() {
        let mut m = tiny();
        m.qssa.qssa = vec![1];
        assert_eq!(m.transported(), vec![0, 2, 3]);
        assert_eq!(m.n_transported(), 3);
    }

    #[test]
    fn viscosity_constant_bytes_formula() {
        let m = tiny(); // 4 transported species
        assert_eq!(m.viscosity_constant_bytes(), 4 * 3 * 2 * 8);
    }

    #[test]
    fn species_index_case_insensitive() {
        let m = tiny();
        assert_eq!(m.species_index("H2O").unwrap(), 2);
        assert!(m.species_index("xx").is_err());
    }

    #[test]
    fn qssa_dag_is_forward_oriented() {
        let mut m = tiny();
        // oh (3) and o2 (1) QSSA; reaction consumes o2 and produces oh.
        m.qssa.qssa = vec![1, 3];
        let dag = m.qssa_dag();
        assert_eq!(dag, vec![(0, 1)]);
    }

    #[test]
    fn qssa_reactions_detects_involvement() {
        let mut m = tiny();
        m.qssa.qssa = vec![3];
        assert_eq!(m.qssa_reactions(), vec![0]);
        m.qssa.qssa = vec![2];
        assert!(m.qssa_reactions().is_empty());
    }
}
