//! Chemical species: a name plus an elemental composition.

use crate::elements::Element;
use crate::error::{ChemError, Result};

/// A chemical species participating in a mechanism.
///
/// Species range from single atoms (`h`) to large hydrocarbons
/// (`nc7h16` for n-heptane); the molecular weight is derived from the
/// elemental composition and is the `m_i` appearing in the paper's
/// viscosity and diffusion formulas (§3.2–3.3).
#[derive(Debug, Clone, PartialEq)]
pub struct Species {
    /// Lower-case species name as it appears in mechanism files.
    pub name: String,
    /// Elemental composition: `(element, atom count)` pairs, sorted by element.
    pub composition: Vec<(Element, u32)>,
}

impl Species {
    /// Construct a species, normalizing (sorting + merging) the composition.
    pub fn new(name: impl Into<String>, composition: Vec<(Element, u32)>) -> Species {
        let mut merged: Vec<(Element, u32)> = Vec::with_capacity(composition.len());
        for (e, n) in composition {
            if n == 0 {
                continue;
            }
            match merged.iter_mut().find(|(m, _)| *m == e) {
                Some((_, cnt)) => *cnt += n,
                None => merged.push((e, n)),
            }
        }
        merged.sort_by_key(|(e, _)| *e);
        Species {
            name: name.into().to_ascii_lowercase(),
            composition: merged,
        }
    }

    /// Molecular weight in g/mol — the `m_i` of the paper's formulas.
    pub fn molecular_weight(&self) -> f64 {
        self.composition
            .iter()
            .map(|(e, n)| e.atomic_weight() * f64::from(*n))
            .sum()
    }

    /// Total number of atoms (used as a crude size heuristic by `synth`).
    pub fn atom_count(&self) -> u32 {
        self.composition.iter().map(|(_, n)| n).sum()
    }

    /// Parse a molecular formula like `c2h6o` or `CH4` into a species.
    ///
    /// Supports the two-letter symbols `AR`/`HE` and single letters `H C O N`,
    /// each optionally followed by a decimal count.
    pub fn from_formula(name: &str) -> Result<Species> {
        let lower = name.to_ascii_lowercase();
        let bytes = lower.as_bytes();
        let mut i = 0usize;
        let mut comp: Vec<(Element, u32)> = Vec::new();
        while i < bytes.len() {
            let sym = if lower[i..].starts_with("ar") || lower[i..].starts_with("he") {
                let s = &lower[i..i + 2];
                i += 2;
                s.to_string()
            } else if bytes[i].is_ascii_alphabetic() {
                let s = &lower[i..=i];
                i += 1;
                s.to_string()
            } else {
                return Err(ChemError::UnknownElement(lower[i..=i].to_string()));
            };
            let elem = Element::parse(&sym)?;
            let start = i;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            let count: u32 = if start == i {
                1
            } else {
                lower[start..i].parse().map_err(|_| {
                    ChemError::UnknownElement(format!("bad count in formula '{name}'"))
                })?
            };
            comp.push((elem, count));
        }
        if comp.is_empty() {
            return Err(ChemError::UnknownElement(format!(
                "empty formula '{name}'"
            )));
        }
        Ok(Species::new(lower, comp))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn methane_weight() {
        let ch4 = Species::from_formula("ch4").unwrap();
        assert!((ch4.molecular_weight() - 16.0425).abs() < 1e-3);
        assert_eq!(ch4.atom_count(), 5);
    }

    #[test]
    fn heptane_formula() {
        let c7 = Species::from_formula("c7h16").unwrap();
        assert!((c7.molecular_weight() - 100.2019).abs() < 1e-2);
    }

    #[test]
    fn argon_two_letter_symbol() {
        let ar = Species::from_formula("ar").unwrap();
        assert_eq!(ar.composition, vec![(Element::Ar, 1)]);
    }

    #[test]
    fn composition_merges_duplicates() {
        let s = Species::new("x", vec![(Element::H, 1), (Element::H, 2), (Element::C, 0)]);
        assert_eq!(s.composition, vec![(Element::H, 3)]);
    }

    #[test]
    fn dme_is_c2h6o() {
        let dme = Species::from_formula("ch3och3").unwrap();
        // ch3-o-ch3 => C2 H6 O1
        assert_eq!(
            dme.composition,
            vec![(Element::H, 6), (Element::C, 2), (Element::O, 1)]
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(Species::from_formula("q2").is_err());
        assert!(Species::from_formula("").is_err());
    }
}
