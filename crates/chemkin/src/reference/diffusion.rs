//! Scalar reference implementation of the diffusion kernel (paper §3.3).
//!
//! ```text
//! d_ij(T)  = exp(delta_ij0 + delta_ij1 T + delta_ij2 T^2 + delta_ij3 T^3)
//! mass     = sum_j m_j x_j
//! clamp_i  = max(eps, x_i)
//! Delta_i  = (P_atm / P) * (-clamp_i m_i + sum_j clamp_j m_j)
//!                        / (mass * sum_j clamp_j d_ij)
//! ```
//!
//! One output per species per point; the `d` matrix is symmetric with a
//! zero diagonal, which the warp-specialized partitioning exploits
//! (paper Figure 5).

use super::tables::DiffusionTables;
use crate::state::GridState;
use crate::{MIN_MOLE_FRAC, P_ATM};

/// Compute per-species diffusion outputs for one point.
///
/// `x` holds molar fractions for the transported species; `pressure` is in
/// dyn/cm^2. Returns `Delta_i` for each species.
pub fn reference_diffusion_point(
    t: &DiffusionTables,
    temp: f64,
    pressure: f64,
    x: &[f64],
) -> Vec<f64> {
    debug_assert_eq!(x.len(), t.n);
    let n = t.n;
    let mut clamp = vec![0.0f64; n];
    let mut mass = 0.0f64;
    let mut sum_mw = 0.0f64;
    for j in 0..n {
        clamp[j] = x[j].max(MIN_MOLE_FRAC);
        mass += t.weights[j] * x[j];
        sum_mw += clamp[j] * t.weights[j];
    }
    let scale = P_ATM / pressure;
    let mut out = vec![0.0f64; n];
    for i in 0..n {
        let mut denom = 0.0f64;
        for j in 0..n {
            if i == j {
                continue;
            }
            denom += clamp[j] * t.delta.eval(i, j, temp);
        }
        out[i] = scale * (-clamp[i] * t.weights[i] + sum_mw) / (mass * denom);
    }
    out
}

/// Compute diffusion outputs for every point; returns an SoA vector
/// `[species][point]` of length `n * points`.
pub fn reference_diffusion(t: &DiffusionTables, g: &GridState) -> Vec<f64> {
    assert_eq!(g.n_species, t.n, "grid species must match tables");
    let p = g.points();
    let mut out = vec![0.0; t.n * p];
    let mut x = vec![0.0; t.n];
    for pt in 0..p {
        for s in 0..t.n {
            x[s] = g.x(s, pt);
        }
        let d = reference_diffusion_point(t, g.temperature[pt], g.pressure[pt], &x);
        for s in 0..t.n {
            out[s * p + pt] = d[s];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{GridDims, GridState};
    use crate::synth;

    #[test]
    fn outputs_finite_positive_for_presets() {
        let m = synth::dme();
        let t = DiffusionTables::build(&m);
        let g = GridState::random(GridDims::cube(3), t.n, 5);
        let out = reference_diffusion(&t, &g);
        assert_eq!(out.len(), t.n * g.points());
        for v in out {
            assert!(v.is_finite() && v > 0.0, "{v}");
        }
    }

    #[test]
    fn pressure_scaling_is_inverse() {
        let m = synth::dme();
        let t = DiffusionTables::build(&m);
        let x = vec![1.0 / t.n as f64; t.n];
        let d1 = reference_diffusion_point(&t, 1500.0, P_ATM, &x);
        let d2 = reference_diffusion_point(&t, 1500.0, 2.0 * P_ATM, &x);
        for (a, b) in d1.iter().zip(d2.iter()) {
            assert!((a / b - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn clamp_handles_zero_fractions() {
        let m = synth::dme();
        let t = DiffusionTables::build(&m);
        let mut x = vec![0.0; t.n];
        x[0] = 1.0; // everything else clamped to eps
        let d = reference_diffusion_point(&t, 1200.0, P_ATM, &x);
        for v in d {
            assert!(v.is_finite(), "{v}");
        }
    }

    #[test]
    fn symmetric_pair_contributions() {
        // d_ij == d_ji by construction of the tables.
        let m = synth::heptane();
        let t = DiffusionTables::build(&m);
        for (i, j) in [(0, 1), (3, 17), (20, 44)] {
            assert_eq!(t.delta.eval(i, j, 1400.0), t.delta.eval(j, i, 1400.0));
        }
    }
}
