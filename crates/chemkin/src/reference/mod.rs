//! Scalar CPU reference implementations of the three paper kernels.
//!
//! Each kernel is defined by precomputed *tables* (module [`tables`]) plus a
//! scalar evaluation routine. The tables are the contract shared with the
//! Singe compiler: both the baseline data-parallel GPU kernels and the
//! warp-specialized GPU kernels must reproduce these reference results
//! bit-for-bit-modulo-rounding, which is asserted throughout the test suite.

pub mod chemistry;
pub mod diffusion;
pub mod tables;
pub mod viscosity;

pub use chemistry::{reference_chemistry, reference_chemistry_point};
pub use diffusion::{reference_diffusion, reference_diffusion_point};
pub use tables::{ChemistrySpec, DiffusionTables, ReactionSpec, SpeciesRef, ViscosityTables};
pub use viscosity::{reference_viscosity, reference_viscosity_point};
