//! Scalar reference implementation of the chemistry kernel (paper §3.4).
//!
//! Four phases, exactly the structure Singe partitions across warps:
//!
//! 1. **Rates** — forward and reverse rate constants for every reaction
//!    (Arrhenius / Lindemann / Troe / Landau-Teller forward models;
//!    explicit-Arrhenius or equilibrium reverse).
//! 2. **QSSA** — algebraic reconstruction of quasi-steady species
//!    concentrations from the rate constants, walking the QSSA dependence
//!    DAG in order (paper Figure 7).
//! 3. **Stiffness** — per-stiff-species correction factors combining the
//!    species' diffusion rate (a global-memory load in the GPU kernel,
//!    Listing 4) with its molar fraction.
//! 4. **Output** — rates of progress and stoichiometric accumulation into
//!    per-species rates of change.

use super::tables::{ChemistrySpec, SpeciesRef, R_ERG};
use crate::state::GridState;

/// Inputs for one grid point.
#[derive(Debug, Clone, Copy)]
pub struct PointInput<'a> {
    /// Temperature, K.
    pub temp: f64,
    /// Pressure, dyn/cm^2.
    pub pressure: f64,
    /// Molar fractions of transported species.
    pub x: &'a [f64],
    /// Per-transported-species diffusion rates (stiffness inputs).
    pub diff: &'a [f64],
}

/// Raise a concentration to a (usually small integer) stoichiometric power.
/// Kernels use the same rule, so reference and generated code agree exactly.
#[inline]
pub fn stoich_pow(conc: f64, nu: f64) -> f64 {
    if nu == 1.0 {
        conc
    } else if nu == 2.0 {
        conc * conc
    } else if nu == 3.0 {
        conc * conc * conc
    } else {
        conc.powf(nu)
    }
}

/// Compute species rates of change for one point. Returns `wdot` for each
/// transported species (mol/cm^3/s in the model's unit system).
pub fn reference_chemistry_point(spec: &ChemistrySpec, input: PointInput<'_>) -> Vec<f64> {
    let nt = spec.n_trans;
    debug_assert_eq!(input.x.len(), nt);
    let ctot = input.pressure / (R_ERG * input.temp);
    let conc: Vec<f64> = input.x.iter().map(|&x| x * ctot).collect();

    // Phase 1: rate constants (the per-warp register working set on the GPU).
    let nr = spec.reactions.len();
    let mut kf = vec![0.0f64; nr];
    let mut kr = vec![0.0f64; nr];
    let mut m_conc = vec![0.0f64; nr];
    for (ri, r) in spec.reactions.iter().enumerate() {
        let m = match &r.third_body {
            Some(effs) => {
                let mut m: f64 = conc.iter().sum();
                for &(s, e) in effs {
                    m += (e - 1.0) * conc[s];
                }
                m
            }
            None => 0.0,
        };
        m_conc[ri] = m;
        kf[ri] = r.k_forward(input.temp, m);
        kr[ri] = r.k_reverse(input.temp, kf[ri]);
    }

    // Phase 2: QSSA reconstruction in DAG order. A QSSA concentration
    // referenced before it is computed contributes zero (the dependence DAG
    // orientation guarantees real couplings are already available).
    let mut qconc = vec![0.0f64; spec.n_qssa];
    let mut computed = vec![false; spec.n_qssa];
    let conc_of = |s: &SpeciesRef, qconc: &[f64], computed: &[bool]| -> f64 {
        match s {
            SpeciesRef::Transported(i) => conc[*i],
            SpeciesRef::Qssa(q) => {
                if computed[*q] {
                    qconc[*q]
                } else {
                    0.0
                }
            }
        }
    };
    for q in &spec.qssa {
        let mut num = 0.0f64;
        for &(ri, c) in &q.producers {
            let mut term = c * kf[ri];
            for (s, nu) in &spec.reactions[ri].reactants {
                term *= stoich_pow(conc_of(s, &qconc, &computed), *nu);
            }
            num += term;
        }
        let mut den = 0.0f64;
        for &(ri, c) in &q.consumers {
            let mut term = c * kf[ri];
            for (s, nu) in &spec.reactions[ri].reactants {
                // Exclude the term that references this QSSA species itself.
                if *s == SpeciesRef::Qssa(q.order) {
                    continue;
                }
                term *= stoich_pow(conc_of(s, &qconc, &computed), *nu);
            }
            den += term;
        }
        qconc[q.order] = num / (den + 1.0);
        computed[q.order] = true;
    }

    // Phase 3: stiffness correction factors.
    let mut stiff_factor = vec![1.0f64; nt];
    for s in &spec.stiff {
        let d = input.diff[s.trans_index];
        let x = input.x[s.trans_index];
        stiff_factor[s.trans_index] = 1.0 / (1.0 + s.tau * (d + x * s.v));
    }

    // Phase 4: rates of progress and stoichiometric accumulation.
    let all_computed = vec![true; spec.n_qssa];
    let mut wdot = vec![0.0f64; nt];
    for (ri, r) in spec.reactions.iter().enumerate() {
        let mut qf = kf[ri];
        for (s, nu) in &r.reactants {
            qf *= stoich_pow(conc_of(s, &qconc, &all_computed), *nu);
        }
        let mut qr = kr[ri];
        for (s, nu) in &r.products {
            qr *= stoich_pow(conc_of(s, &qconc, &all_computed), *nu);
        }
        let mut q = qf - qr;
        if r.third_body.is_some() && !r.falloff {
            q *= m_conc[ri];
        }
        for (s, nu) in &r.reactants {
            if let SpeciesRef::Transported(i) = s {
                wdot[*i] -= nu * q;
            }
        }
        for (s, nu) in &r.products {
            if let SpeciesRef::Transported(i) = s {
                wdot[*i] += nu * q;
            }
        }
    }
    for i in 0..nt {
        wdot[i] *= stiff_factor[i];
    }
    wdot
}

/// Compute chemistry for every grid point; returns SoA `[species][point]`.
pub fn reference_chemistry(spec: &ChemistrySpec, g: &GridState) -> Vec<f64> {
    assert_eq!(g.n_species, spec.n_trans, "grid species must match spec");
    let p = g.points();
    let mut out = vec![0.0; spec.n_trans * p];
    let mut x = vec![0.0; spec.n_trans];
    let mut diff = vec![0.0; spec.n_trans];
    for pt in 0..p {
        for s in 0..spec.n_trans {
            x[s] = g.x(s, pt);
            diff[s] = g.diff(s, pt);
        }
        let w = reference_chemistry_point(
            spec,
            PointInput {
                temp: g.temperature[pt],
                pressure: g.pressure[pt],
                x: &x,
                diff: &diff,
            },
        );
        for s in 0..spec.n_trans {
            out[s * p + pt] = w[s];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{GridDims, GridState};
    use crate::synth;

    fn run_preset(m: crate::Mechanism) -> (ChemistrySpec, Vec<f64>, GridState) {
        let spec = ChemistrySpec::build(&m);
        let g = GridState::random(GridDims::cube(2), spec.n_trans, 3);
        let out = reference_chemistry(&spec, &g);
        (spec, out, g)
    }

    #[test]
    fn outputs_finite_for_dme() {
        let (spec, out, g) = run_preset(synth::dme());
        assert_eq!(out.len(), spec.n_trans * g.points());
        for v in &out {
            assert!(v.is_finite(), "{v}");
        }
        // Chemistry must actually be happening somewhere.
        assert!(out.iter().any(|v| v.abs() > 0.0));
    }

    #[test]
    fn outputs_finite_for_heptane() {
        let (_, out, _) = run_preset(synth::heptane());
        for v in &out {
            assert!(v.is_finite(), "{v}");
        }
    }

    #[test]
    fn stoich_pow_small_integers_exact() {
        assert_eq!(stoich_pow(3.0, 1.0), 3.0);
        assert_eq!(stoich_pow(3.0, 2.0), 9.0);
        assert_eq!(stoich_pow(2.0, 3.0), 8.0);
        assert!((stoich_pow(4.0, 0.5) - 2.0).abs() < 1e-15);
    }

    #[test]
    fn stiffness_shrinks_magnitude() {
        // With stiffness factors in (0, 1], corrected outputs can't exceed
        // the uncorrected ones in magnitude.
        let m = synth::dme();
        let spec = ChemistrySpec::build(&m);
        let mut spec_nostiff = spec.clone();
        spec_nostiff.stiff.clear();
        let g = GridState::random(GridDims::cube(2), spec.n_trans, 8);
        let with = reference_chemistry(&spec, &g);
        let without = reference_chemistry(&spec_nostiff, &g);
        for (a, b) in with.iter().zip(without.iter()) {
            assert!(a.abs() <= b.abs() * (1.0 + 1e-12) + 1e-300);
        }
    }

    #[test]
    fn qssa_concentrations_are_used() {
        // Removing QSSA species from the spec changes the answer (they feed
        // the rate-of-progress products).
        let m = synth::dme();
        let spec = ChemistrySpec::build(&m);
        let mut spec_noq = spec.clone();
        spec_noq.qssa.clear();
        spec_noq.n_qssa = 0;
        // Rewire QSSA references to zero-concentration: dropping the phase
        // leaves qconc = 0 which is what an empty qssa list produces for
        // reactions that still reference Qssa species. The outputs differ.
        let g = GridState::random(GridDims::cube(2), spec.n_trans, 4);
        let a = reference_chemistry(&spec, &g);
        // Guard: at least one reaction references a QSSA species.
        assert!(!spec.qssa_reaction_indices().is_empty());
        let b = {
            let mut s2 = spec.clone();
            for q in &mut s2.qssa {
                q.producers.clear();
            }
            reference_chemistry(&s2, &g)
        };
        assert!(a.iter().zip(b.iter()).any(|(x, y)| (x - y).abs() > 1e-30));
        let _ = spec_noq;
    }

    #[test]
    fn colder_points_react_slower() {
        let m = synth::dme();
        let spec = ChemistrySpec::build(&m);
        let n = spec.n_trans;
        let x = vec![1.0 / n as f64; n];
        let diff = vec![1.0e-5; n];
        let hot = reference_chemistry_point(
            &spec,
            PointInput { temp: 2500.0, pressure: crate::P_ATM, x: &x, diff: &diff },
        );
        let cold = reference_chemistry_point(
            &spec,
            PointInput { temp: 400.0, pressure: crate::P_ATM, x: &x, diff: &diff },
        );
        let sum_hot: f64 = hot.iter().map(|v| v.abs()).sum();
        let sum_cold: f64 = cold.iter().map(|v| v.abs()).sum();
        assert!(sum_hot > sum_cold, "{sum_hot} vs {sum_cold}");
    }
}
