//! Precomputed kernel tables — the shared contract between the CPU
//! reference implementations and the Singe-compiled GPU kernels.
//!
//! Everything a kernel needs at run time is folded into flat constant
//! tables here (the "constant folding" the paper mentions in §3.2), so both
//! the reference code and the generated code read identical constants.

use crate::mechanism::{Mechanism, SpeciesId};
use crate::reaction::{Arrhenius, RateModel};
use crate::transport::PairDiffusion;

/// Universal gas constant in erg/(mol·K), used for concentration units.
pub const R_ERG: f64 = 8.314_462_618e7;

/// Global NASA-range switch temperature (K). The kernel spec evaluates all
/// equilibrium constants with a single range break so the fourteen combined
/// Gibbs constants per reaction can be folded (see [`ReactionSpec::gibbs`]).
pub const T_MID: f64 = 1000.0;

/// Stiffness time-scale constant (1/s) in the stiffness correction.
pub const DT_STIFF: f64 = 1.0e-3;

// ---------------------------------------------------------------------------
// Viscosity (paper §3.2)
// ---------------------------------------------------------------------------

/// Tables for the viscosity kernel over `n` transported species.
#[derive(Debug, Clone)]
pub struct ViscosityTables {
    /// Species count `N`.
    pub n: usize,
    /// Per-species viscosity-exponent polynomial `eta[i] = [e0,e1,e2,e3]`.
    pub eta: Vec<[f64; 4]>,
    /// Per-ordered-pair constant `A[k*n+j] = (m_j/m_k)^(1/4)` (j != k).
    pub pair_a: Vec<f64>,
    /// Per-ordered-pair constant `B[k*n+j] = 1/sqrt(1+m_k/m_j)` (j != k).
    pub pair_b: Vec<f64>,
}

/// The self-interaction term `phi_kk` is constant: `(1+1)^2 / sqrt(2)`.
pub const PHI_SELF: f64 = 4.0 / std::f64::consts::SQRT_2;

impl ViscosityTables {
    /// Build the tables from a mechanism's transported species.
    pub fn build(m: &Mechanism) -> ViscosityTables {
        let eta = m.viscosity_polys();
        let w = m.transported_weights();
        let n = w.len();
        let mut pair_a = vec![0.0; n * n];
        let mut pair_b = vec![0.0; n * n];
        for k in 0..n {
            for j in 0..n {
                if j == k {
                    continue;
                }
                pair_a[k * n + j] = (w[j] / w[k]).sqrt().sqrt();
                pair_b[k * n + j] = 1.0 / (1.0 + w[k] / w[j]).sqrt();
            }
        }
        ViscosityTables { n, eta, pair_a, pair_b }
    }

    /// Bytes of off-diagonal pair constants (two doubles per ordered pair) —
    /// reproduces the paper's 13.9 KB (DME) / 42.4 KB (heptane) numbers.
    pub fn constant_bytes(&self) -> usize {
        self.n * (self.n - 1) * 2 * 8
    }
}

// ---------------------------------------------------------------------------
// Diffusion (paper §3.3)
// ---------------------------------------------------------------------------

/// Tables for the diffusion kernel.
#[derive(Debug, Clone)]
pub struct DiffusionTables {
    /// Species count `N`.
    pub n: usize,
    /// Symmetric pair coefficient matrix `delta` (zero diagonal).
    pub delta: PairDiffusion,
    /// Molecular weights `m_i` of transported species.
    pub weights: Vec<f64>,
}

impl DiffusionTables {
    /// Build from a mechanism.
    pub fn build(m: &Mechanism) -> DiffusionTables {
        let weights = m.transported_weights();
        DiffusionTables {
            n: weights.len(),
            delta: m.pair_diffusion(),
            weights,
        }
    }
}

// ---------------------------------------------------------------------------
// Chemistry (paper §3.4)
// ---------------------------------------------------------------------------

/// Reference to a species in one of the two kernel index spaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpeciesRef {
    /// Index into the transported-species arrays (global inputs).
    Transported(usize),
    /// Index into the QSSA-species order (computed in phase 2).
    Qssa(usize),
}

/// How a reaction's reverse rate constant is obtained (flattened form).
#[derive(Debug, Clone)]
pub enum ReverseKind {
    /// Irreversible: reverse rate is zero.
    None,
    /// Explicit Arrhenius parameters.
    Explicit(Arrhenius),
    /// Equilibrium: `k_r = k_f / K_c`, with `K_c` from the folded Gibbs
    /// constants and `sum_nu`.
    Equilibrium,
}

/// One reaction, flattened for kernel consumption.
#[derive(Debug, Clone)]
pub struct ReactionSpec {
    /// Forward rate model (carries its own constants).
    pub rate: RateModel,
    /// Reverse specification.
    pub reverse: ReverseKind,
    /// Reactant terms `(species, stoichiometric coefficient)`.
    pub reactants: Vec<(SpeciesRef, f64)>,
    /// Product terms.
    pub products: Vec<(SpeciesRef, f64)>,
    /// Third-body efficiencies over transported indices (empty = no
    /// enhancements); `None` = not a third-body/falloff reaction.
    pub third_body: Option<Vec<(usize, f64)>>,
    /// True when the rate model itself consumes `[M]` (falloff); false
    /// third-body reactions multiply the rate of progress by `[M]` instead.
    pub falloff: bool,
    /// Net mole change `sum(nu'') - sum(nu')` for `K_c`.
    pub sum_nu: f64,
    /// Folded Gibbs polynomials `[low, high]`: each row `[g1..g7]` so that
    /// `sum_i nu_i G_i(T)/(RT) = g1 (1 - ln T) + g2 T + g3 T^2 + g4 T^3 +
    ///  g5 T^4 + g6 / T + g7`.
    pub gibbs: [[f64; 7]; 2],
}

impl ReactionSpec {
    /// Forward rate constant at `(T, [M])`.
    pub fn k_forward(&self, t: f64, m_conc: f64) -> f64 {
        self.rate.forward(t, m_conc)
    }

    /// `sum_i nu_i g_i(T)` using the folded constants.
    pub fn delta_g_rt(&self, t: f64) -> f64 {
        let g = if t < T_MID { &self.gibbs[0] } else { &self.gibbs[1] };
        g[0] * (1.0 - t.ln())
            + t * (g[1] + t * (g[2] + t * (g[3] + t * g[4])))
            + g[5] / t
            + g[6]
    }

    /// Reverse rate constant given the forward one.
    pub fn k_reverse(&self, t: f64, k_f: f64) -> f64 {
        match &self.reverse {
            ReverseKind::None => 0.0,
            ReverseKind::Explicit(a) => a.eval(t),
            ReverseKind::Equilibrium => {
                // K_p = exp(-sum(nu G/RT)); K_c = K_p * (P0/(R'T))^sum_nu.
                let ln_kc = -self.delta_g_rt(t) + self.sum_nu * (crate::P_ATM / (R_ERG * t)).ln();
                k_f / ln_kc.exp()
            }
        }
    }
}

/// One QSSA species' algebraic reconstruction terms.
#[derive(Debug, Clone)]
pub struct QssaSpeciesSpec {
    /// Index of this species in the QSSA ordering.
    pub order: usize,
    /// Reactions producing this species: `(reaction index, coefficient,
    /// reactant list excluding nothing)` — the production term sums
    /// `coeff * k_f * prod(conc(reactants))`.
    pub producers: Vec<(usize, f64)>,
    /// Reactions consuming this species: the consumption term sums
    /// `coeff * k_f * prod(conc(other reactants))`.
    pub consumers: Vec<(usize, f64)>,
}

/// Stiffness correction data for one stiff species.
#[derive(Debug, Clone)]
pub struct StiffSpec {
    /// Index into the transported-species arrays.
    pub trans_index: usize,
    /// Time-scale constant `tau` (derived from molecular weight).
    pub tau: f64,
    /// Coupling constant `v` (derived from the species' low-range `a1`).
    pub v: f64,
}

/// The full flattened chemistry-kernel specification.
#[derive(Debug, Clone)]
pub struct ChemistrySpec {
    /// Number of transported species.
    pub n_trans: usize,
    /// Number of QSSA species.
    pub n_qssa: usize,
    /// All reactions.
    pub reactions: Vec<ReactionSpec>,
    /// QSSA reconstruction, in dependency (declaration) order.
    pub qssa: Vec<QssaSpeciesSpec>,
    /// Stiffness corrections.
    pub stiff: Vec<StiffSpec>,
}

impl ChemistrySpec {
    /// Build the flattened spec from a mechanism.
    pub fn build(m: &Mechanism) -> ChemistrySpec {
        let transported = m.transported();
        let trans_pos = |s: SpeciesId| transported.iter().position(|&t| t == s);
        let qssa_pos = |s: SpeciesId| m.qssa.qssa.iter().position(|&q| q == s);
        let to_ref = |s: SpeciesId| -> SpeciesRef {
            match trans_pos(s) {
                Some(i) => SpeciesRef::Transported(i),
                None => SpeciesRef::Qssa(qssa_pos(s).expect("species is transported or QSSA")),
            }
        };

        let mut reactions = Vec::with_capacity(m.n_reactions());
        for r in &m.reactions {
            let reactants: Vec<(SpeciesRef, f64)> =
                r.reactants.iter().map(|&(s, c)| (to_ref(s), c)).collect();
            let products: Vec<(SpeciesRef, f64)> =
                r.products.iter().map(|&(s, c)| (to_ref(s), c)).collect();
            let sum_nu: f64 = r.products.iter().map(|(_, c)| c).sum::<f64>()
                - r.reactants.iter().map(|(_, c)| c).sum::<f64>();
            // Fold per-species NASA coefficients into the 7 combined Gibbs
            // constants for each range: G/(RT) = a1(1-lnT) - a2/2 T - a3/6 T^2
            // - a4/12 T^3 - a5/20 T^4 + a6/T - a7.
            let mut gibbs = [[0.0f64; 7]; 2];
            for (range, row) in gibbs.iter_mut().enumerate() {
                for (s, nu, sign) in r
                    .reactants
                    .iter()
                    .map(|&(s, c)| (s, c, -1.0))
                    .chain(r.products.iter().map(|&(s, c)| (s, c, 1.0)))
                {
                    let p = &m.thermo[s];
                    let a = if range == 0 { &p.low } else { &p.high };
                    let w = sign * nu;
                    row[0] += w * a[0];
                    row[1] += w * (-a[1] / 2.0);
                    row[2] += w * (-a[2] / 6.0);
                    row[3] += w * (-a[3] / 12.0);
                    row[4] += w * (-a[4] / 20.0);
                    row[5] += w * a[5];
                    row[6] += w * (-a[6]);
                }
            }
            let third_body = r.third_body.as_ref().map(|tb| {
                tb.efficiencies
                    .iter()
                    .filter_map(|&(s, e)| trans_pos(s).map(|i| (i, e)))
                    .collect()
            });
            let reverse = match &r.reverse {
                crate::reaction::ReverseSpec::Irreversible => ReverseKind::None,
                crate::reaction::ReverseSpec::Explicit(a) => ReverseKind::Explicit(*a),
                crate::reaction::ReverseSpec::Equilibrium => ReverseKind::Equilibrium,
            };
            reactions.push(ReactionSpec {
                rate: r.rate.clone(),
                reverse,
                reactants,
                products,
                third_body,
                falloff: r.rate.is_falloff(),
                sum_nu,
                gibbs,
            });
        }

        let mut qssa = Vec::with_capacity(m.qssa.qssa.len());
        for (qi, &qs) in m.qssa.qssa.iter().enumerate() {
            let mut producers = Vec::new();
            let mut consumers = Vec::new();
            for (ri, r) in m.reactions.iter().enumerate() {
                for &(s, c) in &r.products {
                    if s == qs {
                        producers.push((ri, c));
                    }
                }
                for &(s, c) in &r.reactants {
                    if s == qs {
                        consumers.push((ri, c));
                    }
                }
            }
            qssa.push(QssaSpeciesSpec {
                order: qi,
                producers,
                consumers,
            });
        }

        let w = m.weights();
        let stiff = m
            .qssa
            .stiff
            .iter()
            .map(|&s| StiffSpec {
                trans_index: trans_pos(s).expect("stiff species are transported"),
                tau: 1.0e-3 * w[s],
                v: m.thermo[s].low[0],
            })
            .collect();

        ChemistrySpec {
            n_trans: transported.len(),
            n_qssa: m.qssa.qssa.len(),
            reactions,
            qssa,
            stiff,
        }
    }

    /// Indices of reactions needed by the QSSA phase (any QSSA reactant or
    /// product) — these are assigned to warps first (paper §3.4).
    pub fn qssa_reaction_indices(&self) -> Vec<usize> {
        self.reactions
            .iter()
            .enumerate()
            .filter(|(_, r)| {
                r.reactants
                    .iter()
                    .chain(r.products.iter())
                    .any(|(s, _)| matches!(s, SpeciesRef::Qssa(_)))
            })
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth;

    #[test]
    fn viscosity_tables_shapes() {
        let m = synth::dme();
        let t = ViscosityTables::build(&m);
        assert_eq!(t.n, 30);
        assert_eq!(t.eta.len(), 30);
        assert_eq!(t.pair_a.len(), 900);
        assert_eq!(t.constant_bytes(), 13_920);
        // Self pairs zero, cross pairs positive.
        assert_eq!(t.pair_a[0], 0.0);
        assert!(t.pair_a[1] > 0.0 && t.pair_b[1] > 0.0);
    }

    #[test]
    fn pair_constants_match_formulas() {
        let m = synth::dme();
        let t = ViscosityTables::build(&m);
        let w = m.transported_weights();
        let (k, j) = (3, 7);
        assert!((t.pair_a[k * t.n + j] - (w[j] / w[k]).powf(0.25)).abs() < 1e-12);
        assert!((t.pair_b[k * t.n + j] - 1.0 / (1.0 + w[k] / w[j]).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn chemistry_spec_shapes() {
        let m = synth::dme();
        let c = ChemistrySpec::build(&m);
        assert_eq!(c.n_trans, 30);
        assert_eq!(c.n_qssa, 9);
        assert_eq!(c.reactions.len(), 175);
        assert_eq!(c.stiff.len(), 22);
        // Every QSSA species should have at least one producer or consumer.
        for q in &c.qssa {
            assert!(!q.producers.is_empty() || !q.consumers.is_empty());
        }
    }

    #[test]
    fn gibbs_folding_matches_per_species_sum() {
        let m = synth::dme();
        let c = ChemistrySpec::build(&m);
        let r = &m.reactions[5];
        let spec = &c.reactions[5];
        for t in [600.0, 1500.0] {
            let direct: f64 = r
                .products
                .iter()
                .map(|&(s, nu)| nu * gr(&m.thermo[s], t))
                .sum::<f64>()
                - r.reactants
                    .iter()
                    .map(|&(s, nu)| nu * gr(&m.thermo[s], t))
                    .sum::<f64>();
            let folded = spec.delta_g_rt(t);
            assert!(
                (direct - folded).abs() < 1e-6 * direct.abs().max(1.0),
                "T={t}: {direct} vs {folded}"
            );
        }
        // Evaluate G/RT with the same global 1000 K break the spec uses.
        fn gr(p: &crate::thermo::NasaPoly, t: f64) -> f64 {
            let a = if t < T_MID { &p.low } else { &p.high };
            a[0] * (1.0 - t.ln())
                + t * (-a[1] / 2.0 + t * (-a[2] / 6.0 + t * (-a[3] / 12.0 + t * (-a[4] / 20.0))))
                + a[5] / t
                - a[6]
        }
    }

    #[test]
    fn equilibrium_reverse_is_finite_and_positive() {
        let m = synth::heptane();
        let c = ChemistrySpec::build(&m);
        for spec in c.reactions.iter().take(40) {
            let t = 1400.0;
            let kf = spec.k_forward(t, 1.0e-5);
            let kr = spec.k_reverse(t, kf);
            assert!(kr.is_finite() && kr >= 0.0, "{kr}");
        }
    }

    #[test]
    fn qssa_reaction_indices_subset() {
        let m = synth::dme();
        let c = ChemistrySpec::build(&m);
        let idx = c.qssa_reaction_indices();
        assert!(!idx.is_empty());
        assert!(idx.len() < c.reactions.len());
        // Matches the mechanism-level accounting.
        assert_eq!(idx.len(), m.qssa_reactions().len());
    }
}
