//! Scalar reference implementation of the viscosity kernel (paper §3.2).
//!
//! Per grid point, per-species viscosities come from an exponentiated
//! third-order polynomial in temperature; the mixture viscosity is the
//! pairwise interaction sum of the paper:
//!
//! ```text
//! vis_i(T) = exp(eta_i0 + eta_i1 T + eta_i2 T^2 + eta_i3 T^3)
//! nu = sqrt(8) * sum_k [ x_k vis_k / sum_j x_j phi_kj ]
//! phi_kj = (1 + sqrt(vis_k/vis_j) * (m_j/m_k)^(1/4))^2 / sqrt(1 + m_k/m_j)
//! ```
//!
//! with the per-pair constants `(m_j/m_k)^(1/4)` and `1/sqrt(1+m_k/m_j)`
//! folded into tables (two doubles per ordered pair — the constant-footprint
//! numbers of §3.2).

use super::tables::{ViscosityTables, PHI_SELF};
use crate::state::GridState;

/// Compute the mixture viscosity for a single point given temperature and
/// the species molar fractions (`x[i]` indexed by transported species).
pub fn reference_viscosity_point(t: &ViscosityTables, temp: f64, x: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), t.n);
    let n = t.n;
    // Phase 1: per-species viscosities.
    let mut vis = vec![0.0f64; n];
    for i in 0..n {
        let e = &t.eta[i];
        vis[i] = (e[0] + temp * (e[1] + temp * (e[2] + temp * e[3]))).exp();
    }
    // Phase 2: pairwise interaction sum.
    let mut nu = 0.0f64;
    for k in 0..n {
        let mut inner = x[k] * PHI_SELF;
        for j in 0..n {
            if j == k {
                continue;
            }
            let a = t.pair_a[k * n + j];
            let b = t.pair_b[k * n + j];
            let s = 1.0 + (vis[k] / vis[j]).sqrt() * a;
            inner += x[j] * s * s * b;
        }
        nu += x[k] * vis[k] / inner;
    }
    8.0f64.sqrt() * nu
}

/// Compute the viscosity for every point of a grid state. Returns one value
/// per point.
pub fn reference_viscosity(t: &ViscosityTables, g: &GridState) -> Vec<f64> {
    assert_eq!(g.n_species, t.n, "grid species must match tables");
    let p = g.points();
    let mut out = vec![0.0; p];
    let mut x = vec![0.0; t.n];
    for pt in 0..p {
        for s in 0..t.n {
            x[s] = g.x(s, pt);
        }
        out[pt] = reference_viscosity_point(t, g.temperature[pt], &x);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{GridDims, GridState};
    use crate::synth;

    #[test]
    fn single_species_reduces_to_pure_viscosity() {
        // With one species, inner = x0 * PHI_SELF and
        // nu = sqrt(8) * vis0 / PHI_SELF = vis0 (since sqrt(8)=2*sqrt(2)
        // and PHI_SELF = 4/sqrt(2) = 2*sqrt(2)).
        let t = ViscosityTables {
            n: 1,
            eta: vec![[-10.0, 1e-4, 0.0, 0.0]],
            pair_a: vec![0.0],
            pair_b: vec![0.0],
        };
        let temp = 1000.0;
        let vis0 = (-10.0f64 + 1e-4 * temp).exp();
        let nu = reference_viscosity_point(&t, temp, &[1.0]);
        assert!((nu - vis0).abs() / vis0 < 1e-14);
    }

    #[test]
    fn output_is_positive_and_finite_for_presets() {
        let m = synth::dme();
        let t = ViscosityTables::build(&m);
        let g = GridState::random(GridDims::cube(3), t.n, 11);
        let out = reference_viscosity(&t, &g);
        for v in out {
            assert!(v.is_finite() && v > 0.0, "{v}");
        }
    }

    #[test]
    fn symmetric_mixture_of_identical_species() {
        // Two identical species in any proportions behave like one species.
        let eta = [-10.0, 1e-4, -1e-8, 1e-12];
        let t = ViscosityTables {
            n: 2,
            eta: vec![eta, eta],
            // identical weights => A = 1, B = 1/sqrt(2)
            pair_a: vec![0.0, 1.0, 1.0, 0.0],
            pair_b: vec![0.0, 1.0 / 2.0f64.sqrt(), 1.0 / 2.0f64.sqrt(), 0.0],
        };
        let temp = 1200.0;
        let vis0 = (eta[0] + temp * (eta[1] + temp * (eta[2] + temp * eta[3]))).exp();
        // phi cross = (1+1)^2 / sqrt(2) = PHI_SELF, so mixture == pure.
        let nu = reference_viscosity_point(&t, temp, &[0.3, 0.7]);
        assert!((nu - vis0).abs() / vis0 < 1e-12);
    }

    #[test]
    fn temperature_monotonicity_for_gas_like_fits() {
        // Gas viscosity rises with temperature for our fit ranges.
        let m = synth::heptane();
        let t = ViscosityTables::build(&m);
        let x = vec![1.0 / t.n as f64; t.n];
        let lo = reference_viscosity_point(&t, 500.0, &x);
        let hi = reference_viscosity_point(&t, 2500.0, &x);
        assert!(hi > lo);
    }
}
