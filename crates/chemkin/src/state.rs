//! Structure-of-arrays grid state.
//!
//! Combustion simulations operate on a 3-D cartesian grid; each point has a
//! set of fields and *each field is laid out contiguously in a separate
//! array* so global loads coalesce (paper §3.1). The same layout is used by
//! the CPU reference kernels and as the simulated GPU's global-memory image.

use crate::P_ATM;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Cartesian grid dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridDims {
    /// Points along x.
    pub nx: usize,
    /// Points along y.
    pub ny: usize,
    /// Points along z.
    pub nz: usize,
}

impl GridDims {
    /// A cubic grid `n x n x n` — the paper reports 32^3, 64^3 and 128^3.
    pub fn cube(n: usize) -> GridDims {
        GridDims { nx: n, ny: n, nz: n }
    }

    /// Total number of grid points.
    pub fn points(&self) -> usize {
        self.nx * self.ny * self.nz
    }
}

/// Thermochemical state for every grid point, SoA layout.
#[derive(Debug, Clone)]
pub struct GridState {
    /// Grid dimensions.
    pub dims: GridDims,
    /// Number of (transported) species `N`.
    pub n_species: usize,
    /// Temperature per point, K.
    pub temperature: Vec<f64>,
    /// Pressure per point, dyn/cm^2.
    pub pressure: Vec<f64>,
    /// Molar fractions, `[species][point]`: `mole_frac[s * points + p]`.
    pub mole_frac: Vec<f64>,
    /// Per-species diffusion rates `[species][point]` — consumed by the
    /// chemistry kernel's stiffness phase (paper §5.3, Listing 4).
    pub diffusion: Vec<f64>,
}

impl GridState {
    /// Deterministic random state with plausible combustion conditions:
    /// temperatures 800–2800 K, pressures 0.5–2 atm, normalized fractions.
    pub fn random(dims: GridDims, n_species: usize, seed: u64) -> GridState {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let p = dims.points();
        let mut temperature = Vec::with_capacity(p);
        let mut pressure = Vec::with_capacity(p);
        for _ in 0..p {
            temperature.push(rng.gen_range(800.0..2800.0));
            pressure.push(P_ATM * rng.gen_range(0.5..2.0));
        }
        let mut mole_frac = vec![0.0; n_species * p];
        for pt in 0..p {
            let mut total = 0.0;
            for s in 0..n_species {
                let x: f64 = rng.gen_range(0.0f64..1.0).powi(3); // a few dominant species
                mole_frac[s * p + pt] = x;
                total += x;
            }
            for s in 0..n_species {
                mole_frac[s * p + pt] /= total;
            }
        }
        let diffusion = (0..n_species * p)
            .map(|_| rng.gen_range(1.0e-6..1.0e-3))
            .collect();
        GridState {
            dims,
            n_species,
            temperature,
            pressure,
            mole_frac,
            diffusion,
        }
    }

    /// Number of points.
    pub fn points(&self) -> usize {
        self.dims.points()
    }

    /// Molar fraction of species `s` at point `p`.
    pub fn x(&self, s: usize, p: usize) -> f64 {
        self.mole_frac[s * self.points() + p]
    }

    /// Diffusion rate of species `s` at point `p`.
    pub fn diff(&self, s: usize, p: usize) -> f64 {
        self.diffusion[s * self.points() + p]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cube_dims() {
        assert_eq!(GridDims::cube(32).points(), 32 * 32 * 32);
    }

    #[test]
    fn fractions_normalized() {
        let g = GridState::random(GridDims::cube(4), 7, 42);
        for pt in 0..g.points() {
            let sum: f64 = (0..7).map(|s| g.x(s, pt)).sum();
            assert!((sum - 1.0).abs() < 1e-12, "{sum}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = GridState::random(GridDims::cube(3), 5, 1);
        let b = GridState::random(GridDims::cube(3), 5, 1);
        assert_eq!(a.temperature, b.temperature);
        assert_eq!(a.mole_frac, b.mole_frac);
    }

    #[test]
    fn plausible_ranges() {
        let g = GridState::random(GridDims::cube(4), 3, 9);
        for &t in &g.temperature {
            assert!((800.0..2800.0).contains(&t));
        }
        for &p in &g.pressure {
            assert!(p > 0.4 * P_ATM && p < 2.1 * P_ATM);
        }
    }
}
