//! Deterministic synthetic mechanism generation.
//!
//! The paper evaluates on the DME (Zhao et al.) and reduced n-heptane
//! mechanisms, whose data files are not redistributable. This module
//! generates mechanisms with exactly the paper's Figure 3 characteristics
//! and physically plausible coefficient ranges. Mechanisms are emitted as
//! CHEMKIN/THERMO/TRANSPORT/QSSA *text* and re-parsed through the real
//! parsers, so the whole input path the Singe compiler depends on is
//! exercised, and the working-set / constant-footprint numbers the paper's
//! performance analysis hinges on match by construction.

use crate::mechanism::{Mechanism, QssaSpec};
use crate::parser::parse_mechanism;
use crate::reaction::{Arrhenius, RateModel, Reaction, ReverseSpec, ThirdBody, TroeParams};
use crate::species::Species;
use crate::thermo::NasaPoly;
use crate::transport::TransportFit;
use crate::writer;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Parameters of a synthetic mechanism.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Mechanism name.
    pub name: String,
    /// Total species count (before QSSA reduction).
    pub n_species: usize,
    /// Reaction count.
    pub n_reactions: usize,
    /// QSSA species count.
    pub n_qssa: usize,
    /// Stiff species count.
    pub n_stiff: usize,
    /// RNG seed (mechanisms are fully deterministic given the config).
    pub seed: u64,
}

/// The DME mechanism row of Figure 3: 175 reactions, 39 species, 9 QSSA,
/// 22 stiff.
pub fn dme_config() -> SynthConfig {
    SynthConfig {
        name: "dme".into(),
        n_species: 39,
        n_reactions: 175,
        n_qssa: 9,
        n_stiff: 22,
        seed: 0x0d3e,
    }
}

/// The n-heptane mechanism row of Figure 3: 283 reactions, 68 species,
/// 16 QSSA, 27 stiff.
pub fn heptane_config() -> SynthConfig {
    SynthConfig {
        name: "heptane".into(),
        n_species: 68,
        n_reactions: 283,
        n_qssa: 16,
        n_stiff: 27,
        seed: 0xc7e7,
    }
}

/// Synthesize, serialize to text, and re-parse the DME-sized mechanism.
pub fn dme() -> Mechanism {
    via_text(&dme_config())
}

/// Synthesize, serialize to text, and re-parse the heptane-sized mechanism.
pub fn heptane() -> Mechanism {
    via_text(&heptane_config())
}

/// Synthesize a mechanism and round-trip it through the text formats —
/// the canonical entry point (exercises writer + parsers).
pub fn via_text(cfg: &SynthConfig) -> Mechanism {
    let m = synthesize(cfg);
    let files = MechanismFiles::from_mechanism(&m);
    files.parse(&cfg.name).expect("synthesized mechanism must re-parse")
}

/// The four Singe input files as text.
#[derive(Debug, Clone)]
pub struct MechanismFiles {
    /// CHEMKIN reaction file.
    pub chemkin: String,
    /// THERMO file.
    pub thermo: String,
    /// TRANSPORT file.
    pub transport: String,
    /// QSSA/STIFF file (empty if unused).
    pub qssa: String,
}

impl MechanismFiles {
    /// Serialize a mechanism to its input files.
    pub fn from_mechanism(m: &Mechanism) -> MechanismFiles {
        MechanismFiles {
            chemkin: writer::write_chemkin(m),
            thermo: writer::write_thermo(m),
            transport: writer::write_transport(m),
            qssa: writer::write_qssa(m),
        }
    }

    /// Parse the files back into a mechanism.
    pub fn parse(&self, name: &str) -> crate::Result<Mechanism> {
        let qssa = if self.qssa.is_empty() {
            None
        } else {
            Some(self.qssa.as_str())
        };
        parse_mechanism(name, &self.chemkin, &self.thermo, &self.transport, qssa)
    }
}

/// Generate unique species names/formulas: small radicals first, then a
/// ladder of C/H/O molecules large enough for any mechanism size.
fn species_pool(n: usize) -> Vec<Species> {
    let base = [
        "h", "h2", "o", "o2", "oh", "h2o", "ho2", "h2o2", "c", "ch", "ch2", "ch3", "ch4", "co",
        "co2", "hco", "ch2o", "ch3o", "ch2oh", "ch3oh", "n2", "ar",
    ];
    let mut out: Vec<Species> = Vec::with_capacity(n);
    for name in base.iter().take(n) {
        out.push(Species::from_formula(name).expect("base species"));
    }
    let mut c = 2u32;
    let mut h = 1u32;
    let mut o = 0u32;
    while out.len() < n {
        let name = if o == 0 {
            format!("c{c}h{h}")
        } else {
            format!("c{c}h{h}o{o}")
        };
        if !out.iter().any(|s| s.name == name) {
            out.push(Species::from_formula(&name).expect("generated species"));
        }
        // Walk the (c,h,o) lattice deterministically.
        h += 1;
        if h > 2 * c + 2 {
            h = 1;
            o += 1;
            if o > 2 {
                o = 0;
                c += 1;
            }
        }
    }
    out
}

/// Build a mechanism in memory (without the text round trip).
pub fn synthesize(cfg: &SynthConfig) -> Mechanism {
    assert!(cfg.n_qssa + cfg.n_stiff <= cfg.n_species, "QSSA+stiff must fit");
    assert!(cfg.n_species >= 4, "need at least 4 species");
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let species = species_pool(cfg.n_species);

    let thermo: Vec<NasaPoly> = species
        .iter()
        .map(|s| NasaPoly::plausible(s.molecular_weight(), s.atom_count(), rng.gen_range(-0.5..0.5)))
        .collect();

    let transport: Vec<TransportFit> = species
        .iter()
        .map(|s| TransportFit {
            shape: rng.gen_range(0..=2),
            eps_over_k: rng.gen_range(30.0..600.0),
            sigma: 2.0 + 0.15 * f64::from(s.atom_count()) + rng.gen_range(0.0..0.8),
            dipole: if rng.gen_bool(0.3) { rng.gen_range(0.1..2.0) } else { 0.0 },
            polarizability: rng.gen_range(0.5..12.0),
            zrot: rng.gen_range(0.5..300.0),
        })
        .collect();

    // QSSA species: a spread of mid-index species (radical-like, unique);
    // stiff species drawn from the remainder.
    let n = cfg.n_species;
    let mut qssa: Vec<usize> = Vec::with_capacity(cfg.n_qssa);
    let mut cand = 0usize;
    while qssa.len() < cfg.n_qssa {
        let ideal = 2 + qssa.len() * n.saturating_sub(3) / cfg.n_qssa.max(1);
        let pick = ideal.max(cand).min(n - 1);
        let pick = if qssa.contains(&pick) {
            (0..n).find(|c| !qssa.contains(c)).expect("n_qssa <= n_species")
        } else {
            pick
        };
        qssa.push(pick);
        cand = pick + 1;
    }
    qssa.sort_unstable();
    let mut stiff = Vec::with_capacity(cfg.n_stiff);
    let mut k = 0usize;
    while stiff.len() < cfg.n_stiff {
        if !qssa.contains(&k) && !stiff.contains(&k) {
            stiff.push(k);
        }
        k = (k + 1) % n;
    }

    let mut reactions = Vec::with_capacity(cfg.n_reactions);
    for i in 0..cfg.n_reactions {
        // First pass guarantees every species participates in some reaction.
        let forced = if i < n { Some(i) } else { None };
        reactions.push(random_reaction(&mut rng, cfg, &qssa, forced, i));
    }

    Mechanism {
        name: cfg.name.clone(),
        species,
        thermo,
        transport,
        reactions,
        qssa: QssaSpec { qssa, stiff },
    }
    .validate()
    .expect("synthesized mechanism must validate")
}

fn pick_species(rng: &mut ChaCha8Rng, cfg: &SynthConfig, qssa: &[usize], want_qssa: bool) -> usize {
    if want_qssa {
        qssa[rng.gen_range(0..qssa.len())]
    } else {
        rng.gen_range(0..cfg.n_species)
    }
}

fn random_arrhenius(rng: &mut ChaCha8Rng) -> Arrhenius {
    Arrhenius::new(
        10f64.powf(rng.gen_range(3.0..16.0)),
        rng.gen_range(-2.0..3.0),
        rng.gen_range(0.0..8.0e4),
    )
}

fn random_reaction(
    rng: &mut ChaCha8Rng,
    cfg: &SynthConfig,
    qssa: &[usize],
    forced_species: Option<usize>,
    index: usize,
) -> Reaction {
    // ~30% of reactions are forced to touch a QSSA species; together with
    // chance hits from the unconstrained picks this lands the QSSA phase's
    // rate consumption in the paper's "half to two-thirds" band (§3.4).
    let touch_qssa = !qssa.is_empty() && rng.gen_bool(0.30);

    let n_react = rng.gen_range(1..=2);
    let n_prod = rng.gen_range(1..=2);
    let mut reactants: Vec<(usize, f64)> = Vec::new();
    let mut products: Vec<(usize, f64)> = Vec::new();
    for j in 0..n_react {
        let s = if j == 0 {
            forced_species.unwrap_or_else(|| pick_species(rng, cfg, qssa, touch_qssa))
        } else {
            pick_species(rng, cfg, qssa, false)
        };
        let coeff = if rng.gen_bool(0.12) { 2.0 } else { 1.0 };
        if let Some(e) = reactants.iter_mut().find(|(id, _)| *id == s) {
            e.1 += coeff;
        } else {
            reactants.push((s, coeff));
        }
    }
    for j in 0..n_prod {
        // Products avoid duplicating a reactant so net stoichiometry is
        // nontrivial; QSSA coupling flows reactant->product forming the DAG.
        let want_q = touch_qssa && j == 0 && rng.gen_bool(0.5);
        let mut s = pick_species(rng, cfg, qssa, want_q);
        let mut tries = 0;
        while reactants.iter().any(|(id, _)| *id == s) && tries < 8 {
            s = pick_species(rng, cfg, qssa, false);
            tries += 1;
        }
        let coeff = if rng.gen_bool(0.12) { 2.0 } else { 1.0 };
        if let Some(e) = products.iter_mut().find(|(id, _)| *id == s) {
            e.1 += coeff;
        } else {
            products.push((s, coeff));
        }
    }
    // Degenerate fallback: ensure sides differ.
    if products.iter().all(|(s, _)| reactants.iter().any(|(r, _)| r == s)) {
        let alt = (reactants[0].0 + 1) % cfg.n_species;
        products.push((alt, 1.0));
    }

    let roll: f64 = rng.gen();
    let high = random_arrhenius(rng);
    let (rate, has_falloff) = if roll < 0.70 {
        (RateModel::Arrhenius(high), false)
    } else if roll < 0.82 {
        let low = Arrhenius::new(high.a * 10f64.powf(rng.gen_range(8.0..16.0)),
                                 high.beta - rng.gen_range(2.0..5.0),
                                 rng.gen_range(0.0..4.0e3));
        let troe = TroeParams {
            a: rng.gen_range(0.0..1.0),
            t3: 10f64.powf(rng.gen_range(-15.0..4.0)),
            t1: 10f64.powf(rng.gen_range(-15.0..4.0)),
            t2: if rng.gen_bool(0.5) { Some(rng.gen_range(10.0..6000.0)) } else { None },
        };
        (RateModel::Troe { high, low, troe }, true)
    } else if roll < 0.90 {
        let low = Arrhenius::new(high.a * 10f64.powf(rng.gen_range(8.0..16.0)),
                                 high.beta - rng.gen_range(2.0..5.0),
                                 rng.gen_range(0.0..4.0e3));
        (RateModel::Lindemann { high, low }, true)
    } else if roll < 0.94 {
        (
            RateModel::LandauTeller {
                arrhenius: high,
                b: rng.gen_range(-300.0..300.0),
                c: rng.gen_range(-300.0..300.0),
            },
            false,
        )
    } else {
        (RateModel::Arrhenius(high), false)
    };
    // The final 6% band (roll >= 0.94) become bare three-body reactions.
    let three_body = !has_falloff && roll >= 0.94;

    let third_body = if has_falloff || three_body {
        let mut eff = Vec::new();
        let n_eff = rng.gen_range(0..4usize);
        for _ in 0..n_eff {
            let s = rng.gen_range(0..cfg.n_species);
            if !eff.iter().any(|(id, _): &(usize, f64)| *id == s) {
                eff.push((s, rng.gen_range(0.5..6.0)));
            }
        }
        Some(ThirdBody { efficiencies: eff })
    } else {
        None
    };

    let rev_roll: f64 = rng.gen();
    let reverse = if rev_roll < 0.5 {
        ReverseSpec::Equilibrium
    } else if rev_roll < 0.8 {
        ReverseSpec::Explicit(random_arrhenius(rng))
    } else {
        ReverseSpec::Irreversible
    };

    Reaction {
        label: format!("{}", index + 1),
        reactants,
        products,
        rate,
        reverse,
        third_body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dme_matches_figure3() {
        let m = dme();
        let c = m.characteristics();
        assert_eq!(c.reactions, 175);
        assert_eq!(c.species, 39);
        assert_eq!(c.qssa, 9);
        assert_eq!(c.stiff, 22);
        assert_eq!(m.n_transported(), 30);
    }

    #[test]
    fn heptane_matches_figure3() {
        let m = heptane();
        let c = m.characteristics();
        assert_eq!(c.reactions, 283);
        assert_eq!(c.species, 68);
        assert_eq!(c.qssa, 16);
        assert_eq!(c.stiff, 27);
        assert_eq!(m.n_transported(), 52);
    }

    #[test]
    fn constant_footprints_match_paper() {
        // Paper §3.2: DME needs 13.9 KB of viscosity constants, heptane 42.4 KB.
        assert_eq!(dme().viscosity_constant_bytes(), 13_920);
        assert_eq!(heptane().viscosity_constant_bytes(), 42_432);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = synthesize(&dme_config());
        let b = synthesize(&dme_config());
        assert_eq!(a.reactions.len(), b.reactions.len());
        for (x, y) in a.reactions.iter().zip(b.reactions.iter()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn qssa_rate_consumption_in_paper_band() {
        // Paper §3.4: QSSA needs between roughly half and two-thirds of the
        // reaction rates. Allow a generous band.
        for m in [dme(), heptane()] {
            let frac = m.qssa_reactions().len() as f64 / m.n_reactions() as f64;
            assert!((0.35..=0.80).contains(&frac), "{}: {frac}", m.name);
        }
    }

    #[test]
    fn qssa_dag_is_nonempty_for_presets() {
        for m in [dme(), heptane()] {
            assert!(!m.qssa_dag().is_empty(), "{} should couple QSSA species", m.name);
        }
    }

    #[test]
    fn every_species_used() {
        for m in [dme(), heptane()] {
            for s in 0..m.n_species() {
                assert!(
                    m.reactions.iter().any(|r| r.involves(s)),
                    "species {s} unused in {}",
                    m.name
                );
            }
        }
    }

    #[test]
    fn rate_model_variety_present() {
        let m = heptane();
        let mut troe = 0;
        let mut lind = 0;
        let mut lt = 0;
        let mut tb = 0;
        for r in &m.reactions {
            match r.rate {
                RateModel::Troe { .. } => troe += 1,
                RateModel::Lindemann { .. } => lind += 1,
                RateModel::LandauTeller { .. } => lt += 1,
                RateModel::Arrhenius(_) => {
                    if r.third_body.is_some() {
                        tb += 1;
                    }
                }
            }
        }
        assert!(troe > 5, "troe {troe}");
        assert!(lind > 3, "lindemann {lind}");
        assert!(lt > 1, "landau-teller {lt}");
        assert!(tb > 1, "three-body {tb}");
    }

    #[test]
    fn species_pool_unique() {
        let pool = species_pool(120);
        let mut names: Vec<_> = pool.iter().map(|s| s.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 120);
    }
}
