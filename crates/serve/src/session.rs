//! The session API: a persistent, concurrent front door to the compiler.
//!
//! A [`ServeSession`] owns:
//!
//! * a **mechanism registry** — named, content-fingerprinted mechanisms
//!   loaded once (from chemkin text sources or synth specs) and shared by
//!   every request that names them;
//! * the **persistent artifact cache** ([`crate::artifact::Store`]) — a
//!   compile survives the process;
//! * an **in-flight table** — identical concurrent requests coalesce onto
//!   one compile, all waiters sharing its result (success *or* failure);
//! * the **sharded scheduler** ([`crate::sched::Scheduler`]) — bounded
//!   queue, per-tenant fairness, backpressure.
//!
//! The request lifecycle for [`ServeSession::compile`]:
//!
//! ```text
//! request ── scheduler (fairness, backpressure)
//!          ── key = hash(mech fp, kernel, variant, arch, warps, options)
//!          ── in-flight table: claim or join
//!          ── disk: load artifact (corrupt ⇒ treat as miss, recompile)
//!          ── cold: dfg → compile → verify → persist
//! ```

use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use chemkin::reference::tables::{ChemistrySpec, DiffusionTables, ViscosityTables};
use chemkin::synth::SynthConfig;
use chemkin::{GridDims, GridState, Mechanism};
use gpu_sim::arch::GpuArch;
use gpu_sim::counts::EventCounts;
use gpu_sim::launch::{launch, LaunchInputs, LaunchMode};
use gpu_sim::timing::{estimate, SimReport};
use singe::kernels::{chemistry, diffusion, launch_arrays, viscosity};
use singe::search::{SearchBudget, SearchOutcome};
use singe::{CompileOptions, Compiler, Placement, Variant, VerifyLevel};

use crate::artifact::{Artifact, ArtifactKey, ArtifactMeta, Store, VerifyVerdict};
use crate::error::{ServeError, ServeResult};
use crate::ids::{ArchId, KernelId, MechanismId};
use crate::metrics::{Counters, ServeStats};
use crate::sched::{Scheduler, Ticket};

/// Pick a warp count for the warp-specialized viscosity kernel: prefer a
/// divisor of the species count (Figure 9: "peaks for warp counts that
/// evenly divide the number of species"). This is the canonical home of
/// the heuristic; the bench harness delegates here.
pub fn viscosity_warps(n_species: usize) -> usize {
    for w in (4..=14).rev() {
        if n_species.is_multiple_of(w) {
            return w;
        }
    }
    8
}

/// Default warp-specialized options per kernel, sized to the mechanism
/// and architecture — the paper's per-kernel configurations (§6).
pub fn default_options(kernel: KernelId, n_species: usize, arch: &GpuArch) -> CompileOptions {
    // Hopper-class barrier files host K-stage pipelined schedules; depth 2
    // is the conservative default that measures ahead of single-buffering
    // on the viscosity kernel (deeper rings add shared-memory footprint
    // without further per-CTA wins; the compiler clamps depth wherever a
    // schedule or arch cannot host it).
    let pipe = if arch.named_barriers_per_sm >= 64 { 2 } else { 1 };
    match kernel {
        KernelId::Viscosity => CompileOptions::builder()
            .warps(viscosity_warps(n_species))
            .point_iters(4)
            .placement(Placement::Store)
            .pipeline_depth(pipe)
            .build(),
        KernelId::Diffusion => CompileOptions::builder()
            .warps(8)
            .point_iters(4)
            .placement(Placement::Mixed(176))
            .build(),
        KernelId::Chemistry => CompileOptions::builder()
            // 16-20 warps per SM at one CTA (§6.3).
            .warps(if arch.max_warps_per_sm >= 64 { 16 } else { 20 })
            .point_iters(2)
            .placement(Placement::Buffer(176))
            .w_locality(1.0)
            .build(),
    }
}

/// A typed compile request. Construct with [`CompileRequest::new`] (which
/// leaves options at the session's per-kernel defaults) and refine with
/// the `with_*` setters; the struct is `#[non_exhaustive]` so the request
/// surface can grow without breaking callers.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct CompileRequest {
    /// Which registered mechanism to compile for.
    pub mechanism: MechanismId,
    /// Which kernel.
    pub kernel: KernelId,
    /// Compiler variant.
    pub variant: Variant,
    /// Target architecture.
    pub arch: ArchId,
    /// Explicit compile options; `None` uses [`default_options`] — and,
    /// for [`Variant::Baseline`], the historical baseline convention
    /// (compile at 8 warps against a dfg built for the warp-specialized
    /// warp count).
    pub options: Option<CompileOptions>,
    /// Warp count the dfg is built at; `None` derives it (the options'
    /// warp count, or the warp-specialized default for a default-options
    /// baseline).
    pub dfg_warps: Option<usize>,
    /// Scheduling tenant: requests from the same tenant are FIFO; tenants
    /// share the farm round-robin.
    pub tenant: String,
}

impl CompileRequest {
    /// A request with default options under the `"default"` tenant.
    pub fn new(
        mechanism: MechanismId,
        kernel: KernelId,
        variant: Variant,
        arch: ArchId,
    ) -> CompileRequest {
        CompileRequest {
            mechanism,
            kernel,
            variant,
            arch,
            options: None,
            dfg_warps: None,
            tenant: "default".to_string(),
        }
    }

    /// Set explicit compile options.
    #[must_use]
    pub fn with_options(mut self, options: CompileOptions) -> CompileRequest {
        self.options = Some(options);
        self
    }

    /// Build the dfg at an explicit warp count (the baseline convention
    /// keys this separately from the compile options' warp count).
    #[must_use]
    pub fn with_dfg_warps(mut self, dfg_warps: usize) -> CompileRequest {
        self.dfg_warps = Some(dfg_warps);
        self
    }

    /// Attribute the request to a scheduling tenant.
    #[must_use]
    pub fn with_tenant(mut self, tenant: &str) -> CompileRequest {
        self.tenant = tenant.to_string();
        self
    }
}

/// Where a served artifact came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactSource {
    /// This request ran the compiler.
    ColdCompile,
    /// Loaded from the persistent cache.
    WarmDisk,
    /// Joined an identical compile already in flight.
    InflightJoin,
}

/// A served compile result: the artifact plus its provenance.
#[derive(Debug, Clone)]
pub struct ArtifactHandle {
    /// The artifact (shared: joiners and the owner hold the same data).
    pub artifact: Arc<Artifact>,
    /// How this particular request was satisfied.
    pub source: ArtifactSource,
    /// The content address it is cached under.
    pub key: ArtifactKey,
}

struct MechEntry {
    mech: Arc<Mechanism>,
    fingerprint: u64,
}

type InflightSlot = Arc<OnceLock<Result<(Arc<Artifact>, ArtifactSource), ServeError>>>;

struct SessionInner {
    store: Store,
    counters: Counters,
    registry: Mutex<BTreeMap<String, MechEntry>>,
    inflight: Mutex<HashMap<ArtifactKey, InflightSlot>>,
    probes: Mutex<HashMap<ArtifactKey, EventCounts>>,
}

/// Builder for [`ServeSession`] — every knob is optional.
#[must_use = "the builder does nothing until .open() is called"]
#[derive(Debug, Clone)]
pub struct ServeSessionBuilder {
    cache_dir: PathBuf,
    queue_depth: usize,
    jobs: usize,
    shards: usize,
    builtins: bool,
}

impl ServeSessionBuilder {
    fn new(cache_dir: &Path) -> ServeSessionBuilder {
        ServeSessionBuilder {
            cache_dir: cache_dir.to_path_buf(),
            queue_depth: 256,
            jobs: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
            shards: 4,
            builtins: true,
        }
    }

    /// Artifact-cache directory (created if absent).
    pub fn cache_dir(mut self, dir: &Path) -> ServeSessionBuilder {
        self.cache_dir = dir.to_path_buf();
        self
    }

    /// Bound on queued (not yet running) jobs before submissions are
    /// rejected with [`ServeError::Overloaded`].
    pub fn queue_depth(mut self, depth: usize) -> ServeSessionBuilder {
        self.queue_depth = depth.max(1);
        self
    }

    /// Worker threads.
    pub fn jobs(mut self, jobs: usize) -> ServeSessionBuilder {
        self.jobs = jobs.max(1);
        self
    }

    /// Scheduler shards (per-tenant queues hash across these).
    pub fn shards(mut self, shards: usize) -> ServeSessionBuilder {
        self.shards = shards.max(1);
        self
    }

    /// Whether to pre-register the built-in `dme` and `heptane`
    /// mechanisms (on by default; tests that want an empty registry turn
    /// it off).
    pub fn builtins(mut self, builtins: bool) -> ServeSessionBuilder {
        self.builtins = builtins;
        self
    }

    /// Open the session.
    pub fn open(self) -> ServeResult<ServeSession> {
        let store = Store::open(&self.cache_dir).map_err(|e| ServeError::Io {
            path: self.cache_dir.display().to_string(),
            message: e.to_string(),
        })?;
        let inner = Arc::new(SessionInner {
            store,
            counters: Counters::default(),
            registry: Mutex::new(BTreeMap::new()),
            inflight: Mutex::new(HashMap::new()),
            probes: Mutex::new(HashMap::new()),
        });
        let session = ServeSession {
            inner,
            sched: Scheduler::new(self.shards, self.jobs, self.queue_depth),
        };
        if self.builtins {
            session.register_synth(&chemkin::synth::dme_config())?;
            session.register_synth(&chemkin::synth::heptane_config())?;
        }
        Ok(session)
    }
}

/// A compile-farm session. See the module docs for the architecture.
#[derive(Debug)]
pub struct ServeSession {
    inner: Arc<SessionInner>,
    sched: Scheduler,
}

impl std::fmt::Debug for SessionInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionInner").field("cache", &self.store.root()).finish()
    }
}

impl ServeSession {
    /// Open a session with default knobs, caching artifacts under `path`.
    pub fn open(path: &Path) -> ServeResult<ServeSession> {
        ServeSession::builder(path).open()
    }

    /// Start configuring a session caching artifacts under `path`.
    pub fn builder(path: &Path) -> ServeSessionBuilder {
        ServeSessionBuilder::new(path)
    }

    /// The artifact cache directory.
    pub fn cache_dir(&self) -> &Path {
        self.inner.store.root()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ServeStats {
        self.inner.counters.snapshot()
    }

    /// Jobs currently queued in the scheduler.
    pub fn queued(&self) -> usize {
        self.sched.queued()
    }

    // -- registry ----------------------------------------------------------

    /// Register a mechanism under `id`. Registering identical content
    /// twice is a no-op; the same id with *different* content is
    /// [`ServeError::MechanismConflict`] (ids are immutable bindings —
    /// changed chemistry needs a new id, which also gives it a disjoint
    /// artifact keyspace).
    pub fn register_mechanism(&self, id: MechanismId, mech: Mechanism) -> ServeResult<()> {
        let fingerprint = mech_fingerprint(&mech);
        let mut reg = self.inner.registry.lock().unwrap();
        if let Some(existing) = reg.get(id.as_str()) {
            if existing.fingerprint == fingerprint {
                return Ok(());
            }
            return Err(ServeError::MechanismConflict { id: id.as_str().to_string() });
        }
        reg.insert(id.as_str().to_string(), MechEntry { mech: Arc::new(mech), fingerprint });
        Ok(())
    }

    /// Synthesize and register a mechanism from a synth spec (through the
    /// text round-trip, like the built-ins). The id is the spec's name.
    pub fn register_synth(&self, cfg: &SynthConfig) -> ServeResult<MechanismId> {
        let id: MechanismId = cfg.name.parse()?;
        self.register_mechanism(id.clone(), chemkin::synth::via_text(cfg))?;
        Ok(id)
    }

    /// The registered mechanism ids, sorted.
    pub fn mechanisms(&self) -> Vec<String> {
        self.inner.registry.lock().unwrap().keys().cloned().collect()
    }

    // -- requests ----------------------------------------------------------

    /// Compile (or fetch) synchronously: submit through the scheduler and
    /// wait. Fairness and backpressure apply — under load this can return
    /// [`ServeError::Overloaded`] without queueing.
    pub fn compile(&self, req: &CompileRequest) -> ServeResult<ArtifactHandle> {
        self.submit(req)?.wait()
    }

    /// Submit a compile and return a [`Ticket`] to wait on — the async
    /// form used by sweeps that queue many requests before collecting.
    pub fn submit(&self, req: &CompileRequest) -> ServeResult<Ticket<ArtifactHandle>> {
        let inner = Arc::clone(&self.inner);
        let req = req.clone();
        let tenant = req.tenant.clone();
        self.sched.submit(&tenant, move || compile_now(&inner, &req))
    }

    /// Run the deterministic probe launch for the request's kernel and
    /// return its event counts. Memoized per artifact key — repeated
    /// predictions re-use both the artifact and the probe.
    pub fn probe(&self, req: &CompileRequest) -> ServeResult<EventCounts> {
        let handle = self.compile(req)?;
        if let Some(hit) = self.inner.probes.lock().unwrap().get(&handle.key) {
            return Ok(hit.clone());
        }
        let kernel = &handle.artifact.kernel;
        let n_species = self.n_species_of(&req.mechanism)?;
        let probe = kernel.points_per_cta;
        let g = GridState::random(GridDims { nx: probe, ny: 1, nz: 1 }, n_species, 1234);
        let arrays = launch_arrays(&kernel.global_arrays, &g)
            .map_err(|e| ServeError::Launch(e.to_string()))?;
        let out = launch(kernel, &req.arch.arch(), &LaunchInputs { arrays }, probe, LaunchMode::Full)
            .map_err(|e| ServeError::Launch(e.to_string()))?;
        let counts = out.report.counts;
        self.inner.probes.lock().unwrap().insert(handle.key, counts.clone());
        Ok(counts)
    }

    /// Predict the request's kernel performance at `grid_points` points:
    /// probe one CTA (cached), extrapolate with the timing model.
    pub fn predict(&self, req: &CompileRequest, grid_points: usize) -> ServeResult<SimReport> {
        let handle = self.compile(req)?;
        let counts = self.probe(req)?;
        Ok(estimate(&handle.artifact.kernel, &req.arch.arch(), &counts, grid_points))
    }

    /// Autotune across `candidates`: compile each (through the cache and
    /// scheduler — shared candidates across sessions hit warm), predict
    /// each at `grid_points`, return `(best index, predicted seconds per
    /// candidate)`. Candidates that fail to compile predict as infinity.
    pub fn autotune(
        &self,
        req: &CompileRequest,
        candidates: &[CompileOptions],
        grid_points: usize,
    ) -> ServeResult<(usize, Vec<f64>)> {
        if candidates.is_empty() {
            return Err(ServeError::Internal("autotune with no candidates".into()));
        }
        // Queue all compiles first so the farm works them concurrently...
        let tickets: Vec<_> = candidates
            .iter()
            .map(|opts| self.submit(&req.clone().with_options(opts.clone())))
            .collect();
        // ...then collect and predict.
        let mut seconds = Vec::with_capacity(candidates.len());
        for (ticket, opts) in tickets.into_iter().zip(candidates) {
            let creq = req.clone().with_options(opts.clone());
            let s = match ticket.and_then(|t| t.wait()) {
                Ok(_) => self.predict(&creq, grid_points)?.seconds,
                Err(ServeError::Compile(_)) => f64::INFINITY,
                Err(e) => return Err(e),
            };
            seconds.push(s);
        }
        let best = seconds
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("non-empty");
        if seconds[best].is_infinite() {
            return Err(ServeError::Internal("no autotune candidate compiled".into()));
        }
        Ok((best, seconds))
    }

    /// Model-driven schedule search ([`singe::search`]) under a
    /// [`SearchBudget`], instead of a caller-supplied candidate list:
    /// beam-search the full options space seeded at the request's
    /// options (or the per-kernel defaults), scoring every candidate
    /// with the static model over *cached* artifacts — compiles ride
    /// the scheduler and artifact store exactly like
    /// [`ServeSession::autotune`], so repeated searches and overlapping
    /// beams hit warm — and simulating only the top-K survivors through
    /// the memoized probe ([`ServeSession::predict`]), which reuses the
    /// artifact cache for the oracle too. Candidates that fail to
    /// compile score infinity, as in [`ServeSession::autotune`];
    /// service-level errors (overload, shutdown) abort the search.
    ///
    /// Returns the winning options plus the full audit trail.
    pub fn autotune_search(
        &self,
        req: &CompileRequest,
        budget: &SearchBudget,
        grid_points: usize,
    ) -> ServeResult<(CompileOptions, SearchOutcome)> {
        let n_species = self.n_species_of(&req.mechanism)?;
        let arch = req.arch.arch();
        let base = match &req.options {
            Some(opts) => opts.clone(),
            None => default_options(req.kernel, n_species, &arch),
        };
        let space = singe::search::SearchSpace::for_arch(&arch);
        // Service-level failures inside the scoring closures surface
        // here after the search returns.
        let service_err: Mutex<Option<ServeError>> = Mutex::new(None);
        let mut score = |cands: &[CompileOptions]| -> Vec<f64> {
            // Queue the whole batch first so the farm works it
            // concurrently, then collect and predict in input order.
            let tickets: Vec<_> = cands
                .iter()
                .map(|opts| self.submit(&req.clone().with_options(opts.clone())))
                .collect();
            tickets
                .into_iter()
                .map(|t| match t.and_then(|t| t.wait()) {
                    Ok(handle) => {
                        let ppc = handle.artifact.kernel.points_per_cta;
                        let grid = grid_points.div_ceil(ppc) * ppc;
                        singe::perfmodel::predict_seconds(&handle.artifact.kernel, &arch, grid)
                            .unwrap_or(f64::INFINITY)
                    }
                    Err(ServeError::Compile(_)) => f64::INFINITY,
                    Err(e) => {
                        service_err.lock().unwrap().get_or_insert(e);
                        f64::INFINITY
                    }
                })
                .collect()
        };
        let mut simulate = |cands: &[CompileOptions]| -> Vec<Result<f64, String>> {
            cands
                .iter()
                .map(|opts| {
                    let creq = req.clone().with_options(opts.clone());
                    self.predict(&creq, grid_points)
                        .map(|r| r.seconds)
                        .map_err(|e| e.to_string())
                })
                .collect()
        };
        let outcome = singe::search::run_search(
            &singe::search::BeamSearch,
            &space,
            &base,
            budget,
            &mut score,
            &mut simulate,
        )
        .map_err(|e| ServeError::Internal(format!("schedule search: {e}")))?;
        if let Some(e) = service_err.into_inner().unwrap() {
            return Err(e);
        }
        Ok((outcome.best_options.clone(), outcome))
    }

    fn n_species_of(&self, id: &MechanismId) -> ServeResult<usize> {
        let reg = self.inner.registry.lock().unwrap();
        match reg.get(id.as_str()) {
            Some(e) => Ok(e.mech.n_transported()),
            None => Err(ServeError::UnknownMechanism {
                requested: id.as_str().to_string(),
                known: reg.keys().cloned().collect(),
            }),
        }
    }
}

/// Content fingerprint of a mechanism (the same Debug-form hash the bench
/// memo uses — any field change reflows into the artifact keyspace).
fn mech_fingerprint(mech: &Mechanism) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    format!("{mech:?}").hash(&mut h);
    h.finish()
}

fn resolve_build(
    req: &CompileRequest,
    n_species: usize,
    arch: &GpuArch,
) -> (CompileOptions, usize) {
    match &req.options {
        Some(opts) => (opts.clone(), req.dfg_warps.unwrap_or(opts.warps)),
        None => {
            let ws = default_options(req.kernel, n_species, arch);
            match req.variant {
                // The historical baseline convention: dfg at the
                // warp-specialized warp count, compiled at 8 warps.
                Variant::Baseline => {
                    (CompileOptions::with_warps(8), req.dfg_warps.unwrap_or(ws.warps))
                }
                Variant::WarpSpecialized | Variant::Naive => {
                    let warps = req.dfg_warps.unwrap_or(ws.warps);
                    (ws, warps)
                }
            }
        }
    }
}

/// The synchronous core: key derivation, in-flight claim/join, disk
/// lookup, cold compile. Runs on a scheduler worker.
fn compile_now(inner: &SessionInner, req: &CompileRequest) -> ServeResult<ArtifactHandle> {
    let (mech, fingerprint) = {
        let reg = inner.registry.lock().unwrap();
        match reg.get(req.mechanism.as_str()) {
            Some(e) => (Arc::clone(&e.mech), e.fingerprint),
            None => {
                return Err(ServeError::UnknownMechanism {
                    requested: req.mechanism.as_str().to_string(),
                    known: reg.keys().cloned().collect(),
                })
            }
        }
    };
    let arch = req.arch.arch();
    let n_species = mech.n_transported();
    let (opts, dfg_warps) = resolve_build(req, n_species, &arch);
    let key = ArtifactKey::derive(
        fingerprint,
        req.kernel.name(),
        req.variant.name(),
        arch.name,
        dfg_warps,
        &format!("{opts:?}"),
    );

    // Claim or join the in-flight slot. `get_or_init` runs the work for
    // exactly one caller and blocks the rest until it resolves; the slot
    // is removed once resolved, so it dedups *concurrency*, not history —
    // later identical requests go to disk (and count as warm hits).
    let slot: InflightSlot = {
        let mut map = inner.inflight.lock().unwrap();
        Arc::clone(map.entry(key).or_default())
    };
    let mut owner = false;
    let result = slot
        .get_or_init(|| {
            owner = true;
            serve_one(inner, &mech, req, &arch, &opts, dfg_warps, &key)
                .map(|(a, src)| (Arc::new(a), src))
        })
        .clone();
    if owner {
        inner.inflight.lock().unwrap().remove(&key);
    } else {
        inner.counters.add(&inner.counters.inflight_joins, 1);
    }
    result.map(|(artifact, source)| ArtifactHandle {
        artifact,
        source: if owner { source } else { ArtifactSource::InflightJoin },
        key,
    })
}

/// Disk lookup then cold compile — the single-owner path.
fn serve_one(
    inner: &SessionInner,
    mech: &Mechanism,
    req: &CompileRequest,
    arch: &GpuArch,
    opts: &CompileOptions,
    dfg_warps: usize,
    key: &ArtifactKey,
) -> Result<(Artifact, ArtifactSource), ServeError> {
    let c = &inner.counters;
    let t0 = Instant::now();
    let mut corrupt = false;
    if let Some(artifact) = inner.store.load(key, &mut corrupt) {
        c.add(&c.warm_hits, 1);
        c.add(&c.warm_nanos, t0.elapsed().as_nanos() as u64);
        return Ok((artifact, ArtifactSource::WarmDisk));
    }
    if corrupt {
        c.add(&c.corrupt_reloads, 1);
    }

    let t0 = Instant::now();
    let dfg = match req.kernel {
        KernelId::Viscosity => viscosity::viscosity_dfg(&ViscosityTables::build(mech), dfg_warps),
        KernelId::Diffusion => diffusion::diffusion_dfg(&DiffusionTables::build(mech), dfg_warps),
        KernelId::Chemistry => chemistry::chemistry_dfg(&ChemistrySpec::build(mech), dfg_warps),
    };
    let compiled = Compiler::new(arch).options(opts.clone()).compile(&dfg, req.variant)?;
    // Record the verdict exactly when compile-time verification ran
    // (mirrors `verify::enforce`); re-running `verify_kernel` here is a
    // memo hit, not a second dynamic pass.
    let verification_ran = match opts.verify {
        VerifyLevel::Off => false,
        VerifyLevel::Basic => !opts.unsafe_remove_barriers,
        VerifyLevel::Strict => true,
    };
    let verdict = if verification_ran {
        match singe::verify::verify_kernel(&compiled.kernel, arch) {
            Ok(r) => VerifyVerdict {
                verified: true,
                warps: r.warps,
                barrier_ops: r.barrier_ops,
                shared_accesses: r.shared_accesses,
                barrier_ids: r.barrier_ids,
                generations: r.generations,
            },
            // compile() already enforced; a failure here would be an
            // enforce/verdict skew — record it as unverified rather than
            // failing a compile that succeeded.
            Err(_) => VerifyVerdict::default(),
        }
    } else {
        VerifyVerdict::default()
    };
    let compile_nanos = t0.elapsed().as_nanos() as u64;
    // Baseline builds keep the historical `None` stats so report code
    // doesn't mistake them for warp-specialization statistics.
    let stats = match req.variant {
        Variant::Baseline => None,
        Variant::WarpSpecialized | Variant::Naive => Some(compiled.stats),
    };
    let artifact = Artifact {
        kernel: compiled.kernel,
        stats,
        verdict,
        meta: ArtifactMeta {
            mechanism: req.mechanism.as_str().to_string(),
            kernel: req.kernel.name().to_string(),
            variant: req.variant.name().to_string(),
            arch: arch.name.to_string(),
            dfg_warps,
            options: format!("{opts:?}"),
            compile_nanos,
            lowering_version: gpu_sim::LOWERING_VERSION,
        },
    };
    c.add(&c.cold_compiles, 1);
    c.add(&c.cold_nanos, t0.elapsed().as_nanos() as u64);
    if inner.store.save(key, &artifact).is_err() {
        c.add(&c.save_errors, 1);
    }
    Ok((artifact, ArtifactSource::ColdCompile))
}
