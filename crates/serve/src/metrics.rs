//! Service counters: lock-free, sampled into a [`ServeStats`] snapshot.
//!
//! Counters feed the `report serve-bench` subcommand's JSON (cold/warm
//! latency, hit rate) and the durability tests (exactly-one-compile under
//! concurrent identical requests is asserted via `cold_compiles`).

use std::sync::atomic::{AtomicU64, Ordering};

/// Internal counter block shared by the session and its workers.
#[derive(Debug, Default)]
pub(crate) struct Counters {
    /// Requests that ran the compiler (disk miss, first in-flight owner).
    pub cold_compiles: AtomicU64,
    /// Requests answered from the on-disk artifact cache.
    pub warm_hits: AtomicU64,
    /// Requests that joined an identical compile already in flight.
    pub inflight_joins: AtomicU64,
    /// Warm loads that found a corrupt/stale file and fell back cold.
    pub corrupt_reloads: AtomicU64,
    /// Artifact persists that failed (advisory; the compile still
    /// succeeded).
    pub save_errors: AtomicU64,
    /// Submissions rejected by backpressure.
    pub rejected: AtomicU64,
    /// Total nanoseconds spent in cold compiles.
    pub cold_nanos: AtomicU64,
    /// Total nanoseconds spent in warm loads.
    pub warm_nanos: AtomicU64,
}

impl Counters {
    pub(crate) fn add(&self, c: &AtomicU64, v: u64) {
        c.fetch_add(v, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> ServeStats {
        ServeStats {
            cold_compiles: self.cold_compiles.load(Ordering::Relaxed),
            warm_hits: self.warm_hits.load(Ordering::Relaxed),
            inflight_joins: self.inflight_joins.load(Ordering::Relaxed),
            corrupt_reloads: self.corrupt_reloads.load(Ordering::Relaxed),
            save_errors: self.save_errors.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            cold_nanos: self.cold_nanos.load(Ordering::Relaxed),
            warm_nanos: self.warm_nanos.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time snapshot of the session's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub struct ServeStats {
    /// Requests that ran the compiler.
    pub cold_compiles: u64,
    /// Requests answered from disk.
    pub warm_hits: u64,
    /// Requests that joined an in-flight identical compile.
    pub inflight_joins: u64,
    /// Corrupt/stale artifacts that fell back to a recompile.
    pub corrupt_reloads: u64,
    /// Failed artifact persists (advisory).
    pub save_errors: u64,
    /// Submissions rejected by backpressure.
    pub rejected: u64,
    /// Total nanoseconds in cold compiles.
    pub cold_nanos: u64,
    /// Total nanoseconds in warm loads.
    pub warm_nanos: u64,
}

impl ServeStats {
    /// Requests served without running the compiler, as a fraction of all
    /// served requests. `None` before any request completes.
    pub fn hit_rate(&self) -> Option<f64> {
        let served = self.cold_compiles + self.warm_hits + self.inflight_joins;
        if served == 0 {
            return None;
        }
        Some((self.warm_hits + self.inflight_joins) as f64 / served as f64)
    }

    /// Mean cold-compile latency in nanoseconds, if any cold compile ran.
    pub fn mean_cold_nanos(&self) -> Option<f64> {
        (self.cold_compiles > 0).then(|| self.cold_nanos as f64 / self.cold_compiles as f64)
    }

    /// Mean warm-load latency in nanoseconds, if any warm hit happened.
    pub fn mean_warm_nanos(&self) -> Option<f64> {
        (self.warm_hits > 0).then(|| self.warm_nanos as f64 / self.warm_hits as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_math() {
        let mut s = ServeStats::default();
        assert_eq!(s.hit_rate(), None);
        s.cold_compiles = 1;
        s.warm_hits = 3;
        assert_eq!(s.hit_rate(), Some(0.75));
        s.inflight_joins = 4;
        assert_eq!(s.hit_rate(), Some(7.0 / 8.0));
    }

    #[test]
    fn counters_snapshot() {
        let c = Counters::default();
        c.add(&c.cold_compiles, 2);
        c.add(&c.cold_nanos, 1000);
        c.add(&c.warm_hits, 1);
        c.add(&c.warm_nanos, 10);
        let s = c.snapshot();
        assert_eq!(s.cold_compiles, 2);
        assert_eq!(s.mean_cold_nanos(), Some(500.0));
        assert_eq!(s.mean_warm_nanos(), Some(10.0));
    }
}
