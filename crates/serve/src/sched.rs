//! Sharded job scheduler with per-tenant FIFO fairness and bounded-queue
//! backpressure.
//!
//! ## Shape
//!
//! Tenants hash to **shards**; each shard is an independently locked set
//! of per-tenant FIFO queues plus a round-robin order over tenants that
//! currently have work. Worker threads have a home shard (spreading
//! notify traffic) and steal from the other shards when home is dry, so
//! one chatty tenant can't strand idle workers.
//!
//! ## Fairness
//!
//! Within a shard, dispatch round-robins across tenants: a tenant that
//! queued 50 compiles ahead of a tenant that queued one delays that one
//! job by at most a single compile, not fifty. Within a tenant, jobs run
//! in submission order (FIFO).
//!
//! ## Backpressure
//!
//! The queue is bounded by `queue_depth` across all shards. A submission
//! beyond the high-water mark is rejected with
//! [`ServeError::Overloaded`], carrying a `retry_after` estimated from
//! the current backlog and an exponential moving average of recent job
//! service times — the client-visible contract is "come back in about
//! this long", not "spin".

use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::error::{ServeError, ServeResult};

type Job = Box<dyn FnOnce() + Send + 'static>;

#[derive(Default)]
struct Shard {
    /// FIFO queue per tenant.
    queues: HashMap<String, VecDeque<Job>>,
    /// Round-robin order over tenants that currently have queued work.
    order: VecDeque<String>,
}

impl Shard {
    fn push(&mut self, tenant: &str, job: Job) {
        let q = self.queues.entry(tenant.to_string()).or_default();
        if q.is_empty() {
            self.order.push_back(tenant.to_string());
        }
        q.push_back(job);
    }

    fn pop(&mut self) -> Option<Job> {
        let tenant = self.order.pop_front()?;
        let q = self.queues.get_mut(&tenant).expect("ordered tenant has a queue");
        let job = q.pop_front().expect("ordered tenant queue is non-empty");
        if q.is_empty() {
            self.queues.remove(&tenant);
        } else {
            // The tenant rejoins at the back: next dispatch goes to the
            // next tenant in line.
            self.order.push_back(tenant);
        }
        Some(job)
    }
}

struct SchedShared {
    shards: Vec<(Mutex<Shard>, Condvar)>,
    queued: AtomicUsize,
    queue_depth: usize,
    workers: usize,
    shutdown: AtomicBool,
    /// EMA of job service time in nanoseconds (relaxed blend; an estimate
    /// feeding `retry_after`, not an accounting value).
    ema_job_nanos: AtomicU64,
}

impl SchedShared {
    fn shard_of(&self, tenant: &str) -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        tenant.hash(&mut h);
        (h.finish() as usize) % self.shards.len()
    }

    fn observe_job_nanos(&self, nanos: u64) {
        let old = self.ema_job_nanos.load(Ordering::Relaxed);
        let new = if old == 0 { nanos } else { old - old / 8 + nanos / 8 };
        self.ema_job_nanos.store(new, Ordering::Relaxed);
    }

    fn retry_after(&self, queued: usize) -> Duration {
        let ema = self.ema_job_nanos.load(Ordering::Relaxed).max(1_000_000); // floor: 1ms
        let rounds = (queued / self.workers.max(1)) as u64 + 1;
        Duration::from_nanos((ema.saturating_mul(rounds)).min(5_000_000_000)) // cap: 5s
    }
}

/// Handle to a submitted job's eventual result.
#[derive(Debug)]
pub struct Ticket<T> {
    slot: Arc<(Mutex<Option<ServeResult<T>>>, Condvar)>,
}

impl<T> Ticket<T> {
    fn new() -> Ticket<T> {
        Ticket { slot: Arc::new((Mutex::new(None), Condvar::new())) }
    }

    /// Block until the job completes and take its result.
    pub fn wait(self) -> ServeResult<T> {
        let (lock, cv) = &*self.slot;
        let mut guard = lock.lock().unwrap();
        loop {
            if let Some(r) = guard.take() {
                return r;
            }
            guard = cv.wait(guard).unwrap();
        }
    }
}

/// The scheduler: owns the worker threads; dropping it drains nothing —
/// it stops accepting work, wakes the workers, and joins them (queued
/// jobs that never ran resolve their tickets with
/// [`ServeError::ShuttingDown`]).
pub struct Scheduler {
    shared: Arc<SchedShared>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("shards", &self.shared.shards.len())
            .field("workers", &self.shared.workers)
            .field("queue_depth", &self.shared.queue_depth)
            .field("queued", &self.shared.queued.load(Ordering::Relaxed))
            .finish()
    }
}

impl Scheduler {
    /// Spawn `workers` threads over `shards` shards with a global queue
    /// bound of `queue_depth`. All three are clamped to at least 1.
    pub fn new(shards: usize, workers: usize, queue_depth: usize) -> Scheduler {
        let shards = shards.max(1);
        let workers = workers.max(1);
        let shared = Arc::new(SchedShared {
            shards: (0..shards).map(|_| (Mutex::new(Shard::default()), Condvar::new())).collect(),
            queued: AtomicUsize::new(0),
            queue_depth: queue_depth.max(1),
            workers,
            shutdown: AtomicBool::new(false),
            ema_job_nanos: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared, i % shared.shards.len()))
                    .expect("spawn serve worker")
            })
            .collect();
        Scheduler { shared, handles }
    }

    /// Jobs currently queued (not yet picked up by a worker).
    pub fn queued(&self) -> usize {
        self.shared.queued.load(Ordering::Relaxed)
    }

    /// The queue bound.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue_depth
    }

    /// Submit `f` on behalf of `tenant`. Returns a [`Ticket`] to wait on,
    /// or [`ServeError::Overloaded`] / [`ServeError::ShuttingDown`]
    /// without queuing anything.
    pub fn submit<T, F>(&self, tenant: &str, f: F) -> ServeResult<Ticket<T>>
    where
        T: Send + 'static,
        F: FnOnce() -> ServeResult<T> + Send + 'static,
    {
        if self.shared.shutdown.load(Ordering::Acquire) {
            return Err(ServeError::ShuttingDown);
        }
        let queued = self.shared.queued.fetch_add(1, Ordering::AcqRel) + 1;
        if queued > self.shared.queue_depth {
            self.shared.queued.fetch_sub(1, Ordering::AcqRel);
            return Err(ServeError::Overloaded {
                retry_after: self.shared.retry_after(queued),
                queued: queued - 1,
                capacity: self.shared.queue_depth,
            });
        }

        let ticket = Ticket::new();
        let slot = Arc::clone(&ticket.slot);
        let shared = Arc::clone(&self.shared);
        let job: Job = Box::new(move || {
            // Jobs drained during shutdown resolve their tickets without
            // running user work.
            if shared.shutdown.load(Ordering::Acquire) {
                let (lock, cv) = &*slot;
                *lock.lock().unwrap() = Some(Err(ServeError::ShuttingDown));
                cv.notify_all();
                return;
            }
            let start = Instant::now();
            // A panicking compile must not kill the worker or hang the
            // waiter; it resolves the ticket with an internal error.
            let result = catch_unwind(AssertUnwindSafe(f))
                .unwrap_or_else(|_| Err(ServeError::Internal("job panicked".into())));
            shared.observe_job_nanos(start.elapsed().as_nanos() as u64);
            let (lock, cv) = &*slot;
            *lock.lock().unwrap() = Some(result);
            cv.notify_all();
        });

        let si = self.shared.shard_of(tenant);
        let (lock, cv) = &self.shared.shards[si];
        lock.lock().unwrap().push(tenant, job);
        cv.notify_one();
        Ok(ticket)
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        for (_, cv) in &self.shared.shards {
            cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        // Drain jobs that never ran. With the shutdown flag set, each job
        // wrapper resolves its ticket to ShuttingDown without executing
        // user work — no waiter is ever left hanging on an abandoned job.
        for (lock, _) in &self.shared.shards {
            let mut shard = lock.lock().unwrap();
            while let Some(job) = shard.pop() {
                job();
                self.shared.queued.fetch_sub(1, Ordering::AcqRel);
            }
        }
    }
}

fn worker_loop(shared: &SchedShared, home: usize) {
    let n = shared.shards.len();
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        // Home shard first, then steal round the ring.
        let mut job = None;
        for off in 0..n {
            let (lock, _) = &shared.shards[(home + off) % n];
            if let Some(j) = lock.lock().unwrap().pop() {
                job = Some(j);
                break;
            }
        }
        match job {
            Some(j) => {
                shared.queued.fetch_sub(1, Ordering::AcqRel);
                j();
            }
            None => {
                // Nothing anywhere: sleep on the home condvar with a short
                // timeout so steals and shutdown are picked up promptly.
                let (lock, cv) = &shared.shards[home];
                let guard = lock.lock().unwrap();
                let _ = cv.wait_timeout(guard, Duration::from_millis(2)).unwrap();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_jobs_and_returns_results() {
        let s = Scheduler::new(2, 2, 64);
        let tickets: Vec<_> =
            (0..16).map(|i| s.submit("t", move || Ok(i * i)).unwrap()).collect();
        let mut out: Vec<i32> = tickets.into_iter().map(|t| t.wait().unwrap()).collect();
        out.sort_unstable();
        assert_eq!(out, (0..16).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn per_tenant_round_robin_interleaves() {
        // One worker, one shard: dispatch order is fully deterministic
        // once submission has finished. Tenant A floods 8 jobs, then B
        // submits one; B's job must run second, not ninth.
        let s = Scheduler::new(1, 1, 64);
        let ran = Arc::new(Mutex::new(Vec::new()));
        // Park the worker on a gate job so the queue builds up behind it.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g2 = Arc::clone(&gate);
        let _gate_ticket = s
            .submit("gate", move || {
                let (l, cv) = &*g2;
                let mut open = l.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
                Ok(())
            })
            .unwrap();
        let mut tickets = Vec::new();
        for i in 0..8 {
            let ran = Arc::clone(&ran);
            tickets.push(
                s.submit("a", move || {
                    ran.lock().unwrap().push(format!("a{i}"));
                    Ok(())
                })
                .unwrap(),
            );
        }
        let ran_b = Arc::clone(&ran);
        tickets.push(
            s.submit("b", move || {
                ran_b.lock().unwrap().push("b0".to_string());
                Ok(())
            })
            .unwrap(),
        );
        // Open the gate and wait for everything.
        {
            let (l, cv) = &*gate;
            *l.lock().unwrap() = true;
            cv.notify_all();
        }
        for t in tickets {
            t.wait().unwrap();
        }
        let order = ran.lock().unwrap().clone();
        assert_eq!(order.len(), 9);
        let b_pos = order.iter().position(|s| s == "b0").unwrap();
        assert!(b_pos <= 1, "tenant b starved: ran at position {b_pos} in {order:?}");
        // Within tenant a, submission order is preserved.
        let a_only: Vec<_> = order.iter().filter(|s| s.starts_with('a')).collect();
        let mut sorted = a_only.clone();
        sorted.sort();
        assert_eq!(a_only, sorted, "intra-tenant FIFO violated: {order:?}");
    }

    #[test]
    fn backpressure_rejects_beyond_high_water() {
        let s = Scheduler::new(1, 1, 2);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g2 = Arc::clone(&gate);
        let t0 = s
            .submit("t", move || {
                let (l, cv) = &*g2;
                let mut open = l.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
                Ok(())
            })
            .unwrap();
        // Wait until the worker has actually picked up the gate job so
        // the two capacity slots are genuinely free.
        while s.queued() > 0 {
            std::thread::yield_now();
        }
        let t1 = s.submit("t", || Ok(())).unwrap();
        let t2 = s.submit("t", || Ok(())).unwrap();
        let e = s.submit("t", || Ok(())).unwrap_err();
        match e {
            ServeError::Overloaded { retry_after, queued, capacity } => {
                assert_eq!(capacity, 2);
                assert_eq!(queued, 2);
                assert!(retry_after > Duration::ZERO);
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        {
            let (l, cv) = &*gate;
            *l.lock().unwrap() = true;
            cv.notify_all();
        }
        t0.wait().unwrap();
        t1.wait().unwrap();
        t2.wait().unwrap();
    }

    #[test]
    fn panicking_job_resolves_its_ticket() {
        let s = Scheduler::new(1, 1, 8);
        let t = s.submit::<(), _>("t", || panic!("boom")).unwrap();
        match t.wait() {
            Err(ServeError::Internal(m)) => assert!(m.contains("panicked")),
            other => panic!("expected Internal, got {other:?}"),
        }
        // The worker survived the panic and still runs jobs.
        assert_eq!(s.submit("t", || Ok(7)).unwrap().wait().unwrap(), 7);
    }
}
