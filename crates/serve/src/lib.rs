//! # singe-serve: the compile-farm service layer
//!
//! Wraps the `singe` compiler as a **persistent, concurrent service**:
//! the compiler answers one `compile()` call; this crate answers a farm's
//! worth of them, across processes and across restarts.
//!
//! Three layers (see each module's docs for the full design):
//!
//! 1. **Session API** ([`session`]) — [`ServeSession::open`] owns a
//!    mechanism registry and a typed request surface:
//!    [`CompileRequest`] `->` [`ArtifactHandle`], plus `probe` /
//!    `predict` / `autotune` built on the same cached artifacts.
//! 2. **Persistent artifact cache** ([`artifact`]) — versioned,
//!    content-addressed compiled-kernel artifacts on disk. Corrupt or
//!    stale entries are recompiled, never surfaced as errors;
//!    `gpu_sim::LOWERING_VERSION` participates in both the key and the
//!    container header, so a cache can never replay a stale lowering.
//! 3. **Sharded job scheduler** ([`sched`]) — per-tenant FIFO fairness,
//!    work stealing, bounded queue with retry-after backpressure.
//!
//! Identical concurrent requests coalesce onto one compile (in-flight
//! dedup); every waiter shares the result.
//!
//! ```no_run
//! use singe_serve::{ArchId, CompileRequest, KernelId, ServeSession};
//! use singe::Variant;
//!
//! let session = ServeSession::open(std::path::Path::new(".singe-cache"))?;
//! let req = CompileRequest::new(
//!     "dme".parse()?,
//!     KernelId::Viscosity,
//!     Variant::WarpSpecialized,
//!     ArchId::Kepler,
//! );
//! let handle = session.compile(&req)?;          // cold the first time…
//! let again = session.compile(&req)?;           // …warm ever after
//! assert_eq!(handle.artifact.kernel.name, again.artifact.kernel.name);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod artifact;
pub mod error;
pub mod ids;
pub mod metrics;
pub mod sched;
pub mod session;
pub mod wire;

pub use artifact::{Artifact, ArtifactKey, ArtifactMeta, VerifyVerdict};
pub use error::{ServeError, ServeResult};
pub use ids::{ArchId, KernelId, MechanismId, UnknownIdError};
pub use metrics::ServeStats;
pub use sched::{Scheduler, Ticket};
pub use session::{
    default_options, viscosity_warps, ArtifactHandle, ArtifactSource, CompileRequest,
    ServeSession, ServeSessionBuilder,
};
pub use singe::search::{SearchBudget, SearchOutcome};
