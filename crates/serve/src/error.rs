//! The service error surface.
//!
//! [`ServeError`] is `#[non_exhaustive]` and `Clone` — clonability is
//! load-bearing: in-flight dedup hands the *same* compile result (success
//! or failure) to every joined waiter, so errors must be shareable. The
//! `Display` + `Error::source` chain follows the
//! `CompileError::Verification` pattern: a compile failure's source is the
//! full structured [`singe::CompileError`], whose own source is the
//! verifier's violation list.

use std::fmt;
use std::time::Duration;

use crate::ids::UnknownIdError;
use singe::CompileError;

/// Errors the serve layer can return.
///
/// `#[non_exhaustive]`: downstream matches need a wildcard arm so new
/// failure classes (e.g. future remote-backend errors) can be added
/// without a breaking change.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum ServeError {
    /// The underlying compiler rejected the request. Source-chains to the
    /// structured [`CompileError`] (and through it to any
    /// [`singe::VerifyFailure`]).
    Compile(CompileError),
    /// The request named a mechanism the session's registry does not
    /// know. Lists the registered ids, like the typed id-parse errors.
    UnknownMechanism {
        /// The id that failed to resolve.
        requested: String,
        /// Every registered mechanism id at lookup time.
        known: Vec<String>,
    },
    /// A mechanism id is already registered with different content.
    MechanismConflict {
        /// The contested id.
        id: String,
    },
    /// An id failed syntactic validation (see [`UnknownIdError`]).
    InvalidId(UnknownIdError),
    /// Filesystem trouble while opening the session or persisting an
    /// artifact. (A *corrupt or stale artifact* is never an error — the
    /// cache falls back to recompiling; this variant is for the session
    /// root being unusable.)
    Io {
        /// Path involved.
        path: String,
        /// Stringified `std::io::Error` (kept as text so the variant
        /// stays `Clone`).
        message: String,
    },
    /// The scheduler's bounded queue is beyond its high-water mark. The
    /// client should retry no sooner than `retry_after` — an estimate
    /// from the current backlog and recent per-job service time.
    Overloaded {
        /// Suggested backoff before retrying.
        retry_after: Duration,
        /// Jobs queued when the submission was rejected.
        queued: usize,
        /// The queue's capacity (the session's `queue_depth`).
        capacity: usize,
    },
    /// The session is shutting down; no further jobs are accepted.
    ShuttingDown,
    /// A probe launch failed in the simulator (message from
    /// [`gpu_sim::SimError`]).
    Launch(String),
    /// An invariant broke inside the service (e.g. a scheduled job
    /// panicked). Never expected in normal operation.
    Internal(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Compile(e) => write!(f, "compile failed: {e}"),
            ServeError::UnknownMechanism { requested, known } => write!(
                f,
                "unknown mechanism id '{requested}' (registered: {})",
                if known.is_empty() { "<none>".into() } else { known.join(", ") }
            ),
            ServeError::MechanismConflict { id } => {
                write!(f, "mechanism id '{id}' already registered with different content")
            }
            ServeError::InvalidId(e) => write!(f, "invalid id: {e}"),
            ServeError::Io { path, message } => write!(f, "io error at {path}: {message}"),
            ServeError::Overloaded { retry_after, queued, capacity } => write!(
                f,
                "server overloaded ({queued}/{capacity} jobs queued); retry after {:?}",
                retry_after
            ),
            ServeError::ShuttingDown => write!(f, "session is shutting down"),
            ServeError::Launch(m) => write!(f, "probe launch failed: {m}"),
            ServeError::Internal(m) => write!(f, "internal service error: {m}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Compile(e) => Some(e),
            ServeError::InvalidId(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CompileError> for ServeError {
    fn from(e: CompileError) -> ServeError {
        ServeError::Compile(e)
    }
}

impl From<UnknownIdError> for ServeError {
    fn from(e: UnknownIdError) -> ServeError {
        ServeError::InvalidId(e)
    }
}

/// Result alias for the serve layer.
pub type ServeResult<T> = Result<T, ServeError>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn compile_errors_source_chain() {
        let e = ServeError::Compile(CompileError::Internal("boom".into()));
        assert!(e.to_string().contains("boom"));
        let src = e.source().expect("compile errors chain to CompileError");
        assert!(src.to_string().contains("boom"));
    }

    #[test]
    fn unknown_mechanism_lists_known_ids() {
        let e = ServeError::UnknownMechanism {
            requested: "dm".into(),
            known: vec!["dme".into(), "heptane".into()],
        };
        let msg = e.to_string();
        assert!(msg.contains("'dm'") && msg.contains("dme") && msg.contains("heptane"), "{msg}");
    }

    #[test]
    fn overloaded_reports_backoff() {
        let e = ServeError::Overloaded {
            retry_after: Duration::from_millis(15),
            queued: 64,
            capacity: 64,
        };
        let msg = e.to_string();
        assert!(msg.contains("64/64") && msg.contains("retry"), "{msg}");
    }
}
