//! Typed identifiers for the request surface.
//!
//! Everything a [`crate::CompileRequest`] names used to be a bare string
//! somewhere in the bench harness: kernel kinds, mechanism names,
//! architecture names. Each now has a newtype with `FromStr` + `Display`,
//! and an unknown name parses into a typed error that *lists the valid
//! ids* — a CLI typo produces an actionable message instead of a panic or
//! a silently skipped sweep row.

use std::fmt;
use std::str::FromStr;

use gpu_sim::arch::GpuArch;

/// A name failed to parse as an id. Carries the id family, the rejected
/// input, and every valid spelling, so `Display` is self-explanatory at
/// the CLI boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct UnknownIdError {
    /// Which id family was being parsed ("kernel", "arch", "mechanism").
    pub family: &'static str,
    /// The rejected input.
    pub requested: String,
    /// Valid spellings (for registry-backed families: the registered ids
    /// at the time of the lookup).
    pub valid: Vec<String>,
}

impl UnknownIdError {
    pub(crate) fn new(family: &'static str, requested: &str, valid: &[&str]) -> UnknownIdError {
        UnknownIdError {
            family,
            requested: requested.to_string(),
            valid: valid.iter().map(|s| s.to_string()).collect(),
        }
    }
}

impl fmt::Display for UnknownIdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown {} id '{}' (valid: {})",
            self.family,
            self.requested,
            if self.valid.is_empty() { "<none registered>".into() } else { self.valid.join(", ") }
        )
    }
}

impl std::error::Error for UnknownIdError {}

/// Which of the paper's kernels to compile — the typed replacement for the
/// stringly `"viscosity" | "diffusion" | "chemistry"` selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelId {
    /// §3.2 viscosity.
    Viscosity,
    /// §3.3 diffusion.
    Diffusion,
    /// §3.4 chemistry.
    Chemistry,
}

impl KernelId {
    /// Every kernel id, in display order.
    pub const ALL: [KernelId; 3] = [KernelId::Viscosity, KernelId::Diffusion, KernelId::Chemistry];

    /// Stable display name (report tables, JSON, artifact metadata).
    pub fn name(self) -> &'static str {
        match self {
            KernelId::Viscosity => "viscosity",
            KernelId::Diffusion => "diffusion",
            KernelId::Chemistry => "chemistry",
        }
    }
}

impl fmt::Display for KernelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for KernelId {
    type Err = UnknownIdError;

    fn from_str(s: &str) -> Result<KernelId, UnknownIdError> {
        KernelId::ALL
            .into_iter()
            .find(|k| k.name() == s)
            .ok_or_else(|| UnknownIdError::new("kernel", s, &["viscosity", "diffusion", "chemistry"]))
    }
}

/// A simulated architecture by name. The session API keys artifacts by the
/// arch's display name; this enum is the CLI-facing spelling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArchId {
    /// Fermi-class (Tesla C2070).
    Fermi,
    /// Kepler-class (Tesla K20c).
    Kepler,
    /// Hopper-class (H100): async copy, a 64-entry named-barrier file,
    /// and the K-stage pipeline schedules that exploit both.
    Hopper,
}

impl ArchId {
    /// Every arch id, in display order.
    pub const ALL: [ArchId; 3] = [ArchId::Fermi, ArchId::Kepler, ArchId::Hopper];

    /// Short name used in CLIs and JSON.
    pub fn name(self) -> &'static str {
        match self {
            ArchId::Fermi => "fermi",
            ArchId::Kepler => "kepler",
            ArchId::Hopper => "hopper",
        }
    }

    /// The full simulated architecture description.
    pub fn arch(self) -> GpuArch {
        match self {
            ArchId::Fermi => GpuArch::fermi_c2070(),
            ArchId::Kepler => GpuArch::kepler_k20c(),
            ArchId::Hopper => GpuArch::hopper(),
        }
    }
}

impl fmt::Display for ArchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for ArchId {
    type Err = UnknownIdError;

    fn from_str(s: &str) -> Result<ArchId, UnknownIdError> {
        ArchId::ALL
            .into_iter()
            .find(|a| a.name() == s)
            .ok_or_else(|| UnknownIdError::new("arch", s, &["fermi", "kepler", "hopper"]))
    }
}

/// A registered mechanism's name: lowercase alphanumerics plus `-_.`,
/// non-empty, at most 64 bytes (it becomes part of artifact-file metadata
/// and log lines). Parsing validates the *syntax* only; whether the id is
/// registered is a session-level question answered by
/// [`crate::ServeError::UnknownMechanism`], which lists the registered
/// ids.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MechanismId(String);

impl MechanismId {
    /// The id as a string.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for MechanismId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl FromStr for MechanismId {
    type Err = UnknownIdError;

    fn from_str(s: &str) -> Result<MechanismId, UnknownIdError> {
        let ok = !s.is_empty()
            && s.len() <= 64
            && s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "-_.".contains(c));
        if ok {
            Ok(MechanismId(s.to_string()))
        } else {
            Err(UnknownIdError::new(
                "mechanism",
                s,
                &["<non-empty, <=64 bytes of [a-z0-9-_.]>"],
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_ids_roundtrip() {
        for k in KernelId::ALL {
            assert_eq!(k.name().parse::<KernelId>().unwrap(), k);
            assert_eq!(k.to_string(), k.name());
        }
    }

    #[test]
    fn unknown_kernel_lists_valid_ids() {
        let e = "viscoity".parse::<KernelId>().unwrap_err();
        assert_eq!(e.family, "kernel");
        let msg = e.to_string();
        assert!(msg.contains("viscoity"), "{msg}");
        for valid in ["viscosity", "diffusion", "chemistry"] {
            assert!(msg.contains(valid), "{msg}");
        }
    }

    #[test]
    fn arch_ids_roundtrip_and_resolve() {
        for a in ArchId::ALL {
            assert_eq!(a.name().parse::<ArchId>().unwrap(), a);
        }
        assert_eq!(ArchId::Kepler.arch().name, GpuArch::kepler_k20c().name);
        assert!("maxwell".parse::<ArchId>().unwrap_err().to_string().contains("kepler"));
    }

    #[test]
    fn mechanism_id_syntax() {
        assert!("dme".parse::<MechanismId>().is_ok());
        assert!("synth-8.2".parse::<MechanismId>().is_ok());
        assert!("".parse::<MechanismId>().is_err());
        assert!("DME".parse::<MechanismId>().is_err());
        assert!("a b".parse::<MechanismId>().is_err());
        let long = "x".repeat(65);
        assert!(long.parse::<MechanismId>().is_err());
    }
}
