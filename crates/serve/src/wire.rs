//! Binary wire format for on-disk compiled-kernel artifacts.
//!
//! The workspace is fully offline (no serde), so the format is hand-rolled
//! little-endian with explicit tags. Design rules:
//!
//! * **Exactness**: `f64` travels as its bit pattern, so a decoded kernel
//!   is bit-identical to the encoded one — the durability tests pin warm
//!   (disk) and cold (fresh compile) kernels to byte-identical simulation
//!   outputs and [`gpu_sim::EventCounts`].
//! * **Corruption tolerance**: every read is bounds-checked and every tag
//!   validated; any mismatch yields a [`WireError`], which the artifact
//!   store treats as a cache miss (recompile), never a service error.
//!   A whole-payload FNV-1a checksum in the container header catches
//!   bit-flips that still decode cleanly.
//! * **Versioning**: the container header carries
//!   [`crate::artifact::WIRE_FORMAT_VERSION`] and
//!   [`gpu_sim::LOWERING_VERSION`]; either mismatching the running binary
//!   is a miss. Instruction tags deliberately mirror the structural-hash
//!   tags in `gpu_sim::flatcache`, the repo's one identity scheme for
//!   kernel IR.

use gpu_sim::isa::*;
use singe::codegen::CompileStats;

/// Decode failure: the byte stream is truncated, mis-tagged, or otherwise
/// not a valid artifact of this format version. Deliberately carries only
/// a static description — decode failures are expected (stale/corrupt
/// cache entries) and handled by recompiling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireError(pub &'static str);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire decode failed: {}", self.0)
    }
}

impl std::error::Error for WireError {}

type WResult<T> = Result<T, WireError>;

/// FNV-1a 64-bit over a byte slice (the container checksum).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// Little-endian byte writer.
#[derive(Default)]
pub struct W {
    buf: Vec<u8>,
}

// Primitive put/get methods named after the type they move; documenting
// each would just restate the name.
#[allow(missing_docs)]
impl W {
    pub fn new() -> W {
        W::default()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Bounds-checked little-endian reader.
pub struct R<'a> {
    b: &'a [u8],
    pos: usize,
}

#[allow(missing_docs)]
impl<'a> R<'a> {
    pub fn new(b: &'a [u8]) -> R<'a> {
        R { b, pos: 0 }
    }

    /// True if every byte has been consumed (decoders require this so
    /// trailing garbage is a decode failure, not silently ignored data).
    pub fn exhausted(&self) -> bool {
        self.pos == self.b.len()
    }

    fn take(&mut self, n: usize) -> WResult<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or(WireError("length overflow"))?;
        if end > self.b.len() {
            return Err(WireError("truncated"));
        }
        let s = &self.b[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub fn u8(&mut self) -> WResult<u8> {
        Ok(self.take(1)?[0])
    }

    pub fn bool(&mut self) -> WResult<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError("bad bool")),
        }
    }

    pub fn u16(&mut self) -> WResult<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub fn u32(&mut self) -> WResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> WResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn usize(&mut self) -> WResult<usize> {
        usize::try_from(self.u64()?).map_err(|_| WireError("usize overflow"))
    }

    /// A usize that also cannot plausibly exceed the remaining payload
    /// (guards `Vec::with_capacity` against allocating from corrupt
    /// lengths before the per-element reads would fail).
    fn len(&mut self) -> WResult<usize> {
        let n = self.usize()?;
        if n > self.b.len().saturating_sub(self.pos) {
            return Err(WireError("length exceeds payload"));
        }
        Ok(n)
    }

    pub fn f64(&mut self) -> WResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub fn str(&mut self) -> WResult<String> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError("bad utf8"))
    }
}

// ---------------------------------------------------------------------------
// Kernel IR
// ---------------------------------------------------------------------------

fn enc_op(w: &mut W, o: &Op) {
    match o {
        Op::Reg(r) => {
            w.u8(0);
            w.u16(*r);
        }
        Op::Imm(v) => {
            w.u8(1);
            w.f64(*v);
        }
    }
}

fn dec_op(r: &mut R) -> WResult<Op> {
    Ok(match r.u8()? {
        0 => Op::Reg(r.u16()?),
        1 => Op::Imm(r.f64()?),
        _ => return Err(WireError("bad Op tag")),
    })
}

fn enc_iop(w: &mut W, o: &IdxOp) {
    match o {
        IdxOp::Imm(v) => {
            w.u8(0);
            w.u32(*v);
        }
        IdxOp::Reg(r) => {
            w.u8(1);
            w.u16(*r);
        }
    }
}

fn dec_iop(r: &mut R) -> WResult<IdxOp> {
    Ok(match r.u8()? {
        0 => IdxOp::Imm(r.u32()?),
        1 => IdxOp::Reg(r.u16()?),
        _ => return Err(WireError("bad IdxOp tag")),
    })
}

fn enc_gaddr(w: &mut W, a: &GAddr) {
    w.usize(a.array.0);
    enc_iop(w, &a.row);
    match &a.point {
        PointRef::Lane => w.u8(0),
        PointRef::Thread => w.u8(1),
        PointRef::Reg(r) => {
            w.u8(2);
            w.u16(*r);
        }
    }
}

fn dec_gaddr(r: &mut R) -> WResult<GAddr> {
    let array = GlobalId(r.usize()?);
    let row = dec_iop(r)?;
    let point = match r.u8()? {
        0 => PointRef::Lane,
        1 => PointRef::Thread,
        2 => PointRef::Reg(r.u16()?),
        _ => return Err(WireError("bad PointRef tag")),
    };
    Ok(GAddr { array, row, point })
}

fn enc_saddr(w: &mut W, a: &SAddr) {
    match a.base {
        None => w.u8(0),
        Some(r) => {
            w.u8(1);
            w.u16(r);
        }
    }
    w.u32(a.imm);
    w.u32(a.lane_stride);
}

fn dec_saddr(r: &mut R) -> WResult<SAddr> {
    let base = match r.u8()? {
        0 => None,
        1 => Some(r.u16()?),
        _ => return Err(WireError("bad SAddr tag")),
    };
    Ok(SAddr { base, imm: r.u32()?, lane_stride: r.u32()? })
}

fn enc_cmp(w: &mut W, c: &Cmp) {
    w.u8(match c {
        Cmp::Lt => 0,
        Cmp::Le => 1,
        Cmp::Gt => 2,
        Cmp::Ge => 3,
        Cmp::Eq => 4,
        Cmp::Ne => 5,
    });
}

fn dec_cmp(r: &mut R) -> WResult<Cmp> {
    Ok(match r.u8()? {
        0 => Cmp::Lt,
        1 => Cmp::Le,
        2 => Cmp::Gt,
        3 => Cmp::Ge,
        4 => Cmp::Eq,
        5 => Cmp::Ne,
        _ => return Err(WireError("bad Cmp tag")),
    })
}

/// Tags intentionally mirror `gpu_sim::flatcache::hash_instr`.
fn enc_instr(w: &mut W, i: &Instr) {
    match i {
        Instr::DMov { dst, src } => {
            w.u8(0);
            w.u16(*dst);
            enc_op(w, src);
        }
        Instr::DAdd { dst, a, b } => {
            w.u8(1);
            w.u16(*dst);
            enc_op(w, a);
            enc_op(w, b);
        }
        Instr::DSub { dst, a, b } => {
            w.u8(2);
            w.u16(*dst);
            enc_op(w, a);
            enc_op(w, b);
        }
        Instr::DMul { dst, a, b } => {
            w.u8(3);
            w.u16(*dst);
            enc_op(w, a);
            enc_op(w, b);
        }
        Instr::DFma { dst, a, b, c, const_c } => {
            w.u8(4);
            w.u16(*dst);
            enc_op(w, a);
            enc_op(w, b);
            enc_op(w, c);
            w.bool(*const_c);
        }
        Instr::DDiv { dst, a, b } => {
            w.u8(5);
            w.u16(*dst);
            enc_op(w, a);
            enc_op(w, b);
        }
        Instr::DSqrt { dst, a } => {
            w.u8(6);
            w.u16(*dst);
            enc_op(w, a);
        }
        Instr::DExp { dst, a } => {
            w.u8(7);
            w.u16(*dst);
            enc_op(w, a);
        }
        Instr::DLog { dst, a } => {
            w.u8(8);
            w.u16(*dst);
            enc_op(w, a);
        }
        Instr::DLog10 { dst, a } => {
            w.u8(9);
            w.u16(*dst);
            enc_op(w, a);
        }
        Instr::DCbrt { dst, a } => {
            w.u8(10);
            w.u16(*dst);
            enc_op(w, a);
        }
        Instr::DPow { dst, a, b } => {
            w.u8(11);
            w.u16(*dst);
            enc_op(w, a);
            enc_op(w, b);
        }
        Instr::DMax { dst, a, b } => {
            w.u8(12);
            w.u16(*dst);
            enc_op(w, a);
            enc_op(w, b);
        }
        Instr::DMin { dst, a, b } => {
            w.u8(13);
            w.u16(*dst);
            enc_op(w, a);
            enc_op(w, b);
        }
        Instr::DNeg { dst, a } => {
            w.u8(14);
            w.u16(*dst);
            enc_op(w, a);
        }
        Instr::DSel { dst, pred, a, b } => {
            w.u8(15);
            w.u16(*dst);
            w.u16(*pred);
            enc_op(w, a);
            enc_op(w, b);
        }
        Instr::DCmp { dst, cmp, a, b } => {
            w.u8(16);
            w.u16(*dst);
            enc_cmp(w, cmp);
            enc_op(w, a);
            enc_op(w, b);
        }
        Instr::LdGlobal { dst, addr, ldg } => {
            w.u8(17);
            w.u16(*dst);
            enc_gaddr(w, addr);
            w.bool(*ldg);
        }
        Instr::StGlobal { src, addr } => {
            w.u8(18);
            enc_op(w, src);
            enc_gaddr(w, addr);
        }
        Instr::LdShared { dst, addr } => {
            w.u8(19);
            w.u16(*dst);
            enc_saddr(w, addr);
        }
        Instr::StShared { src, addr, lane_pred } => {
            w.u8(20);
            enc_op(w, src);
            enc_saddr(w, addr);
            match lane_pred {
                None => w.u8(0),
                Some(p) => {
                    w.u8(1);
                    w.u8(*p);
                }
            }
        }
        Instr::LdConst { dst, bank, idx } => {
            w.u8(21);
            w.u16(*dst);
            w.u16(*bank);
            enc_iop(w, idx);
        }
        Instr::LdLocal { dst, slot } => {
            w.u8(22);
            w.u16(*dst);
            w.u32(*slot);
        }
        Instr::StLocal { src, slot } => {
            w.u8(23);
            enc_op(w, src);
            w.u32(*slot);
        }
        Instr::Shfl { dst, src, lane } => {
            w.u8(24);
            w.u16(*dst);
            w.u16(*src);
            w.u8(*lane);
        }
        Instr::Idx(ii) => {
            w.u8(25);
            match ii {
                IdxInstr::Mov { dst, src } => {
                    w.u8(0);
                    w.u16(*dst);
                    enc_iop(w, src);
                }
                IdxInstr::Add { dst, a, b } => {
                    w.u8(1);
                    w.u16(*dst);
                    enc_iop(w, a);
                    enc_iop(w, b);
                }
                IdxInstr::Mul { dst, a, b } => {
                    w.u8(2);
                    w.u16(*dst);
                    enc_iop(w, a);
                    enc_iop(w, b);
                }
                IdxInstr::LaneId { dst } => {
                    w.u8(3);
                    w.u16(*dst);
                }
                IdxInstr::WarpId { dst } => {
                    w.u8(4);
                    w.u16(*dst);
                }
                IdxInstr::LdConst { dst, bank, idx } => {
                    w.u8(5);
                    w.u16(*dst);
                    w.u16(*bank);
                    enc_iop(w, idx);
                }
                IdxInstr::Shfl { dst, src, lane } => {
                    w.u8(6);
                    w.u16(*dst);
                    w.u16(*src);
                    w.u8(*lane);
                }
                IdxInstr::PipeOff { dst, k, stride } => {
                    w.u8(7);
                    w.u16(*dst);
                    w.u8(*k);
                    w.u32(*stride);
                }
            }
        }
        Instr::BarArrive { bar, warps } => {
            w.u8(26);
            w.u8(*bar);
            w.u16(*warps);
        }
        Instr::BarSync { bar, warps } => {
            w.u8(27);
            w.u8(*bar);
            w.u16(*warps);
        }
        Instr::BarArriveStage { base, k, warps } => {
            w.u8(28);
            w.u8(*base);
            w.u8(*k);
            w.u16(*warps);
        }
        Instr::BarSyncStage { base, k, warps } => {
            w.u8(29);
            w.u8(*base);
            w.u8(*k);
            w.u16(*warps);
        }
        Instr::CpAsync { addr, array, row, point } => {
            w.u8(30);
            enc_saddr(w, addr);
            enc_gaddr(w, &GAddr { array: *array, row: *row, point: *point });
        }
    }
}

fn dec_instr(r: &mut R) -> WResult<Instr> {
    Ok(match r.u8()? {
        0 => Instr::DMov { dst: r.u16()?, src: dec_op(r)? },
        1 => Instr::DAdd { dst: r.u16()?, a: dec_op(r)?, b: dec_op(r)? },
        2 => Instr::DSub { dst: r.u16()?, a: dec_op(r)?, b: dec_op(r)? },
        3 => Instr::DMul { dst: r.u16()?, a: dec_op(r)?, b: dec_op(r)? },
        4 => Instr::DFma {
            dst: r.u16()?,
            a: dec_op(r)?,
            b: dec_op(r)?,
            c: dec_op(r)?,
            const_c: r.bool()?,
        },
        5 => Instr::DDiv { dst: r.u16()?, a: dec_op(r)?, b: dec_op(r)? },
        6 => Instr::DSqrt { dst: r.u16()?, a: dec_op(r)? },
        7 => Instr::DExp { dst: r.u16()?, a: dec_op(r)? },
        8 => Instr::DLog { dst: r.u16()?, a: dec_op(r)? },
        9 => Instr::DLog10 { dst: r.u16()?, a: dec_op(r)? },
        10 => Instr::DCbrt { dst: r.u16()?, a: dec_op(r)? },
        11 => Instr::DPow { dst: r.u16()?, a: dec_op(r)?, b: dec_op(r)? },
        12 => Instr::DMax { dst: r.u16()?, a: dec_op(r)?, b: dec_op(r)? },
        13 => Instr::DMin { dst: r.u16()?, a: dec_op(r)?, b: dec_op(r)? },
        14 => Instr::DNeg { dst: r.u16()?, a: dec_op(r)? },
        15 => Instr::DSel { dst: r.u16()?, pred: r.u16()?, a: dec_op(r)?, b: dec_op(r)? },
        16 => Instr::DCmp { dst: r.u16()?, cmp: dec_cmp(r)?, a: dec_op(r)?, b: dec_op(r)? },
        17 => Instr::LdGlobal { dst: r.u16()?, addr: dec_gaddr(r)?, ldg: r.bool()? },
        18 => Instr::StGlobal { src: dec_op(r)?, addr: dec_gaddr(r)? },
        19 => Instr::LdShared { dst: r.u16()?, addr: dec_saddr(r)? },
        20 => Instr::StShared {
            src: dec_op(r)?,
            addr: dec_saddr(r)?,
            lane_pred: match r.u8()? {
                0 => None,
                1 => Some(r.u8()?),
                _ => return Err(WireError("bad lane_pred tag")),
            },
        },
        21 => Instr::LdConst { dst: r.u16()?, bank: r.u16()?, idx: dec_iop(r)? },
        22 => Instr::LdLocal { dst: r.u16()?, slot: r.u32()? },
        23 => Instr::StLocal { src: dec_op(r)?, slot: r.u32()? },
        24 => Instr::Shfl { dst: r.u16()?, src: r.u16()?, lane: r.u8()? },
        25 => Instr::Idx(match r.u8()? {
            0 => IdxInstr::Mov { dst: r.u16()?, src: dec_iop(r)? },
            1 => IdxInstr::Add { dst: r.u16()?, a: dec_iop(r)?, b: dec_iop(r)? },
            2 => IdxInstr::Mul { dst: r.u16()?, a: dec_iop(r)?, b: dec_iop(r)? },
            3 => IdxInstr::LaneId { dst: r.u16()? },
            4 => IdxInstr::WarpId { dst: r.u16()? },
            5 => IdxInstr::LdConst { dst: r.u16()?, bank: r.u16()?, idx: dec_iop(r)? },
            6 => IdxInstr::Shfl { dst: r.u16()?, src: r.u16()?, lane: r.u8()? },
            7 => IdxInstr::PipeOff { dst: r.u16()?, k: r.u8()?, stride: r.u32()? },
            _ => return Err(WireError("bad IdxInstr tag")),
        }),
        26 => Instr::BarArrive { bar: r.u8()?, warps: r.u16()? },
        27 => Instr::BarSync { bar: r.u8()?, warps: r.u16()? },
        28 => Instr::BarArriveStage { base: r.u8()?, k: r.u8()?, warps: r.u16()? },
        29 => Instr::BarSyncStage { base: r.u8()?, k: r.u8()?, warps: r.u16()? },
        30 => {
            let addr = dec_saddr(r)?;
            let g = dec_gaddr(r)?;
            Instr::CpAsync { addr, array: g.array, row: g.row, point: g.point }
        }
        _ => return Err(WireError("bad Instr tag")),
    })
}

fn enc_nodes(w: &mut W, nodes: &[Node]) {
    w.usize(nodes.len());
    for n in nodes {
        match n {
            Node::Op(i) => {
                w.u8(0);
                enc_instr(w, i);
            }
            Node::WarpIf { mask, body } => {
                w.u8(1);
                w.u64(*mask);
                enc_nodes(w, body);
            }
            Node::WarpSwitch { case_of_warp, cases } => {
                w.u8(2);
                w.usize(case_of_warp.len());
                for c in case_of_warp {
                    w.usize(*c);
                }
                w.usize(cases.len());
                for c in cases {
                    enc_nodes(w, c);
                }
            }
            Node::Loop { count, body } => {
                w.u8(3);
                w.u32(*count);
                enc_nodes(w, body);
            }
            Node::PointLoop { iters, body } => {
                w.u8(4);
                w.u32(*iters);
                enc_nodes(w, body);
            }
        }
    }
}

fn dec_nodes(r: &mut R, depth: usize) -> WResult<Vec<Node>> {
    // The IR's control-flow trees are a few levels deep; a corrupt length
    // field must not be able to recurse the decoder off the stack.
    if depth > 64 {
        return Err(WireError("node tree too deep"));
    }
    let n = r.len()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(match r.u8()? {
            0 => Node::Op(dec_instr(r)?),
            1 => Node::WarpIf { mask: r.u64()?, body: dec_nodes(r, depth + 1)? },
            2 => {
                let nc = r.len()?;
                let mut case_of_warp = Vec::with_capacity(nc);
                for _ in 0..nc {
                    case_of_warp.push(r.usize()?);
                }
                let ncases = r.len()?;
                let mut cases = Vec::with_capacity(ncases);
                for _ in 0..ncases {
                    cases.push(dec_nodes(r, depth + 1)?);
                }
                Node::WarpSwitch { case_of_warp, cases }
            }
            3 => Node::Loop { count: r.u32()?, body: dec_nodes(r, depth + 1)? },
            4 => Node::PointLoop { iters: r.u32()?, body: dec_nodes(r, depth + 1)? },
            _ => return Err(WireError("bad Node tag")),
        });
    }
    Ok(out)
}

/// Encode a complete [`Kernel`].
pub fn enc_kernel(w: &mut W, k: &Kernel) {
    w.str(&k.name);
    w.usize(k.warps_per_cta);
    w.usize(k.points_per_cta);
    w.usize(k.dregs_per_thread);
    w.usize(k.iregs_per_thread);
    w.usize(k.shared_words);
    w.usize(k.local_words_per_thread);
    w.usize(k.barriers_used);
    w.usize(k.spilled_bytes_per_thread);
    w.bool(k.exp_const_from_registers);
    w.usize(k.const_banks.len());
    for b in &k.const_banks {
        w.usize(b.len());
        for v in b {
            w.f64(*v);
        }
    }
    w.usize(k.iconst_banks.len());
    for b in &k.iconst_banks {
        w.usize(b.len());
        for v in b {
            w.u32(*v);
        }
    }
    w.usize(k.global_arrays.len());
    for a in &k.global_arrays {
        w.str(&a.name);
        w.usize(a.rows);
        w.bool(a.output);
    }
    enc_nodes(w, &k.body);
}

/// Decode a complete [`Kernel`].
pub fn dec_kernel(r: &mut R) -> WResult<Kernel> {
    let name = r.str()?;
    let warps_per_cta = r.usize()?;
    let points_per_cta = r.usize()?;
    let dregs_per_thread = r.usize()?;
    let iregs_per_thread = r.usize()?;
    let shared_words = r.usize()?;
    let local_words_per_thread = r.usize()?;
    let barriers_used = r.usize()?;
    let spilled_bytes_per_thread = r.usize()?;
    let exp_const_from_registers = r.bool()?;
    let nb = r.len()?;
    let mut const_banks = Vec::with_capacity(nb);
    for _ in 0..nb {
        let n = r.len()?;
        let mut bank = Vec::with_capacity(n);
        for _ in 0..n {
            bank.push(r.f64()?);
        }
        const_banks.push(bank);
    }
    let nib = r.len()?;
    let mut iconst_banks = Vec::with_capacity(nib);
    for _ in 0..nib {
        let n = r.len()?;
        let mut bank = Vec::with_capacity(n);
        for _ in 0..n {
            bank.push(r.u32()?);
        }
        iconst_banks.push(bank);
    }
    let na = r.len()?;
    let mut global_arrays = Vec::with_capacity(na);
    for _ in 0..na {
        global_arrays.push(ArrayDecl { name: r.str()?, rows: r.usize()?, output: r.bool()? });
    }
    let body = dec_nodes(r, 0)?;
    Ok(Kernel {
        name,
        body,
        warps_per_cta,
        points_per_cta,
        dregs_per_thread,
        iregs_per_thread,
        shared_words,
        local_words_per_thread,
        const_banks,
        iconst_banks,
        barriers_used,
        global_arrays,
        spilled_bytes_per_thread,
        exp_const_from_registers,
    })
}

/// Encode [`CompileStats`] (every field; the struct is plain-old-data).
pub fn enc_stats(w: &mut W, s: &CompileStats) {
    w.usize(s.sync_points);
    w.usize(s.merged_syncs);
    w.usize(s.barriers_used);
    w.usize(s.shared_slots);
    w.usize(s.const_regs_per_thread);
    w.usize(s.overlay_groups);
    w.usize(s.solo_groups);
    w.usize(s.spilled_vars);
    w.usize(s.const_array_len);
    w.f64(s.flop_imbalance);
    w.usize(s.pipeline_depth);
    w.usize(s.full_barriers);
}

/// Decode [`CompileStats`].
pub fn dec_stats(r: &mut R) -> WResult<CompileStats> {
    Ok(CompileStats {
        sync_points: r.usize()?,
        merged_syncs: r.usize()?,
        barriers_used: r.usize()?,
        shared_slots: r.usize()?,
        const_regs_per_thread: r.usize()?,
        overlay_groups: r.usize()?,
        solo_groups: r.usize()?,
        spilled_vars: r.usize()?,
        const_array_len: r.usize()?,
        flop_imbalance: r.f64()?,
        pipeline_depth: r.usize()?,
        full_barriers: r.usize()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_kernel() -> Kernel {
        Kernel {
            name: "wire-test".into(),
            body: vec![
                Node::Op(Instr::DFma {
                    dst: 0,
                    a: Op::Reg(1),
                    b: Op::Imm(-0.0),
                    c: Op::Imm(f64::NAN),
                    const_c: true,
                }),
                Node::WarpIf {
                    mask: 0b1010,
                    body: vec![Node::Op(Instr::StShared {
                        src: Op::Reg(2),
                        addr: SAddr::dyn_lane(1, 7),
                        lane_pred: Some(3),
                    })],
                },
                Node::WarpSwitch {
                    case_of_warp: vec![0, 1, 0, 1],
                    cases: vec![
                        vec![Node::Op(Instr::Idx(IdxInstr::LaneId { dst: 0 }))],
                        vec![Node::PointLoop {
                            iters: 4,
                            body: vec![Node::Op(Instr::LdGlobal {
                                dst: 3,
                                addr: GAddr {
                                    array: GlobalId(1),
                                    row: IdxOp::Reg(2),
                                    point: PointRef::Lane,
                                },
                                ldg: true,
                            })],
                        }],
                    ],
                },
                Node::Op(Instr::BarSync { bar: 2, warps: 4 }),
                // The pipelined-schedule instructions: stage barrier
                // pairs, the per-iteration ring offset, and async copy.
                Node::Op(Instr::Idx(IdxInstr::PipeOff { dst: 5, k: 3, stride: 2880 })),
                Node::Op(Instr::BarArriveStage { base: 4, k: 2, warps: 3 }),
                Node::Op(Instr::BarSyncStage { base: 6, k: 2, warps: 1 }),
                Node::Op(Instr::CpAsync {
                    addr: SAddr::dyn_lane(1, 7),
                    array: GlobalId(0),
                    row: IdxOp::Reg(2),
                    point: PointRef::Lane,
                }),
            ],
            warps_per_cta: 4,
            points_per_cta: 32,
            dregs_per_thread: 8,
            iregs_per_thread: 4,
            shared_words: 128,
            local_words_per_thread: 2,
            const_banks: vec![vec![1.5, f64::INFINITY, -0.0], vec![]],
            iconst_banks: vec![vec![7, 0, u32::MAX]],
            barriers_used: 8,
            global_arrays: vec![
                ArrayDecl { name: "in".into(), rows: 5, output: false },
                ArrayDecl { name: "out".into(), rows: 2, output: true },
            ],
            spilled_bytes_per_thread: 16,
            exp_const_from_registers: true,
        }
    }

    #[test]
    fn kernel_roundtrips_bit_exactly() {
        let k = sample_kernel();
        let mut w = W::new();
        enc_kernel(&mut w, &k);
        let bytes = w.into_bytes();
        let mut r = R::new(&bytes);
        let k2 = dec_kernel(&mut r).expect("decodes");
        assert!(r.exhausted());
        // Debug formatting covers every field; NaN prints identically.
        assert_eq!(format!("{k:?}"), format!("{k2:?}"));
        // And the structural fingerprint (the cache identity) agrees,
        // proving f64 payloads survived by bit pattern.
        assert_eq!(
            gpu_sim::flatcache::fingerprint(&k),
            gpu_sim::flatcache::fingerprint(&k2)
        );
    }

    #[test]
    fn truncation_and_tag_corruption_fail_cleanly() {
        let k = sample_kernel();
        let mut w = W::new();
        enc_kernel(&mut w, &k);
        let bytes = w.into_bytes();
        // Every prefix must fail to decode (or decode without consuming
        // all input — also treated as failure by callers).
        for cut in 0..bytes.len() {
            let mut r = R::new(&bytes[..cut]);
            if let Ok(_k) = dec_kernel(&mut r) {
                assert!(!r.exhausted() || cut == bytes.len(), "truncated decode at {cut}");
            }
        }
        // Flipping any single byte must never panic (it may still decode:
        // a flipped f64 bit is valid data — the container checksum exists
        // for that).
        for i in 0..bytes.len() {
            let mut m = bytes.clone();
            m[i] ^= 0xff;
            let mut r = R::new(&m);
            let _ = dec_kernel(&mut r);
        }
    }

    #[test]
    fn stats_roundtrip() {
        let s = CompileStats {
            sync_points: 9,
            merged_syncs: 2,
            barriers_used: 3,
            shared_slots: 44,
            const_regs_per_thread: 21,
            overlay_groups: 5,
            solo_groups: 1,
            spilled_vars: 0,
            const_array_len: 160,
            flop_imbalance: 1.25,
            pipeline_depth: 2,
            full_barriers: 0,
        };
        let mut w = W::new();
        enc_stats(&mut w, &s);
        let bytes = w.into_bytes();
        let s2 = dec_stats(&mut R::new(&bytes)).unwrap();
        assert_eq!(format!("{s:?}"), format!("{s2:?}"));
    }

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }
}
