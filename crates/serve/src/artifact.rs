//! Persistent, content-addressed artifact cache.
//!
//! An **artifact** is everything the service needs to answer a
//! [`crate::CompileRequest`] without re-running the compiler: the compiled
//! [`Kernel`] (exact, f64s by bit pattern), the compile statistics, the
//! verifier's verdict, and human-readable metadata about how it was built.
//!
//! What is deliberately *not* stored: the lowered `EngineProgram`. Engine
//! lowering is deterministic from the `Kernel`, memoized process-wide by
//! `gpu_sim::flatcache`, and microseconds of work next to the
//! milliseconds of codegen + verification — while its semantics change
//! every time the lowering optimizer learns a trick. Persisting only the
//! ISA and folding [`gpu_sim::LOWERING_VERSION`] into both the artifact
//! key and the container header makes a stale lowering *unrepresentable*
//! rather than merely unlikely.
//!
//! ## Key anatomy
//!
//! [`ArtifactKey`] is two independent 64-bit hashes (the same
//! double-stream trick as `flatcache::fingerprint`) over the full request
//! identity:
//!
//! ```text
//! (mechanism content fingerprint, kernel id, variant, arch name,
//!  dfg warp count, CompileOptions debug form,
//!  WIRE_FORMAT_VERSION, LOWERING_VERSION)
//! ```
//!
//! The key is derived from the *request*, never the compiled output, so a
//! warm lookup costs a hash and a file read. Note `CompileOptions` enters
//! via its `Debug` form — the same choice the bench memo made, so any new
//! option field automatically changes the key.
//!
//! ## Corruption policy
//!
//! A cache entry that is truncated, bit-flipped, from an older format, or
//! from a different lowering version is a **miss**: [`Store::load`]
//! returns `None` and the caller recompiles. The only errors this module
//! surfaces are session-root problems (cannot create the directory).

use std::fs;
use std::hash::{Hash, Hasher};
use std::io::Write as _;
use std::path::{Path, PathBuf};

use gpu_sim::isa::Kernel;
use singe::codegen::CompileStats;

use crate::wire::{self, R, W, WireError};

/// Bump when the byte layout of anything in this file or `wire.rs`
/// changes. Old files become misses, never decode errors.
pub const WIRE_FORMAT_VERSION: u32 = 2;

const MAGIC: &[u8; 8] = b"SNGEART1";

/// Content address of an artifact: two independent 64-bit request hashes.
/// Collisions need both independent streams to collide simultaneously.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArtifactKey {
    k1: u64,
    k2: u64,
}

impl ArtifactKey {
    /// Derive the key from the request identity. `mech_fingerprint` is the
    /// session registry's content hash of the mechanism (so two ids bound
    /// to identical chemistry share artifacts, and re-registering changed
    /// chemistry under the same id can never alias).
    pub fn derive(
        mech_fingerprint: u64,
        kernel: &str,
        variant: &str,
        arch: &str,
        dfg_warps: usize,
        options_debug: &str,
    ) -> ArtifactKey {
        fn feed<H: Hasher>(
            h: &mut H,
            mech_fingerprint: u64,
            kernel: &str,
            variant: &str,
            arch: &str,
            dfg_warps: usize,
            options_debug: &str,
        ) {
            h.write_u32(WIRE_FORMAT_VERSION);
            h.write_u32(gpu_sim::LOWERING_VERSION);
            h.write_u64(mech_fingerprint);
            kernel.hash(h);
            variant.hash(h);
            arch.hash(h);
            h.write_u64(dfg_warps as u64);
            options_debug.hash(h);
        }
        let mut h1 = std::collections::hash_map::DefaultHasher::new();
        let mut h2 = std::collections::hash_map::DefaultHasher::new();
        h1.write_u8(0x5e);
        h2.write_u8(0xc4);
        feed(&mut h1, mech_fingerprint, kernel, variant, arch, dfg_warps, options_debug);
        feed(&mut h2, mech_fingerprint, kernel, variant, arch, dfg_warps, options_debug);
        ArtifactKey { k1: h1.finish(), k2: h2.finish() }
    }

    /// The content-addressed file name under the cache root.
    pub fn file_name(&self) -> String {
        format!("{:016x}{:016x}.art", self.k1, self.k2)
    }
}

/// The verifier's verdict, persisted so a warm load can report the same
/// protocol statistics the cold compile did without re-running the
/// dynamic verifier.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[non_exhaustive]
pub struct VerifyVerdict {
    /// Whether the kernel was verified at compile time (false when the
    /// request disabled verification — the verdict then carries zeros).
    pub verified: bool,
    /// Warps analyzed.
    pub warps: usize,
    /// Dynamic barrier operations executed during verification.
    pub barrier_ops: usize,
    /// Dynamic shared-memory accesses checked for races.
    pub shared_accesses: usize,
    /// Distinct barrier ids observed.
    pub barrier_ids: usize,
    /// Barrier generations completed.
    pub generations: u64,
}

/// How an artifact came to be — for humans (`serve-bench` output, cache
/// inspection), not for cache identity, which lives in [`ArtifactKey`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[non_exhaustive]
pub struct ArtifactMeta {
    /// Mechanism id the artifact was compiled for.
    pub mechanism: String,
    /// Kernel id ("viscosity" / "diffusion" / "chemistry").
    pub kernel: String,
    /// Compiler variant name ("ws" / "baseline" / "naive").
    pub variant: String,
    /// Architecture name.
    pub arch: String,
    /// Warp count the dfg was built at.
    pub dfg_warps: usize,
    /// `CompileOptions` debug form at compile time.
    pub options: String,
    /// Wall-clock nanoseconds the cold compile took.
    pub compile_nanos: u64,
    /// Lowering version the artifact was produced under.
    pub lowering_version: u32,
}

/// A cached compile result.
#[derive(Debug, Clone)]
pub struct Artifact {
    /// The compiled kernel, bit-exact.
    pub kernel: Kernel,
    /// Warp-specialization statistics (`None` for baseline builds, which
    /// deliberately don't carry them — see the bench harness).
    pub stats: Option<CompileStats>,
    /// Verifier verdict at compile time.
    pub verdict: VerifyVerdict,
    /// Provenance.
    pub meta: ArtifactMeta,
}

fn enc_verdict(w: &mut W, v: &VerifyVerdict) {
    w.bool(v.verified);
    w.usize(v.warps);
    w.usize(v.barrier_ops);
    w.usize(v.shared_accesses);
    w.usize(v.barrier_ids);
    w.u64(v.generations);
}

fn dec_verdict(r: &mut R) -> Result<VerifyVerdict, WireError> {
    Ok(VerifyVerdict {
        verified: r.bool()?,
        warps: r.usize()?,
        barrier_ops: r.usize()?,
        shared_accesses: r.usize()?,
        barrier_ids: r.usize()?,
        generations: r.u64()?,
    })
}

fn enc_meta(w: &mut W, m: &ArtifactMeta) {
    w.str(&m.mechanism);
    w.str(&m.kernel);
    w.str(&m.variant);
    w.str(&m.arch);
    w.usize(m.dfg_warps);
    w.str(&m.options);
    w.u64(m.compile_nanos);
    w.u32(m.lowering_version);
}

fn dec_meta(r: &mut R) -> Result<ArtifactMeta, WireError> {
    Ok(ArtifactMeta {
        mechanism: r.str()?,
        kernel: r.str()?,
        variant: r.str()?,
        arch: r.str()?,
        dfg_warps: r.usize()?,
        options: r.str()?,
        compile_nanos: r.u64()?,
        lowering_version: r.u32()?,
    })
}

/// Serialize an artifact into its on-disk container bytes.
pub fn encode(a: &Artifact) -> Vec<u8> {
    let mut body = W::new();
    wire::enc_kernel(&mut body, &a.kernel);
    match &a.stats {
        None => body.u8(0),
        Some(s) => {
            body.u8(1);
            wire::enc_stats(&mut body, s);
        }
    }
    enc_verdict(&mut body, &a.verdict);
    enc_meta(&mut body, &a.meta);
    let payload = body.into_bytes();

    let mut out = Vec::with_capacity(payload.len() + 32);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&WIRE_FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&gpu_sim::LOWERING_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&payload);
    out.extend_from_slice(&wire::fnv1a(&payload).to_le_bytes());
    out
}

/// Decode container bytes back into an [`Artifact`]. Any defect — bad
/// magic, version skew, truncation, checksum mismatch, trailing garbage —
/// is a [`WireError`].
pub fn decode(bytes: &[u8]) -> Result<Artifact, WireError> {
    let mut r = R::new(bytes);
    let mut magic = [0u8; 8];
    for m in &mut magic {
        *m = r.u8()?;
    }
    if &magic != MAGIC {
        return Err(WireError("bad magic"));
    }
    if r.u32()? != WIRE_FORMAT_VERSION {
        return Err(WireError("wire format version skew"));
    }
    if r.u32()? != gpu_sim::LOWERING_VERSION {
        return Err(WireError("lowering version skew"));
    }
    let payload_len = r.usize()?;
    // Re-slice so the checksum covers exactly the payload.
    let header: usize = 8 + 4 + 4 + 8;
    let payload_end =
        header.checked_add(payload_len).ok_or(WireError("length overflow"))?;
    if payload_end + 8 != bytes.len() {
        return Err(WireError("container length mismatch"));
    }
    let payload = &bytes[header..payload_end];
    let stored = u64::from_le_bytes(bytes[payload_end..].try_into().unwrap());
    if wire::fnv1a(payload) != stored {
        return Err(WireError("checksum mismatch"));
    }
    let mut r = R::new(payload);
    let kernel = wire::dec_kernel(&mut r)?;
    let stats = match r.u8()? {
        0 => None,
        1 => Some(wire::dec_stats(&mut r)?),
        _ => return Err(WireError("bad stats tag")),
    };
    let verdict = dec_verdict(&mut r)?;
    let meta = dec_meta(&mut r)?;
    if !r.exhausted() {
        return Err(WireError("trailing bytes"));
    }
    Ok(Artifact { kernel, stats, verdict, meta })
}

/// The on-disk store: a flat directory of `<32 hex>.art` files.
#[derive(Debug)]
pub struct Store {
    root: PathBuf,
}

impl Store {
    /// Open (creating if needed) the store rooted at `root`.
    pub fn open(root: &Path) -> std::io::Result<Store> {
        fs::create_dir_all(root)?;
        Ok(Store { root: root.to_path_buf() })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn path_for(&self, key: &ArtifactKey) -> PathBuf {
        self.root.join(key.file_name())
    }

    /// Load the artifact for `key`, or `None` on any miss — absent file,
    /// unreadable file, or a file that fails to decode (stale format,
    /// corruption). `was_corrupt` is set when a file *existed* but did not
    /// decode, so the session can count corruption-triggered recompiles
    /// separately from plain cold misses.
    pub fn load(&self, key: &ArtifactKey, was_corrupt: &mut bool) -> Option<Artifact> {
        *was_corrupt = false;
        let bytes = fs::read(self.path_for(key)).ok()?;
        match decode(&bytes) {
            Ok(a) => Some(a),
            Err(_) => {
                *was_corrupt = true;
                // Best-effort removal so the next miss is a clean one.
                let _ = fs::remove_file(self.path_for(key));
                None
            }
        }
    }

    /// Persist `artifact` under `key`: write to a sibling temp file, then
    /// rename into place, so concurrent readers only ever observe complete
    /// containers. Failure is reported but callers treat it as advisory —
    /// a compile that cannot be cached is still a successful compile.
    pub fn save(&self, key: &ArtifactKey, artifact: &Artifact) -> std::io::Result<()> {
        let bytes = encode(artifact);
        let final_path = self.path_for(key);
        let tmp_path = self.root.join(format!(
            ".{}.tmp.{}",
            key.file_name(),
            std::process::id()
        ));
        let mut f = fs::File::create(&tmp_path)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
        drop(f);
        match fs::rename(&tmp_path, &final_path) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = fs::remove_file(&tmp_path);
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::isa::{Instr, Node, Op};

    fn tiny_artifact() -> Artifact {
        Artifact {
            kernel: Kernel {
                name: "t".into(),
                body: vec![Node::Op(Instr::DMov { dst: 0, src: Op::Imm(2.5) })],
                warps_per_cta: 1,
                points_per_cta: 32,
                dregs_per_thread: 1,
                iregs_per_thread: 0,
                shared_words: 0,
                local_words_per_thread: 0,
                const_banks: vec![],
                iconst_banks: vec![],
                barriers_used: 0,
                global_arrays: vec![],
                spilled_bytes_per_thread: 0,
                exp_const_from_registers: false,
            },
            stats: None,
            verdict: VerifyVerdict { verified: true, warps: 1, ..Default::default() },
            meta: ArtifactMeta {
                mechanism: "dme".into(),
                kernel: "viscosity".into(),
                variant: "ws".into(),
                arch: "Tesla K20c".into(),
                dfg_warps: 1,
                options: "opts".into(),
                compile_nanos: 12345,
                lowering_version: gpu_sim::LOWERING_VERSION,
            },
        }
    }

    #[test]
    fn container_roundtrip() {
        let a = tiny_artifact();
        let bytes = encode(&a);
        let b = decode(&bytes).expect("decodes");
        assert_eq!(format!("{:?}", a.kernel), format!("{:?}", b.kernel));
        assert_eq!(a.verdict, b.verdict);
        assert_eq!(a.meta, b.meta);
    }

    #[test]
    fn every_single_byte_flip_is_rejected_or_harmless() {
        let bytes = encode(&tiny_artifact());
        let mut undetected_payload_mutations = 0;
        for i in 0..bytes.len() {
            let mut m = bytes.clone();
            m[i] ^= 0x01;
            if decode(&m).is_ok() {
                undetected_payload_mutations += 1;
            }
        }
        // The FNV checksum catches payload flips; header flips fail magic
        // or version checks; checksum-byte flips mismatch the payload.
        assert_eq!(undetected_payload_mutations, 0);
    }

    #[test]
    fn truncation_is_rejected() {
        let bytes = encode(&tiny_artifact());
        for cut in 0..bytes.len() {
            assert!(decode(&bytes[..cut]).is_err(), "accepted truncation at {cut}");
        }
    }

    #[test]
    fn store_roundtrip_and_corruption_fallback() {
        let dir = std::env::temp_dir().join(format!("singe-serve-store-{}", std::process::id()));
        let store = Store::open(&dir).unwrap();
        let key = ArtifactKey::derive(1, "viscosity", "ws", "Tesla K20c", 7, "opts");
        let mut corrupt = false;
        assert!(store.load(&key, &mut corrupt).is_none());
        assert!(!corrupt);

        let a = tiny_artifact();
        store.save(&key, &a).unwrap();
        let b = store.load(&key, &mut corrupt).expect("warm hit");
        assert!(!corrupt);
        assert_eq!(format!("{:?}", a.kernel), format!("{:?}", b.kernel));

        // Truncate the file in place: next load is a miss flagged corrupt,
        // and the bad entry is removed.
        let path = dir.join(key.file_name());
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(store.load(&key, &mut corrupt).is_none());
        assert!(corrupt);
        assert!(!path.exists());

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_depends_on_every_request_field() {
        let base = ArtifactKey::derive(1, "viscosity", "ws", "k20c", 7, "o");
        assert_ne!(base, ArtifactKey::derive(2, "viscosity", "ws", "k20c", 7, "o"));
        assert_ne!(base, ArtifactKey::derive(1, "diffusion", "ws", "k20c", 7, "o"));
        assert_ne!(base, ArtifactKey::derive(1, "viscosity", "baseline", "k20c", 7, "o"));
        assert_ne!(base, ArtifactKey::derive(1, "viscosity", "ws", "c2070", 7, "o"));
        assert_ne!(base, ArtifactKey::derive(1, "viscosity", "ws", "k20c", 8, "o"));
        assert_ne!(base, ArtifactKey::derive(1, "viscosity", "ws", "k20c", 7, "p"));
        assert_eq!(base, ArtifactKey::derive(1, "viscosity", "ws", "k20c", 7, "o"));
    }
}
