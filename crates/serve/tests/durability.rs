//! Durability and concurrency contracts of the serve layer, end to end
//! through the public API: artifacts must survive a process restart
//! byte-for-byte, corruption must degrade to a recompile (never an
//! error), and identical concurrent requests must compile exactly once.

use std::path::PathBuf;

use chemkin::synth::{self, SynthConfig};
use singe::Variant;
use singe_serve::{
    ArchId, ArtifactSource, CompileRequest, KernelId, ServeError, ServeSession,
};

/// Fresh cache directory under the crate's `target/`, unique per test.
fn cache_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("singe-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open(dir: &PathBuf) -> ServeSession {
    ServeSession::builder(dir).builtins(false).open().expect("open session")
}

fn dme_request(kernel: KernelId) -> CompileRequest {
    CompileRequest::new("dme".parse().unwrap(), kernel, Variant::WarpSpecialized, ArchId::Kepler)
}

/// A cold compile, a restart, and a warm load must agree on everything
/// observable: the kernel (bit-for-bit, `Debug` form includes every f64
/// constant), the compile stats, the verification verdict, and the event
/// counts a probe launch produces from the artifact.
#[test]
fn warm_artifact_is_byte_identical_across_restart() {
    let dir = cache_dir("restart");
    let req = dme_request(KernelId::Viscosity);

    let session = open(&dir);
    session.register_synth(&synth::dme_config()).unwrap();
    let cold = session.compile(&req).expect("cold compile");
    assert_eq!(cold.source, ArtifactSource::ColdCompile);
    let cold_counts = session.probe(&req).expect("cold probe");
    drop(session);

    let session = open(&dir);
    session.register_synth(&synth::dme_config()).unwrap();
    let warm = session.compile(&req).expect("warm compile");
    assert_eq!(warm.source, ArtifactSource::WarmDisk, "restart must hit the disk cache");
    assert_eq!(warm.key, cold.key);
    assert_eq!(
        format!("{:?}", warm.artifact.kernel),
        format!("{:?}", cold.artifact.kernel),
        "warm kernel differs from the cold compile"
    );
    assert_eq!(
        format!("{:?}", warm.artifact.stats),
        format!("{:?}", cold.artifact.stats),
        "warm compile stats differ from the cold compile"
    );
    assert_eq!(
        format!("{:?}", warm.artifact.verdict),
        format!("{:?}", cold.artifact.verdict),
        "warm verification verdict differs from the cold compile"
    );
    let warm_counts = session.probe(&req).expect("warm probe");
    assert_eq!(
        format!("{warm_counts:?}"),
        format!("{cold_counts:?}"),
        "probe launch through the warm artifact diverged"
    );

    let stats = session.stats();
    // compile + probe's internal compile: both warm, neither cold.
    assert!(stats.warm_hits >= 1, "restart session saw no warm hits");
    assert_eq!(stats.cold_compiles, 0, "restart session must never compile cold");
    std::fs::remove_dir_all(&dir).ok();
}

/// Truncating or bit-flipping the on-disk artifact must be indistinguishable
/// from a cache miss: the next compile runs cold, succeeds, and rewrites a
/// valid artifact.
#[test]
fn corrupt_artifact_falls_back_to_recompile() {
    let dir = cache_dir("corrupt");
    let req = dme_request(KernelId::Diffusion);

    let session = open(&dir);
    session.register_synth(&synth::dme_config()).unwrap();
    let cold = session.compile(&req).unwrap();
    let path = session.cache_dir().join(cold.key.file_name());
    let bytes = std::fs::read(&path).expect("artifact on disk");
    drop(session);

    // Truncation (half the file gone, e.g. a crash mid-write).
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
    let session = open(&dir);
    session.register_synth(&synth::dme_config()).unwrap();
    let h = session.compile(&req).expect("compile past truncated artifact");
    assert_eq!(h.source, ArtifactSource::ColdCompile, "truncated artifact must recompile");
    assert_eq!(session.stats().corrupt_reloads, 1);
    drop(session);

    // Bit flip in the middle of the payload (silent media corruption).
    let mut flipped = std::fs::read(&path).unwrap();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x40;
    std::fs::write(&path, &flipped).unwrap();
    let session = open(&dir);
    session.register_synth(&synth::dme_config()).unwrap();
    let h = session.compile(&req).expect("compile past corrupted artifact");
    assert_eq!(h.source, ArtifactSource::ColdCompile, "corrupted artifact must recompile");
    assert_eq!(h.key, cold.key);
    assert_eq!(
        format!("{:?}", h.artifact.kernel),
        format!("{:?}", cold.artifact.kernel),
        "recompile after corruption produced a different kernel"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// N identical requests submitted concurrently must trigger exactly one
/// compiler run; the rest join the in-flight slot and observe the same
/// artifact.
#[test]
fn identical_inflight_requests_compile_once() {
    let dir = cache_dir("dedup");
    let session = ServeSession::builder(&dir).builtins(false).jobs(4).open().unwrap();
    session.register_synth(&synth::dme_config()).unwrap();
    let req = dme_request(KernelId::Viscosity);

    let n = 8;
    let tickets: Vec<_> = (0..n).map(|_| session.submit(&req).expect("submit")).collect();
    let handles: Vec<_> = tickets.into_iter().map(|t| t.wait().expect("compile")).collect();

    let stats = session.stats();
    assert_eq!(stats.cold_compiles, 1, "identical in-flight requests must compile once");
    assert_eq!(
        stats.cold_compiles + stats.inflight_joins + stats.warm_hits,
        n,
        "every request must be accounted for"
    );
    let first = format!("{:?}", handles[0].artifact.kernel);
    for h in &handles {
        assert_eq!(h.key, handles[0].key);
        assert_eq!(format!("{:?}", h.artifact.kernel), first);
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Hopper artifacts — the K-stage pipelined schedules — must round-trip
/// the disk cache like any other kernel: cold compile, restart, warm load
/// byte-identical (including the replicated iconst banks and stage
/// barrier declarations); and a stale `LOWERING_VERSION` in the container
/// header must read as a cache miss (cold recompile), never a replay of
/// an artifact lowered by an older compiler.
#[test]
fn hopper_pipelined_artifact_roundtrips_and_rejects_stale_lowering() {
    let dir = cache_dir("hopper");
    let req = CompileRequest::new(
        "dme".parse().unwrap(),
        KernelId::Viscosity,
        Variant::WarpSpecialized,
        ArchId::Hopper,
    );

    let session = open(&dir);
    session.register_synth(&synth::dme_config()).unwrap();
    let cold = session.compile(&req).expect("cold compile");
    assert_eq!(cold.source, ArtifactSource::ColdCompile);
    let stats = cold.artifact.stats.as_ref().expect("ws artifact carries stats");
    assert_eq!(
        stats.pipeline_depth, 2,
        "Hopper viscosity defaults must produce a K=2 pipelined schedule"
    );
    let cold_counts = session.probe(&req).expect("cold probe");
    let path = session.cache_dir().join(cold.key.file_name());
    drop(session);

    // Restart: the pipelined artifact must come back warm and identical.
    let session = open(&dir);
    session.register_synth(&synth::dme_config()).unwrap();
    let warm = session.compile(&req).expect("warm compile");
    assert_eq!(warm.source, ArtifactSource::WarmDisk, "restart must hit the disk cache");
    assert_eq!(warm.key, cold.key);
    assert_eq!(
        format!("{:?}", warm.artifact.kernel),
        format!("{:?}", cold.artifact.kernel),
        "warm pipelined kernel differs from the cold compile"
    );
    let warm_counts = session.probe(&req).expect("warm probe");
    assert_eq!(
        format!("{warm_counts:?}"),
        format!("{cold_counts:?}"),
        "probe launch through the warm pipelined artifact diverged"
    );
    assert_eq!(session.stats().cold_compiles, 0, "restart session must never compile cold");
    drop(session);

    // Stale lowering: bump the `LOWERING_VERSION` field in the container
    // header (offset 12: 8-byte magic + 4-byte wire-format version). The
    // payload checksum does not cover the header, so the file is otherwise
    // pristine — only the version skew can reject it.
    let mut bytes = std::fs::read(&path).expect("artifact on disk");
    let v = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
    bytes[12..16].copy_from_slice(&(v + 1).to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();
    let session = open(&dir);
    session.register_synth(&synth::dme_config()).unwrap();
    let fresh = session.compile(&req).expect("compile past the stale artifact");
    assert_eq!(fresh.source, ArtifactSource::ColdCompile, "stale lowering must recompile");
    assert_eq!(session.stats().corrupt_reloads, 1, "version skew must count as a fallback");
    assert_eq!(
        format!("{:?}", fresh.artifact.kernel),
        format!("{:?}", cold.artifact.kernel),
        "recompile after version skew produced a different kernel"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Unknown ids come back as typed errors that list what *would* have been
/// valid — the redesigned surface never panics or stringly-guesses.
#[test]
fn typed_errors_list_valid_ids() {
    let dir = cache_dir("ids");
    let session = open(&dir);
    session
        .register_synth(&SynthConfig { name: "tiny".into(), ..synth::dme_config() })
        .unwrap();

    let req = CompileRequest::new(
        "missing".parse().unwrap(),
        KernelId::Viscosity,
        Variant::WarpSpecialized,
        ArchId::Kepler,
    );
    match session.compile(&req) {
        Err(ServeError::UnknownMechanism { requested, known }) => {
            assert_eq!(requested, "missing");
            assert_eq!(known, vec!["tiny".to_string()]);
        }
        other => panic!("expected UnknownMechanism, got {other:?}"),
    }

    let err = "no-such-kernel".parse::<KernelId>().unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("viscosity") && msg.contains("diffusion") && msg.contains("chemistry"),
        "kernel id error must list the valid ids: {msg}");
    let err = "vax".parse::<ArchId>().unwrap_err();
    assert!(err.to_string().contains("kepler"), "arch id error must list the valid ids");
    std::fs::remove_dir_all(&dir).ok();
}

/// Predict and autotune both ride the same cached artifacts: a predict
/// after a compile must not add a cold compile, and autotune returns a
/// finite best.
#[test]
fn predict_and_autotune_reuse_cached_artifacts() {
    let dir = cache_dir("predict");
    let session = open(&dir);
    session.register_synth(&synth::dme_config()).unwrap();
    let req = dme_request(KernelId::Viscosity);

    session.compile(&req).unwrap();
    let after_compile = session.stats().cold_compiles;
    let report = session.predict(&req, 64 * 64 * 64).expect("predict");
    assert!(report.seconds > 0.0);
    assert_eq!(
        session.stats().cold_compiles,
        after_compile,
        "predict must reuse the cached artifact, not recompile"
    );

    let n = synth::dme_config().n_species;
    let candidates = vec![
        singe_serve::default_options(KernelId::Viscosity, n, &ArchId::Kepler.arch()),
        singe::CompileOptions::with_warps(8),
    ];
    let (best, seconds) =
        session.autotune(&req, &candidates, 64 * 64 * 64).expect("autotune");
    assert!(best < candidates.len());
    assert!(seconds[best].is_finite() && seconds[best] > 0.0);
    std::fs::remove_dir_all(&dir).ok();
}

/// The schedule search (beam over the full space, model as cost,
/// simulation as oracle) runs through the session's farm + artifact
/// cache: it returns a finite winner, simulates no more than the
/// budget's top-K, and a repeated identical search answers every
/// candidate compile from the cache instead of recompiling.
#[test]
fn schedule_search_runs_through_the_cache() {
    let dir = cache_dir("search");
    let session = open(&dir);
    session.register_synth(&synth::dme_config()).unwrap();
    let req = dme_request(KernelId::Viscosity);
    let budget = singe_serve::SearchBudget::builder()
        .beam_width(2)
        .rounds(1)
        .sim_top_k(2)
        .max_model_evals(10)
        .build();

    let (best, outcome) =
        session.autotune_search(&req, &budget, 64 * 64).expect("search runs");
    assert!(best.warps > 0);
    assert!(outcome.best_seconds.is_finite() && outcome.best_seconds > 0.0);
    assert!(outcome.model_evals <= 10, "eval cap violated: {}", outcome.model_evals);
    assert!(outcome.simulations <= 2, "simulated past top-K: {}", outcome.simulations);

    // An identical search over the warm cache must not compile anything
    // new — every candidate is answered from disk or memory.
    let cold_before = session.stats().cold_compiles;
    let (best2, outcome2) =
        session.autotune_search(&req, &budget, 64 * 64).expect("warm search runs");
    assert_eq!(session.stats().cold_compiles, cold_before, "warm search recompiled");
    assert_eq!(format!("{best:?}"), format!("{best2:?}"), "search is not deterministic");
    assert_eq!(outcome.best_seconds.to_bits(), outcome2.best_seconds.to_bits());
    std::fs::remove_dir_all(&dir).ok();
}
