//! Evaluation harness: builds every kernel variant of the paper's §6 and
//! produces the rows behind each table and figure.
//!
//! Timing methodology: each kernel is executed functionally for one CTA on
//! the simulator (gathering the event counts), and the analytic timing
//! model extrapolates to the paper's grid sizes (32^3, 64^3, 128^3) —
//! mirroring how the per-point kernels scale across a homogeneous grid.

use std::collections::HashMap;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use chemkin::reference::tables::{ChemistrySpec, DiffusionTables, ViscosityTables};
use chemkin::state::{GridDims, GridState};
use chemkin::Mechanism;
use gpu_sim::arch::GpuArch;
use gpu_sim::counts::EventCounts;
use gpu_sim::isa::Kernel;
use gpu_sim::launch::{launch, launch_with_config, LaunchConfig, LaunchInputs, LaunchMode};
use gpu_sim::profile::CtaProfile;
use gpu_sim::timing::{estimate, SimReport};
use singe::codegen::CompileStats;
use singe::config::CompileOptions;
use singe::kernels::{chemistry, diffusion, launch_arrays, viscosity};
use singe::Compiler;

pub use singe::Variant;
// The typed id surface lives in the serve layer (it keys the persistent
// artifact cache); the harness re-exports it so CLI code has one spelling.
pub use singe_serve::{ArchId, KernelId, MechanismId, UnknownIdError};

/// Kernel selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// §3.2 viscosity.
    Viscosity,
    /// §3.3 diffusion.
    Diffusion,
    /// §3.4 chemistry.
    Chemistry,
}

impl Kind {
    /// Display name (delegates to the typed [`KernelId`]).
    pub fn name(self) -> &'static str {
        KernelId::from(self).name()
    }
}

impl From<Kind> for KernelId {
    fn from(k: Kind) -> KernelId {
        match k {
            Kind::Viscosity => KernelId::Viscosity,
            Kind::Diffusion => KernelId::Diffusion,
            Kind::Chemistry => KernelId::Chemistry,
        }
    }
}

impl From<KernelId> for Kind {
    fn from(k: KernelId) -> Kind {
        match k {
            KernelId::Viscosity => Kind::Viscosity,
            KernelId::Diffusion => Kind::Diffusion,
            KernelId::Chemistry => Kind::Chemistry,
        }
    }
}

impl std::str::FromStr for Kind {
    type Err = UnknownIdError;

    /// Parse via [`KernelId`]: an unknown name yields the typed error
    /// that lists the valid kernel ids.
    fn from_str(s: &str) -> Result<Kind, UnknownIdError> {
        s.parse::<KernelId>().map(Kind::from)
    }
}

/// A built kernel plus metadata.
pub struct Built {
    /// The kernel.
    pub kernel: Kernel,
    /// Warp-specialization statistics (None for baseline).
    pub stats: Option<CompileStats>,
    /// Transported species count.
    pub n_species: usize,
    /// Process-unique id used to key the probe-counts cache; every distinct
    /// compilation gets its own, and cached `Arc<Built>` clones share it.
    probe_key: u64,
}

fn next_probe_key() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// Bound for the memo tables below. Sweeps in this repo stay far under
/// these; the clear-on-full policy only guards pathological callers.
const MAX_CACHE_ENTRIES: usize = 256;

/// Each entry is a once-cell slot: concurrent callers asking for the same
/// key all wait on one compilation instead of racing to compile the same
/// kernel N times (the parallel `report` sweeps hit every figure's shared
/// builds from many workers at once).
type BuildSlot = Arc<OnceLock<Result<Arc<Built>, singe::CompileError>>>;
type BuildCache = Mutex<HashMap<u64, BuildSlot>>;

fn build_cache() -> &'static BuildCache {
    static CACHE: OnceLock<BuildCache> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Fingerprint a mechanism by content (names are not unique across tests).
fn mech_fingerprint(mech: &Mechanism) -> u64 {
    let mut h = DefaultHasher::new();
    format!("{mech:?}").hash(&mut h);
    h.finish()
}

/// Cache key over (kind, variant, arch, mechanism, dfg warp count,
/// options). `dfg_warps` is keyed separately from `opts.warps` because the
/// default Baseline path compiles a dfg built for the warp-specialized
/// warp count with `with_warps(8)` options. Every build path — `build()`
/// and `build_with_options()` — derives its key here, so an option added
/// to [`CompileOptions`] can never be hashed on one path and silently
/// dropped on the other (it would poison the memoization).
fn build_key(
    kind: Kind,
    variant: Variant,
    arch: &GpuArch,
    mech: &Mechanism,
    dfg_warps: usize,
    opts: &CompileOptions,
) -> u64 {
    let mut h = DefaultHasher::new();
    format!("{kind:?}|{variant:?}|{}|{dfg_warps}", arch.name).hash(&mut h);
    mech_fingerprint(mech).hash(&mut h);
    format!("{opts:?}").hash(&mut h);
    h.finish()
}

fn build_cached(
    key: u64,
    compile: impl FnOnce() -> Result<Built, singe::CompileError>,
) -> Result<Arc<Built>, singe::CompileError> {
    // Claim (or join) the slot for this key under the lock, then compile
    // outside it: compilation is the expensive part and may itself launch
    // the verifier. `OnceLock::get_or_init` blocks late arrivals until the
    // first caller's compile finishes, so each key compiles exactly once.
    let slot = {
        let mut cache = build_cache().lock().unwrap();
        if cache.len() >= MAX_CACHE_ENTRIES && !cache.contains_key(&key) {
            cache.clear();
        }
        cache.entry(key).or_default().clone()
    };
    slot.get_or_init(|| compile().map(Arc::new)).clone()
}

/// Pick a warp count for the warp-specialized viscosity kernel (delegates
/// to the serve layer's canonical heuristic).
pub fn viscosity_warps(n: usize) -> usize {
    singe_serve::viscosity_warps(n)
}

/// Default warp-specialized options per kernel kind (delegates to the
/// serve layer, which owns the per-kernel defaults so CLI requests and
/// harness builds agree on them).
pub fn ws_options(kind: Kind, n_species: usize, arch: &GpuArch) -> CompileOptions {
    singe_serve::default_options(kind.into(), n_species, arch)
}

/// When `SINGE_SERVE_CACHE` names a directory, the harness routes every
/// compile through one process-wide [`singe_serve::ServeSession`] rooted
/// there: compiles persist across `report` invocations and warm runs skip
/// codegen entirely. Opened lazily on first use; an unusable directory
/// disables routing (compiles fall back to the direct path).
fn serve_session() -> Option<&'static singe_serve::ServeSession> {
    static SESSION: OnceLock<Option<singe_serve::ServeSession>> = OnceLock::new();
    SESSION
        .get_or_init(|| {
            let dir = std::env::var_os("SINGE_SERVE_CACHE")?;
            singe_serve::ServeSession::builder(std::path::Path::new(&dir))
                .builtins(false)
                .open()
                .ok()
        })
        .as_ref()
}

/// Compile through the serve session, if routing is enabled and the
/// request maps onto the typed surface. `None` means "no serve answer —
/// use the direct path" (routing off, unknown arch, session error);
/// `Some(Err)` is a real compile failure, identical to what the direct
/// path would have produced.
fn try_serve(
    kind: Kind,
    mech: &Mechanism,
    arch: &GpuArch,
    variant: Variant,
    dfg_warps: usize,
    opts: &CompileOptions,
) -> Option<Result<Built, singe::CompileError>> {
    let session = serve_session()?;
    // Only the two named architectures exist in the persistent keyspace;
    // tests with synthetic arches compile directly.
    let arch_id = ArchId::ALL.into_iter().find(|a| a.arch().name == arch.name)?;
    // Content-derived id: identical mechanisms share artifacts no matter
    // what the caller named them.
    let id: MechanismId = format!("m{:016x}", mech_fingerprint(mech)).parse().ok()?;
    session.register_mechanism(id.clone(), mech.clone()).ok()?;
    let req = singe_serve::CompileRequest::new(id, kind.into(), variant, arch_id)
        .with_options(opts.clone())
        .with_dfg_warps(dfg_warps);
    match session.compile(&req) {
        Ok(handle) => Some(Ok(Built {
            kernel: handle.artifact.kernel.clone(),
            stats: handle.artifact.stats.clone(),
            n_species: mech.n_transported(),
            probe_key: next_probe_key(),
        })),
        Err(singe_serve::ServeError::Compile(e)) => Some(Err(e)),
        // Service-level trouble (overload, shutdown, io): not a compile
        // failure — fall back to compiling directly.
        Err(_) => None,
    }
}

/// Build a kernel kind's dataflow graph at `dfg_warps` warps — the input
/// the autotuners and the schedule search ([`singe::search`]) take
/// directly, bypassing the compile memo (they compile many option points
/// against one dfg).
pub fn dfg_for(kind: Kind, mech: &Mechanism, dfg_warps: usize) -> singe::Dfg {
    match kind {
        Kind::Viscosity => viscosity::viscosity_dfg(&ViscosityTables::build(mech), dfg_warps),
        Kind::Diffusion => diffusion::diffusion_dfg(&DiffusionTables::build(mech), dfg_warps),
        Kind::Chemistry => chemistry::chemistry_dfg(&ChemistrySpec::build(mech), dfg_warps),
    }
}

/// The single compile path behind [`build`] and [`build_with_options`]:
/// build the kernel's dfg at `dfg_warps` warps, compile it through the
/// [`Compiler`] front door, memoize on the unified [`build_key`].
fn compile_variant(
    kind: Kind,
    mech: &Mechanism,
    arch: &GpuArch,
    variant: Variant,
    dfg_warps: usize,
    opts: &CompileOptions,
) -> Result<Arc<Built>, singe::CompileError> {
    let key = build_key(kind, variant, arch, mech, dfg_warps, opts);
    build_cached(key, || {
        if let Some(served) = try_serve(kind, mech, arch, variant, dfg_warps, opts) {
            return served;
        }
        let n = mech.n_transported();
        let dfg = dfg_for(kind, mech, dfg_warps);
        let c = Compiler::new(arch).options(opts.clone()).compile(&dfg, variant)?;
        // The baseline's unified stats carry only the spill count; keep the
        // historical `None` so report code doesn't mistake them for
        // warp-specialization statistics.
        let stats = match variant {
            Variant::Baseline => None,
            Variant::WarpSpecialized | Variant::Naive => Some(c.stats),
        };
        Ok(Built { kernel: c.kernel, stats, n_species: n, probe_key: next_probe_key() })
    })
}

/// Build a kernel variant for a mechanism on an architecture. Memoized:
/// repeated sweep rows (e.g. fig11–16 sharing variants across grid sizes)
/// reuse the compiled artifact.
pub fn build(kind: Kind, mech: &Mechanism, arch: &GpuArch, variant: Variant) -> Arc<Built> {
    let opts = ws_options(kind, mech.n_transported(), arch);
    match variant {
        // Non-baseline default builds are exactly `build_with_options` at
        // the default options; delegating shares one cache entry with
        // explicit-option callers (e.g. the verifier sweep).
        Variant::WarpSpecialized | Variant::Naive => {
            build_with_options(kind, mech, arch, variant, &opts).expect("default variant compiles")
        }
        // The default Baseline path compiles with `with_warps(8)` options
        // against a dfg built for the warp-specialized warp count — which
        // is why `compile_variant` keys the dfg warp count separately.
        Variant::Baseline => {
            compile_variant(kind, mech, arch, variant, opts.warps, &CompileOptions::with_warps(8))
                .expect("baseline compiles")
        }
    }
}

/// Build with explicit options (Figure 9 warp sweeps, ablations).
/// Memoized on (kind, mechanism, arch, variant, options); compile errors
/// are cached too, so failing sweep points stay cheap on re-query.
pub fn build_with_options(
    kind: Kind,
    mech: &Mechanism,
    arch: &GpuArch,
    variant: Variant,
    opts: &CompileOptions,
) -> Result<Arc<Built>, singe::CompileError> {
    compile_variant(kind, mech, arch, variant, opts.warps, opts)
}

type ProbeCache = Mutex<HashMap<(u64, &'static str), EventCounts>>;

fn probe_cache() -> &'static ProbeCache {
    static CACHE: OnceLock<ProbeCache> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Run one CTA functionally and extrapolate the timing model to
/// `grid_points` points. Returns the simulation report.
///
/// The probe launch is deterministic for a given kernel and architecture
/// (fixed grid seed), so its event counts are memoized per `Built`; only
/// the analytic `estimate` re-runs per grid size.
pub fn timing_report(built: &Built, arch: &GpuArch, grid_points: usize) -> SimReport {
    let key = (built.probe_key, arch.name);
    let cached = probe_cache().lock().unwrap().get(&key).cloned();
    let counts = match cached {
        Some(c) => c,
        None => {
            let probe = built.kernel.points_per_cta;
            let g =
                GridState::random(GridDims { nx: probe, ny: 1, nz: 1 }, built.n_species, 1234);
            let arrays = launch_arrays(&built.kernel.global_arrays, &g).expect("known arrays");
            let out =
                launch(&built.kernel, arch, &LaunchInputs { arrays }, probe, LaunchMode::Full)
                    .expect("probe launch");
            let mut cache = probe_cache().lock().unwrap();
            if cache.len() >= MAX_CACHE_ENTRIES {
                cache.clear();
            }
            cache.insert(key, out.report.counts.clone());
            out.report.counts
        }
    };
    estimate(&built.kernel, arch, &counts, grid_points)
}

/// Run the deterministic probe launch for `built` with the cycle
/// profiler enabled and return the per-warp attribution. `trace_events`
/// additionally records the structured event stream (phase spans,
/// barrier arrive/sync edges) for Chrome-trace export.
///
/// Not memoized: profiling is a one-shot diagnostic pass, unlike the
/// event counts feeding every grid-size extrapolation.
pub fn profile_built(built: &Built, arch: &GpuArch, trace_events: bool) -> CtaProfile {
    let probe = built.kernel.points_per_cta;
    let g = GridState::random(GridDims { nx: probe, ny: 1, nz: 1 }, built.n_species, 1234);
    let arrays = launch_arrays(&built.kernel.global_arrays, &g).expect("known arrays");
    let out = launch_with_config(
        &built.kernel,
        arch,
        &LaunchInputs { arrays },
        probe,
        LaunchConfig { mode: LaunchMode::Full, profile: true, trace_events, jobs: 0 },
    )
    .expect("profiled probe launch");
    out.profile.expect("profiler enabled")
}

/// One row of the stall-breakdown table (`report profile`): a kernel
/// variant's cycles attributed across the closed reason set, summed over
/// the CTA's warps.
#[derive(Debug, Clone)]
pub struct ProfileRow {
    /// Kernel name.
    pub kernel: String,
    /// Mechanism name.
    pub mechanism: String,
    /// Architecture name.
    pub arch: String,
    /// Compiler variant.
    pub variant: String,
    /// Warps in the CTA.
    pub warps: usize,
    /// CTA total (per-warp timeline length; every warp sums to this).
    pub total_cycles: u64,
    /// Cycles attributed per reason, summed over warps.
    pub issue: u64,
    /// Cycles spent blocked at named barriers (all barrier ids).
    pub barrier_wait: u64,
    /// Instruction-cache miss stall cycles.
    pub icache_miss: u64,
    /// Constant-cache replay cycles.
    pub const_replay: u64,
    /// Operand/launch/branch overhead cycles.
    pub overhead: u64,
    /// Idle-after-exit cycles.
    pub idle: u64,
    /// Barrier-wait cycles split by barrier id (index = id).
    pub barrier_wait_by_id: Vec<u64>,
    /// Whether every warp's reasons summed exactly to `total_cycles`.
    pub attribution_ok: bool,
}

/// Aggregate a [`CtaProfile`] into a [`ProfileRow`].
pub fn profile_row(
    kind: Kind,
    mech: &str,
    arch: &GpuArch,
    variant: Variant,
    profile: &CtaProfile,
) -> ProfileRow {
    let totals = profile.totals();
    let mut by_id = totals.barrier_wait.clone();
    while by_id.last() == Some(&0) {
        by_id.pop();
    }
    ProfileRow {
        kernel: kind.name().into(),
        mechanism: mech.into(),
        arch: arch.name.into(),
        variant: variant.name().into(),
        warps: profile.warps.len(),
        total_cycles: profile.total_cycles,
        issue: totals.issue,
        barrier_wait: totals.barrier_wait_total(),
        icache_miss: totals.icache_miss,
        const_replay: totals.const_replay,
        overhead: totals.overhead,
        idle: totals.idle,
        barrier_wait_by_id: by_id,
        attribution_ok: profile.check_attribution().is_ok(),
    }
}

impl ProfileRow {
    /// JSON object for this row (hand-rolled; the build is offline).
    pub fn to_json(&self) -> String {
        let by_id: Vec<String> = self.barrier_wait_by_id.iter().map(|v| v.to_string()).collect();
        format!(
            "{{\"kernel\": {}, \"mechanism\": {}, \"arch\": {}, \"variant\": {}, \
             \"warps\": {}, \"total_cycles\": {}, \"issue\": {}, \"barrier_wait\": {}, \
             \"icache_miss\": {}, \"const_replay\": {}, \"overhead\": {}, \"idle\": {}, \
             \"barrier_wait_by_id\": [{}], \"attribution_ok\": {}}}",
            json_string(&self.kernel),
            json_string(&self.mechanism),
            json_string(&self.arch),
            json_string(&self.variant),
            self.warps,
            self.total_cycles,
            self.issue,
            self.barrier_wait,
            self.icache_miss,
            self.const_replay,
            self.overhead,
            self.idle,
            by_id.join(", "),
            self.attribution_ok,
        )
    }
}

/// Serialize profile rows as a pretty-printed JSON array.
pub fn profile_rows_to_json(rows: &[ProfileRow]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str("  ");
        out.push_str(&r.to_json());
        if i + 1 < rows.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push(']');
    out
}

/// Predict `built`'s performance on `arch` for `grid_points` using the
/// static analytical model ([`singe::perfmodel`]) — no interpretation.
/// Compiled kernels always satisfy the model's barrier-protocol
/// preconditions, so this cannot fail for harness-built kernels.
pub fn predict_built(built: &Built, arch: &GpuArch, grid_points: usize) -> singe::ModelReport {
    singe::perfmodel::predict(&built.kernel, arch, grid_points).expect("compiled kernel predicts")
}

/// Spearman rank correlation between two equal-length samples (average
/// ranks for ties). Returns 1.0 for degenerate inputs (constant series or
/// fewer than two points) — a constant predictor over a constant truth is
/// a perfect rank match for gating purposes.
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "spearman needs paired samples");
    fn ranks(v: &[f64]) -> Vec<f64> {
        let n = v.len();
        let mut idx: Vec<usize> = (0..n).collect();
        idx.sort_by(|&a, &b| v[a].partial_cmp(&v[b]).expect("finite samples"));
        let mut r = vec![0.0; n];
        let mut i = 0;
        while i < n {
            let mut j = i;
            while j + 1 < n && v[idx[j + 1]] == v[idx[i]] {
                j += 1;
            }
            let avg = (i + j) as f64 / 2.0 + 1.0;
            for k in i..=j {
                r[idx[k]] = avg;
            }
            i = j + 1;
        }
        r
    }
    if xs.len() < 2 {
        return 1.0;
    }
    let rx = ranks(xs);
    let ry = ranks(ys);
    let n = xs.len() as f64;
    let mx = rx.iter().sum::<f64>() / n;
    let my = ry.iter().sum::<f64>() / n;
    let mut num = 0.0;
    let mut dx = 0.0;
    let mut dy = 0.0;
    for i in 0..xs.len() {
        num += (rx[i] - mx) * (ry[i] - my);
        dx += (rx[i] - mx) * (rx[i] - mx);
        dy += (ry[i] - my) * (ry[i] - my);
    }
    if dx == 0.0 || dy == 0.0 {
        return 1.0;
    }
    num / (dx * dy).sqrt()
}

/// One row of the model-accuracy table (`report model`): the analytical
/// model's prediction next to the simulator's measurement for one kernel
/// × variant × architecture.
#[derive(Debug, Clone)]
pub struct ModelRow {
    /// Kernel name.
    pub kernel: String,
    /// Mechanism name.
    pub mechanism: String,
    /// Architecture name.
    pub arch: String,
    /// Compiler variant.
    pub variant: String,
    /// Warps in the CTA.
    pub warps: usize,
    /// Grid points the seconds are extrapolated to.
    pub grid_points: usize,
    /// Model-predicted wall-clock seconds for the grid.
    pub predicted_seconds: f64,
    /// Simulated (probe + timing model) seconds for the grid.
    pub simulated_seconds: f64,
    /// predicted / simulated.
    pub ratio: f64,
    /// Model-predicted CTA cycles (per-warp timeline length).
    pub predicted_cycles: u64,
    /// Profiler-measured CTA cycles from the interpreted probe.
    pub profiled_cycles: u64,
}

impl ModelRow {
    /// JSON object for this row (hand-rolled; the build is offline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"kernel\": {}, \"mechanism\": {}, \"arch\": {}, \"variant\": {}, \
             \"warps\": {}, \"grid_points\": {}, \"predicted_seconds\": {}, \
             \"simulated_seconds\": {}, \"ratio\": {}, \"predicted_cycles\": {}, \
             \"profiled_cycles\": {}}}",
            json_string(&self.kernel),
            json_string(&self.mechanism),
            json_string(&self.arch),
            json_string(&self.variant),
            self.warps,
            self.grid_points,
            json_f64(self.predicted_seconds),
            json_f64(self.simulated_seconds),
            json_f64(self.ratio),
            self.predicted_cycles,
            self.profiled_cycles,
        )
    }
}

/// Accuracy gate for `target/model.json`: Spearman rank correlation
/// between predicted and simulated seconds must be at least this.
pub const MODEL_GATE_SPEARMAN: f64 = 0.8;

/// Accuracy gate: every row's predicted/simulated ratio must lie in
/// `[1/MODEL_GATE_RATIO, MODEL_GATE_RATIO]`.
pub const MODEL_GATE_RATIO: f64 = 2.0;

/// Serialize the model-accuracy report: a summary object (Spearman, ratio
/// envelope, gate verdict) followed by the per-kernel rows.
pub fn model_report_json(rows: &[ModelRow]) -> String {
    let preds: Vec<f64> = rows.iter().map(|r| r.predicted_seconds).collect();
    let sims: Vec<f64> = rows.iter().map(|r| r.simulated_seconds).collect();
    let rho = spearman(&preds, &sims);
    let ratio_min = rows.iter().map(|r| r.ratio).fold(f64::INFINITY, f64::min);
    let ratio_max = rows.iter().map(|r| r.ratio).fold(f64::NEG_INFINITY, f64::max);
    let gate_ok = !rows.is_empty()
        && rho >= MODEL_GATE_SPEARMAN
        && ratio_min >= 1.0 / MODEL_GATE_RATIO
        && ratio_max <= MODEL_GATE_RATIO;
    let mut out = String::from("{\n  \"summary\": ");
    out.push_str(&format!(
        "{{\"rows\": {}, \"spearman\": {}, \"ratio_min\": {}, \"ratio_max\": {}, \
         \"gate_spearman\": {}, \"gate_ratio\": {}, \"gate_ok\": {}}},\n",
        rows.len(),
        json_f64(rho),
        json_f64(if ratio_min.is_finite() { ratio_min } else { 0.0 }),
        json_f64(if ratio_max.is_finite() { ratio_max } else { 0.0 }),
        json_f64(MODEL_GATE_SPEARMAN),
        json_f64(MODEL_GATE_RATIO),
        gate_ok,
    ));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str("    ");
        out.push_str(&r.to_json());
        if i + 1 < rows.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}");
    out
}

/// One output row (a point in a paper figure).
#[derive(Debug, Clone)]
pub struct Row {
    /// Figure/experiment id ("fig11", ...).
    pub figure: String,
    /// Kernel name.
    pub kernel: String,
    /// Mechanism name.
    pub mechanism: String,
    /// Architecture name.
    pub arch: String,
    /// Compiler variant.
    pub variant: String,
    /// Grid edge (points = edge^3); warp count for Figure 9; constant
    /// registers per thread for Figure 10 (a compile-time stat, so its
    /// rows leave the timing fields vacuous).
    pub x: usize,
    /// Grid points per second (the paper's throughput metric).
    pub points_per_sec: f64,
    /// Achieved GFLOPS.
    pub gflops: f64,
    /// Achieved bandwidth GB/s.
    pub bandwidth_gbs: f64,
    /// Spill bytes per thread.
    pub spilled_bytes: usize,
    /// Limiting resource per the timing model.
    pub limiter: String,
    /// Simulated seconds.
    pub seconds: f64,
}

/// Produce a row from a report.
pub fn row(figure: &str, kind: Kind, mech: &str, arch: &GpuArch, variant: Variant, x: usize, r: &SimReport) -> Row {
    Row {
        figure: figure.into(),
        kernel: kind.name().into(),
        mechanism: mech.into(),
        arch: arch.name.into(),
        variant: variant.name().into(),
        x,
        points_per_sec: r.points_per_sec,
        gflops: r.gflops,
        bandwidth_gbs: r.bandwidth_gbs,
        spilled_bytes: r.spilled_bytes_per_thread,
        limiter: r.limiter.into(),
        seconds: r.seconds,
    }
}

impl Row {
    /// JSON object for this row (the build is offline, so serialization
    /// is hand-rolled rather than serde-derived).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"figure\": {}, \"kernel\": {}, \"mechanism\": {}, \"arch\": {}, \
             \"variant\": {}, \"x\": {}, \"points_per_sec\": {}, \"gflops\": {}, \
             \"bandwidth_gbs\": {}, \"spilled_bytes\": {}, \"limiter\": {}, \"seconds\": {}}}",
            json_string(&self.figure),
            json_string(&self.kernel),
            json_string(&self.mechanism),
            json_string(&self.arch),
            json_string(&self.variant),
            self.x,
            json_f64(self.points_per_sec),
            json_f64(self.gflops),
            json_f64(self.bandwidth_gbs),
            self.spilled_bytes,
            json_string(&self.limiter),
            json_f64(self.seconds),
        )
    }
}

/// Serialize a slice of rows as a pretty-printed JSON array.
pub fn rows_to_json(rows: &[Row]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str("  ");
        out.push_str(&r.to_json());
        if i + 1 < rows.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push(']');
    out
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

/// The paper's three grid sizes.
pub const GRIDS: [usize; 3] = [32, 64, 128];

#[cfg(test)]
mod tests {
    use super::*;
    use chemkin::synth;

    #[test]
    fn viscosity_warp_choice_divides_species() {
        assert_eq!(viscosity_warps(30), 10);
        assert_eq!(viscosity_warps(52), 13);
        assert_eq!(viscosity_warps(31), 8); // prime fallback
    }

    #[test]
    fn spearman_matches_hand_computed_cases() {
        // Perfect monotone agreement, reversal, and a tie-heavy case.
        assert_eq!(spearman(&[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0]), 1.0);
        assert_eq!(spearman(&[1.0, 2.0, 3.0], &[30.0, 20.0, 10.0]), -1.0);
        let rho = spearman(&[1.0, 1.0, 2.0, 3.0], &[5.0, 5.0, 6.0, 7.0]);
        assert!((rho - 1.0).abs() < 1e-12, "ties share average ranks: {rho}");
        // Degenerate: constant series rank-match by convention.
        assert_eq!(spearman(&[1.0, 1.0], &[2.0, 3.0]), 1.0);
    }

    #[test]
    fn model_report_json_gates_on_rank_and_ratio() {
        let row = |p: f64, s: f64| ModelRow {
            kernel: "k".into(),
            mechanism: "m".into(),
            arch: "a".into(),
            variant: "v".into(),
            warps: 4,
            grid_points: 64,
            predicted_seconds: p,
            simulated_seconds: s,
            ratio: p / s,
            predicted_cycles: 100,
            profiled_cycles: 100,
        };
        let good = model_report_json(&[row(1.0, 1.1), row(2.0, 1.9), row(3.0, 3.2)]);
        assert!(good.contains("\"gate_ok\": true"), "{good}");
        // A 3x over-prediction violates the ratio band even though ranks
        // still agree.
        let bad = model_report_json(&[row(1.0, 1.1), row(6.0, 2.0), row(9.0, 3.2)]);
        assert!(bad.contains("\"gate_ok\": false"), "{bad}");
        assert!(model_report_json(&[]).contains("\"gate_ok\": false"));
    }

    #[test]
    fn small_mech_builds_all_variants() {
        let m = synth::via_text(&synth::SynthConfig {
            name: "bh".into(),
            n_species: 8,
            n_reactions: 10,
            n_qssa: 2,
            n_stiff: 2,
            seed: 3,
        });
        let arch = GpuArch::kepler_k20c();
        for kind in [Kind::Viscosity, Kind::Diffusion, Kind::Chemistry] {
            for variant in [Variant::Baseline, Variant::WarpSpecialized] {
                let mut opts = ws_options(kind, m.n_transported(), &arch);
                opts.warps = opts.warps.min(4);
                let b = build_with_options(kind, &m, &arch, variant, &opts).unwrap();
                let r = timing_report(&b, &arch, 32 * 32 * 32);
                assert!(r.points_per_sec > 0.0, "{kind:?} {variant:?}");
            }
        }
    }
}
