//! Regenerates every table and figure of the paper as text (and JSON).
//!
//! Usage: `report [figure]` where figure is one of
//! `mechanisms fig9 fig10 fig11 fig12 fig13 fig14 fig15 fig16 gflops
//! ablate-barriers spills verify all` (default `all`). Results also land
//! in `target/report.json`. `verify` runs the independent schedule
//! verifier over every kernel × mechanism × architecture × compiler
//! combination and exits non-zero on any violation.

use chemkin::synth;
use chemkin::Mechanism;
use gpu_sim::arch::GpuArch;
use singe::config::CompileOptions;
use singe_bench::*;

const FIGURES: &[&str] = &[
    "mechanisms", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
    "fig15", "fig16", "gflops", "ablate-barriers", "spills", "verify", "all",
];

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    if !FIGURES.contains(&which.as_str()) {
        eprintln!("unknown figure '{which}'; expected one of: {}", FIGURES.join(" "));
        std::process::exit(2);
    }
    let dme = synth::dme();
    let heptane = synth::heptane();
    let archs = [GpuArch::fermi_c2070(), GpuArch::kepler_k20c()];
    let mut rows: Vec<Row> = Vec::new();

    if matches!(which.as_str(), "mechanisms" | "all") {
        figure3(&[&dme, &heptane]);
    }
    if matches!(which.as_str(), "fig9" | "all") {
        fig9(&dme, &archs[1], &mut rows);
    }
    if matches!(which.as_str(), "fig10" | "all") {
        fig10(&[&dme, &heptane], &archs[1]);
    }
    for (fig, kind, mech) in [
        ("fig11", Kind::Viscosity, &dme),
        ("fig12", Kind::Viscosity, &heptane),
        ("fig13", Kind::Diffusion, &dme),
        ("fig14", Kind::Diffusion, &heptane),
        ("fig15", Kind::Chemistry, &dme),
        ("fig16", Kind::Chemistry, &heptane),
    ] {
        if matches!(which.as_str(), f if f == fig || f == "all") {
            throughput_figure(fig, kind, mech, &archs, &mut rows);
        }
    }
    if matches!(which.as_str(), "gflops" | "all") {
        gflops_analysis(&dme, &archs, &mut rows);
    }
    if matches!(which.as_str(), "ablate-barriers" | "all") {
        ablate_barriers(&dme, &archs, &mut rows);
    }
    if matches!(which.as_str(), "spills" | "all") {
        spills(&heptane, &archs);
    }
    if matches!(which.as_str(), "verify" | "all") {
        verify_all(&[&dme, &heptane], &archs);
    }

    if !rows.is_empty() {
        let json = rows_to_json(&rows);
        std::fs::create_dir_all("target").ok();
        std::fs::write("target/report.json", json).expect("write report.json");
        eprintln!("\n[wrote {} rows to target/report.json]", rows.len());
    }
}

/// Figure 3: mechanism characteristics table.
fn figure3(mechs: &[&Mechanism]) {
    println!("== Figure 3: chemical mechanisms ==");
    println!("{:<10} {:>9} {:>8} {:>5} {:>6}", "Mechanism", "Reactions", "Species", "QSSA", "Stiff");
    for m in mechs {
        let c = m.characteristics();
        println!(
            "{:<10} {:>9} {:>8} {:>5} {:>6}",
            m.name, c.reactions, c.species, c.qssa, c.stiff
        );
    }
    println!();
}

/// Figure 9: naïve vs overlaid codegen over warps/CTA (DME viscosity,
/// Kepler, 64^3).
fn fig9(dme: &Mechanism, arch: &GpuArch, rows: &mut Vec<Row>) {
    println!("== Figure 9: warp-specialized code generation (DME viscosity, {}) ==", arch.name);
    println!("{:>6} {:>18} {:>18} {:>8}", "warps", "naive Mpts/s", "singe Mpts/s", "ratio");
    let grid = 64 * 64 * 64;
    for warps in [2usize, 4, 6, 8, 10, 12, 14, 16] {
        let opts = CompileOptions {
            warps,
            point_iters: 4,
            placement: singe::config::Placement::Store,
            ..Default::default()
        };
        let naive = build_with_options(Kind::Viscosity, dme, arch, Variant::Naive, &opts);
        let singe_v =
            build_with_options(Kind::Viscosity, dme, arch, Variant::WarpSpecialized, &opts);
        let (n_r, s_r) = match (naive, singe_v) {
            (Ok(n), Ok(s)) => (timing_report(&n, arch, grid), timing_report(&s, arch, grid)),
            _ => {
                println!("{warps:>6}  (configuration did not compile)");
                continue;
            }
        };
        println!(
            "{:>6} {:>18.2} {:>18.2} {:>8.2}",
            warps,
            n_r.points_per_sec / 1e6,
            s_r.points_per_sec / 1e6,
            s_r.points_per_sec / n_r.points_per_sec
        );
        rows.push(row("fig9", Kind::Viscosity, "dme", arch, Variant::Naive, warps, &n_r));
        rows.push(row("fig9", Kind::Viscosity, "dme", arch, Variant::WarpSpecialized, warps, &s_r));
    }
    println!();
}

/// Figure 10: constant registers per thread on Kepler.
fn fig10(mechs: &[&Mechanism], arch: &GpuArch) {
    println!("== Figure 10: constant registers per thread ({}) ==", arch.name);
    println!("{:<10} {:>10} {:>10} {:>10}", "Mechanism", "Viscosity", "Diffusion", "Chemistry");
    for m in mechs {
        let mut cells = Vec::new();
        for kind in [Kind::Viscosity, Kind::Diffusion, Kind::Chemistry] {
            let b = build(kind, m, arch, Variant::WarpSpecialized);
            cells.push(b.stats.map(|s| s.const_regs_per_thread).unwrap_or(0));
        }
        println!("{:<10} {:>10} {:>10} {:>10}", m.name, cells[0], cells[1], cells[2]);
    }
    println!();
}

/// Figures 11-16: baseline vs warp-specialized throughput on both
/// architectures across the three grid sizes.
fn throughput_figure(
    fig: &str,
    kind: Kind,
    mech: &Mechanism,
    archs: &[GpuArch],
    rows: &mut Vec<Row>,
) {
    println!("== {}: {} performance, {} mechanism ==", fig, kind.name(), mech.name);
    for arch in archs {
        let base = build(kind, mech, arch, Variant::Baseline);
        let ws = build(kind, mech, arch, Variant::WarpSpecialized);
        println!("{}:", arch.name);
        println!(
            "  {:>6} {:>16} {:>16} {:>8}   (limiters: base={}, ws={})",
            "grid",
            "baseline Mpts/s",
            "ws Mpts/s",
            "speedup",
            timing_report(&base, arch, 32768).limiter,
            timing_report(&ws, arch, 32768).limiter,
        );
        for edge in GRIDS {
            let pts = edge * edge * edge;
            let rb = timing_report(&base, arch, pts);
            let rw = timing_report(&ws, arch, pts);
            println!(
                "  {:>4}^3 {:>16.3} {:>16.3} {:>7.2}x",
                edge,
                rb.points_per_sec / 1e6,
                rw.points_per_sec / 1e6,
                rw.points_per_sec / rb.points_per_sec
            );
            rows.push(row(fig, kind, &mech.name, arch, Variant::Baseline, edge, &rb));
            rows.push(row(fig, kind, &mech.name, arch, Variant::WarpSpecialized, edge, &rw));
        }
    }
    println!();
}

/// §6.1 GFLOPS analysis, including the constants-in-registers exponential
/// ablation (the paper measured ~750 GFLOPS with it on Kepler).
fn gflops_analysis(dme: &Mechanism, archs: &[GpuArch], rows: &mut Vec<Row>) {
    println!("== Section 6.1: DME viscosity GFLOPS analysis ==");
    println!("(paper: Fermi base/ws = 197.9/257.3, Kepler = 220.6/617.7, reg-exp ablation ~750)");
    let grid = 128 * 128 * 128;
    for arch in archs {
        let base = build(Kind::Viscosity, dme, arch, Variant::Baseline);
        let ws = build(Kind::Viscosity, dme, arch, Variant::WarpSpecialized);
        let rb = timing_report(&base, arch, grid);
        let rw = timing_report(&ws, arch, grid);
        // Ablation: exp-series constants kept in registers.
        let mut opts = ws_options(Kind::Viscosity, dme.n_transported(), arch);
        opts.exp_const_from_registers = true;
        let abl = build_with_options(Kind::Viscosity, dme, arch, Variant::WarpSpecialized, &opts)
            .expect("ablation compiles");
        let ra = timing_report(&abl, arch, grid);
        println!(
            "{:<22} baseline {:>7.1} GF | ws {:>7.1} GF | ws+reg-exp {:>7.1} GF (peak {:.0}, practical {:.0})",
            arch.name,
            rb.gflops,
            rw.gflops,
            ra.gflops,
            arch.peak_dp_gflops(),
            arch.practical_dp_gflops()
        );
        rows.push(row("s6.1", Kind::Viscosity, "dme", arch, Variant::Baseline, 128, &rb));
        rows.push(row("s6.1", Kind::Viscosity, "dme", arch, Variant::WarpSpecialized, 128, &rw));
        rows.push(row("s6.1-regexp", Kind::Viscosity, "dme", arch, Variant::WarpSpecialized, 128, &ra));
    }
    println!();
}

/// §6.2 ablation: unsafely removing the diffusion barriers (timing only).
fn ablate_barriers(dme: &Mechanism, archs: &[GpuArch], rows: &mut Vec<Row>) {
    println!("== Section 6.2: diffusion barrier-overhead ablation (DME) ==");
    println!("(paper: 212.8 -> ~250 GFLOPS on Fermi, 526.6 -> ~625 on Kepler)");
    let grid = 128 * 128 * 128;
    for arch in archs {
        let opts = ws_options(Kind::Diffusion, dme.n_transported(), arch);
        let with = build_with_options(Kind::Diffusion, dme, arch, Variant::WarpSpecialized, &opts)
            .expect("compiles");
        let mut opts2 = opts.clone();
        opts2.unsafe_remove_barriers = true;
        let without =
            build_with_options(Kind::Diffusion, dme, arch, Variant::WarpSpecialized, &opts2)
                .expect("compiles");
        let r1 = timing_report(&with, arch, grid);
        // The barrier-free kernel computes garbage; only its timing matters.
        let r2 = timing_report(&without, arch, grid);
        println!(
            "{:<22} with barriers {:>7.1} GF | without {:>7.1} GF ({:+.1}%)",
            arch.name,
            r1.gflops,
            r2.gflops,
            (r2.gflops / r1.gflops - 1.0) * 100.0
        );
        rows.push(row("s6.2", Kind::Diffusion, "dme", arch, Variant::WarpSpecialized, 0, &r1));
        rows.push(row("s6.2-nobar", Kind::Diffusion, "dme", arch, Variant::WarpSpecialized, 1, &r2));
    }
    println!();
}

/// Independent schedule verification of every kernel the harness can
/// build, plus the §6.2 ablation rejection check.
fn verify_all(mechs: &[&Mechanism], archs: &[GpuArch]) {
    println!("== Schedule verification (kernel x mechanism x arch x compiler) ==");
    let mut failures = 0usize;
    for mech in mechs {
        for arch in archs {
            for kind in [Kind::Viscosity, Kind::Diffusion, Kind::Chemistry] {
                for variant in [Variant::Baseline, Variant::WarpSpecialized, Variant::Naive] {
                    let opts = ws_options(kind, mech.n_transported(), arch);
                    let label = format!(
                        "{:<10} {:<10} {:<12} {:<16}",
                        mech.name,
                        kind.name(),
                        arch.name.split_whitespace().last().unwrap_or(arch.name),
                        variant.name()
                    );
                    let built = match build_with_options(kind, mech, arch, variant, &opts) {
                        Ok(b) => b,
                        Err(singe::CompileError::ResourceExhausted(m)) => {
                            println!("{label} skipped (does not fit: {m})");
                            continue;
                        }
                        Err(e) => {
                            println!("{label} FAILED to compile: {e}");
                            failures += 1;
                            continue;
                        }
                    };
                    match singe::verify::verify_kernel(&built.kernel, arch) {
                        Ok(r) => println!(
                            "{label} ok ({} barrier ops, {} generations, {} shared accesses)",
                            r.barrier_ops, r.generations, r.shared_accesses
                        ),
                        Err(violations) => {
                            println!("{label} VIOLATIONS:");
                            for v in &violations {
                                println!("    {v}");
                            }
                            failures += 1;
                        }
                    }
                }
            }
        }
    }
    // The §6.2 unsafe barrier-removal ablation must be flagged under
    // VerifyLevel::Strict (Basic deliberately waives it for the timing
    // study).
    let mut opts = ws_options(Kind::Diffusion, mechs[0].n_transported(), &archs[0]);
    opts.unsafe_remove_barriers = true;
    opts.verify = singe::VerifyLevel::Strict;
    match build_with_options(Kind::Diffusion, mechs[0], &archs[0], Variant::WarpSpecialized, &opts)
    {
        Err(singe::CompileError::Verification(_)) => {
            println!("s6.2 barrier-removal ablation: rejected by VerifyLevel::Strict (expected)");
        }
        Ok(_) => {
            println!("s6.2 barrier-removal ablation: NOT flagged under Strict — verifier gap!");
            failures += 1;
        }
        Err(e) => {
            println!("s6.2 barrier-removal ablation: unexpected error {e}");
            failures += 1;
        }
    }
    if failures > 0 {
        eprintln!("\nschedule verification: {failures} failure(s)");
        std::process::exit(1);
    }
    println!();
}

/// §6.3: chemistry spill and bandwidth analysis (heptane).
fn spills(heptane: &Mechanism, archs: &[GpuArch]) {
    println!("== Section 6.3: heptane chemistry working-set analysis ==");
    println!("(paper: baseline spills 8736/8500 B per thread; ws spills 276/44 B;");
    println!(" baseline is local-bandwidth bound at 85/100 GB/s, ws shared-latency bound)");
    let grid = 64 * 64 * 64;
    for arch in archs {
        let base = build(Kind::Chemistry, heptane, arch, Variant::Baseline);
        let ws = build(Kind::Chemistry, heptane, arch, Variant::WarpSpecialized);
        let rb = timing_report(&base, arch, grid);
        let rw = timing_report(&ws, arch, grid);
        println!(
            "{:<22} baseline: {:>6} B spilled, {:>6.1} GB/s, limiter {:<16} | ws: {:>4} B spilled, limiter {}",
            arch.name,
            rb.spilled_bytes_per_thread,
            rb.bandwidth_gbs,
            rb.limiter,
            rw.spilled_bytes_per_thread,
            rw.limiter
        );
    }
    println!();
}
