//! Regenerates every table and figure of the paper as text (and JSON).
//!
//! Usage: `report [figure] [--jobs N]` where figure is one of
//! `mechanisms fig9 fig10 fig11 fig12 fig13 fig14 fig15 fig16 gflops
//! ablate-barriers spills verify profile all` (default `all`). Results
//! also land in `target/report.json`. `verify` runs the independent
//! schedule verifier over every kernel × mechanism × architecture ×
//! compiler combination and exits non-zero on any violation. `profile`
//! runs the per-warp cycle-attribution profiler over every kernel ×
//! variant × architecture, prints the paper-style stall breakdown,
//! writes `target/profile.json`, and exports a Chrome trace to
//! `target/profile_trace.json`; it is deliberately NOT part of `all` so
//! `BENCH_report.json` wall-clock stays comparable across runs. `model`
//! compares the static analytical performance model against the simulator
//! for every kernel × variant × architecture, writes `target/model.json`,
//! and exits non-zero if the accuracy gate (Spearman ≥ 0.8, ratio within
//! 2x) fails; like `profile` it runs solo, never under `all`.
//! `engine-bench` times the segment-compiled engine against the legacy
//! interpreter on one warp-specialized DME viscosity CTA and records
//! lanes/second into the `engine` line of `BENCH_report.json` (preserved
//! across `report all` rewrites); it too runs solo. `serve-bench`
//! measures the compile-farm service layer — cold vs warm (post-restart)
//! compile latency, sustained compiles/second across a fleet of synth
//! mechanisms, cache hit rate, and in-flight dedup — and records the
//! `serve` line of `BENCH_report.json` (also carried across rewrites);
//! `--kernel`/`--arch` select the primary combination (typed ids: an
//! unknown name lists the valid ones). `pipeline` sweeps the software
//! pipeline depth K=1..4 for the warp-specialized DME viscosity kernel on
//! the Hopper-class architecture, records the per-CTA cycle trajectory as
//! the `pipeline` line of `BENCH_report.json` (also carried across
//! rewrites), and exits non-zero unless some K>1 beats the single-buffered
//! schedule — the simulator is deterministic, so this is an exact gate.
//!
//! Figures are computed on a worker pool (`--jobs`, `SINGE_JOBS`, default
//! = available parallelism) but every figure renders into its own buffer
//! and the buffers are printed in input order, so stdout and
//! `target/report.json` are byte-identical at any worker count. Wall-clock
//! per figure goes to **stderr**, and `report all` additionally writes a
//! `BENCH_report.json` at the repo root to track the perf trajectory.

use std::fmt::Write as _;
use std::time::Instant;

use chemkin::synth;
use chemkin::Mechanism;
use gpu_sim::arch::GpuArch;
use singe::config::CompileOptions;
use singe_bench::*;

const FIGURES: &[&str] = &[
    "mechanisms", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
    "fig15", "fig16", "gflops", "ablate-barriers", "spills", "verify",
    "profile", "model", "engine-bench", "serve-bench", "pipeline",
    "search", "all",
];

/// Wall-clock of the serial `report all` before the fast-path/memoization/
/// pool overhaul, measured on the CI machine. `BENCH_report.json` records
/// the current run against it; override with `SINGE_BASELINE_SECONDS` when
/// re-baselining on different hardware.
const PRE_PR_SEQUENTIAL_SECONDS: f64 = 4.297;

/// One figure's rendered output: stdout text, JSON rows, and the number of
/// verification failures (non-zero only for `verify`).
struct FigOutput {
    text: String,
    rows: Vec<Row>,
    failures: usize,
}

fn main() {
    let mut which: Option<String> = None;
    let mut jobs: Option<usize> = None;
    // `serve-bench` selectors; typed parses so a typo prints the valid
    // ids instead of silently benchmarking the wrong thing.
    let mut sb_kernel = KernelId::Viscosity;
    let mut sb_arch = ArchId::Kepler;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--jobs" {
            let v = args.next().unwrap_or_default();
            match v.parse::<usize>() {
                Ok(n) if n >= 1 => jobs = Some(n),
                _ => {
                    eprintln!("--jobs expects a positive integer, got '{v}'");
                    std::process::exit(2);
                }
            }
        } else if a == "--kernel" {
            match args.next().unwrap_or_default().parse::<KernelId>() {
                Ok(k) => sb_kernel = k,
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(2);
                }
            }
        } else if a == "--arch" {
            match args.next().unwrap_or_default().parse::<ArchId>() {
                Ok(a) => sb_arch = a,
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(2);
                }
            }
        } else if which.is_none() {
            which = Some(a);
        } else {
            eprintln!("unexpected argument '{a}'");
            std::process::exit(2);
        }
    }
    let which = which.unwrap_or_else(|| "all".into());
    if !FIGURES.contains(&which.as_str()) {
        eprintln!("unknown figure '{which}'; expected one of: {}", FIGURES.join(" "));
        std::process::exit(2);
    }
    let jobs = jobs.unwrap_or_else(singe::pool::default_jobs);

    let dme = synth::dme();
    let heptane = synth::heptane();
    let archs = [GpuArch::fermi_c2070(), GpuArch::kepler_k20c(), GpuArch::hopper()];

    // `profile` runs solo (never under `all`): its probe launches would
    // shift the wall-clock figures `BENCH_report.json` tracks.
    if which == "profile" {
        let failures = profile_report(&dme, &archs);
        if failures > 0 {
            eprintln!("\ncycle attribution: {failures} failure(s)");
            std::process::exit(1);
        }
        return;
    }

    // `model` also runs solo: it shares `profile`'s probe launches and
    // would likewise shift the `BENCH_report.json` wall-clock figures.
    if which == "model" {
        if !model_report(&dme, &archs) {
            eprintln!("\nmodel accuracy gate FAILED");
            std::process::exit(1);
        }
        return;
    }

    // `engine-bench` also runs solo: it is a throughput probe of the
    // execution engine itself, not a paper figure, and must not shift the
    // figure wall-clocks `BENCH_report.json` tracks.
    if which == "engine-bench" {
        engine_bench_report(&dme, &archs);
        return;
    }

    // `serve-bench` also runs solo: it measures the compile-farm service
    // layer, not a paper figure.
    if which == "serve-bench" {
        serve_bench_report(sb_kernel, sb_arch, jobs);
        return;
    }

    // `pipeline` also runs solo: its profiled depth-sweep launches would
    // shift the figure wall-clocks `BENCH_report.json` tracks.
    if which == "pipeline" {
        if !pipeline_report(&dme) {
            eprintln!("\npipeline depth sweep: no K>1 win over the single-buffered schedule");
            std::process::exit(1);
        }
        return;
    }

    // `search` also runs solo: the model-driven schedule search compiles
    // hundreds of candidates and would shift the figure wall-clocks
    // `BENCH_report.json` tracks.
    if which == "search" {
        if !search_report(&dme, &archs, jobs) {
            eprintln!("\nschedule search: gate FAILED (win/simulation-budget/verification)");
            std::process::exit(1);
        }
        return;
    }

    // Every figure as a (name, render) pair; rendering is pure with respect
    // to stdout so figures can run on the pool in any order.
    type FigFn<'a> = Box<dyn Fn() -> FigOutput + Sync + 'a>;
    let mut figs: Vec<(&'static str, FigFn<'_>)> = Vec::new();
    let selected = |name: &str| which == name || which == "all";
    if selected("mechanisms") {
        figs.push(("mechanisms", Box::new(|| figure3(&[&dme, &heptane]))));
    }
    if selected("fig9") {
        figs.push(("fig9", Box::new(|| fig9(&dme, &archs[1], jobs))));
    }
    if selected("fig10") {
        figs.push(("fig10", Box::new(|| fig10(&[&dme, &heptane], &archs[1]))));
    }
    for (fig, kind, mech) in [
        ("fig11", Kind::Viscosity, &dme),
        ("fig12", Kind::Viscosity, &heptane),
        ("fig13", Kind::Diffusion, &dme),
        ("fig14", Kind::Diffusion, &heptane),
        ("fig15", Kind::Chemistry, &dme),
        ("fig16", Kind::Chemistry, &heptane),
    ] {
        if selected(fig) {
            let archs = &archs;
            figs.push((fig, Box::new(move || throughput_figure(fig, kind, mech, archs, jobs))));
        }
    }
    if selected("gflops") {
        figs.push(("gflops", Box::new(|| gflops_analysis(&dme, &archs))));
    }
    if selected("ablate-barriers") {
        figs.push(("ablate-barriers", Box::new(|| ablate_barriers(&dme, &archs))));
    }
    if selected("spills") {
        figs.push(("spills", Box::new(|| spills(&heptane, &archs))));
    }
    if selected("verify") {
        figs.push(("verify", Box::new(|| verify_all(&[&dme, &heptane], &archs, jobs))));
    }

    let t_all = Instant::now();
    let results: Vec<(FigOutput, f64)> = singe::pool::run_ordered(jobs, figs.len(), |i| {
        let t0 = Instant::now();
        let out = figs[i].1();
        (out, t0.elapsed().as_secs_f64())
    });
    let total_seconds = t_all.elapsed().as_secs_f64();

    // Commit output in input order: stdout is deterministic at any --jobs.
    let mut rows: Vec<Row> = Vec::new();
    let mut failures = 0usize;
    let mut timings: Vec<(&'static str, f64, usize)> = Vec::new();
    for ((name, _), (out, seconds)) in figs.iter().zip(&results) {
        print!("{}", out.text);
        failures += out.failures;
        timings.push((name, *seconds, out.rows.len()));
        rows.extend(out.rows.iter().cloned());
    }

    if !rows.is_empty() {
        let json = rows_to_json(&rows);
        std::fs::create_dir_all("target").ok();
        std::fs::write("target/report.json", json).expect("write report.json");
        eprintln!("\n[wrote {} rows to target/report.json]", rows.len());
    }

    // Wall-clock summary on stderr (stdout stays byte-comparable).
    eprintln!("\n[timing: jobs={jobs}]");
    for (name, seconds, n_rows) in &timings {
        eprintln!("[  {name:<16} {seconds:8.3}s  {n_rows:>3} rows]");
    }
    eprintln!("[  {:<16} {total_seconds:8.3}s]", "total");

    // SINGE_BENCH_JSON=0 keeps wall-clock bookkeeping out of runs whose
    // outputs are compared byte-for-byte (the determinism test).
    if which == "all" && std::env::var("SINGE_BENCH_JSON").as_deref() != Ok("0") {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_report.json");
        let prior = std::fs::read_to_string(path).ok();
        let bench = bench_report_json(jobs, total_seconds, &timings, prior.as_deref());
        match std::fs::write(path, bench) {
            Ok(()) => eprintln!("[wrote {path}]"),
            Err(e) => eprintln!("[could not write {path}: {e}]"),
        }
    }

    if failures > 0 {
        eprintln!("\nschedule verification: {failures} failure(s)");
        std::process::exit(1);
    }
}

/// Render `BENCH_report.json`: current wall-clock vs the recorded pre-PR
/// sequential baseline, plus a `runs` history keyed by worker count.
///
/// Each `runs` entry is one line of JSON. `prior` is the previous file's
/// contents (if any): its entries for *other* job counts are kept, so one
/// `report all --jobs 1` followed by `--jobs 8` leaves both timings on
/// record (the CI smoke job regresses against the slowest committed run).
fn bench_report_json(
    jobs: usize,
    total_seconds: f64,
    timings: &[(&'static str, f64, usize)],
    prior: Option<&str>,
) -> String {
    let baseline = std::env::var("SINGE_BASELINE_SECONDS")
        .ok()
        .and_then(|v| v.trim().parse::<f64>().ok())
        .filter(|v| v.is_finite() && *v > 0.0)
        .unwrap_or(PRE_PR_SEQUENTIAL_SECONDS);
    // Carry forward prior runs with a different `jobs` value (line-based:
    // every runs entry this function ever wrote is a single line starting
    // with `{"jobs": N,`).
    let mut runs: Vec<(usize, String)> = Vec::new();
    for line in prior.unwrap_or("").lines() {
        let entry = line.trim().trim_end_matches(',');
        if let Some(rest) = entry.strip_prefix("{\"jobs\": ") {
            if let Some(j) = rest.split(',').next().and_then(|v| v.parse::<usize>().ok()) {
                if j != jobs && entry.ends_with('}') {
                    runs.push((j, entry.to_string()));
                }
            }
        }
    }
    runs.push((
        jobs,
        format!(
            "{{\"jobs\": {jobs}, \"total_seconds\": {total_seconds:.3}, \
             \"speedup_vs_pre_pr\": {:.2}}}",
            baseline / total_seconds
        ),
    ));
    runs.sort_by_key(|(j, _)| *j);

    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"jobs\": {jobs},");
    let _ = writeln!(out, "  \"total_seconds\": {total_seconds:.3},");
    let _ = writeln!(out, "  \"pre_pr_sequential_seconds\": {baseline:.3},");
    let _ = writeln!(out, "  \"speedup_vs_pre_pr\": {:.2},", baseline / total_seconds);
    // Carry the solo-benchmark entries forward: like every `runs` entry,
    // each is a single line this binary wrote (`"engine": {...}` from
    // `report engine-bench`, `"serve": {...}` from `report serve-bench`,
    // `"pipeline": {...}` from `report pipeline`, `"search": {...}` from
    // `report search`).
    if let Some(prior) = prior {
        for key in ["\"engine\": {", "\"serve\": {", "\"pipeline\": {", "\"search\": {"] {
            for line in prior.lines() {
                let entry = line.trim().trim_end_matches(',');
                if entry.starts_with(key) && entry.ends_with('}') {
                    let _ = writeln!(out, "  {entry},");
                    break;
                }
            }
        }
    }
    out.push_str("  \"runs\": [\n");
    for (i, (_, entry)) in runs.iter().enumerate() {
        let _ = write!(out, "    {entry}");
        out.push_str(if i + 1 < runs.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    out.push_str("  \"figures\": [\n");
    for (i, (name, seconds, n_rows)) in timings.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"figure\": \"{name}\", \"seconds\": {seconds:.3}, \"rows\": {n_rows}}}"
        );
        out.push_str(if i + 1 < timings.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// `engine-bench`: wall-clock sweep of the segment-compiled engine vs the
/// legacy per-instruction interpreter across both DME transport kernels ×
/// every architecture × warp-specialized/baseline. Best-of-N timing (the
/// minimum absorbs scheduler noise on shared CI machines); throughput is
/// reported as executed *lanes* per second (warp instructions × 32). Each
/// row also carries the kernel's exp profile: how many exp uops the
/// lowered program executes, what fraction the optimizer folded into SoA
/// batches, the exp-chain rewrite ledger, and an *estimated* share of
/// engine wall-clock spent in exp (exp lanes × a calibrated per-lane exp
/// cost ÷ measured seconds — an estimate, not a measurement, since exp is
/// not timed in situ). The result lands on stdout and, unless
/// `SINGE_BENCH_JSON=0`, as the single-line `engine` key of
/// `BENCH_report.json` (primary fields = the DME-viscosity/WS/Hopper row,
/// keeping the key's schema backward compatible; the sweep rides in
/// `rows`), which `report all` preserves when it rewrites the file — so
/// the engine's throughput trajectory is tracked alongside the figure
/// wall-clocks.
fn engine_bench_report(mech: &Mechanism, archs: &[GpuArch]) {
    use chemkin::state::{GridDims, GridState};
    use gpu_sim::interp::{run_cta, run_cta_profiled};
    use gpu_sim::{flatten_cached, WARP_SIZE};
    use singe::kernels::launch_arrays;

    let time_best = |n: usize, f: &dyn Fn()| {
        for _ in 0..3 {
            f();
        }
        let mut best = f64::INFINITY;
        for _ in 0..n {
            let t = Instant::now();
            f();
            best = best.min(t.elapsed().as_secs_f64());
        }
        best
    };

    // Calibrate the per-lane cost of the process's exp path (libm or the
    // vectorized vmath kernel, whichever dispatch selected) on a buffer of
    // in-range arguments comparable to Arrhenius/transport exponents.
    let exp_ns_per_lane = {
        let xs: Vec<f64> = (0..4096).map(|i| (i as f64) * 0.0043 - 8.0).collect();
        let out = std::cell::RefCell::new(vec![0.0; xs.len()]);
        let best = time_best(20, &|| {
            let mut o = out.borrow_mut();
            // black_box: the buffer is never read afterwards, and without
            // an opaque use the optimizer deletes the entire computation.
            gpu_sim::vmath::exp_slice(std::hint::black_box(&xs), &mut o);
            std::hint::black_box(&mut o[0]);
        });
        best / xs.len() as f64 * 1e9
    };
    let vexp = gpu_sim::vmath::vexp_active();

    struct SweepRow {
        kernel: &'static str,
        arch: String,
        variant: &'static str,
        lanes_per_sec: f64,
        eng: f64,
        interp: f64,
        exp_uops: u64,
        exp_batched: u64,
        exp_share: f64,
        stats: gpu_sim::EngineStats,
    }
    let mut rows: Vec<SweepRow> = Vec::new();
    // The primary combo (committed trajectory row) runs with more reps.
    let primary_arch = archs.len() - 1;
    for kind in [Kind::Viscosity, Kind::Diffusion] {
        for (ai, arch) in archs.iter().enumerate() {
            for variant in [Variant::WarpSpecialized, Variant::Baseline] {
                let primary =
                    kind == Kind::Viscosity && ai == primary_arch && variant == Variant::WarpSpecialized;
                let built = build(kind, mech, arch, variant);
                let prog = flatten_cached(&built.kernel);
                let points = built.kernel.points_per_cta;
                let grid =
                    GridState::random(GridDims { nx: points, ny: 1, nz: 1 }, built.n_species, 1234);
                let arrays = launch_arrays(&built.kernel.global_arrays, &grid).expect("known arrays");
                let lanes: u64 = (0..prog.n_warps()).map(|w| prog.stream_len(w) as u64).sum::<u64>()
                    * WARP_SIZE as u64;
                let eng = time_best(if primary { 30 } else { 10 }, &|| {
                    run_cta(&built.kernel, &prog, &arrays, points, 0, false, arch)
                        .expect("engine CTA");
                });
                let interp = time_best(if primary { 10 } else { 3 }, &|| {
                    run_cta_profiled(&built.kernel, &prog, &arrays, points, 0, false, arch, None)
                        .expect("interp CTA");
                });
                let stats = gpu_sim::flatcache::engine_stats(&built.kernel, &prog);
                let exp_lanes = stats.exp_ops * WARP_SIZE as u64;
                rows.push(SweepRow {
                    kernel: kind.name(),
                    arch: arch.name.split_whitespace().last().unwrap_or(arch.name).to_string(),
                    variant: variant.name(),
                    lanes_per_sec: lanes as f64 / eng,
                    eng,
                    interp,
                    exp_uops: stats.exp_ops,
                    exp_batched: stats.exp_batched,
                    exp_share: (exp_lanes as f64 * exp_ns_per_lane * 1e-9 / eng).min(1.0),
                    stats,
                });
            }
        }
    }

    println!(
        "== engine throughput sweep ({} kernels, engine vs interp, vexp {}) ==",
        mech.name,
        if vexp { "on" } else { "off" }
    );
    println!(
        "{:<10} {:<10} {:<18} {:>9} {:>10} {:>8} {:>6} {:>9}",
        "kernel", "arch", "variant", "ms/CTA", "Mlanes/s", "speedup", "exp%", "batched%"
    );
    for r in &rows {
        let batched_pct = if r.exp_uops > 0 {
            r.exp_batched as f64 / r.exp_uops as f64 * 100.0
        } else {
            0.0
        };
        println!(
            "{:<10} {:<10} {:<18} {:>9.3} {:>10.1} {:>7.2}x {:>5.0}% {:>8.0}%",
            r.kernel,
            r.arch,
            r.variant,
            r.eng * 1e3,
            r.lanes_per_sec / 1e6,
            r.interp / r.eng,
            r.exp_share * 100.0,
            batched_pct
        );
    }
    // The primary row: viscosity/WS on the last (Hopper) arch.
    let p = rows
        .iter()
        .rposition(|r| {
            r.kernel == Kind::Viscosity.name() && r.variant == Variant::WarpSpecialized.name()
        })
        .expect("primary row present");
    let prim = &rows[p];
    println!(
        "rewrites (viscosity ws): cse {} | exp*exp applied {} rejected {} infeasible {}",
        prim.stats.exp_cse,
        prim.stats.exp_mul_applied,
        prim.stats.exp_mul_rejected,
        prim.stats.exp_mul_infeasible
    );

    if std::env::var("SINGE_BENCH_JSON").as_deref() == Ok("0") {
        return;
    }
    let row_json = |r: &SweepRow| {
        format!(
            "{{\"kernel\": \"{}\", \"arch\": \"{}\", \"variant\": \"{}\", \
             \"lanes_per_sec\": {:.0}, \"engine_seconds\": {:.6}, \
             \"speedup_vs_interp\": {:.2}, \"exp_uops\": {}, \"exp_batched\": {}, \
             \"exp_share_est\": {:.3}}}",
            r.kernel,
            r.arch,
            r.variant,
            r.lanes_per_sec,
            r.eng,
            r.interp / r.eng,
            r.exp_uops,
            r.exp_batched,
            r.exp_share,
        )
    };
    let sweep = rows.iter().map(|r| row_json(r)).collect::<Vec<_>>().join(", ");
    let (lanes_per_sec, eng, interp) = (prim.lanes_per_sec, prim.eng, prim.interp);
    let speedup = interp / eng;
    let batched_fraction = if prim.exp_uops > 0 {
        prim.exp_batched as f64 / prim.exp_uops as f64
    } else {
        0.0
    };
    let entry = format!(
        "\"engine\": {{\"kernel\": \"dme-viscosity-ws\", \"arch\": \"{}\", \
         \"lanes_per_sec\": {lanes_per_sec:.0}, \"engine_seconds\": {eng:.6}, \
         \"interp_seconds\": {interp:.6}, \"speedup_vs_interp\": {speedup:.2}, \
         \"vexp\": {vexp}, \"exp_uops\": {}, \"exp_batched\": {}, \
         \"exp_batched_fraction\": {batched_fraction:.3}, \"exp_share_est\": {:.3}, \
         \"exp_cse\": {}, \"exp_mul_applied\": {}, \"exp_mul_rejected\": {}, \
         \"rows\": [{sweep}]}}",
        prim.arch, prim.exp_uops, prim.exp_batched, prim.exp_share,
        prim.stats.exp_cse, prim.stats.exp_mul_applied, prim.stats.exp_mul_rejected,
    );
    upsert_solo_entry("engine", &entry);
}

/// Insert or replace a solo benchmark's single-line entry (`"engine":
/// {...}` / `"serve": {...}`) in `BENCH_report.json`: replace the
/// existing line, or place a new one right after `speedup_vs_pre_pr`
/// (where `bench_report_json` keeps it on rewrite). Creates a minimal
/// document if the file doesn't exist yet.
fn upsert_solo_entry(key: &str, entry: &str) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_report.json");
    let prefix = format!("\"{key}\": {{");
    let doc = match std::fs::read_to_string(path) {
        Ok(prior) => {
            let mut out = String::new();
            let mut placed = false;
            for line in prior.lines() {
                let k = line.trim_start();
                if k.starts_with(&prefix) {
                    if !placed {
                        let _ = writeln!(out, "  {entry},");
                        placed = true;
                    }
                    continue;
                }
                out.push_str(line);
                out.push('\n');
                if !placed && k.starts_with("\"speedup_vs_pre_pr\":") {
                    let _ = writeln!(out, "  {entry},");
                    placed = true;
                }
            }
            if !placed {
                eprintln!("[unrecognized {path} layout; file left unchanged]");
                return;
            }
            out
        }
        Err(_) => format!("{{\n  {entry}\n}}\n"),
    };
    match std::fs::write(path, &doc) {
        Ok(()) => eprintln!("[wrote {key} entry to {path}]"),
        Err(e) => eprintln!("[could not write {path}: {e}]"),
    }
}

/// `pipeline`: sweep the software pipeline depth K=1..4 for the
/// warp-specialized DME viscosity kernel on the Hopper-class architecture
/// (the only built-in arch whose barrier file fits a K-deep schedule for
/// the DME kernels) and record the per-CTA cycle trajectory as the
/// single-line `pipeline` key of `BENCH_report.json` (preserved across
/// `report all` rewrites, like `engine` and `serve`). Every depth runs
/// the full simulated CTA under the cycle profiler at the serve-layer
/// default configuration, so cycles and barrier-wait are deterministic —
/// the returned gate (some K>1 strictly beats K=1 on per-CTA cycles) is
/// exact, not statistical.
fn pipeline_report(dme: &Mechanism) -> bool {
    use chemkin::state::{GridDims, GridState};
    use gpu_sim::launch::{launch_with_config, LaunchConfig, LaunchInputs, LaunchMode};
    use singe::kernels::launch_arrays;
    use singe::Variant;

    let arch = GpuArch::hopper();
    let base_opts = ws_options(Kind::Viscosity, dme.n_transported(), &arch);
    println!(
        "== pipeline depth sweep (dme viscosity ws, {}, {} warps, {} iters) ==",
        arch.name, base_opts.warps, base_opts.point_iters
    );
    println!(
        "{:<4} {:>5} {:>10} {:>8} {:>12} {:>12}",
        "K", "depth", "cycles", "delta", "barrier-wait", "issue-slots"
    );
    struct DepthRow {
        k_requested: usize,
        depth: usize,
        cycles: u64,
        barrier_wait: u64,
        issue_slots: u64,
        shared_slots: usize,
        barriers: usize,
    }
    let mut rows: Vec<DepthRow> = Vec::new();
    for k in 1..=4usize {
        let mut opts = base_opts.clone();
        opts.pipeline_depth = k;
        let built =
            build_with_options(Kind::Viscosity, dme, &arch, Variant::WarpSpecialized, &opts)
                .expect("viscosity compiles at every requested depth");
        let stats = built.stats.as_ref().expect("ws build carries stats");
        let points = built.kernel.points_per_cta;
        let grid = GridState::random(GridDims { nx: points, ny: 1, nz: 1 }, built.n_species, 1234);
        let arrays = launch_arrays(&built.kernel.global_arrays, &grid).expect("known arrays");
        let out = launch_with_config(
            &built.kernel,
            &arch,
            &LaunchInputs { arrays },
            points,
            LaunchConfig { mode: LaunchMode::Full, profile: true, trace_events: false, jobs: 0 },
        )
        .expect("profiled CTA launch");
        let prof = out.profile.expect("profile requested");
        let row = DepthRow {
            k_requested: k,
            depth: stats.pipeline_depth,
            cycles: prof.total_cycles,
            barrier_wait: prof.totals().barrier_wait_total(),
            issue_slots: out.report.counts.issue_slots,
            shared_slots: stats.shared_slots,
            barriers: built.kernel.barriers_used,
        };
        let delta = row.cycles as i64 - rows.first().map_or(row.cycles, |r| r.cycles) as i64;
        println!(
            "{:<4} {:>5} {:>10} {:>+8} {:>12} {:>12}",
            row.k_requested, row.depth, row.cycles, delta, row.barrier_wait, row.issue_slots
        );
        rows.push(row);
    }
    let k1 = &rows[0];
    let best = rows.iter().min_by_key(|r| r.cycles).expect("sweep non-empty");
    let win = best.depth > 1 && best.cycles < k1.cycles;
    println!(
        "best: K={} at {} cycles ({:+} vs single-buffered)",
        best.depth,
        best.cycles,
        best.cycles as i64 - k1.cycles as i64
    );

    if std::env::var("SINGE_BENCH_JSON").as_deref() == Ok("0") {
        return win;
    }
    let sweep = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"k_requested\": {}, \"depth\": {}, \"cta_cycles\": {}, \
                 \"barrier_wait_cycles\": {}, \"issue_slots\": {}, \
                 \"shared_slots\": {}, \"kernel_barriers\": {}}}",
                r.k_requested, r.depth, r.cycles, r.barrier_wait, r.issue_slots,
                r.shared_slots, r.barriers
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    let entry = format!(
        "\"pipeline\": {{\"kernel\": \"dme-viscosity-ws\", \"arch\": \"{}\", \
         \"warps\": {}, \"point_iters\": {}, \"k1_cycles\": {}, \"best_depth\": {}, \
         \"best_cycles\": {}, \"delta_cycles\": {}, \"win\": {win}, \"rows\": [{sweep}]}}",
        arch.name,
        base_opts.warps,
        base_opts.point_iters,
        k1.cycles,
        best.depth,
        best.cycles,
        best.cycles as i64 - k1.cycles as i64,
    );
    upsert_solo_entry("pipeline", &entry);
    win
}

/// `search`: run the model-driven schedule search ([`singe::search`])
/// against the committed candidate grids for DME viscosity + diffusion ×
/// Fermi/Kepler/Hopper and record model-evals vs simulations vs
/// best-found cycles as the single-line `search` key of
/// `BENCH_report.json` (preserved across `report all` rewrites, like
/// `pipeline`). Per row the *grid* baseline is the exhaustive
/// `candidate_grid_extended` ∪ `candidate_grid_pipelined` sweep (every
/// candidate simulated); the search scores its candidates with the
/// static model and simulates only the top-K. The returned gate requires,
/// on every row: search winner ≤ grid winner on simulated probe cycles
/// (strictly better on at least one row), simulations ≤ 25% of the
/// candidates the search model-scored, and the winning schedule passing
/// the independent verifier at `Strict`. Probe launches are
/// deterministic (`TimingOnly`, fixed grid seed), so the recorded
/// numbers are exact and byte-stable — CI diffs them against the
/// committed entry.
fn search_report(dme: &Mechanism, archs: &[GpuArch], jobs: usize) -> bool {
    use chemkin::state::{GridDims, GridState};
    use gpu_sim::launch::{launch, LaunchInputs, LaunchMode};
    use singe::autotune::{autotune_with_jobs, candidate_grid_extended, candidate_grid_pipelined};
    use singe::kernels::launch_arrays;
    use singe::search::{autotune_search_with_jobs, SearchBudget};
    use singe::verify::verify_kernel;
    use std::collections::HashSet;

    const PROBE_POINTS: usize = 4096;
    let budget = SearchBudget::default();
    let n_species = dme.n_transported();
    println!(
        "== model-driven schedule search vs committed grids (dme, {} pts probe) ==",
        PROBE_POINTS
    );
    println!(
        "   budget: beam {} x {} rounds, <= {} model evals, top-{} simulated",
        budget.beam_width, budget.rounds, budget.max_model_evals, budget.sim_top_k
    );
    println!(
        "{:<10} {:<13} {:>5}/{:<5} {:>10} {:>5}/{:<5} {:>10} {:>8} {:>24}",
        "kernel", "arch", "grid", "sims", "grid-cyc", "evals", "sims", "search-cyc", "delta",
        "winner"
    );

    struct SearchRow {
        kernel: &'static str,
        arch: &'static str,
        grid_candidates: usize,
        grid_simulations: usize,
        grid_best_cycles: u64,
        grid_best_us: f64,
        model_evals: usize,
        simulations: usize,
        search_best_cycles: u64,
        search_best_us: f64,
        model_cycles: u64,
        best: CompileOptions,
        win: bool,
        strictly_better: bool,
        verified_strict: bool,
    }

    // Simulated probe cycles (normalized to the fixed PROBE_POINTS work
    // so schedules with different points-per-CTA compare on equal terms)
    // and probe seconds for one compiled kernel. Deterministic:
    // fixed-seed grid, TimingOnly probe.
    let probe = |kernel: &gpu_sim::isa::Kernel, arch: &GpuArch| -> (u64, f64) {
        let ppc = kernel.points_per_cta;
        let grid_points = PROBE_POINTS.div_ceil(ppc) * ppc;
        let g = GridState::random(GridDims { nx: grid_points, ny: 1, nz: 1 }, n_species, 1234);
        let arrays = launch_arrays(&kernel.global_arrays, &g).expect("known arrays");
        let out = launch(kernel, arch, &LaunchInputs { arrays }, grid_points, LaunchMode::TimingOnly)
            .expect("probe launch");
        let r = &out.report;
        let cycles_fixed_work =
            r.seconds * arch.sm_clock_hz() * PROBE_POINTS as f64 / grid_points as f64;
        (cycles_fixed_work.round() as u64, r.seconds)
    };

    let mut rows: Vec<SearchRow> = Vec::new();
    for kind in [Kind::Viscosity, Kind::Diffusion] {
        for arch in archs {
            let base = ws_options(kind, n_species, arch);
            let dfg = dfg_for(kind, dme, base.warps);
            let inputs = |k: &gpu_sim::isa::Kernel, pts: usize| {
                let g = GridState::random(GridDims { nx: pts, ny: 1, nz: 1 }, n_species, 1234);
                launch_arrays(&k.global_arrays, &g)
                    .expect("known arrays")
                    .iter()
                    .map(|s| s.to_vec())
                    .collect::<Vec<_>>()
            };

            // The committed-grid baseline: exhaustive sweep (every
            // candidate simulated) over the unified grids.
            let mut grid_cands = candidate_grid_extended(base.placement);
            grid_cands.extend(candidate_grid_pipelined(base.placement, arch));
            let mut seen = HashSet::new();
            grid_cands.retain(|c| seen.insert(format!("{c:?}")));
            let grid = autotune_with_jobs(&dfg, arch, &grid_cands, PROBE_POINTS, &inputs, jobs)
                .expect("some grid candidate compiles");
            let grid_simulations = grid.points.iter().filter(|p| p.seconds.is_some()).count();
            let (grid_best_cycles, grid_best_secs) = probe(&grid.best.kernel, arch);

            // The search: model as cost, simulation as oracle.
            let search =
                autotune_search_with_jobs(&dfg, arch, &base, &budget, PROBE_POINTS, &inputs, jobs)
                    .expect("search finds a runnable schedule");
            let (search_best_cycles, search_best_secs) = probe(&search.best.kernel, arch);
            let model_cycles = gpu_sim::model::predict_cycles(&search.best.kernel, arch)
                .expect("model scores verified kernels");
            let verified_strict = verify_kernel(&search.best.kernel, arch).is_ok();

            let row = SearchRow {
                kernel: kind.name(),
                arch: arch.name,
                grid_candidates: grid_cands.len(),
                grid_simulations,
                grid_best_cycles,
                grid_best_us: grid_best_secs * 1e6,
                model_evals: search.outcome.model_evals,
                simulations: search.outcome.simulations,
                search_best_cycles,
                search_best_us: search_best_secs * 1e6,
                model_cycles,
                best: search.outcome.best_options.clone(),
                win: search_best_cycles <= grid_best_cycles,
                strictly_better: search_best_cycles < grid_best_cycles,
                verified_strict,
            };
            println!(
                "{:<10} {:<13} {:>5}/{:<5} {:>10} {:>5}/{:<5} {:>10} {:>8} {:>24}",
                row.kernel,
                row.arch,
                row.grid_candidates,
                row.grid_simulations,
                row.grid_best_cycles,
                row.model_evals,
                row.simulations,
                row.search_best_cycles,
                row.search_best_cycles as i64 - row.grid_best_cycles as i64,
                format!(
                    "{}w x{} K{} {:?}",
                    row.best.warps, row.best.point_iters, row.best.pipeline_depth,
                    row.best.placement
                ),
            );
            rows.push(row);
        }
    }

    let all_win = rows.iter().all(|r| r.win);
    let any_strict = rows.iter().any(|r| r.strictly_better);
    let budget_ok = rows.iter().all(|r| r.simulations * 4 <= r.model_evals);
    let all_verified = rows.iter().all(|r| r.verified_strict);
    let gate = all_win && any_strict && budget_ok && all_verified;
    println!(
        "gate: every row <= grid winner: {all_win}; strictly better somewhere: {any_strict}; \
         simulated <= 25% of scored: {budget_ok}; Strict-verified winners: {all_verified}"
    );

    if std::env::var("SINGE_BENCH_JSON").as_deref() == Ok("0") {
        return gate;
    }
    let sweep = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"kernel\": \"{}\", \"arch\": \"{}\", \"grid_candidates\": {}, \
                 \"grid_simulations\": {}, \"grid_best_cycles\": {}, \"grid_best_us\": {:.3}, \
                 \"model_evals\": {}, \"simulations\": {}, \"search_best_cycles\": {}, \
                 \"search_best_us\": {:.3}, \"model_cycles\": {}, \"best_warps\": {}, \
                 \"best_iters\": {}, \"best_depth\": {}, \"best_placement\": \"{:?}\", \
                 \"win\": {}, \"strictly_better\": {}, \"verified_strict\": {}}}",
                r.kernel, r.arch, r.grid_candidates, r.grid_simulations, r.grid_best_cycles,
                r.grid_best_us, r.model_evals, r.simulations, r.search_best_cycles,
                r.search_best_us, r.model_cycles, r.best.warps, r.best.point_iters,
                r.best.pipeline_depth, r.best.placement, r.win, r.strictly_better,
                r.verified_strict
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    let total_evals: usize = rows.iter().map(|r| r.model_evals).sum();
    let total_sims: usize = rows.iter().map(|r| r.simulations).sum();
    let entry = format!(
        "\"search\": {{\"strategy\": \"beam\", \"probe_points\": {PROBE_POINTS}, \
         \"beam_width\": {}, \"rounds\": {}, \"sim_top_k\": {}, \"max_model_evals\": {}, \
         \"model_evals\": {total_evals}, \"simulations\": {total_sims}, \
         \"sim_fraction\": {:.3}, \"all_rows_win\": {all_win}, \
         \"any_strictly_better\": {any_strict}, \"verified_strict\": {all_verified}, \
         \"win\": {gate}, \"rows\": [{sweep}]}}",
        budget.beam_width,
        budget.rounds,
        budget.sim_top_k,
        budget.max_model_evals,
        total_sims as f64 / total_evals.max(1) as f64,
    );
    upsert_solo_entry("search", &entry);
    gate
}

/// `serve-bench`: measure the compile-farm service layer end to end and
/// record the single-line `serve` key of `BENCH_report.json` (preserved
/// across `report all` rewrites, like `engine`). Three phases, each in a
/// fresh cache directory under `target/`:
///
/// 1. **Latency** — cold compile of the primary combination (the
///    artifact is deleted between reps) vs warm load through a *new*
///    session over the same cache (simulating a process restart);
///    best-of-N for both. Exits non-zero if warm isn't at least 2x
///    faster than cold (the committed trajectory expects far more).
/// 2. **Farm throughput** — a fleet of small synthetic mechanisms
///    compiled through the sharded scheduler, cold pass then
///    post-restart warm pass; sustained compiles/second and hit rate.
/// 3. **In-flight dedup** — N identical concurrent requests must
///    trigger exactly one compiler run (exit non-zero otherwise).
fn serve_bench_report(kernel: KernelId, arch: ArchId, jobs: usize) {
    use chemkin::synth::SynthConfig;
    use singe_serve::{ArtifactSource, CompileRequest, ServeSession};

    let root = std::path::PathBuf::from(format!("target/serve-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let variant = Variant::WarpSpecialized;
    let mk_req = |mech: &str| {
        CompileRequest::new(mech.parse().expect("valid mechanism id"), kernel, variant, arch)
    };
    let open = |dir: &std::path::Path| {
        ServeSession::builder(dir).jobs(jobs).builtins(false).open().expect("open serve session")
    };
    let primary = format!("dme-{}-ws", kernel.name());
    let arch_short = {
        let name = arch.arch().name;
        name.split_whitespace().last().unwrap_or(name).to_string()
    };

    // -- Phase 1: cold vs warm latency on the primary combination -------
    let lat_dir = root.join("latency");
    let reps = 7;
    let session = open(&lat_dir);
    session.register_synth(&synth::dme_config()).expect("register dme");
    let req = mk_req("dme");
    let t0 = Instant::now();
    let first = session.compile(&req).expect("cold compile");
    let cold_first = t0.elapsed().as_secs_f64();
    assert_eq!(first.source, ArtifactSource::ColdCompile, "fresh cache must compile cold");
    let artifact_path = session.cache_dir().join(first.key.file_name());
    let mut cold_best = cold_first;
    for _ in 1..reps {
        std::fs::remove_file(&artifact_path).expect("cold rep: remove artifact");
        let t0 = Instant::now();
        let h = session.compile(&req).expect("cold compile");
        assert_eq!(h.source, ArtifactSource::ColdCompile);
        cold_best = cold_best.min(t0.elapsed().as_secs_f64());
    }
    drop(session);
    let mut warm_best = f64::INFINITY;
    for _ in 0..reps {
        // A fresh session over the same cache dir = a process restart as
        // far as the artifact store is concerned.
        let session = open(&lat_dir);
        session.register_synth(&synth::dme_config()).expect("register dme");
        let t0 = Instant::now();
        let h = session.compile(&req).expect("warm compile");
        warm_best = warm_best.min(t0.elapsed().as_secs_f64());
        assert_eq!(h.source, ArtifactSource::WarmDisk, "artifact must survive the restart");
        assert_eq!(
            format!("{:?}", h.artifact.kernel),
            format!("{:?}", first.artifact.kernel),
            "warm artifact must be identical to the cold compile"
        );
    }
    let warm_speedup = cold_best / warm_best;

    // -- Phase 2: farm throughput over a fleet of small mechanisms ------
    let farm_dir = root.join("farm");
    let n_farm = 24usize;
    let cfgs: Vec<SynthConfig> = (0..n_farm)
        .map(|i| SynthConfig {
            name: format!("farm{i:02}"),
            n_species: 10 + (i % 6),
            n_reactions: 20 + 2 * (i % 5),
            n_qssa: i % 3,
            n_stiff: 2 + (i % 4),
            seed: 9000 + i as u64,
        })
        .collect();
    let farm_pass = |expect_warm: bool| -> (f64, f64) {
        let session = open(&farm_dir);
        for cfg in &cfgs {
            session.register_synth(cfg).expect("register farm mechanism");
        }
        let t0 = Instant::now();
        let tickets: Vec<_> = cfgs
            .iter()
            .map(|c| session.submit(&mk_req(&c.name).with_tenant(&c.name)).expect("submit"))
            .collect();
        for t in tickets {
            t.wait().expect("farm compile");
        }
        let seconds = t0.elapsed().as_secs_f64();
        let stats = session.stats();
        if expect_warm {
            assert_eq!(stats.warm_hits as usize, n_farm, "warm pass must be all disk hits");
        }
        (seconds, stats.hit_rate().unwrap_or(0.0))
    };
    let (farm_cold_s, _) = farm_pass(false);
    let (farm_warm_s, warm_hit_rate) = farm_pass(true);

    // -- Phase 3: in-flight dedup ---------------------------------------
    let dedup_dir = root.join("dedup");
    let n_dedup = 8usize;
    let session = ServeSession::builder(&dedup_dir)
        .jobs(jobs.max(4))
        .builtins(false)
        .open()
        .expect("open serve session");
    session
        .register_synth(&SynthConfig { name: "dedup".into(), seed: 0xded, ..synth::dme_config() })
        .expect("register dedup mechanism");
    let dreq = mk_req("dedup");
    let tickets: Vec<_> =
        (0..n_dedup).map(|_| session.submit(&dreq).expect("submit")).collect();
    for t in tickets {
        t.wait().expect("dedup compile");
    }
    let dstats = session.stats();
    drop(session);
    let _ = std::fs::remove_dir_all(&root);

    println!("== serve-bench (compile-farm service layer) ==");
    println!("primary: {primary} on {} (jobs={jobs})", arch.arch().name);
    println!("  cold first         {:>9.3} ms", cold_first * 1e3);
    println!("  cold best-of-{reps}     {:>9.3} ms", cold_best * 1e3);
    println!(
        "  warm best-of-{reps}     {:>9.3} ms   ({warm_speedup:.1}x vs cold, post-restart)",
        warm_best * 1e3
    );
    println!("farm: {n_farm} mechanisms through the sharded scheduler");
    println!(
        "  cold pass          {:>9.3} s    ({:.1} compiles/s)",
        farm_cold_s,
        n_farm as f64 / farm_cold_s
    );
    println!(
        "  warm pass          {:>9.3} s    ({:.1} compiles/s, hit rate {:.2})",
        farm_warm_s,
        n_farm as f64 / farm_warm_s,
        warm_hit_rate
    );
    println!(
        "dedup: {n_dedup} identical concurrent requests -> {} cold compile(s), \
         {} joined, {} warm",
        dstats.cold_compiles, dstats.inflight_joins, dstats.warm_hits
    );

    let mut failed = false;
    if dstats.cold_compiles != 1 {
        eprintln!(
            "serve-bench FAILED: expected exactly 1 cold compile under dedup, got {}",
            dstats.cold_compiles
        );
        failed = true;
    }
    if warm_speedup < 2.0 {
        eprintln!("serve-bench FAILED: warm speedup {warm_speedup:.2}x < 2x");
        failed = true;
    }

    if std::env::var("SINGE_BENCH_JSON").as_deref() != Ok("0") {
        let entry = format!(
            "\"serve\": {{\"kernel\": \"{primary}\", \"arch\": \"{arch_short}\", \
             \"cold_first_ms\": {:.3}, \"cold_ms\": {:.3}, \"warm_ms\": {:.3}, \
             \"warm_speedup\": {warm_speedup:.1}, \"farm_mechs\": {n_farm}, \
             \"cold_compiles_per_sec\": {:.1}, \"warm_compiles_per_sec\": {:.1}, \
             \"warm_hit_rate\": {warm_hit_rate:.2}, \"dedup_requests\": {n_dedup}, \
             \"dedup_cold_compiles\": {}}}",
            cold_first * 1e3,
            cold_best * 1e3,
            warm_best * 1e3,
            n_farm as f64 / farm_cold_s,
            n_farm as f64 / farm_warm_s,
            dstats.cold_compiles,
        );
        upsert_solo_entry("serve", &entry);
    }
    if failed {
        std::process::exit(1);
    }
}

/// Figure 3: mechanism characteristics table.
///
/// Zero JSON rows is correct here: this table describes the *input*
/// mechanisms (reaction/species counts of the benchmark suite), not a
/// measurement, and `target/report.json` carries measured figure points
/// only. The table itself lives on stdout.
fn figure3(mechs: &[&Mechanism]) -> FigOutput {
    let mut t = String::new();
    let _ = writeln!(t, "== Figure 3: chemical mechanisms ==");
    let _ = writeln!(t, "{:<10} {:>9} {:>8} {:>5} {:>6}", "Mechanism", "Reactions", "Species", "QSSA", "Stiff");
    for m in mechs {
        let c = m.characteristics();
        let _ = writeln!(
            t,
            "{:<10} {:>9} {:>8} {:>5} {:>6}",
            m.name, c.reactions, c.species, c.qssa, c.stiff
        );
    }
    let _ = writeln!(t);
    FigOutput { text: t, rows: Vec::new(), failures: 0 }
}

/// Figure 9: naïve vs overlaid codegen over warps/CTA (DME viscosity,
/// Kepler, 64^3). The eight warp-count configurations are independent
/// compile+simulate pipelines, so they run on the pool; rendering commits
/// in warp-count order, keeping stdout byte-identical at any `jobs`.
fn fig9(dme: &Mechanism, arch: &GpuArch, jobs: usize) -> FigOutput {
    let mut t = String::new();
    let mut rows = Vec::new();
    let _ = writeln!(t, "== Figure 9: warp-specialized code generation (DME viscosity, {}) ==", arch.name);
    let _ = writeln!(t, "{:>6} {:>18} {:>18} {:>8}", "warps", "naive Mpts/s", "singe Mpts/s", "ratio");
    let grid = 64 * 64 * 64;
    const WARPS: [usize; 8] = [2, 4, 6, 8, 10, 12, 14, 16];
    let reports = singe::pool::run_ordered(jobs, WARPS.len(), |i| {
        let warps = WARPS[i];
        let opts = CompileOptions::builder()
            .warps(warps)
            .point_iters(4)
            .placement(singe::config::Placement::Store)
            .build();
        let naive = build_with_options(Kind::Viscosity, dme, arch, Variant::Naive, &opts);
        let singe_v =
            build_with_options(Kind::Viscosity, dme, arch, Variant::WarpSpecialized, &opts);
        match (naive, singe_v) {
            (Ok(n), Ok(s)) => Some((timing_report(&n, arch, grid), timing_report(&s, arch, grid))),
            _ => None,
        }
    });
    for (warps, rep) in WARPS.iter().zip(reports) {
        let (n_r, s_r) = match rep {
            Some(pair) => pair,
            None => {
                let _ = writeln!(t, "{warps:>6}  (configuration did not compile)");
                continue;
            }
        };
        let _ = writeln!(
            t,
            "{:>6} {:>18.2} {:>18.2} {:>8.2}",
            warps,
            n_r.points_per_sec / 1e6,
            s_r.points_per_sec / 1e6,
            s_r.points_per_sec / n_r.points_per_sec
        );
        rows.push(row("fig9", Kind::Viscosity, "dme", arch, Variant::Naive, *warps, &n_r));
        rows.push(row("fig9", Kind::Viscosity, "dme", arch, Variant::WarpSpecialized, *warps, &s_r));
    }
    let _ = writeln!(t);
    FigOutput { text: t, rows, failures: 0 }
}

/// Figure 10: constant registers per thread on Kepler.
fn fig10(mechs: &[&Mechanism], arch: &GpuArch) -> FigOutput {
    let mut t = String::new();
    let mut rows = Vec::new();
    let _ = writeln!(t, "== Figure 10: constant registers per thread ({}) ==", arch.name);
    let _ = writeln!(t, "{:<10} {:>10} {:>10} {:>10}", "Mechanism", "Viscosity", "Diffusion", "Chemistry");
    for m in mechs {
        let mut cells = Vec::new();
        for kind in [Kind::Viscosity, Kind::Diffusion, Kind::Chemistry] {
            let b = build(kind, m, arch, Variant::WarpSpecialized);
            let regs = b.stats.as_ref().map(|s| s.const_regs_per_thread).unwrap_or(0);
            cells.push(regs);
            // Figure 10 measures a compile-time quantity, so the Row's
            // timing fields are vacuous; `x` carries the figure's value
            // (constant registers per thread).
            rows.push(Row {
                figure: "fig10".into(),
                kernel: kind.name().into(),
                mechanism: m.name.clone(),
                arch: arch.name.into(),
                variant: Variant::WarpSpecialized.name().into(),
                x: regs,
                points_per_sec: 0.0,
                gflops: 0.0,
                bandwidth_gbs: 0.0,
                spilled_bytes: 0,
                limiter: "n/a (compile-time stat)".into(),
                seconds: 0.0,
            });
        }
        let _ = writeln!(t, "{:<10} {:>10} {:>10} {:>10}", m.name, cells[0], cells[1], cells[2]);
    }
    let _ = writeln!(t);
    FigOutput { text: t, rows, failures: 0 }
}

/// Figures 11-16: baseline vs warp-specialized throughput on both
/// architectures across the three grid sizes.
fn throughput_figure(
    fig: &str,
    kind: Kind,
    mech: &Mechanism,
    archs: &[GpuArch],
    jobs: usize,
) -> FigOutput {
    let mut t = String::new();
    let mut rows = Vec::new();
    let _ = writeln!(t, "== {}: {} performance, {} mechanism ==", fig, kind.name(), mech.name);
    // The arch×variant compilations dominate this figure; run them on the
    // pool up front (they land in the build memo), then render serially.
    singe::pool::run_ordered(jobs, archs.len() * 2, |i| {
        let variant = if i % 2 == 0 { Variant::Baseline } else { Variant::WarpSpecialized };
        build(kind, mech, &archs[i / 2], variant)
    });
    for arch in archs {
        let base = build(kind, mech, arch, Variant::Baseline);
        let ws = build(kind, mech, arch, Variant::WarpSpecialized);
        let _ = writeln!(t, "{}:", arch.name);
        let _ = writeln!(
            t,
            "  {:>6} {:>16} {:>16} {:>8}   (limiters: base={}, ws={})",
            "grid",
            "baseline Mpts/s",
            "ws Mpts/s",
            "speedup",
            timing_report(&base, arch, 32768).limiter,
            timing_report(&ws, arch, 32768).limiter,
        );
        for edge in GRIDS {
            let pts = edge * edge * edge;
            let rb = timing_report(&base, arch, pts);
            let rw = timing_report(&ws, arch, pts);
            let _ = writeln!(
                t,
                "  {:>4}^3 {:>16.3} {:>16.3} {:>7.2}x",
                edge,
                rb.points_per_sec / 1e6,
                rw.points_per_sec / 1e6,
                rw.points_per_sec / rb.points_per_sec
            );
            rows.push(row(fig, kind, &mech.name, arch, Variant::Baseline, edge, &rb));
            rows.push(row(fig, kind, &mech.name, arch, Variant::WarpSpecialized, edge, &rw));
        }
    }
    let _ = writeln!(t);
    FigOutput { text: t, rows, failures: 0 }
}

/// §6.1 GFLOPS analysis, including the constants-in-registers exponential
/// ablation (the paper measured ~750 GFLOPS with it on Kepler).
fn gflops_analysis(dme: &Mechanism, archs: &[GpuArch]) -> FigOutput {
    let mut t = String::new();
    let mut rows = Vec::new();
    let _ = writeln!(t, "== Section 6.1: DME viscosity GFLOPS analysis ==");
    let _ = writeln!(t, "(paper: Fermi base/ws = 197.9/257.3, Kepler = 220.6/617.7, reg-exp ablation ~750)");
    let grid = 128 * 128 * 128;
    for arch in archs {
        let base = build(Kind::Viscosity, dme, arch, Variant::Baseline);
        let ws = build(Kind::Viscosity, dme, arch, Variant::WarpSpecialized);
        let rb = timing_report(&base, arch, grid);
        let rw = timing_report(&ws, arch, grid);
        // Ablation: exp-series constants kept in registers.
        let mut opts = ws_options(Kind::Viscosity, dme.n_transported(), arch);
        opts.exp_const_from_registers = true;
        let abl = build_with_options(Kind::Viscosity, dme, arch, Variant::WarpSpecialized, &opts)
            .expect("ablation compiles");
        let ra = timing_report(&abl, arch, grid);
        let _ = writeln!(
            t,
            "{:<22} baseline {:>7.1} GF | ws {:>7.1} GF | ws+reg-exp {:>7.1} GF (peak {:.0}, practical {:.0})",
            arch.name,
            rb.gflops,
            rw.gflops,
            ra.gflops,
            arch.peak_dp_gflops(),
            arch.practical_dp_gflops()
        );
        rows.push(row("s6.1", Kind::Viscosity, "dme", arch, Variant::Baseline, 128, &rb));
        rows.push(row("s6.1", Kind::Viscosity, "dme", arch, Variant::WarpSpecialized, 128, &rw));
        rows.push(row("s6.1-regexp", Kind::Viscosity, "dme", arch, Variant::WarpSpecialized, 128, &ra));
    }
    let _ = writeln!(t);
    FigOutput { text: t, rows, failures: 0 }
}

/// §6.2 ablation: unsafely removing the diffusion barriers (timing only).
fn ablate_barriers(dme: &Mechanism, archs: &[GpuArch]) -> FigOutput {
    let mut t = String::new();
    let mut rows = Vec::new();
    let _ = writeln!(t, "== Section 6.2: diffusion barrier-overhead ablation (DME) ==");
    let _ = writeln!(t, "(paper: 212.8 -> ~250 GFLOPS on Fermi, 526.6 -> ~625 on Kepler)");
    let grid = 128 * 128 * 128;
    for arch in archs {
        let opts = ws_options(Kind::Diffusion, dme.n_transported(), arch);
        let with = build_with_options(Kind::Diffusion, dme, arch, Variant::WarpSpecialized, &opts)
            .expect("compiles");
        let mut opts2 = opts.clone();
        opts2.unsafe_remove_barriers = true;
        let without =
            build_with_options(Kind::Diffusion, dme, arch, Variant::WarpSpecialized, &opts2)
                .expect("compiles");
        let r1 = timing_report(&with, arch, grid);
        // The barrier-free kernel computes garbage; only its timing matters.
        let r2 = timing_report(&without, arch, grid);
        let _ = writeln!(
            t,
            "{:<22} with barriers {:>7.1} GF | without {:>7.1} GF ({:+.1}%)",
            arch.name,
            r1.gflops,
            r2.gflops,
            (r2.gflops / r1.gflops - 1.0) * 100.0
        );
        rows.push(row("s6.2", Kind::Diffusion, "dme", arch, Variant::WarpSpecialized, 0, &r1));
        rows.push(row("s6.2-nobar", Kind::Diffusion, "dme", arch, Variant::WarpSpecialized, 1, &r2));
    }
    let _ = writeln!(t);
    FigOutput { text: t, rows, failures: 0 }
}

/// Independent schedule verification of every kernel the harness can
/// build, plus the §6.2 ablation rejection check.
///
/// Every combination also emits one summary row into
/// `target/report.json`: `x` carries the barrier ops checked,
/// `spilled_bytes` the race/violation count, and `limiter` the status
/// (`pass` / `FAIL` / `skipped` / `compile-error`) — so the verifier's
/// coverage is machine-readable instead of stdout-only. The timing fields
/// are vacuous (verification is a compile-time gate, not a measurement).
///
/// The mechanism×arch×kernel×variant combinations are independent
/// compile+verify pipelines, so they run on the pool; their text chunks
/// are committed in combination order, keeping stdout deterministic.
fn verify_all(mechs: &[&Mechanism], archs: &[GpuArch], jobs: usize) -> FigOutput {
    let mut t = String::new();
    let _ = writeln!(t, "== Schedule verification (kernel x mechanism x arch x compiler) ==");
    let mut failures = 0usize;
    let mut combos = Vec::new();
    for mech in mechs {
        for arch in archs {
            for kind in [Kind::Viscosity, Kind::Diffusion, Kind::Chemistry] {
                for variant in [Variant::Baseline, Variant::WarpSpecialized, Variant::Naive] {
                    combos.push((*mech, arch, kind, variant));
                }
            }
        }
    }
    let chunks: Vec<(String, usize, Row)> = singe::pool::run_ordered(jobs, combos.len(), |i| {
        let (mech, arch, kind, variant) = combos[i];
        let mut c = String::new();
        let mut fails = 0usize;
        let opts = ws_options(kind, mech.n_transported(), arch);
        let label = format!(
            "{:<10} {:<10} {:<12} {:<16}",
            mech.name,
            kind.name(),
            arch.name.split_whitespace().last().unwrap_or(arch.name),
            variant.name()
        );
        // (status, barrier ops checked, races/violations found)
        let (status, barriers, races) = match build_with_options(kind, mech, arch, variant, &opts)
        {
            Ok(built) => match singe::verify::verify_kernel(&built.kernel, arch) {
                Ok(r) => {
                    let _ = writeln!(
                        c,
                        "{label} ok ({} barrier ops, {} generations, {} shared accesses)",
                        r.barrier_ops, r.generations, r.shared_accesses
                    );
                    ("pass", r.barrier_ops, 0)
                }
                Err(violations) => {
                    let _ = writeln!(c, "{label} VIOLATIONS:");
                    for v in &violations {
                        let _ = writeln!(c, "    {v}");
                    }
                    fails += 1;
                    ("FAIL", 0, violations.len())
                }
            },
            Err(singe::CompileError::ResourceExhausted(m)) => {
                let _ = writeln!(c, "{label} skipped (does not fit: {m})");
                ("skipped", 0, 0)
            }
            Err(e) => {
                let _ = writeln!(c, "{label} FAILED to compile: {e}");
                fails += 1;
                ("compile-error", 0, 0)
            }
        };
        let row = Row {
            figure: "verify".into(),
            kernel: kind.name().into(),
            mechanism: mech.name.to_string(),
            arch: arch.name.into(),
            variant: variant.name().into(),
            x: barriers,
            points_per_sec: 0.0,
            gflops: 0.0,
            bandwidth_gbs: 0.0,
            spilled_bytes: races,
            limiter: status.into(),
            seconds: 0.0,
        };
        (c, fails, row)
    });
    let mut rows = Vec::new();
    for (chunk, fails, row) in chunks {
        t.push_str(&chunk);
        failures += fails;
        rows.push(row);
    }
    // The §6.2 unsafe barrier-removal ablation must be flagged under
    // VerifyLevel::Strict (Basic deliberately waives it for the timing
    // study).
    let mut opts = ws_options(Kind::Diffusion, mechs[0].n_transported(), &archs[0]);
    opts.unsafe_remove_barriers = true;
    opts.verify = singe::VerifyLevel::Strict;
    match build_with_options(Kind::Diffusion, mechs[0], &archs[0], Variant::WarpSpecialized, &opts)
    {
        Err(singe::CompileError::Verification(_)) => {
            let _ = writeln!(t, "s6.2 barrier-removal ablation: rejected by VerifyLevel::Strict (expected)");
        }
        Ok(_) => {
            let _ = writeln!(t, "s6.2 barrier-removal ablation: NOT flagged under Strict — verifier gap!");
            failures += 1;
        }
        Err(e) => {
            let _ = writeln!(t, "s6.2 barrier-removal ablation: unexpected error {e}");
            failures += 1;
        }
    }
    let _ = writeln!(t);
    FigOutput { text: t, rows, failures }
}

/// Stall-cycle attribution tables (`report profile`): every simulated
/// cycle of the one-CTA probe attributed to exactly one reason, for every
/// kernel × variant × architecture (paper-style baseline vs
/// warp-specialized vs naïve comparison). Validates the attribution-sum
/// invariant per warp, writes `target/profile.json`, and exports the
/// structured event stream of the diffusion kernels (the named-barrier
/// showcase) as a `chrome://tracing` / Perfetto JSON at
/// `target/profile_trace.json`. Returns the failure count.
fn profile_report(dme: &Mechanism, archs: &[GpuArch]) -> usize {
    let mut failures = 0usize;
    let mut rows: Vec<ProfileRow> = Vec::new();
    let mut traces: Vec<(String, Vec<gpu_sim::TraceEvent>)> = Vec::new();
    let trace_arch = archs[archs.len() - 1].name;
    println!("== Stall-cycle attribution ({} mechanism, one-CTA probe) ==", dme.name);
    println!(
        "{:<22} {:<10} {:<16} {:>5} {:>9} {:>7} {:>8} {:>7} {:>6} {:>6} {:>6}",
        "arch", "kernel", "variant", "warps", "cycles", "issue%", "barrier%", "icache%",
        "const%", "ovh%", "idle%"
    );
    for arch in archs {
        for kind in [Kind::Viscosity, Kind::Diffusion, Kind::Chemistry] {
            for variant in [Variant::Baseline, Variant::WarpSpecialized, Variant::Naive] {
                let opts = ws_options(kind, dme.n_transported(), arch);
                let built = match build_with_options(kind, dme, arch, variant, &opts) {
                    Ok(b) => b,
                    Err(e) => {
                        println!(
                            "{:<22} {:<10} {:<16} skipped ({e})",
                            arch.name,
                            kind.name(),
                            variant.name()
                        );
                        continue;
                    }
                };
                // Record the event stream only for diffusion on the last
                // (Kepler) arch — it exercises the named-barrier protocol
                // — so the trace file stays a few hundred KB.
                let want_trace = kind == Kind::Diffusion && arch.name == trace_arch;
                let prof = profile_built(&built, arch, want_trace);
                let r = profile_row(kind, &dme.name, arch, variant, &prof);
                if !r.attribution_ok {
                    println!(
                        "ATTRIBUTION MISMATCH: {} {} {} (per-warp reasons do not sum to total)",
                        r.arch, r.kernel, r.variant
                    );
                    failures += 1;
                }
                // Reasons are summed over warps; every warp's timeline is
                // `total_cycles` long, so the CTA denominator is their
                // product.
                let denom = (r.total_cycles.max(1) * r.warps.max(1) as u64) as f64 / 100.0;
                println!(
                    "{:<22} {:<10} {:<16} {:>5} {:>9} {:>6.1}% {:>7.1}% {:>6.1}% {:>5.1}% {:>5.1}% {:>5.1}%",
                    r.arch,
                    r.kernel,
                    r.variant,
                    r.warps,
                    r.total_cycles,
                    r.issue as f64 / denom,
                    r.barrier_wait as f64 / denom,
                    r.icache_miss as f64 / denom,
                    r.const_replay as f64 / denom,
                    r.overhead as f64 / denom,
                    r.idle as f64 / denom,
                );
                if want_trace {
                    traces.push((
                        format!("{}/{}", kind.name(), variant.name()),
                        prof.events.clone(),
                    ));
                }
                rows.push(r);
            }
        }
    }
    println!();
    std::fs::create_dir_all("target").ok();
    std::fs::write("target/profile.json", profile_rows_to_json(&rows))
        .expect("write profile.json");
    let groups: Vec<(&str, &[gpu_sim::TraceEvent])> =
        traces.iter().map(|(n, e)| (n.as_str(), e.as_slice())).collect();
    std::fs::write("target/profile_trace.json", gpu_sim::chrome_trace_json(&groups))
        .expect("write profile_trace.json");
    eprintln!(
        "[wrote {} rows to target/profile.json, {} trace group(s) to target/profile_trace.json]",
        rows.len(),
        groups.len()
    );
    failures
}

/// Model accuracy table (`report model`): the static analytical
/// performance model's predicted seconds and CTA cycles next to the
/// simulator's measurements, for every kernel × variant × architecture.
/// Writes `target/model.json` (summary + rows) and returns whether the
/// accuracy gate passed: Spearman rank correlation between predicted and
/// simulated seconds ≥ [`MODEL_GATE_SPEARMAN`] and every ratio within
/// [`MODEL_GATE_RATIO`]x of 1.
fn model_report(dme: &Mechanism, archs: &[GpuArch]) -> bool {
    let grid = 64 * 64 * 64;
    let mut rows: Vec<ModelRow> = Vec::new();
    println!("== Model accuracy: analytical prediction vs simulation ({}, 64^3) ==", dme.name);
    println!(
        "{:<22} {:<10} {:<16} {:>5} {:>12} {:>12} {:>7} {:>10} {:>10}",
        "arch", "kernel", "variant", "warps", "pred s", "sim s", "ratio", "pred cyc", "prof cyc"
    );
    for arch in archs {
        for kind in [Kind::Viscosity, Kind::Diffusion, Kind::Chemistry] {
            for variant in [Variant::Baseline, Variant::WarpSpecialized, Variant::Naive] {
                let opts = ws_options(kind, dme.n_transported(), arch);
                let built = match build_with_options(kind, dme, arch, variant, &opts) {
                    Ok(b) => b,
                    Err(e) => {
                        println!(
                            "{:<22} {:<10} {:<16} skipped ({e})",
                            arch.name,
                            kind.name(),
                            variant.name()
                        );
                        continue;
                    }
                };
                let predicted = predict_built(&built, arch, grid);
                let simulated = timing_report(&built, arch, grid);
                let profiled = profile_built(&built, arch, false);
                let r = ModelRow {
                    kernel: kind.name().into(),
                    mechanism: dme.name.clone(),
                    arch: arch.name.into(),
                    variant: variant.name().into(),
                    warps: built.kernel.warps_per_cta,
                    grid_points: grid,
                    predicted_seconds: predicted.seconds(),
                    simulated_seconds: simulated.seconds,
                    ratio: predicted.seconds() / simulated.seconds,
                    predicted_cycles: predicted.profile.cta.total_cycles,
                    profiled_cycles: profiled.total_cycles,
                };
                println!(
                    "{:<22} {:<10} {:<16} {:>5} {:>12.4e} {:>12.4e} {:>7.3} {:>10} {:>10}",
                    r.arch,
                    r.kernel,
                    r.variant,
                    r.warps,
                    r.predicted_seconds,
                    r.simulated_seconds,
                    r.ratio,
                    r.predicted_cycles,
                    r.profiled_cycles,
                );
                rows.push(r);
            }
        }
    }
    let preds: Vec<f64> = rows.iter().map(|r| r.predicted_seconds).collect();
    let sims: Vec<f64> = rows.iter().map(|r| r.simulated_seconds).collect();
    let rho = spearman(&preds, &sims);
    println!("\nSpearman(predicted, simulated) over {} rows: {rho:.4}", rows.len());
    let json = model_report_json(&rows);
    let gate_ok = json.contains("\"gate_ok\": true");
    std::fs::create_dir_all("target").ok();
    std::fs::write("target/model.json", &json).expect("write model.json");
    eprintln!("[wrote {} rows to target/model.json, gate_ok={gate_ok}]", rows.len());
    gate_ok
}

/// §6.3: chemistry spill and bandwidth analysis (heptane).
fn spills(heptane: &Mechanism, archs: &[GpuArch]) -> FigOutput {
    let mut t = String::new();
    let mut rows = Vec::new();
    let _ = writeln!(t, "== Section 6.3: heptane chemistry working-set analysis ==");
    let _ = writeln!(t, "(paper: baseline spills 8736/8500 B per thread; ws spills 276/44 B;");
    let _ = writeln!(t, " baseline is local-bandwidth bound at 85/100 GB/s, ws shared-latency bound)");
    let grid = 64 * 64 * 64;
    for arch in archs {
        let base = build(Kind::Chemistry, heptane, arch, Variant::Baseline);
        let ws = build(Kind::Chemistry, heptane, arch, Variant::WarpSpecialized);
        let rb = timing_report(&base, arch, grid);
        let rw = timing_report(&ws, arch, grid);
        let _ = writeln!(
            t,
            "{:<22} baseline: {:>6} B spilled, {:>6.1} GB/s, limiter {:<16} | ws: {:>4} B spilled, limiter {}",
            arch.name,
            rb.spilled_bytes_per_thread,
            rb.bandwidth_gbs,
            rb.limiter,
            rw.spilled_bytes_per_thread,
            rw.limiter
        );
        rows.push(row("s6.3", Kind::Chemistry, &heptane.name, arch, Variant::Baseline, 64, &rb));
        rows.push(row("s6.3", Kind::Chemistry, &heptane.name, arch, Variant::WarpSpecialized, 64, &rw));
    }
    let _ = writeln!(t);
    FigOutput { text: t, rows, failures: 0 }
}
