//! Criterion bench: viscosity kernel compile + one-CTA simulation, baseline
//! vs warp-specialized, DME mechanism (Figures 11/12 machinery).
use criterion::{criterion_group, criterion_main, Criterion};
use gpu_sim::arch::GpuArch;
use singe_bench::{build, timing_report, Kind, Variant};

fn bench(c: &mut Criterion) {
    let mech = chemkin::synth::dme();
    let arch = GpuArch::kepler_k20c();
    let base = build(Kind::Viscosity, &mech, &arch, Variant::Baseline);
    let ws = build(Kind::Viscosity, &mech, &arch, Variant::WarpSpecialized);
    let mut g = c.benchmark_group("viscosity_dme_kepler");
    g.sample_size(10);
    g.bench_function("baseline_probe", |b| {
        b.iter(|| timing_report(&base, &arch, 32 * 32 * 32).points_per_sec)
    });
    g.bench_function("warp_specialized_probe", |b| {
        b.iter(|| timing_report(&ws, &arch, 32 * 32 * 32).points_per_sec)
    });
    g.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
