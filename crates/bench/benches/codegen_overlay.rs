//! Criterion bench: Figure 9 — naive warp-switch vs overlaid codegen at a
//! mid warp count, measuring full compile times of both generators.
use criterion::{criterion_group, criterion_main, Criterion};
use gpu_sim::arch::GpuArch;
use singe::config::{CompileOptions, Placement};
use singe_bench::{build_with_options, Kind, Variant};

fn bench(c: &mut Criterion) {
    let mech = chemkin::synth::dme();
    let arch = GpuArch::kepler_k20c();
    let opts = CompileOptions::builder()
        .warps(10)
        .point_iters(4)
        .placement(Placement::Store)
        .build();
    let mut g = c.benchmark_group("fig9_codegen");
    g.sample_size(10);
    g.bench_function("naive_compile", |b| {
        b.iter(|| build_with_options(Kind::Viscosity, &mech, &arch, Variant::Naive, &opts).unwrap())
    });
    g.bench_function("overlaid_compile", |b| {
        b.iter(|| {
            build_with_options(Kind::Viscosity, &mech, &arch, Variant::WarpSpecialized, &opts)
                .unwrap()
        })
    });
    g.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
