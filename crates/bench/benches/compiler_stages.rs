//! Criterion bench: individual compiler stages (mapping, scheduling,
//! barrier allocation) on the heptane chemistry graph — the paper's most
//! demanding kernel.
use criterion::{criterion_group, criterion_main, Criterion};
use chemkin::reference::tables::ChemistrySpec;
use singe::barrier_alloc::allocate;
use singe::config::{CompileOptions, Placement};
use singe::kernels::chemistry::chemistry_dfg;
use singe::mapping::map_ops;
use singe::sync::schedule;

fn bench(c: &mut Criterion) {
    let mech = chemkin::synth::heptane();
    let spec = ChemistrySpec::build(&mech);
    let dfg = chemistry_dfg(&spec, 16);
    let opts = CompileOptions::builder()
        .warps(16)
        .point_iters(2)
        .placement(Placement::Buffer(176))
        .w_locality(1.0)
        .build();
    let mut g = c.benchmark_group("compiler_stages_heptane_chemistry");
    g.sample_size(10);
    g.bench_function("mapping", |b| b.iter(|| map_ops(&dfg, &opts).unwrap()));
    let mapping = map_ops(&dfg, &opts).unwrap();
    g.bench_function("scheduling", |b| b.iter(|| schedule(&dfg, &mapping, &opts).unwrap()));
    let sched = schedule(&dfg, &mapping, &opts).unwrap();
    g.bench_function("barrier_allocation", |b| b.iter(|| allocate(&sched).unwrap()));
    g.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
