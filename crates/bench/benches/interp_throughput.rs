//! Criterion bench: raw interpreter throughput — warp-instructions per
//! second executing one warp-specialized DME chemistry CTA (the hot loop
//! behind every probe launch and figure sweep).
use chemkin::state::{GridDims, GridState};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gpu_sim::arch::GpuArch;
use gpu_sim::flatten_cached;
use gpu_sim::interp::run_cta;
use singe::kernels::launch_arrays;
use singe_bench::{build, Kind, Variant};

fn bench(c: &mut Criterion) {
    let mech = chemkin::synth::dme();
    let arch = GpuArch::kepler_k20c();
    let built = build(Kind::Chemistry, &mech, &arch, Variant::WarpSpecialized);
    let prog = flatten_cached(&built.kernel);
    let points = built.kernel.points_per_cta;
    let grid = GridState::random(GridDims { nx: points, ny: 1, nz: 1 }, built.n_species, 1234);
    let arrays = launch_arrays(&built.kernel.global_arrays, &grid).expect("known arrays");

    // Warp-instructions actually replayed per CTA: the sum of every warp's
    // flattened stream (loop trip counts included).
    let warp_instrs: u64 = (0..prog.n_warps()).map(|w| prog.stream_len(w) as u64).sum();

    let mut g = c.benchmark_group("interp_throughput");
    g.sample_size(10);
    g.throughput(Throughput::Elements(warp_instrs));
    g.bench_function("dme_chemistry_ws_cta", |b| {
        b.iter(|| {
            run_cta(&built.kernel, &prog, &arrays, points, 0, false, &arch)
                .expect("probe CTA")
                .out_buffers
                .len()
        })
    });
    g.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
