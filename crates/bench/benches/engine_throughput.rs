//! Criterion bench: segment-compiled engine vs legacy interpreter on one
//! warp-specialized DME viscosity CTA, on both modeled architectures.
//!
//! Two metrics per configuration:
//! * `*_instrs` — warp-instructions per second (`Throughput::Elements` of
//!   the summed flattened stream lengths), comparable to
//!   `interp_throughput`;
//! * `*_points` — grid points per CTA execution (Mpts/s in the report),
//!   the paper's headline throughput metric.
//!
//! `run_cta` is the engine fast path (pre-lowered superblocks over SoA
//! lane vectors, bulk event accounting); `run_cta_profiled` with no
//! profiler is the legacy per-instruction interpreter kept as the
//! differential-testing reference. The two must produce bit-identical
//! outputs and EventCounts — this bench measures how much the lowering
//! buys.
use chemkin::state::{GridDims, GridState};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gpu_sim::arch::GpuArch;
use gpu_sim::flatten_cached;
use gpu_sim::interp::{run_cta, run_cta_profiled};
use singe::kernels::launch_arrays;
use singe_bench::{build, Kind, Variant};

fn bench(c: &mut Criterion) {
    let mech = chemkin::synth::dme();
    for arch in [GpuArch::fermi_c2070(), GpuArch::kepler_k20c()] {
        let label = arch.name.split_whitespace().last().unwrap_or(arch.name);
        let built = build(Kind::Viscosity, &mech, &arch, Variant::WarpSpecialized);
        let prog = flatten_cached(&built.kernel);
        let points = built.kernel.points_per_cta;
        let grid =
            GridState::random(GridDims { nx: points, ny: 1, nz: 1 }, built.n_species, 1234);
        let arrays = launch_arrays(&built.kernel.global_arrays, &grid).expect("known arrays");

        let warp_instrs: u64 = (0..prog.n_warps()).map(|w| prog.stream_len(w) as u64).sum();

        for (metric, elements) in
            [("instrs", warp_instrs), ("points", points as u64)]
        {
            let mut g = c.benchmark_group(format!("engine_throughput/{label}/{metric}"));
            g.sample_size(10);
            g.throughput(Throughput::Elements(elements));
            g.bench_function("engine", |b| {
                b.iter(|| {
                    run_cta(&built.kernel, &prog, &arrays, points, 0, false, &arch)
                        .expect("engine CTA")
                        .out_buffers
                        .len()
                })
            });
            g.bench_function("legacy_interp", |b| {
                b.iter(|| {
                    run_cta_profiled(
                        &built.kernel, &prog, &arrays, points, 0, false, &arch, None,
                    )
                    .expect("interp CTA")
                    .out_buffers
                    .len()
                })
            });
            g.finish();
        }
    }
}
criterion_group!(benches, bench);
criterion_main!(benches);
