//! Profiling harness: run the primary engine CTA (DME viscosity,
//! warp-specialized, Kepler) in a loop so a sampling profiler can see
//! where the time goes (debug aid).

use chemkin::state::{GridDims, GridState};
use gpu_sim::interp::run_cta;
use gpu_sim::{flatten_cached, GpuArch};
use singe::kernels::launch_arrays;
use singe_bench::{build, Kind, Variant};

fn main() {
    let mech = chemkin::synth::dme();
    let arch = GpuArch::kepler_k20c();
    let built = build(Kind::Viscosity, &mech, &arch, Variant::WarpSpecialized);
    let prog = flatten_cached(&built.kernel);
    let points = built.kernel.points_per_cta;
    let grid = GridState::random(GridDims { nx: points, ny: 1, nz: 1 }, built.n_species, 1234);
    let arrays = launch_arrays(&built.kernel.global_arrays, &grid).expect("known arrays");
    let reps: usize = std::env::var("REPS").ok().and_then(|s| s.parse().ok()).unwrap_or(2000);
    let t = std::time::Instant::now();
    for _ in 0..reps {
        run_cta(&built.kernel, &prog, &arrays, points, 0, false, &arch).expect("engine CTA");
    }
    let dt = t.elapsed().as_secs_f64();
    println!("{reps} reps, {:.3} ms/CTA", dt / reps as f64 * 1e3);
}
