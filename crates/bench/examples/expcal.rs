//! Quick calibration probe for the per-lane exp cost (debug aid).
//!
//! Measures both a long contiguous slice (amortized cost) and repeated
//! 32-lane calls (the engine's actual call pattern for unbatched exp
//! uops), so per-call dispatch overhead is visible.

use std::time::Instant;

fn main() {
    let xs: Vec<f64> = (0..4096).map(|i| (i as f64) * 0.0043 - 8.0).collect();
    let out = std::cell::RefCell::new(vec![0.0f64; xs.len()]);
    for _ in 0..3 {
        gpu_sim::vmath::exp_slice(&xs, &mut out.borrow_mut());
    }
    let mut best = f64::INFINITY;
    for _ in 0..20 {
        let t = Instant::now();
        gpu_sim::vmath::exp_slice(std::hint::black_box(&xs), &mut out.borrow_mut());
        std::hint::black_box(&mut out.borrow_mut()[0]);
        best = best.min(t.elapsed().as_secs_f64());
    }
    println!(
        "bulk 4096:  best {:.3} us, {:.3} ns/lane, checksum {}",
        best * 1e6,
        best / xs.len() as f64 * 1e9,
        out.borrow().iter().sum::<f64>()
    );

    // Engine call pattern: one 32-lane call per exp uop.
    let mut best32 = f64::INFINITY;
    for _ in 0..20 {
        let t = Instant::now();
        for c in 0..xs.len() / 32 {
            let o = &mut out.borrow_mut()[c * 32..(c + 1) * 32];
            gpu_sim::vmath::exp_slice(std::hint::black_box(&xs[c * 32..(c + 1) * 32]), o);
        }
        std::hint::black_box(&mut out.borrow_mut()[0]);
        best32 = best32.min(t.elapsed().as_secs_f64());
    }
    println!(
        "32-at-a-time: best {:.3} us, {:.3} ns/lane, checksum {}",
        best32 * 1e6,
        best32 / xs.len() as f64 * 1e9,
        out.borrow().iter().sum::<f64>()
    );
}
