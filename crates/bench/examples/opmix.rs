//! Ad-hoc probe: per-op engine cost on synthetic single-op kernels plus
//! the end-to-end bench kernel. Not part of the committed bench suite.

use chemkin::state::{GridDims, GridState};
use gpu_sim::arch::GpuArch;
use gpu_sim::flatten_cached;
use gpu_sim::interp::run_cta;
use gpu_sim::isa::*;
use singe::kernels::launch_arrays;
use singe_bench::{build, Kind, Variant};
use std::time::Instant;

const N_OPS: usize = 4000;

fn base_kernel(name: &str) -> Kernel {
    Kernel {
        name: name.into(),
        body: vec![],
        warps_per_cta: 1,
        points_per_cta: 32,
        dregs_per_thread: 8,
        iregs_per_thread: 4,
        shared_words: 64,
        local_words_per_thread: 2,
        const_banks: vec![(0..64).map(|i| i as f64 * 0.5).collect()],
        iconst_banks: vec![],
        barriers_used: 1,
        global_arrays: vec![
            ArrayDecl { name: "in".into(), rows: 2, output: false },
            ArrayDecl { name: "out".into(), rows: 1, output: true },
        ],
        spilled_bytes_per_thread: 0,
        exp_const_from_registers: false,
    }
}

fn time_kernel(name: &str, body: Vec<Node>, input: &[f64]) -> f64 {
    let mut k = base_kernel(name);
    k.body = body;
    let prog = flatten_cached(&k);
    let arch = GpuArch::kepler_k20c();
    let inputs: Vec<&[f64]> = vec![input, &[]];
    for _ in 0..3 {
        run_cta(&k, &prog, &inputs, 32, 0, false, &arch).unwrap();
    }
    let n = 50;
    let t = Instant::now();
    for _ in 0..n {
        run_cta(&k, &prog, &inputs, 32, 0, false, &arch).unwrap();
    }
    t.elapsed().as_secs_f64() / n as f64
}

fn main() {
    let input: Vec<f64> = (0..64).map(|i| 0.001 + i as f64 * 0.01).collect();
    let ld = Node::Op(Instr::LdGlobal {
        dst: 0,
        addr: GAddr { array: GlobalId(0), row: IdxOp::Imm(0), point: PointRef::Lane },
        ldg: false,
    });
    let st = Node::Op(Instr::StGlobal {
        src: Op::Reg(1),
        addr: GAddr { array: GlobalId(1), row: IdxOp::Imm(0), point: PointRef::Lane },
    });

    let mk = |op: &dyn Fn(usize) -> Instr| -> Vec<Node> {
        let mut b = vec![ld.clone()];
        for i in 0..N_OPS {
            b.push(Node::Op(op(i)));
        }
        b.push(st.clone());
        b
    };

    let empty = time_kernel("empty", vec![ld.clone(), st.clone()], &input);
    // Every case is a serial chain through reg 1 (the stored register) so
    // dead-code elimination cannot remove any of the timed ops.
    let cases: Vec<(&str, Vec<Node>)> = vec![
        ("DAdd    ", mk(&|_| Instr::DAdd { dst: 1, a: Op::Reg(1), b: Op::Reg(0) })),
        ("DAddImm ", mk(&|_| Instr::DAdd { dst: 1, a: Op::Reg(1), b: Op::Imm(1.25) })),
        ("DMul    ", mk(&|_| Instr::DMul { dst: 1, a: Op::Reg(1), b: Op::Reg(0) })),
        ("MulAdd  ", mk(&|i| if i % 2 == 0 {
            Instr::DMul { dst: 2, a: Op::Reg(1), b: Op::Reg(0) }
        } else {
            Instr::DAdd { dst: 1, a: Op::Reg(2), b: Op::Reg(0) }
        })),
        ("DFma    ", mk(&|_| Instr::DFma { dst: 1, a: Op::Reg(1), b: Op::Reg(0), c: Op::Reg(2), const_c: false })),
        ("DExp    ", mk(&|_| Instr::DExp { dst: 1, a: Op::Reg(1) })),
        ("Shfl+Add", mk(&|i| if i % 2 == 0 {
            Instr::Shfl { dst: 2, src: 0, lane: (i % 32) as u8 }
        } else {
            Instr::DAdd { dst: 1, a: Op::Reg(1), b: Op::Reg(2) }
        })),
        ("LdSh+Add", mk(&|i| if i % 2 == 0 {
            Instr::LdShared { dst: 2, addr: SAddr::lane(0) }
        } else {
            Instr::DAdd { dst: 1, a: Op::Reg(1), b: Op::Reg(2) }
        })),
    ];
    println!("empty kernel: {:.1} us", empty * 1e6);
    for (name, body) in cases {
        let t = time_kernel(name, body, &input);
        println!("{name}: {:7.2} ns/op", (t - empty) / N_OPS as f64 * 1e9);
    }

    // End-to-end bench kernel.
    let mech = chemkin::synth::dme();
    let arch = GpuArch::kepler_k20c();
    let built = build(Kind::Viscosity, &mech, &arch, Variant::WarpSpecialized);
    let prog = flatten_cached(&built.kernel);
    let points = built.kernel.points_per_cta;
    let grid = GridState::random(GridDims { nx: points, ny: 1, nz: 1 }, built.n_species, 1234);
    let arrays = launch_arrays(&built.kernel.global_arrays, &grid).expect("arrays");
    for _ in 0..3 {
        run_cta(&built.kernel, &prog, &arrays, points, 0, false, &arch).unwrap();
    }
    let mut best = f64::INFINITY;
    for _ in 0..30 {
        let t = Instant::now();
        run_cta(&built.kernel, &prog, &arrays, points, 0, false, &arch).unwrap();
        best = best.min(t.elapsed().as_secs_f64());
    }
    println!("engine CTA (min of 30): {:.3} ms", best * 1e3);
}
