//! Golden tests for the per-warp cycle-attribution profiler as surfaced
//! through the bench harness: the breakdown is deterministic (bit-stable
//! across worker-pool widths), every warp's reasons sum exactly to the
//! CTA total, and the warp-specialized variant actually exhibits the
//! named-barrier waits the paper's protocol implies.

use chemkin::synth;
use gpu_sim::arch::GpuArch;
use singe::config::CompileOptions;
use singe_bench::{
    build_with_options, profile_built, profile_row, profile_rows_to_json, Kind, ProfileRow,
    Variant,
};

fn small_mech() -> chemkin::Mechanism {
    synth::via_text(&synth::SynthConfig {
        name: "prof".into(),
        n_species: 8,
        n_reactions: 12,
        n_qssa: 2,
        n_stiff: 2,
        seed: 17,
    })
}

fn small_opts(kind: Kind, n_species: usize, arch: &GpuArch) -> CompileOptions {
    let mut opts = singe_bench::ws_options(kind, n_species, arch);
    opts.warps = opts.warps.min(4);
    opts
}

const VARIANTS: [Variant; 3] = [Variant::Baseline, Variant::WarpSpecialized, Variant::Naive];

/// Every variant's profile satisfies the closed-set invariant: for every
/// warp, issue + barrier_wait + icache_miss + const_replay + overhead +
/// idle == total_cycles. Checked both through `check_attribution` and by
/// summing the public counters directly.
#[test]
fn every_attributed_cycle_sums_to_the_total() {
    let m = small_mech();
    let arch = GpuArch::kepler_k20c();
    for kind in [Kind::Viscosity, Kind::Diffusion, Kind::Chemistry] {
        let opts = small_opts(kind, m.n_transported(), &arch);
        for variant in VARIANTS {
            let built = build_with_options(kind, &m, &arch, variant, &opts)
                .unwrap_or_else(|e| panic!("{kind:?} {variant:?}: {e}"));
            let prof = profile_built(&built, &arch, false);
            prof.check_attribution()
                .unwrap_or_else(|e| panic!("{kind:?} {variant:?}: {e}"));
            assert!(prof.total_cycles > 0, "{kind:?} {variant:?}: empty profile");
            for (w, wc) in prof.warps.iter().enumerate() {
                let sum = wc.issue
                    + wc.barrier_wait.iter().sum::<u64>()
                    + wc.icache_miss
                    + wc.const_replay
                    + wc.overhead
                    + wc.idle;
                assert_eq!(
                    sum, prof.total_cycles,
                    "{kind:?} {variant:?} warp {w}: reasons do not sum to total"
                );
            }
        }
    }
}

/// Golden determinism: profiling the same kernel twice — including the
/// structured event stream — yields identical results, and running the
/// per-variant profiles on worker pools of width 1 and 8 produces
/// byte-identical serialized rows (the `report profile --jobs N`
/// guarantee).
#[test]
fn breakdown_is_bit_stable_across_runs_and_jobs() {
    let m = small_mech();
    let arch = GpuArch::kepler_k20c();
    let opts = small_opts(Kind::Diffusion, m.n_transported(), &arch);
    let built =
        build_with_options(Kind::Diffusion, &m, &arch, Variant::WarpSpecialized, &opts).unwrap();
    let first = profile_built(&built, &arch, true);
    let second = profile_built(&built, &arch, true);
    assert_eq!(first, second, "repeated profiled launches must match exactly");

    let rows_at = |jobs: usize| -> String {
        let rows: Vec<ProfileRow> = singe::pool::run_ordered(jobs, VARIANTS.len(), |i| {
            let variant = VARIANTS[i];
            let b = build_with_options(Kind::Diffusion, &m, &arch, variant, &opts).unwrap();
            let prof = profile_built(&b, &arch, false);
            profile_row(Kind::Diffusion, &m.name, &arch, variant, &prof)
        });
        profile_rows_to_json(&rows)
    };
    assert_eq!(rows_at(1), rows_at(8), "profile rows must not depend on pool width");
}

/// The warp-specialized diffusion kernel runs the paper's named-barrier
/// protocol, so some warp must be attributed barrier-wait cycles — and
/// the baseline (no named barriers beyond none at all) must not be.
#[test]
fn warp_specialized_waits_on_named_barriers() {
    let m = small_mech();
    let arch = GpuArch::fermi_c2070();
    let opts = small_opts(Kind::Diffusion, m.n_transported(), &arch);
    let ws =
        build_with_options(Kind::Diffusion, &m, &arch, Variant::WarpSpecialized, &opts).unwrap();
    let r = profile_row(Kind::Diffusion, &m.name, &arch, Variant::WarpSpecialized,
        &profile_built(&ws, &arch, false));
    assert!(r.barrier_wait > 0, "warp-specialized diffusion should wait on barriers");
    assert!(r.attribution_ok);
    assert!(!r.barrier_wait_by_id.is_empty());
    assert_eq!(r.barrier_wait_by_id.iter().sum::<u64>(), r.barrier_wait);

    let base = build_with_options(Kind::Diffusion, &m, &arch, Variant::Baseline, &opts).unwrap();
    let rb = profile_row(Kind::Diffusion, &m.name, &arch, Variant::Baseline,
        &profile_built(&base, &arch, false));
    assert_eq!(rb.barrier_wait, 0, "data-parallel baseline uses no named barriers");
}

/// The structured event stream carries the warp phase spans and the
/// named-barrier arrive/sync edges the Chrome trace visualizes.
#[test]
fn event_stream_records_barrier_edges() {
    let m = small_mech();
    let arch = GpuArch::kepler_k20c();
    let opts = small_opts(Kind::Diffusion, m.n_transported(), &arch);
    let built =
        build_with_options(Kind::Diffusion, &m, &arch, Variant::WarpSpecialized, &opts).unwrap();
    let prof = profile_built(&built, &arch, true);
    assert!(!prof.events.is_empty());
    assert!(prof.events.iter().any(|e| e.name == "exec"));
    assert!(prof.events.iter().any(|e| e.name.starts_with("arrive b")));
    assert!(prof.events.iter().any(|e| e.name.starts_with("wait b")));
    // The export is valid, non-empty Chrome-trace JSON.
    let json = gpu_sim::chrome_trace_json(&[("diffusion/ws", &prof.events)]);
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.contains("\"ph\":\"X\""));
    assert!(json.contains("\"ph\":\"i\""));
}
