//! The report generator must be bit-deterministic across worker counts:
//! stdout and `target/report.json` from `--jobs 1` and `--jobs 8` must be
//! byte-identical, or parallel sweeps have changed result order or
//! floating-point evaluation order.

use std::path::PathBuf;
use std::process::Command;

fn run_report(figure: &str, jobs: &str, dir: &PathBuf) -> (Vec<u8>, Vec<u8>) {
    std::fs::create_dir_all(dir).expect("mkdir");
    let out = Command::new(env!("CARGO_BIN_EXE_report"))
        .args([figure, "--jobs", jobs])
        .current_dir(dir)
        // Keep benchmark bookkeeping out of determinism runs: the timing
        // JSON is wall-clock and never identical.
        .env("SINGE_BENCH_JSON", "0")
        .output()
        .expect("spawn report");
    assert!(
        out.status.success(),
        "report {figure} --jobs {jobs} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read(dir.join("target/report.json")).unwrap_or_default();
    (out.stdout, json)
}

#[test]
fn report_is_bit_identical_across_job_counts() {
    // Debug builds interpret ~20x slower; one figure is enough to exercise
    // the pool + ordered commit there, the full report runs in release.
    let figure = if cfg!(debug_assertions) { "fig9" } else { "all" };
    let base = std::env::temp_dir().join(format!("singe-determinism-{}", std::process::id()));
    let d1 = base.join("jobs1");
    let d8 = base.join("jobs8");
    let (stdout1, json1) = run_report(figure, "1", &d1);
    let (stdout8, json8) = run_report(figure, "8", &d8);
    std::fs::remove_dir_all(&base).ok();
    assert!(!stdout1.is_empty(), "report produced no output");
    assert_eq!(stdout1, stdout8, "stdout differs between --jobs 1 and --jobs 8");
    assert_eq!(json1, json8, "target/report.json differs between --jobs 1 and --jobs 8");
}
