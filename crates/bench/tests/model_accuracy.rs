//! Differential test harness for the analytical performance model
//! (§4/§5/§6 features, no interpretation) against the simulator:
//!
//! * over the full extended autotune candidate grid for the DME-sized
//!   viscosity and diffusion kernels on both architectures, the model's
//!   predicted seconds rank-correlate with simulated seconds at
//!   Spearman ρ ≥ [`SPEARMAN_GOLDEN`], and the exhaustive winner is
//!   always inside the model's top-[`singe::autotune::GUIDED_TOP_K`];
//! * model-guided autotuning simulates ≤ 25% of the grid yet lands
//!   within [`WINNER_TOLERANCE`] of the exhaustive winner's simulated
//!   time — on all three kernels (chemistry included) × both arches;
//! * the model's per-warp-group attribution agrees with the runtime
//!   profiler about which warp group is the bottleneck and which named
//!   barrier is hottest on the warp-specialized diffusion kernel.
//!
//! The thresholds are committed goldens: loosening them is a visible
//! diff, not a silent regression.

use chemkin::reference::tables::{ChemistrySpec, DiffusionTables, ViscosityTables};
use chemkin::state::{GridDims, GridState};
use chemkin::synth;
use chemkin::Mechanism;
use gpu_sim::arch::GpuArch;
use singe::autotune::{
    autotune, autotune_guided, candidate_grid_extended, TuneResult, GUIDED_TOP_K,
};
use singe::config::{CompileOptions, Placement};
use singe::dfg::Dfg;
use singe::kernels::{chemistry, diffusion, launch_arrays, viscosity};
use singe_bench::{build_with_options, predict_built, profile_built, spearman, Kind, Variant};

/// Golden: minimum Spearman rank correlation between predicted and
/// simulated seconds over the candidate grid.
const SPEARMAN_GOLDEN: f64 = 0.8;

/// Golden: guided winner's simulated seconds must be within this factor
/// of the exhaustive winner's.
const WINNER_TOLERANCE: f64 = 1.02;

/// Golden: fraction of the candidate grid guided search may simulate.
const SIMULATED_FRACTION: f64 = 0.25;

fn dme() -> Mechanism {
    synth::dme()
}

/// A mid-sized mechanism keeps the chemistry sweep fast in debug builds;
/// the kernel structure (QSSA/stiff warp groups) is the same as DME's.
fn chem_mech() -> Mechanism {
    synth::via_text(&synth::SynthConfig {
        name: "chemacc".into(),
        n_species: 12,
        n_reactions: 24,
        n_qssa: 3,
        n_stiff: 4,
        seed: 29,
    })
}

/// The dfg each sweep compiles every candidate against: parameterized at
/// the grid's minimum warp count so all 24 candidates are legal targets.
fn sweep_dfg(kind: Kind, mech: &Mechanism) -> Dfg {
    match kind {
        Kind::Viscosity => viscosity::viscosity_dfg(&ViscosityTables::build(mech), 2),
        Kind::Diffusion => diffusion::diffusion_dfg(&DiffusionTables::build(mech), 2),
        Kind::Chemistry => chemistry::chemistry_dfg(&ChemistrySpec::build(mech), 2),
    }
}

fn grid_for(kind: Kind) -> Vec<CompileOptions> {
    let placement = match kind {
        Kind::Viscosity => Placement::Store,
        Kind::Diffusion => Placement::Mixed(176),
        Kind::Chemistry => Placement::Buffer(176),
    };
    candidate_grid_extended(placement)
}

fn inputs_closure(
    n_species: usize,
) -> impl Fn(&gpu_sim::isa::Kernel, usize) -> Vec<Vec<f64>> + Sync {
    move |k: &gpu_sim::isa::Kernel, pts: usize| {
        let g = GridState::random(GridDims { nx: pts, ny: 1, nz: 1 }, n_species, 7);
        launch_arrays(&k.global_arrays, &g)
            .expect("known arrays")
            .iter()
            .map(|s| s.to_vec())
            .collect()
    }
}

/// Identity of a tune point for cross-result comparison.
fn key(p: &singe::autotune::TunePoint) -> (usize, u32) {
    (p.options.warps, p.options.point_iters)
}

/// Exhaustive + guided sweep for one kernel × mechanism × arch, with all
/// the satellite-1 assertions.
fn check_sweep(kind: Kind, mech: &Mechanism, arch: &GpuArch) {
    let label = format!("{} {} {}", kind.name(), mech.name, arch.name);
    let dfg = sweep_dfg(kind, mech);
    let cands = grid_for(kind);
    let inputs = inputs_closure(mech.n_transported());
    let exhaustive = autotune(&dfg, arch, &cands, 256, &inputs).expect("exhaustive sweep runs");

    // Differential: model ranking vs simulated truth over every candidate
    // that both compiled and ran.
    let mut preds = Vec::new();
    let mut sims = Vec::new();
    for p in &exhaustive.points {
        if let (Some(pr), Some(s)) = (p.predicted_seconds, p.seconds) {
            preds.push(pr);
            sims.push(s);
        }
    }
    assert!(
        preds.len() >= cands.len() / 2,
        "{label}: only {} of {} candidates produced both a prediction and a time",
        preds.len(),
        cands.len()
    );
    let rho = spearman(&preds, &sims);
    assert!(
        rho >= SPEARMAN_GOLDEN,
        "{label}: Spearman {rho:.4} below golden {SPEARMAN_GOLDEN}"
    );

    // The exhaustive winner must sit inside the model's top-K prediction.
    let best_sim = exhaustive
        .points
        .iter()
        .filter(|p| p.seconds.is_some())
        .min_by(|a, b| a.seconds.partial_cmp(&b.seconds).expect("finite"))
        .expect("some candidate ran");
    let mut by_pred: Vec<&singe::autotune::TunePoint> =
        exhaustive.points.iter().filter(|p| p.predicted_seconds.is_some()).collect();
    by_pred.sort_by(|a, b| {
        a.predicted_seconds.partial_cmp(&b.predicted_seconds).expect("finite")
    });
    let top_k: Vec<(usize, u32)> = by_pred.iter().take(GUIDED_TOP_K).map(|p| key(p)).collect();
    assert!(
        top_k.contains(&key(best_sim)),
        "{label}: exhaustive winner {:?} not in model top-{GUIDED_TOP_K} {top_k:?}",
        key(best_sim)
    );

    // Guided search: simulates at most 25% of the grid, lands within 2%.
    let guided =
        autotune_guided(&dfg, arch, &cands, 256, GUIDED_TOP_K, &inputs).expect("guided runs");
    let simulated = guided.points.iter().filter(|p| p.seconds.is_some()).count();
    assert!(
        (simulated as f64) <= SIMULATED_FRACTION * cands.len() as f64,
        "{label}: guided simulated {simulated} of {} candidates (> {SIMULATED_FRACTION:.0e})",
        cands.len()
    );
    let guided_best = winner_seconds(&guided);
    let exhaustive_best = best_sim.seconds.expect("winner ran");
    assert!(
        guided_best <= exhaustive_best * WINNER_TOLERANCE,
        "{label}: guided winner {guided_best:.4e}s misses exhaustive {exhaustive_best:.4e}s \
         by more than {WINNER_TOLERANCE}x"
    );
}

fn winner_seconds(r: &TuneResult) -> f64 {
    let k = (r.best_options.warps, r.best_options.point_iters);
    r.points
        .iter()
        .filter(|p| key(p) == k)
        .find_map(|p| p.seconds)
        .expect("winner has a simulated time")
}

#[test]
fn viscosity_model_ranks_grid_on_fermi() {
    check_sweep(Kind::Viscosity, &dme(), &GpuArch::fermi_c2070());
}

#[test]
fn viscosity_model_ranks_grid_on_kepler() {
    check_sweep(Kind::Viscosity, &dme(), &GpuArch::kepler_k20c());
}

#[test]
fn diffusion_model_ranks_grid_on_fermi() {
    check_sweep(Kind::Diffusion, &dme(), &GpuArch::fermi_c2070());
}

#[test]
fn diffusion_model_ranks_grid_on_kepler() {
    check_sweep(Kind::Diffusion, &dme(), &GpuArch::kepler_k20c());
}

#[test]
fn chemistry_guided_matches_exhaustive_on_both_arches() {
    let m = chem_mech();
    check_sweep(Kind::Chemistry, &m, &GpuArch::fermi_c2070());
    check_sweep(Kind::Chemistry, &m, &GpuArch::kepler_k20c());
}

/// Satellite 4: on the warp-specialized diffusion kernel the model and
/// the runtime profiler must agree *qualitatively* — same bottleneck
/// warp group (by per-warp busy cycles) and same hottest named barrier —
/// on both architectures.
#[test]
fn model_and_profiler_agree_on_diffusion_bottleneck() {
    let m = dme();
    for arch in [GpuArch::fermi_c2070(), GpuArch::kepler_k20c()] {
        let opts = singe_bench::ws_options(Kind::Diffusion, m.n_transported(), &arch);
        let built =
            build_with_options(Kind::Diffusion, &m, &arch, Variant::WarpSpecialized, &opts)
                .expect("diffusion compiles");
        let model = predict_built(&built, &arch, built.kernel.points_per_cta);
        let profile = profile_built(&built, &arch, false);

        // Bottleneck group: rank the model's warp groups by the
        // *profiler's* measured per-warp busy cycles and check the model
        // picked the same argmax.
        let groups = &model.profile.groups;
        assert!(groups.len() >= 2, "{}: diffusion should specialize warps", arch.name);
        let profiled_busy: Vec<u64> = groups
            .iter()
            .map(|g| {
                g.warps.iter().map(|&w| profile.warps[w].busy()).sum::<u64>()
                    / g.warps.len().max(1) as u64
            })
            .collect();
        let profiled_argmax = (0..groups.len())
            .max_by_key(|&i| (profiled_busy[i], std::cmp::Reverse(i)))
            .expect("non-empty");
        assert_eq!(
            model.profile.bottleneck_group(),
            profiled_argmax,
            "{}: model bottleneck group disagrees with profiler (profiled busy {:?})",
            arch.name,
            profiled_busy
        );

        // Hottest barrier: the model's predicted per-barrier-id wait
        // attribution picks the same barrier the profiler measured.
        let (model_bar, model_wait) =
            model.profile.hottest_barrier().expect("ws diffusion waits on barriers");
        let measured = profile.totals().barrier_wait.clone();
        let measured_bar = measured
            .iter()
            .copied()
            .enumerate()
            .max_by_key(|&(b, v)| (v, std::cmp::Reverse(b)))
            .map(|(b, _)| b)
            .expect("non-empty");
        assert!(measured[measured_bar] > 0, "{}: profiler saw no barrier waits", arch.name);
        assert_eq!(
            model_bar, measured_bar,
            "{}: model hottest barrier {model_bar} (wait {model_wait}) vs profiler {measured_bar}",
            arch.name
        );
    }
}
