//! Routing the report generator through the serve-layer artifact cache
//! (`SINGE_SERVE_CACHE`) must be invisible in the output: stdout from the
//! direct path, a cold serve-cached run, and a warm serve-cached run over
//! the same cache directory must all be byte-identical.

use std::path::Path;
use std::process::Command;

fn run_report(figure: &str, dir: &Path, serve_cache: Option<&Path>) -> Vec<u8> {
    std::fs::create_dir_all(dir).expect("mkdir");
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_report"));
    cmd.args([figure, "--jobs", "2"])
        .current_dir(dir)
        // Timing JSON is wall-clock and never identical; keep it out.
        .env("SINGE_BENCH_JSON", "0");
    match serve_cache {
        Some(cache) => cmd.env("SINGE_SERVE_CACHE", cache),
        None => cmd.env_remove("SINGE_SERVE_CACHE"),
    };
    let out = cmd.output().expect("spawn report");
    assert!(
        out.status.success(),
        "report {figure} (serve_cache={serve_cache:?}) failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

#[test]
fn report_is_bit_identical_through_serve_cache() {
    // Debug builds interpret ~20x slower; one compile-heavy figure is
    // enough to exercise the serve routing there.
    let figure = if cfg!(debug_assertions) { "fig9" } else { "all" };
    let base = std::env::temp_dir().join(format!("singe-serve-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let cache = base.join("cache");

    let direct = run_report(figure, &base.join("direct"), None);
    let cold = run_report(figure, &base.join("cold"), Some(&cache));
    // Same cache dir, new process: every compile should come off disk.
    let warm = run_report(figure, &base.join("warm"), Some(&cache));

    let n_artifacts = std::fs::read_dir(&cache)
        .expect("serve cache dir exists")
        .filter_map(|e| e.ok())
        .filter(|e| e.path().extension().is_some_and(|x| x == "art"))
        .count();
    std::fs::remove_dir_all(&base).ok();

    assert!(!direct.is_empty(), "report produced no output");
    assert!(n_artifacts > 0, "serve-routed run persisted no artifacts");
    assert_eq!(
        direct, cold,
        "stdout differs between the direct path and a cold serve-cached run"
    );
    assert_eq!(
        direct, warm,
        "stdout differs between the direct path and a warm serve-cached run"
    );
}
