//! Offline subset of `proptest`.
//!
//! Supports exactly the surface the workspace tests use: the
//! `proptest!` macro with an optional `#![proptest_config(...)]`
//! header, `prop_assert!`/`prop_assert_eq!`/`prop_assume!`, integer
//! range strategies, `proptest::bool::ANY`, and
//! `proptest::collection::vec`. Cases are generated from a
//! deterministic per-test RNG (FNV-hashed test name + case index), so
//! runs are reproducible without persistence files. Shrinking is not
//! implemented; failures print the fully-instantiated case instead.
//! Checked-in `.proptest-regressions` files are kept as documentation
//! of historical shrunk cases and mirrored by explicit unit tests.

pub mod test_runner {
    /// Error type returned by generated test closures.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` failed — the case is discarded, not counted.
        Reject,
        /// `prop_assert!`-family failure with a rendered message.
        Fail(String),
    }

    /// Subset of proptest's config: only `cases` matters here.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic SplitMix64 stream keyed by test name and case index.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn deterministic(test_name: &str, case: u32) -> Self {
            // FNV-1a over the test name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h ^ (u64::from(case) << 32) ^ u64::from(case) }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use core::ops::Range;

    /// A value generator. Unlike real proptest there is no value tree or
    /// shrinking — `sample` draws a fresh instance.
    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
        )*};
    }

    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod bool {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy yielding uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use core::ops::Range;

    /// Strategy for `Vec`s with element strategy `S` and a length range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = Strategy::sample(&self.len, rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {} — {}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                lhs,
                rhs
            )));
        }
    }};
}

/// The `proptest!` block: declares `#[test]` functions whose arguments
/// are drawn from strategies. Rejected cases (via `prop_assume!`) do not
/// count toward the configured case total, bounded by a 16x attempt cap.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr;
     $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let max_attempts = config.cases.saturating_mul(16).max(64);
                let mut accepted = 0u32;
                let mut attempts = 0u32;
                while accepted < config.cases && attempts < max_attempts {
                    let mut case_rng = $crate::test_runner::TestRng::deterministic(
                        concat!(module_path!(), "::", stringify!($name)),
                        attempts,
                    );
                    attempts += 1;
                    $(
                        let $arg = $crate::strategy::Strategy::sample(&($strat), &mut case_rng);
                    )+
                    let case_desc = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            #[allow(unreachable_code)]
                            Ok(())
                        })();
                    match outcome {
                        Ok(()) => accepted += 1,
                        Err($crate::test_runner::TestCaseError::Reject) => {}
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case failed: {}\n  case: {}",
                                msg, case_desc
                            );
                        }
                    }
                }
                assert!(
                    accepted >= config.cases.min(1),
                    "proptest: all {} attempts were rejected by prop_assume!",
                    attempts
                );
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_assume_work(a in 0usize..10, b in 2u64..5, flip in crate::bool::ANY) {
            prop_assume!(a != 3);
            prop_assert!(a < 10);
            prop_assert!((2..5).contains(&b), "b = {}", b);
            prop_assert_eq!(flip, flip);
        }

        #[test]
        fn vec_strategy_respects_bounds(xs in crate::collection::vec(0u32..7, 2..6)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            for x in xs {
                prop_assert!(x < 7);
            }
        }
    }

    #[test]
    fn determinism_across_runs() {
        let mut a = crate::test_runner::TestRng::deterministic("t", 0);
        let mut b = crate::test_runner::TestRng::deterministic("t", 0);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
