//! Offline subset of the `criterion` benchmarking API.
//!
//! Provides `Criterion`, `benchmark_group`/`sample_size`/
//! `bench_function`/`finish`, and the `criterion_group!`/
//! `criterion_main!` macros so the workspace's `harness = false`
//! benches compile and run without the real crate. Timing is a plain
//! monotonic-clock mean over `sample_size` samples (no warmup
//! modeling, outlier rejection, or HTML reports) — good enough for
//! relative comparisons in this simulated-GPU setting.

use std::hint::black_box;
use std::time::Instant;

/// Top-level benchmark context.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 20 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            throughput: None,
            _ctx: self,
        }
    }
}

/// Work performed per sample, for rate reporting (mirrors the real
/// criterion's `Throughput`).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Abstract elements per iteration (instructions, rows, points...).
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _ctx: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Declare the work done per iteration; subsequent benches in the
    /// group report a rate alongside the raw times.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher { samples: Vec::with_capacity(self.sample_size) };
        for _ in 0..self.sample_size {
            f(&mut bencher);
        }
        let n = bencher.samples.len().max(1);
        let total: f64 = bencher.samples.iter().sum();
        let mean = total / n as f64;
        let best = bencher.samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let rate = match (self.throughput, best.is_finite() && best > 0.0) {
            (Some(Throughput::Elements(e)), true) => {
                // Scale to the rate: low-element benches (e.g. points per
                // CTA) would round to 0.0 Melem/s.
                let eps = e as f64 / best;
                if eps >= 1e6 {
                    format!(", {:.1} Melem/s", eps / 1e6)
                } else {
                    format!(", {:.1} Kelem/s", eps / 1e3)
                }
            }
            (Some(Throughput::Bytes(b)), true) => {
                format!(", {:.1} MiB/s", b as f64 / best / (1024.0 * 1024.0))
            }
            _ => String::new(),
        };
        println!(
            "{}/{}: mean {:.3} ms, best {:.3} ms ({} samples{})",
            self.name,
            id,
            mean * 1e3,
            if best.is_finite() { best * 1e3 } else { 0.0 },
            n,
            rate
        );
        self
    }

    pub fn finish(&mut self) {}
}

/// Per-sample measurement context passed to `bench_function` closures.
pub struct Bencher {
    samples: Vec<f64>,
}

impl Bencher {
    /// Time one sample of `f`, preventing the result from being
    /// optimized away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.samples.push(start.elapsed().as_secs_f64());
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_closures() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("self_test");
        let mut runs = 0u32;
        g.sample_size(3).bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        g.finish();
        assert_eq!(runs, 3);
    }
}
