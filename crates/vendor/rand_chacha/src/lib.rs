//! Offline ChaCha8 generator for the vendored `rand` subset.
//!
//! Implements the real ChaCha block function (8 rounds) with a
//! SplitMix64-expanded key, so `ChaCha8Rng::seed_from_u64` gives
//! deterministic, statistically solid streams without the upstream
//! crate. Stream positions and word order follow RFC 8439 layout; the
//! output sequence is *not* bit-compatible with upstream `rand_chacha`
//! (no consumer here relies on exact upstream streams, only on
//! determinism for a fixed seed).

use rand::{splitmix64, RngCore, SeedableRng};

const CHACHA_ROUNDS: usize = 8;

/// Deterministic ChaCha8 random number generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Input block: 4 constant words, 8 key words, 2 counter, 2 nonce.
    state: [u32; 16],
    /// Current keystream block.
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means exhausted.
    idx: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut x = self.state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // Column round.
            quarter(&mut x, 0, 4, 8, 12);
            quarter(&mut x, 1, 5, 9, 13);
            quarter(&mut x, 2, 6, 10, 14);
            quarter(&mut x, 3, 7, 11, 15);
            // Diagonal round.
            quarter(&mut x, 0, 5, 10, 15);
            quarter(&mut x, 1, 6, 11, 12);
            quarter(&mut x, 2, 7, 8, 13);
            quarter(&mut x, 3, 4, 9, 14);
        }
        for (o, (a, b)) in self.buf.iter_mut().zip(x.iter().zip(self.state.iter())) {
            *o = a.wrapping_add(*b);
        }
        // 64-bit block counter in words 12..14.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.idx = 0;
    }

    fn next_word(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }
}

#[inline]
fn quarter(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(16);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(12);
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(8);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(7);
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let w = splitmix64(&mut sm);
            pair[0] = w as u32;
            pair[1] = (w >> 32) as u32;
        }
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        state[4..12].copy_from_slice(&key);
        ChaCha8Rng { state, buf: [0; 16], idx: 16 }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }

    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(1234);
        let mut b = ChaCha8Rng::seed_from_u64(1234);
        let mut c = ChaCha8Rng::seed_from_u64(1235);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..4096 {
            let x: f64 = rng.gen();
            lo = lo.min(x);
            hi = hi.max(x);
        }
        assert!(lo < 0.01 && hi > 0.99, "lo={lo} hi={hi}");
    }
}
