//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of `rand` it actually uses: the
//! [`Rng`] extension trait with `gen`, `gen_bool`, and `gen_range` over
//! half-open and inclusive integer/float ranges, plus [`SeedableRng`]
//! with `seed_from_u64`. Distributions are plain uniform draws (modulo
//! reduction for integers, 53-bit mantissa fill for floats) — adequate
//! for mechanism synthesis and test-state generation, not cryptography.

use core::ops::{Range, RangeInclusive};

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding from a single word, as `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling helpers, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types drawable from the "standard" distribution (`rng.gen()`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Uniform in [0, 1) with full 53-bit mantissa resolution.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can produce a single uniform sample (`gen_range`).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64()) as f32
    }
}

/// SplitMix64 step; used by generators to expand a one-word seed.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Sm(u64);
    impl RngCore for Sm {
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.0)
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Sm(42);
        for _ in 0..1000 {
            let a: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&a));
            let b: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&b));
            let c: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&c));
            let d: f64 = rng.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Sm(7);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_600..3_400).contains(&hits), "hits = {hits}");
    }
}
