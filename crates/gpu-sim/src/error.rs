//! Simulator error types.

use std::fmt;

/// Errors raised during kernel validation or execution.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Structural problem detected before execution.
    InvalidKernel(String),
    /// All unfinished warps are blocked on named barriers — the deadlock
    /// the paper's Theorem 1 scheduling algorithm exists to prevent.
    Deadlock {
        /// CTA index where the deadlock occurred.
        cta: usize,
        /// `(warp, barrier)` pairs of the blocked warps.
        blocked: Vec<(usize, u8)>,
    },
    /// Out-of-bounds memory access.
    OutOfBounds {
        /// Memory space name ("shared", "global", ...).
        space: &'static str,
        /// Offending address/index.
        addr: usize,
        /// Capacity of the space.
        limit: usize,
    },
    /// Barrier used with inconsistent expected-warp counts.
    BarrierMismatch {
        /// Barrier id.
        bar: u8,
        /// Details.
        msg: String,
    },
    /// Launch-level misconfiguration (inputs don't match declarations).
    BadLaunch(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidKernel(m) => write!(f, "invalid kernel: {m}"),
            SimError::Deadlock { cta, blocked } => {
                write!(f, "deadlock in CTA {cta}: blocked warps {blocked:?}")
            }
            SimError::OutOfBounds { space, addr, limit } => {
                write!(f, "{space} access out of bounds: {addr} >= {limit}")
            }
            SimError::BarrierMismatch { bar, msg } => {
                write!(f, "named barrier {bar} misuse: {msg}")
            }
            SimError::BadLaunch(m) => write!(f, "bad launch: {m}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Result alias for simulator operations.
pub type SimResult<T> = Result<T, SimError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = SimError::Deadlock { cta: 3, blocked: vec![(0, 2), (1, 2)] };
        assert!(e.to_string().contains("CTA 3"));
        let e = SimError::OutOfBounds { space: "shared", addr: 100, limit: 64 };
        assert!(e.to_string().contains("shared"));
    }
}
