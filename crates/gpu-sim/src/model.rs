//! Static analytical performance model.
//!
//! Predicts the per-warp cycle attribution of a compiled kernel from
//! *static* features alone — the interpreter never runs. Because kernel
//! streams carry no data-dependent control flow (warp branches and loop
//! trip counts are resolved at flatten time), the flattened per-warp
//! streams from [`crate::flatcache`] are exactly the instruction
//! sequences a CTA would execute, and the named-barrier protocol over
//! them can be replayed symbolically:
//!
//! 1. **Segment extraction** — each warp's stream is collapsed into
//!    straight-line segments (aggregated issue slots, branch headers,
//!    constant-line touches) separated by barrier operations.
//! 2. **Constant-cache estimate** — the constant working set
//!    (total bank bytes vs cache capacity) yields a total predicted miss
//!    count, distributed deterministically across warps and segments by
//!    largest-remainder apportionment (the one genuinely dynamic input,
//!    replaced by a working-set model — §6.1's replay discussion).
//! 3. **Barrier replay** — a cooperative round-robin over the segments
//!    drives a real [`Profiler`], reproducing the producer/consumer
//!    rate-matching of `bar.arrive`/`bar.sync` generations, so
//!    barrier-wait attribution has *identical semantics* to the
//!    interpreter-driven profile and inherits the closed-set sum
//!    invariant by construction.
//! 4. **Instruction-cache model** — the same
//!    [`interleaved_fetch_profile`] the interpreter uses runs over the
//!    precomputed static address streams, so the naïve-vs-overlaid
//!    icache working-set difference (§5, Figure 9) is captured exactly.
//!
//! Alongside the cycle attribution the model produces a predicted
//! [`EventCounts`]: issue/DP/FLOP/branch/barrier/local counts are exact
//! (streams are static); shared-memory transactions, global coalescing,
//! and constant hits/misses are estimates. Feeding these into
//! [`crate::timing::estimate`] yields predicted seconds comparable to a
//! simulated probe — the basis for model-guided autotuning.

use crate::arch::GpuArch;
use crate::counts::EventCounts;
use crate::flatcache::flatten_cached;
use crate::icache::interleaved_fetch_profile;
use crate::interp::{FlatOp, FlatProgram};
use crate::isa::{IdxOp, Instr, Kernel, SAddr};
use crate::profile::{CtaProfile, Profiler, WarpCycles};

/// A set of warps executing the same static instruction stream (same
/// flattened fetch-address sequence) — the model's unit of reporting,
/// matching the paper's producer/consumer warp groups.
#[derive(Debug, Clone)]
pub struct WarpGroup {
    /// Warp ids in the group (stream order; groups are keyed by first
    /// occurrence).
    pub warps: Vec<usize>,
    /// Cycle attribution summed over the group's warps.
    pub cycles: WarpCycles,
}

/// Static per-op mix features for the transcendental floor: how much of
/// the kernel is `exp`, and how much of that the engine lowering managed
/// to batch into contiguous `vmath::exp_slice` calls. Counted from the
/// pre-optimization stream (`exp_ops` is exactly what the interpreter
/// executes) plus the cached engine program's lowering statistics, so
/// `report engine-bench` measures the win instead of asserting it.
#[derive(Debug, Clone, Default)]
pub struct OpMix {
    /// Warp-wide `exp` micro-ops executed per CTA (pre-optimization).
    pub exp_ops: u64,
    /// `exp_ops * WARP_SIZE`: scalar exp evaluations per CTA.
    pub exp_lanes: u64,
    /// Scalar-equivalent exp uops surviving in the lowered engine
    /// program (after CSE / chain rewrites removed some).
    pub engine_exp_uops: u64,
    /// Of those, how many were folded into batched `ExpBatch` uops.
    pub engine_exp_batched: u64,
    /// `engine_exp_batched / engine_exp_uops` (0 when there are none).
    pub batched_fraction: f64,
}

/// The model's output: a predicted per-warp cycle attribution in the
/// same shape the runtime profiler produces, plus predicted event
/// counts and the per-warp-group rollup.
#[derive(Debug, Clone)]
pub struct ModelProfile {
    /// Predicted per-warp attribution (same closed-set invariant as a
    /// profiled run: every warp's reasons sum to `cta.total_cycles`).
    pub cta: CtaProfile,
    /// Predicted event counts (static-exact where possible, estimated
    /// for the cache- and coalescing-dependent fields).
    pub counts: EventCounts,
    /// Per-warp-group attribution, grouped by identical static streams.
    pub groups: Vec<WarpGroup>,
    /// Per-op mix features (exp count, engine batched fraction).
    pub mix: OpMix,
}

impl ModelProfile {
    /// Index (into `groups`) of the predicted bottleneck group: the one
    /// whose per-warp busy time (everything but idle) is largest —
    /// ties broken toward the lower group index.
    pub fn bottleneck_group(&self) -> usize {
        let mut best = 0usize;
        let mut best_busy = 0u64;
        for (i, g) in self.groups.iter().enumerate() {
            let per_warp = g.cycles.busy() / g.warps.len().max(1) as u64;
            if per_warp > best_busy {
                best_busy = per_warp;
                best = i;
            }
        }
        best
    }

    /// The barrier id predicted to accumulate the most wait cycles
    /// (CTA-wide), with its total; `None` if no barrier ever waited.
    pub fn hottest_barrier(&self) -> Option<(usize, u64)> {
        let totals = self.cta.totals();
        totals
            .barrier_wait
            .iter()
            .copied()
            .enumerate()
            .max_by_key(|&(b, v)| (v, std::cmp::Reverse(b)))
            .filter(|&(_, v)| v > 0)
    }
}

/// One straight-line run of a warp's stream, terminated by a barrier
/// operation (or stream end, for the final segment).
#[derive(Debug, Clone, Default)]
struct Segment {
    /// Aggregated issue slots of non-barrier instructions.
    issue: u64,
    /// Branch-header overhead cycles.
    overhead: u64,
    /// Number of `LdConst` (double) operations.
    const_ops: u64,
    /// Estimated constant-cache line touches across those ops.
    const_lines: u64,
    /// Predicted line misses (filled by the working-set distribution).
    const_misses: u64,
    /// Terminating barrier operation (`None` for the trailing segment).
    bar: Option<BarOp>,
}

/// A barrier instruction at a segment boundary.
#[derive(Debug, Clone, Copy)]
struct BarOp {
    bar: u8,
    expected: u16,
    /// `bar.sync` (blocking) vs `bar.arrive`.
    sync: bool,
}

/// Named-barrier protocol state, mirroring the interpreter's.
#[derive(Debug, Clone, Default)]
struct BarState {
    arrived: u16,
    expected: Option<u16>,
    generation: u64,
}

/// Register an arrival, mirroring the interpreter's `barrier_arrive`:
/// returns `Ok(true)` when this arrival completed the generation.
fn bar_arrive(bars: &mut [BarState], bar: u8, expected: u16) -> Result<bool, String> {
    let b = bars
        .get_mut(bar as usize)
        .ok_or_else(|| format!("model: barrier id {bar} out of range"))?;
    if let Some(e) = b.expected {
        if e != expected {
            return Err(format!(
                "model: barrier {bar} expected-count mismatch: {e} vs {expected}"
            ));
        }
    } else {
        b.expected = Some(expected);
    }
    b.arrived += 1;
    if b.arrived >= expected {
        b.arrived = 0;
        b.expected = None;
        b.generation += 1;
        Ok(true)
    } else {
        Ok(false)
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Shared-memory transaction estimate for a statically known address
/// pattern `base + imm + lane_stride * lane` over 32 banks of 8-byte
/// words (base assumed lane-uniform, as the codegen emits).
fn shared_tx_estimate(addr: &SAddr, lane_pred: Option<u8>) -> (u64, u64) {
    if lane_pred.is_some() {
        return (1, 0);
    }
    let s = addr.lane_stride as u64;
    let tx = if s == 0 { 1 } else { gcd(s, 32) };
    (tx, tx - 1)
}

/// Estimated distinct constant-cache lines touched by one `LdConst`.
/// An immediate index is a warp-wide broadcast (one line); a register
/// index is assumed lane-striped over consecutive elements (32 doubles
/// span four 64-byte lines), capped by the bank's own extent.
fn const_lines_estimate(kernel: &Kernel, bank: u16, idx: &IdxOp) -> u64 {
    match idx {
        IdxOp::Imm(_) => 1,
        IdxOp::Reg(_) => {
            let bank_bytes =
                kernel.const_banks.get(bank as usize).map(|b| b.len() * 8).unwrap_or(8);
            (bank_bytes.div_ceil(64).max(1) as u64).min(4)
        }
    }
}

/// Apportion `total` across `weights` proportionally with deterministic
/// largest-remainder rounding (ties to the lower index). Each share is
/// capped at its weight; `total` is clamped to the weight sum so the
/// result always sums to `min(total, sum(weights))`.
fn distribute(total: u64, weights: &[u64]) -> Vec<u64> {
    let wsum: u64 = weights.iter().sum();
    let n = weights.len();
    let mut out = vec![0u64; n];
    if wsum == 0 || total == 0 {
        return out;
    }
    let total = total.min(wsum);
    for (i, &w) in weights.iter().enumerate() {
        out[i] = total * w / wsum;
    }
    let mut rem = total - out.iter().sum::<u64>();
    if rem > 0 {
        let mut order: Vec<usize> = (0..n).filter(|&i| weights[i] > 0).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(total * weights[i] % wsum), i));
        let mut j = 0usize;
        while rem > 0 {
            let i = order[j % order.len()];
            if out[i] < weights[i] {
                out[i] += 1;
                rem -= 1;
            }
            j += 1;
        }
    }
    out
}

/// Predict the per-warp cycle attribution and event counts of one CTA of
/// `kernel` on `arch` without interpreting it. Errors only on protocol
/// violations the interpreter would also reject (barrier expected-count
/// mismatch, deadlock) — compiled-and-verified kernels never hit them.
pub fn predict(kernel: &Kernel, arch: &GpuArch) -> Result<ModelProfile, String> {
    let prog = flatten_cached(kernel);
    predict_flat(kernel, &prog, arch)
}

/// Scoring hook for schedule-search loops: the predicted per-CTA cycle
/// total alone. Same model as [`predict`] (the profile build is what
/// costs; flattening is cached process-wide), but the single-number
/// contract is what search cost functions and reports want to rank by.
pub fn predict_cycles(kernel: &Kernel, arch: &GpuArch) -> Result<u64, String> {
    predict(kernel, arch).map(|p| p.cta.total_cycles)
}

/// [`predict`] over an already-flattened program (the model's static
/// feature source; [`predict`] obtains it from the process-wide cache).
pub fn predict_flat(
    kernel: &Kernel,
    prog: &FlatProgram,
    arch: &GpuArch,
) -> Result<ModelProfile, String> {
    let nw = prog.streams.len();
    let n_bars = kernel.barriers_used.max(16);
    let mut counts = EventCounts::default();

    // Pass 1: collapse each warp's stream into barrier-separated
    // segments, accumulating the static-exact event counts as we go.
    let mut exp_ops = 0u64;
    let mut segs: Vec<Vec<Segment>> = vec![Vec::new(); nw];
    for (w, stream) in prog.streams.iter().enumerate() {
        let mut cur = Segment::default();
        for op in stream {
            match *op {
                FlatOp::Branch { .. } => {
                    counts.issue_slots += 1;
                    counts.warp_branches += 1;
                    cur.overhead += 1;
                }
                FlatOp::Exec { instr, pset, .. } => {
                    let i = instr as usize;
                    let cost = prog.costs[i];
                    counts.issue_slots += cost.slots;
                    if cost.dp {
                        counts.dp_slots += cost.slots;
                        counts.flops += cost.flops_warp;
                        counts.dp_const_slots += cost.const_slots;
                    }
                    match &prog.instrs[i] {
                        Instr::BarArrive { bar, warps } => {
                            counts.barrier_arrives += 1;
                            cur.bar = Some(BarOp { bar: *bar, expected: *warps, sync: false });
                            segs[w].push(std::mem::take(&mut cur));
                        }
                        Instr::BarSync { bar, warps } => {
                            counts.barrier_syncs += 1;
                            cur.bar = Some(BarOp { bar: *bar, expected: *warps, sync: true });
                            segs[w].push(std::mem::take(&mut cur));
                        }
                        // Stage barriers rotate with the iteration's point
                        // set, exactly as the interpreter resolves them at
                        // dispatch — the replay sees plain barrier ops.
                        Instr::BarArriveStage { base, k, warps } => {
                            counts.barrier_arrives += 1;
                            let bar = base + (pset % u32::from((*k).max(1))) as u8;
                            cur.bar = Some(BarOp { bar, expected: *warps, sync: false });
                            segs[w].push(std::mem::take(&mut cur));
                        }
                        Instr::BarSyncStage { base, k, warps } => {
                            counts.barrier_syncs += 1;
                            let bar = base + (pset % u32::from((*k).max(1))) as u8;
                            cur.bar = Some(BarOp { bar, expected: *warps, sync: true });
                            segs[w].push(std::mem::take(&mut cur));
                        }
                        Instr::CpAsync { addr, .. } => {
                            cur.issue += cost.slots;
                            // One coalesced global read plus one shared
                            // store, registers untouched.
                            counts.global_transactions += 2;
                            counts.global_bytes += 256;
                            let (tx, conf) = shared_tx_estimate(addr, None);
                            counts.shared_accesses += tx;
                            counts.shared_conflicts += conf;
                        }
                        Instr::LdConst { bank, idx, .. } => {
                            cur.issue += cost.slots;
                            cur.const_ops += 1;
                            cur.const_lines += const_lines_estimate(kernel, *bank, idx);
                        }
                        Instr::LdShared { addr, .. } => {
                            cur.issue += cost.slots;
                            let (tx, conf) = shared_tx_estimate(addr, None);
                            counts.shared_accesses += tx;
                            counts.shared_conflicts += conf;
                        }
                        Instr::StShared { addr, lane_pred, .. } => {
                            cur.issue += cost.slots;
                            let (tx, conf) = shared_tx_estimate(addr, *lane_pred);
                            counts.shared_accesses += tx;
                            counts.shared_conflicts += conf;
                        }
                        Instr::LdGlobal { .. } | Instr::StGlobal { .. } => {
                            cur.issue += cost.slots;
                            // 32 consecutive doubles span two 128-byte
                            // transactions (the codegen's point layout).
                            counts.global_transactions += 2;
                            counts.global_bytes += 256;
                        }
                        Instr::LdLocal { .. } | Instr::StLocal { .. } => {
                            cur.issue += cost.slots;
                            counts.local_bytes += (crate::WARP_SIZE * 8) as u64;
                        }
                        Instr::DExp { .. } => {
                            cur.issue += cost.slots;
                            exp_ops += 1;
                        }
                        _ => cur.issue += cost.slots,
                    }
                }
            }
        }
        if cur.issue + cur.overhead + cur.const_ops > 0 {
            segs[w].push(cur);
        }
    }

    // Pass 2: constant-cache working-set estimate. Total predicted
    // misses = cold misses for the footprint, plus a thrash share of the
    // remaining accesses once the footprint exceeds capacity; then
    // apportioned warps -> segments by line-touch weight.
    let accesses: u64 = segs.iter().flatten().map(|s| s.const_lines).sum();
    let const_bytes: usize = kernel.const_banks.iter().map(|b| b.len() * 8).sum();
    let footprint = (const_bytes as u64).div_ceil(64);
    let capacity = (arch.const_cache_bytes as u64 / 64).max(1);
    let miss_total = if accesses == 0 {
        0
    } else {
        let cold = footprint.min(accesses);
        if footprint <= capacity {
            cold
        } else {
            (cold + (accesses - cold) * (footprint - capacity) / footprint).min(accesses)
        }
    };
    let warp_weights: Vec<u64> = segs.iter().map(|s| s.iter().map(|g| g.const_lines).sum()).collect();
    let warp_misses = distribute(miss_total, &warp_weights);
    for (w, segments) in segs.iter_mut().enumerate() {
        let weights: Vec<u64> = segments.iter().map(|g| g.const_lines).collect();
        let shares = distribute(warp_misses[w], &weights);
        for (g, m) in segments.iter_mut().zip(shares) {
            g.const_misses = m;
        }
    }
    counts.const_misses = miss_total;
    counts.const_hits = accesses - miss_total;

    // Pass 3: replay the barrier protocol over the segments, driving a
    // real profiler so wait attribution is semantically identical to an
    // interpreted run.
    let mut p = Profiler::new(nw, n_bars, false, arch);
    let mut bars: Vec<BarState> = vec![BarState::default(); n_bars];
    let mut pos = vec![0usize; nw];
    let mut done = vec![false; nw];
    let mut blocked: Vec<Option<(u8, u64)>> = vec![None; nw];
    loop {
        let mut progressed = false;
        let mut all_done = true;
        for w in 0..nw {
            if done[w] {
                continue;
            }
            all_done = false;
            if let Some((b, gen)) = blocked[w] {
                if bars[b as usize].generation > gen {
                    blocked[w] = None;
                    p.on_release(w, b, gen);
                } else {
                    continue;
                }
            }
            loop {
                if pos[w] >= segs[w].len() {
                    if !done[w] {
                        p.on_warp_done(w);
                    }
                    done[w] = true;
                    break;
                }
                let seg = segs[w][pos[w]].clone();
                pos[w] += 1;
                progressed = true;
                if seg.issue > 0 {
                    p.on_issue(w, seg.issue);
                }
                if seg.overhead > 0 {
                    p.on_overhead(w, seg.overhead);
                }
                if seg.const_lines > seg.const_ops || seg.const_misses > 0 {
                    // Replay cost is (lines - 1) + misses * latency per
                    // op; aggregated over the segment that is
                    // (const_lines - const_ops) + const_misses * latency.
                    p.on_const_replay(w, seg.const_lines - seg.const_ops + 1, seg.const_misses);
                }
                let Some(bop) = seg.bar else { continue };
                let gen = bars[bop.bar as usize].generation;
                let released = bar_arrive(&mut bars, bop.bar, bop.expected)?;
                p.on_barrier_op(w, bop.bar, bop.sync);
                if released {
                    p.on_barrier_complete(bop.bar, bars[bop.bar as usize].generation);
                }
                if bop.sync && !released {
                    blocked[w] = Some((bop.bar, gen));
                    counts.barrier_stall_switches += 1;
                    p.on_block(w, bop.bar);
                    break;
                }
            }
        }
        if all_done {
            break;
        }
        if !progressed {
            let stuck: Vec<usize> =
                (0..nw).filter(|&w| !done[w]).collect();
            if stuck.iter().all(|&w| blocked[w].is_none()) {
                break;
            }
            return Err(format!("model: predicted deadlock, warps blocked: {stuck:?}"));
        }
    }

    // Pass 4: instruction-cache model over the static address streams —
    // the same computation the interpreter performs, so this term is
    // exact (prefetch run length 128, as in `run_cta`).
    let fp = interleaved_fetch_profile(
        &prog.addr_streams,
        arch.instr_bytes,
        arch.icache_bytes,
        arch.icache_line_bytes,
        arch.icache_assoc,
        128,
    );
    counts.icache_fetches = fp.fetches;
    counts.icache_misses = fp.misses;
    p.add_icache_misses(&fp.per_warp_misses);

    let cta = p.finish();

    // Warp groups: key by identical static fetch streams.
    let mut reps: Vec<usize> = Vec::new();
    let mut members: Vec<Vec<usize>> = Vec::new();
    for w in 0..nw {
        match reps.iter().position(|&r| prog.addr_streams[r] == prog.addr_streams[w]) {
            Some(g) => members[g].push(w),
            None => {
                reps.push(w);
                members.push(vec![w]);
            }
        }
    }
    let groups = members
        .into_iter()
        .map(|warps| {
            let mut cycles = WarpCycles::default();
            for &w in &warps {
                cycles.accumulate(&cta.warps[w]);
            }
            WarpGroup { warps, cycles }
        })
        .collect();

    // Per-op mix: pre-optimization exp counts from the stream walk
    // above, batching effectiveness from the (cached) engine lowering —
    // any execution of this program lowers it anyway.
    let estats = crate::flatcache::engine_cached(kernel, prog).stats().clone();
    let mix = OpMix {
        exp_ops,
        exp_lanes: exp_ops * crate::WARP_SIZE as u64,
        engine_exp_uops: estats.exp_ops,
        engine_exp_batched: estats.exp_batched,
        batched_fraction: if estats.exp_ops > 0 {
            estats.exp_batched as f64 / estats.exp_ops as f64
        } else {
            0.0
        },
    };

    Ok(ModelProfile { cta, counts, groups, mix })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{ArrayDecl, Node, Op};

    fn kernel_with(body: Vec<Node>, warps: usize) -> Kernel {
        Kernel {
            name: "model-test".into(),
            body,
            warps_per_cta: warps,
            points_per_cta: 32,
            dregs_per_thread: 8,
            iregs_per_thread: 4,
            shared_words: 128,
            local_words_per_thread: 2,
            const_banks: vec![vec![1.0; 16]],
            iconst_banks: vec![],
            barriers_used: 4,
            global_arrays: vec![ArrayDecl { name: "out".into(), rows: 1, output: true }],
            spilled_bytes_per_thread: 0,
            exp_const_from_registers: false,
        }
    }

    fn arch() -> GpuArch {
        GpuArch::kepler_k20c()
    }

    #[test]
    fn attribution_sums_to_total_for_every_warp() {
        let body = vec![
            Node::WarpIf {
                mask: 0b01,
                body: vec![
                    Node::Op(Instr::DExp { dst: 0, a: Op::Imm(1.0) }),
                    Node::Op(Instr::BarArrive { bar: 0, warps: 2 }),
                ],
            },
            Node::WarpIf {
                mask: 0b10,
                body: vec![Node::Op(Instr::BarSync { bar: 0, warps: 2 })],
            },
        ];
        let k = kernel_with(body, 2);
        let m = predict(&k, &arch()).unwrap();
        m.cta.check_attribution().unwrap();
        assert_eq!(m.cta.warps.len(), 2);
    }

    #[test]
    fn consumer_waits_on_slow_producer() {
        // Warp 0 syncs immediately and blocks (it is scheduled first);
        // warp 1 does heavy work then arrives — warp 0 is charged the
        // wait, exactly as the interpreter-driven profiler would.
        let body = vec![
            Node::WarpIf {
                mask: 0b01,
                body: vec![Node::Op(Instr::BarSync { bar: 1, warps: 2 })],
            },
            Node::WarpIf {
                mask: 0b10,
                body: vec![
                    Node::Loop {
                        count: 10,
                        body: vec![Node::Op(Instr::DExp { dst: 0, a: Op::Imm(1.0) })],
                    },
                    Node::Op(Instr::BarArrive { bar: 1, warps: 2 }),
                ],
            },
        ];
        let k = kernel_with(body, 2);
        let m = predict(&k, &arch()).unwrap();
        assert!(m.cta.warps[0].barrier_wait[1] > 0, "consumer should wait: {:?}", m.cta.warps);
        assert_eq!(m.cta.warps[1].barrier_wait_total(), 0);
        assert_eq!(m.hottest_barrier().unwrap().0, 1);
        m.cta.check_attribution().unwrap();
    }

    #[test]
    fn predictions_are_deterministic() {
        let body = vec![
            Node::Op(Instr::DAdd { dst: 0, a: Op::Imm(1.0), b: Op::Imm(2.0) }),
            Node::Op(Instr::BarSync { bar: 0, warps: 3 }),
            Node::Op(Instr::DMul { dst: 0, a: Op::Reg(0), b: Op::Imm(2.0) }),
        ];
        let k = kernel_with(body, 3);
        let a = predict(&k, &arch()).unwrap();
        let b = predict(&k, &arch()).unwrap();
        assert_eq!(a.cta, b.cta);
        assert_eq!(a.counts, b.counts);
    }

    #[test]
    fn groups_split_by_stream_identity() {
        let body = vec![
            Node::WarpSwitch {
                case_of_warp: vec![0, 0, 1],
                cases: vec![
                    vec![Node::Op(Instr::DAdd { dst: 0, a: Op::Imm(1.0), b: Op::Imm(2.0) })],
                    vec![Node::Op(Instr::DExp { dst: 0, a: Op::Imm(1.0) })],
                ],
            },
        ];
        let k = kernel_with(body, 3);
        let m = predict(&k, &arch()).unwrap();
        assert_eq!(m.groups.len(), 2);
        assert_eq!(m.groups[0].warps, vec![0, 1]);
        assert_eq!(m.groups[1].warps, vec![2]);
    }

    #[test]
    fn distribute_is_exact_and_capped() {
        let shares = distribute(7, &[3, 0, 5, 2]);
        assert_eq!(shares.iter().sum::<u64>(), 7);
        assert_eq!(shares[1], 0);
        for (s, w) in shares.iter().zip([3u64, 0, 5, 2]) {
            assert!(*s <= w);
        }
        // Over-asking clamps to the weight sum.
        let all = distribute(100, &[2, 3]);
        assert_eq!(all, vec![2, 3]);
    }
}
