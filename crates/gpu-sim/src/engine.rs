//! Segment-compiled SoA execution engine — the fast path behind
//! [`crate::interp::run_cta`].
//!
//! Warp streams in this IR have no data-dependent control flow: index
//! registers are written only by the index ISA, whose inputs are lane ids,
//! the warp id, integer constant banks, and immediates — never f64 data
//! and never a CTA id. Every index-register value is therefore a static
//! function of `(warp, stream position)` and identical across CTAs. The
//! lowering pass exploits this: it abstractly interprets each warp's
//! flattened stream once, *evaluating every index instruction at compile
//! time*, and emits barrier-separated **segments** of dense micro-ops in
//! which shared-memory addresses, constant values (and the constant-cache
//! lines they touch), and global row/point offsets are already resolved.
//! Only the grid placement (`total_points`, `base_point`) is supplied at
//! run time, completing global indices as `row * total_points + point`.
//!
//! Execution replays the segments over the same SoA lane vectors the
//! interpreter uses (32 contiguous `f64` slots per register), but:
//!
//! - per-instruction dispatch collapses to a small micro-op match with no
//!   bounds re-derivation (lowering proved every static access in range);
//! - statically-known event counts (issue slots, DP slots/flops, branch
//!   and barrier ops, shared-memory transactions and conflicts, local
//!   bytes) are charged **in bulk per segment** from a precomputed
//!   [`StaticSegCounts`]; only genuinely dynamic events (global
//!   coalescing, constant-cache line replays) remain per-op, and only on
//!   the collecting path;
//! - the scheduler replays the interpreter's cooperative round-robin
//!   exactly (same block/release generations, same deadlock report), so
//!   order-sensitive state — the shared LRU constant cache, barrier stall
//!   switches, shared-memory write order — is bit-identical.
//!
//! Errors the interpreter would raise while executing (out-of-range
//! registers, shared/constant overruns, stores to non-output arrays) are
//! discovered during lowering and embedded as positional [`UOp::Trap`]
//! micro-ops carrying the exact [`SimError`]; lowering stops for that warp
//! at the trap. A trap only fires if the schedule actually reaches it, so
//! kernels that deadlock first still report the deadlock, exactly like the
//! interpreter. (The one knowing divergence: where the interpreter
//! *panics* on an out-of-range index-register read, the engine reports a
//! structured `OutOfBounds { space: "ireg", .. }` trap instead — no
//! compiler in this repo emits such code.)
//!
//! Lowered programs are cached process-wide by the kernel's structural
//! fingerprint (see [`crate::flatcache::engine_cached`]); lowering is
//! independent of the grid, the architecture, and the CTA index. The
//! profiled path ([`crate::interp::run_cta_profiled`] with a profiler)
//! stays on the interpreter, whose per-instruction hooks the
//! cycle-attribution model needs; differential tests pin the two paths
//! bit-identical on outputs and [`EventCounts`].

use std::collections::HashMap;

use crate::ccache::ConstCache;
use crate::counts::{EventCounts, StaticSegCounts};
use crate::error::{SimError, SimResult};
use crate::icache::interleaved_fetch_profile;
use crate::interp::{
    bank_transactions, barrier_arrive, coalesce, exec_fast, local_out_index, src_vals,
    BarrierState, CtaResult, DecodedInstr, FlatOp, FlatProgram, Src,
};
use crate::isa::*;
use crate::WARP_SIZE;

/// How a segment ends: the end of the warp's stream, or a named-barrier
/// operation handled at scheduler level.
#[derive(Debug, Clone, Copy)]
enum SegTerm {
    /// Stream exhausted after this segment's micro-ops.
    End,
    /// Non-blocking `bar.arrive`.
    Arrive { bar: u8, expected: u16 },
    /// Potentially-blocking `bar.sync`.
    Sync { bar: u8, expected: u16 },
}

/// One barrier-separated superblock of a warp's stream: a dense micro-op
/// range, its statically-known event counts, and its terminator.
#[derive(Debug)]
struct Segment {
    uops: std::ops::Range<u32>,
    bulk: StaticSegCounts,
    term: SegTerm,
}

/// Where a global access takes its per-lane point index from.
#[derive(Debug, Clone, Copy)]
enum PtsRef {
    /// `point = base_point + delta + lane` (PointRef::Lane / ::Thread,
    /// with the point-set or warp offset folded into `delta`).
    Rel(u32),
    /// Statically-resolved absolute points (PointRef::Reg): a 32-lane
    /// chunk index into the u32 arena.
    Abs(u32),
}

/// A pre-resolved micro-op. Register offsets are lane-major base indices
/// (`reg * WARP_SIZE`), exactly as in the interpreter's decoded form; all
/// static bounds were proven by lowering.
#[derive(Debug, Clone, Copy)]
enum UOp {
    /// Register-only instruction, executed by the interpreter's own
    /// [`exec_fast`] (guaranteeing identical floating-point behavior).
    Fast(DecodedInstr),
    /// Constant load with values fully resolved: copy a 32-lane chunk
    /// from the f64 arena, then replay the precomputed distinct
    /// cache-line list (collect path only).
    ConstV { dst: u32, vals: u32, lines: u32, n_lines: u32 },
    /// Shared load from pre-resolved, pre-validated addresses.
    LdShared { dst: u32, addrs: u32 },
    /// Shared store; `lane == u32::MAX` stores all lanes, otherwise only
    /// the predicated lane (out-of-range predicates store nothing).
    StShared { src: Src, addrs: u32, lane: u32 },
    /// Global load: `idx[l] = rows[l] * total_points + point(l)`.
    LdGlobal { dst: u32, array: u32, rows: u32, pts: PtsRef },
    /// Global store, same addressing.
    StGlobal { src: Src, array: u32, rows: u32, pts: PtsRef },
    /// Deferred execution-time error discovered at lowering time.
    Trap(u32),
}

/// A lowered CTA program: per-warp segment lists over shared micro-op and
/// operand arenas. Arch/grid/CTA independent — cache freely.
#[derive(Debug)]
pub(crate) struct EngineProgram {
    /// Per-warp segments, in stream order.
    warps: Vec<Vec<Segment>>,
    uops: Vec<UOp>,
    /// 32-lane u32 chunks (shared addresses, global rows, absolute
    /// points), deduplicated; indexed by chunk (byte offset = idx * 32).
    u32x: Vec<u32>,
    /// 32-lane f64 chunks (resolved constant loads), deduplicated.
    f64x: Vec<f64>,
    /// Ordered distinct constant-cache line lists, referenced by
    /// `(start, len)` from [`UOp::ConstV`].
    lines: Vec<u64>,
    /// Deferred errors referenced by [`UOp::Trap`].
    traps: Vec<SimError>,
}

struct Lowerer<'k> {
    kernel: &'k Kernel,
    bank_base: Vec<u64>,
    uops: Vec<UOp>,
    u32x: Vec<u32>,
    f64x: Vec<f64>,
    lines: Vec<u64>,
    traps: Vec<SimError>,
    u32_dedup: HashMap<[u32; WARP_SIZE], u32>,
    f64_dedup: HashMap<[u64; WARP_SIZE], u32>,
}

/// Lower a flattened program into its segment-compiled form. Infallible:
/// execution-time errors become positional traps.
pub(crate) fn lower(kernel: &Kernel, prog: &FlatProgram) -> EngineProgram {
    // Byte offset of each const bank within constant space (the constant
    // cache is addressed across banks, exactly as in the interpreter).
    let mut bank_base = Vec::with_capacity(kernel.const_banks.len());
    let mut off = 0u64;
    for b in &kernel.const_banks {
        bank_base.push(off);
        off += (b.len() * 8) as u64;
    }
    let mut lw = Lowerer {
        kernel,
        bank_base,
        uops: Vec::new(),
        u32x: Vec::new(),
        f64x: Vec::new(),
        lines: Vec::new(),
        traps: Vec::new(),
        u32_dedup: HashMap::new(),
        f64_dedup: HashMap::new(),
    };
    let warps: Vec<Vec<Segment>> =
        (0..prog.n_warps()).map(|w| lw.lower_warp(prog, w)).collect();
    EngineProgram {
        warps,
        uops: lw.uops,
        u32x: lw.u32x,
        f64x: lw.f64x,
        lines: lw.lines,
        traps: lw.traps,
    }
}

impl Lowerer<'_> {
    fn push_u32x(&mut self, v: [u32; WARP_SIZE]) -> u32 {
        if let Some(&idx) = self.u32_dedup.get(&v) {
            return idx;
        }
        let idx = (self.u32x.len() / WARP_SIZE) as u32;
        self.u32x.extend_from_slice(&v);
        self.u32_dedup.insert(v, idx);
        idx
    }

    fn push_f64x(&mut self, v: [f64; WARP_SIZE]) -> u32 {
        let key: [u64; WARP_SIZE] = std::array::from_fn(|l| v[l].to_bits());
        if let Some(&idx) = self.f64_dedup.get(&key) {
            return idx;
        }
        let idx = (self.f64x.len() / WARP_SIZE) as u32;
        self.f64x.extend_from_slice(&v);
        self.f64_dedup.insert(key, idx);
        idx
    }

    fn lower_warp(&mut self, prog: &FlatProgram, w: usize) -> Vec<Segment> {
        let kernel = self.kernel;
        // Concrete per-warp index-register state, abstractly interpreted
        // in stream order. Values are CTA-invariant (see module docs).
        let mut iregs = vec![0u32; kernel.iregs_per_thread * WARP_SIZE];
        let mut segs: Vec<Segment> = Vec::new();
        let mut seg_start = self.uops.len() as u32;
        let mut bulk = StaticSegCounts::default();
        let flush = |uops: &[UOp], segs: &mut Vec<Segment>,
                         seg_start: &mut u32, bulk: &mut StaticSegCounts, term: SegTerm| {
            let range = *seg_start..uops.len() as u32;
            // A trailing empty segment would make a finished warp look
            // like it still ran an instruction; skip it (a warp whose
            // stream ends exactly at a barrier, or is empty, has no
            // trailing work — matching the interpreter's `ran` logic).
            let keep = !range.is_empty()
                || *bulk != StaticSegCounts::default()
                || !matches!(term, SegTerm::End);
            if keep {
                segs.push(Segment { uops: range, bulk: std::mem::take(bulk), term });
            }
            *seg_start = uops.len() as u32;
        };
        for op in &prog.streams[w] {
            match *op {
                FlatOp::Branch { .. } => {
                    bulk.issue_slots += 1;
                    bulk.warp_branches += 1;
                }
                FlatOp::Exec { instr, pset, .. } => {
                    let i = instr as usize;
                    let cost = prog.costs[i];
                    bulk.issue_slots += cost.slots;
                    if cost.dp {
                        bulk.dp_slots += cost.slots;
                        bulk.flops += cost.flops_warp;
                        bulk.dp_const_slots += cost.const_slots;
                    }
                    match prog.decoded[i] {
                        DecodedInstr::BarArrive { bar, expected } => {
                            bulk.barrier_arrives += 1;
                            flush(&self.uops, &mut segs, &mut seg_start, &mut bulk,
                                  SegTerm::Arrive { bar, expected });
                        }
                        DecodedInstr::BarSync { bar, expected } => {
                            bulk.barrier_syncs += 1;
                            flush(&self.uops, &mut segs, &mut seg_start, &mut bulk,
                                  SegTerm::Sync { bar, expected });
                        }
                        DecodedInstr::Invalid { space, addr, limit } => {
                            self.trap(SimError::OutOfBounds { space, addr, limit });
                            flush(&self.uops, &mut segs, &mut seg_start, &mut bulk, SegTerm::End);
                            return segs;
                        }
                        DecodedInstr::Slow => {
                            if let Err(e) =
                                self.lower_slow(&prog.instrs[i], pset, w, &mut iregs, &mut bulk)
                            {
                                self.trap(e);
                                flush(&self.uops, &mut segs, &mut seg_start, &mut bulk, SegTerm::End);
                                return segs;
                            }
                        }
                        dec @ (DecodedInstr::LdLocal { .. } | DecodedInstr::StLocal { .. }) => {
                            bulk.local_bytes += (WARP_SIZE * 8) as u64;
                            self.uops.push(UOp::Fast(dec));
                        }
                        dec => self.uops.push(UOp::Fast(dec)),
                    }
                }
            }
        }
        flush(&self.uops, &mut segs, &mut seg_start, &mut bulk, SegTerm::End);
        segs
    }

    fn trap(&mut self, e: SimError) {
        let idx = self.traps.len() as u32;
        self.traps.push(e);
        self.uops.push(UOp::Trap(idx));
    }

    /// Lower one memory / constant / index instruction, statically
    /// evaluating all index-register reads. Check order mirrors the
    /// interpreter's `exec_slow` exactly, so a trap carries the error the
    /// interpreter's first failing check would have produced.
    fn lower_slow(
        &mut self,
        ins: &Instr,
        pset: u32,
        wid: usize,
        iregs: &mut [u32],
        bulk: &mut StaticSegCounts,
    ) -> SimResult<()> {
        let kernel = self.kernel;
        let nd = kernel.dregs_per_thread;
        let ni = kernel.iregs_per_thread;
        let chk_d = |r: Reg| -> SimResult<()> {
            if (r as usize) < nd {
                Ok(())
            } else {
                Err(SimError::OutOfBounds { space: "dreg", addr: r as usize, limit: nd })
            }
        };
        let chk_i = |r: IdxReg| -> SimResult<()> {
            if (r as usize) < ni {
                Ok(())
            } else {
                Err(SimError::OutOfBounds { space: "ireg", addr: r as usize, limit: ni })
            }
        };
        // Static index-operand read. The interpreter indexes the register
        // file raw here (panicking when out of range); the engine reports
        // the same condition as a structured trap instead.
        let ival = |iregs: &[u32], o: &IdxOp, l: usize| -> SimResult<u32> {
            match o {
                IdxOp::Imm(v) => Ok(*v),
                IdxOp::Reg(r) => iregs
                    .get(*r as usize * WARP_SIZE + l)
                    .copied()
                    .ok_or(SimError::OutOfBounds { space: "ireg", addr: *r as usize, limit: ni }),
            }
        };
        let src = |o: &Op| match o {
            Op::Reg(r) => Src::Reg(*r as usize * WARP_SIZE),
            Op::Imm(v) => Src::Imm(*v),
        };
        let base_d = |r: Reg| (r as usize * WARP_SIZE) as u32;

        // Resolve a global address into (rows chunk, points ref).
        macro_rules! gaddr {
            ($addr:expr) => {{
                let a: &GAddr = $addr;
                let mut rows = [0u32; WARP_SIZE];
                for l in 0..WARP_SIZE {
                    rows[l] = ival(iregs, &a.row, l)?;
                }
                let pts = match a.point {
                    PointRef::Lane => PtsRef::Rel(pset * WARP_SIZE as u32),
                    PointRef::Thread => PtsRef::Rel((wid * WARP_SIZE) as u32),
                    PointRef::Reg(r) => {
                        let mut pv = [0u32; WARP_SIZE];
                        for l in 0..WARP_SIZE {
                            pv[l] = ival(iregs, &IdxOp::Reg(r), l)?;
                        }
                        PtsRef::Abs(self.push_u32x(pv))
                    }
                };
                (self.push_u32x(rows), pts)
            }};
        }
        // Resolve a shared address vector (not yet bounds-checked).
        macro_rules! saddrs {
            ($addr:expr) => {{
                let a: &SAddr = $addr;
                let mut addrs = [0usize; WARP_SIZE];
                for l in 0..WARP_SIZE {
                    let base = match a.base {
                        Some(r) => ival(iregs, &IdxOp::Reg(r), l)? as usize,
                        None => 0,
                    };
                    addrs[l] = base + a.imm as usize + a.lane_stride as usize * l;
                }
                addrs
            }};
        }

        match ins {
            Instr::LdGlobal { dst, addr, .. } => {
                chk_d(*dst)?;
                let (rows, pts) = gaddr!(addr);
                self.uops.push(UOp::LdGlobal {
                    dst: base_d(*dst),
                    array: addr.array.0 as u32,
                    rows,
                    pts,
                });
            }
            Instr::StGlobal { src: s, addr } => {
                let decl = &kernel.global_arrays[addr.array.0];
                if !decl.output {
                    return Err(SimError::BadLaunch(format!(
                        "store to non-output array '{}'",
                        decl.name
                    )));
                }
                let (rows, pts) = gaddr!(addr);
                self.uops.push(UOp::StGlobal {
                    src: src(s),
                    array: addr.array.0 as u32,
                    rows,
                    pts,
                });
            }
            Instr::LdShared { dst, addr } => {
                chk_d(*dst)?;
                let addrs = saddrs!(addr);
                for &a in &addrs {
                    if a >= kernel.shared_words {
                        return Err(SimError::OutOfBounds {
                            space: "shared",
                            addr: a,
                            limit: kernel.shared_words,
                        });
                    }
                }
                let (tx, conf) = bank_transactions(&addrs, None);
                bulk.shared_accesses += tx;
                bulk.shared_conflicts += conf;
                let a32: [u32; WARP_SIZE] = std::array::from_fn(|l| addrs[l] as u32);
                let addrs = self.push_u32x(a32);
                self.uops.push(UOp::LdShared { dst: base_d(*dst), addrs });
            }
            Instr::StShared { src: s, addr, lane_pred } => {
                let addrs = saddrs!(addr);
                for (l, &a) in addrs.iter().enumerate() {
                    if let Some(p) = lane_pred {
                        if *p as usize != l {
                            continue;
                        }
                    }
                    if a >= kernel.shared_words {
                        return Err(SimError::OutOfBounds {
                            space: "shared",
                            addr: a,
                            limit: kernel.shared_words,
                        });
                    }
                }
                let (tx, conf) = bank_transactions(&addrs, *lane_pred);
                bulk.shared_accesses += tx;
                bulk.shared_conflicts += conf;
                // Lanes a predicate excludes were never bounds-checked
                // (matching the interpreter) and are never read back;
                // saturate them into the u32 arena.
                let a32: [u32; WARP_SIZE] =
                    std::array::from_fn(|l| addrs[l].min(u32::MAX as usize) as u32);
                let addrs = self.push_u32x(a32);
                self.uops.push(UOp::StShared {
                    src: src(s),
                    addrs,
                    lane: lane_pred.map(|p| p as u32).unwrap_or(u32::MAX),
                });
            }
            Instr::LdConst { dst, bank, idx } => {
                chk_d(*dst)?;
                let bankv =
                    kernel.const_banks.get(*bank as usize).ok_or(SimError::OutOfBounds {
                        space: "const-bank",
                        addr: *bank as usize,
                        limit: kernel.const_banks.len(),
                    })?;
                let mut vals = [0f64; WARP_SIZE];
                let mut lines: Vec<u64> = Vec::new();
                for l in 0..WARP_SIZE {
                    let i = ival(iregs, idx, l)? as usize;
                    vals[l] = *bankv.get(i).ok_or(SimError::OutOfBounds {
                        space: "const",
                        addr: i,
                        limit: bankv.len(),
                    })?;
                    // One cache access per distinct line, in first-touch
                    // order (lanes reading the same constant broadcast).
                    let line = (self.bank_base[*bank as usize] + (i * 8) as u64) / 64;
                    if !lines.contains(&line) {
                        lines.push(line);
                    }
                }
                let vidx = self.push_f64x(vals);
                let lstart = self.lines.len() as u32;
                let n_lines = lines.len() as u32;
                self.lines.extend_from_slice(&lines);
                self.uops.push(UOp::ConstV { dst: base_d(*dst), vals: vidx, lines: lstart, n_lines });
            }
            Instr::Idx(ii) => match ii {
                IdxInstr::Mov { dst, src } => {
                    chk_i(*dst)?;
                    for l in 0..WARP_SIZE {
                        iregs[*dst as usize * WARP_SIZE + l] = ival(iregs, src, l)?;
                    }
                }
                IdxInstr::Add { dst, a, b } => {
                    chk_i(*dst)?;
                    for l in 0..WARP_SIZE {
                        iregs[*dst as usize * WARP_SIZE + l] =
                            ival(iregs, a, l)?.wrapping_add(ival(iregs, b, l)?);
                    }
                }
                IdxInstr::Mul { dst, a, b } => {
                    chk_i(*dst)?;
                    for l in 0..WARP_SIZE {
                        iregs[*dst as usize * WARP_SIZE + l] =
                            ival(iregs, a, l)?.wrapping_mul(ival(iregs, b, l)?);
                    }
                }
                IdxInstr::LaneId { dst } => {
                    chk_i(*dst)?;
                    for l in 0..WARP_SIZE {
                        iregs[*dst as usize * WARP_SIZE + l] = l as u32;
                    }
                }
                IdxInstr::WarpId { dst } => {
                    chk_i(*dst)?;
                    for l in 0..WARP_SIZE {
                        iregs[*dst as usize * WARP_SIZE + l] = wid as u32;
                    }
                }
                IdxInstr::LdConst { dst, bank, idx } => {
                    chk_i(*dst)?;
                    let bankv =
                        kernel.iconst_banks.get(*bank as usize).ok_or(SimError::OutOfBounds {
                            space: "iconst-bank",
                            addr: *bank as usize,
                            limit: kernel.iconst_banks.len(),
                        })?;
                    for l in 0..WARP_SIZE {
                        let i = ival(iregs, idx, l)? as usize;
                        iregs[*dst as usize * WARP_SIZE + l] =
                            *bankv.get(i).ok_or(SimError::OutOfBounds {
                                space: "iconst",
                                addr: i,
                                limit: bankv.len(),
                            })?;
                    }
                }
                IdxInstr::Shfl { dst, src, lane } => {
                    chk_i(*dst)?;
                    chk_i(*src)?;
                    // Raw index like the interpreter (a >=32 lane reads
                    // across registers deterministically; replicate it).
                    let raw = *src as usize * WARP_SIZE + *lane as usize;
                    let v = *iregs.get(raw).ok_or(SimError::OutOfBounds {
                        space: "ireg",
                        addr: *src as usize,
                        limit: ni,
                    })?;
                    for l in 0..WARP_SIZE {
                        iregs[*dst as usize * WARP_SIZE + l] = v;
                    }
                }
            },
            _ => unreachable!("only slow-path instructions reach lower_slow"),
        }
        Ok(())
    }
}

/// Per-warp runtime state: SoA register/local lanes plus the segment
/// cursor and scheduler flags.
struct EngWarp {
    dregs: Vec<f64>,
    local: Vec<f64>,
    seg: usize,
    done: bool,
    blocked: Option<(u8, u64)>,
}

/// Execute one CTA on a lowered program. Mirrors
/// [`crate::interp::run_cta_profiled`] (without a profiler) bit-for-bit:
/// same outputs, same [`EventCounts`], same errors.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_cta_engine(
    kernel: &Kernel,
    eng: &EngineProgram,
    prog: &FlatProgram,
    inputs: &[&[f64]],
    total_points: usize,
    cta: usize,
    collect: bool,
    arch: &crate::arch::GpuArch,
) -> SimResult<CtaResult> {
    let nw = kernel.warps_per_cta;
    let base_point = cta * kernel.points_per_cta;
    let mut counts = EventCounts::default();

    let mut shared = vec![0.0f64; kernel.shared_words];
    let mut barriers: Vec<BarrierState> =
        vec![BarrierState::default(); kernel.barriers_used.max(16)];
    let mut ccache = ConstCache::new(arch.const_cache_bytes);

    let mut out_buffers: Vec<Vec<f64>> = kernel
        .global_arrays
        .iter()
        .map(|a| if a.output { vec![0.0; a.rows * kernel.points_per_cta] } else { Vec::new() })
        .collect();

    let mut warps: Vec<EngWarp> = (0..nw)
        .map(|_| EngWarp {
            dregs: vec![0.0; kernel.dregs_per_thread * WARP_SIZE],
            local: vec![0.0; kernel.local_words_per_thread * WARP_SIZE],
            seg: 0,
            done: false,
            blocked: None,
        })
        .collect();

    // Cooperative scheduler: an exact replay of the interpreter's
    // round-robin (segments stand in for uninterruptible instruction
    // runs — a warp can only block at a segment terminator).
    loop {
        let mut progressed = false;
        let mut all_done = true;
        for w in 0..nw {
            if warps[w].done {
                continue;
            }
            all_done = false;
            if let Some((b, gen)) = warps[w].blocked {
                if barriers[b as usize].generation > gen {
                    warps[w].blocked = None;
                } else {
                    continue;
                }
            }
            let ran = run_warp(
                kernel, eng, w, &mut warps[w], inputs, total_points, base_point, &mut shared,
                &mut barriers, &mut out_buffers, &mut ccache, collect, &mut counts,
            )?;
            progressed |= ran;
        }
        if all_done {
            break;
        }
        if !progressed {
            let blocked: Vec<(usize, u8)> = warps
                .iter()
                .enumerate()
                .filter(|(_, ws)| !ws.done)
                .map(|(i, ws)| (i, ws.blocked.map(|(b, _)| b).unwrap_or(255)))
                .collect();
            if blocked.is_empty() {
                break;
            }
            return Err(SimError::Deadlock { cta, blocked });
        }
    }

    if collect {
        counts.const_hits = ccache.hits();
        counts.const_misses = ccache.misses();
        let fp = interleaved_fetch_profile(
            &prog.addr_streams,
            arch.instr_bytes,
            arch.icache_bytes,
            arch.icache_line_bytes,
            arch.icache_assoc,
            128,
        );
        counts.icache_fetches = fp.fetches;
        counts.icache_misses = fp.misses;
    }

    Ok(CtaResult { out_buffers, counts })
}

/// Run one warp's segments until it blocks or finishes. Returns whether
/// any segment executed (the interpreter's `ran`).
#[allow(clippy::too_many_arguments)]
fn run_warp(
    kernel: &Kernel,
    eng: &EngineProgram,
    w: usize,
    warp: &mut EngWarp,
    inputs: &[&[f64]],
    total_points: usize,
    base_point: usize,
    shared: &mut [f64],
    barriers: &mut [BarrierState],
    out_buffers: &mut [Vec<f64>],
    ccache: &mut ConstCache,
    collect: bool,
    counts: &mut EventCounts,
) -> SimResult<bool> {
    let segs = &eng.warps[w];
    let mut ran = false;
    loop {
        let Some(seg) = segs.get(warp.seg) else {
            warp.done = true;
            return Ok(ran);
        };
        if collect {
            seg.bulk.apply(counts);
        }
        for uop in &eng.uops[seg.uops.start as usize..seg.uops.end as usize] {
            exec_uop(
                eng, uop, kernel, inputs, total_points, base_point, warp, shared, out_buffers,
                ccache, collect, counts,
            )?;
        }
        warp.seg += 1;
        ran = true;
        match seg.term {
            SegTerm::End => {}
            SegTerm::Arrive { bar, expected } => {
                barrier_arrive(barriers, bar, expected)?;
            }
            SegTerm::Sync { bar, expected } => {
                // Generation snapshot *before* arriving: if our own
                // arrival completes the barrier we are not blocked.
                let gen = barriers[bar as usize].generation;
                let released = barrier_arrive(barriers, bar, expected)?;
                if !released {
                    warp.blocked = Some((bar, gen));
                    if collect {
                        counts.barrier_stall_switches += 1;
                    }
                    return Ok(ran);
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
#[inline]
fn exec_uop(
    eng: &EngineProgram,
    uop: &UOp,
    kernel: &Kernel,
    inputs: &[&[f64]],
    total_points: usize,
    base_point: usize,
    warp: &mut EngWarp,
    shared: &mut [f64],
    out_buffers: &mut [Vec<f64>],
    ccache: &mut ConstCache,
    collect: bool,
    counts: &mut EventCounts,
) -> SimResult<()> {
    match *uop {
        // Event counts for fast ops were folded into the segment bulk;
        // run the op itself with collection off.
        UOp::Fast(dec) => exec_fast(dec, &mut warp.dregs, &mut warp.local, false, counts)?,
        UOp::ConstV { dst, vals, lines, n_lines } => {
            let v = &eng.f64x[vals as usize * WARP_SIZE..][..WARP_SIZE];
            warp.dregs[dst as usize..dst as usize + WARP_SIZE].copy_from_slice(v);
            if collect {
                for &line in &eng.lines[lines as usize..(lines + n_lines) as usize] {
                    ccache.access(line * 64);
                }
            }
        }
        UOp::LdShared { dst, addrs } => {
            let a = &eng.u32x[addrs as usize * WARP_SIZE..][..WARP_SIZE];
            let out = &mut warp.dregs[dst as usize..dst as usize + WARP_SIZE];
            for l in 0..WARP_SIZE {
                out[l] = shared[a[l] as usize];
            }
        }
        UOp::StShared { src, addrs, lane } => {
            let a = &eng.u32x[addrs as usize * WARP_SIZE..][..WARP_SIZE];
            let sv = src_vals(&warp.dregs, src);
            if lane == u32::MAX {
                for l in 0..WARP_SIZE {
                    shared[a[l] as usize] = sv[l];
                }
            } else if (lane as usize) < WARP_SIZE {
                shared[a[lane as usize] as usize] = sv[lane as usize];
            }
        }
        UOp::LdGlobal { dst, array, rows, pts } => {
            let ai = array as usize;
            let idxs = gidx(eng, rows, pts, total_points, base_point);
            let decl = &kernel.global_arrays[ai];
            for l in 0..WARP_SIZE {
                let idx = idxs[l];
                let v = if decl.output {
                    let local = local_out_index(idx, total_points, base_point, kernel)?;
                    out_buffers[ai][local]
                } else {
                    *inputs[ai].get(idx).ok_or(SimError::OutOfBounds {
                        space: "global",
                        addr: idx,
                        limit: inputs[ai].len(),
                    })?
                };
                warp.dregs[dst as usize + l] = v;
            }
            if collect {
                let (tx, bytes) = coalesce(&idxs);
                counts.global_transactions += tx;
                counts.global_bytes += bytes;
            }
        }
        UOp::StGlobal { src, array, rows, pts } => {
            let ai = array as usize;
            let idxs = gidx(eng, rows, pts, total_points, base_point);
            let sv = src_vals(&warp.dregs, src);
            for l in 0..WARP_SIZE {
                let local = local_out_index(idxs[l], total_points, base_point, kernel)?;
                let buf = &mut out_buffers[ai];
                if local >= buf.len() {
                    return Err(SimError::OutOfBounds {
                        space: "global-out",
                        addr: local,
                        limit: buf.len(),
                    });
                }
                buf[local] = sv[l];
            }
            if collect {
                let (tx, bytes) = coalesce(&idxs);
                counts.global_transactions += tx;
                counts.global_bytes += bytes;
            }
        }
        UOp::Trap(t) => return Err(eng.traps[t as usize].clone()),
    }
    Ok(())
}

/// Complete pre-resolved global addressing with the runtime grid
/// placement: `idx[l] = rows[l] * total_points + point(l)`.
#[inline]
fn gidx(
    eng: &EngineProgram,
    rows: u32,
    pts: PtsRef,
    total_points: usize,
    base_point: usize,
) -> [usize; WARP_SIZE] {
    let r = &eng.u32x[rows as usize * WARP_SIZE..][..WARP_SIZE];
    let mut idxs = [0usize; WARP_SIZE];
    match pts {
        PtsRef::Rel(d) => {
            let b = base_point + d as usize;
            for l in 0..WARP_SIZE {
                idxs[l] = r[l] as usize * total_points + b + l;
            }
        }
        PtsRef::Abs(p) => {
            let pv = &eng.u32x[p as usize * WARP_SIZE..][..WARP_SIZE];
            for l in 0..WARP_SIZE {
                idxs[l] = r[l] as usize * total_points + pv[l] as usize;
            }
        }
    }
    idxs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::GpuArch;
    use crate::interp::{flatten, run_cta_profiled};

    fn base_kernel(warps: usize) -> Kernel {
        Kernel {
            name: "eng-t".into(),
            body: vec![],
            warps_per_cta: warps,
            points_per_cta: 32,
            dregs_per_thread: 8,
            iregs_per_thread: 4,
            shared_words: 128,
            local_words_per_thread: 2,
            const_banks: vec![vec![1.5, 2.5, 3.5, 4.5]],
            iconst_banks: vec![vec![7, 8, 9]],
            barriers_used: 4,
            global_arrays: vec![
                ArrayDecl { name: "in".into(), rows: 2, output: false },
                ArrayDecl { name: "out".into(), rows: 1, output: true },
            ],
            spilled_bytes_per_thread: 0,
            exp_const_from_registers: false,
        }
    }

    /// Run a kernel through both paths and assert bit-identical results
    /// (outputs + EventCounts) or identical errors.
    fn differential(kernel: &Kernel, inputs: &[&[f64]], total_points: usize, cta: usize) {
        let prog = flatten(kernel);
        let eng = lower(kernel, &prog);
        for arch in [GpuArch::fermi_c2070(), GpuArch::kepler_k20c()] {
            for collect in [false, true] {
                let i =
                    run_cta_profiled(kernel, &prog, inputs, total_points, cta, collect, &arch, None);
                let e =
                    run_cta_engine(kernel, &eng, &prog, inputs, total_points, cta, collect, &arch);
                match (i, e) {
                    (Ok(a), Ok(b)) => {
                        assert_eq!(a.counts, b.counts, "counts (collect={collect})");
                        assert_eq!(
                            a.out_buffers.len(),
                            b.out_buffers.len(),
                            "buffer count (collect={collect})"
                        );
                        for (x, y) in a.out_buffers.iter().zip(&b.out_buffers) {
                            assert_eq!(x.len(), y.len());
                            for (va, vb) in x.iter().zip(y) {
                                assert_eq!(va.to_bits(), vb.to_bits(), "output bits");
                            }
                        }
                    }
                    (Err(a), Err(b)) => assert_eq!(a, b, "errors (collect={collect})"),
                    (i, e) => panic!("paths disagree: interp={i:?} engine={e:?}"),
                }
            }
        }
    }

    #[test]
    fn differential_producer_consumer() {
        // Figure-2 style protocol over named barriers with shared memory,
        // constants and index registers in play.
        let mut k = base_kernel(2);
        k.body = vec![
            Node::WarpIf {
                mask: 0b10,
                body: vec![Node::Op(Instr::BarArrive { bar: 1, warps: 2 })],
            },
            Node::WarpIf {
                mask: 0b01,
                body: vec![
                    Node::Op(Instr::BarSync { bar: 1, warps: 2 }),
                    Node::Op(Instr::LdGlobal {
                        dst: 0,
                        addr: GAddr { array: GlobalId(0), row: IdxOp::Imm(0), point: PointRef::Lane },
                        ldg: false,
                    }),
                    Node::Op(Instr::LdConst { dst: 1, bank: 0, idx: IdxOp::Imm(2) }),
                    Node::Op(Instr::DMul { dst: 0, a: Op::Reg(0), b: Op::Reg(1) }),
                    Node::Op(Instr::StShared { src: Op::Reg(0), addr: SAddr::lane(0), lane_pred: None }),
                    Node::Op(Instr::BarArrive { bar: 0, warps: 2 }),
                ],
            },
            Node::WarpIf {
                mask: 0b10,
                body: vec![
                    Node::Op(Instr::BarSync { bar: 0, warps: 2 }),
                    Node::Op(Instr::LdShared { dst: 1, addr: SAddr::lane(0) }),
                    Node::Op(Instr::StGlobal {
                        src: Op::Reg(1),
                        addr: GAddr { array: GlobalId(1), row: IdxOp::Imm(0), point: PointRef::Lane },
                    }),
                ],
            },
        ];
        let input: Vec<f64> = (0..64).map(|i| i as f64 * 0.25).collect();
        differential(&k, &[&input, &[]], 32, 0);
    }

    #[test]
    fn differential_index_isa_and_point_refs() {
        // Exercise statically-evaluated index registers: lane/warp ids,
        // iconst loads, arithmetic, and PointRef::Reg addressing.
        let mut k = base_kernel(1);
        k.iconst_banks = vec![vec![0, 1, 2, 3]];
        k.body = vec![
            Node::Op(Instr::Idx(IdxInstr::LaneId { dst: 0 })),
            Node::Op(Instr::Idx(IdxInstr::LdConst { dst: 1, bank: 0, idx: IdxOp::Imm(1) })),
            Node::Op(Instr::Idx(IdxInstr::Mul { dst: 2, a: IdxOp::Reg(0), b: IdxOp::Imm(1) })),
            Node::Op(Instr::Idx(IdxInstr::Add { dst: 2, a: IdxOp::Reg(2), b: IdxOp::Imm(0) })),
            Node::Op(Instr::LdGlobal {
                dst: 0,
                addr: GAddr { array: GlobalId(0), row: IdxOp::Reg(1), point: PointRef::Reg(2) },
                ldg: false,
            }),
            Node::Op(Instr::DAdd { dst: 1, a: Op::Reg(0), b: Op::Imm(1.0) }),
            Node::Op(Instr::StGlobal {
                src: Op::Reg(1),
                addr: GAddr { array: GlobalId(1), row: IdxOp::Imm(0), point: PointRef::Thread },
            }),
        ];
        let input: Vec<f64> = (0..64).map(|i| (i * i) as f64).collect();
        differential(&k, &[&input, &[]], 32, 0);
    }

    #[test]
    fn differential_point_loop_multi_cta() {
        // Streaming point loop over two point sets, executed as CTA 1 of
        // a larger grid (base_point != 0 exercises Rel addressing).
        let mut k = base_kernel(1);
        k.points_per_cta = 64;
        k.body = vec![Node::PointLoop {
            iters: 2,
            body: vec![
                Node::Op(Instr::LdGlobal {
                    dst: 0,
                    addr: GAddr { array: GlobalId(0), row: IdxOp::Imm(1), point: PointRef::Lane },
                    ldg: false,
                }),
                Node::Op(Instr::DFma {
                    dst: 1,
                    a: Op::Reg(0),
                    b: Op::Imm(3.0),
                    c: Op::Imm(-0.5),
                    const_c: false,
                }),
                Node::Op(Instr::StGlobal {
                    src: Op::Reg(1),
                    addr: GAddr { array: GlobalId(1), row: IdxOp::Imm(0), point: PointRef::Lane },
                }),
            ],
        }];
        let total = 192;
        let input: Vec<f64> = (0..2 * total).map(|i| i as f64 * 0.125).collect();
        differential(&k, &[&input, &[]], total, 1);
    }

    #[test]
    fn differential_errors_and_deadlock() {
        // Deadlock: two warps syncing on different barriers.
        let mut k = base_kernel(2);
        k.body = vec![
            Node::WarpIf { mask: 0b01, body: vec![Node::Op(Instr::BarSync { bar: 0, warps: 2 })] },
            Node::WarpIf { mask: 0b10, body: vec![Node::Op(Instr::BarSync { bar: 1, warps: 2 })] },
        ];
        let input = vec![0.0; 64];
        differential(&k, &[&input, &[]], 32, 0);

        // Shared overrun, discovered at lowering, delivered as the
        // interpreter's execution-time error.
        let mut k = base_kernel(1);
        k.body = vec![Node::Op(Instr::LdShared {
            dst: 0,
            addr: SAddr { base: None, imm: 1000, lane_stride: 1 },
        })];
        differential(&k, &[&input, &[]], 32, 0);

        // Store to a non-output array.
        let mut k = base_kernel(1);
        k.body = vec![Node::Op(Instr::StGlobal {
            src: Op::Imm(1.0),
            addr: GAddr { array: GlobalId(0), row: IdxOp::Imm(0), point: PointRef::Lane },
        })];
        differential(&k, &[&input, &[]], 32, 0);

        // Const index out of range.
        let mut k = base_kernel(1);
        k.body = vec![Node::Op(Instr::LdConst { dst: 0, bank: 0, idx: IdxOp::Imm(99) })];
        differential(&k, &[&input, &[]], 32, 0);

        // Static dreg overrun (decode-time Invalid -> trap).
        let mut k = base_kernel(1);
        k.body = vec![Node::Op(Instr::DMov { dst: 200, src: Op::Imm(0.0) })];
        differential(&k, &[&input, &[]], 32, 0);
    }

    #[test]
    fn trap_after_barrier_is_not_reached_on_deadlock() {
        // Warp 0 deadlocks on barrier 0 before its OOB const load; warp 1
        // syncs on barrier 1. The deadlock must win, as in the interpreter.
        let mut k = base_kernel(2);
        k.body = vec![
            Node::WarpIf {
                mask: 0b01,
                body: vec![
                    Node::Op(Instr::BarSync { bar: 0, warps: 2 }),
                    Node::Op(Instr::LdConst { dst: 0, bank: 0, idx: IdxOp::Imm(99) }),
                ],
            },
            Node::WarpIf { mask: 0b10, body: vec![Node::Op(Instr::BarSync { bar: 1, warps: 2 })] },
        ];
        let input = vec![0.0; 64];
        differential(&k, &[&input, &[]], 32, 0);
    }

    #[test]
    fn lowering_drops_index_ops_but_keeps_their_cost() {
        let mut k = base_kernel(1);
        k.body = vec![
            Node::Op(Instr::Idx(IdxInstr::LaneId { dst: 0 })),
            Node::Op(Instr::Idx(IdxInstr::Add { dst: 0, a: IdxOp::Reg(0), b: IdxOp::Imm(1) })),
            Node::Op(Instr::DMov { dst: 0, src: Op::Imm(2.0) }),
        ];
        let prog = flatten(&k);
        let eng = lower(&k, &prog);
        // Index ops evaluate at lowering time: only the DMov survives.
        assert_eq!(eng.uops.len(), 1);
        assert!(matches!(eng.uops[0], UOp::Fast(DecodedInstr::Un { .. })));
        // But their issue slots are still charged in bulk.
        assert_eq!(eng.warps[0].len(), 1);
        assert_eq!(eng.warps[0][0].bulk.issue_slots, 3);
    }
}
