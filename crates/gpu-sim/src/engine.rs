//! Segment-compiled SoA execution engine — the fast path behind
//! [`crate::interp::run_cta`].
//!
//! Warp streams in this IR have no data-dependent control flow: index
//! registers are written only by the index ISA, whose inputs are lane ids,
//! the warp id, integer constant banks, and immediates — never f64 data
//! and never a CTA id. Every index-register value is therefore a static
//! function of `(warp, stream position)` and identical across CTAs. The
//! lowering pass exploits this: it abstractly interprets each warp's
//! flattened stream once, *evaluating every index instruction at compile
//! time*, and emits barrier-separated **segments** of dense micro-ops in
//! which shared-memory addresses, constant values (and the constant-cache
//! lines they touch), and global row/point offsets are already resolved.
//! Only the grid placement (`total_points`, `base_point`) is supplied at
//! run time, completing global indices as `row * total_points + point`.
//!
//! Execution replays the segments over the same SoA lane vectors the
//! interpreter uses (32 contiguous `f64` slots per register), but:
//!
//! - per-instruction dispatch collapses to a small micro-op match with no
//!   bounds re-derivation (lowering proved every static access in range);
//! - statically-known event counts (issue slots, DP slots/flops, branch
//!   and barrier ops, shared-memory transactions and conflicts, local
//!   bytes) are charged **in bulk per segment** from a precomputed
//!   [`StaticSegCounts`]; only genuinely dynamic events (global
//!   coalescing, constant-cache line replays) remain per-op, and only on
//!   the collecting path;
//! - the scheduler replays the interpreter's cooperative round-robin
//!   exactly (same block/release generations, same deadlock report), so
//!   order-sensitive state — the shared LRU constant cache, barrier stall
//!   switches, shared-memory write order — is bit-identical.
//!
//! Errors the interpreter would raise while executing (out-of-range
//! registers, shared/constant overruns, stores to non-output arrays) are
//! discovered during lowering and embedded as positional [`UOp::Trap`]
//! micro-ops carrying the exact [`SimError`]; lowering stops for that warp
//! at the trap. A trap only fires if the schedule actually reaches it, so
//! kernels that deadlock first still report the deadlock, exactly like the
//! interpreter. (The one knowing divergence: where the interpreter
//! *panics* on an out-of-range index-register read, the engine reports a
//! structured `OutOfBounds { space: "ireg", .. }` trap instead — no
//! compiler in this repo emits such code.)
//!
//! After lowering, each warp's micro-op stream runs a
//! bit-identity-preserving optimization pipeline (`optimize_warp`, pass
//! order is load-bearing): shuffles reading a lowering-time-known
//! constant chunk fold to immediates, mov chains are copy-propagated, a
//! mul feeding its sole add/sub consumer fuses into one two-destination
//! micro-op, stride-0 shared reads and gather+single-lane-shuffle pairs
//! collapse to one-word broadcasts, dead micro-ops fall to backward
//! liveness, and remaining immediate operands are rewritten to chunks of
//! a shared read-only constant tail addressed past the architectural
//! register file. Set `SINGE_ENGINE_STATS=1` for a post-optimization
//! micro-op histogram on stderr, plus `SINGE_ENGINE_DUMP=<warp>` to dump
//! that warp's segments and micro-ops.
//!
//! Lowered programs are cached process-wide by the kernel's structural
//! fingerprint (see [`crate::flatcache::engine_cached`]); lowering is
//! independent of the grid, the architecture, and the CTA index. The
//! profiled path ([`crate::interp::run_cta_profiled`] with a profiler)
//! stays on the interpreter, whose per-instruction hooks the
//! cycle-attribution model needs; differential tests pin the two paths
//! bit-identical on outputs and [`EventCounts`].

use std::collections::HashMap;

use crate::ccache::ConstCache;
use crate::counts::{EventCounts, StaticSegCounts};
use crate::error::{SimError, SimResult};
use crate::icache::interleaved_fetch_profile;
use crate::interp::{
    bank_transactions, barrier_arrive, coalesce, exec_fast, local_out_index, operand, out_chunk,
    src_vals, BarrierState, BinKind, CtaResult, DecodedInstr, FlatOp, FlatProgram, Src, UnKind,
};
use crate::isa::*;
use crate::lanes;
use crate::WARP_SIZE;

/// Version of the flatten/lowering/optimizer semantics. Bump this on ANY
/// change that can alter what `lower` (or `interp::flatten`)
/// produces for an unchanged kernel — new peephole passes, changed µop
/// encodings, different trap placement, rewrite-gate tweaks.
///
/// The constant is folded into every structural kernel fingerprint
/// ([`crate::flatcache::fingerprint`]), which keys both the in-memory
/// flatten/lowering memos and the on-disk compiled-kernel artifacts of the
/// serve layer. Without it, keying is purely structural: a semantics bump
/// would silently replay stale lowered programs cached under the old
/// semantics (in-memory across test-harness reconfigurations, on-disk
/// across process restarts).
pub const LOWERING_VERSION: u32 = 9;

/// How a segment ends: the end of the warp's stream, or a named-barrier
/// operation handled at scheduler level.
#[derive(Debug, Clone, Copy)]
enum SegTerm {
    /// Stream exhausted after this segment's micro-ops.
    End,
    /// Non-blocking `bar.arrive`.
    Arrive { bar: u8, expected: u16 },
    /// Potentially-blocking `bar.sync`.
    Sync { bar: u8, expected: u16 },
}

/// One barrier-separated superblock of a warp's stream: a dense micro-op
/// range, its statically-known event counts, its pre-resolved
/// constant-cache line script, and its terminator.
#[derive(Debug)]
struct Segment {
    uops: std::ops::Range<u32>,
    /// Concatenated constant-cache line sequence of every constant load in
    /// this segment, in access order (range into [`EngineProgram::lines`]).
    /// Segments are uninterruptible, so replaying the whole script once
    /// per segment preserves the global LRU access order exactly — the
    /// per-access walk leaves the inner loop entirely.
    lines: std::ops::Range<u32>,
    bulk: StaticSegCounts,
    term: SegTerm,
}

/// Where a global access takes its per-lane point index from.
#[derive(Debug, Clone, Copy)]
enum PtsRef {
    /// `point = base_point + delta + lane` (PointRef::Lane / ::Thread,
    /// with the point-set or warp offset folded into `delta`).
    Rel(u32),
    /// Statically-resolved absolute points (PointRef::Reg): a 32-lane
    /// chunk index into the u32 arena.
    Abs(u32),
}

/// A pre-resolved micro-op. Register offsets are lane-major base indices
/// (`reg * WARP_SIZE`), exactly as in the interpreter's decoded form; all
/// static bounds were proven by lowering.
#[derive(Debug, Clone, Copy)]
enum UOp {
    /// Register-only instruction, executed by the interpreter's own
    /// [`exec_fast`] (guaranteeing identical floating-point behavior).
    Fast(DecodedInstr),
    /// Fused `t = a * b; d = t <op> c` pair produced by the lowering
    /// peephole. Both roundings are kept (product rounds, then the second
    /// op rounds) and both destinations are written, so the result is
    /// bit-identical to the two unfused instructions the interpreter
    /// executes — no gating needed for the differential tests.
    FusedMulBin { kind: lanes::FusedBin, t: u32, d: u32, a: Src, b: Src, c: Src },
    /// Constant load with values fully resolved: copy a 32-lane chunk
    /// from the f64 arena. The cache-line walk moved to the segment's
    /// line script ([`Segment::lines`]).
    ConstV { dst: u32, vals: u32 },
    /// Shared load from pre-resolved, pre-validated addresses.
    LdShared { dst: u32, addrs: u32 },
    /// Fused stage-and-broadcast: read one pre-validated shared word and
    /// splat it across the destination chunk. Produced by the DCE pass
    /// from an `LdShared` gather whose only consumer was a single-lane
    /// `Shfl` — the warp-specialized kernels' staple pattern — replacing
    /// a 32-lane gather plus a broadcast with one load.
    LdSharedBcast { dst: u32, addr: u32 },
    /// Shared store; `lane == u32::MAX` stores all lanes, otherwise only
    /// the predicated lane (lowering rejects `lane >= WARP_SIZE`).
    StShared { src: Src, addrs: u32, lane: u32 },
    /// Global load: `idx[l] = rows[l] * total_points + point(l)`.
    LdGlobal { dst: u32, array: u32, rows: u32, pts: PtsRef },
    /// Global store, same addressing.
    StGlobal { src: Src, array: u32, rows: u32, pts: PtsRef },
    /// Async-copy one value per lane global → shared without touching a
    /// register ([`Instr::CpAsync`]): `shared[addrs[l]] = global[idx(l)]`.
    /// Addresses are pre-resolved (shared addrs saturated into the u32
    /// arena like `StShared`); bounds are re-checked per lane at run time
    /// in the interpreter's exact order (global read, then shared store),
    /// because the global side depends on the runtime grid placement and
    /// the first failing lane must report the same error on both paths.
    /// Side-effecting like `StShared`: never dead, reads and writes no
    /// registers.
    CpAsync { addrs: u32, array: u32, rows: u32, pts: PtsRef },
    /// Deferred execution-time error discovered at lowering time.
    Trap(u32),
    /// A run of independent `Exp` micro-ops batched at lowering time
    /// (`pairs..pairs+n` into [`EngineProgram::exp_pairs`]): execution
    /// gathers every member's source chunk into one contiguous SoA
    /// buffer, evaluates it with a single [`crate::vmath::exp_slice`]
    /// call, and scatters the results to the destination chunks. The
    /// batching pass proved the members independent of each other and
    /// of every intervening op (see `batch_exps`), so gather-then-
    /// scatter is bit-identical to the original op-at-a-time order.
    /// `Exp` uops are always full-warp (the only predicated micro-op in
    /// this IR is the `StShared` lane form, which is never batched), so
    /// exactly the architectural lanes each original op would write are
    /// evaluated — no masked lanes exist to leak into.
    ExpBatch { pairs: u32, n: u32 },
    /// Tombstone left by the optimization passes (fused second halves,
    /// dead copies); compaction removes every one before execution.
    Nop,
}

/// A lowered CTA program: per-warp segment lists over shared micro-op and
/// operand arenas. Arch/grid/CTA independent — cache freely.
#[derive(Debug)]
pub(crate) struct EngineProgram {
    /// Per-warp segments, in stream order.
    warps: Vec<Vec<Segment>>,
    uops: Vec<UOp>,
    /// 32-lane u32 chunks (shared addresses, global rows, absolute
    /// points), deduplicated; indexed by chunk (byte offset = idx * 32).
    u32x: Vec<u32>,
    /// 32-lane f64 chunks (resolved constant loads), deduplicated.
    f64x: Vec<f64>,
    /// Ordered constant-cache line scripts, referenced per segment by
    /// [`Segment::lines`].
    lines: Vec<u64>,
    /// Pre-splatted immediate chunks forming a read-only *constant tail*
    /// shared by every warp: operand resolution treats register indices at
    /// or past the architectural register file as offsets into this
    /// vector. Operands the lowering rewrote from `Src::Imm` point here,
    /// turning a per-use 32-lane splat into a plain chunk read without
    /// growing any warp's register file.
    dreg_tail: Vec<f64>,
    /// Deferred errors referenced by [`UOp::Trap`].
    traps: Vec<SimError>,
    /// `(dst, src)` register-chunk bases of batched exp members,
    /// referenced by [`UOp::ExpBatch`] ranges. Sources may address the
    /// constant tail (base past the architectural file).
    exp_pairs: Vec<(u32, u32)>,
    /// Lowering statistics: per-op mix and what the exp passes did.
    stats: EngineStats,
}

/// What the lowering's transcendental passes found and did — the per-op
/// mix `report engine-bench` and [`crate::model::OpMix`] surface, plus
/// the applied/rejected ledger of the exp-chain rewriter.
#[derive(Debug, Clone, Default)]
pub struct EngineStats {
    /// Micro-ops surviving optimization and compaction.
    pub uops: u64,
    /// Scalar-equivalent exp micro-ops in the final program (unbatched
    /// `Exp` uops plus every batched member).
    pub exp_ops: u64,
    /// Of [`Self::exp_ops`], how many were folded into `UOp::ExpBatch`.
    pub exp_batched: u64,
    /// Number of `ExpBatch` uops emitted.
    pub exp_batches: u64,
    /// Repeated-operand exps replaced by register copies (always
    /// bit-identical: `exp` is a pure function of the operand chunk).
    pub exp_cse: u64,
    /// `exp(a)*exp(b) → exp(a+b)` rewrites applied — every one passed
    /// the lowering-time bit-identity gate (`exp_mul_rewrite_ok`).
    pub exp_mul_applied: u64,
    /// Structural `exp(a)*exp(b)` candidates rejected because the
    /// differential corpus (or the provability condition) showed the
    /// rewrite would change output bits.
    pub exp_mul_rejected: u64,
    /// Structural candidates rejected for scheduling reasons (an
    /// operand or result register is live elsewhere), before the
    /// numeric gate was consulted.
    pub exp_mul_infeasible: u64,
    /// `CpAsync` micro-ops in the final program — fused global→shared
    /// copies that bypass the register file (Hopper-class pipelines).
    pub async_copies: u64,
}

impl EngineProgram {
    pub(crate) fn stats(&self) -> &EngineStats {
        &self.stats
    }
}

struct Lowerer<'k> {
    kernel: &'k Kernel,
    bank_base: Vec<u64>,
    uops: Vec<UOp>,
    u32x: Vec<u32>,
    f64x: Vec<f64>,
    lines: Vec<u64>,
    /// Constant-cache lines touched by the segment currently being
    /// lowered; drained into `lines` when the segment flushes.
    cur_lines: Vec<u64>,
    traps: Vec<SimError>,
    u32_dedup: HashMap<[u32; WARP_SIZE], u32>,
    f64_dedup: HashMap<[u64; WARP_SIZE], u32>,
    dreg_tail: Vec<f64>,
    imm_dedup: HashMap<u64, u32>,
    exp_pairs: Vec<(u32, u32)>,
    stats: EngineStats,
}

/// Lower a flattened program into its segment-compiled form. Infallible:
/// execution-time errors become positional traps.
pub(crate) fn lower(kernel: &Kernel, prog: &FlatProgram) -> EngineProgram {
    // Byte offset of each const bank within constant space (the constant
    // cache is addressed across banks, exactly as in the interpreter).
    let mut bank_base = Vec::with_capacity(kernel.const_banks.len());
    let mut off = 0u64;
    for b in &kernel.const_banks {
        bank_base.push(off);
        off += (b.len() * 8) as u64;
    }
    let mut lw = Lowerer {
        kernel,
        bank_base,
        uops: Vec::new(),
        u32x: Vec::new(),
        f64x: Vec::new(),
        lines: Vec::new(),
        cur_lines: Vec::new(),
        traps: Vec::new(),
        u32_dedup: HashMap::new(),
        f64_dedup: HashMap::new(),
        dreg_tail: Vec::new(),
        imm_dedup: HashMap::new(),
        exp_pairs: Vec::new(),
        stats: EngineStats::default(),
    };
    let warps: Vec<Vec<Segment>> =
        (0..prog.n_warps()).map(|w| lw.lower_warp(prog, w)).collect();
    let mut stats = std::mem::take(&mut lw.stats);
    stats.uops = lw.uops.len() as u64;
    for u in &lw.uops {
        match u {
            UOp::Fast(DecodedInstr::Un { kind: UnKind::Exp, .. }) => stats.exp_ops += 1,
            UOp::ExpBatch { n, .. } => {
                stats.exp_ops += *n as u64;
                stats.exp_batched += *n as u64;
                stats.exp_batches += 1;
            }
            UOp::CpAsync { .. } => stats.async_copies += 1,
            _ => {}
        }
    }
    if std::env::var_os("SINGE_ENGINE_STATS").is_some() {
        let mut hist: HashMap<&'static str, usize> = HashMap::new();
        for u in &lw.uops {
            let k = match u {
                UOp::Fast(DecodedInstr::Bin { kind, .. }) => match kind {
                    BinKind::Add => "bin.add",
                    BinKind::Sub => "bin.sub",
                    BinKind::Mul => "bin.mul",
                    BinKind::Div => "bin.div",
                    BinKind::Pow => "bin.pow",
                    BinKind::Max => "bin.max",
                    BinKind::Min => "bin.min",
                },
                UOp::Fast(DecodedInstr::Un { kind, .. }) => match kind {
                    UnKind::Mov => "un.mov",
                    UnKind::Sqrt => "un.sqrt",
                    UnKind::Neg => "un.neg",
                    UnKind::Exp => "un.exp",
                    UnKind::Log => "un.log",
                    UnKind::Log10 => "un.log10",
                    UnKind::Cbrt => "un.cbrt",
                },
                UOp::Fast(DecodedInstr::Fma { .. }) => "fma",
                UOp::Fast(DecodedInstr::Sel { .. }) => "sel",
                UOp::Fast(DecodedInstr::CmpOp { .. }) => "cmp",
                UOp::Fast(DecodedInstr::Shfl { .. }) => "shfl",
                UOp::Fast(DecodedInstr::LdLocal { .. }) => "ldlocal",
                UOp::Fast(DecodedInstr::StLocal { .. }) => "stlocal",
                UOp::Fast(_) => "fast.other",
                UOp::FusedMulBin { .. } => "fused_mul_bin",
                UOp::ConstV { .. } => "constv",
                UOp::LdShared { .. } => "ldshared",
                UOp::LdSharedBcast { .. } => "ldshared_bcast",
                UOp::StShared { .. } => "stshared",
                UOp::LdGlobal { .. } => "ldglobal",
                UOp::StGlobal { .. } => "stglobal",
                UOp::CpAsync { .. } => "cp_async",
                UOp::Trap(_) => "trap",
                UOp::ExpBatch { .. } => "exp_batch",
                UOp::Nop => "nop",
            };
            *hist.entry(k).or_default() += 1;
        }
        let mut v: Vec<_> = hist.into_iter().collect();
        v.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
        eprintln!(
            "engine stats: {} uops total, {} splatted immediates",
            lw.uops.len(),
            lw.dreg_tail.len() / WARP_SIZE
        );
        for (k, n) in v {
            eprintln!("  {k:14} {n}");
        }
        eprintln!(
            "engine exp: {} scalar-equivalent ops, {} batched into {} batches; \
             cse {}, exp-mul rewrites applied {}, rejected by bit-identity gate {}, \
             scheduling-infeasible {}",
            stats.exp_ops,
            stats.exp_batched,
            stats.exp_batches,
            stats.exp_cse,
            stats.exp_mul_applied,
            stats.exp_mul_rejected,
            stats.exp_mul_infeasible,
        );
        if let Ok(w) = std::env::var("SINGE_ENGINE_DUMP") {
            let w: usize = w.parse().unwrap_or(0);
            for (si, seg) in warps.get(w).map_or(&[][..], |v| v).iter().enumerate() {
                eprintln!("-- warp {w} seg {si} ({:?})", seg.uops);
                for u in &lw.uops[seg.uops.start as usize..seg.uops.end as usize] {
                    eprintln!("  {u:?}");
                }
            }
        }
    }
    EngineProgram {
        warps,
        uops: lw.uops,
        u32x: lw.u32x,
        f64x: lw.f64x,
        lines: lw.lines,
        dreg_tail: lw.dreg_tail,
        traps: lw.traps,
        exp_pairs: lw.exp_pairs,
        stats,
    }
}

impl Lowerer<'_> {
    fn push_u32x(&mut self, v: [u32; WARP_SIZE]) -> u32 {
        if let Some(&idx) = self.u32_dedup.get(&v) {
            return idx;
        }
        let idx = (self.u32x.len() / WARP_SIZE) as u32;
        self.u32x.extend_from_slice(&v);
        self.u32_dedup.insert(v, idx);
        idx
    }

    fn push_f64x(&mut self, v: [f64; WARP_SIZE]) -> u32 {
        let key: [u64; WARP_SIZE] = std::array::from_fn(|l| v[l].to_bits());
        if let Some(&idx) = self.f64_dedup.get(&key) {
            return idx;
        }
        let idx = (self.f64x.len() / WARP_SIZE) as u32;
        self.f64x.extend_from_slice(&v);
        self.f64_dedup.insert(key, idx);
        idx
    }

    /// Close the current segment: commit its uop range, drain its
    /// accumulated constant-line script, and take its bulk counts.
    fn flush_seg(
        &mut self,
        segs: &mut Vec<Segment>,
        seg_start: &mut u32,
        bulk: &mut StaticSegCounts,
        term: SegTerm,
    ) {
        let range = *seg_start..self.uops.len() as u32;
        // A trailing empty segment would make a finished warp look
        // like it still ran an instruction; skip it (a warp whose
        // stream ends exactly at a barrier, or is empty, has no
        // trailing work — matching the interpreter's `ran` logic).
        let keep = !range.is_empty()
            || *bulk != StaticSegCounts::default()
            || !matches!(term, SegTerm::End);
        if keep {
            let lstart = self.lines.len() as u32;
            self.lines.append(&mut self.cur_lines);
            let lines = lstart..self.lines.len() as u32;
            segs.push(Segment { uops: range, lines, bulk: std::mem::take(bulk), term });
        } else {
            // Lines only accumulate from constant loads, which push uops.
            debug_assert!(self.cur_lines.is_empty());
        }
        *seg_start = self.uops.len() as u32;
    }

    fn lower_warp(&mut self, prog: &FlatProgram, w: usize) -> Vec<Segment> {
        let kernel = self.kernel;
        let warp_start = self.uops.len();
        // Concrete per-warp index-register state, abstractly interpreted
        // in stream order. Values are CTA-invariant (see module docs).
        let mut iregs = vec![0u32; kernel.iregs_per_thread * WARP_SIZE];
        let mut segs: Vec<Segment> = Vec::new();
        let mut seg_start = self.uops.len() as u32;
        let mut bulk = StaticSegCounts::default();
        'stream: {
            for op in &prog.streams[w] {
                match *op {
                    FlatOp::Branch { .. } => {
                        bulk.issue_slots += 1;
                        bulk.warp_branches += 1;
                    }
                    FlatOp::Exec { instr, pset, .. } => {
                        let i = instr as usize;
                        let cost = prog.costs[i];
                        bulk.issue_slots += cost.slots;
                        if cost.dp {
                            bulk.dp_slots += cost.slots;
                            bulk.flops += cost.flops_warp;
                            bulk.dp_const_slots += cost.const_slots;
                        }
                        match prog.decoded[i] {
                            DecodedInstr::BarArrive { bar, expected } => {
                                bulk.barrier_arrives += 1;
                                self.flush_seg(&mut segs, &mut seg_start, &mut bulk,
                                      SegTerm::Arrive { bar, expected });
                            }
                            DecodedInstr::BarSync { bar, expected } => {
                                bulk.barrier_syncs += 1;
                                self.flush_seg(&mut segs, &mut seg_start, &mut bulk,
                                      SegTerm::Sync { bar, expected });
                            }
                            // Stage barriers resolve statically: each
                            // iteration's Exec carries its own pset, so the
                            // rotated physical barrier is known at lowering
                            // and the scheduler sees a plain Arrive/Sync —
                            // the same remap the interpreter applies at
                            // dispatch (`step_warp`).
                            DecodedInstr::BarArriveStage { base, k, expected } => {
                                bulk.barrier_arrives += 1;
                                let bar = base + (pset % u32::from(k.max(1))) as u8;
                                self.flush_seg(&mut segs, &mut seg_start, &mut bulk,
                                      SegTerm::Arrive { bar, expected });
                            }
                            DecodedInstr::BarSyncStage { base, k, expected } => {
                                bulk.barrier_syncs += 1;
                                let bar = base + (pset % u32::from(k.max(1))) as u8;
                                self.flush_seg(&mut segs, &mut seg_start, &mut bulk,
                                      SegTerm::Sync { bar, expected });
                            }
                            DecodedInstr::Invalid { space, addr, limit } => {
                                self.trap(SimError::OutOfBounds { space, addr, limit });
                                self.flush_seg(&mut segs, &mut seg_start, &mut bulk, SegTerm::End);
                                break 'stream;
                            }
                            DecodedInstr::Slow => {
                                if let Err(e) =
                                    self.lower_slow(&prog.instrs[i], pset, w, &mut iregs, &mut bulk)
                                {
                                    self.trap(e);
                                    self.flush_seg(&mut segs, &mut seg_start, &mut bulk, SegTerm::End);
                                    break 'stream;
                                }
                            }
                            dec @ (DecodedInstr::LdLocal { .. } | DecodedInstr::StLocal { .. }) => {
                                bulk.local_bytes += (WARP_SIZE * 8) as u64;
                                self.uops.push(UOp::Fast(dec));
                            }
                            dec => self.uops.push(UOp::Fast(dec)),
                        }
                    }
                }
            }
            self.flush_seg(&mut segs, &mut seg_start, &mut bulk, SegTerm::End);
        }
        self.optimize_warp(warp_start, &mut segs);
        segs
    }

    /// Post-lowering optimization over one warp's uops: copy propagation,
    /// exp-chain rewriting (CSE plus the bit-identity-gated
    /// `exp(a)*exp(b) → exp(a+b)`), the mul→add/sub fusion peephole,
    /// dead-code elimination, immediate splatting, exp batching, and
    /// compaction. Bulk counts derive from the *pre*-fusion instruction
    /// stream and are untouched, so `EventCounts` stay bit-identical to
    /// the interpreter's per-instruction bookkeeping; every rewrite below
    /// preserves observable values bit-for-bit (registers are warp-private
    /// and only observable through stores, outputs, and errors).
    fn optimize_warp(&mut self, warp_start: usize, segs: &mut [Segment]) {
        let dreg_len = self.kernel.dregs_per_thread * WARP_SIZE;
        let uops = &mut self.uops[warp_start..];
        fold_const_shuffles(uops, &self.f64x);
        copy_propagate(uops);
        // After copy propagation (so lowering-time-known exp operands
        // have been folded to immediates the rewrite gate can evaluate),
        // before fusion (so the product mul is still a plain `Bin`).
        rewrite_exp_chains(uops, &mut self.stats);
        fuse_mul_bin(uops, segs, warp_start as u32);
        eliminate_dead_uops(uops, dreg_len, &self.u32x, segs, warp_start as u32);
        // After liveness: the virtual bases it introduces sit past
        // `dreg_len` and must never reach the DCE's range checks.
        splat_immediates(uops, dreg_len, &mut self.dreg_tail, &mut self.imm_dedup);
        // Last before compaction: batches index the final operand form
        // (every source a register or constant-tail chunk), and the pass
        // steps over tombstones rather than remapping them.
        batch_exps(uops, segs, warp_start as u32, &mut self.exp_pairs);
        // Compact tombstones out and remap segment ranges.
        let tail: Vec<UOp> = self.uops.drain(warp_start..).collect();
        let mut new_index = vec![0u32; tail.len() + 1];
        let mut kept = 0u32;
        for (i, u) in tail.iter().enumerate() {
            new_index[i] = kept;
            if !matches!(u, UOp::Nop) {
                kept += 1;
            }
        }
        new_index[tail.len()] = kept;
        for seg in segs.iter_mut() {
            let s = seg.uops.start as usize - warp_start;
            let e = seg.uops.end as usize - warp_start;
            seg.uops =
                (warp_start as u32 + new_index[s])..(warp_start as u32 + new_index[e]);
        }
        self.uops.extend(tail.into_iter().filter(|u| !matches!(u, UOp::Nop)));
    }

    fn trap(&mut self, e: SimError) {
        let idx = self.traps.len() as u32;
        self.traps.push(e);
        self.uops.push(UOp::Trap(idx));
    }

    /// Lower one memory / constant / index instruction, statically
    /// evaluating all index-register reads. Check order mirrors the
    /// interpreter's `exec_slow` exactly, so a trap carries the error the
    /// interpreter's first failing check would have produced.
    fn lower_slow(
        &mut self,
        ins: &Instr,
        pset: u32,
        wid: usize,
        iregs: &mut [u32],
        bulk: &mut StaticSegCounts,
    ) -> SimResult<()> {
        let kernel = self.kernel;
        let nd = kernel.dregs_per_thread;
        let ni = kernel.iregs_per_thread;
        let chk_d = |r: Reg| -> SimResult<()> {
            if (r as usize) < nd {
                Ok(())
            } else {
                Err(SimError::OutOfBounds { space: "dreg", addr: r as usize, limit: nd })
            }
        };
        let chk_i = |r: IdxReg| -> SimResult<()> {
            if (r as usize) < ni {
                Ok(())
            } else {
                Err(SimError::OutOfBounds { space: "ireg", addr: r as usize, limit: ni })
            }
        };
        // Static index-operand read. The interpreter indexes the register
        // file raw here (panicking when out of range); the engine reports
        // the same condition as a structured trap instead.
        let ival = |iregs: &[u32], o: &IdxOp, l: usize| -> SimResult<u32> {
            match o {
                IdxOp::Imm(v) => Ok(*v),
                IdxOp::Reg(r) => iregs
                    .get(*r as usize * WARP_SIZE + l)
                    .copied()
                    .ok_or(SimError::OutOfBounds { space: "ireg", addr: *r as usize, limit: ni }),
            }
        };
        let src = |o: &Op| match o {
            Op::Reg(r) => Src::Reg(*r as usize * WARP_SIZE),
            Op::Imm(v) => Src::Imm(*v),
        };
        let base_d = |r: Reg| (r as usize * WARP_SIZE) as u32;

        // Resolve a global address into (rows chunk, points ref).
        macro_rules! gaddr {
            ($addr:expr) => {{
                let a: &GAddr = $addr;
                let mut rows = [0u32; WARP_SIZE];
                for l in 0..WARP_SIZE {
                    rows[l] = ival(iregs, &a.row, l)?;
                }
                let pts = match a.point {
                    PointRef::Lane => PtsRef::Rel(pset * WARP_SIZE as u32),
                    PointRef::Thread => PtsRef::Rel((wid * WARP_SIZE) as u32),
                    PointRef::Reg(r) => {
                        let mut pv = [0u32; WARP_SIZE];
                        for l in 0..WARP_SIZE {
                            pv[l] = ival(iregs, &IdxOp::Reg(r), l)?;
                        }
                        PtsRef::Abs(self.push_u32x(pv))
                    }
                };
                (self.push_u32x(rows), pts)
            }};
        }
        // Resolve a shared address vector (not yet bounds-checked).
        macro_rules! saddrs {
            ($addr:expr) => {{
                let a: &SAddr = $addr;
                let mut addrs = [0usize; WARP_SIZE];
                for l in 0..WARP_SIZE {
                    let base = match a.base {
                        Some(r) => ival(iregs, &IdxOp::Reg(r), l)? as usize,
                        None => 0,
                    };
                    addrs[l] = base + a.imm as usize + a.lane_stride as usize * l;
                }
                addrs
            }};
        }

        match ins {
            Instr::LdGlobal { dst, addr, .. } => {
                chk_d(*dst)?;
                let (rows, pts) = gaddr!(addr);
                self.uops.push(UOp::LdGlobal {
                    dst: base_d(*dst),
                    array: addr.array.0 as u32,
                    rows,
                    pts,
                });
            }
            Instr::StGlobal { src: s, addr } => {
                let decl = &kernel.global_arrays[addr.array.0];
                if !decl.output {
                    return Err(SimError::BadLaunch(format!(
                        "store to non-output array '{}'",
                        decl.name
                    )));
                }
                let (rows, pts) = gaddr!(addr);
                self.uops.push(UOp::StGlobal {
                    src: src(s),
                    array: addr.array.0 as u32,
                    rows,
                    pts,
                });
            }
            Instr::LdShared { dst, addr } => {
                chk_d(*dst)?;
                let addrs = saddrs!(addr);
                for &a in &addrs {
                    if a >= kernel.shared_words {
                        return Err(SimError::OutOfBounds {
                            space: "shared",
                            addr: a,
                            limit: kernel.shared_words,
                        });
                    }
                }
                let (tx, conf) = bank_transactions(&addrs, None);
                bulk.shared_accesses += tx;
                bulk.shared_conflicts += conf;
                let a32: [u32; WARP_SIZE] = std::array::from_fn(|l| addrs[l] as u32);
                if a32.iter().all(|&a| a == a32[0]) {
                    // Every lane reads the same word (a `lane_stride: 0`
                    // broadcast, the warp-specialized queues' bread and
                    // butter): one load + splat instead of a 32-lane
                    // gather. Bulk counts above already modeled the full
                    // access, so `EventCounts` are unchanged.
                    self.uops.push(UOp::LdSharedBcast { dst: base_d(*dst), addr: a32[0] });
                } else {
                    let addrs = self.push_u32x(a32);
                    self.uops.push(UOp::LdShared { dst: base_d(*dst), addrs });
                }
            }
            Instr::StShared { src: s, addr, lane_pred } => {
                // A predicate naming a lane outside the warp is a typed
                // error (it used to silently drop the store); checked
                // before the address walk, mirroring `exec_slow`.
                if let Some(p) = lane_pred {
                    if *p as usize >= WARP_SIZE {
                        return Err(SimError::OutOfBounds {
                            space: "lane-pred",
                            addr: *p as usize,
                            limit: WARP_SIZE,
                        });
                    }
                }
                let addrs = saddrs!(addr);
                for (l, &a) in addrs.iter().enumerate() {
                    if let Some(p) = lane_pred {
                        if *p as usize != l {
                            continue;
                        }
                    }
                    if a >= kernel.shared_words {
                        return Err(SimError::OutOfBounds {
                            space: "shared",
                            addr: a,
                            limit: kernel.shared_words,
                        });
                    }
                }
                let (tx, conf) = bank_transactions(&addrs, *lane_pred);
                bulk.shared_accesses += tx;
                bulk.shared_conflicts += conf;
                // Lanes a predicate excludes were never bounds-checked
                // (matching the interpreter) and are never read back;
                // saturate them into the u32 arena.
                let a32: [u32; WARP_SIZE] =
                    std::array::from_fn(|l| addrs[l].min(u32::MAX as usize) as u32);
                let addrs = self.push_u32x(a32);
                self.uops.push(UOp::StShared {
                    src: src(s),
                    addrs,
                    lane: lane_pred.map(|p| p as u32).unwrap_or(u32::MAX),
                });
            }
            Instr::LdConst { dst, bank, idx } => {
                chk_d(*dst)?;
                let bankv =
                    kernel.const_banks.get(*bank as usize).ok_or(SimError::OutOfBounds {
                        space: "const-bank",
                        addr: *bank as usize,
                        limit: kernel.const_banks.len(),
                    })?;
                let mut vals = [0f64; WARP_SIZE];
                let mut lines: Vec<u64> = Vec::new();
                for l in 0..WARP_SIZE {
                    let i = ival(iregs, idx, l)? as usize;
                    vals[l] = *bankv.get(i).ok_or(SimError::OutOfBounds {
                        space: "const",
                        addr: i,
                        limit: bankv.len(),
                    })?;
                    // One cache access per distinct line, in first-touch
                    // order (lanes reading the same constant broadcast).
                    let line = (self.bank_base[*bank as usize] + (i * 8) as u64) / 64;
                    if !lines.contains(&line) {
                        lines.push(line);
                    }
                }
                let vidx = self.push_f64x(vals);
                self.cur_lines.extend_from_slice(&lines);
                self.uops.push(UOp::ConstV { dst: base_d(*dst), vals: vidx });
            }
            Instr::Idx(ii) => match ii {
                IdxInstr::Mov { dst, src } => {
                    chk_i(*dst)?;
                    for l in 0..WARP_SIZE {
                        iregs[*dst as usize * WARP_SIZE + l] = ival(iregs, src, l)?;
                    }
                }
                IdxInstr::Add { dst, a, b } => {
                    chk_i(*dst)?;
                    for l in 0..WARP_SIZE {
                        iregs[*dst as usize * WARP_SIZE + l] =
                            ival(iregs, a, l)?.wrapping_add(ival(iregs, b, l)?);
                    }
                }
                IdxInstr::Mul { dst, a, b } => {
                    chk_i(*dst)?;
                    for l in 0..WARP_SIZE {
                        iregs[*dst as usize * WARP_SIZE + l] =
                            ival(iregs, a, l)?.wrapping_mul(ival(iregs, b, l)?);
                    }
                }
                IdxInstr::LaneId { dst } => {
                    chk_i(*dst)?;
                    for l in 0..WARP_SIZE {
                        iregs[*dst as usize * WARP_SIZE + l] = l as u32;
                    }
                }
                IdxInstr::WarpId { dst } => {
                    chk_i(*dst)?;
                    for l in 0..WARP_SIZE {
                        iregs[*dst as usize * WARP_SIZE + l] = wid as u32;
                    }
                }
                IdxInstr::LdConst { dst, bank, idx } => {
                    chk_i(*dst)?;
                    let bankv =
                        kernel.iconst_banks.get(*bank as usize).ok_or(SimError::OutOfBounds {
                            space: "iconst-bank",
                            addr: *bank as usize,
                            limit: kernel.iconst_banks.len(),
                        })?;
                    for l in 0..WARP_SIZE {
                        let i = ival(iregs, idx, l)? as usize;
                        iregs[*dst as usize * WARP_SIZE + l] =
                            *bankv.get(i).ok_or(SimError::OutOfBounds {
                                space: "iconst",
                                addr: i,
                                limit: bankv.len(),
                            })?;
                    }
                }
                IdxInstr::Shfl { dst, src, lane } => {
                    chk_i(*dst)?;
                    chk_i(*src)?;
                    // Raw index like the interpreter (a >=32 lane reads
                    // across registers deterministically; replicate it).
                    let raw = *src as usize * WARP_SIZE + *lane as usize;
                    let v = *iregs.get(raw).ok_or(SimError::OutOfBounds {
                        space: "ireg",
                        addr: *src as usize,
                        limit: ni,
                    })?;
                    for l in 0..WARP_SIZE {
                        iregs[*dst as usize * WARP_SIZE + l] = v;
                    }
                }
                IdxInstr::PipeOff { dst, k, stride } => {
                    chk_i(*dst)?;
                    let v = (pset % u32::from((*k).max(1))).wrapping_mul(*stride);
                    for l in 0..WARP_SIZE {
                        iregs[*dst as usize * WARP_SIZE + l] = v;
                    }
                }
            },
            Instr::CpAsync { addr, array, row, point } => {
                let ga = GAddr { array: *array, row: *row, point: *point };
                let (rows, pts) = gaddr!(&ga);
                let addrs = saddrs!(addr);
                // The shared side is bounds-checked at run time, per lane,
                // interleaved with the global reads — the interpreter
                // checks `global(l)` then `shared(l)` for each lane in
                // order, and which side fails first can depend on the
                // runtime input length. Saturate like `StShared`.
                let (tx, conf) = bank_transactions(&addrs, None);
                bulk.shared_accesses += tx;
                bulk.shared_conflicts += conf;
                let a32: [u32; WARP_SIZE] =
                    std::array::from_fn(|l| addrs[l].min(u32::MAX as usize) as u32);
                let addrs = self.push_u32x(a32);
                self.uops.push(UOp::CpAsync { addrs, array: array.0 as u32, rows, pts });
            }
            _ => unreachable!("only slow-path instructions reach lower_slow"),
        }
        Ok(())
    }
}

/// Forward copy propagation over one warp's uops: a `Mov dst, src`
/// records that `dst` currently holds exactly `src`'s bits, and later
/// full-chunk operand reads of `dst` are rewritten to read `src` (or the
/// immediate) directly. Sound because register chunks are warp-private —
/// a rewritten read observes bit-identical values, and any write to
/// either side of a recorded copy invalidates it. Shfl's cross-chunk
/// element read is never rewritten (it is not a full-chunk read), so it
/// only participates as an invalidation barrier via its destination.
/// Forward constant tracking over one warp's uops: a `ConstV` chunk holds
/// a vector known at lowering time, so a `Shfl` that broadcasts one of
/// its elements produces a compile-time constant — rewrite it as a `Mov`
/// from an immediate. This is bit-identical by construction: the
/// interpreter's shuffle reads exactly the value the `ConstV` wrote
/// (registers are warp-private, and any intervening write to the chunk
/// clears its entry). Copy propagation then folds the immediate into the
/// consumers, and dead-code elimination removes the mov and — once every
/// reader has folded — the staging `ConstV` itself. In the
/// warp-specialized kernels this erases the entire shuffle-broadcast
/// traffic for register-staged constants.
fn fold_const_shuffles(uops: &mut [UOp], f64x: &[f64]) {
    #[derive(Clone, Copy)]
    enum Known {
        /// Chunk mirrors `f64x[idx*32..][..32]`.
        Table(u32),
        /// Chunk is a splat of one value (a folded shuffle's output).
        Splat(f64),
    }
    let mut known: HashMap<usize, Known> = HashMap::new();
    for uop in uops.iter_mut() {
        match uop {
            UOp::ConstV { dst, vals } => {
                known.insert(*dst as usize, Known::Table(*vals));
            }
            UOp::Fast(DecodedInstr::Shfl { dst, src, lane }) => {
                let elem = *src + *lane;
                let chunk = elem / WARP_SIZE * WARP_SIZE;
                let d = *dst;
                match known.get(&chunk).copied() {
                    Some(k) => {
                        let v = match k {
                            Known::Table(vi) => f64x[vi as usize * WARP_SIZE + (elem - chunk)],
                            Known::Splat(v) => v,
                        };
                        *uop = UOp::Fast(DecodedInstr::Un {
                            kind: UnKind::Mov,
                            dst: d,
                            a: Src::Imm(v),
                        });
                        known.insert(d, Known::Splat(v));
                    }
                    None => {
                        known.remove(&d);
                    }
                }
            }
            UOp::Fast(DecodedInstr::Un { kind: UnKind::Mov, dst, a: Src::Imm(v) }) => {
                known.insert(*dst, Known::Splat(*v));
            }
            UOp::Fast(dec) => match dec {
                DecodedInstr::Bin { dst, .. }
                | DecodedInstr::CmpOp { dst, .. }
                | DecodedInstr::Un { dst, .. }
                | DecodedInstr::Fma { dst, .. }
                | DecodedInstr::Sel { dst, .. }
                | DecodedInstr::LdLocal { dst, .. } => {
                    known.remove(dst);
                }
                DecodedInstr::StLocal { .. } | DecodedInstr::Invalid { .. } => {}
                DecodedInstr::Shfl { .. } => unreachable!("handled above"),
                DecodedInstr::BarArrive { .. }
                | DecodedInstr::BarSync { .. }
                | DecodedInstr::BarArriveStage { .. }
                | DecodedInstr::BarSyncStage { .. }
                | DecodedInstr::Slow => unreachable!("never lowered into uops"),
            },
            UOp::FusedMulBin { t, d, .. } => {
                known.remove(&(*t as usize));
                known.remove(&(*d as usize));
            }
            UOp::LdShared { dst, .. }
            | UOp::LdSharedBcast { dst, .. }
            | UOp::LdGlobal { dst, .. } => {
                known.remove(&(*dst as usize));
            }
            UOp::StShared { .. }
            | UOp::StGlobal { .. }
            | UOp::CpAsync { .. }
            | UOp::Trap(_)
            | UOp::Nop => {}
            UOp::ExpBatch { .. } => unreachable!("batching runs after this pass"),
        }
    }
}

fn copy_propagate(uops: &mut [UOp]) {
    let mut copies: HashMap<usize, Src> = HashMap::new();
    fn resolve(copies: &HashMap<usize, Src>, s: Src) -> Src {
        if let Src::Reg(b) = s {
            if let Some(&r) = copies.get(&b) {
                return r;
            }
        }
        s
    }
    fn invalidate(copies: &mut HashMap<usize, Src>, w: usize) {
        copies.remove(&w);
        copies.retain(|_, v| !matches!(v, Src::Reg(b) if *b == w));
    }
    for uop in uops.iter_mut() {
        match uop {
            UOp::Fast(dec) => match dec {
                DecodedInstr::Un { kind: UnKind::Mov, dst, a } => {
                    let src = resolve(&copies, *a);
                    *a = src;
                    invalidate(&mut copies, *dst);
                    if !matches!(src, Src::Reg(b) if b == *dst) {
                        copies.insert(*dst, src);
                    }
                }
                DecodedInstr::Bin { a, b, dst, .. } | DecodedInstr::CmpOp { a, b, dst, .. } => {
                    *a = resolve(&copies, *a);
                    *b = resolve(&copies, *b);
                    invalidate(&mut copies, *dst);
                }
                DecodedInstr::Un { a, dst, .. } => {
                    *a = resolve(&copies, *a);
                    invalidate(&mut copies, *dst);
                }
                DecodedInstr::Fma { a, b, c, dst } => {
                    *a = resolve(&copies, *a);
                    *b = resolve(&copies, *b);
                    *c = resolve(&copies, *c);
                    invalidate(&mut copies, *dst);
                }
                DecodedInstr::Sel { pred, a, b, dst } => {
                    // The predicate is a raw register base; it can only be
                    // redirected to another register, not an immediate.
                    if let Some(&Src::Reg(p2)) = copies.get(pred) {
                        *pred = p2;
                    }
                    *a = resolve(&copies, *a);
                    *b = resolve(&copies, *b);
                    invalidate(&mut copies, *dst);
                }
                DecodedInstr::Shfl { dst, .. } | DecodedInstr::LdLocal { dst, .. } => {
                    let dst = *dst;
                    invalidate(&mut copies, dst);
                }
                DecodedInstr::StLocal { src, .. } => *src = resolve(&copies, *src),
                DecodedInstr::Invalid { .. } => {}
                DecodedInstr::BarArrive { .. }
                | DecodedInstr::BarSync { .. }
                | DecodedInstr::BarArriveStage { .. }
                | DecodedInstr::BarSyncStage { .. }
                | DecodedInstr::Slow => unreachable!("never lowered into uops"),
            },
            UOp::FusedMulBin { a, b, c, t, d, .. } => {
                *a = resolve(&copies, *a);
                *b = resolve(&copies, *b);
                *c = resolve(&copies, *c);
                let (t, d) = (*t as usize, *d as usize);
                invalidate(&mut copies, t);
                invalidate(&mut copies, d);
            }
            UOp::ConstV { dst, .. }
            | UOp::LdShared { dst, .. }
            | UOp::LdSharedBcast { dst, .. }
            | UOp::LdGlobal { dst, .. } => {
                let dst = *dst as usize;
                invalidate(&mut copies, dst);
            }
            UOp::StShared { src, .. } | UOp::StGlobal { src, .. } => {
                *src = resolve(&copies, *src);
            }
            UOp::CpAsync { .. } | UOp::Trap(_) | UOp::Nop => {}
            UOp::ExpBatch { .. } => unreachable!("batching runs after this pass"),
        }
    }
}

/// Invoke `f` with the chunk base of every register chunk this uop
/// reads — architectural or constant-tail (tail bases are immutable, so
/// callers tracking writes may include them harmlessly). Element reads
/// (`Shfl`) report the containing chunk; `Sel` predicates are raw chunk
/// bases.
fn for_each_read_chunk(u: &UOp, pairs: &[(u32, u32)], f: &mut dyn FnMut(usize)) {
    fn s(f: &mut dyn FnMut(usize), src: Src) {
        if let Src::Reg(b) = src {
            f(b);
        }
    }
    match *u {
        UOp::Fast(dec) => match dec {
            DecodedInstr::Bin { a, b, .. } | DecodedInstr::CmpOp { a, b, .. } => {
                s(f, a);
                s(f, b);
            }
            DecodedInstr::Un { a, .. } => s(f, a),
            DecodedInstr::Fma { a, b, c, .. } => {
                s(f, a);
                s(f, b);
                s(f, c);
            }
            DecodedInstr::Sel { pred, a, b, .. } => {
                f(pred);
                s(f, a);
                s(f, b);
            }
            DecodedInstr::Shfl { src, lane, .. } => f((src + lane) / WARP_SIZE * WARP_SIZE),
            DecodedInstr::StLocal { src, .. } => s(f, src),
            DecodedInstr::LdLocal { .. } | DecodedInstr::Invalid { .. } => {}
            DecodedInstr::BarArrive { .. }
            | DecodedInstr::BarSync { .. }
            | DecodedInstr::BarArriveStage { .. }
            | DecodedInstr::BarSyncStage { .. }
            | DecodedInstr::Slow => {
                unreachable!("never lowered into uops")
            }
        },
        UOp::FusedMulBin { a, b, c, .. } => {
            s(f, a);
            s(f, b);
            s(f, c);
        }
        UOp::StShared { src, .. } | UOp::StGlobal { src, .. } => s(f, src),
        UOp::ExpBatch { pairs: p, n } => {
            for &(_, src) in &pairs[p as usize..(p + n) as usize] {
                f(src as usize);
            }
        }
        UOp::ConstV { .. }
        | UOp::LdShared { .. }
        | UOp::LdSharedBcast { .. }
        | UOp::LdGlobal { .. }
        | UOp::CpAsync { .. }
        | UOp::Trap(_)
        | UOp::Nop => {}
    }
}

/// Invoke `f` with the chunk base of every architectural register chunk
/// this uop writes (every register write in this IR covers a full
/// 32-lane chunk).
fn for_each_write_chunk(u: &UOp, pairs: &[(u32, u32)], f: &mut dyn FnMut(usize)) {
    match *u {
        UOp::Fast(dec) => match dec {
            DecodedInstr::Bin { dst, .. }
            | DecodedInstr::CmpOp { dst, .. }
            | DecodedInstr::Un { dst, .. }
            | DecodedInstr::Fma { dst, .. }
            | DecodedInstr::Sel { dst, .. }
            | DecodedInstr::Shfl { dst, .. }
            | DecodedInstr::LdLocal { dst, .. } => f(dst),
            DecodedInstr::StLocal { .. } | DecodedInstr::Invalid { .. } => {}
            DecodedInstr::BarArrive { .. }
            | DecodedInstr::BarSync { .. }
            | DecodedInstr::BarArriveStage { .. }
            | DecodedInstr::BarSyncStage { .. }
            | DecodedInstr::Slow => {
                unreachable!("never lowered into uops")
            }
        },
        UOp::FusedMulBin { t, d, .. } => {
            f(t as usize);
            f(d as usize);
        }
        UOp::ConstV { dst, .. }
        | UOp::LdShared { dst, .. }
        | UOp::LdSharedBcast { dst, .. }
        | UOp::LdGlobal { dst, .. } => f(dst as usize),
        UOp::ExpBatch { pairs: p, n } => {
            for &(dst, _) in &pairs[p as usize..(p + n) as usize] {
                f(dst as usize);
            }
        }
        UOp::StShared { .. } | UOp::StGlobal { .. } | UOp::CpAsync { .. } | UOp::Trap(_) | UOp::Nop => {}
    }
}

/// Differential corpus for the exp-chain rewrite gate: every
/// special-value class the engine's differential proptests push through
/// `exp` (NaN payloads, ±inf, ±0, subnormals, huge/tiny normals) plus a
/// spread of magnitudes across the exp range — the overflow edge, the
/// subnormal-result band, and ordinary Arrhenius-sized arguments. A
/// candidate rewrite is evaluated on this corpus with the *runtime's
/// own* exp ([`crate::vmath::exp1`] follows the per-process dispatch),
/// so a pass/fail verdict at lowering time is a verdict about the bits
/// execution would produce.
const EXP_REWRITE_CORPUS: [f64; 36] = [
    f64::from_bits(0x0000_0000_0000_0000), // +0.0
    f64::from_bits(0x8000_0000_0000_0000), // -0.0
    f64::from_bits(0x0000_0000_0000_0001), // smallest subnormal
    f64::from_bits(0x8000_0000_0000_0001), // -smallest subnormal
    f64::from_bits(0x000f_ffff_ffff_ffff), // largest subnormal
    f64::from_bits(0x7fef_ffff_ffff_ffff), // f64::MAX
    f64::from_bits(0xffef_ffff_ffff_ffff), // -f64::MAX
    f64::from_bits(0x7ff0_0000_0000_0000), // +inf
    f64::from_bits(0xfff0_0000_0000_0000), // -inf
    f64::from_bits(0x7ff8_0000_0000_0000), // canonical quiet NaN
    f64::from_bits(0x7ff8_dead_beef_0001), // quiet NaN with a payload
    f64::from_bits(0x7e37_e43c_8800_759c), // 1e300
    1.0,
    -1.0,
    0.5,
    -0.5,
    1.5,
    -1.5,
    3.75,
    -3.75,
    19.3,
    -19.3,
    88.7,
    -88.7,
    350.0,
    -350.0,
    700.1,
    -700.1,
    709.78,
    710.0,
    -708.4,
    -745.0,
    -745.2,
    1e-300,
    -1e-300,
    6.25e-3,
];

/// Decide whether rewriting `exp(a) * exp(b)` (operand order exactly as
/// in the original mul) into `exp(a + b)` is bit-identical for every
/// input the kernel can produce, using the runtime's own exp:
///
/// * both operands lowering-time constants — evaluate both forms on the
///   actual values; the "corpus" is the exact input.
/// * one constant `c` — sample the corpus for the unknown side AND
///   require the identity to be input-independent, which holds only for
///   `c == ±0.0`: `x + ±0.0` bit-equals `x` (apart from `-0.0 → +0.0`,
///   where exp agrees), and `exp(±0.0) == 1.0` exactly, so multiplying
///   by it is the identity. The provability condition keeps a finite
///   sample from admitting a rewrite that differs on some runtime input
///   outside the corpus.
/// * both unknown — always rejected: `exp(a)*exp(b)` and `exp(a+b)`
///   genuinely differ in the last ulp for most argument pairs.
fn exp_mul_rewrite_ok(a: Option<f64>, b: Option<f64>) -> bool {
    let check = |x: f64, y: f64| {
        let orig = crate::vmath::exp1(x) * crate::vmath::exp1(y);
        let new = crate::vmath::exp1(x + y);
        orig.to_bits() == new.to_bits()
    };
    match (a, b) {
        (Some(ca), Some(cb)) => check(ca, cb),
        (Some(c), None) => c == 0.0 && EXP_REWRITE_CORPUS.iter().all(|&x| check(c, x)),
        (None, Some(c)) => c == 0.0 && EXP_REWRITE_CORPUS.iter().all(|&x| check(x, c)),
        (None, None) => false,
    }
}

/// Whether register chunk `reg` is dead from `uops[from..]` onward: a
/// warp's uop stream is the register's entire lifetime (registers are
/// warp-private and discarded at CTA end), so "overwritten before read,
/// or never touched again" is an exact answer, not an approximation.
fn reg_dead_after(uops: &[UOp], pairs: &[(u32, u32)], from: usize, reg: usize) -> bool {
    for u in &uops[from..] {
        let mut read = false;
        for_each_read_chunk(u, pairs, &mut |r| read |= r == reg);
        if read {
            return false;
        }
        let mut written = false;
        for_each_write_chunk(u, pairs, &mut |w| written |= w == reg);
        if written {
            return true;
        }
    }
    true
}

/// The exp-chain rewriter: recognize the repeated-operand and
/// `exp(a)*exp(b)` patterns the chemistry frontends emit, and rewrite
/// them **only** where the result is provably bit-identical. Everything
/// else is rejected and logged ([`EngineStats::exp_mul_rejected`] /
/// [`EngineStats::exp_mul_infeasible`]; `SINGE_ENGINE_STATS=1` prints
/// the ledger). Runs over the whole warp stream — barriers order shared
/// memory, not the warp-private registers these rewrites touch.
fn rewrite_exp_chains(uops: &mut [UOp], stats: &mut EngineStats) {
    // CSE first: a repeated-operand pair like `exp(a) * exp(a)` becomes a
    // copy, rather than reaching the mul rewriter as an unknown×unknown
    // pair it would (correctly, but noisily) reject.
    cse_exps(uops, stats);
    rewrite_exp_mul(uops, stats);
}

/// `exp(a) * exp(b) → exp(a + b)`, gated by [`exp_mul_rewrite_ok`]. The
/// structural pattern is `Exp r1, A; …; Exp r2, B; …; Mul d, p, q` with
/// `{p, q} = {r1, r2}` (each exp the last write of its register before
/// the mul). The rewrite reuses the three slots:
///
/// ```text
/// earlier def slot:  Add r1, A, B     (operand order = mul order)
/// later def slot:    Exp r2, r1
/// mul slot:          Mov d,  r2
/// ```
///
/// Scheduling feasibility (checked before the numeric gate): `A`/`B`
/// unchanged between the slot where they were read and where they are
/// read now; `r1`/`r2` read by nothing but this pattern until dead; the
/// whole lifetime check is exact because a warp's stream is the
/// register's lifetime.
fn rewrite_exp_mul(uops: &mut [UOp], stats: &mut EngineStats) {
    let no_pairs: &[(u32, u32)] = &[];
    for k in 0..uops.len() {
        let UOp::Fast(DecodedInstr::Bin {
            kind: BinKind::Mul,
            dst: d,
            a: Src::Reg(p),
            b: Src::Reg(q),
        }) = uops[k]
        else {
            continue;
        };
        if p == q {
            continue; // exp(a)^2: CSE territory, and the gate would reject it.
        }
        // Last write of `reg` before `k`, if it is an Exp into `reg`.
        let find_exp_def = |reg: usize| -> Option<(usize, Src)> {
            for i in (0..k).rev() {
                let mut writes = false;
                for_each_write_chunk(&uops[i], no_pairs, &mut |w| writes |= w == reg);
                if writes {
                    if let UOp::Fast(DecodedInstr::Un { kind: UnKind::Exp, dst, a }) = uops[i] {
                        if dst == reg {
                            return Some((i, a));
                        }
                    }
                    return None;
                }
            }
            None
        };
        let (Some((def_p, arg_p)), Some((def_q, arg_q))) = (find_exp_def(p), find_exp_def(q))
        else {
            continue; // not the structural pattern — nothing to log.
        };
        if def_p == def_q {
            continue;
        }
        let (i1, i2) = (def_p.min(def_q), def_p.max(def_q));
        let (r1, r2) = if def_p < def_q { (p, q) } else { (q, p) };

        // -- scheduling feasibility --------------------------------------
        let mut feasible = true;
        // The operand whose exp sat at i2 is now read at i1: its chunk
        // must be unchanged in (i1, i2). (The i1 operand keeps its read
        // position.)
        let moved_arg = if def_p == i2 { arg_p } else { arg_q };
        // A dependent chain — the later exp consuming one of the pattern's
        // own destinations, e.g. `r1 = exp(A); r2 = exp(r1); d = r1 * r2`
        // — is not the two-independent-exp shape: the moved read would
        // observe i1's new Add result instead of the exp it replaced, and
        // exempting i2 from the read scan below is only sound when i2's
        // read is not of p/q. Reject before either scan.
        if matches!(moved_arg, Src::Reg(b) if b == p || b == q) {
            stats.exp_mul_infeasible += 1;
            continue;
        }
        if let Src::Reg(mb) = moved_arg {
            for u in &uops[i1 + 1..i2] {
                for_each_write_chunk(u, no_pairs, &mut |w| feasible &= w != mb);
            }
        }
        // r1 and r2 may be read only by this pattern's own ops between
        // their defs and the mul… (skipping i2 is sound: its only read is
        // `moved_arg`, which the dependent-chain guard proved is not p/q)
        for (i, u) in uops.iter().enumerate().take(k).skip(i1 + 1) {
            if i == i2 {
                continue;
            }
            for_each_read_chunk(u, no_pairs, &mut |r| feasible &= r != p && r != q);
        }
        // …and must be dead after it (their architectural values change
        // under the rewrite). A register that *is* the mul destination
        // holds the identical product either way.
        feasible = feasible
            && (p == d || reg_dead_after(uops, no_pairs, k + 1, p))
            && (q == d || reg_dead_after(uops, no_pairs, k + 1, q));
        if !feasible {
            stats.exp_mul_infeasible += 1;
            continue;
        }

        // -- numeric gate ------------------------------------------------
        let known = |s: Src| match s {
            Src::Imm(v) => Some(v),
            Src::Reg(_) => None,
        };
        if !exp_mul_rewrite_ok(known(arg_p), known(arg_q)) {
            stats.exp_mul_rejected += 1;
            continue;
        }

        // -- apply -------------------------------------------------------
        // Add operand order mirrors the mul's (p's argument first): the
        // gate evaluated exactly this expression tree.
        uops[i1] = UOp::Fast(DecodedInstr::Bin {
            kind: BinKind::Add,
            dst: r1,
            a: arg_p,
            b: arg_q,
        });
        uops[i2] = UOp::Fast(DecodedInstr::Un {
            kind: UnKind::Exp,
            dst: r2,
            a: Src::Reg(r1),
        });
        uops[k] = UOp::Fast(DecodedInstr::Un { kind: UnKind::Mov, dst: d, a: Src::Reg(r2) });
        stats.exp_mul_applied += 1;
    }
}

/// Repeated-operand exp CSE: a second `Exp dst2, a` whose operand chunk
/// is unchanged since an earlier `Exp dst1, a` (with `dst1` also
/// unchanged) becomes `Mov dst2, dst1`. Unconditionally bit-identical —
/// `exp` is a pure function, so the register already holds exactly the
/// bits the recomputation would produce; the trivial corpus check
/// (`exp(x) == exp(x)`) is an identity, so no gate is consulted.
fn cse_exps(uops: &mut [UOp], stats: &mut EngineStats) {
    // Operand identity → register currently holding exp(operand).
    #[derive(PartialEq, Eq, Hash, Clone, Copy)]
    enum Key {
        Reg(usize),
        Imm(u64),
    }
    let key = |s: Src| match s {
        Src::Reg(b) => Key::Reg(b),
        Src::Imm(v) => Key::Imm(v.to_bits()),
    };
    let no_pairs: &[(u32, u32)] = &[];
    let mut memo: HashMap<Key, usize> = HashMap::new();
    for i in 0..uops.len() {
        let hit = match uops[i] {
            UOp::Fast(DecodedInstr::Un { kind: UnKind::Exp, dst, a }) => {
                memo.get(&key(a)).map(|&prev| (dst, a, prev))
            }
            _ => None,
        };
        if let Some((dst, a, prev)) = hit {
            uops[i] = if prev == dst {
                // The register already holds this exact value.
                UOp::Nop
            } else {
                UOp::Fast(DecodedInstr::Un { kind: UnKind::Mov, dst, a: Src::Reg(prev) })
            };
            stats.exp_cse += 1;
            // The op (now a copy) still "defines" exp(a) in dst.
            memo.retain(|k, v| *v != dst && !matches!(k, Key::Reg(b) if *b == dst));
            if key(a) != Key::Reg(dst) {
                memo.insert(key(a), dst);
            }
            continue;
        }
        // Writes invalidate memo entries whose operand or result chunk
        // they touch; a fresh Exp then records its own result.
        let mut wrote: Vec<usize> = Vec::new();
        for_each_write_chunk(&uops[i], no_pairs, &mut |w| wrote.push(w));
        for w in wrote {
            memo.retain(|k, v| *v != w && !matches!(k, Key::Reg(b) if *b == w));
        }
        if let UOp::Fast(DecodedInstr::Un { kind: UnKind::Exp, dst, a }) = uops[i] {
            if key(a) != Key::Reg(dst) {
                memo.insert(key(a), dst);
            }
        }
    }
}

/// Fold independent `Exp` uops into [`UOp::ExpBatch`] runs, per
/// segment. A batch executes at its first member's slot: every member's
/// source is gathered, one [`crate::vmath::exp_slice`] call evaluates
/// the whole SoA buffer, and the results scatter to the destinations.
/// Hoisting member `j` to the anchor slot is bit-invisible iff, over
/// the intervening ops: `j`'s source chunk is unwritten (same gathered
/// bits), `j`'s destination chunk is unread (nothing observes the early
/// write) and unwritten (nothing is lost to the early write) — tracked
/// with read/written chunk sets reset at each batch anchor. Members are
/// mutually independent by the same sets (a member's source and
/// destination join them), so gather-then-scatter preserves op-at-a-time
/// semantics. Intervening ops are never reordered among themselves;
/// runs of one stay scalar `Exp` uops.
///
/// Predication: `Exp` is warp-wide in this IR — the only lane-predicated
/// micro-op is the `StShared` single-lane form, which is never batched —
/// so a batch evaluates exactly the architectural lanes each original
/// op would have, and no predicated-off lane is ever evaluated or
/// stored.
fn batch_exps(uops: &mut [UOp], segs: &[Segment], warp_start: u32, pairs: &mut Vec<(u32, u32)>) {
    use std::collections::HashSet;
    let no_pairs: &[(u32, u32)] = &[];
    for seg in segs {
        let s = (seg.uops.start - warp_start) as usize;
        let e = (seg.uops.end - warp_start) as usize;
        let mut read: HashSet<usize> = HashSet::new();
        let mut written: HashSet<usize> = HashSet::new();
        // (uop index, dst, src) of the current batch's members.
        let mut batch: Vec<(usize, u32, u32)> = Vec::new();
        let flush = |batch: &mut Vec<(usize, u32, u32)>, uops: &mut [UOp], pairs: &mut Vec<(u32, u32)>| {
            if batch.len() >= 2 {
                let start = pairs.len() as u32;
                pairs.extend(batch.iter().map(|&(_, d, sr)| (d, sr)));
                uops[batch[0].0] = UOp::ExpBatch { pairs: start, n: batch.len() as u32 };
                for &(idx, _, _) in &batch[1..] {
                    uops[idx] = UOp::Nop;
                }
            }
            batch.clear();
        };
        for i in s..e {
            match uops[i] {
                UOp::Nop => {}
                UOp::Fast(DecodedInstr::Un { kind: UnKind::Exp, dst, a: Src::Reg(src) }) => {
                    let joins = batch.is_empty()
                        || (!written.contains(&src)
                            && !read.contains(&dst)
                            && !written.contains(&dst));
                    if !joins {
                        flush(&mut batch, uops, pairs);
                    }
                    if batch.is_empty() {
                        read.clear();
                        written.clear();
                    }
                    batch.push((i, dst as u32, src as u32));
                    read.insert(src);
                    written.insert(dst);
                }
                ref u => {
                    if !batch.is_empty() {
                        for_each_read_chunk(u, no_pairs, &mut |r| {
                            read.insert(r);
                        });
                        for_each_write_chunk(u, no_pairs, &mut |w| {
                            written.insert(w);
                        });
                    }
                }
            }
        }
        flush(&mut batch, uops, pairs);
    }
}

/// Peephole fusion of adjacent `Mul t, a, b; Add/Sub d, ·, ·` pairs within
/// a segment where the second op consumes `t`. The fused uop keeps both
/// roundings, writes both destinations, and preserves the second op's
/// operand order (x86 propagates the first operand's NaN payload), so it
/// is bit-identical to the unfused pair. Pairs where the product feeds
/// *both* operands (`d = t ± t`) are left alone.
fn fuse_mul_bin(uops: &mut [UOp], segs: &[Segment], warp_start: u32) {
    for seg in segs {
        let s = (seg.uops.start - warp_start) as usize;
        let e = (seg.uops.end - warp_start) as usize;
        let mut i = s;
        while i + 1 < e {
            let fused = match (&uops[i], &uops[i + 1]) {
                (
                    &UOp::Fast(DecodedInstr::Bin { kind: BinKind::Mul, dst: t, a, b }),
                    &UOp::Fast(DecodedInstr::Bin {
                        kind: k2 @ (BinKind::Add | BinKind::Sub),
                        dst: d,
                        a: x,
                        b: y,
                    }),
                ) => {
                    let xt = matches!(x, Src::Reg(r) if r == t);
                    let yt = matches!(y, Src::Reg(r) if r == t);
                    let kc = match (k2, xt, yt) {
                        (_, true, true) => None,
                        (BinKind::Add, true, false) => Some((lanes::FusedBin::AddPC, y)),
                        (BinKind::Add, false, true) => Some((lanes::FusedBin::AddCP, x)),
                        (BinKind::Sub, true, false) => Some((lanes::FusedBin::SubPC, y)),
                        (BinKind::Sub, false, true) => Some((lanes::FusedBin::SubCP, x)),
                        _ => None,
                    };
                    kc.map(|(kind, c)| UOp::FusedMulBin {
                        kind,
                        t: t as u32,
                        d: d as u32,
                        a,
                        b,
                        c,
                    })
                }
                _ => None,
            };
            if let Some(f) = fused {
                uops[i] = f;
                uops[i + 1] = UOp::Nop;
                i += 2;
            } else {
                i += 1;
            }
        }
    }
}

/// Backward liveness over one warp's uops; any *pure register-writing* op
/// whose destinations are never read again (before being overwritten or
/// the stream ending) is dead: registers are warp-private and discarded at
/// CTA end, so removing the computation is unobservable. This covers
/// moves, arithmetic (including the libm transcendentals — no observed
/// side effects), compares, selects, shuffles, pre-splatted constant
/// loads, and shared-memory *reads* (lowering already bounds-checked
/// their addresses, so they cannot fail at run time). In the
/// warp-specialized kernels this kills the staging gathers whose only
/// remaining consumer was a single-lane `Shfl` broadcast.
///
/// The same liveness information drives the *stage-and-broadcast* fusion:
/// an `LdShared` gather immediately followed (in the same segment) by a
/// `Shfl` that is the gather chunk's only consumer collapses into one
/// [`UOp::LdSharedBcast`] — read the one shared word the shuffle selects
/// and splat it. This is the warp-specialized kernels' staple pattern
/// (a gather stages 32 words, then 32 shuffles broadcast them one at a
/// time), and each fused pair replaces 33 lane-writes plus a gather with
/// a single load. Values are bit-identical: the interpreter's shuffle
/// reads `dregs[src+lane] = shared[addrs[src+lane-chunk]]`, exactly the
/// word the fused op loads. The pair must share a segment — a barrier
/// between them could change shared-memory visibility.
///
/// Ops that can fail at run time keep executing: global loads (their
/// bounds depend on the runtime grid placement), and any candidate with
/// an out-of-range operand register, so the engine still fails exactly
/// where the interpreter would. Event counts are unaffected by
/// construction — segment bulk counts are derived from the
/// pre-optimization instruction stream.
fn eliminate_dead_uops(
    uops: &mut [UOp],
    dreg_len: usize,
    u32x: &[u32],
    segs: &[Segment],
    warp_start: u32,
) {
    use std::collections::HashSet;
    // Uop indices (warp-relative) that begin a segment: a fusion pair may
    // not straddle one of these boundaries.
    let seg_starts: HashSet<usize> =
        segs.iter().map(|s| (s.uops.start - warp_start) as usize).collect();
    // A `Shfl` at index `i + 1` eligible for fusion with an `LdShared` at
    // index `i`: (shfl index, gather chunk base, element offset in chunk,
    // shfl dst).
    let mut pending: Option<(usize, usize, usize, usize)> = None;
    let mut live: HashSet<usize> = HashSet::new();
    let reg_ok = |b: usize| b + WARP_SIZE <= dreg_len;
    let src_ok = |s: Src| match s {
        Src::Imm(_) => true,
        Src::Reg(b) => reg_ok(b),
    };
    for i in (0..uops.len()).rev() {
        // Stage-and-broadcast fusion: the previous iteration saw a `Shfl`
        // whose source chunk dies here; if this op is the adjacent
        // staging gather, collapse the pair.
        if let Some((shfl_idx, chunk, elem, shfl_dst)) = pending.take() {
            if shfl_idx == i + 1 && !seg_starts.contains(&shfl_idx) {
                if let UOp::LdShared { dst, addrs } = uops[i] {
                    if dst as usize == chunk {
                        let addr = u32x[addrs as usize * WARP_SIZE + elem];
                        uops[i] = UOp::Nop;
                        uops[shfl_idx] = UOp::LdSharedBcast { dst: shfl_dst as u32, addr };
                        // The shuffle no longer reads the chunk, so
                        // earlier writers of it can cascade-die.
                        live.remove(&chunk);
                        continue;
                    }
                }
            }
        }
        let uop = &mut uops[i];
        // An eliminated op's reads are *not* genned, so a chain of
        // computation feeding only dead results unravels in this one
        // backward pass.
        let dead = match uop {
            UOp::Fast(DecodedInstr::Bin { dst, a, b, .. })
            | UOp::Fast(DecodedInstr::CmpOp { dst, a, b, .. }) => {
                !live.contains(dst) && src_ok(*a) && src_ok(*b)
            }
            UOp::Fast(DecodedInstr::Un { dst, a, .. }) => !live.contains(dst) && src_ok(*a),
            UOp::Fast(DecodedInstr::Fma { dst, a, b, c }) => {
                !live.contains(dst) && src_ok(*a) && src_ok(*b) && src_ok(*c)
            }
            UOp::Fast(DecodedInstr::Sel { dst, pred, a, b }) => {
                !live.contains(dst) && reg_ok(*pred) && src_ok(*a) && src_ok(*b)
            }
            UOp::Fast(DecodedInstr::Shfl { dst, src, lane }) => {
                // The element read indexes a single dreg slot.
                !live.contains(dst) && *src + *lane < dreg_len
            }
            UOp::FusedMulBin { t, d, a, b, c, .. } => {
                !live.contains(&(*t as usize))
                    && !live.contains(&(*d as usize))
                    && src_ok(*a)
                    && src_ok(*b)
                    && src_ok(*c)
            }
            UOp::ConstV { dst, .. }
            | UOp::LdShared { dst, .. }
            | UOp::LdSharedBcast { dst, .. } => !live.contains(&(*dst as usize)),
            _ => false,
        };
        if dead {
            *uop = UOp::Nop;
            continue;
        }
        // Kill this op's writes, then gen its reads.
        match uop {
            UOp::Fast(dec) => match dec {
                DecodedInstr::Bin { dst, a, b, .. } | DecodedInstr::CmpOp { dst, a, b, .. } => {
                    live.remove(dst);
                    gen_src(&mut live, *a);
                    gen_src(&mut live, *b);
                }
                DecodedInstr::Un { dst, a, .. } => {
                    live.remove(dst);
                    gen_src(&mut live, *a);
                }
                DecodedInstr::Fma { dst, a, b, c } => {
                    live.remove(dst);
                    gen_src(&mut live, *a);
                    gen_src(&mut live, *b);
                    gen_src(&mut live, *c);
                }
                DecodedInstr::Sel { dst, pred, a, b } => {
                    live.remove(dst);
                    live.insert(*pred);
                    gen_src(&mut live, *a);
                    gen_src(&mut live, *b);
                }
                DecodedInstr::Shfl { dst, src, lane } => {
                    let d2 = *dst;
                    let elem = *src + *lane;
                    live.remove(&d2);
                    // Element read: mark the chunk the element lands in
                    // (a >= 32 lane deterministically reads across
                    // registers — see exec_fast). The destination kill
                    // comes first so a shuffle within one chunk
                    // (`chunk == dst`) still counts as the sole reader.
                    let chunk = elem / WARP_SIZE * WARP_SIZE;
                    let sole_reader = !live.contains(&chunk);
                    live.insert(chunk);
                    if sole_reader && elem < dreg_len {
                        pending = Some((i, chunk, elem - chunk, d2));
                    }
                }
                DecodedInstr::LdLocal { dst, .. } => {
                    live.remove(dst);
                }
                DecodedInstr::StLocal { src, .. } => gen_src(&mut live, *src),
                DecodedInstr::Invalid { .. } => {}
                DecodedInstr::BarArrive { .. }
                | DecodedInstr::BarSync { .. }
                | DecodedInstr::BarArriveStage { .. }
                | DecodedInstr::BarSyncStage { .. }
                | DecodedInstr::Slow => unreachable!("never lowered into uops"),
            },
            UOp::FusedMulBin { t, d, a, b, c, .. } => {
                live.remove(&(*t as usize));
                live.remove(&(*d as usize));
                gen_src(&mut live, *a);
                gen_src(&mut live, *b);
                gen_src(&mut live, *c);
            }
            UOp::ConstV { dst, .. }
            | UOp::LdShared { dst, .. }
            | UOp::LdSharedBcast { dst, .. }
            | UOp::LdGlobal { dst, .. } => {
                live.remove(&(*dst as usize));
            }
            UOp::StShared { src, .. } | UOp::StGlobal { src, .. } => gen_src(&mut live, *src),
            UOp::CpAsync { .. } | UOp::Trap(_) | UOp::Nop => {}
            UOp::ExpBatch { .. } => unreachable!("batching runs after this pass"),
        }
    }
}

fn gen_src(live: &mut std::collections::HashSet<usize>, s: Src) {
    if let Src::Reg(b) = s {
        live.insert(b);
    }
}

/// Rewrite every remaining immediate operand into a read of a
/// pre-splatted chunk in the *constant tail* — a read-only vector of
/// 32-lane chunks shared by all warps, addressed by register indices at
/// or past the architectural file (see [`EngineProgram::dreg_tail`]).
/// Executing a `Src::Imm` materializes a 32-lane splat on each use (~40%
/// overhead on an add, measured); a tail read is an ordinary borrow.
/// Values are bit-preserved (deduplication keys on the raw bits),
/// destinations are always architectural, and the tail is immutable after
/// lowering, so results are unchanged. Must run *after* dead-code
/// elimination: the virtual bases sit past `dreg_len` and would trip its
/// operand range checks.
fn splat_immediates(
    uops: &mut [UOp],
    dreg_len: usize,
    tail: &mut Vec<f64>,
    dedup: &mut HashMap<u64, u32>,
) {
    let mut fix = |s: &mut Src| {
        if let Src::Imm(v) = *s {
            let idx = *dedup.entry(v.to_bits()).or_insert_with(|| {
                let i = (tail.len() / WARP_SIZE) as u32;
                tail.extend(std::iter::repeat_n(v, WARP_SIZE));
                i
            });
            *s = Src::Reg(dreg_len + idx as usize * WARP_SIZE);
        }
    };
    for uop in uops.iter_mut() {
        match uop {
            UOp::Fast(dec) => match dec {
                DecodedInstr::Bin { a, b, .. } | DecodedInstr::CmpOp { a, b, .. } => {
                    fix(a);
                    fix(b);
                }
                DecodedInstr::Un { a, .. } => fix(a),
                DecodedInstr::Fma { a, b, c, .. } => {
                    fix(a);
                    fix(b);
                    fix(c);
                }
                DecodedInstr::Sel { a, b, .. } => {
                    fix(a);
                    fix(b);
                }
                DecodedInstr::StLocal { src, .. } => fix(src),
                DecodedInstr::Shfl { .. }
                | DecodedInstr::LdLocal { .. }
                | DecodedInstr::Invalid { .. } => {}
                DecodedInstr::BarArrive { .. }
                | DecodedInstr::BarSync { .. }
                | DecodedInstr::BarArriveStage { .. }
                | DecodedInstr::BarSyncStage { .. }
                | DecodedInstr::Slow => unreachable!("never lowered into uops"),
            },
            UOp::FusedMulBin { a, b, c, .. } => {
                fix(a);
                fix(b);
                fix(c);
            }
            UOp::StShared { src, .. } | UOp::StGlobal { src, .. } => fix(src),
            UOp::ConstV { .. }
            | UOp::LdShared { .. }
            | UOp::LdSharedBcast { .. }
            | UOp::LdGlobal { .. }
            | UOp::CpAsync { .. }
            | UOp::Trap(_)
            | UOp::Nop => {}
            UOp::ExpBatch { .. } => unreachable!("batching runs after this pass"),
        }
    }
}

/// Per-warp runtime state: SoA register/local lanes plus the segment
/// cursor and scheduler flags.
struct EngWarp {
    dregs: Vec<f64>,
    local: Vec<f64>,
    /// Gather/scatter staging for [`UOp::ExpBatch`]: first half inputs,
    /// second half outputs. Grown lazily to the largest batch seen, so
    /// warps that never batch pay nothing.
    scratch: Vec<f64>,
    seg: usize,
    done: bool,
    blocked: Option<(u8, u64)>,
}

/// Execute one CTA on a lowered program. Mirrors
/// [`crate::interp::run_cta_profiled`] (without a profiler) bit-for-bit:
/// same outputs, same [`EventCounts`], same errors.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_cta_engine(
    kernel: &Kernel,
    eng: &EngineProgram,
    prog: &FlatProgram,
    inputs: &[&[f64]],
    total_points: usize,
    cta: usize,
    collect: bool,
    arch: &crate::arch::GpuArch,
) -> SimResult<CtaResult> {
    let nw = kernel.warps_per_cta;
    let base_point = cta * kernel.points_per_cta;
    let mut counts = EventCounts::default();

    let mut shared = vec![0.0f64; kernel.shared_words];
    let mut barriers: Vec<BarrierState> =
        vec![BarrierState::default(); kernel.barriers_used.max(16)];
    let mut ccache = ConstCache::new(arch.const_cache_bytes);

    let mut out_buffers: Vec<Vec<f64>> = kernel
        .global_arrays
        .iter()
        .map(|a| if a.output { vec![0.0; a.rows * kernel.points_per_cta] } else { Vec::new() })
        .collect();

    let mut warps: Vec<EngWarp> = (0..nw)
        .map(|_| {
            // Architectural registers only; the constant tail of
            // pre-splatted immediates stays in `eng.dreg_tail`, shared
            // read-only by every warp (see `splat_immediates`).
            EngWarp {
                dregs: vec![0.0; kernel.dregs_per_thread * WARP_SIZE],
                local: vec![0.0; kernel.local_words_per_thread * WARP_SIZE],
                scratch: Vec::new(),
                seg: 0,
                done: false,
                blocked: None,
            }
        })
        .collect();

    // Cooperative scheduler: an exact replay of the interpreter's
    // round-robin (segments stand in for uninterruptible instruction
    // runs — a warp can only block at a segment terminator).
    loop {
        let mut progressed = false;
        let mut all_done = true;
        for w in 0..nw {
            if warps[w].done {
                continue;
            }
            all_done = false;
            if let Some((b, gen)) = warps[w].blocked {
                if barriers[b as usize].generation > gen {
                    warps[w].blocked = None;
                } else {
                    continue;
                }
            }
            let ran = run_warp(
                kernel, eng, w, &mut warps[w], inputs, total_points, base_point, &mut shared,
                &mut barriers, &mut out_buffers, &mut ccache, collect, &mut counts,
            )?;
            progressed |= ran;
        }
        if all_done {
            break;
        }
        if !progressed {
            let blocked: Vec<(usize, u8)> = warps
                .iter()
                .enumerate()
                .filter(|(_, ws)| !ws.done)
                .map(|(i, ws)| (i, ws.blocked.map(|(b, _)| b).unwrap_or(255)))
                .collect();
            if blocked.is_empty() {
                break;
            }
            return Err(SimError::Deadlock { cta, blocked });
        }
    }

    if collect {
        counts.const_hits = ccache.hits();
        counts.const_misses = ccache.misses();
        let fp = interleaved_fetch_profile(
            &prog.addr_streams,
            arch.instr_bytes,
            arch.icache_bytes,
            arch.icache_line_bytes,
            arch.icache_assoc,
            128,
        );
        counts.icache_fetches = fp.fetches;
        counts.icache_misses = fp.misses;
    }

    Ok(CtaResult { out_buffers, counts })
}

/// Run one warp's segments until it blocks or finishes. Returns whether
/// any segment executed (the interpreter's `ran`).
#[allow(clippy::too_many_arguments)]
fn run_warp(
    kernel: &Kernel,
    eng: &EngineProgram,
    w: usize,
    warp: &mut EngWarp,
    inputs: &[&[f64]],
    total_points: usize,
    base_point: usize,
    shared: &mut [f64],
    barriers: &mut [BarrierState],
    out_buffers: &mut [Vec<f64>],
    ccache: &mut ConstCache,
    collect: bool,
    counts: &mut EventCounts,
) -> SimResult<bool> {
    let segs = &eng.warps[w];
    let mut ran = false;
    loop {
        let Some(seg) = segs.get(warp.seg) else {
            warp.done = true;
            return Ok(ran);
        };
        if collect {
            seg.bulk.apply(counts);
            // Replay the segment's pre-resolved constant-line script in
            // one pass: segments are uninterruptible and constant loads
            // are the only cache accesses, so replaying at segment entry
            // preserves the interleaved LRU order across warps exactly.
            ccache.access_script(&eng.lines[seg.lines.start as usize..seg.lines.end as usize]);
        }
        for uop in &eng.uops[seg.uops.start as usize..seg.uops.end as usize] {
            exec_uop(
                eng, uop, kernel, inputs, total_points, base_point, warp, shared, out_buffers,
                collect, counts,
            )?;
        }
        warp.seg += 1;
        ran = true;
        match seg.term {
            SegTerm::End => {}
            SegTerm::Arrive { bar, expected } => {
                barrier_arrive(barriers, bar, expected)?;
            }
            SegTerm::Sync { bar, expected } => {
                // Generation snapshot *before* arriving: if our own
                // arrival completes the barrier we are not blocked.
                let gen = barriers[bar as usize].generation;
                let released = barrier_arrive(barriers, bar, expected)?;
                if !released {
                    warp.blocked = Some((bar, gen));
                    if collect {
                        counts.barrier_stall_switches += 1;
                    }
                    return Ok(ran);
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
#[inline]
fn exec_uop(
    eng: &EngineProgram,
    uop: &UOp,
    kernel: &Kernel,
    inputs: &[&[f64]],
    total_points: usize,
    base_point: usize,
    warp: &mut EngWarp,
    shared: &mut [f64],
    out_buffers: &mut [Vec<f64>],
    collect: bool,
    counts: &mut EventCounts,
) -> SimResult<()> {
    match *uop {
        // Event counts for fast ops were folded into the segment bulk;
        // run the op itself with collection off.
        UOp::Fast(dec) => {
            exec_fast(dec, &mut warp.dregs, &eng.dreg_tail, &mut warp.local, false, counts)?
        }
        UOp::ExpBatch { pairs, n } => {
            // Gather every member's source chunk into one contiguous SoA
            // buffer, evaluate it with a single `exp_slice` call, scatter
            // to the destinations. `batch_exps` proved the members
            // independent, so gather-all-then-scatter-all matches
            // op-at-a-time execution bit-for-bit; event counts were folded
            // into the segment bulk like any other fast op.
            let ps = &eng.exp_pairs[pairs as usize..(pairs + n) as usize];
            let nn = ps.len() * WARP_SIZE;
            if warp.scratch.len() < 2 * nn {
                warp.scratch.resize(2 * nn, 0.0);
            }
            let dregs = &mut warp.dregs;
            let (inb, outb) = warp.scratch.split_at_mut(nn);
            for (j, &(_, src)) in ps.iter().enumerate() {
                let s = src as usize;
                let chunk = if s < dregs.len() {
                    &dregs[s..s + WARP_SIZE]
                } else {
                    &eng.dreg_tail[s - dregs.len()..][..WARP_SIZE]
                };
                inb[j * WARP_SIZE..(j + 1) * WARP_SIZE].copy_from_slice(chunk);
            }
            crate::vmath::exp_slice(&inb[..nn], &mut outb[..nn]);
            for (j, &(dst, _)) in ps.iter().enumerate() {
                let d = dst as usize;
                dregs[d..d + WARP_SIZE].copy_from_slice(&outb[j * WARP_SIZE..(j + 1) * WARP_SIZE]);
            }
        }
        UOp::FusedMulBin { kind, t, d, a, b, c } => {
            let dregs = &mut warp.dregs[..];
            let len = dregs.len();
            let ptr = dregs.as_mut_ptr();
            let (t, d) = (t as usize, d as usize);
            // SAFETY: same discipline as `exec_fast` — operands whose
            // chunk intersects either destination are snapshotted, so the
            // mutable destination views are the only live references to
            // their chunks; `t != d` implies disjoint chunks (both are
            // decode-validated register bases).
            unsafe {
                let av = operand(ptr, len, &eng.dreg_tail, a, [t, d]);
                let bv = operand(ptr, len, &eng.dreg_tail, b, [t, d]);
                let cv = operand(ptr, len, &eng.dreg_tail, c, [t, d]);
                if t == d {
                    lanes::mul_then_bin_same(
                        kind, av.get(), bv.get(), cv.get(), out_chunk(ptr, len, d),
                    );
                } else {
                    lanes::mul_then_bin_both(
                        kind, av.get(), bv.get(), cv.get(),
                        out_chunk(ptr, len, t), out_chunk(ptr, len, d),
                    );
                }
            }
        }
        UOp::ConstV { dst, vals } => {
            let v = &eng.f64x[vals as usize * WARP_SIZE..][..WARP_SIZE];
            warp.dregs[dst as usize..dst as usize + WARP_SIZE].copy_from_slice(v);
        }
        UOp::LdShared { dst, addrs } => {
            let a = &eng.u32x[addrs as usize * WARP_SIZE..][..WARP_SIZE];
            let out = &mut warp.dregs[dst as usize..dst as usize + WARP_SIZE];
            for l in 0..WARP_SIZE {
                // SAFETY: lowering bounds-checked every address against
                // `kernel.shared_words == shared.len()`.
                out[l] = unsafe { *shared.get_unchecked(a[l] as usize) };
            }
        }
        UOp::LdSharedBcast { dst, addr } => {
            // SAFETY: the address came from a lowering-bounds-checked
            // `LdShared` gather before fusion.
            let v = unsafe { *shared.get_unchecked(addr as usize) };
            warp.dregs[dst as usize..dst as usize + WARP_SIZE].fill(v);
        }
        UOp::StShared { src, addrs, lane } => {
            let a = &eng.u32x[addrs as usize * WARP_SIZE..][..WARP_SIZE];
            let sv = src_vals(&warp.dregs, &eng.dreg_tail, src);
            if lane == u32::MAX {
                for l in 0..WARP_SIZE {
                    // SAFETY: all lanes bounds-checked at lowering.
                    unsafe { *shared.get_unchecked_mut(a[l] as usize) = sv[l] };
                }
            } else {
                // Lowering rejected `lane >= WARP_SIZE` with a typed
                // error and bounds-checked the predicated lane's address.
                debug_assert!((lane as usize) < WARP_SIZE);
                shared[a[lane as usize] as usize] = sv[lane as usize];
            }
        }
        UOp::LdGlobal { dst, array, rows, pts } => {
            let ai = array as usize;
            let idxs = gidx(eng, rows, pts, total_points, base_point);
            let decl = &kernel.global_arrays[ai];
            let out = &mut warp.dregs[dst as usize..dst as usize + WARP_SIZE];
            if decl.output {
                for l in 0..WARP_SIZE {
                    let local = local_out_index(idxs[l], total_points, base_point, kernel)?;
                    out[l] = out_buffers[ai][local];
                }
            } else {
                let input = inputs[ai];
                for l in 0..WARP_SIZE {
                    let idx = idxs[l];
                    out[l] = *input.get(idx).ok_or(SimError::OutOfBounds {
                        space: "global",
                        addr: idx,
                        limit: input.len(),
                    })?;
                }
            }
            if collect {
                let (tx, bytes) = coalesce(&idxs);
                counts.global_transactions += tx;
                counts.global_bytes += bytes;
            }
        }
        UOp::StGlobal { src, array, rows, pts } => {
            let ai = array as usize;
            let idxs = gidx(eng, rows, pts, total_points, base_point);
            let sv = src_vals(&warp.dregs, &eng.dreg_tail, src);
            for l in 0..WARP_SIZE {
                let local = local_out_index(idxs[l], total_points, base_point, kernel)?;
                let buf = &mut out_buffers[ai];
                if local >= buf.len() {
                    return Err(SimError::OutOfBounds {
                        space: "global-out",
                        addr: local,
                        limit: buf.len(),
                    });
                }
                buf[local] = sv[l];
            }
            if collect {
                let (tx, bytes) = coalesce(&idxs);
                counts.global_transactions += tx;
                counts.global_bytes += bytes;
            }
        }
        UOp::CpAsync { addrs, array, rows, pts } => {
            // Mirror the interpreter's per-lane order exactly: the global
            // read (whose bounds depend on the runtime input length /
            // grid placement) is checked before the shared store, lane by
            // lane, so the first failing lane reports the same error.
            let ai = array as usize;
            let idxs = gidx(eng, rows, pts, total_points, base_point);
            let a = &eng.u32x[addrs as usize * WARP_SIZE..][..WARP_SIZE];
            let decl = &kernel.global_arrays[ai];
            for l in 0..WARP_SIZE {
                let idx = idxs[l];
                let v = if decl.output {
                    let local = local_out_index(idx, total_points, base_point, kernel)?;
                    out_buffers[ai][local]
                } else {
                    *inputs[ai].get(idx).ok_or(SimError::OutOfBounds {
                        space: "global",
                        addr: idx,
                        limit: inputs[ai].len(),
                    })?
                };
                let sa = a[l] as usize;
                if sa >= shared.len() {
                    return Err(SimError::OutOfBounds {
                        space: "shared",
                        addr: sa,
                        limit: shared.len(),
                    });
                }
                shared[sa] = v;
            }
            if collect {
                let (tx, bytes) = coalesce(&idxs);
                counts.global_transactions += tx;
                counts.global_bytes += bytes;
            }
        }
        UOp::Trap(t) => return Err(eng.traps[t as usize].clone()),
        UOp::Nop => unreachable!("tombstones are compacted out at lowering"),
    }
    Ok(())
}

/// Complete pre-resolved global addressing with the runtime grid
/// placement: `idx[l] = rows[l] * total_points + point(l)`.
#[inline]
fn gidx(
    eng: &EngineProgram,
    rows: u32,
    pts: PtsRef,
    total_points: usize,
    base_point: usize,
) -> [usize; WARP_SIZE] {
    let r = &eng.u32x[rows as usize * WARP_SIZE..][..WARP_SIZE];
    let mut idxs = [0usize; WARP_SIZE];
    match pts {
        PtsRef::Rel(d) => {
            let b = base_point + d as usize;
            for l in 0..WARP_SIZE {
                idxs[l] = r[l] as usize * total_points + b + l;
            }
        }
        PtsRef::Abs(p) => {
            let pv = &eng.u32x[p as usize * WARP_SIZE..][..WARP_SIZE];
            for l in 0..WARP_SIZE {
                idxs[l] = r[l] as usize * total_points + pv[l] as usize;
            }
        }
    }
    idxs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::GpuArch;
    use crate::interp::{flatten, run_cta_profiled};

    fn base_kernel(warps: usize) -> Kernel {
        Kernel {
            name: "eng-t".into(),
            body: vec![],
            warps_per_cta: warps,
            points_per_cta: 32,
            dregs_per_thread: 8,
            iregs_per_thread: 4,
            shared_words: 128,
            local_words_per_thread: 2,
            const_banks: vec![vec![1.5, 2.5, 3.5, 4.5]],
            iconst_banks: vec![vec![7, 8, 9]],
            barriers_used: 4,
            global_arrays: vec![
                ArrayDecl { name: "in".into(), rows: 2, output: false },
                ArrayDecl { name: "out".into(), rows: 1, output: true },
            ],
            spilled_bytes_per_thread: 0,
            exp_const_from_registers: false,
        }
    }

    /// Run a kernel through both paths and assert bit-identical results
    /// (outputs + EventCounts) or identical errors.
    fn differential(kernel: &Kernel, inputs: &[&[f64]], total_points: usize, cta: usize) {
        let prog = flatten(kernel);
        let eng = lower(kernel, &prog);
        for arch in [GpuArch::fermi_c2070(), GpuArch::kepler_k20c(), GpuArch::hopper()] {
            for collect in [false, true] {
                let i =
                    run_cta_profiled(kernel, &prog, inputs, total_points, cta, collect, &arch, None);
                let e =
                    run_cta_engine(kernel, &eng, &prog, inputs, total_points, cta, collect, &arch);
                match (i, e) {
                    (Ok(a), Ok(b)) => {
                        assert_eq!(a.counts, b.counts, "counts (collect={collect})");
                        assert_eq!(
                            a.out_buffers.len(),
                            b.out_buffers.len(),
                            "buffer count (collect={collect})"
                        );
                        for (x, y) in a.out_buffers.iter().zip(&b.out_buffers) {
                            assert_eq!(x.len(), y.len());
                            for (va, vb) in x.iter().zip(y) {
                                assert_eq!(va.to_bits(), vb.to_bits(), "output bits");
                            }
                        }
                    }
                    (Err(a), Err(b)) => assert_eq!(a, b, "errors (collect={collect})"),
                    (i, e) => panic!("paths disagree: interp={i:?} engine={e:?}"),
                }
            }
        }
    }

    #[test]
    fn differential_producer_consumer() {
        // Figure-2 style protocol over named barriers with shared memory,
        // constants and index registers in play.
        let mut k = base_kernel(2);
        k.body = vec![
            Node::WarpIf {
                mask: 0b10,
                body: vec![Node::Op(Instr::BarArrive { bar: 1, warps: 2 })],
            },
            Node::WarpIf {
                mask: 0b01,
                body: vec![
                    Node::Op(Instr::BarSync { bar: 1, warps: 2 }),
                    Node::Op(Instr::LdGlobal {
                        dst: 0,
                        addr: GAddr { array: GlobalId(0), row: IdxOp::Imm(0), point: PointRef::Lane },
                        ldg: false,
                    }),
                    Node::Op(Instr::LdConst { dst: 1, bank: 0, idx: IdxOp::Imm(2) }),
                    Node::Op(Instr::DMul { dst: 0, a: Op::Reg(0), b: Op::Reg(1) }),
                    Node::Op(Instr::StShared { src: Op::Reg(0), addr: SAddr::lane(0), lane_pred: None }),
                    Node::Op(Instr::BarArrive { bar: 0, warps: 2 }),
                ],
            },
            Node::WarpIf {
                mask: 0b10,
                body: vec![
                    Node::Op(Instr::BarSync { bar: 0, warps: 2 }),
                    Node::Op(Instr::LdShared { dst: 1, addr: SAddr::lane(0) }),
                    Node::Op(Instr::StGlobal {
                        src: Op::Reg(1),
                        addr: GAddr { array: GlobalId(1), row: IdxOp::Imm(0), point: PointRef::Lane },
                    }),
                ],
            },
        ];
        let input: Vec<f64> = (0..64).map(|i| i as f64 * 0.25).collect();
        differential(&k, &[&input, &[]], 32, 0);
    }

    #[test]
    fn differential_index_isa_and_point_refs() {
        // Exercise statically-evaluated index registers: lane/warp ids,
        // iconst loads, arithmetic, and PointRef::Reg addressing.
        let mut k = base_kernel(1);
        k.iconst_banks = vec![vec![0, 1, 2, 3]];
        k.body = vec![
            Node::Op(Instr::Idx(IdxInstr::LaneId { dst: 0 })),
            Node::Op(Instr::Idx(IdxInstr::LdConst { dst: 1, bank: 0, idx: IdxOp::Imm(1) })),
            Node::Op(Instr::Idx(IdxInstr::Mul { dst: 2, a: IdxOp::Reg(0), b: IdxOp::Imm(1) })),
            Node::Op(Instr::Idx(IdxInstr::Add { dst: 2, a: IdxOp::Reg(2), b: IdxOp::Imm(0) })),
            Node::Op(Instr::LdGlobal {
                dst: 0,
                addr: GAddr { array: GlobalId(0), row: IdxOp::Reg(1), point: PointRef::Reg(2) },
                ldg: false,
            }),
            Node::Op(Instr::DAdd { dst: 1, a: Op::Reg(0), b: Op::Imm(1.0) }),
            Node::Op(Instr::StGlobal {
                src: Op::Reg(1),
                addr: GAddr { array: GlobalId(1), row: IdxOp::Imm(0), point: PointRef::Thread },
            }),
        ];
        let input: Vec<f64> = (0..64).map(|i| (i * i) as f64).collect();
        differential(&k, &[&input, &[]], 32, 0);
    }

    #[test]
    fn differential_point_loop_multi_cta() {
        // Streaming point loop over two point sets, executed as CTA 1 of
        // a larger grid (base_point != 0 exercises Rel addressing).
        let mut k = base_kernel(1);
        k.points_per_cta = 64;
        k.body = vec![Node::PointLoop {
            iters: 2,
            body: vec![
                Node::Op(Instr::LdGlobal {
                    dst: 0,
                    addr: GAddr { array: GlobalId(0), row: IdxOp::Imm(1), point: PointRef::Lane },
                    ldg: false,
                }),
                Node::Op(Instr::DFma {
                    dst: 1,
                    a: Op::Reg(0),
                    b: Op::Imm(3.0),
                    c: Op::Imm(-0.5),
                    const_c: false,
                }),
                Node::Op(Instr::StGlobal {
                    src: Op::Reg(1),
                    addr: GAddr { array: GlobalId(1), row: IdxOp::Imm(0), point: PointRef::Lane },
                }),
            ],
        }];
        let total = 192;
        let input: Vec<f64> = (0..2 * total).map(|i| i as f64 * 0.125).collect();
        differential(&k, &[&input, &[]], total, 1);
    }

    #[test]
    fn differential_errors_and_deadlock() {
        // Deadlock: two warps syncing on different barriers.
        let mut k = base_kernel(2);
        k.body = vec![
            Node::WarpIf { mask: 0b01, body: vec![Node::Op(Instr::BarSync { bar: 0, warps: 2 })] },
            Node::WarpIf { mask: 0b10, body: vec![Node::Op(Instr::BarSync { bar: 1, warps: 2 })] },
        ];
        let input = vec![0.0; 64];
        differential(&k, &[&input, &[]], 32, 0);

        // Shared overrun, discovered at lowering, delivered as the
        // interpreter's execution-time error.
        let mut k = base_kernel(1);
        k.body = vec![Node::Op(Instr::LdShared {
            dst: 0,
            addr: SAddr { base: None, imm: 1000, lane_stride: 1 },
        })];
        differential(&k, &[&input, &[]], 32, 0);

        // Store to a non-output array.
        let mut k = base_kernel(1);
        k.body = vec![Node::Op(Instr::StGlobal {
            src: Op::Imm(1.0),
            addr: GAddr { array: GlobalId(0), row: IdxOp::Imm(0), point: PointRef::Lane },
        })];
        differential(&k, &[&input, &[]], 32, 0);

        // Const index out of range.
        let mut k = base_kernel(1);
        k.body = vec![Node::Op(Instr::LdConst { dst: 0, bank: 0, idx: IdxOp::Imm(99) })];
        differential(&k, &[&input, &[]], 32, 0);

        // Static dreg overrun (decode-time Invalid -> trap).
        let mut k = base_kernel(1);
        k.body = vec![Node::Op(Instr::DMov { dst: 200, src: Op::Imm(0.0) })];
        differential(&k, &[&input, &[]], 32, 0);
    }

    #[test]
    fn trap_after_barrier_is_not_reached_on_deadlock() {
        // Warp 0 deadlocks on barrier 0 before its OOB const load; warp 1
        // syncs on barrier 1. The deadlock must win, as in the interpreter.
        let mut k = base_kernel(2);
        k.body = vec![
            Node::WarpIf {
                mask: 0b01,
                body: vec![
                    Node::Op(Instr::BarSync { bar: 0, warps: 2 }),
                    Node::Op(Instr::LdConst { dst: 0, bank: 0, idx: IdxOp::Imm(99) }),
                ],
            },
            Node::WarpIf { mask: 0b10, body: vec![Node::Op(Instr::BarSync { bar: 1, warps: 2 })] },
        ];
        let input = vec![0.0; 64];
        differential(&k, &[&input, &[]], 32, 0);
    }

    #[test]
    fn lowering_drops_index_ops_but_keeps_their_cost() {
        let mut k = base_kernel(1);
        k.body = vec![
            Node::Op(Instr::Idx(IdxInstr::LaneId { dst: 0 })),
            Node::Op(Instr::Idx(IdxInstr::Add { dst: 0, a: IdxOp::Reg(0), b: IdxOp::Imm(1) })),
            Node::Op(Instr::DMov { dst: 0, src: Op::Imm(2.0) }),
        ];
        let prog = flatten(&k);
        let eng = lower(&k, &prog);
        // Index ops evaluate at lowering time, and the never-read DMov is
        // eliminated as a dead copy: no uops survive at all.
        assert_eq!(eng.uops.len(), 0);
        // But every issue slot is still charged in bulk.
        assert_eq!(eng.warps[0].len(), 1);
        assert_eq!(eng.warps[0][0].bulk.issue_slots, 3);
    }

    #[test]
    fn mul_add_pairs_fuse_and_stay_bit_identical() {
        // r2 = r0 * r1; r3 = r2 + r0  — a fusable pair; plus a pair whose
        // product register is also the final destination (t == d), and a
        // reversed-operand subtraction (c - p). All must fuse into
        // double-rounded uops that match the interpreter bit-for-bit.
        let mut k = base_kernel(1);
        k.body = vec![
            Node::Op(Instr::LdGlobal {
                dst: 0,
                addr: GAddr { array: GlobalId(0), row: IdxOp::Imm(0), point: PointRef::Lane },
                ldg: false,
            }),
            Node::Op(Instr::LdGlobal {
                dst: 1,
                addr: GAddr { array: GlobalId(0), row: IdxOp::Imm(1), point: PointRef::Lane },
                ldg: false,
            }),
            // t != d, p + c
            Node::Op(Instr::DMul { dst: 2, a: Op::Reg(0), b: Op::Reg(1) }),
            Node::Op(Instr::DAdd { dst: 3, a: Op::Reg(2), b: Op::Reg(0) }),
            // t == d, c - p (reversed operands)
            Node::Op(Instr::DMul { dst: 4, a: Op::Reg(1), b: Op::Imm(1.0000001) }),
            Node::Op(Instr::DSub { dst: 4, a: Op::Reg(3), b: Op::Reg(4) }),
            Node::Op(Instr::DAdd { dst: 3, a: Op::Reg(3), b: Op::Reg(4) }),
            Node::Op(Instr::StGlobal {
                src: Op::Reg(3),
                addr: GAddr { array: GlobalId(1), row: IdxOp::Imm(0), point: PointRef::Lane },
            }),
        ];
        let prog = flatten(&k);
        let eng = lower(&k, &prog);
        let n_fused = eng
            .uops
            .iter()
            .filter(|u| matches!(u, UOp::FusedMulBin { .. }))
            .count();
        assert_eq!(n_fused, 2, "both mul->add/sub pairs fuse");
        let input: Vec<f64> = (0..64).map(|i| (i as f64) * 0.37 + 0.001).collect();
        differential(&k, &[&input, &[]], 32, 0);
    }

    #[test]
    fn copy_propagation_and_dead_mov_elimination_are_invisible() {
        // r1 = r0; r2 = r1 + 1  — the Mov is propagated into the Add and
        // then eliminated; an Imm Mov chain propagates too. Outputs and
        // counts must still match the interpreter exactly (bulk counts
        // derive from the pre-fusion stream).
        let mut k = base_kernel(1);
        k.body = vec![
            Node::Op(Instr::LdGlobal {
                dst: 0,
                addr: GAddr { array: GlobalId(0), row: IdxOp::Imm(0), point: PointRef::Lane },
                ldg: false,
            }),
            Node::Op(Instr::DMov { dst: 1, src: Op::Reg(0) }),
            Node::Op(Instr::DAdd { dst: 2, a: Op::Reg(1), b: Op::Imm(1.0) }),
            Node::Op(Instr::DMov { dst: 3, src: Op::Imm(2.5) }),
            Node::Op(Instr::DMul { dst: 2, a: Op::Reg(2), b: Op::Reg(3) }),
            Node::Op(Instr::StGlobal {
                src: Op::Reg(2),
                addr: GAddr { array: GlobalId(1), row: IdxOp::Imm(0), point: PointRef::Lane },
            }),
        ];
        let prog = flatten(&k);
        let eng = lower(&k, &prog);
        // Both Movs become dead after propagation.
        assert!(
            !eng.uops.iter().any(|u| matches!(
                u,
                UOp::Fast(DecodedInstr::Un { kind: UnKind::Mov, .. })
            )),
            "movs should be propagated away: {:?}",
            eng.uops
        );
        let input: Vec<f64> = (0..64).map(|i| (i as f64) - 11.5).collect();
        differential(&k, &[&input, &[]], 32, 0);
    }

    #[test]
    fn const_staged_shuffles_fold_to_immediates() {
        // The warp-specialization staple: a lane-indexed constant load
        // stages 32 constants in one register chunk, then shuffles
        // broadcast single elements at each use. The staged chunk is known
        // at lowering, so every shuffle folds to an immediate and the
        // staging ConstV dies — while values stay bit-identical.
        let mut k = base_kernel(1);
        k.const_banks = vec![(0..32).map(|i| 0.75 + i as f64 * 1.25).collect()];
        k.body = vec![
            Node::Op(Instr::Idx(IdxInstr::LaneId { dst: 0 })),
            Node::Op(Instr::LdConst { dst: 4, bank: 0, idx: IdxOp::Reg(0) }),
            Node::Op(Instr::LdGlobal {
                dst: 0,
                addr: GAddr { array: GlobalId(0), row: IdxOp::Imm(0), point: PointRef::Lane },
                ldg: false,
            }),
            Node::Op(Instr::Shfl { dst: 1, src: 4, lane: 3 }),
            Node::Op(Instr::DMul { dst: 2, a: Op::Reg(0), b: Op::Reg(1) }),
            Node::Op(Instr::Shfl { dst: 1, src: 4, lane: 29 }),
            Node::Op(Instr::DAdd { dst: 2, a: Op::Reg(2), b: Op::Reg(1) }),
            Node::Op(Instr::StGlobal {
                src: Op::Reg(2),
                addr: GAddr { array: GlobalId(1), row: IdxOp::Imm(0), point: PointRef::Lane },
            }),
        ];
        let prog = flatten(&k);
        let eng = lower(&k, &prog);
        assert!(
            !eng.uops.iter().any(|u| matches!(u, UOp::Fast(DecodedInstr::Shfl { .. }))),
            "shuffles off a ConstV chunk must fold: {:?}",
            eng.uops
        );
        assert!(
            !eng.uops.iter().any(|u| matches!(u, UOp::ConstV { .. })),
            "the staging ConstV must die once all its readers fold: {:?}",
            eng.uops
        );
        let input: Vec<f64> = (0..64).map(|i| (i as f64) * 0.85 + 0.01).collect();
        differential(&k, &[&input, &[]], 32, 0);
    }

    #[test]
    fn uniform_shared_loads_lower_to_broadcast() {
        // Listing-2 mirror reads: one predicated lane stores a word, every
        // lane loads it back through a stride-0 address. The load lowers
        // straight to a single-word broadcast uop.
        let mut k = base_kernel(1);
        let mirror = SAddr { base: None, imm: 7, lane_stride: 0 };
        k.body = vec![
            Node::Op(Instr::LdGlobal {
                dst: 0,
                addr: GAddr { array: GlobalId(0), row: IdxOp::Imm(0), point: PointRef::Lane },
                ldg: false,
            }),
            Node::Op(Instr::StShared { src: Op::Reg(0), addr: mirror, lane_pred: Some(5) }),
            Node::Op(Instr::LdShared { dst: 1, addr: mirror }),
            Node::Op(Instr::DAdd { dst: 2, a: Op::Reg(1), b: Op::Reg(0) }),
            Node::Op(Instr::StGlobal {
                src: Op::Reg(2),
                addr: GAddr { array: GlobalId(1), row: IdxOp::Imm(0), point: PointRef::Lane },
            }),
        ];
        let prog = flatten(&k);
        let eng = lower(&k, &prog);
        assert!(
            eng.uops.iter().any(|u| matches!(u, UOp::LdSharedBcast { .. })),
            "stride-0 load must lower to a broadcast: {:?}",
            eng.uops
        );
        assert!(!eng.uops.iter().any(|u| matches!(u, UOp::LdShared { .. })));
        let input: Vec<f64> = (0..64).map(|i| (i as f64) * 1.75 - 3.0).collect();
        differential(&k, &[&input, &[]], 32, 0);
    }

    #[test]
    fn staged_gather_feeding_single_shuffle_fuses_to_broadcast() {
        // A lane-strided gather whose chunk's only consumer is one
        // single-lane shuffle collapses into a broadcast of the one shared
        // word the shuffle selects; the gather dies.
        let mut k = base_kernel(1);
        k.body = vec![
            Node::Op(Instr::LdGlobal {
                dst: 0,
                addr: GAddr { array: GlobalId(0), row: IdxOp::Imm(0), point: PointRef::Lane },
                ldg: false,
            }),
            Node::Op(Instr::StShared { src: Op::Reg(0), addr: SAddr::lane(0), lane_pred: None }),
            Node::Op(Instr::LdShared { dst: 4, addr: SAddr::lane(0) }),
            Node::Op(Instr::Shfl { dst: 1, src: 4, lane: 11 }),
            Node::Op(Instr::DAdd { dst: 2, a: Op::Reg(1), b: Op::Reg(0) }),
            Node::Op(Instr::StGlobal {
                src: Op::Reg(2),
                addr: GAddr { array: GlobalId(1), row: IdxOp::Imm(0), point: PointRef::Lane },
            }),
        ];
        let prog = flatten(&k);
        let eng = lower(&k, &prog);
        assert!(
            eng.uops.iter().any(|u| matches!(u, UOp::LdSharedBcast { .. })),
            "gather + sole-consumer shuffle must fuse: {:?}",
            eng.uops
        );
        assert!(
            !eng.uops.iter().any(|u| matches!(
                u,
                UOp::LdShared { .. } | UOp::Fast(DecodedInstr::Shfl { .. })
            )),
            "the staging gather and the shuffle are both gone: {:?}",
            eng.uops
        );
        let input: Vec<f64> = (0..64).map(|i| (i as f64).sin() * 9.5).collect();
        differential(&k, &[&input, &[]], 32, 0);
    }

    #[test]
    fn stshared_lane_pred_out_of_range_is_typed_error() {
        // Regression (used to silently drop the store): both paths must
        // now report the same OutOfBounds error for lane_pred >= 32.
        let mut k = base_kernel(1);
        k.body = vec![
            Node::Op(Instr::DMov { dst: 0, src: Op::Imm(3.0) }),
            Node::Op(Instr::StShared {
                src: Op::Reg(0),
                addr: SAddr::lane(0),
                lane_pred: Some(40),
            }),
        ];
        let input = vec![0.0; 64];
        differential(&k, &[&input, &[]], 32, 0);
        // And pin the exact error shape on the engine path.
        let prog = flatten(&k);
        let eng = lower(&k, &prog);
        let err = run_cta_engine(
            &k, &eng, &prog, &[&input, &[]], 32, 0, false, &GpuArch::kepler_k20c(),
        )
        .unwrap_err();
        assert_eq!(
            err,
            SimError::OutOfBounds { space: "lane-pred", addr: 40, limit: WARP_SIZE }
        );
    }

    #[test]
    fn collect_toggle_never_leaks_cache_state_between_ctas() {
        // The constant cache is rebuilt per CTA and constant values are
        // resolved at lowering, so interleaving unprofiled (collect=false)
        // and profiled (collect=true) CTAs on one shared lowered program
        // must give every profiled CTA the same counts as a fresh
        // interpreter run, and identical outputs everywhere.
        let mut k = base_kernel(1);
        k.points_per_cta = 32;
        k.body = vec![
            Node::Op(Instr::LdGlobal {
                dst: 0,
                addr: GAddr { array: GlobalId(0), row: IdxOp::Imm(0), point: PointRef::Lane },
                ldg: false,
            }),
            Node::Op(Instr::LdConst { dst: 1, bank: 0, idx: IdxOp::Imm(1) }),
            Node::Op(Instr::DFma {
                dst: 2,
                a: Op::Reg(0),
                b: Op::Reg(1),
                c: Op::Imm(0.5),
                const_c: false,
            }),
            Node::Op(Instr::StGlobal {
                src: Op::Reg(2),
                addr: GAddr { array: GlobalId(1), row: IdxOp::Imm(0), point: PointRef::Lane },
            }),
        ];
        let prog = flatten(&k);
        let eng = lower(&k, &prog);
        let arch = GpuArch::kepler_k20c();
        let total = 128; // 4 CTAs
        let input: Vec<f64> = (0..2 * total).map(|i| i as f64 * 0.5).collect();
        let inputs: &[&[f64]] = &[&input, &[]];
        // Alternate collect off/on across CTAs on the shared program.
        for (cta, collect) in [(0, false), (1, true), (2, false), (3, true)] {
            let e = run_cta_engine(&k, &eng, &prog, inputs, total, cta, collect, &arch).unwrap();
            let i = run_cta_profiled(&k, &prog, inputs, total, cta, collect, &arch, None).unwrap();
            assert_eq!(e.counts, i.counts, "cta {cta} collect {collect}");
            for (x, y) in e.out_buffers.iter().zip(&i.out_buffers) {
                for (va, vb) in x.iter().zip(y) {
                    assert_eq!(va.to_bits(), vb.to_bits());
                }
            }
        }
    }

    fn ld(dst: Reg, row: u32) -> Node {
        Node::Op(Instr::LdGlobal {
            dst,
            addr: GAddr { array: GlobalId(0), row: IdxOp::Imm(row), point: PointRef::Lane },
            ldg: false,
        })
    }

    fn st(src: Reg) -> Node {
        Node::Op(Instr::StGlobal {
            src: Op::Reg(src),
            addr: GAddr { array: GlobalId(1), row: IdxOp::Imm(0), point: PointRef::Lane },
        })
    }

    #[test]
    fn independent_exps_batch_and_stay_bit_identical() {
        // Two loads, two independent exps, a sum: the exps fold into one
        // ExpBatch of 2 and the batch's gather/exp_slice/scatter matches
        // the interpreter's op-at-a-time execution bit-for-bit.
        let mut k = base_kernel(1);
        k.body = vec![
            ld(0, 0),
            ld(1, 1),
            Node::Op(Instr::DExp { dst: 2, a: Op::Reg(0) }),
            Node::Op(Instr::DExp { dst: 3, a: Op::Reg(1) }),
            Node::Op(Instr::DAdd { dst: 4, a: Op::Reg(2), b: Op::Reg(3) }),
            st(4),
        ];
        let prog = flatten(&k);
        let eng = lower(&k, &prog);
        assert!(
            eng.uops.iter().any(|u| matches!(u, UOp::ExpBatch { n: 2, .. })),
            "independent exps must batch: {:?}",
            eng.uops
        );
        let s = eng.stats();
        assert_eq!((s.exp_ops, s.exp_batched, s.exp_batches), (2, 2, 1), "{s:?}");
        // Inputs span the special-value classes the batch must preserve.
        let mut input: Vec<f64> = (0..64).map(|i| (i as f64) * 0.31 - 9.5).collect();
        input[3] = f64::NAN;
        input[7] = f64::INFINITY;
        input[11] = f64::NEG_INFINITY;
        input[13] = -0.0;
        input[17] = 710.0;
        input[19] = -745.2;
        input[23] = f64::from_bits(1); // smallest subnormal
        differential(&k, &[&input, &[]], 32, 0);
    }

    #[test]
    fn dependent_exp_chain_never_batches() {
        // exp(exp(exp(x))): each op reads the previous destination, so no
        // two may share a batch; all stay scalar uops.
        let mut k = base_kernel(1);
        k.body = vec![
            ld(0, 0),
            Node::Op(Instr::DExp { dst: 1, a: Op::Reg(0) }),
            Node::Op(Instr::DExp { dst: 2, a: Op::Reg(1) }),
            Node::Op(Instr::DExp { dst: 3, a: Op::Reg(2) }),
            st(3),
        ];
        let prog = flatten(&k);
        let eng = lower(&k, &prog);
        assert!(
            !eng.uops.iter().any(|u| matches!(u, UOp::ExpBatch { .. })),
            "dependent exps must not batch: {:?}",
            eng.uops
        );
        let s = eng.stats();
        assert_eq!((s.exp_ops, s.exp_batched, s.exp_batches), (3, 0, 0), "{s:?}");
        let input: Vec<f64> = (0..64).map(|i| (i as f64) * 0.02 - 0.5).collect();
        differential(&k, &[&input, &[]], 32, 0);
    }

    #[test]
    fn repeated_operand_exp_is_csed() {
        // exp(x) computed twice with the operand unchanged: the second
        // becomes a register copy, and the engine still matches the
        // interpreter (which computes it twice) bit-for-bit because exp is
        // a pure function of the bits.
        let mut k = base_kernel(1);
        k.body = vec![
            ld(0, 0),
            Node::Op(Instr::DExp { dst: 1, a: Op::Reg(0) }),
            Node::Op(Instr::DExp { dst: 2, a: Op::Reg(0) }),
            Node::Op(Instr::DMul { dst: 3, a: Op::Reg(1), b: Op::Reg(2) }),
            st(3),
        ];
        let prog = flatten(&k);
        let eng = lower(&k, &prog);
        let s = eng.stats();
        assert_eq!(s.exp_cse, 1, "{s:?}");
        assert_eq!(s.exp_ops, 1, "one exp survives: {:?}", eng.uops);
        // The CSE also kept the mul rewriter quiet: exp(a)*exp(a) is not
        // an exp*exp pattern once one side is a copy.
        assert_eq!((s.exp_mul_applied, s.exp_mul_rejected), (0, 0), "{s:?}");
        let input: Vec<f64> = (0..64).map(|i| (i as f64) * 0.17 - 3.0).collect();
        differential(&k, &[&input, &[]], 32, 0);
    }

    #[test]
    fn exp_mul_rewrite_applied_only_when_provably_bit_identical() {
        // exp(x) * exp(0.0): multiplying by exp(0) == 1.0 is the identity
        // and x + 0.0 preserves bits (up to -0.0 -> +0.0, where exp
        // agrees), so the rewrite gate accepts — and the rewritten program
        // must still match the interpreter (which runs the original
        // two-exp form) bit-for-bit on special values.
        let body = |c: f64| {
            vec![
                ld(0, 0),
                Node::Op(Instr::DExp { dst: 1, a: Op::Reg(0) }),
                Node::Op(Instr::DExp { dst: 2, a: Op::Imm(c) }),
                Node::Op(Instr::DMul { dst: 3, a: Op::Reg(1), b: Op::Reg(2) }),
                st(3),
            ]
        };
        let mut input: Vec<f64> = (0..64).map(|i| (i as f64) * 0.43 - 13.0).collect();
        input[5] = f64::NAN;
        input[9] = f64::INFINITY;
        input[21] = f64::NEG_INFINITY;
        input[27] = -0.0;
        input[31] = 709.9;

        let mut k = base_kernel(1);
        k.body = body(0.0);
        let prog = flatten(&k);
        let eng = lower(&k, &prog);
        let s = eng.stats();
        assert_eq!(s.exp_mul_applied, 1, "{s:?}");
        assert_eq!(s.exp_mul_rejected, 0, "{s:?}");
        assert_eq!(s.exp_ops, 1, "the pair collapsed to one exp: {:?}", eng.uops);
        differential(&k, &[&input, &[]], 32, 0);

        // exp(x) * exp(1.5): not provably bit-identical for unknown x
        // (the product double-rounds), so the gate must reject and log.
        let mut k = base_kernel(1);
        k.name = "eng-t-rej".into();
        k.body = body(1.5);
        let prog = flatten(&k);
        let eng = lower(&k, &prog);
        let s = eng.stats();
        assert_eq!(s.exp_mul_applied, 0, "{s:?}");
        assert_eq!(s.exp_mul_rejected, 1, "{s:?}");
        assert_eq!(s.exp_ops, 2, "both exps survive rejection: {:?}", eng.uops);
        differential(&k, &[&input, &[]], 32, 0);
    }

    #[test]
    fn exp_mul_rewrite_skipped_when_operand_still_live() {
        // exp(a)'s result is also stored directly, so rewriting would
        // change its architectural value: the feasibility check must
        // refuse before the numeric gate is even consulted.
        let mut k = base_kernel(1);
        k.points_per_cta = 32;
        k.global_arrays.push(ArrayDecl { name: "out2".into(), rows: 1, output: true });
        k.body = vec![
            ld(0, 0),
            Node::Op(Instr::DExp { dst: 1, a: Op::Reg(0) }),
            Node::Op(Instr::DExp { dst: 2, a: Op::Imm(0.0) }),
            Node::Op(Instr::DMul { dst: 3, a: Op::Reg(1), b: Op::Reg(2) }),
            st(3),
            Node::Op(Instr::StGlobal {
                src: Op::Reg(1),
                addr: GAddr { array: GlobalId(2), row: IdxOp::Imm(0), point: PointRef::Lane },
            }),
        ];
        let prog = flatten(&k);
        let eng = lower(&k, &prog);
        let s = eng.stats();
        assert_eq!(s.exp_mul_applied, 0, "{s:?}");
        assert_eq!(s.exp_mul_infeasible, 1, "{s:?}");
        let input: Vec<f64> = (0..64).map(|i| (i as f64) * 0.11 - 2.0).collect();
        differential(&k, &[&input, &[]], 32, 0);
    }

    #[test]
    fn exp_mul_rewrite_skipped_on_dependent_chain() {
        // r1 = exp(0.0); r2 = exp(r1); d = r1 * r2 — the second exp
        // consumes the first's result, so moving its read to the first's
        // slot would observe the rewritten Add instead of exp(0.0), and
        // r1 is read (by i2) between the defs and the mul. The numeric
        // gate would accept (one operand is 0.0), so only the dependent-
        // chain feasibility guard stands between this and a miscompile:
        // the interpreter yields exp(0)*exp(exp(0)) = e, the broken
        // rewrite yielded 1.0.
        let mut k = base_kernel(1);
        k.body = vec![
            Node::Op(Instr::DExp { dst: 1, a: Op::Imm(0.0) }),
            Node::Op(Instr::DExp { dst: 2, a: Op::Reg(1) }),
            Node::Op(Instr::DMul { dst: 3, a: Op::Reg(1), b: Op::Reg(2) }),
            st(3),
        ];
        let prog = flatten(&k);
        let eng = lower(&k, &prog);
        let s = eng.stats();
        assert_eq!(s.exp_mul_applied, 0, "{s:?}");
        assert_eq!(s.exp_mul_infeasible, 1, "{s:?}");
        assert_eq!(s.exp_ops, 2, "both exps survive: {:?}", eng.uops);
        let input: Vec<f64> = (0..64).map(|i| (i as f64) * 0.07 - 1.0).collect();
        differential(&k, &[&input, &[]], 32, 0);

        // Same chain with the mul destination aliasing the second exp's
        // register (the exp_burst proptest's case-3 shape when ra == t):
        // d == q changes nothing about the hazard, so it must still be
        // rejected as infeasible.
        let mut k = base_kernel(1);
        k.name = "eng-t-chain2".into();
        k.body = vec![
            Node::Op(Instr::DExp { dst: 1, a: Op::Imm(0.0) }),
            Node::Op(Instr::DExp { dst: 2, a: Op::Reg(1) }),
            Node::Op(Instr::DMul { dst: 2, a: Op::Reg(1), b: Op::Reg(2) }),
            st(2),
        ];
        let prog = flatten(&k);
        let eng = lower(&k, &prog);
        let s = eng.stats();
        assert_eq!(s.exp_mul_applied, 0, "{s:?}");
        assert_eq!(s.exp_mul_infeasible, 1, "{s:?}");
        let input: Vec<f64> = (0..64).map(|i| (i as f64) * 0.07 - 1.0).collect();
        differential(&k, &[&input, &[]], 32, 0);
    }
}
