//! Grid launch: run a kernel over all CTAs of a grid (functionally, in
//! parallel across host threads) and produce outputs plus a timing report.
//!
//! Full launches fan independent CTAs out over the deterministic ordered
//! pool ([`crate::pool::run_ordered`]): results are scattered in CTA
//! order, so the worker count ([`LaunchConfig::jobs`], `SINGE_JOBS`)
//! never changes output bytes.

use crate::arch::GpuArch;
use crate::error::{SimError, SimResult};
use crate::flatcache::flatten_cached;
use crate::interp::{run_cta, run_cta_profiled, CtaResult};
use crate::isa::Kernel;
use crate::occupancy::occupancy;
use crate::profile::{CtaProfile, Profiler};
use crate::timing::{estimate, SimReport};

/// Input arrays, parallel to `kernel.global_arrays`; output slots may be
/// empty slices.
pub struct LaunchInputs<'a> {
    /// One slice per declared array (`rows * total_points` doubles for
    /// inputs, anything — usually empty — for outputs).
    pub arrays: Vec<&'a [f64]>,
}

/// Result of a launch.
#[derive(Debug)]
pub struct LaunchOutput {
    /// Output arrays (`rows * total_points`), parallel to the declarations;
    /// empty vectors for inputs.
    pub outputs: Vec<Vec<f64>>,
    /// Timing estimate (event counts from CTA 0).
    pub report: SimReport,
    /// Cycle-attribution profile of CTA 0 (requires
    /// [`LaunchConfig::profile`]; CTAs are homogeneous so one is
    /// representative).
    pub profile: Option<CtaProfile>,
}

/// How much of the grid to execute functionally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaunchMode {
    /// Execute every CTA (full functional results).
    Full,
    /// Execute only CTA 0 (timing studies on big grids — outputs cover
    /// just the first `points_per_cta` points).
    TimingOnly,
}

/// Launch-time knobs beyond the grid shape (see [`launch_with_config`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    /// How much of the grid to execute functionally.
    pub mode: LaunchMode,
    /// Attach a cycle-attribution profiler to CTA 0
    /// ([`LaunchOutput::profile`]).
    pub profile: bool,
    /// Also record the structured event stream (warp phase spans, barrier
    /// edges) for Chrome-trace export. Implies nothing unless `profile`
    /// is set.
    pub trace_events: bool,
    /// Worker threads for the parallel CTA sweep in [`LaunchMode::Full`]
    /// (`0` = auto: `SINGE_JOBS` or the machine's available parallelism,
    /// see [`crate::pool::default_jobs`]). Deterministic at any value.
    pub jobs: usize,
}

impl Default for LaunchConfig {
    fn default() -> LaunchConfig {
        LaunchConfig { mode: LaunchMode::Full, profile: false, trace_events: false, jobs: 0 }
    }
}

/// Validate and launch `kernel` over `total_points` grid points.
pub fn launch(
    kernel: &Kernel,
    arch: &GpuArch,
    inputs: &LaunchInputs<'_>,
    total_points: usize,
    mode: LaunchMode,
) -> SimResult<LaunchOutput> {
    launch_with_config(
        kernel,
        arch,
        inputs,
        total_points,
        LaunchConfig { mode, ..LaunchConfig::default() },
    )
}

/// [`launch`] with a full [`LaunchConfig`], optionally attaching the
/// per-warp cycle-attribution profiler to CTA 0.
pub fn launch_with_config(
    kernel: &Kernel,
    arch: &GpuArch,
    inputs: &LaunchInputs<'_>,
    total_points: usize,
    config: LaunchConfig,
) -> SimResult<LaunchOutput> {
    let mode = config.mode;
    kernel.check().map_err(SimError::InvalidKernel)?;
    if inputs.arrays.len() != kernel.global_arrays.len() {
        return Err(SimError::BadLaunch(format!(
            "{} arrays supplied for {} declarations",
            inputs.arrays.len(),
            kernel.global_arrays.len()
        )));
    }
    for (decl, arr) in kernel.global_arrays.iter().zip(&inputs.arrays) {
        if !decl.output && arr.len() != decl.rows * total_points {
            return Err(SimError::BadLaunch(format!(
                "input '{}' has {} elements, expected {}",
                decl.name,
                arr.len(),
                decl.rows * total_points
            )));
        }
    }
    if !total_points.is_multiple_of(kernel.points_per_cta) {
        return Err(SimError::BadLaunch(format!(
            "grid of {} points not divisible by points_per_cta {}",
            total_points, kernel.points_per_cta
        )));
    }
    if occupancy(kernel, arch).ctas_per_sm == 0 {
        return Err(SimError::BadLaunch(
            "kernel does not fit on the SM (zero occupancy)".into(),
        ));
    }

    // Memoized: sweeps re-launch the same kernel many times; the flatten
    // (loop expansion + pre-decode) is shared across launches.
    let prog = flatten_cached(kernel);
    let n_ctas = match mode {
        LaunchMode::Full => total_points / kernel.points_per_cta,
        LaunchMode::TimingOnly => 1,
    };

    let mut outputs: Vec<Vec<f64>> = kernel
        .global_arrays
        .iter()
        .map(|a| if a.output { vec![0.0; a.rows * total_points] } else { Vec::new() })
        .collect();

    // CTA 0 runs with event collection; scatter its buffers too. With a
    // profiler attached it runs on the interpreter (the profiled slow
    // path); otherwise `run_cta` dispatches to the segment-compiled
    // engine.
    let mut profiler = config.profile.then(|| {
        Profiler::new(kernel.warps_per_cta, kernel.barriers_used.max(16), config.trace_events, arch)
    });
    let first = match profiler.as_mut() {
        Some(p) => run_cta_profiled(
            kernel, &prog, &inputs.arrays, total_points, 0, true, arch, Some(p),
        )?,
        None => run_cta(kernel, &prog, &inputs.arrays, total_points, 0, true, arch)?,
    };
    scatter(kernel, total_points, 0, &first, &mut outputs);
    let counts = first.counts;
    let profile = profiler.map(Profiler::finish);

    if n_ctas > 1 {
        // Remaining CTAs are independent: fan them out over the ordered
        // pool and scatter in CTA order. The first error (in CTA order)
        // wins, exactly as a serial loop would report it.
        let jobs = if config.jobs == 0 { crate::pool::default_jobs() } else { config.jobs };
        let results: Vec<SimResult<CtaResult>> =
            crate::pool::run_ordered(jobs, n_ctas - 1, |i| {
                run_cta(kernel, &prog, &inputs.arrays, total_points, 1 + i, false, arch)
            });
        for (i, r) in results.into_iter().enumerate() {
            scatter(kernel, total_points, 1 + i, &r?, &mut outputs);
        }
    }

    let report = estimate(kernel, arch, &counts, total_points);
    Ok(LaunchOutput { outputs, report, profile })
}

/// Scatter a CTA's output buffers into the full output arrays.
fn scatter(
    kernel: &Kernel,
    total_points: usize,
    cta: usize,
    r: &CtaResult,
    outputs: &mut [Vec<f64>],
) {
    let base = cta * kernel.points_per_cta;
    for (ai, decl) in kernel.global_arrays.iter().enumerate() {
        if !decl.output {
            continue;
        }
        let buf = &r.out_buffers[ai];
        for row in 0..decl.rows {
            let src = &buf[row * kernel.points_per_cta..(row + 1) * kernel.points_per_cta];
            let dst_off = row * total_points + base;
            outputs[ai][dst_off..dst_off + kernel.points_per_cta].copy_from_slice(src);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::*;

    fn saxpy_kernel() -> Kernel {
        // out[0][p] = 2.5 * in[0][p] + in[1][p], one warp, 32 points/CTA.
        Kernel {
            name: "saxpy".into(),
            body: vec![
                Node::Op(Instr::LdGlobal {
                    dst: 0,
                    addr: GAddr { array: GlobalId(0), row: IdxOp::Imm(0), point: PointRef::Lane },
                    ldg: false,
                }),
                Node::Op(Instr::LdGlobal {
                    dst: 1,
                    addr: GAddr { array: GlobalId(0), row: IdxOp::Imm(1), point: PointRef::Lane },
                    ldg: false,
                }),
                Node::Op(Instr::DFma { dst: 2, a: Op::Reg(0), b: Op::Imm(2.5), c: Op::Reg(1), const_c: false }),
                Node::Op(Instr::StGlobal {
                    src: Op::Reg(2),
                    addr: GAddr { array: GlobalId(1), row: IdxOp::Imm(0), point: PointRef::Lane },
                }),
            ],
            warps_per_cta: 1,
            points_per_cta: 32,
            dregs_per_thread: 4,
            iregs_per_thread: 1,
            shared_words: 0,
            local_words_per_thread: 0,
            const_banks: vec![],
            iconst_banks: vec![],
            barriers_used: 0,
            global_arrays: vec![
                ArrayDecl { name: "in".into(), rows: 2, output: false },
                ArrayDecl { name: "out".into(), rows: 1, output: true },
            ],
            spilled_bytes_per_thread: 0,
            exp_const_from_registers: false,
        }
    }

    #[test]
    fn full_launch_covers_all_points() {
        let k = saxpy_kernel();
        let arch = GpuArch::kepler_k20c();
        let points = 32 * 17;
        let input: Vec<f64> = (0..2 * points).map(|i| i as f64 * 0.5).collect();
        let out = launch(&k, &arch, &LaunchInputs { arrays: vec![&input, &[]] }, points, LaunchMode::Full)
            .unwrap();
        for p in 0..points {
            let expect = 2.5 * input[p] + input[points + p];
            assert_eq!(out.outputs[1][p], expect, "point {p}");
        }
        assert!(out.report.points_per_sec > 0.0);
    }

    #[test]
    fn timing_only_runs_one_cta() {
        let k = saxpy_kernel();
        let arch = GpuArch::fermi_c2070();
        let points = 32 * 8;
        let input: Vec<f64> = vec![1.0; 2 * points];
        let out = launch(&k, &arch, &LaunchInputs { arrays: vec![&input, &[]] }, points, LaunchMode::TimingOnly)
            .unwrap();
        // First CTA's points are computed, the rest remain zero.
        assert_eq!(out.outputs[1][0], 3.5);
        assert_eq!(out.outputs[1][63], 0.0);
    }

    #[test]
    fn profiled_launch_attributes_every_cycle() {
        let k = saxpy_kernel();
        let arch = GpuArch::kepler_k20c();
        let points = 32 * 4;
        let input: Vec<f64> = (0..2 * points).map(|i| i as f64).collect();
        let cfg = LaunchConfig { mode: LaunchMode::Full, profile: true, trace_events: true, jobs: 0 };
        let out =
            launch_with_config(&k, &arch, &LaunchInputs { arrays: vec![&input, &[]] }, points, cfg)
                .unwrap();
        let prof = out.profile.expect("profile requested");
        prof.check_attribution().unwrap();
        assert_eq!(prof.warps.len(), 1);
        assert!(prof.total_cycles > 0);
        // Functional results are unaffected by profiling.
        for p in 0..points {
            assert_eq!(out.outputs[1][p], 2.5 * input[p] + input[points + p]);
        }
        // Unprofiled launches don't pay for or carry a profile.
        let plain = launch(&k, &arch, &LaunchInputs { arrays: vec![&input, &[]] }, points, LaunchMode::Full)
            .unwrap();
        assert!(plain.profile.is_none());
        assert_eq!(plain.report.counts, out.report.counts);
    }

    #[test]
    fn rejects_bad_input_shapes() {
        let k = saxpy_kernel();
        let arch = GpuArch::kepler_k20c();
        let input = vec![0.0; 10];
        let err = launch(&k, &arch, &LaunchInputs { arrays: vec![&input, &[]] }, 64, LaunchMode::Full)
            .unwrap_err();
        assert!(matches!(err, SimError::BadLaunch(_)));
    }

    #[test]
    fn rejects_indivisible_grid() {
        let k = saxpy_kernel();
        let arch = GpuArch::kepler_k20c();
        let input = vec![0.0; 2 * 40];
        let err = launch(&k, &arch, &LaunchInputs { arrays: vec![&input, &[]] }, 40, LaunchMode::Full)
            .unwrap_err();
        assert!(matches!(err, SimError::BadLaunch(_)));
    }

    #[test]
    fn report_has_sane_metrics() {
        let k = saxpy_kernel();
        let arch = GpuArch::kepler_k20c();
        let points = 32 * 64;
        let input: Vec<f64> = vec![1.0; 2 * points];
        let out = launch(&k, &arch, &LaunchInputs { arrays: vec![&input, &[]] }, points, LaunchMode::Full)
            .unwrap();
        let r = &out.report;
        assert!(r.seconds > 0.0);
        assert!(r.gflops > 0.0);
        assert!(r.occupancy.ctas_per_sm >= 1);
        assert_eq!(r.grid_points, points);
    }
}
