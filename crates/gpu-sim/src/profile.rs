//! Per-warp cycle-attribution profiler.
//!
//! The interpreter is functional, not cycle-stepped, so the profiler keeps
//! an *attribution timeline*: each warp owns a local cycle clock advanced
//! by the static issue cost of every operation it executes, and every
//! advance is charged to exactly one reason from a closed set
//! ([`WarpCycles`]). Named-barrier waits are reconstructed from arrival
//! times — a barrier generation completes at the maximum local clock among
//! its arrivals, and a warp blocked on that generation is charged the gap
//! between its own arrival and the completion as `barrier_wait[bar]`,
//! then fast-forwarded to the completion time. After the run, per-warp
//! instruction-cache miss penalties are added, the CTA total is the
//! maximum busy time over warps, and each warp's shortfall is charged to
//! `idle` (idle-after-exit). By construction — and checked by
//! [`CtaProfile::check_attribution`] — the sum of a warp's reasons equals
//! the CTA total for *every* warp.
//!
//! All counters are integers fed only by the deterministic single-threaded
//! interpretation of CTA 0, so breakdowns are bit-stable across runs,
//! worker counts, and platforms, and can be golden-tested like
//! `BENCH_report.json`.
//!
//! With event collection on, the profiler additionally records a
//! structured stream of warp phase spans (exec / barrier-wait) and
//! barrier arrive/sync edges, exportable as Chrome `chrome://tracing`
//! JSON via [`chrome_trace_json`].

use std::collections::HashMap;

use crate::arch::GpuArch;

/// Hard cap on recorded trace events; [`CtaProfile::events_truncated`]
/// reports when the stream was cut (counters are never truncated).
pub const MAX_TRACE_EVENTS: usize = 200_000;

/// Cycles attributed to one warp, split by reason. The reasons form a
/// closed set: `issue + barrier_wait + icache_miss + const_replay +
/// overhead + idle` accounts for every cycle of the CTA critical path.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WarpCycles {
    /// Instruction issue (static issue slots of executed ops).
    pub issue: u64,
    /// Blocked on `bar.sync`, split by barrier id.
    pub barrier_wait: Vec<u64>,
    /// Instruction-cache miss penalties (per-warp share of the
    /// interleaved fetch trace).
    pub icache_miss: u64,
    /// Constant-cache replays: extra cycles for multi-line `LdConst`
    /// broadcasts plus miss latency.
    pub const_replay: u64,
    /// Operand/scheduling overhead: warp-branch headers and the
    /// architectural cost of executing barrier instructions.
    pub overhead: u64,
    /// Idle after exit (or behind the slowest warp) until CTA completion.
    pub idle: u64,
}

impl WarpCycles {
    fn new(n_barriers: usize) -> WarpCycles {
        WarpCycles { barrier_wait: vec![0; n_barriers], ..Default::default() }
    }

    /// Total cycles waiting on named barriers (all ids).
    pub fn barrier_wait_total(&self) -> u64 {
        self.barrier_wait.iter().sum()
    }

    /// Cycles this warp was doing something (everything but `idle`).
    pub fn busy(&self) -> u64 {
        self.issue + self.barrier_wait_total() + self.icache_miss + self.const_replay
            + self.overhead
    }

    /// Sum over the full closed reason set. Equals the CTA total for every
    /// warp of a finalized profile.
    pub fn total(&self) -> u64 {
        self.busy() + self.idle
    }

    /// Element-wise accumulate (for CTA-level aggregation).
    pub fn accumulate(&mut self, o: &WarpCycles) {
        self.issue += o.issue;
        if self.barrier_wait.len() < o.barrier_wait.len() {
            self.barrier_wait.resize(o.barrier_wait.len(), 0);
        }
        for (b, v) in o.barrier_wait.iter().enumerate() {
            self.barrier_wait[b] += v;
        }
        self.icache_miss += o.icache_miss;
        self.const_replay += o.const_replay;
        self.overhead += o.overhead;
        self.idle += o.idle;
    }
}

/// Span vs instant event (maps to Chrome trace phases `X` / `i`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A duration (`ph: "X"`).
    Span,
    /// A point event (`ph: "i"`).
    Instant,
}

/// One structured trace event. `ts`/`dur` are in simulated cycles for
/// interpreter events and in microseconds for compiler stage spans; Chrome
/// tracing renders both as its microsecond timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Display name ("exec", "wait b3", "arrive b0", "mapping", ...).
    pub name: String,
    /// Category ("warp", "barrier", "compile").
    pub cat: &'static str,
    /// Span or instant.
    pub kind: EventKind,
    /// Start timestamp.
    pub ts: u64,
    /// Duration (0 for instants).
    pub dur: u64,
    /// Track id (warp id for interpreter events, 0 for compile stages).
    pub tid: u32,
}

/// Finalized per-CTA profile: one [`WarpCycles`] per warp plus the CTA
/// total and the optional event stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CtaProfile {
    /// Per-warp attribution tables.
    pub warps: Vec<WarpCycles>,
    /// CTA critical-path cycles (max busy time over warps).
    pub total_cycles: u64,
    /// Structured event stream (empty unless event collection was on).
    pub events: Vec<TraceEvent>,
    /// True if the event stream hit [`MAX_TRACE_EVENTS`].
    pub events_truncated: bool,
}

impl CtaProfile {
    /// Verify the closed-set invariant: for every warp, the sum of all
    /// attributed reasons equals the CTA total.
    pub fn check_attribution(&self) -> Result<(), String> {
        for (w, wc) in self.warps.iter().enumerate() {
            if wc.total() != self.total_cycles {
                return Err(format!(
                    "warp {}: attributed {} cycles != CTA total {}",
                    w,
                    wc.total(),
                    self.total_cycles
                ));
            }
        }
        Ok(())
    }

    /// Reason totals summed over all warps.
    pub fn totals(&self) -> WarpCycles {
        let mut t = WarpCycles::default();
        for w in &self.warps {
            t.accumulate(w);
        }
        t
    }
}

/// Integer per-event costs derived from a [`GpuArch`]; the attribution
/// model works in whole cycles so breakdowns stay bit-stable.
#[derive(Debug, Clone, Copy)]
struct ProfCosts {
    icache_miss: u64,
    const_miss: u64,
    barrier_op: u64,
}

/// Online cycle-attribution state, driven by interpreter hooks
/// (`crate::interp::run_cta_profiled`) and finalized with
/// [`Profiler::finish`].
#[derive(Debug)]
pub struct Profiler {
    costs: ProfCosts,
    collect_events: bool,
    /// Per-warp local clocks.
    t: Vec<u64>,
    warps: Vec<WarpCycles>,
    /// Start of the current exec span per warp (event stream only).
    span_start: Vec<u64>,
    /// Per barrier: max arrival clock within the current generation.
    arrival_max: Vec<u64>,
    /// Per barrier: completion clock keyed by the generation value the
    /// completion advanced the barrier *to*.
    completions: Vec<HashMap<u64, u64>>,
    events: Vec<TraceEvent>,
    truncated: bool,
}

impl Profiler {
    /// Profiler for a CTA of `n_warps` warps and `n_barriers` named
    /// barriers. `collect_events` additionally records the span/edge
    /// stream (counters are always collected).
    pub fn new(n_warps: usize, n_barriers: usize, collect_events: bool, arch: &GpuArch) -> Profiler {
        Profiler {
            costs: ProfCosts {
                icache_miss: arch.icache_miss_penalty as u64,
                const_miss: arch.const_miss_latency as u64,
                barrier_op: arch.barrier_sync_cycles as u64,
            },
            collect_events,
            t: vec![0; n_warps],
            warps: vec![WarpCycles::new(n_barriers); n_warps],
            span_start: vec![0; n_warps],
            arrival_max: vec![0; n_barriers],
            completions: vec![HashMap::new(); n_barriers],
            events: Vec::new(),
            truncated: false,
        }
    }

    fn push_event(&mut self, ev: TraceEvent) {
        if self.events.len() >= MAX_TRACE_EVENTS {
            self.truncated = true;
            return;
        }
        self.events.push(ev);
    }

    /// Flush the warp's open exec span `[span_start, t)` to the stream.
    fn flush_exec(&mut self, w: usize) {
        if !self.collect_events {
            return;
        }
        let (start, end) = (self.span_start[w], self.t[w]);
        if end > start {
            self.push_event(TraceEvent {
                name: "exec".into(),
                cat: "warp",
                kind: EventKind::Span,
                ts: start,
                dur: end - start,
                tid: w as u32,
            });
        }
        self.span_start[w] = end;
    }

    /// Charge `slots` issue cycles to warp `w`.
    pub(crate) fn on_issue(&mut self, w: usize, slots: u64) {
        self.t[w] += slots;
        self.warps[w].issue += slots;
    }

    /// Charge scheduling/operand overhead cycles (branch headers).
    pub(crate) fn on_overhead(&mut self, w: usize, cycles: u64) {
        self.t[w] += cycles;
        self.warps[w].overhead += cycles;
    }

    /// Charge a multi-line `LdConst` broadcast: `lines` distinct cache
    /// lines touched (first is part of issue; extras replay) of which
    /// `misses` missed.
    pub(crate) fn on_const_replay(&mut self, w: usize, lines: u64, misses: u64) {
        let cycles = lines.saturating_sub(1) + misses * self.costs.const_miss;
        self.t[w] += cycles;
        self.warps[w].const_replay += cycles;
    }

    /// A barrier instruction executed on warp `w`: charge the
    /// architectural barrier overhead and record the arrival.
    pub(crate) fn on_barrier_op(&mut self, w: usize, bar: u8, sync: bool) {
        self.t[w] += self.costs.barrier_op;
        self.warps[w].overhead += self.costs.barrier_op;
        let b = bar as usize;
        if b < self.arrival_max.len() {
            self.arrival_max[b] = self.arrival_max[b].max(self.t[w]);
        }
        if self.collect_events {
            let ev = TraceEvent {
                name: format!("{} b{}", if sync { "sync" } else { "arrive" }, bar),
                cat: "barrier",
                kind: EventKind::Instant,
                ts: self.t[w],
                dur: 0,
                tid: w as u32,
            };
            self.push_event(ev);
        }
    }

    /// The arrival on `bar` completed a generation, advancing the barrier
    /// to `new_gen`: snapshot the completion clock.
    pub(crate) fn on_barrier_complete(&mut self, bar: u8, new_gen: u64) {
        let b = bar as usize;
        if b >= self.arrival_max.len() {
            return;
        }
        let at = self.arrival_max[b];
        self.completions[b].insert(new_gen, at);
        self.arrival_max[b] = 0;
    }

    /// Warp `w` blocked on a `bar.sync`; close its exec span.
    pub(crate) fn on_block(&mut self, w: usize, _bar: u8) {
        self.flush_exec(w);
    }

    /// Warp `w`, blocked at generation `gen` of `bar`, is released: charge
    /// the wait and fast-forward its clock to the completion.
    pub(crate) fn on_release(&mut self, w: usize, bar: u8, gen: u64) {
        let b = bar as usize;
        if b >= self.completions.len() {
            return;
        }
        // The completion that released this warp advanced the generation
        // from `gen` to `gen + 1`.
        let complete = self.completions[b].get(&(gen + 1)).copied().unwrap_or(self.t[w]);
        let wait = complete.saturating_sub(self.t[w]);
        let start = self.t[w];
        self.t[w] += wait;
        self.warps[w].barrier_wait[b] += wait;
        if self.collect_events && wait > 0 {
            self.push_event(TraceEvent {
                name: format!("wait b{bar}"),
                cat: "warp",
                kind: EventKind::Span,
                ts: start,
                dur: wait,
                tid: w as u32,
            });
        }
        self.span_start[w] = self.t[w];
    }

    /// Warp `w` ran off the end of its stream.
    pub(crate) fn on_warp_done(&mut self, w: usize) {
        self.flush_exec(w);
    }

    /// Add per-warp instruction-cache miss penalties (from the interleaved
    /// fetch trace, available after the functional run).
    pub(crate) fn add_icache_misses(&mut self, per_warp_misses: &[u64]) {
        for (w, &m) in per_warp_misses.iter().enumerate() {
            if w < self.warps.len() {
                self.warps[w].icache_miss += m * self.costs.icache_miss;
            }
        }
    }

    /// Finalize: the CTA total is the max busy time over warps; every
    /// warp's shortfall becomes `idle`, making the closed-set sum equal
    /// for all warps.
    pub fn finish(mut self) -> CtaProfile {
        let total = self.warps.iter().map(WarpCycles::busy).max().unwrap_or(0);
        for wc in &mut self.warps {
            wc.idle = total - wc.busy();
        }
        CtaProfile {
            warps: self.warps,
            total_cycles: total,
            events: self.events,
            events_truncated: self.truncated,
        }
    }
}

/// Serialize event groups as Chrome `chrome://tracing` JSON (load via
/// `chrome://tracing` or <https://ui.perfetto.dev>). Each group becomes
/// one named "process" (`pid` = group index); event `tid`s are the
/// tracks within it.
pub fn chrome_trace_json(groups: &[(&str, &[TraceEvent])]) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    let push = |out: &mut String, s: String, first: &mut bool| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        out.push_str(&s);
    };
    for (pid, (name, events)) in groups.iter().enumerate() {
        push(
            &mut out,
            format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":{}}}}}",
                json_string(name)
            ),
            &mut first,
        );
        for ev in *events {
            let s = match ev.kind {
                EventKind::Span => format!(
                    "{{\"name\":{},\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                     \"pid\":{pid},\"tid\":{}}}",
                    json_string(&ev.name),
                    ev.cat,
                    ev.ts,
                    ev.dur,
                    ev.tid
                ),
                EventKind::Instant => format!(
                    "{{\"name\":{},\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\
                     \"pid\":{pid},\"tid\":{}}}",
                    json_string(&ev.name),
                    ev.cat,
                    ev.ts,
                    ev.tid
                ),
            };
            push(&mut out, s, &mut first);
        }
    }
    out.push_str("\n]}\n");
    out
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arch() -> GpuArch {
        GpuArch::kepler_k20c()
    }

    #[test]
    fn issue_and_idle_balance() {
        let mut p = Profiler::new(2, 16, false, &arch());
        p.on_issue(0, 100);
        p.on_issue(1, 60);
        p.on_warp_done(0);
        p.on_warp_done(1);
        let prof = p.finish();
        assert_eq!(prof.total_cycles, 100);
        assert_eq!(prof.warps[1].idle, 40);
        prof.check_attribution().unwrap();
    }

    #[test]
    fn barrier_wait_charged_to_blocked_warp() {
        let a = arch();
        let bar_op = a.barrier_sync_cycles as u64;
        let mut p = Profiler::new(2, 16, false, &a);
        // Warp 0 syncs early and blocks; warp 1 works 500 cycles then
        // arrives, completing generation 0 -> 1.
        p.on_issue(0, 10);
        p.on_barrier_op(0, 3, true);
        p.on_block(0, 3);
        p.on_issue(1, 500);
        p.on_barrier_op(1, 3, true);
        p.on_barrier_complete(3, 1);
        p.on_release(0, 3, 0);
        p.on_warp_done(0);
        p.on_warp_done(1);
        let prof = p.finish();
        // Warp 0 waited from (10 + bar_op) until warp 1's arrival at
        // (500 + bar_op).
        assert_eq!(prof.warps[0].barrier_wait[3], 490);
        assert_eq!(prof.warps[0].idle, 0);
        assert_eq!(prof.warps[1].barrier_wait_total(), 0);
        assert_eq!(prof.total_cycles, 500 + bar_op);
        prof.check_attribution().unwrap();
    }

    #[test]
    fn const_replay_counts_lines_and_misses() {
        let a = arch();
        let mut p = Profiler::new(1, 16, false, &a);
        p.on_const_replay(0, 4, 2);
        let extra = 3 + 2 * a.const_miss_latency as u64;
        assert_eq!(p.warps[0].const_replay, extra);
    }

    #[test]
    fn events_record_spans_and_edges() {
        let mut p = Profiler::new(1, 16, true, &arch());
        p.on_issue(0, 50);
        p.on_barrier_op(0, 1, false);
        p.on_warp_done(0);
        let prof = p.finish();
        assert!(prof.events.iter().any(|e| e.name == "exec" && e.kind == EventKind::Span));
        assert!(prof.events.iter().any(|e| e.name == "arrive b1" && e.kind == EventKind::Instant));
        let json = chrome_trace_json(&[("test", &prof.events)]);
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
    }

    #[test]
    fn totals_accumulate_across_warps() {
        let mut p = Profiler::new(2, 4, false, &arch());
        p.on_issue(0, 10);
        p.on_issue(1, 30);
        let prof = p.finish();
        let t = prof.totals();
        assert_eq!(t.issue, 40);
        assert_eq!(t.idle, 20); // warp 0 idles 20 behind warp 1
    }
}
