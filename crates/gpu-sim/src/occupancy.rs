//! Occupancy calculation: how many CTAs of a kernel fit on one SM.
//!
//! Registers, shared memory, warp slots, the CTA limit, and — unusually —
//! *named barriers* are all conserved resources (paper §4.2 footnote 1:
//! "the maximum number of named barriers per CTA is 16 divided by the
//! desired number of CTAs per SM").

use crate::arch::GpuArch;
use crate::isa::Kernel;

/// Result of the occupancy calculation.
#[derive(Debug, Clone, Copy)]
pub struct Occupancy {
    /// Concurrent CTAs per SM.
    pub ctas_per_sm: usize,
    /// Resident warps per SM.
    pub warps_per_sm: usize,
    /// Which resource bounds occupancy.
    pub limiter: OccLimiter,
}

/// The binding resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OccLimiter {
    /// Register file.
    Registers,
    /// Shared memory.
    SharedMemory,
    /// Warp slots.
    Warps,
    /// Hardware CTA limit.
    CtaLimit,
    /// Named barriers (16 per SM, conserved).
    NamedBarriers,
}

/// Compute occupancy for `kernel` on `arch`.
///
/// Registers per thread are clamped to the architectural maximum — a kernel
/// wanting more must have spilled (the compiler handles that; here we only
/// size the register allocation).
pub fn occupancy(kernel: &Kernel, arch: &GpuArch) -> Occupancy {
    let threads = kernel.threads_per_cta();
    // Real toolchains cap registers (-maxrregcount) so at least one CTA
    // fits, spilling the excess; mirror that by flooring the allocation at
    // one CTA's worth when the raw demand would not fit at all.
    let fit_cap = (arch.regs_per_sm / threads).max(1);
    let regs = kernel
        .regs32_per_thread()
        .min(arch.max_regs_per_thread)
        .min(fit_cap)
        .max(1);

    let mut best = (usize::MAX, OccLimiter::CtaLimit);
    let mut consider = |v: usize, lim: OccLimiter| {
        if v < best.0 {
            best = (v, lim);
        }
    };

    consider(arch.regs_per_sm / (regs * threads), OccLimiter::Registers);
    if let Some(q) = arch.shared_per_sm.checked_div(kernel.shared_bytes()) {
        consider(q, OccLimiter::SharedMemory);
    }
    consider(arch.max_warps_per_sm / kernel.warps_per_cta, OccLimiter::Warps);
    consider(arch.max_ctas_per_sm, OccLimiter::CtaLimit);
    if let Some(q) = arch.named_barriers_per_sm.checked_div(kernel.barriers_used) {
        consider(q, OccLimiter::NamedBarriers);
    }

    let ctas = best.0;
    Occupancy {
        ctas_per_sm: ctas,
        warps_per_sm: ctas * kernel.warps_per_cta,
        limiter: best.1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Kernel;

    fn kernel(warps: usize, dregs: usize, shared_words: usize, barriers: usize) -> Kernel {
        Kernel {
            name: "t".into(),
            body: vec![],
            warps_per_cta: warps,
            points_per_cta: 32,
            dregs_per_thread: dregs,
            iregs_per_thread: 2,
            shared_words,
            local_words_per_thread: 0,
            const_banks: vec![],
            iconst_banks: vec![],
            barriers_used: barriers,
            global_arrays: vec![],
            spilled_bytes_per_thread: 0,
            exp_const_from_registers: false,
        }
    }

    #[test]
    fn register_limited() {
        let arch = GpuArch::fermi_c2070();
        // 30 dregs = 62 regs32/thread, 8 warps = 256 threads
        // => 32768 / (62*256) = 2 CTAs.
        let occ = occupancy(&kernel(8, 30, 0, 0), &arch);
        assert_eq!(occ.ctas_per_sm, 2);
        assert_eq!(occ.limiter, OccLimiter::Registers);
    }

    #[test]
    fn shared_limited() {
        let arch = GpuArch::kepler_k20c();
        // 3000 words = 24000 B; 48K/24000 = 2 CTAs; regs loose.
        let occ = occupancy(&kernel(4, 8, 3000, 0), &arch);
        assert_eq!(occ.ctas_per_sm, 2);
        assert_eq!(occ.limiter, OccLimiter::SharedMemory);
    }

    #[test]
    fn named_barriers_conserved() {
        let arch = GpuArch::kepler_k20c();
        // 16 barriers used => exactly 1 CTA per SM (paper footnote 1).
        let occ = occupancy(&kernel(4, 4, 16, 16), &arch);
        assert_eq!(occ.ctas_per_sm, 1);
        assert_eq!(occ.limiter, OccLimiter::NamedBarriers);
        // 8 barriers => up to 2 by that resource.
        let occ = occupancy(&kernel(4, 4, 16, 8), &arch);
        assert!(occ.ctas_per_sm >= 2);
    }

    #[test]
    fn warp_slots_limit() {
        let arch = GpuArch::fermi_c2070();
        // 20 warps/CTA: 48/20 = 2 CTAs max by warps.
        let occ = occupancy(&kernel(20, 4, 16, 0), &arch);
        assert_eq!(occ.ctas_per_sm, 2);
        assert_eq!(occ.warps_per_sm, 40);
    }

    #[test]
    fn regs_clamped_to_arch_max() {
        let arch = GpuArch::fermi_c2070();
        // A kernel "wanting" 200 regs32 is clamped to 63 for sizing.
        let occ = occupancy(&kernel(4, 100, 0, 0), &arch);
        assert!(occ.ctas_per_sm >= 4, "{}", occ.ctas_per_sm);
    }
}
