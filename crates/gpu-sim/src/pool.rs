//! Dependency-free, order-preserving work pool for sweep workloads.
//!
//! Autotuning, the figure harness, the verifier sweep, and full-grid
//! launches ([`crate::launch_with_config`] fans independent CTAs out over
//! the same pool) all evaluate a known list of independent work items.
//! [`run_ordered`] distributes the list over `std::thread::scope` workers
//! and commits results **in input order**, so callers observe exactly the
//! sequence a serial loop would have produced — parallelism never changes
//! output bytes, row order, or winner selection.
//!
//! The worker count comes from the caller (a `--jobs` flag), the
//! `SINGE_JOBS` environment variable, or the machine's available
//! parallelism — see [`default_jobs`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolve the default worker count: `SINGE_JOBS` if set to a positive
/// integer, otherwise `std::thread::available_parallelism()`.
pub fn default_jobs() -> usize {
    if let Ok(v) = std::env::var("SINGE_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Evaluate `f(0..n)` on up to `jobs` worker threads and return the
/// results in input order (`out[i] == f(i)`).
///
/// `jobs <= 1` (or `n <= 1`) runs inline on the caller's thread with no
/// thread or lock overhead, so `--jobs 1` is byte-for-byte the serial
/// path. Worker panics propagate to the caller via `std::thread::scope`.
///
/// The spawned thread count is additionally capped at the machine's
/// available parallelism: results are committed in input order no matter
/// how many workers run, so extra threads beyond the core count can only
/// add scheduling overhead, never change output. `--jobs 8` on a 1-core
/// box therefore runs inline, byte-identical to `--jobs 1`.
pub fn run_ordered<R, F>(jobs: usize, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let cores = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);
    let jobs = jobs.min(cores);
    if jobs <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..jobs.min(n) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(i);
                *slots[i].lock().expect("pool slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner().expect("pool slot poisoned").expect("worker committed every claimed slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        for jobs in [1, 2, 8] {
            let out = run_ordered(jobs, 100, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>(), "jobs={jobs}");
        }
    }

    #[test]
    fn matches_serial_results_under_contention() {
        // Uneven work per item: order must still be input order.
        let f = |i: usize| {
            let mut acc = 0u64;
            for k in 0..(i % 7) * 1000 {
                acc = acc.wrapping_mul(31).wrapping_add(k as u64);
            }
            (i, acc)
        };
        let serial = run_ordered(1, 64, f);
        let parallel = run_ordered(8, 64, f);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn handles_empty_and_single() {
        assert_eq!(run_ordered(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(run_ordered(4, 1, |i| i + 1), vec![1]);
    }

    #[test]
    fn more_jobs_than_items() {
        assert_eq!(run_ordered(32, 3, |i| i), vec![0, 1, 2]);
    }
}
