//! Functional interpreter for the kernel IR.
//!
//! A CTA executes as a set of warps in a cooperative round-robin: each warp
//! runs until it finishes or blocks on a named-barrier `sync`; a full round
//! with no progress is a deadlock (the situation the paper's Theorem 1
//! scheduling discipline rules out — we detect it and report the blocked
//! warps). All 32 lanes of a warp execute each instruction in lock step.
//!
//! While executing, the interpreter gathers the event counts the timing
//! model consumes: issue slots, shared-memory transactions with bank
//! conflicts, global coalescing, constant-cache and instruction-cache
//! behavior, and barrier stalls.

use crate::ccache::ConstCache;
use crate::counts::EventCounts;
use crate::error::{SimError, SimResult};
use crate::icache::interleaved_fetch_profile;
use crate::isa::*;
use crate::lanes::{self, Lanes};
use crate::profile::Profiler;
use crate::WARP_SIZE;

/// One flattened operation in a warp's instruction stream.
#[derive(Debug, Clone, Copy)]
pub(crate) enum FlatOp {
    /// Execute instruction `instr` (arena index) at static address `addr`,
    /// within point-set `pset` of the streaming point loop.
    Exec { addr: u32, instr: u32, pset: u32 },
    /// A warp-ID branch header (WarpIf / WarpSwitch) — costs one issue slot
    /// and one fetch.
    Branch { addr: u32 },
}

impl FlatOp {
    fn addr(&self) -> u32 {
        match self {
            FlatOp::Exec { addr, .. } | FlatOp::Branch { addr } => *addr,
        }
    }
}

/// Pre-resolved double-precision operand: a register's base offset into the
/// warp's lane-major register file (`reg * WARP_SIZE`), or a splat immediate.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Src {
    /// Base index of the register's 32 contiguous lane slots.
    Reg(usize),
    /// Immediate broadcast to all lanes.
    Imm(f64),
}

/// Two-operand arithmetic kinds for the decoded fast path.
#[derive(Debug, Clone, Copy)]
pub(crate) enum BinKind {
    Add,
    Sub,
    Mul,
    Div,
    Pow,
    Max,
    Min,
}

/// One-operand arithmetic kinds for the decoded fast path.
#[derive(Debug, Clone, Copy)]
pub(crate) enum UnKind {
    Mov,
    Sqrt,
    Exp,
    Log,
    Log10,
    Cbrt,
    Neg,
}

/// An instruction pre-decoded at `flatten()` time: register ids resolved to
/// base offsets, destination ranges pre-validated, and barrier parameters
/// extracted — so the dynamic execute loop neither re-matches the full
/// [`Instr`] enum nor re-derives static properties per executed op.
#[derive(Debug, Clone, Copy)]
pub(crate) enum DecodedInstr {
    /// `dst[l] = a[l] <op> b[l]`.
    Bin { kind: BinKind, dst: usize, a: Src, b: Src },
    /// `dst[l] = <op>(a[l])`.
    Un { kind: UnKind, dst: usize, a: Src },
    /// `dst[l] = fma(a[l], b[l], c[l])`.
    Fma { dst: usize, a: Src, b: Src, c: Src },
    /// Branch-free select.
    Sel { dst: usize, pred: usize, a: Src, b: Src },
    /// Compare producing 0.0/1.0.
    CmpOp { dst: usize, cmp: Cmp, a: Src, b: Src },
    /// Broadcast from a fixed lane.
    Shfl { dst: usize, src: usize, lane: usize },
    /// Local (spill) load from a pre-validated slot.
    LdLocal { dst: usize, slot: usize },
    /// Local (spill) store to a pre-validated slot.
    StLocal { src: Src, slot: usize },
    /// Non-blocking named-barrier arrival (scheduler-level).
    BarArrive { bar: u8, expected: u16 },
    /// Blocking named-barrier wait (scheduler-level).
    BarSync { bar: u8, expected: u16 },
    /// Stage-rotated arrive: resolves to barrier `base + pset % k` at the
    /// executing point-set (scheduler-level).
    BarArriveStage { base: u8, k: u8, expected: u16 },
    /// Stage-rotated sync: resolves to barrier `base + pset % k`.
    BarSyncStage { base: u8, k: u8, expected: u16 },
    /// A register/slot id is out of range. The error is deferred to
    /// execution time so flatten stays infallible (streams that never run
    /// may legally carry such code, exactly as before pre-decoding).
    Invalid { space: &'static str, addr: usize, limit: usize },
    /// Memory/constant/index op: dispatch on the original [`Instr`].
    Slow,
}

/// Static per-instruction costs, precomputed once at `flatten()` time so
/// event collection stops re-deriving them per executed op.
#[derive(Debug, Clone, Copy)]
pub(crate) struct OpCost {
    /// Issue slots (warp-instructions).
    pub(crate) slots: u64,
    /// DP FLOPs per warp (per-lane flops * WARP_SIZE).
    pub(crate) flops_warp: u64,
    /// DP slots reading the constant cache (respects the §6.1 ablation).
    pub(crate) const_slots: u64,
    /// Issues on the double-precision pipe.
    pub(crate) dp: bool,
}

/// Pre-decode one instruction against the kernel's static limits,
/// mirroring the check order of the interpreter's original execute path.
fn decode(ins: &Instr, kernel: &Kernel) -> DecodedInstr {
    let nd = kernel.dregs_per_thread;
    let bad = |r: Reg| DecodedInstr::Invalid { space: "dreg", addr: r as usize, limit: nd };
    let ok = |r: Reg| (r as usize) < nd;
    let base = |r: Reg| r as usize * WARP_SIZE;
    let src = |o: &Op| match o {
        Op::Reg(r) => Src::Reg(base(*r)),
        Op::Imm(v) => Src::Imm(*v),
    };
    match ins {
        Instr::DMov { dst, src: a } => {
            if !ok(*dst) {
                return bad(*dst);
            }
            DecodedInstr::Un { kind: UnKind::Mov, dst: base(*dst), a: src(a) }
        }
        Instr::DAdd { dst, a, b } => {
            if !ok(*dst) {
                return bad(*dst);
            }
            DecodedInstr::Bin { kind: BinKind::Add, dst: base(*dst), a: src(a), b: src(b) }
        }
        Instr::DSub { dst, a, b } => {
            if !ok(*dst) {
                return bad(*dst);
            }
            DecodedInstr::Bin { kind: BinKind::Sub, dst: base(*dst), a: src(a), b: src(b) }
        }
        Instr::DMul { dst, a, b } => {
            if !ok(*dst) {
                return bad(*dst);
            }
            DecodedInstr::Bin { kind: BinKind::Mul, dst: base(*dst), a: src(a), b: src(b) }
        }
        Instr::DFma { dst, a, b, c, .. } => {
            if !ok(*dst) {
                return bad(*dst);
            }
            DecodedInstr::Fma { dst: base(*dst), a: src(a), b: src(b), c: src(c) }
        }
        Instr::DDiv { dst, a, b } => {
            if !ok(*dst) {
                return bad(*dst);
            }
            DecodedInstr::Bin { kind: BinKind::Div, dst: base(*dst), a: src(a), b: src(b) }
        }
        Instr::DSqrt { dst, a } => {
            if !ok(*dst) {
                return bad(*dst);
            }
            DecodedInstr::Un { kind: UnKind::Sqrt, dst: base(*dst), a: src(a) }
        }
        Instr::DExp { dst, a } => {
            if !ok(*dst) {
                return bad(*dst);
            }
            DecodedInstr::Un { kind: UnKind::Exp, dst: base(*dst), a: src(a) }
        }
        Instr::DLog { dst, a } => {
            if !ok(*dst) {
                return bad(*dst);
            }
            DecodedInstr::Un { kind: UnKind::Log, dst: base(*dst), a: src(a) }
        }
        Instr::DLog10 { dst, a } => {
            if !ok(*dst) {
                return bad(*dst);
            }
            DecodedInstr::Un { kind: UnKind::Log10, dst: base(*dst), a: src(a) }
        }
        Instr::DCbrt { dst, a } => {
            if !ok(*dst) {
                return bad(*dst);
            }
            DecodedInstr::Un { kind: UnKind::Cbrt, dst: base(*dst), a: src(a) }
        }
        Instr::DPow { dst, a, b } => {
            if !ok(*dst) {
                return bad(*dst);
            }
            DecodedInstr::Bin { kind: BinKind::Pow, dst: base(*dst), a: src(a), b: src(b) }
        }
        Instr::DMax { dst, a, b } => {
            if !ok(*dst) {
                return bad(*dst);
            }
            DecodedInstr::Bin { kind: BinKind::Max, dst: base(*dst), a: src(a), b: src(b) }
        }
        Instr::DMin { dst, a, b } => {
            if !ok(*dst) {
                return bad(*dst);
            }
            DecodedInstr::Bin { kind: BinKind::Min, dst: base(*dst), a: src(a), b: src(b) }
        }
        Instr::DNeg { dst, a } => {
            if !ok(*dst) {
                return bad(*dst);
            }
            DecodedInstr::Un { kind: UnKind::Neg, dst: base(*dst), a: src(a) }
        }
        Instr::DSel { dst, pred, a, b } => {
            if !ok(*dst) {
                return bad(*dst);
            }
            if !ok(*pred) {
                return bad(*pred);
            }
            DecodedInstr::Sel { dst: base(*dst), pred: base(*pred), a: src(a), b: src(b) }
        }
        Instr::DCmp { dst, cmp, a, b } => {
            if !ok(*dst) {
                return bad(*dst);
            }
            DecodedInstr::CmpOp { dst: base(*dst), cmp: *cmp, a: src(a), b: src(b) }
        }
        Instr::Shfl { dst, src: s, lane } => {
            if !ok(*dst) {
                return bad(*dst);
            }
            if !ok(*s) {
                return bad(*s);
            }
            DecodedInstr::Shfl { dst: base(*dst), src: base(*s), lane: *lane as usize }
        }
        Instr::LdLocal { dst, slot } => {
            if !ok(*dst) {
                return bad(*dst);
            }
            let lw = kernel.local_words_per_thread;
            if *slot as usize >= lw {
                return DecodedInstr::Invalid { space: "local", addr: *slot as usize, limit: lw };
            }
            DecodedInstr::LdLocal { dst: base(*dst), slot: *slot as usize * WARP_SIZE }
        }
        Instr::StLocal { src: s, slot } => {
            let lw = kernel.local_words_per_thread;
            if *slot as usize >= lw {
                return DecodedInstr::Invalid { space: "local", addr: *slot as usize, limit: lw };
            }
            DecodedInstr::StLocal { src: src(s), slot: *slot as usize * WARP_SIZE }
        }
        Instr::BarArrive { bar, warps } => DecodedInstr::BarArrive { bar: *bar, expected: *warps },
        Instr::BarSync { bar, warps } => DecodedInstr::BarSync { bar: *bar, expected: *warps },
        Instr::BarArriveStage { base, k, warps } => {
            DecodedInstr::BarArriveStage { base: *base, k: *k, expected: *warps }
        }
        Instr::BarSyncStage { base, k, warps } => {
            DecodedInstr::BarSyncStage { base: *base, k: *k, expected: *warps }
        }
        _ => DecodedInstr::Slow,
    }
}

/// Per-warp flattened program: the exact instruction sequence each warp
/// executes, with static addresses shared across warps (overlaid code keeps
/// these streams on common addresses; naïve switches give them disjoint
/// ranges).
#[derive(Debug)]
pub struct FlatProgram {
    pub(crate) streams: Vec<Vec<FlatOp>>,
    pub(crate) instrs: Vec<Instr>,
    /// Pre-decoded fast-path table, parallel to `instrs`.
    pub(crate) decoded: Vec<DecodedInstr>,
    /// Precomputed static costs, parallel to `instrs`.
    pub(crate) costs: Vec<OpCost>,
    /// Per-warp static fetch address streams (icache model input),
    /// precomputed so event collection stops rebuilding them per CTA.
    pub(crate) addr_streams: Vec<Vec<u32>>,
    /// Per-warp substreams of only the synchronization-relevant ops
    /// (index ISA, shared accesses, async copies, named barriers) as
    /// (static address, arena index, point set) triples. The point set
    /// is part of the tuple because stage-rotated barriers and pipeline
    /// offsets resolve against it.
    pub(crate) sync_streams: Vec<Vec<(u32, u32, u32)>>,
    /// Total static instructions (address space size).
    pub static_size: u32,
    /// Lazily-lowered segment-engine program for this exact flattening.
    /// Riding on the `FlatProgram` (instead of a separate fingerprint-keyed
    /// memo) ties the lowered artifact's lifetime to its flattening and
    /// keeps kernel re-hashing out of `run_cta`, which is called once per
    /// CTA per launch.
    pub(crate) engine: std::sync::OnceLock<std::sync::Arc<crate::engine::EngineProgram>>,
}

/// One step of a warp's flattened stream, exposed read-only for external
/// structural analyses (e.g. the barrier-protocol verifier in the compiler
/// crate, which must not depend on interpreter internals).
#[derive(Debug, Clone, Copy)]
pub struct FlatStep<'a> {
    /// Static instruction address.
    pub addr: u32,
    /// Streaming point-set index (PointLoop iteration), 0 for branch
    /// headers and code outside any point loop.
    pub pset: u32,
    /// The instruction, or `None` for a warp-branch header.
    pub instr: Option<&'a Instr>,
}

impl FlatProgram {
    /// Number of per-warp streams (= warps per CTA).
    pub fn n_warps(&self) -> usize {
        self.streams.len()
    }

    /// Length of one warp's stream.
    pub fn stream_len(&self, warp: usize) -> usize {
        self.streams[warp].len()
    }

    /// One step of a warp's stream.
    pub fn step(&self, warp: usize, pos: usize) -> FlatStep<'_> {
        match self.streams[warp][pos] {
            FlatOp::Exec { addr, instr, pset } => {
                FlatStep { addr, pset, instr: Some(&self.instrs[instr as usize]) }
            }
            FlatOp::Branch { addr } => FlatStep { addr, pset: 0, instr: None },
        }
    }

    /// Iterate one warp's flattened stream.
    pub fn warp_stream(&self, warp: usize) -> impl Iterator<Item = FlatStep<'_>> + '_ {
        (0..self.streams[warp].len()).map(move |i| self.step(warp, i))
    }

    /// Length of one warp's synchronization-relevant substream.
    pub fn sync_stream_len(&self, warp: usize) -> usize {
        self.sync_streams[warp].len()
    }

    /// One step of a warp's synchronization-relevant substream — exactly
    /// the ops a barrier-protocol or shared-memory analysis must model
    /// (index ISA, shared accesses, async copies, named barriers), in
    /// stream order with original static addresses and the executing
    /// point set (stage-rotated barriers resolve against it). Everything
    /// skipped is arithmetic with no effect on index registers, shared
    /// memory, or barrier state.
    pub fn sync_step(&self, warp: usize, pos: usize) -> (u32, u32, &Instr) {
        let (addr, idx, pset) = self.sync_streams[warp][pos];
        (addr, pset, &self.instrs[idx as usize])
    }
}

/// Flatten a kernel's structured body into per-warp streams.
pub fn flatten(kernel: &Kernel) -> FlatProgram {
    let w = kernel.warps_per_cta;
    let mut instrs: Vec<Instr> = Vec::new();
    let mut streams: Vec<Vec<FlatOp>> = vec![Vec::new(); w];

    // Assign addresses in tree order; every warp walking the same tree sees
    // the same addresses. `emit` is called per warp with that warp's path.
    //
    // Loop bodies are re-walked per iteration with the address counter
    // reset, so a static address always denotes the same instruction; the
    // arena is memoized by address (`addr_to_idx`, u32::MAX = unassigned)
    // to keep it — and the decode/cost tables built from it — sized by
    // static code, not by trip counts.
    fn walk(
        nodes: &[Node],
        counter: &mut u32,
        instrs: &mut Vec<Instr>,
        addr_to_idx: &mut Vec<u32>,
        streams: &mut [Vec<FlatOp>],
        active: &[usize],
        pset: u32,
    ) {
        for node in nodes {
            match node {
                Node::Op(i) => {
                    let addr = *counter;
                    *counter += 1;
                    if addr_to_idx.len() <= addr as usize {
                        addr_to_idx.resize(addr as usize + 1, u32::MAX);
                    }
                    let idx = match addr_to_idx[addr as usize] {
                        u32::MAX => {
                            let idx = instrs.len() as u32;
                            instrs.push(i.clone());
                            addr_to_idx[addr as usize] = idx;
                            idx
                        }
                        idx => idx,
                    };
                    for &wid in active {
                        streams[wid].push(FlatOp::Exec { addr, instr: idx, pset });
                    }
                }
                Node::WarpIf { mask, body } => {
                    let addr = *counter;
                    *counter += 1;
                    for &wid in active {
                        streams[wid].push(FlatOp::Branch { addr });
                    }
                    let taken: Vec<usize> = active
                        .iter()
                        .copied()
                        .filter(|&wid| mask & (1u64 << wid) != 0)
                        .collect();
                    walk(body, counter, instrs, addr_to_idx, streams, &taken, pset);
                }
                Node::WarpSwitch { case_of_warp, cases } => {
                    let addr = *counter;
                    *counter += 1;
                    for &wid in active {
                        streams[wid].push(FlatOp::Branch { addr });
                    }
                    for (ci, case) in cases.iter().enumerate() {
                        let taken: Vec<usize> = active
                            .iter()
                            .copied()
                            .filter(|&wid| case_of_warp.get(wid) == Some(&ci))
                            .collect();
                        walk(case, counter, instrs, addr_to_idx, streams, &taken, pset);
                    }
                }
                Node::Loop { count, body } => {
                    let start = *counter;
                    for _ in 0..*count {
                        *counter = start;
                        walk(body, counter, instrs, addr_to_idx, streams, active, pset);
                    }
                    if *count == 0 {
                        // Still reserve the addresses.
                        let mut c = start;
                        walk(body, &mut c, instrs, addr_to_idx, &mut vec![Vec::new(); streams.len()], &[], pset);
                        *counter = c;
                    }
                }
                Node::PointLoop { iters, body } => {
                    let start = *counter;
                    for it in 0..*iters {
                        *counter = start;
                        walk(body, counter, instrs, addr_to_idx, streams, active, it);
                    }
                }
            }
        }
    }

    let all: Vec<usize> = (0..w).collect();
    let mut counter = 0u32;
    let mut addr_to_idx: Vec<u32> = Vec::new();
    walk(&kernel.body, &mut counter, &mut instrs, &mut addr_to_idx, &mut streams, &all, 0);

    // Pre-decode each arena instruction once: fast-path form, static costs,
    // and the fetch address streams the icache model replays.
    let decoded: Vec<DecodedInstr> = instrs.iter().map(|i| decode(i, kernel)).collect();
    let costs: Vec<OpCost> = instrs
        .iter()
        .map(|i| OpCost {
            slots: i.issue_slots() as u64,
            flops_warp: (i.flops() * WARP_SIZE) as u64,
            const_slots: i.const_operand_slots(kernel.exp_const_from_registers) as u64,
            dp: i.is_dp(),
        })
        .collect();
    let addr_streams: Vec<Vec<u32>> =
        streams.iter().map(|s| s.iter().map(|op| op.addr()).collect()).collect();

    // Substreams of only the synchronization-relevant ops. Protocol
    // analyses (the schedule verifier) model index registers, shared
    // memory, and named barriers; pre-filtering here lets them skip the
    // arithmetic bulk of each stream entirely.
    let sync_streams: Vec<Vec<(u32, u32, u32)>> = streams
        .iter()
        .map(|s| {
            s.iter()
                .filter_map(|op| match *op {
                    FlatOp::Exec { addr, instr, pset } => {
                        let relevant = matches!(
                            instrs[instr as usize],
                            Instr::Idx(_)
                                | Instr::LdShared { .. }
                                | Instr::StShared { .. }
                                | Instr::CpAsync { .. }
                                | Instr::BarArrive { .. }
                                | Instr::BarSync { .. }
                                | Instr::BarArriveStage { .. }
                                | Instr::BarSyncStage { .. }
                        );
                        relevant.then_some((addr, instr, pset))
                    }
                    FlatOp::Branch { .. } => None,
                })
                .collect()
        })
        .collect();

    FlatProgram {
        streams,
        instrs,
        decoded,
        costs,
        addr_streams,
        sync_streams,
        static_size: counter,
        engine: std::sync::OnceLock::new(),
    }
}

/// Named-barrier state. `generation` increments on every completion so a
/// warp blocked on one use of the barrier is not confused by a subsequent
/// reuse (barriers are recycled constantly in multi-pass kernels).
/// Shared with the segment-compiled engine so both paths replay the exact
/// same barrier semantics.
#[derive(Debug, Clone, Default)]
pub(crate) struct BarrierState {
    arrived: u16,
    expected: Option<u16>,
    pub(crate) generation: u64,
}

/// Per-warp execution state.
struct WarpState {
    dregs: Vec<f64>,
    iregs: Vec<u32>,
    local: Vec<f64>,
    pc: usize,
    done: bool,
    /// Blocked waiting on `(barrier id, generation at block time)`.
    blocked: Option<(u8, u64)>,
}

/// Result of interpreting one CTA.
#[derive(Debug)]
pub struct CtaResult {
    /// Per-output-array buffers (`rows x points_per_cta`), parallel to
    /// `kernel.global_arrays` (empty vec for inputs).
    pub out_buffers: Vec<Vec<f64>>,
    /// Event counts (only populated when collection was requested).
    pub counts: EventCounts,
}

/// Execute one CTA.
///
/// `inputs` is parallel to `kernel.global_arrays`: full `rows * total_points`
/// slices for input arrays (may be empty for pure outputs). `cta` selects
/// the point range `[cta * points_per_cta, ...)`. When `collect` is true,
/// event counts (including cache simulations) are gathered.
///
/// This is a thin dispatcher: unprofiled runs execute on the
/// segment-compiled engine (`crate::engine`), which is differential-
/// tested bit-identical against the interpreter; profiled runs
/// ([`run_cta_profiled`] with `Some`) stay on the interpreter, whose
/// per-instruction hooks cycle attribution needs.
pub fn run_cta(
    kernel: &Kernel,
    prog: &FlatProgram,
    inputs: &[&[f64]],
    total_points: usize,
    cta: usize,
    collect: bool,
    arch: &crate::arch::GpuArch,
) -> SimResult<CtaResult> {
    let eng = crate::flatcache::engine_cached(kernel, prog);
    crate::engine::run_cta_engine(kernel, &eng, prog, inputs, total_points, cta, collect, arch)
}

/// [`run_cta`] semantics with an optional cycle-attribution profiler
/// attached (see [`crate::profile`]). Passing a profiler forces event
/// collection (attribution needs the cache simulations). Unlike
/// [`run_cta`], this always runs the per-instruction interpreter — with
/// `None` it is the engine's differential reference (the legacy
/// interpreter path), bit-identical to the engine by construction and by
/// test.
#[allow(clippy::too_many_arguments)]
pub fn run_cta_profiled(
    kernel: &Kernel,
    prog: &FlatProgram,
    inputs: &[&[f64]],
    total_points: usize,
    cta: usize,
    collect: bool,
    arch: &crate::arch::GpuArch,
    mut profiler: Option<&mut Profiler>,
) -> SimResult<CtaResult> {
    let collect = collect || profiler.is_some();
    let nw = kernel.warps_per_cta;
    let base_point = cta * kernel.points_per_cta;
    let mut counts = EventCounts::default();

    let mut shared = vec![0.0f64; kernel.shared_words];
    let mut barriers: Vec<BarrierState> =
        vec![BarrierState::default(); kernel.barriers_used.max(16)];
    let mut ccache = ConstCache::new(arch.const_cache_bytes);
    // Byte offset of each const bank within constant space.
    let mut bank_base = Vec::with_capacity(kernel.const_banks.len());
    let mut off = 0u64;
    for b in &kernel.const_banks {
        bank_base.push(off);
        off += (b.len() * 8) as u64;
    }

    let mut out_buffers: Vec<Vec<f64>> = kernel
        .global_arrays
        .iter()
        .map(|a| {
            if a.output {
                vec![0.0; a.rows * kernel.points_per_cta]
            } else {
                Vec::new()
            }
        })
        .collect();

    let mut warps: Vec<WarpState> = (0..nw)
        .map(|_| WarpState {
            dregs: vec![0.0; kernel.dregs_per_thread * WARP_SIZE],
            iregs: vec![0; kernel.iregs_per_thread * WARP_SIZE],
            local: vec![0.0; kernel.local_words_per_thread * WARP_SIZE],
            pc: 0,
            done: false,
            blocked: None,
        })
        .collect();

    // Cooperative scheduler: run warps round-robin until all complete.
    loop {
        let mut progressed = false;
        let mut all_done = true;
        for w in 0..nw {
            if warps[w].done {
                continue;
            }
            all_done = false;
            // A blocked warp re-checks its barrier: released once the
            // barrier's generation has advanced past the one it joined.
            if let Some((b, gen)) = warps[w].blocked {
                if barriers[b as usize].generation > gen {
                    warps[w].blocked = None;
                    if let Some(p) = profiler.as_deref_mut() {
                        p.on_release(w, b, gen);
                    }
                } else {
                    continue;
                }
            }
            let ran = step_warp(
                kernel, prog, inputs, total_points, base_point, w, &mut warps, &mut shared,
                &mut barriers, &mut out_buffers, &mut ccache, &bank_base, collect, &mut counts,
                profiler.as_deref_mut(),
            )?;
            progressed |= ran;
        }
        if all_done {
            break;
        }
        if !progressed {
            let blocked: Vec<(usize, u8)> = warps
                .iter()
                .enumerate()
                .filter(|(_, ws)| !ws.done)
                .map(|(i, ws)| (i, ws.blocked.map(|(b, _)| b).unwrap_or(255)))
                .collect();
            if blocked.is_empty() {
                // The last warps finished this round without executing any
                // instruction (their final item was a completed barrier).
                break;
            }
            return Err(SimError::Deadlock { cta, blocked });
        }
    }

    if collect {
        counts.const_hits = ccache.hits();
        counts.const_misses = ccache.misses();
        // Instruction-cache simulation over the interleaved fetch streams
        // (precomputed at flatten time).
        let fp = interleaved_fetch_profile(
            &prog.addr_streams,
            arch.instr_bytes,
            arch.icache_bytes,
            arch.icache_line_bytes,
            arch.icache_assoc,
            // Prefetch run length: the fetch unit streams ahead of a warp
            // (paper §5.1: the prefetcher copes with divergence for
            // regions up to a few hundred instructions).
            128,
        );
        counts.icache_fetches = fp.fetches;
        counts.icache_misses = fp.misses;
        if let Some(p) = profiler {
            p.add_icache_misses(&fp.per_warp_misses);
        }
    }

    Ok(CtaResult { out_buffers, counts })
}

/// Run one warp until it blocks, finishes, or (for fairness) executes a
/// bounded burst. Returns whether any instruction executed.
#[allow(clippy::too_many_arguments)]
fn step_warp(
    kernel: &Kernel,
    prog: &FlatProgram,
    inputs: &[&[f64]],
    total_points: usize,
    base_point: usize,
    w: usize,
    warps: &mut [WarpState],
    shared: &mut [f64],
    barriers: &mut [BarrierState],
    out_buffers: &mut [Vec<f64>],
    ccache: &mut ConstCache,
    bank_base: &[u64],
    collect: bool,
    counts: &mut EventCounts,
    mut profiler: Option<&mut Profiler>,
) -> SimResult<bool> {
    let stream = &prog.streams[w];
    let mut ran = false;
    loop {
        let pc = warps[w].pc;
        if pc >= stream.len() {
            if !warps[w].done {
                if let Some(p) = profiler.as_deref_mut() {
                    p.on_warp_done(w);
                }
            }
            warps[w].done = true;
            return Ok(ran);
        }
        let op = stream[pc];
        match op {
            FlatOp::Branch { .. } => {
                if collect {
                    counts.issue_slots += 1;
                    counts.warp_branches += 1;
                    if let Some(p) = profiler.as_deref_mut() {
                        p.on_overhead(w, 1);
                    }
                }
                warps[w].pc += 1;
                ran = true;
            }
            FlatOp::Exec { instr, pset, .. } => {
                let i = instr as usize;
                if collect {
                    let is_barrier = matches!(
                        prog.decoded[i],
                        DecodedInstr::BarArrive { .. }
                            | DecodedInstr::BarSync { .. }
                            | DecodedInstr::BarArriveStage { .. }
                            | DecodedInstr::BarSyncStage { .. }
                    );
                    let cost = prog.costs[i];
                    counts.issue_slots += cost.slots;
                    if cost.dp {
                        counts.dp_slots += cost.slots;
                        counts.flops += cost.flops_warp;
                        counts.dp_const_slots += cost.const_slots;
                    }
                    if !is_barrier {
                        // Barrier instructions are charged by the profiler
                        // as overhead (with the architectural sync cost),
                        // not as plain issue.
                        if let Some(p) = profiler.as_deref_mut() {
                            p.on_issue(w, cost.slots);
                        }
                    }
                }
                // Barriers are handled at scheduler level. Stage-rotated
                // barriers resolve their id against the executing point
                // set first, then share the plain arrive/sync machinery.
                let dec = match prog.decoded[i] {
                    DecodedInstr::BarArriveStage { base, k, expected } => DecodedInstr::BarArrive {
                        bar: base + (pset % u32::from(k.max(1))) as u8,
                        expected,
                    },
                    DecodedInstr::BarSyncStage { base, k, expected } => DecodedInstr::BarSync {
                        bar: base + (pset % u32::from(k.max(1))) as u8,
                        expected,
                    },
                    d => d,
                };
                match dec {
                    DecodedInstr::BarArrive { bar, expected } => {
                        if collect {
                            counts.barrier_arrives += 1;
                        }
                        let released = barrier_arrive(barriers, bar, expected)?;
                        if let Some(p) = profiler.as_deref_mut() {
                            p.on_barrier_op(w, bar, false);
                            if released {
                                p.on_barrier_complete(bar, barriers[bar as usize].generation);
                            }
                        }
                        warps[w].pc += 1;
                        ran = true;
                    }
                    DecodedInstr::BarSync { bar, expected } => {
                        if collect {
                            counts.barrier_syncs += 1;
                        }
                        // Record the generation *before* arriving: if our
                        // own arrival completes the barrier the generation
                        // advances and we are not blocked.
                        let gen = barriers[bar as usize].generation;
                        let released = barrier_arrive(barriers, bar, expected)?;
                        if let Some(p) = profiler.as_deref_mut() {
                            p.on_barrier_op(w, bar, true);
                            if released {
                                p.on_barrier_complete(bar, barriers[bar as usize].generation);
                            }
                        }
                        warps[w].pc += 1;
                        ran = true;
                        if !released {
                            warps[w].blocked = Some((bar, gen));
                            if collect {
                                counts.barrier_stall_switches += 1;
                            }
                            if let Some(p) = profiler.as_deref_mut() {
                                p.on_block(w, bar);
                            }
                            return Ok(ran);
                        }
                    }
                    DecodedInstr::Slow => {
                        exec_slow(
                            kernel, &prog.instrs[i], pset, inputs, total_points, base_point,
                            w, &mut warps[w], shared, out_buffers, ccache, bank_base, collect,
                            counts, profiler.as_deref_mut(),
                        )?;
                        warps[w].pc += 1;
                        ran = true;
                    }
                    dec => {
                        let ws = &mut warps[w];
                        exec_fast(dec, &mut ws.dregs, &[], &mut ws.local, collect, counts)?;
                        ws.pc += 1;
                        ran = true;
                    }
                }
            }
        }
    }
}

/// Register an arrival on a barrier; returns true if the barrier completed
/// (and was reset) as a result.
pub(crate) fn barrier_arrive(
    barriers: &mut [BarrierState],
    bar: u8,
    expected: u16,
) -> SimResult<bool> {
    let b = barriers
        .get_mut(bar as usize)
        .ok_or(SimError::BarrierMismatch { bar, msg: "barrier id out of range".into() })?;
    if let Some(e) = b.expected {
        if e != expected {
            return Err(SimError::BarrierMismatch {
                bar,
                msg: format!("expected-count mismatch: {e} vs {expected}"),
            });
        }
    } else {
        b.expected = Some(expected);
    }
    b.arrived += 1;
    if b.arrived >= expected {
        b.arrived = 0;
        b.expected = None;
        b.generation += 1;
        Ok(true)
    } else {
        Ok(false)
    }
}

/// Snapshot an operand's 32 lane values from the contiguous register file.
/// Copying first makes destination aliasing trivially safe while keeping
/// the arithmetic loops over plain contiguous slices. The hot paths use
/// [`operand`] instead, which borrows the chunk without copying when it
/// provably cannot alias the destination.
#[inline]
pub(crate) fn src_vals(dregs: &[f64], tail: &[f64], s: Src) -> [f64; WARP_SIZE] {
    match s {
        Src::Reg(base) if base < dregs.len() => {
            dregs[base..base + WARP_SIZE].try_into().expect("warp slice")
        }
        Src::Reg(base) => {
            let t = base - dregs.len();
            tail[t..t + WARP_SIZE].try_into().expect("tail slice")
        }
        Src::Imm(v) => [v; WARP_SIZE],
    }
}

/// Resolve one operand for a lane kernel: immediates splat into an owned
/// chunk, register operands whose range intersects either excluded
/// destination range are snapshotted, and everything else is handed out as
/// a zero-copy borrow of the live register file. Register indices at or
/// past `len` address the engine's shared read-only constant tail of
/// pre-splatted immediates (`tail`), which no destination can alias; the
/// interpreter passes an empty tail and never takes that branch.
///
/// # Safety
///
/// `ptr` must point at a live `[f64; len]` register file with no other
/// active references. While the returned [`lanes::OpLanes::Ref`] is alive
/// the caller may create mutable chunk views only at the excluded
/// destinations (`excl`), which are guaranteed disjoint from it.
#[inline(always)]
pub(crate) unsafe fn operand<'a>(
    ptr: *const f64,
    len: usize,
    tail: &'a [f64],
    s: Src,
    excl: [usize; 2],
) -> lanes::OpLanes<'a> {
    match s {
        Src::Imm(v) => lanes::OpLanes::Own([v; WARP_SIZE]),
        Src::Reg(base) if base >= len => {
            let t = base - len;
            let chunk: &'a [f64] = &tail[t..t + WARP_SIZE];
            lanes::OpLanes::Ref(chunk.try_into().expect("tail chunk"))
        }
        Src::Reg(base) => {
            assert!(base + WARP_SIZE <= len, "dreg operand chunk out of range");
            let r: &'a Lanes = &*(ptr.add(base) as *const Lanes);
            let hits = |d: usize| base < d + WARP_SIZE && d < base + WARP_SIZE;
            if hits(excl[0]) || hits(excl[1]) {
                lanes::OpLanes::Own(*r)
            } else {
                lanes::OpLanes::Ref(r)
            }
        }
    }
}

/// Mutable view of one destination register chunk.
///
/// # Safety
///
/// `ptr` must point at a live `[f64; len]` register file; the caller must
/// ensure no other live reference overlaps the `dst` chunk (operands from
/// [`operand`] with `dst` excluded satisfy this).
#[inline(always)]
pub(crate) unsafe fn out_chunk<'a>(ptr: *mut f64, len: usize, dst: usize) -> &'a mut Lanes {
    assert!(dst + WARP_SIZE <= len, "dreg destination chunk out of range");
    &mut *(ptr.add(dst) as *mut Lanes)
}

pub(crate) fn cmp_kind(cmp: Cmp) -> lanes::CmpKind {
    match cmp {
        Cmp::Lt => lanes::CmpKind::Lt,
        Cmp::Le => lanes::CmpKind::Le,
        Cmp::Gt => lanes::CmpKind::Gt,
        Cmp::Ge => lanes::CmpKind::Ge,
        Cmp::Eq => lanes::CmpKind::Eq,
        Cmp::Ne => lanes::CmpKind::Ne,
    }
}

/// Execute a pre-decoded register-only instruction over the fixed-size
/// lane-chunk kernels in [`crate::lanes`]: exact 32-lane trip counts, no
/// per-lane bounds checks, zero-copy operands when they cannot alias the
/// destination, and runtime-dispatched AVX2+FMA bodies for the IEEE-exact
/// operations. Takes the register/local lanes directly so the
/// segment-compiled engine shares this exact code path (identical
/// floating-point behavior by construction). Inlined into both dispatch
/// loops so the decoded form never round-trips through memory.
#[inline(always)]
pub(crate) fn exec_fast(
    dec: DecodedInstr,
    dregs: &mut [f64],
    tail: &[f64],
    local: &mut [f64],
    collect: bool,
    counts: &mut EventCounts,
) -> SimResult<()> {
    let len = dregs.len();
    let ptr = dregs.as_mut_ptr();
    // SAFETY (all blocks below): register chunks are WARP_SIZE-element
    // regions of one live register file; `operand` snapshots any operand
    // whose range intersects the destination, so the `out_chunk` view is
    // the only live mutable reference to that memory, and bounds are
    // asserted exactly where slice indexing used to panic.
    match dec {
        DecodedInstr::Bin { kind, dst, a, b } => unsafe {
            // Register chunks are WARP_SIZE-aligned, so a register
            // operand either *is* the destination chunk or is disjoint
            // from it. The lowered DME streams are accumulator-heavy
            // (two thirds of register operands alias their destination),
            // so the IEEE-exact kinds route aliased shapes to in-place
            // kernels instead of snapshotting 256 bytes per operand.
            let arith = match kind {
                BinKind::Add => Some(lanes::ArithKind::Add),
                BinKind::Sub => Some(lanes::ArithKind::Sub),
                BinKind::Mul => Some(lanes::ArithKind::Mul),
                BinKind::Div => Some(lanes::ArithKind::Div),
                BinKind::Pow | BinKind::Max | BinKind::Min => None,
            };
            let a_is_d = matches!(a, Src::Reg(r) if r == dst);
            let b_is_d = matches!(b, Src::Reg(r) if r == dst);
            match (arith, a_is_d, b_is_d) {
                (Some(k), true, false) => {
                    let bv = operand(ptr, len, tail, b, [dst, dst]);
                    lanes::bin_in_a(k, out_chunk(ptr, len, dst), bv.get());
                }
                (Some(k), false, true) => {
                    let av = operand(ptr, len, tail, a, [dst, dst]);
                    lanes::bin_in_b(k, av.get(), out_chunk(ptr, len, dst));
                }
                (Some(k), true, true) => {
                    lanes::bin_in_aa(k, out_chunk(ptr, len, dst));
                }
                _ => {
                    let av = operand(ptr, len, tail, a, [dst, dst]);
                    let bv = operand(ptr, len, tail, b, [dst, dst]);
                    let (av, bv) = (av.get(), bv.get());
                    let out = out_chunk(ptr, len, dst);
                    match kind {
                        BinKind::Add => lanes::add(av, bv, out),
                        BinKind::Sub => lanes::sub(av, bv, out),
                        BinKind::Mul => lanes::mul(av, bv, out),
                        BinKind::Div => lanes::div(av, bv, out),
                        // `powf` is a libm call per lane — opaque to the
                        // vectorizer, so the loop is identical in both
                        // compiled copies of the dispatch loops.
                        // `max`/`min` lower to LLVM intrinsics whose
                        // vector forms are not ±0-exact, so they live
                        // behind `#[inline(never)]` in `lanes`.
                        BinKind::Pow => {
                            for l in 0..WARP_SIZE {
                                out[l] = av[l].powf(bv[l]);
                            }
                        }
                        BinKind::Max => lanes::max(av, bv, out),
                        BinKind::Min => lanes::min(av, bv, out),
                    }
                }
            }
        },
        DecodedInstr::Un { kind, dst, a } => unsafe {
            let av = operand(ptr, len, tail, a, [dst, dst]);
            let av = av.get();
            let out = out_chunk(ptr, len, dst);
            match kind {
                UnKind::Mov => *out = *av,
                UnKind::Sqrt => lanes::sqrt(av, out),
                UnKind::Neg => lanes::neg(av, out),
                // Transcendentals define the simulator's numerics. `exp`
                // routes through `vmath` so every call site (this fast
                // path, the engine's scalar and batched exp uops, and the
                // lowering rewrite gate) shares one per-process
                // implementation — libm by default, the polynomial AVX2
                // family when the `vexp` feature selects it. The rest
                // stay scalar libm.
                UnKind::Exp => crate::vmath::exp_lanes(av, out),
                UnKind::Log => {
                    for l in 0..WARP_SIZE {
                        out[l] = av[l].ln();
                    }
                }
                UnKind::Log10 => {
                    for l in 0..WARP_SIZE {
                        out[l] = av[l].log10();
                    }
                }
                UnKind::Cbrt => {
                    for l in 0..WARP_SIZE {
                        out[l] = av[l].cbrt();
                    }
                }
            }
        },
        DecodedInstr::Fma { dst, a, b, c } => unsafe {
            // Same aliasing structure as `Bin`: route the two dominant
            // multiply-accumulate shapes in place, snapshot the rest.
            let a_is_d = matches!(a, Src::Reg(r) if r == dst);
            let b_is_d = matches!(b, Src::Reg(r) if r == dst);
            let c_is_d = matches!(c, Src::Reg(r) if r == dst);
            match (a_is_d, b_is_d, c_is_d) {
                (false, false, true) => {
                    let av = operand(ptr, len, tail, a, [dst, dst]);
                    let bv = operand(ptr, len, tail, b, [dst, dst]);
                    lanes::fma_in_c(av.get(), bv.get(), out_chunk(ptr, len, dst));
                }
                (true, false, false) => {
                    let bv = operand(ptr, len, tail, b, [dst, dst]);
                    let cv = operand(ptr, len, tail, c, [dst, dst]);
                    lanes::fma_in_a(out_chunk(ptr, len, dst), bv.get(), cv.get());
                }
                _ => {
                    let av = operand(ptr, len, tail, a, [dst, dst]);
                    let bv = operand(ptr, len, tail, b, [dst, dst]);
                    let cv = operand(ptr, len, tail, c, [dst, dst]);
                    lanes::fma(av.get(), bv.get(), cv.get(), out_chunk(ptr, len, dst));
                }
            }
        },
        DecodedInstr::Sel { dst, pred, a, b } => unsafe {
            let pv = operand(ptr, len, tail, Src::Reg(pred), [dst, dst]);
            let av = operand(ptr, len, tail, a, [dst, dst]);
            let bv = operand(ptr, len, tail, b, [dst, dst]);
            lanes::sel(pv.get(), av.get(), bv.get(), out_chunk(ptr, len, dst));
        },
        DecodedInstr::CmpOp { dst, cmp, a, b } => unsafe {
            let av = operand(ptr, len, tail, a, [dst, dst]);
            let bv = operand(ptr, len, tail, b, [dst, dst]);
            lanes::cmp(cmp_kind(cmp), av.get(), bv.get(), out_chunk(ptr, len, dst));
        },
        DecodedInstr::Shfl { dst, src, lane } => {
            let v = dregs[src + lane];
            dregs[dst..dst + WARP_SIZE].fill(v);
        }
        DecodedInstr::LdLocal { dst, slot } => {
            dregs[dst..dst + WARP_SIZE].copy_from_slice(&local[slot..slot + WARP_SIZE]);
            if collect {
                counts.local_bytes += (WARP_SIZE * 8) as u64;
            }
        }
        DecodedInstr::StLocal { src, slot } => {
            let sv = src_vals(dregs, tail, src);
            local[slot..slot + WARP_SIZE].copy_from_slice(&sv);
            if collect {
                counts.local_bytes += (WARP_SIZE * 8) as u64;
            }
        }
        DecodedInstr::Invalid { space, addr, limit } => {
            return Err(SimError::OutOfBounds { space, addr, limit });
        }
        DecodedInstr::BarArrive { .. }
        | DecodedInstr::BarSync { .. }
        | DecodedInstr::BarArriveStage { .. }
        | DecodedInstr::BarSyncStage { .. }
        | DecodedInstr::Slow => {
            unreachable!("handled by scheduler / slow path")
        }
    }
    Ok(())
}

/// Execute an instruction the fast path does not cover (memory, constant
/// and index operations, with their error paths). Event-count preambles
/// are applied by the scheduler from the precomputed cost table.
#[allow(clippy::too_many_arguments)]
fn exec_slow(
    kernel: &Kernel,
    ins: &Instr,
    pset: u32,
    inputs: &[&[f64]],
    total_points: usize,
    base_point: usize,
    wid: usize,
    warp: &mut WarpState,
    shared: &mut [f64],
    out_buffers: &mut [Vec<f64>],
    ccache: &mut ConstCache,
    bank_base: &[u64],
    collect: bool,
    counts: &mut EventCounts,
    profiler: Option<&mut Profiler>,
) -> SimResult<()> {
    let nd = kernel.dregs_per_thread;
    let ni = kernel.iregs_per_thread;
    macro_rules! d {
        ($r:expr, $l:expr) => {
            warp.dregs[$r as usize * WARP_SIZE + $l]
        };
    }
    macro_rules! i32v {
        ($r:expr, $l:expr) => {
            warp.iregs[$r as usize * WARP_SIZE + $l]
        };
    }
    let val = |warp: &WarpState, o: &Op, l: usize| -> f64 {
        match o {
            Op::Reg(r) => warp.dregs[*r as usize * WARP_SIZE + l],
            Op::Imm(v) => *v,
        }
    };
    let ival = |warp: &WarpState, o: &IdxOp, l: usize| -> u32 {
        match o {
            IdxOp::Imm(v) => *v,
            IdxOp::Reg(r) => warp.iregs[*r as usize * WARP_SIZE + l],
        }
    };
    let chk_d = |r: Reg| -> SimResult<()> {
        if (r as usize) < nd {
            Ok(())
        } else {
            Err(SimError::OutOfBounds { space: "dreg", addr: r as usize, limit: nd })
        }
    };
    let chk_i = |r: IdxReg| -> SimResult<()> {
        if (r as usize) < ni {
            Ok(())
        } else {
            Err(SimError::OutOfBounds { space: "ireg", addr: r as usize, limit: ni })
        }
    };

    // Resolve the global point index for a lane.
    let point_of = |warp: &WarpState, p: &PointRef, l: usize| -> usize {
        match p {
            PointRef::Lane => base_point + pset as usize * WARP_SIZE + l,
            PointRef::Thread => base_point + wid * WARP_SIZE + l,
            PointRef::Reg(r) => warp.iregs[*r as usize * WARP_SIZE + l] as usize,
        }
    };
    // Flat element index into an SoA array.
    let gindex = |warp: &WarpState, a: &GAddr, l: usize| -> usize {
        let row = ival(warp, &a.row, l) as usize;
        row * total_points + point_of(warp, &a.point, l)
    };

    match ins {
        Instr::DMov { dst, src } => {
            chk_d(*dst)?;
            for l in 0..WARP_SIZE {
                d!(*dst, l) = val(warp, src, l);
            }
        }
        Instr::DAdd { dst, a, b } => {
            chk_d(*dst)?;
            for l in 0..WARP_SIZE {
                d!(*dst, l) = val(warp, a, l) + val(warp, b, l);
            }
        }
        Instr::DSub { dst, a, b } => {
            chk_d(*dst)?;
            for l in 0..WARP_SIZE {
                d!(*dst, l) = val(warp, a, l) - val(warp, b, l);
            }
        }
        Instr::DMul { dst, a, b } => {
            chk_d(*dst)?;
            for l in 0..WARP_SIZE {
                d!(*dst, l) = val(warp, a, l) * val(warp, b, l);
            }
        }
        Instr::DFma { dst, a, b, c, .. } => {
            chk_d(*dst)?;
            for l in 0..WARP_SIZE {
                d!(*dst, l) = val(warp, a, l).mul_add(val(warp, b, l), val(warp, c, l));
            }
        }
        Instr::DDiv { dst, a, b } => {
            chk_d(*dst)?;
            for l in 0..WARP_SIZE {
                d!(*dst, l) = val(warp, a, l) / val(warp, b, l);
            }
        }
        Instr::DSqrt { dst, a } => {
            chk_d(*dst)?;
            for l in 0..WARP_SIZE {
                d!(*dst, l) = val(warp, a, l).sqrt();
            }
        }
        Instr::DExp { dst, a } => {
            chk_d(*dst)?;
            for l in 0..WARP_SIZE {
                d!(*dst, l) = val(warp, a, l).exp();
            }
        }
        Instr::DLog { dst, a } => {
            chk_d(*dst)?;
            for l in 0..WARP_SIZE {
                d!(*dst, l) = val(warp, a, l).ln();
            }
        }
        Instr::DLog10 { dst, a } => {
            chk_d(*dst)?;
            for l in 0..WARP_SIZE {
                d!(*dst, l) = val(warp, a, l).log10();
            }
        }
        Instr::DCbrt { dst, a } => {
            chk_d(*dst)?;
            for l in 0..WARP_SIZE {
                d!(*dst, l) = val(warp, a, l).cbrt();
            }
        }
        Instr::DPow { dst, a, b } => {
            chk_d(*dst)?;
            for l in 0..WARP_SIZE {
                d!(*dst, l) = val(warp, a, l).powf(val(warp, b, l));
            }
        }
        Instr::DMax { dst, a, b } => {
            chk_d(*dst)?;
            for l in 0..WARP_SIZE {
                d!(*dst, l) = val(warp, a, l).max(val(warp, b, l));
            }
        }
        Instr::DMin { dst, a, b } => {
            chk_d(*dst)?;
            for l in 0..WARP_SIZE {
                d!(*dst, l) = val(warp, a, l).min(val(warp, b, l));
            }
        }
        Instr::DNeg { dst, a } => {
            chk_d(*dst)?;
            for l in 0..WARP_SIZE {
                d!(*dst, l) = -val(warp, a, l);
            }
        }
        Instr::DSel { dst, pred, a, b } => {
            chk_d(*dst)?;
            chk_d(*pred)?;
            for l in 0..WARP_SIZE {
                let p = d!(*pred, l);
                d!(*dst, l) = if p != 0.0 { val(warp, a, l) } else { val(warp, b, l) };
            }
        }
        Instr::DCmp { dst, cmp, a, b } => {
            chk_d(*dst)?;
            for l in 0..WARP_SIZE {
                let (x, y) = (val(warp, a, l), val(warp, b, l));
                let t = match cmp {
                    Cmp::Lt => x < y,
                    Cmp::Le => x <= y,
                    Cmp::Gt => x > y,
                    Cmp::Ge => x >= y,
                    Cmp::Eq => x == y,
                    Cmp::Ne => x != y,
                };
                d!(*dst, l) = if t { 1.0 } else { 0.0 };
            }
        }
        Instr::LdGlobal { dst, addr, .. } => {
            chk_d(*dst)?;
            let decl = &kernel.global_arrays[addr.array.0];
            let mut idxs = [0usize; WARP_SIZE];
            for (l, slot) in idxs.iter_mut().enumerate() {
                *slot = gindex(warp, addr, l);
            }
            for l in 0..WARP_SIZE {
                let idx = idxs[l];
                let v = if decl.output {
                    // Reading back an output: index into the CTA buffer.
                    let local = local_out_index(idx, total_points, base_point, kernel)?;
                    out_buffers[addr.array.0][local]
                } else {
                    *inputs[addr.array.0].get(idx).ok_or(SimError::OutOfBounds {
                        space: "global",
                        addr: idx,
                        limit: inputs[addr.array.0].len(),
                    })?
                };
                d!(*dst, l) = v;
            }
            if collect {
                let (tx, bytes) = coalesce(&idxs);
                counts.global_transactions += tx;
                counts.global_bytes += bytes;
            }
        }
        Instr::StGlobal { src, addr } => {
            let decl = &kernel.global_arrays[addr.array.0];
            if !decl.output {
                return Err(SimError::BadLaunch(format!(
                    "store to non-output array '{}'",
                    decl.name
                )));
            }
            let mut idxs = [0usize; WARP_SIZE];
            for (l, slot) in idxs.iter_mut().enumerate() {
                *slot = gindex(warp, addr, l);
            }
            for l in 0..WARP_SIZE {
                let local = local_out_index(idxs[l], total_points, base_point, kernel)?;
                let buf = &mut out_buffers[addr.array.0];
                if local >= buf.len() {
                    return Err(SimError::OutOfBounds {
                        space: "global-out",
                        addr: local,
                        limit: buf.len(),
                    });
                }
                buf[local] = val(warp, src, l);
            }
            if collect {
                let (tx, bytes) = coalesce(&idxs);
                counts.global_transactions += tx;
                counts.global_bytes += bytes;
            }
        }
        Instr::LdShared { dst, addr } => {
            chk_d(*dst)?;
            let mut addrs = [0usize; WARP_SIZE];
            for (l, slot) in addrs.iter_mut().enumerate() {
                let base = addr.base.map(|r| ival(warp, &IdxOp::Reg(r), l)).unwrap_or(0) as usize;
                *slot = base + addr.imm as usize + addr.lane_stride as usize * l;
            }
            for l in 0..WARP_SIZE {
                let a = addrs[l];
                if a >= shared.len() {
                    return Err(SimError::OutOfBounds { space: "shared", addr: a, limit: shared.len() });
                }
                d!(*dst, l) = shared[a];
            }
            if collect {
                let (tx, conf) = bank_transactions(&addrs, None);
                counts.shared_accesses += tx;
                counts.shared_conflicts += conf;
            }
        }
        Instr::StShared { src, addr, lane_pred } => {
            // A predicate naming a lane outside the warp used to silently
            // drop the store; it is a typed error now (the engine's
            // lowering raises the same error at the same point).
            if let Some(p) = lane_pred {
                if *p as usize >= WARP_SIZE {
                    return Err(SimError::OutOfBounds {
                        space: "lane-pred",
                        addr: *p as usize,
                        limit: WARP_SIZE,
                    });
                }
            }
            let mut addrs = [0usize; WARP_SIZE];
            for (l, slot) in addrs.iter_mut().enumerate() {
                let base = addr.base.map(|r| ival(warp, &IdxOp::Reg(r), l)).unwrap_or(0) as usize;
                *slot = base + addr.imm as usize + addr.lane_stride as usize * l;
            }
            for l in 0..WARP_SIZE {
                if let Some(p) = lane_pred {
                    if *p as usize != l {
                        continue;
                    }
                }
                let a = addrs[l];
                if a >= shared.len() {
                    return Err(SimError::OutOfBounds { space: "shared", addr: a, limit: shared.len() });
                }
                shared[a] = val(warp, src, l);
            }
            if collect {
                let (tx, conf) = bank_transactions(&addrs, *lane_pred);
                counts.shared_accesses += tx;
                counts.shared_conflicts += conf;
            }
        }
        Instr::LdConst { dst, bank, idx } => {
            chk_d(*dst)?;
            let bankv = kernel.const_banks.get(*bank as usize).ok_or(SimError::OutOfBounds {
                space: "const-bank",
                addr: *bank as usize,
                limit: kernel.const_banks.len(),
            })?;
            let mut lines: Vec<u64> = Vec::new();
            for l in 0..WARP_SIZE {
                let i = ival(warp, idx, l) as usize;
                let v = *bankv.get(i).ok_or(SimError::OutOfBounds {
                    space: "const",
                    addr: i,
                    limit: bankv.len(),
                })?;
                d!(*dst, l) = v;
                if collect {
                    // One cache access per distinct line touched by the
                    // warp (lanes reading the same constant broadcast).
                    let line = (bank_base[*bank as usize] + (i * 8) as u64) / 64;
                    if !lines.contains(&line) {
                        lines.push(line);
                    }
                }
            }
            if collect {
                let mut line_misses = 0u64;
                let n_lines = lines.len() as u64;
                for line in lines {
                    if !ccache.access(line * 64) {
                        line_misses += 1;
                    }
                }
                if let Some(p) = profiler {
                    p.on_const_replay(wid, n_lines, line_misses);
                }
            }
        }
        Instr::LdLocal { dst, slot } => {
            chk_d(*dst)?;
            let lw = kernel.local_words_per_thread;
            if *slot as usize >= lw {
                return Err(SimError::OutOfBounds { space: "local", addr: *slot as usize, limit: lw });
            }
            for l in 0..WARP_SIZE {
                d!(*dst, l) = warp.local[*slot as usize * WARP_SIZE + l];
            }
            if collect {
                counts.local_bytes += (WARP_SIZE * 8) as u64;
            }
        }
        Instr::StLocal { src, slot } => {
            let lw = kernel.local_words_per_thread;
            if *slot as usize >= lw {
                return Err(SimError::OutOfBounds { space: "local", addr: *slot as usize, limit: lw });
            }
            for l in 0..WARP_SIZE {
                warp.local[*slot as usize * WARP_SIZE + l] = val(warp, src, l);
            }
            if collect {
                counts.local_bytes += (WARP_SIZE * 8) as u64;
            }
        }
        Instr::Shfl { dst, src, lane } => {
            chk_d(*dst)?;
            chk_d(*src)?;
            let v = d!(*src, *lane as usize);
            for l in 0..WARP_SIZE {
                d!(*dst, l) = v;
            }
        }
        Instr::Idx(ii) => match ii {
            IdxInstr::Mov { dst, src } => {
                chk_i(*dst)?;
                for l in 0..WARP_SIZE {
                    i32v!(*dst, l) = ival(warp, src, l);
                }
            }
            IdxInstr::Add { dst, a, b } => {
                chk_i(*dst)?;
                for l in 0..WARP_SIZE {
                    i32v!(*dst, l) = ival(warp, a, l).wrapping_add(ival(warp, b, l));
                }
            }
            IdxInstr::Mul { dst, a, b } => {
                chk_i(*dst)?;
                for l in 0..WARP_SIZE {
                    i32v!(*dst, l) = ival(warp, a, l).wrapping_mul(ival(warp, b, l));
                }
            }
            IdxInstr::LaneId { dst } => {
                chk_i(*dst)?;
                for l in 0..WARP_SIZE {
                    i32v!(*dst, l) = l as u32;
                }
            }
            IdxInstr::WarpId { dst } => {
                chk_i(*dst)?;
                for l in 0..WARP_SIZE {
                    i32v!(*dst, l) = wid as u32;
                }
            }
            IdxInstr::LdConst { dst, bank, idx } => {
                chk_i(*dst)?;
                let bankv =
                    kernel.iconst_banks.get(*bank as usize).ok_or(SimError::OutOfBounds {
                        space: "iconst-bank",
                        addr: *bank as usize,
                        limit: kernel.iconst_banks.len(),
                    })?;
                for l in 0..WARP_SIZE {
                    let i = ival(warp, idx, l) as usize;
                    i32v!(*dst, l) = *bankv.get(i).ok_or(SimError::OutOfBounds {
                        space: "iconst",
                        addr: i,
                        limit: bankv.len(),
                    })?;
                }
            }
            IdxInstr::Shfl { dst, src, lane } => {
                chk_i(*dst)?;
                chk_i(*src)?;
                let v = i32v!(*src, *lane as usize);
                for l in 0..WARP_SIZE {
                    i32v!(*dst, l) = v;
                }
            }
            IdxInstr::PipeOff { dst, k, stride } => {
                chk_i(*dst)?;
                let v = (pset % u32::from((*k).max(1))).wrapping_mul(*stride);
                for l in 0..WARP_SIZE {
                    i32v!(*dst, l) = v;
                }
            }
        },
        Instr::CpAsync { addr, array, row, point } => {
            // One value per lane moves global -> shared without touching a
            // register. Functionally immediate; the copy is costed as one
            // coalesced global read plus one shared store.
            let decl = &kernel.global_arrays[array.0];
            let ga = GAddr { array: *array, row: *row, point: *point };
            let mut idxs = [0usize; WARP_SIZE];
            for (l, slot) in idxs.iter_mut().enumerate() {
                *slot = gindex(warp, &ga, l);
            }
            let mut saddrs = [0usize; WARP_SIZE];
            for (l, slot) in saddrs.iter_mut().enumerate() {
                let base = addr.base.map(|r| ival(warp, &IdxOp::Reg(r), l)).unwrap_or(0) as usize;
                *slot = base + addr.imm as usize + addr.lane_stride as usize * l;
            }
            for l in 0..WARP_SIZE {
                let idx = idxs[l];
                let v = if decl.output {
                    let local = local_out_index(idx, total_points, base_point, kernel)?;
                    out_buffers[array.0][local]
                } else {
                    *inputs[array.0].get(idx).ok_or(SimError::OutOfBounds {
                        space: "global",
                        addr: idx,
                        limit: inputs[array.0].len(),
                    })?
                };
                let a = saddrs[l];
                if a >= shared.len() {
                    return Err(SimError::OutOfBounds {
                        space: "shared",
                        addr: a,
                        limit: shared.len(),
                    });
                }
                shared[a] = v;
            }
            if collect {
                let (tx, bytes) = coalesce(&idxs);
                counts.global_transactions += tx;
                counts.global_bytes += bytes;
                let (tx, conf) = bank_transactions(&saddrs, None);
                counts.shared_accesses += tx;
                counts.shared_conflicts += conf;
            }
        }
        Instr::BarArrive { .. }
        | Instr::BarSync { .. }
        | Instr::BarArriveStage { .. }
        | Instr::BarSyncStage { .. } => unreachable!("handled by scheduler"),
    }
    Ok(())
}

/// Translate a global SoA element index into a CTA output-buffer index.
pub(crate) fn local_out_index(
    idx: usize,
    total_points: usize,
    base_point: usize,
    kernel: &Kernel,
) -> SimResult<usize> {
    let row = idx / total_points;
    let point = idx % total_points;
    if point < base_point || point >= base_point + kernel.points_per_cta {
        return Err(SimError::OutOfBounds {
            space: "cta-point",
            addr: point,
            limit: base_point + kernel.points_per_cta,
        });
    }
    Ok(row * kernel.points_per_cta + (point - base_point))
}

/// Count 128-byte global transactions for 32 lane element indices.
pub(crate) fn coalesce(idxs: &[usize; WARP_SIZE]) -> (u64, u64) {
    let mut segs: Vec<usize> = idxs.iter().map(|i| i * 8 / 128).collect();
    segs.sort_unstable();
    segs.dedup();
    let tx = segs.len() as u64;
    (tx, tx * 128)
}

/// Shared-memory bank transactions: 32 banks, 8-byte words; the number of
/// replays is the maximum number of *distinct* addresses mapping to one
/// bank (same-address access broadcasts). Returns `(transactions,
/// conflict_replays)`.
pub(crate) fn bank_transactions(addrs: &[usize; WARP_SIZE], lane_pred: Option<u8>) -> (u64, u64) {
    let mut per_bank: [Vec<usize>; 32] = Default::default();
    for (l, &a) in addrs.iter().enumerate() {
        if let Some(p) = lane_pred {
            if p as usize != l {
                continue;
            }
        }
        let bank = a % 32;
        if !per_bank[bank].contains(&a) {
            per_bank[bank].push(a);
        }
    }
    let max = per_bank.iter().map(|v| v.len()).max().unwrap_or(0).max(1);
    (max as u64, (max - 1) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::GpuArch;

    fn base_kernel(warps: usize) -> Kernel {
        Kernel {
            name: "t".into(),
            body: vec![],
            warps_per_cta: warps,
            points_per_cta: 32,
            dregs_per_thread: 8,
            iregs_per_thread: 4,
            shared_words: 128,
            local_words_per_thread: 2,
            const_banks: vec![vec![1.5, 2.5, 3.5]],
            iconst_banks: vec![vec![7, 8, 9]],
            barriers_used: 4,
            global_arrays: vec![
                ArrayDecl { name: "in".into(), rows: 2, output: false },
                ArrayDecl { name: "out".into(), rows: 1, output: true },
            ],
            spilled_bytes_per_thread: 0,
            exp_const_from_registers: false,
        }
    }

    fn run(kernel: &Kernel, input: &[f64]) -> SimResult<CtaResult> {
        let prog = flatten(kernel);
        let arch = GpuArch::kepler_k20c();
        run_cta(kernel, &prog, &[input, &[]], 32, 0, true, &arch)
    }

    #[test]
    fn arithmetic_roundtrip_through_global() {
        // out[0][p] = in[0][p] * 2 + in[1][p]
        let mut k = base_kernel(1);
        k.body = vec![
            Node::Op(Instr::LdGlobal {
                dst: 0,
                addr: GAddr { array: GlobalId(0), row: IdxOp::Imm(0), point: PointRef::Lane },
                ldg: false,
            }),
            Node::Op(Instr::LdGlobal {
                dst: 1,
                addr: GAddr { array: GlobalId(0), row: IdxOp::Imm(1), point: PointRef::Lane },
                ldg: false,
            }),
            Node::Op(Instr::DFma { dst: 2, a: Op::Reg(0), b: Op::Imm(2.0), c: Op::Reg(1), const_c: false }),
            Node::Op(Instr::StGlobal {
                src: Op::Reg(2),
                addr: GAddr { array: GlobalId(1), row: IdxOp::Imm(0), point: PointRef::Lane },
            }),
        ];
        let input: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let r = run(&k, &input).unwrap();
        for p in 0..32 {
            assert_eq!(r.out_buffers[1][p], input[p] * 2.0 + input[32 + p]);
        }
        assert!(r.counts.flops > 0);
        assert_eq!(r.counts.global_transactions, 3 * 2); // 32 doubles = 2 x 128B
    }

    #[test]
    fn warp_if_masks_execution() {
        let mut k = base_kernel(2);
        k.body = vec![
            Node::Op(Instr::DMov { dst: 0, src: Op::Imm(1.0) }),
            Node::WarpIf {
                mask: 0b10,
                body: vec![Node::Op(Instr::DMov { dst: 0, src: Op::Imm(5.0) })],
            },
            // Each warp stores its r0 to shared[warp].
            Node::Op(Instr::Idx(IdxInstr::WarpId { dst: 0 })),
            Node::Op(Instr::StShared {
                src: Op::Reg(0),
                addr: SAddr { base: Some(0), imm: 0, lane_stride: 0 },
                lane_pred: Some(0),
            }),
        ];
        let prog = flatten(&k);
        // Warp 0 skips the masked block: its stream is shorter.
        assert!(prog.streams[0].len() < prog.streams[1].len());
        let arch = GpuArch::kepler_k20c();
        let input: Vec<f64> = vec![0.0; 64];
        let r = run_cta(&k, &prog, &[&input, &[]], 32, 0, false, &arch).unwrap();
        let _ = r;
    }

    #[test]
    fn producer_consumer_named_barriers() {
        // Figure 2's protocol: producer warp 0 fills a shared buffer, then
        // arrives on barrier 0; consumer warp 1 syncs on barrier 0, reads,
        // writes output. Also exercise the empty-signal barrier 1.
        let mut k = base_kernel(2);
        k.points_per_cta = 32;
        k.body = vec![
            // Consumer signals "buffer empty" (non-blocking arrive).
            Node::WarpIf {
                mask: 0b10,
                body: vec![Node::Op(Instr::BarArrive { bar: 1, warps: 2 })],
            },
            // Producer waits for empty, fills buffer, signals full.
            Node::WarpIf {
                mask: 0b01,
                body: vec![
                    Node::Op(Instr::BarSync { bar: 1, warps: 2 }),
                    Node::Op(Instr::LdGlobal {
                        dst: 0,
                        addr: GAddr { array: GlobalId(0), row: IdxOp::Imm(0), point: PointRef::Lane },
                        ldg: false,
                    }),
                    Node::Op(Instr::DMul { dst: 0, a: Op::Reg(0), b: Op::Imm(3.0) }),
                    Node::Op(Instr::StShared { src: Op::Reg(0), addr: SAddr::lane(0), lane_pred: None }),
                    Node::Op(Instr::BarArrive { bar: 0, warps: 2 }),
                ],
            },
            // Consumer waits for full, reads, stores.
            Node::WarpIf {
                mask: 0b10,
                body: vec![
                    Node::Op(Instr::BarSync { bar: 0, warps: 2 }),
                    Node::Op(Instr::LdShared { dst: 1, addr: SAddr::lane(0) }),
                    Node::Op(Instr::StGlobal {
                        src: Op::Reg(1),
                        addr: GAddr { array: GlobalId(1), row: IdxOp::Imm(0), point: PointRef::Lane },
                    }),
                ],
            },
        ];
        let input: Vec<f64> = (0..64).map(|i| i as f64 + 1.0).collect();
        let r = run(&k, &input).unwrap();
        for p in 0..32 {
            assert_eq!(r.out_buffers[1][p], (p as f64 + 1.0) * 3.0);
        }
        assert!(r.counts.barrier_syncs >= 2);
        assert!(r.counts.barrier_arrives >= 2);
    }

    #[test]
    fn profiler_attributes_producer_consumer_waits() {
        // Same Figure 2 protocol as above, but run with the
        // cycle-attribution profiler: the consumer warp must be charged a
        // wait on barrier 0 (it syncs before the producer has filled the
        // buffer), and every warp's attributed reasons must sum to the
        // CTA total.
        let mut k = base_kernel(2);
        k.points_per_cta = 32;
        k.body = vec![
            Node::WarpIf {
                mask: 0b10,
                body: vec![Node::Op(Instr::BarArrive { bar: 1, warps: 2 })],
            },
            Node::WarpIf {
                mask: 0b01,
                body: vec![
                    Node::Op(Instr::BarSync { bar: 1, warps: 2 }),
                    Node::Op(Instr::LdGlobal {
                        dst: 0,
                        addr: GAddr { array: GlobalId(0), row: IdxOp::Imm(0), point: PointRef::Lane },
                        ldg: false,
                    }),
                    Node::Op(Instr::DMul { dst: 0, a: Op::Reg(0), b: Op::Imm(3.0) }),
                    Node::Op(Instr::StShared { src: Op::Reg(0), addr: SAddr::lane(0), lane_pred: None }),
                    Node::Op(Instr::BarArrive { bar: 0, warps: 2 }),
                ],
            },
            Node::WarpIf {
                mask: 0b10,
                body: vec![
                    Node::Op(Instr::BarSync { bar: 0, warps: 2 }),
                    Node::Op(Instr::LdShared { dst: 1, addr: SAddr::lane(0) }),
                    Node::Op(Instr::StGlobal {
                        src: Op::Reg(1),
                        addr: GAddr { array: GlobalId(1), row: IdxOp::Imm(0), point: PointRef::Lane },
                    }),
                ],
            },
        ];
        let input: Vec<f64> = (0..64).map(|i| i as f64 + 1.0).collect();
        let prog = flatten(&k);
        let arch = GpuArch::kepler_k20c();
        let mut profiler = Profiler::new(2, 16, true, &arch);
        let r = run_cta_profiled(&k, &prog, &[&input, &[]], 32, 0, true, &arch, Some(&mut profiler))
            .unwrap();
        // Profiling must not perturb functional results.
        for p in 0..32 {
            assert_eq!(r.out_buffers[1][p], (p as f64 + 1.0) * 3.0);
        }
        let prof = profiler.finish();
        prof.check_attribution().unwrap();
        assert!(prof.total_cycles > 0);
        // The consumer (warp 1) blocked on barrier 0 while the producer
        // loaded/multiplied/stored; the producer never waits on barrier 0.
        assert!(prof.warps[1].barrier_wait[0] > 0, "{:?}", prof.warps[1]);
        assert_eq!(prof.warps[0].barrier_wait[0], 0);
        // Barrier instructions were charged as overhead.
        assert!(prof.warps[0].overhead > 0 && prof.warps[1].overhead > 0);
        // Event stream carries exec spans, a wait span, and barrier edges.
        use crate::profile::EventKind;
        let evs = &prof.events;
        assert!(evs.iter().any(|e| e.name == "exec" && e.kind == EventKind::Span));
        assert!(evs.iter().any(|e| e.name == "wait b0" && e.tid == 1));
        assert!(evs.iter().any(|e| e.name.starts_with("arrive b0")));
        // Deterministic: a second profiled run produces the same profile.
        let mut p2 = Profiler::new(2, 16, true, &arch);
        run_cta_profiled(&k, &prog, &[&input, &[]], 32, 0, true, &arch, Some(&mut p2)).unwrap();
        assert_eq!(p2.finish(), prof);
    }

    #[test]
    fn deadlock_detected() {
        // Both warps sync on a barrier expecting 3 warps — never satisfied.
        let mut k = base_kernel(2);
        k.body = vec![Node::Op(Instr::BarSync { bar: 0, warps: 3 })];
        let err = run(&k, &vec![0.0; 64]).unwrap_err();
        assert!(matches!(err, SimError::Deadlock { .. }), "{err}");
    }

    #[test]
    fn barrier_count_mismatch_detected() {
        let mut k = base_kernel(2);
        k.body = vec![
            Node::WarpIf { mask: 0b01, body: vec![Node::Op(Instr::BarSync { bar: 0, warps: 2 })] },
            Node::WarpIf { mask: 0b10, body: vec![Node::Op(Instr::BarSync { bar: 0, warps: 1 })] },
        ];
        // Warp 0 runs first and registers expected=2; warp 1 says 1.
        let err = run(&k, &vec![0.0; 64]).unwrap_err();
        assert!(matches!(err, SimError::BarrierMismatch { .. }), "{err}");
    }

    #[test]
    fn shuffle_broadcasts_from_lane() {
        let mut k = base_kernel(1);
        k.body = vec![
            Node::Op(Instr::Idx(IdxInstr::LaneId { dst: 0 })),
            // r0 = lane id as double via global trick: store lane to shared then read.
            Node::Op(Instr::LdGlobal {
                dst: 0,
                addr: GAddr { array: GlobalId(0), row: IdxOp::Imm(0), point: PointRef::Lane },
                ldg: false,
            }),
            Node::Op(Instr::Shfl { dst: 1, src: 0, lane: 5 }),
            Node::Op(Instr::StGlobal {
                src: Op::Reg(1),
                addr: GAddr { array: GlobalId(1), row: IdxOp::Imm(0), point: PointRef::Lane },
            }),
        ];
        let input: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let r = run(&k, &input).unwrap();
        for p in 0..32 {
            assert_eq!(r.out_buffers[1][p], 5.0);
        }
    }

    #[test]
    fn loop_repeats_with_static_addresses() {
        let mut k = base_kernel(1);
        k.body = vec![
            Node::Op(Instr::DMov { dst: 0, src: Op::Imm(0.0) }),
            Node::Loop {
                count: 5,
                body: vec![Node::Op(Instr::DAdd { dst: 0, a: Op::Reg(0), b: Op::Imm(2.0) })],
            },
            Node::Op(Instr::StGlobal {
                src: Op::Reg(0),
                addr: GAddr { array: GlobalId(1), row: IdxOp::Imm(0), point: PointRef::Lane },
            }),
        ];
        let prog = flatten(&k);
        // 1 mov + 5 adds + 1 store executed; static size 3.
        assert_eq!(prog.streams[0].len(), 7);
        assert_eq!(prog.static_size, 3);
        let r = run(&k, &vec![0.0; 64]).unwrap();
        assert_eq!(r.out_buffers[1][0], 10.0);
    }

    #[test]
    fn point_loop_advances_points() {
        let mut k = base_kernel(1);
        k.points_per_cta = 64; // two point sets
        k.body = vec![Node::PointLoop {
            iters: 2,
            body: vec![
                Node::Op(Instr::LdGlobal {
                    dst: 0,
                    addr: GAddr { array: GlobalId(0), row: IdxOp::Imm(0), point: PointRef::Lane },
                    ldg: false,
                }),
                Node::Op(Instr::DMul { dst: 0, a: Op::Reg(0), b: Op::Imm(10.0) }),
                Node::Op(Instr::StGlobal {
                    src: Op::Reg(0),
                    addr: GAddr { array: GlobalId(1), row: IdxOp::Imm(0), point: PointRef::Lane },
                }),
            ],
        }];
        let prog = flatten(&k);
        let arch = GpuArch::kepler_k20c();
        let input: Vec<f64> = (0..128).map(|i| i as f64).collect();
        let r = run_cta(&k, &prog, &[&input, &[]], 64, 0, false, &arch).unwrap();
        for p in 0..64 {
            assert_eq!(r.out_buffers[1][p], p as f64 * 10.0);
        }
    }

    #[test]
    fn bank_conflicts_counted() {
        // All 32 lanes hit bank 0 with distinct addresses: 32-way conflict.
        let mut k = base_kernel(1);
        k.shared_words = 32 * 32;
        k.body = vec![
            Node::Op(Instr::Idx(IdxInstr::LaneId { dst: 0 })),
            Node::Op(Instr::Idx(IdxInstr::Mul { dst: 1, a: IdxOp::Reg(0), b: IdxOp::Imm(32) })),
            Node::Op(Instr::StShared {
                src: Op::Imm(1.0),
                addr: SAddr { base: Some(1), imm: 0, lane_stride: 0 },
                lane_pred: None,
            }),
            Node::Op(Instr::LdShared { dst: 0, addr: SAddr::lane(0) }),
        ];
        let r = run(&k, &vec![0.0; 64]).unwrap();
        // Store: 32 distinct addresses in bank 0 => 32 transactions.
        // Load: lane-strided => 1 transaction.
        assert_eq!(r.counts.shared_accesses, 33);
        assert_eq!(r.counts.shared_conflicts, 31);
    }

    #[test]
    fn local_spill_roundtrip_and_traffic() {
        let mut k = base_kernel(1);
        k.body = vec![
            Node::Op(Instr::DMov { dst: 0, src: Op::Imm(7.5) }),
            Node::Op(Instr::StLocal { src: Op::Reg(0), slot: 1 }),
            Node::Op(Instr::DMov { dst: 0, src: Op::Imm(0.0) }),
            Node::Op(Instr::LdLocal { dst: 0, slot: 1 }),
            Node::Op(Instr::StGlobal {
                src: Op::Reg(0),
                addr: GAddr { array: GlobalId(1), row: IdxOp::Imm(0), point: PointRef::Lane },
            }),
        ];
        let r = run(&k, &vec![0.0; 64]).unwrap();
        assert_eq!(r.out_buffers[1][0], 7.5);
        assert_eq!(r.counts.local_bytes, 2 * 32 * 8);
    }

    #[test]
    fn const_load_striped_and_cached() {
        let mut k = base_kernel(1);
        k.const_banks = vec![(0..64).map(|i| i as f64).collect()];
        k.body = vec![
            Node::Op(Instr::Idx(IdxInstr::LaneId { dst: 0 })),
            Node::Op(Instr::LdConst { dst: 0, bank: 0, idx: IdxOp::Reg(0) }),
            Node::Op(Instr::StGlobal {
                src: Op::Reg(0),
                addr: GAddr { array: GlobalId(1), row: IdxOp::Imm(0), point: PointRef::Lane },
            }),
        ];
        let r = run(&k, &vec![0.0; 64]).unwrap();
        for p in 0..32 {
            assert_eq!(r.out_buffers[1][p], p as f64);
        }
        assert!(r.counts.const_misses > 0);
    }

    #[test]
    fn warp_switch_routes_cases() {
        let mut k = base_kernel(3);
        k.body = vec![
            Node::WarpSwitch {
                case_of_warp: vec![0, 1, 0],
                cases: vec![
                    vec![Node::Op(Instr::DMov { dst: 0, src: Op::Imm(10.0) })],
                    vec![Node::Op(Instr::DMov { dst: 0, src: Op::Imm(20.0) })],
                ],
            },
            Node::Op(Instr::Idx(IdxInstr::WarpId { dst: 0 })),
            Node::Op(Instr::StShared {
                src: Op::Reg(0),
                addr: SAddr { base: Some(0), imm: 0, lane_stride: 0 },
                lane_pred: Some(0),
            }),
            // Warp 0 collects all three values after a full barrier.
            Node::Op(Instr::BarSync { bar: 0, warps: 3 }),
            Node::WarpIf {
                mask: 0b001,
                body: vec![
                    Node::Op(Instr::LdShared { dst: 1, addr: SAddr::uniform(0) }),
                    Node::Op(Instr::LdShared { dst: 2, addr: SAddr::uniform(1) }),
                    Node::Op(Instr::LdShared { dst: 3, addr: SAddr::uniform(2) }),
                    Node::Op(Instr::DAdd { dst: 1, a: Op::Reg(1), b: Op::Reg(2) }),
                    Node::Op(Instr::DAdd { dst: 1, a: Op::Reg(1), b: Op::Reg(3) }),
                    Node::Op(Instr::StGlobal {
                        src: Op::Reg(1),
                        addr: GAddr { array: GlobalId(1), row: IdxOp::Imm(0), point: PointRef::Lane },
                    }),
                ],
            },
        ];
        let r = run(&k, &vec![0.0; 64]).unwrap();
        assert_eq!(r.out_buffers[1][0], 10.0 + 20.0 + 10.0);
    }
}
