//! Process-wide memoization of [`crate::interp::flatten`] and of the
//! segment-compiled engine lowering (`crate::engine`).
//!
//! Sweep-style workloads (autotuning, the figure harness, the verifier
//! sweep) launch the same kernel many times; re-flattening on every launch
//! re-expands every loop and rebuilds the pre-decoded side tables each
//! time. This cache keys a shared [`FlatProgram`] on a structural
//! fingerprint of the kernel, so repeated launches reuse one flatten.
//! Lowered engine programs are memoized by the same fingerprint (lowering
//! is arch/grid/CTA independent), so every CTA of every launch of one
//! kernel replays a single compiled artifact.
//!
//! The fingerprint covers every kernel field (f64s by bit pattern) and is
//! two independent 64-bit hashes, making accidental collisions between the
//! handful of kernels alive in one process vanishingly unlikely. The cache
//! is bounded: when it exceeds `MAX_ENTRIES` it is cleared wholesale
//! (sweeps churn through distinct kernels; LRU bookkeeping is not worth
//! the locking).

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::Hasher;
use std::sync::{Arc, Mutex, OnceLock};

use crate::engine::EngineProgram;
use crate::interp::{flatten, FlatProgram};
use crate::isa::*;

const MAX_ENTRIES: usize = 256;

/// One memo slot per fingerprint. Concurrent requests for the same kernel
/// all block on a single flatten/lower via `OnceLock::get_or_init` instead
/// of racing to do the work N times (parallel CTA workers hit a new
/// kernel's slot simultaneously on the first launch).
type Slot<T> = Arc<OnceLock<Arc<T>>>;
type MemoCache<T> = Mutex<HashMap<(u64, u64), Slot<T>>>;

static CACHE: OnceLock<MemoCache<FlatProgram>> = OnceLock::new();

/// Claim (or join) `key`'s slot under the lock, then run `make` outside it.
fn memoized<T>(
    cache: &'static OnceLock<MemoCache<T>>,
    key: (u64, u64),
    make: impl FnOnce() -> T,
) -> Arc<T> {
    let slot = {
        let mut g = cache
            .get_or_init(|| Mutex::new(HashMap::new()))
            .lock()
            .expect("kernel memo cache poisoned");
        if g.len() >= MAX_ENTRIES && !g.contains_key(&key) {
            g.clear();
        }
        g.entry(key).or_default().clone()
    };
    slot.get_or_init(|| Arc::new(make())).clone()
}

/// Flatten `kernel`, reusing a cached [`FlatProgram`] when an identical
/// kernel was flattened before in this process.
pub fn flatten_cached(kernel: &Kernel) -> Arc<FlatProgram> {
    memoized(&CACHE, fingerprint(kernel), || flatten(kernel))
}

/// Lower `kernel` for the segment-compiled engine. The lowered program is
/// cached *on the flattening itself* (a `OnceLock` field of
/// [`FlatProgram`]): lowering is a pure function of the kernel, the
/// flattening is already memoized by kernel fingerprint, and keying a
/// second memo by fingerprint would re-hash the whole kernel body on every
/// `run_cta` call — measured at ~80 ns per body instruction, which
/// dominated engine dispatch. Tying the artifact to its flattening also
/// makes staleness impossible by construction: new lowering output always
/// rides a new `FlatProgram`.
pub(crate) fn engine_cached(kernel: &Kernel, prog: &FlatProgram) -> Arc<EngineProgram> {
    prog.engine.get_or_init(|| Arc::new(crate::engine::lower(kernel, prog))).clone()
}

/// Lowering-time statistics of the engine program for `kernel` (uop
/// counts, exp batching coverage, exp-chain rewrite ledger). Lowers and
/// caches the program if this is the first request. This is the public
/// window the benchmark harness and the perf model use to report the
/// per-op exp mix without reaching into the engine internals.
pub fn engine_stats(kernel: &Kernel, prog: &FlatProgram) -> crate::engine::EngineStats {
    engine_cached(kernel, prog).stats().clone()
}

/// Two independent structural hashes of the kernel, salted with
/// [`crate::engine::LOWERING_VERSION`]. Public so other deterministic
/// per-kernel memos (e.g. the schedule verifier's) can share one identity
/// scheme instead of re-walking the IR their own way.
///
/// Folding the lowering version in means a semantics bump changes every
/// fingerprint, so stale flattened/lowered programs can never be replayed
/// from either the in-memory memos here or the serve layer's on-disk
/// artifact cache (which keys files by this same fingerprint).
pub fn fingerprint(k: &Kernel) -> (u64, u64) {
    fingerprint_versioned(k, crate::engine::LOWERING_VERSION)
}

/// [`fingerprint`] at an explicit lowering version. Exists so tests (and
/// migration tooling) can prove that a version bump misses every cache
/// keyed on the fingerprint; production callers always want
/// [`fingerprint`].
pub fn fingerprint_versioned(k: &Kernel, lowering_version: u32) -> (u64, u64) {
    let mut h1 = DefaultHasher::new();
    let mut h2 = DefaultHasher::new();
    // Distinct prefixes decorrelate the two hash streams.
    h1.write_u8(0x51);
    h2.write_u8(0xa7);
    h1.write_u32(lowering_version);
    h2.write_u32(lowering_version);
    hash_kernel(k, &mut h1);
    hash_kernel(k, &mut h2);
    (h1.finish(), h2.finish())
}

fn hash_kernel(k: &Kernel, h: &mut impl Hasher) {
    h.write(k.name.as_bytes());
    h.write_usize(k.warps_per_cta);
    h.write_usize(k.points_per_cta);
    h.write_usize(k.dregs_per_thread);
    h.write_usize(k.iregs_per_thread);
    h.write_usize(k.shared_words);
    h.write_usize(k.local_words_per_thread);
    h.write_usize(k.barriers_used);
    h.write_usize(k.spilled_bytes_per_thread);
    h.write_u8(k.exp_const_from_registers as u8);
    h.write_usize(k.const_banks.len());
    for b in &k.const_banks {
        h.write_usize(b.len());
        for v in b {
            h.write_u64(v.to_bits());
        }
    }
    h.write_usize(k.iconst_banks.len());
    for b in &k.iconst_banks {
        h.write_usize(b.len());
        for v in b {
            h.write_u32(*v);
        }
    }
    h.write_usize(k.global_arrays.len());
    for a in &k.global_arrays {
        h.write(a.name.as_bytes());
        h.write_usize(a.rows);
        h.write_u8(a.output as u8);
    }
    h.write_usize(k.body.len());
    hash_nodes(&k.body, h);
}

fn hash_nodes(nodes: &[Node], h: &mut impl Hasher) {
    for n in nodes {
        match n {
            Node::Op(i) => {
                h.write_u8(0);
                hash_instr(i, h);
            }
            Node::WarpIf { mask, body } => {
                h.write_u8(1);
                h.write_u64(*mask);
                h.write_usize(body.len());
                hash_nodes(body, h);
            }
            Node::WarpSwitch { case_of_warp, cases } => {
                h.write_u8(2);
                h.write_usize(case_of_warp.len());
                for c in case_of_warp {
                    h.write_usize(*c);
                }
                h.write_usize(cases.len());
                for c in cases {
                    h.write_usize(c.len());
                    hash_nodes(c, h);
                }
            }
            Node::Loop { count, body } => {
                h.write_u8(3);
                h.write_u32(*count);
                h.write_usize(body.len());
                hash_nodes(body, h);
            }
            Node::PointLoop { iters, body } => {
                h.write_u8(4);
                h.write_u32(*iters);
                h.write_usize(body.len());
                hash_nodes(body, h);
            }
        }
    }
}

fn hash_op(o: &Op, h: &mut impl Hasher) {
    match o {
        Op::Reg(r) => {
            h.write_u8(0);
            h.write_u16(*r);
        }
        Op::Imm(v) => {
            h.write_u8(1);
            h.write_u64(v.to_bits());
        }
    }
}

fn hash_iop(o: &IdxOp, h: &mut impl Hasher) {
    match o {
        IdxOp::Imm(v) => {
            h.write_u8(0);
            h.write_u32(*v);
        }
        IdxOp::Reg(r) => {
            h.write_u8(1);
            h.write_u16(*r);
        }
    }
}

fn hash_gaddr(a: &GAddr, h: &mut impl Hasher) {
    h.write_usize(a.array.0);
    hash_iop(&a.row, h);
    match &a.point {
        PointRef::Lane => h.write_u8(0),
        PointRef::Thread => h.write_u8(1),
        PointRef::Reg(r) => {
            h.write_u8(2);
            h.write_u16(*r);
        }
    }
}

fn hash_saddr(a: &SAddr, h: &mut impl Hasher) {
    match a.base {
        None => h.write_u8(0),
        Some(r) => {
            h.write_u8(1);
            h.write_u16(r);
        }
    }
    h.write_u32(a.imm);
    h.write_u32(a.lane_stride);
}

fn hash_cmp(c: &Cmp, h: &mut impl Hasher) {
    h.write_u8(match c {
        Cmp::Lt => 0,
        Cmp::Le => 1,
        Cmp::Gt => 2,
        Cmp::Ge => 3,
        Cmp::Eq => 4,
        Cmp::Ne => 5,
    });
}

fn hash_instr(i: &Instr, h: &mut impl Hasher) {
    match i {
        Instr::DMov { dst, src } => {
            h.write_u8(0);
            h.write_u16(*dst);
            hash_op(src, h);
        }
        Instr::DAdd { dst, a, b } => {
            h.write_u8(1);
            h.write_u16(*dst);
            hash_op(a, h);
            hash_op(b, h);
        }
        Instr::DSub { dst, a, b } => {
            h.write_u8(2);
            h.write_u16(*dst);
            hash_op(a, h);
            hash_op(b, h);
        }
        Instr::DMul { dst, a, b } => {
            h.write_u8(3);
            h.write_u16(*dst);
            hash_op(a, h);
            hash_op(b, h);
        }
        Instr::DFma { dst, a, b, c, const_c } => {
            h.write_u8(4);
            h.write_u16(*dst);
            hash_op(a, h);
            hash_op(b, h);
            hash_op(c, h);
            h.write_u8(*const_c as u8);
        }
        Instr::DDiv { dst, a, b } => {
            h.write_u8(5);
            h.write_u16(*dst);
            hash_op(a, h);
            hash_op(b, h);
        }
        Instr::DSqrt { dst, a } => {
            h.write_u8(6);
            h.write_u16(*dst);
            hash_op(a, h);
        }
        Instr::DExp { dst, a } => {
            h.write_u8(7);
            h.write_u16(*dst);
            hash_op(a, h);
        }
        Instr::DLog { dst, a } => {
            h.write_u8(8);
            h.write_u16(*dst);
            hash_op(a, h);
        }
        Instr::DLog10 { dst, a } => {
            h.write_u8(9);
            h.write_u16(*dst);
            hash_op(a, h);
        }
        Instr::DCbrt { dst, a } => {
            h.write_u8(10);
            h.write_u16(*dst);
            hash_op(a, h);
        }
        Instr::DPow { dst, a, b } => {
            h.write_u8(11);
            h.write_u16(*dst);
            hash_op(a, h);
            hash_op(b, h);
        }
        Instr::DMax { dst, a, b } => {
            h.write_u8(12);
            h.write_u16(*dst);
            hash_op(a, h);
            hash_op(b, h);
        }
        Instr::DMin { dst, a, b } => {
            h.write_u8(13);
            h.write_u16(*dst);
            hash_op(a, h);
            hash_op(b, h);
        }
        Instr::DNeg { dst, a } => {
            h.write_u8(14);
            h.write_u16(*dst);
            hash_op(a, h);
        }
        Instr::DSel { dst, pred, a, b } => {
            h.write_u8(15);
            h.write_u16(*dst);
            h.write_u16(*pred);
            hash_op(a, h);
            hash_op(b, h);
        }
        Instr::DCmp { dst, cmp, a, b } => {
            h.write_u8(16);
            h.write_u16(*dst);
            hash_cmp(cmp, h);
            hash_op(a, h);
            hash_op(b, h);
        }
        Instr::LdGlobal { dst, addr, ldg } => {
            h.write_u8(17);
            h.write_u16(*dst);
            hash_gaddr(addr, h);
            h.write_u8(*ldg as u8);
        }
        Instr::StGlobal { src, addr } => {
            h.write_u8(18);
            hash_op(src, h);
            hash_gaddr(addr, h);
        }
        Instr::LdShared { dst, addr } => {
            h.write_u8(19);
            h.write_u16(*dst);
            hash_saddr(addr, h);
        }
        Instr::StShared { src, addr, lane_pred } => {
            h.write_u8(20);
            hash_op(src, h);
            hash_saddr(addr, h);
            match lane_pred {
                None => h.write_u8(0),
                Some(p) => {
                    h.write_u8(1);
                    h.write_u8(*p);
                }
            }
        }
        Instr::LdConst { dst, bank, idx } => {
            h.write_u8(21);
            h.write_u16(*dst);
            h.write_u16(*bank);
            hash_iop(idx, h);
        }
        Instr::LdLocal { dst, slot } => {
            h.write_u8(22);
            h.write_u16(*dst);
            h.write_u32(*slot);
        }
        Instr::StLocal { src, slot } => {
            h.write_u8(23);
            hash_op(src, h);
            h.write_u32(*slot);
        }
        Instr::Shfl { dst, src, lane } => {
            h.write_u8(24);
            h.write_u16(*dst);
            h.write_u16(*src);
            h.write_u8(*lane);
        }
        Instr::Idx(ii) => {
            h.write_u8(25);
            match ii {
                IdxInstr::Mov { dst, src } => {
                    h.write_u8(0);
                    h.write_u16(*dst);
                    hash_iop(src, h);
                }
                IdxInstr::Add { dst, a, b } => {
                    h.write_u8(1);
                    h.write_u16(*dst);
                    hash_iop(a, h);
                    hash_iop(b, h);
                }
                IdxInstr::Mul { dst, a, b } => {
                    h.write_u8(2);
                    h.write_u16(*dst);
                    hash_iop(a, h);
                    hash_iop(b, h);
                }
                IdxInstr::LaneId { dst } => {
                    h.write_u8(3);
                    h.write_u16(*dst);
                }
                IdxInstr::WarpId { dst } => {
                    h.write_u8(4);
                    h.write_u16(*dst);
                }
                IdxInstr::LdConst { dst, bank, idx } => {
                    h.write_u8(5);
                    h.write_u16(*dst);
                    h.write_u16(*bank);
                    hash_iop(idx, h);
                }
                IdxInstr::Shfl { dst, src, lane } => {
                    h.write_u8(6);
                    h.write_u16(*dst);
                    h.write_u16(*src);
                    h.write_u8(*lane);
                }
                IdxInstr::PipeOff { dst, k, stride } => {
                    h.write_u8(7);
                    h.write_u16(*dst);
                    h.write_u8(*k);
                    h.write_u32(*stride);
                }
            }
        }
        Instr::BarArrive { bar, warps } => {
            h.write_u8(26);
            h.write_u8(*bar);
            h.write_u16(*warps);
        }
        Instr::BarSync { bar, warps } => {
            h.write_u8(27);
            h.write_u8(*bar);
            h.write_u16(*warps);
        }
        Instr::BarArriveStage { base, k, warps } => {
            h.write_u8(28);
            h.write_u8(*base);
            h.write_u8(*k);
            h.write_u16(*warps);
        }
        Instr::BarSyncStage { base, k, warps } => {
            h.write_u8(29);
            h.write_u8(*base);
            h.write_u8(*k);
            h.write_u16(*warps);
        }
        Instr::CpAsync { addr, array, row, point } => {
            h.write_u8(30);
            hash_saddr(addr, h);
            hash_gaddr(&GAddr { array: *array, row: *row, point: *point }, h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel(imm: f64) -> Kernel {
        Kernel {
            name: "fc".into(),
            body: vec![Node::Op(Instr::DMov { dst: 0, src: Op::Imm(imm) })],
            warps_per_cta: 1,
            points_per_cta: 32,
            dregs_per_thread: 2,
            iregs_per_thread: 1,
            shared_words: 0,
            local_words_per_thread: 0,
            const_banks: vec![],
            iconst_banks: vec![],
            barriers_used: 0,
            global_arrays: vec![],
            spilled_bytes_per_thread: 0,
            exp_const_from_registers: false,
        }
    }

    #[test]
    fn identical_kernels_share_one_flatten() {
        let a = flatten_cached(&kernel(1.25));
        let b = flatten_cached(&kernel(1.25));
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn different_kernels_do_not_collide() {
        let a = flatten_cached(&kernel(1.25));
        let b = flatten_cached(&kernel(2.5));
        assert!(!Arc::ptr_eq(&a, &b));
        assert_ne!(fingerprint(&kernel(1.25)), fingerprint(&kernel(2.5)));
    }

    #[test]
    fn lowering_version_bump_misses_the_cache() {
        // The memo tables key on `fingerprint`, so proving the fingerprint
        // changes under a version bump proves a bump can never replay a
        // stale in-memory (or on-disk) entry lowered under old semantics.
        let k = kernel(3.5);
        let v = crate::engine::LOWERING_VERSION;
        assert_eq!(fingerprint(&k), fingerprint_versioned(&k, v));
        assert_ne!(
            fingerprint_versioned(&k, v),
            fingerprint_versioned(&k, v + 1),
            "a LOWERING_VERSION bump must change every kernel fingerprint"
        );
        // And the live cache entry for the current version is keyed by the
        // salted fingerprint (same kernel, same version => same slot).
        let a = flatten_cached(&k);
        let b = flatten_cached(&k);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn fingerprint_covers_flags_and_banks() {
        let base = kernel(0.0);
        let mut k2 = kernel(0.0);
        k2.exp_const_from_registers = true;
        assert_ne!(fingerprint(&base), fingerprint(&k2));
        let mut k3 = kernel(0.0);
        k3.const_banks = vec![vec![1.0]];
        assert_ne!(fingerprint(&base), fingerprint(&k3));
    }
}
