//! Constant-cache model: a small fully-associative LRU cache over constant
//! memory, 8 KB on both Fermi and Kepler (paper §3.2: "GPUs only have 8 KB
//! of on-chip constant cache" — the DME and heptane viscosity constants at
//! 13.9 / 42.4 KB cannot fit, which is a core motivation for the
//! register-resident constant scheme of §5.2).

/// Fully-associative LRU constant cache with 64-byte lines.
#[derive(Debug, Clone)]
pub struct ConstCache {
    line_bytes: usize,
    lines: usize,
    /// Resident line tags in LRU order (front = most recent).
    resident: Vec<u64>,
    hits: u64,
    misses: u64,
}

impl ConstCache {
    /// Build a cache of `capacity_bytes` with 64-byte lines.
    pub fn new(capacity_bytes: usize) -> ConstCache {
        let line_bytes = 64;
        ConstCache {
            line_bytes,
            lines: capacity_bytes / line_bytes,
            resident: Vec::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Access a byte address in constant space; returns true on hit.
    pub fn access(&mut self, byte_addr: u64) -> bool {
        let tag = byte_addr / self.line_bytes as u64;
        if let Some(pos) = self.resident.iter().position(|&t| t == tag) {
            self.resident.remove(pos);
            self.resident.insert(0, tag);
            self.hits += 1;
            true
        } else {
            self.resident.insert(0, tag);
            if self.resident.len() > self.lines {
                self.resident.pop();
            }
            self.misses += 1;
            false
        }
    }

    /// Replay a pre-resolved line-tag script (one entry per cache access,
    /// in access order) in a single pass. Used by the segment engine,
    /// which hoists the per-access LRU walk out of its inner loop by
    /// recording each segment's line sequence at lowering time; hit/miss
    /// totals and the final LRU state are identical to issuing the same
    /// accesses one at a time through [`ConstCache::access`].
    pub fn access_script(&mut self, line_tags: &[u64]) {
        for &tag in line_tags {
            self.access(tag * self.line_bytes as u64);
        }
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn working_set_within_capacity_hits_after_warmup() {
        let mut c = ConstCache::new(8192);
        // 4 KB working set: first pass misses, second pass hits.
        for pass in 0..2 {
            for addr in (0..4096u64).step_by(8) {
                let hit = c.access(addr);
                if pass == 1 {
                    assert!(hit, "addr {addr} should hit on pass 2");
                }
            }
        }
        assert_eq!(c.misses(), 64); // 4096/64 lines
    }

    #[test]
    fn working_set_exceeding_capacity_thrashes() {
        let mut c = ConstCache::new(8192);
        // 16 KB streamed repeatedly with LRU => every access misses.
        for _ in 0..3 {
            for addr in (0..16384u64).step_by(64) {
                c.access(addr);
            }
        }
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), 3 * 256);
    }

    #[test]
    fn lru_keeps_hot_line() {
        let mut c = ConstCache::new(128); // 2 lines
        c.access(0); // line A
        c.access(64); // line B
        c.access(0); // A hot again
        c.access(128); // line C evicts B
        assert!(c.access(0), "A should still be resident");
        assert!(!c.access(64), "B was evicted");
    }
}
