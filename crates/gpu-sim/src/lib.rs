//! `gpu-sim` — a simulated SIMT GPU substrate for the Singe reproduction.
//!
//! The paper evaluates Singe on NVIDIA Tesla C2070 (Fermi) and Tesla K20c
//! (Kepler) GPUs. This crate substitutes those with a two-part model:
//!
//! 1. a **functional interpreter** for a structured kernel IR: cooperative
//!    thread arrays of 32-lane warps executing in lock step, PTX-style
//!    named barriers (`bar.arrive` / `bar.sync`) with deadlock detection,
//!    shared memory with bank-conflict accounting, per-thread registers,
//!    constant banks, and local (spill) memory — producing bit-exact
//!    numerical results that are checked against CPU references;
//! 2. an **analytic timing model** parameterized by the paper's published
//!    hardware characteristics (SM counts and clocks, double-precision
//!    issue rates, the 8 KB constant cache, instruction-cache capacity,
//!    30-cycle shared-memory latency, DRAM and local-memory bandwidths,
//!    occupancy rules including named barriers as a conserved resource),
//!    fed by event counts gathered during interpretation.
//!
//! Every performance mechanism the paper's evaluation relies on — register
//! spilling, constant-cache overflow, instruction-cache thrashing under
//! divergent warp-specialized code, named-barrier straggler stalls, and
//! shared-memory latency at low occupancy — is modeled explicitly, so the
//! qualitative shapes of the paper's figures emerge from the same causes.

// Indexed `for i in 0..n` loops over parallel arrays are the prevailing
// idiom in the numeric kernels here; iterator rewrites obscure them.
#![allow(clippy::needless_range_loop)]

pub mod arch;
pub mod ccache;
pub mod counts;
pub(crate) mod engine;
pub mod error;
pub mod flatcache;
pub mod icache;
pub mod interp;
pub mod isa;
pub(crate) mod lanes;
pub mod launch;
pub mod model;
pub mod occupancy;
pub mod pool;
pub mod profile;
pub mod timing;
pub mod vmath;

pub use arch::GpuArch;
pub use counts::EventCounts;
pub use engine::{EngineStats, LOWERING_VERSION};
pub use flatcache::flatten_cached;
pub use error::{SimError, SimResult};
pub use isa::{
    ArrayDecl, GAddr, GlobalId, IdxInstr, IdxOp, Instr, Kernel, Node, Op, PointRef, Reg, SAddr,
};
pub use launch::{launch, launch_with_config, LaunchConfig, LaunchInputs, LaunchMode, LaunchOutput};
pub use model::{ModelProfile, OpMix, WarpGroup};
pub use occupancy::Occupancy;
pub use profile::{chrome_trace_json, CtaProfile, Profiler, TraceEvent, WarpCycles};
pub use timing::{SimReport, TimingBreakdown};

/// Number of lanes in a warp. All modeled architectures use 32.
pub const WARP_SIZE: usize = 32;
