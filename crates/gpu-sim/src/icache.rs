//! Instruction-cache model.
//!
//! The paper's §5 is built around one hardware reality: "GPUs are built
//! assuming all threads run the same code", and a naïve top-level switch on
//! warp ID "begins thrashing the instruction cache at six different warp
//! code paths" (Figure 9), costing an order of magnitude. We model a
//! set-associative LRU instruction cache fed by the *interleaved* fetch
//! trace of all warps in an SM: when warps execute disjoint code blocks
//! whose combined footprint exceeds capacity, the round-robin interleaving
//! causes continual eviction — the thrash. Overlaid code keeps the warps on
//! shared addresses and the footprint small.

/// Set-associative LRU instruction cache.
#[derive(Debug, Clone)]
pub struct ICache {
    line_bytes: usize,
    sets: usize,
    assoc: usize,
    /// `ways[set]` holds resident tags in LRU order.
    ways: Vec<Vec<u64>>,
    hits: u64,
    misses: u64,
}

impl ICache {
    /// Build from capacity / line size / associativity.
    pub fn new(capacity_bytes: usize, line_bytes: usize, assoc: usize) -> ICache {
        let lines = (capacity_bytes / line_bytes).max(assoc);
        let sets = (lines / assoc).max(1);
        ICache {
            line_bytes,
            sets,
            assoc,
            ways: vec![Vec::new(); sets],
            hits: 0,
            misses: 0,
        }
    }

    /// Fetch the line containing `byte_addr`; returns true on hit.
    pub fn fetch(&mut self, byte_addr: u64) -> bool {
        let line = byte_addr / self.line_bytes as u64;
        let set = (line % self.sets as u64) as usize;
        let ways = &mut self.ways[set];
        if let Some(pos) = ways.iter().position(|&t| t == line) {
            ways.remove(pos);
            ways.insert(0, line);
            self.hits += 1;
            true
        } else {
            ways.insert(0, line);
            if ways.len() > self.assoc {
                ways.pop();
            }
            self.misses += 1;
            false
        }
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

/// Result of an interleaved fetch-trace simulation, with misses broken
/// down per warp so the profiler can attribute icache penalties.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FetchProfile {
    /// Total instruction fetches across all warps.
    pub fetches: u64,
    /// Total cache misses.
    pub misses: u64,
    /// Misses attributed to each warp's stream.
    pub per_warp_misses: Vec<u64>,
}

/// Simulate an interleaved round-robin fetch of per-warp instruction
/// address streams, the way an SM's scheduler rotates among resident
/// warps. Returns `(fetches, misses)`; use [`interleaved_fetch_profile`]
/// for the per-warp miss breakdown.
///
/// Each stream entry is a static instruction address (index); addresses are
/// scaled by `instr_bytes`. `group` controls how many consecutive
/// instructions a warp fetches before the scheduler rotates (prefetch
/// granularity — paper §5.1 notes the prefetcher handles divergence for
/// code regions up to a few hundred instructions).
pub fn interleaved_fetch_trace(
    streams: &[Vec<u32>],
    instr_bytes: usize,
    capacity_bytes: usize,
    line_bytes: usize,
    assoc: usize,
    group: usize,
) -> (u64, u64) {
    let p = interleaved_fetch_profile(streams, instr_bytes, capacity_bytes, line_bytes, assoc, group);
    (p.fetches, p.misses)
}

/// Same simulation as [`interleaved_fetch_trace`], also attributing each
/// miss to the warp whose fetch missed.
pub fn interleaved_fetch_profile(
    streams: &[Vec<u32>],
    instr_bytes: usize,
    capacity_bytes: usize,
    line_bytes: usize,
    assoc: usize,
    group: usize,
) -> FetchProfile {
    let mut cache = ICache::new(capacity_bytes, line_bytes, assoc);
    let mut per_warp = vec![0u64; streams.len()];
    let mut cursors = vec![0usize; streams.len()];
    let mut live = streams.iter().filter(|s| !s.is_empty()).count();
    let group = group.max(1);
    while live > 0 {
        live = 0;
        for (w, stream) in streams.iter().enumerate() {
            let c = cursors[w];
            if c >= stream.len() {
                continue;
            }
            let end = (c + group).min(stream.len());
            for &addr in &stream[c..end] {
                if !cache.fetch(addr as u64 * instr_bytes as u64) {
                    per_warp[w] += 1;
                }
            }
            cursors[w] = end;
            if end < stream.len() {
                live += 1;
            }
        }
    }
    FetchProfile {
        fetches: cache.hits() + cache.misses(),
        misses: cache.misses(),
        per_warp_misses: per_warp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_code_paths_hit() {
        // 8 warps all fetching the same 256-instruction block: after the
        // first warp's cold misses, everyone hits.
        let stream: Vec<u32> = (0..256).collect();
        let streams = vec![stream; 8];
        let (fetches, misses) = interleaved_fetch_trace(&streams, 8, 8192, 64, 4, 64);
        assert_eq!(fetches, 8 * 256);
        // 256 instrs * 8 bytes = 2 KB = 32 lines of cold misses.
        assert_eq!(misses, 32);
    }

    #[test]
    fn disjoint_code_paths_thrash_beyond_capacity() {
        // 8 warps, each with a disjoint 512-instruction block: total
        // footprint 32 KB >> 8 KB, fine interleaving causes thrash.
        let streams: Vec<Vec<u32>> = (0..8u32)
            .map(|w| (w * 512..(w + 1) * 512).collect())
            .collect();
        let (fetches, misses) = interleaved_fetch_trace(&streams, 8, 8192, 64, 4, 8);
        let ratio = misses as f64 / fetches as f64;
        assert!(ratio > 0.10, "expected thrashing, miss ratio {ratio}");
    }

    #[test]
    fn few_disjoint_paths_fit() {
        // 2 warps with disjoint 256-instruction blocks: 4 KB total, fits.
        let streams: Vec<Vec<u32>> = (0..2u32)
            .map(|w| (w * 256..(w + 1) * 256).collect())
            .collect();
        let (_, misses) = interleaved_fetch_trace(&streams, 8, 8192, 64, 4, 8);
        // Only cold misses: 512 instrs * 8B / 64B = 64 lines.
        assert_eq!(misses, 64);
    }

    #[test]
    fn per_warp_misses_sum_to_total() {
        let streams: Vec<Vec<u32>> = (0..8u32)
            .map(|w| (w * 512..(w + 1) * 512).collect())
            .collect();
        let p = interleaved_fetch_profile(&streams, 8, 8192, 64, 4, 8);
        assert_eq!(p.per_warp_misses.len(), 8);
        assert_eq!(p.per_warp_misses.iter().sum::<u64>(), p.misses);
        let (fetches, misses) = interleaved_fetch_trace(&streams, 8, 8192, 64, 4, 8);
        assert_eq!((fetches, misses), (p.fetches, p.misses));
    }

    #[test]
    fn loops_amortize_cold_misses() {
        // One warp executing a 128-instruction loop 10 times.
        let body: Vec<u32> = (0..128).collect();
        let mut stream = Vec::new();
        for _ in 0..10 {
            stream.extend_from_slice(&body);
        }
        let (fetches, misses) = interleaved_fetch_trace(&[stream], 8, 8192, 64, 4, 8);
        assert_eq!(fetches, 1280);
        assert_eq!(misses, 16); // 128*8/64
    }
}
