//! Analytic timing model.
//!
//! Converts per-CTA event counts into an execution-time estimate using the
//! architecture parameters. The model is a latency-aware roofline: per SM
//! wave, time is the maximum of the throughput-bound terms (DP issue, DRAM
//! bandwidth, local/spill path, shared-memory throughput) plus the
//! additive stall terms that multithreading cannot hide (named-barrier
//! straggler waits, instruction-cache misses, constant-cache misses at low
//! occupancy). Each term corresponds to a mechanism the paper names in §6:
//!
//! * baseline viscosity/diffusion: register spills -> local traffic, and
//!   constant-cache misses -> exposed latency (§6.1, §6.2);
//! * warp-specialized viscosity: DP-pipe bound, with the Kepler
//!   constant-operand DFMA throughput limit (§6.1);
//! * warp-specialized diffusion: extra named-barrier stalls (§6.2);
//! * baseline chemistry: local-memory bandwidth bound; warp-specialized
//!   chemistry: shared-memory latency bound at 16-20 warps/SM (§6.3).

use crate::arch::GpuArch;
use crate::counts::EventCounts;
use crate::isa::Kernel;
use crate::occupancy::{occupancy, Occupancy};

/// Cycle breakdown for one SM wave (diagnostics; the shape explanations of
/// §6 come from comparing these terms).
#[derive(Debug, Clone, Copy)]
pub struct TimingBreakdown {
    /// Double-precision issue cycles (incl. const-operand penalty).
    pub dp_cycles: f64,
    /// Total instruction-issue cycles (non-DP overhead floor).
    pub issue_cycles: f64,
    /// DRAM bandwidth cycles (global traffic).
    pub dram_cycles: f64,
    /// Local/spill path cycles.
    pub local_cycles: f64,
    /// Shared-memory cycles (throughput or exposed latency).
    pub shared_cycles: f64,
    /// Constant-cache miss stalls.
    pub const_miss_cycles: f64,
    /// Named-barrier stalls.
    pub barrier_cycles: f64,
    /// Instruction-cache miss stalls.
    pub icache_cycles: f64,
    /// Global-memory latency exposure (low-occupancy term).
    pub global_latency_cycles: f64,
}

impl TimingBreakdown {
    /// The wave-time estimate: max of throughput terms plus additive stalls.
    pub fn wave_cycles(&self) -> f64 {
        let roof = self
            .dp_cycles
            .max(self.issue_cycles)
            .max(self.dram_cycles)
            .max(self.local_cycles)
            .max(self.shared_cycles)
            .max(self.global_latency_cycles);
        roof + self.const_miss_cycles + self.barrier_cycles + self.icache_cycles
    }

    /// Name of the largest single term (the kernel's limiter, as the
    /// paper's SASS analyses identify).
    pub fn limiter(&self) -> &'static str {
        let terms = [
            (self.dp_cycles, "dp-throughput"),
            (self.issue_cycles, "issue"),
            (self.dram_cycles, "dram-bandwidth"),
            (self.local_cycles, "local-bandwidth"),
            (self.shared_cycles, "shared-memory"),
            (self.global_latency_cycles, "global-latency"),
            (self.const_miss_cycles, "const-cache"),
            (self.barrier_cycles, "barriers"),
            (self.icache_cycles, "icache"),
        ];
        terms
            .iter()
            .max_by(|a, b| a.0.partial_cmp(&b.0).unwrap())
            .unwrap()
            .1
    }
}

/// Full simulation report for a kernel launch.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Kernel name.
    pub kernel: String,
    /// Architecture name.
    pub arch: String,
    /// Grid points processed.
    pub grid_points: usize,
    /// Occupancy achieved.
    pub occupancy: Occupancy,
    /// Per-CTA event counts.
    pub counts: EventCounts,
    /// SM waves needed to cover the grid.
    pub waves: usize,
    /// Cycles per wave.
    pub wave_cycles: f64,
    /// End-to-end kernel time in seconds (incl. launch overhead).
    pub seconds: f64,
    /// Grid points per second — the paper's throughput metric.
    pub points_per_sec: f64,
    /// Achieved double-precision GFLOPS — §6.1/6.2 analysis metric.
    pub gflops: f64,
    /// Achieved DRAM + local bandwidth in GB/s — §6.3 analysis metric.
    pub bandwidth_gbs: f64,
    /// Spill bytes per thread (compiler metadata).
    pub spilled_bytes_per_thread: usize,
    /// Cycle breakdown.
    pub breakdown: TimingBreakdown,
    /// Human-readable limiter.
    pub limiter: &'static str,
}

/// Estimate execution time for a grid of `total_points` given the event
/// counts of one representative CTA.
pub fn estimate(
    kernel: &Kernel,
    arch: &GpuArch,
    counts: &EventCounts,
    total_points: usize,
) -> SimReport {
    let occ = occupancy(kernel, arch);
    let k = occ.ctas_per_sm.max(1) as f64;
    let warps_sm = (occ.ctas_per_sm.max(1) * kernel.warps_per_cta) as f64;

    // --- Throughput terms (cycles per SM wave of k CTAs). ---
    // DP pipe: warp-instructions per cycle the SM can issue.
    let dp_rate = arch.dp_lanes_per_cycle as f64 / 32.0 * arch.dp_efficiency;
    let const_penalty = counts.dp_const_slots as f64 * (1.0 / arch.dp_const_operand_factor - 1.0);
    let dp_cycles = k * (counts.dp_slots as f64 + const_penalty) / dp_rate;

    // Overall issue floor (schedulers): Fermi ~1 warp-instr/cycle, Kepler ~4.
    let issue_width = (arch.dp_lanes_per_cycle as f64 / 16.0).max(1.0);
    let issue_cycles = k * counts.issue_slots as f64 / issue_width;

    // Memory paths.
    let dram_cycles = k * counts.global_bytes as f64 / arch.dram_bytes_per_sm_cycle();
    let local_cycles = k * counts.local_bytes as f64 / arch.local_bytes_per_sm_cycle();

    // Shared memory: throughput or exposed latency, whichever dominates at
    // this occupancy (paper §6.3: 16-20 warps cannot hide 30 cycles).
    let per_access = (1.0 / arch.shared_throughput).max(arch.shared_latency / warps_sm);
    let shared_cycles = k * counts.shared_accesses as f64 * per_access;

    // Global latency exposure at low occupancy.
    let global_latency_cycles =
        k * counts.global_transactions as f64 * (arch.global_latency / warps_sm).max(0.0)
            / 8.0; // up to ~8 outstanding loads per warp (MLP)

    // --- Additive stall terms. ---
    // Constant loads feed arithmetic operands directly, so their miss
    // latency is a dependent stall: one outstanding miss per warp
    // (Little's law). This is the §6.1 Kepler-baseline limiter — "the
    // latency of loading constants was still exposed".
    let const_miss_cycles = k
        * (counts.const_misses as f64 * arch.const_miss_latency
            + counts.const_hits as f64 * arch.const_hit_latency)
        / warps_sm.max(1.0);
    let barrier_cycles =
        k * counts.barrier_syncs as f64 * arch.barrier_sync_cycles / kernel.warps_per_cta as f64;
    // Icache misses stall fetch. Sequential streaming (overlaid code: all
    // warps on shared addresses, low miss ratio) is largely hidden by the
    // prefetcher; thrash (divergent per-warp code, ratio approaching one
    // miss per line) cannot be prefetched — the paper's §5 "routinely an
    // order of magnitude" penalty. Effectiveness scales with miss ratio up
    // to the one-miss-per-line rate (line = 8 instructions).
    let ratio = counts.icache_miss_ratio();
    let prefetch = (ratio / 0.125).clamp(0.08, 1.0);
    let icache_cycles = k * counts.icache_misses as f64 * arch.icache_miss_penalty * prefetch;

    let breakdown = TimingBreakdown {
        dp_cycles,
        issue_cycles,
        dram_cycles,
        local_cycles,
        shared_cycles,
        const_miss_cycles,
        barrier_cycles,
        icache_cycles,
        global_latency_cycles,
    };

    let total_ctas = total_points / kernel.points_per_cta;
    let ctas_per_wave = (arch.sms * occ.ctas_per_sm.max(1)).max(1);
    let waves = total_ctas.div_ceil(ctas_per_wave);
    let wave_cycles = breakdown.wave_cycles();
    // Tail correction: the last wave may be partially full.
    let full_waves = total_ctas / ctas_per_wave;
    let tail = total_ctas % ctas_per_wave;
    let effective_waves = full_waves as f64
        + if tail > 0 {
            // A partial wave still pays close to a full wave's latency terms
            // but proportionally less throughput time; approximate linearly
            // with a floor.
            (tail as f64 / ctas_per_wave as f64).max(0.3)
        } else {
            0.0
        };

    let seconds = effective_waves * wave_cycles / arch.sm_clock_hz()
        + arch.launch_overhead_us * 1.0e-6;
    let flops_total = counts.flops as f64 * total_ctas as f64;
    let bytes_total = (counts.global_bytes + counts.local_bytes) as f64 * total_ctas as f64;

    SimReport {
        kernel: kernel.name.clone(),
        arch: arch.name.to_string(),
        grid_points: total_points,
        occupancy: occ,
        counts: counts.clone(),
        waves,
        wave_cycles,
        seconds,
        points_per_sec: total_points as f64 / seconds,
        gflops: flops_total / seconds / 1.0e9,
        bandwidth_gbs: bytes_total / seconds / 1.0e9,
        spilled_bytes_per_thread: kernel.spilled_bytes_per_thread,
        breakdown,
        limiter: breakdown.limiter(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{ArrayDecl, Kernel};

    fn kernel() -> Kernel {
        Kernel {
            name: "t".into(),
            body: vec![],
            warps_per_cta: 8,
            points_per_cta: 32,
            dregs_per_thread: 16,
            iregs_per_thread: 4,
            shared_words: 256,
            local_words_per_thread: 0,
            const_banks: vec![],
            iconst_banks: vec![],
            barriers_used: 2,
            global_arrays: vec![ArrayDecl { name: "o".into(), rows: 1, output: true }],
            spilled_bytes_per_thread: 0,
            exp_const_from_registers: false,
        }
    }

    fn counts() -> EventCounts {
        EventCounts {
            issue_slots: 10_000,
            dp_slots: 8_000,
            dp_const_slots: 1_000,
            flops: 400_000,
            shared_accesses: 500,
            global_bytes: 32 * 8 * 4,
            global_transactions: 8,
            barrier_syncs: 16,
            ..Default::default()
        }
    }

    #[test]
    fn compute_bound_kernel_scales_with_dp() {
        let k = kernel();
        let arch = GpuArch::kepler_k20c();
        let r = estimate(&k, &arch, &counts(), 32 * 1024);
        assert_eq!(r.limiter, "dp-throughput");
        assert!(r.gflops > 0.0 && r.gflops < arch.peak_dp_gflops());
    }

    #[test]
    fn local_traffic_shifts_limiter() {
        let k = kernel();
        let arch = GpuArch::kepler_k20c();
        let mut c = counts();
        c.local_bytes = 4_000_000; // heavy spilling
        let r = estimate(&k, &arch, &c, 32 * 1024);
        assert_eq!(r.limiter, "local-bandwidth");
    }

    #[test]
    fn icache_misses_dominate_when_thrashing() {
        let k = kernel();
        let arch = GpuArch::kepler_k20c();
        let mut c = counts();
        c.icache_fetches = 100_000;
        c.icache_misses = 50_000;
        let r = estimate(&k, &arch, &c, 32 * 1024);
        assert_eq!(r.limiter, "icache");
        let base = estimate(&k, &arch, &counts(), 32 * 1024);
        assert!(r.seconds > 5.0 * base.seconds, "thrash should be devastating");
    }

    #[test]
    fn larger_grids_amortize_launch_overhead() {
        let k = kernel();
        let arch = GpuArch::fermi_c2070();
        let small = estimate(&k, &arch, &counts(), 32 * 32);
        let large = estimate(&k, &arch, &counts(), 32 * 32 * 64);
        assert!(large.points_per_sec > small.points_per_sec);
    }

    #[test]
    fn barrier_term_adds_time() {
        let k = kernel();
        let arch = GpuArch::fermi_c2070();
        let mut heavy = counts();
        heavy.barrier_syncs = 4000;
        let slow = estimate(&k, &arch, &heavy, 32 * 1024);
        let fast = estimate(&k, &arch, &counts(), 32 * 1024);
        assert!(slow.seconds > fast.seconds);
    }

    #[test]
    fn kepler_outperforms_fermi_on_compute_bound() {
        let k = kernel();
        let c = counts();
        let f = estimate(&k, &GpuArch::fermi_c2070(), &c, 32 * 1024);
        let kep = estimate(&k, &GpuArch::kepler_k20c(), &c, 32 * 1024);
        assert!(kep.points_per_sec > f.points_per_sec);
    }
}
