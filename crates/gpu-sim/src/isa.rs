//! The structured kernel IR ("SASS-lite") executed by the simulator.
//!
//! Design notes:
//!
//! * Values are double precision (`f64`) in per-thread registers, matching
//!   the paper's all-double combustion kernels; a separate small file of
//!   `u32` index registers feeds addressing (the *warp indexing* constants
//!   of §5.3 live there).
//! * Control flow is structured: warp-masked blocks ([`Node::WarpIf`],
//!   the bit-mask branches of Listing 1), indirect warp switches
//!   ([`Node::WarpSwitch`], §5.1), uniform loops, and the streaming
//!   point loop (§5.2's "multiple sets of points mapped onto a single
//!   CTA").
//! * Every operation gets a static instruction address (assigned in tree
//!   order), so the instruction-cache model sees the same addresses
//!   regardless of which warp executes a block — exactly the property the
//!   overlaying code-generation techniques of §5 are designed around.
//! * Named barriers follow PTX `bar.arrive` / `bar.sync` semantics with an
//!   expected-warp count (§2, Figure 2).


/// A per-thread double-precision register id.
pub type Reg = u16;
/// A per-thread 32-bit index register id.
pub type IdxReg = u16;

/// Identifier of a global (device-memory) array declared by the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GlobalId(pub usize);

/// A double-precision operand: register or immediate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// Read a register.
    Reg(Reg),
    /// Immediate constant encoded in the instruction.
    Imm(f64),
}

/// An index operand: immediate or index register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdxOp {
    /// Immediate.
    Imm(u32),
    /// Read an index register (per-lane value).
    Reg(IdxReg),
}

/// Which grid point a global access refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointRef {
    /// `cta_point_base + lane` — the warp-specialized convention where all
    /// warps of a CTA cooperate on 32 points (paper §3.2).
    Lane,
    /// `cta_point_base + warp_id * 32 + lane` — the data-parallel
    /// convention of one thread per point.
    Thread,
    /// An index register holds the absolute point index.
    Reg(IdxReg),
}

/// Global-memory address: `array[row][point]` over SoA field arrays.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GAddr {
    /// Which array.
    pub array: GlobalId,
    /// Row (species/field index). A register row enables warp indexing.
    pub row: IdxOp,
    /// Point selector.
    pub point: PointRef,
}

/// Shared-memory address in f64 words:
/// `(base?) + imm + lane * lane_stride`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SAddr {
    /// Optional dynamic word offset from an index register.
    pub base: Option<IdxReg>,
    /// Static word offset.
    pub imm: u32,
    /// Per-lane stride in words (typically 0 or 1).
    pub lane_stride: u32,
}

impl SAddr {
    /// `imm + lane * 1` — the common `scratch[row][lane]` pattern.
    pub fn lane(imm: u32) -> SAddr {
        SAddr { base: None, imm, lane_stride: 1 }
    }

    /// Static word address, same for all lanes.
    pub fn uniform(imm: u32) -> SAddr {
        SAddr { base: None, imm, lane_stride: 0 }
    }

    /// Dynamic row from a register plus per-lane stride 1.
    pub fn dyn_lane(base: IdxReg, imm: u32) -> SAddr {
        SAddr { base: Some(base), imm, lane_stride: 1 }
    }

    /// Dynamic uniform address.
    pub fn dyn_uniform(base: IdxReg, imm: u32) -> SAddr {
        SAddr { base: Some(base), imm, lane_stride: 0 }
    }
}

/// Floating-point comparison operators for [`Instr::DCmp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

/// Index (integer) instructions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IdxInstr {
    /// `dst = src`.
    Mov { dst: IdxReg, src: IdxOp },
    /// `dst = a + b`.
    Add { dst: IdxReg, a: IdxOp, b: IdxOp },
    /// `dst = a * b`.
    Mul { dst: IdxReg, a: IdxOp, b: IdxOp },
    /// `dst = lane id` (0..32).
    LaneId { dst: IdxReg },
    /// `dst = warp id`.
    WarpId { dst: IdxReg },
    /// Load a warp-indexing constant from an integer constant bank (§5.3).
    LdConst { dst: IdxReg, bank: u16, idx: IdxOp },
    /// Broadcast an index register from a fixed lane (Kepler `__shfl`).
    Shfl { dst: IdxReg, src: IdxReg, lane: u8 },
    /// `dst = (point_set % k) * stride` — the rotating buffer-region
    /// offset of a K-stage pipelined schedule. `point_set` is the current
    /// [`Node::PointLoop`] iteration; all lanes receive the same value.
    PipeOff { dst: IdxReg, k: u8, stride: u32 },
}

/// Executable instructions. Each executes for all 32 lanes of a warp in
/// lock step unless a lane predicate says otherwise.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// `dst = src`.
    DMov { dst: Reg, src: Op },
    /// `dst = a + b`.
    DAdd { dst: Reg, a: Op, b: Op },
    /// `dst = a - b`.
    DSub { dst: Reg, a: Op, b: Op },
    /// `dst = a * b`.
    DMul { dst: Reg, a: Op, b: Op },
    /// `dst = a * b + c`. `const_c` marks the third operand as sourced from
    /// the constant cache, which has reduced throughput on Kepler (§6.1).
    DFma { dst: Reg, a: Op, b: Op, c: Op, const_c: bool },
    /// `dst = a / b` (Newton's method on real GPUs — costed accordingly).
    DDiv { dst: Reg, a: Op, b: Op },
    /// `dst = sqrt(a)`.
    DSqrt { dst: Reg, a: Op },
    /// `dst = exp(a)` — lowered to a Taylor-series DFMA chain on hardware
    /// (12 DFMAs with constant-cache operands, §6.1).
    DExp { dst: Reg, a: Op },
    /// `dst = ln(a)`.
    DLog { dst: Reg, a: Op },
    /// `dst = log10(a)`.
    DLog10 { dst: Reg, a: Op },
    /// `dst = cbrt(a)` (Landau-Teller rates).
    DCbrt { dst: Reg, a: Op },
    /// `dst = a^b` (general power; rare — non-integer stoichiometry).
    DPow { dst: Reg, a: Op, b: Op },
    /// `dst = max(a, b)`.
    DMax { dst: Reg, a: Op, b: Op },
    /// `dst = min(a, b)`.
    DMin { dst: Reg, a: Op, b: Op },
    /// `dst = -a`.
    DNeg { dst: Reg, a: Op },
    /// `dst = if pred != 0.0 { a } else { b }` — branch-free select.
    DSel { dst: Reg, pred: Reg, a: Op, b: Op },
    /// `dst = (a cmp b) ? 1.0 : 0.0`.
    DCmp { dst: Reg, cmp: Cmp, a: Op, b: Op },
    /// Global load; `ldg` uses the Kepler texture path (§6 baselines).
    LdGlobal { dst: Reg, addr: GAddr, ldg: bool },
    /// Global store.
    StGlobal { src: Op, addr: GAddr },
    /// Shared-memory load.
    LdShared { dst: Reg, addr: SAddr },
    /// Shared-memory store; `lane_pred` restricts to one lane (the Fermi
    /// shared-mirror broadcast of Listing 2 writes from a single lane).
    StShared { src: Op, addr: SAddr, lane_pred: Option<u8> },
    /// Load a double from a constant bank through the constant cache.
    LdConst { dst: Reg, bank: u16, idx: IdxOp },
    /// Local-memory (spill) load — per-thread slot.
    LdLocal { dst: Reg, slot: u32 },
    /// Local-memory (spill) store.
    StLocal { src: Op, slot: u32 },
    /// Broadcast `src` from a fixed lane to all lanes (Kepler shuffle;
    /// costed as the two 32-bit shuffles of Listing 3).
    Shfl { dst: Reg, src: Reg, lane: u8 },
    /// Index-register operation.
    Idx(IdxInstr),
    /// Non-blocking named-barrier arrival (PTX `bar.arrive`).
    BarArrive { bar: u8, warps: u16 },
    /// Blocking named-barrier wait (PTX `bar.sync`).
    BarSync { bar: u8, warps: u16 },
    /// Stage-rotated [`Instr::BarArrive`]: arrives at barrier
    /// `base + point_set % k`, where `point_set` is the current
    /// [`Node::PointLoop`] iteration. K-stage pipelined schedules use one
    /// such instruction where a single-buffered schedule uses a fixed
    /// barrier id, giving each in-flight buffer region its own
    /// full/empty barrier pair.
    BarArriveStage { base: u8, k: u8, warps: u16 },
    /// Stage-rotated [`Instr::BarSync`]: waits on `base + point_set % k`.
    BarSyncStage { base: u8, k: u8, warps: u16 },
    /// Async-copy (Hopper-class `cp.async`): move one value per lane from
    /// global `array[row][point]` directly into shared memory at `addr`
    /// without staging through a register. Functionally the copy is
    /// visible immediately (the simulator has no split
    /// commit/wait-group); ordering against consumers is entirely the
    /// job of the surrounding barrier protocol, which the schedule
    /// verifier checks.
    CpAsync { addr: SAddr, array: GlobalId, row: IdxOp, point: PointRef },
}

impl Instr {
    /// Issue slots this instruction occupies (warp-instructions). Multi-slot
    /// costs reflect the FMA chains real hardware expands these into.
    pub fn issue_slots(&self) -> usize {
        match self {
            Instr::DExp { .. } => 12,
            Instr::DLog { .. } => 12,
            Instr::DLog10 { .. } => 13,
            Instr::DDiv { .. } => 8,
            Instr::DSqrt { .. } => 8,
            Instr::DCbrt { .. } => 14,
            Instr::DPow { .. } => 24,
            Instr::Shfl { .. } => 2, // hi/lo 32-bit shuffle pair (Listing 3)
            _ => 1,
        }
    }

    /// Double-precision floating-point operations performed per lane
    /// (FMA = 2, matching how the paper counts GFLOPS).
    pub fn flops(&self) -> usize {
        match self {
            Instr::DAdd { .. }
            | Instr::DSub { .. }
            | Instr::DMul { .. }
            | Instr::DMax { .. }
            | Instr::DMin { .. }
            | Instr::DNeg { .. }
            | Instr::DSel { .. }
            | Instr::DCmp { .. } => 1,
            Instr::DFma { .. } => 2,
            Instr::DExp { .. } | Instr::DLog { .. } => 24,
            Instr::DLog10 { .. } => 26,
            Instr::DDiv { .. } | Instr::DSqrt { .. } => 16,
            Instr::DCbrt { .. } => 28,
            Instr::DPow { .. } => 48,
            _ => 0,
        }
    }

    /// True if the instruction issues on the double-precision pipe.
    pub fn is_dp(&self) -> bool {
        self.flops() > 0
    }

    /// DP issue slots whose operand comes from the constant cache (reduced
    /// throughput on Kepler, §6.1). `exp_from_regs` is the ablation switch:
    /// when the compiler keeps the exp-series constants in registers, the
    /// DExp chain no longer touches the constant cache.
    pub fn const_operand_slots(&self, exp_from_regs: bool) -> usize {
        match self {
            Instr::DFma { const_c: true, .. } => 1,
            Instr::DExp { .. } if !exp_from_regs => 12,
            _ => 0,
        }
    }
}

/// Structured control-flow tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// A straight-line instruction.
    Op(Instr),
    /// Executed only by warps whose bit is set in `mask` — the one-hot
    /// bit-mask branch of §5.1 / Listing 1.
    WarpIf {
        /// One bit per warp id.
        mask: u64,
        /// Body.
        body: Vec<Node>,
    },
    /// Indirect branch on warp id (§5.1): warp `w` executes
    /// `cases[case_of_warp[w]]`.
    WarpSwitch {
        /// Case index per warp id (length = warps per CTA).
        case_of_warp: Vec<usize>,
        /// Case bodies.
        cases: Vec<Vec<Node>>,
    },
    /// Uniform counted loop (all warps run all iterations).
    Loop {
        /// Trip count.
        count: u32,
        /// Body.
        body: Vec<Node>,
    },
    /// Streaming point loop (§5.2): the CTA iterates over `iters` sets of
    /// 32 points; `PointRef::Lane` resolves against the current set.
    PointLoop {
        /// Number of 32-point sets.
        iters: u32,
        /// Body.
        body: Vec<Node>,
    },
}

/// A declared global array (SoA field: `rows x points` doubles).
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayDecl {
    /// Name for diagnostics.
    pub name: String,
    /// Row count (fields/species); each row holds one value per point.
    pub rows: usize,
    /// True if the kernel writes it (outputs are returned by the launcher).
    pub output: bool,
}

/// A complete compiled kernel.
#[derive(Debug, Clone)]
pub struct Kernel {
    /// Kernel name.
    pub name: String,
    /// Structured body.
    pub body: Vec<Node>,
    /// Warps per CTA.
    pub warps_per_cta: usize,
    /// Grid points each CTA processes in total (across its point loop).
    pub points_per_cta: usize,
    /// Double registers per thread.
    pub dregs_per_thread: usize,
    /// Index registers per thread.
    pub iregs_per_thread: usize,
    /// Shared memory words (f64) per CTA.
    pub shared_words: usize,
    /// Local (spill) words per thread.
    pub local_words_per_thread: usize,
    /// Double-precision constant banks (constant memory contents).
    pub const_banks: Vec<Vec<f64>>,
    /// Integer constant banks (warp-indexing constants, §5.3).
    pub iconst_banks: Vec<Vec<u32>>,
    /// Distinct named barriers used.
    pub barriers_used: usize,
    /// Declared global arrays; inputs then outputs in any order.
    pub global_arrays: Vec<ArrayDecl>,
    /// Spill bytes per thread (compiler metadata, §6.3 reporting).
    pub spilled_bytes_per_thread: usize,
    /// Ablation switch: exp-series constants kept in registers (§6.1's
    /// "incorrect exponential" experiment — removes the const-operand
    /// throughput penalty).
    pub exp_const_from_registers: bool,
}

impl Kernel {
    /// Equivalent 32-bit registers per thread (doubles take two).
    pub fn regs32_per_thread(&self) -> usize {
        self.dregs_per_thread * 2 + self.iregs_per_thread
    }

    /// Threads per CTA.
    pub fn threads_per_cta(&self) -> usize {
        self.warps_per_cta * crate::WARP_SIZE
    }

    /// Shared memory bytes per CTA.
    pub fn shared_bytes(&self) -> usize {
        self.shared_words * 8
    }

    /// Static instruction count (code footprint for the icache model).
    pub fn static_instructions(&self) -> usize {
        fn count(nodes: &[Node]) -> usize {
            nodes
                .iter()
                .map(|n| match n {
                    Node::Op(_) => 1,
                    Node::WarpIf { body, .. } => 1 + count(body),
                    Node::WarpSwitch { cases, .. } => {
                        1 + cases.iter().map(|c| count(c)).sum::<usize>()
                    }
                    Node::Loop { body, .. } | Node::PointLoop { body, .. } => 1 + count(body),
                })
                .sum()
        }
        count(&self.body)
    }

    /// Sum of double constants across banks (for Figure 10 style reports).
    pub fn total_dconstants(&self) -> usize {
        self.const_banks.iter().map(|b| b.len()).sum()
    }

    /// Quick structural sanity checks (register ids in range, barrier ids
    /// in range, global ids declared). Returns a description of the first
    /// problem found.
    pub fn check(&self) -> Result<(), String> {
        let mut err = None;
        self.visit_ops(&mut |i| {
            if err.is_some() {
                return;
            }
            let mut chk_reg = |r: Reg, what: &str| {
                if usize::from(r) >= self.dregs_per_thread {
                    err = Some(format!("{what} register r{r} out of range"));
                }
            };
            match i {
                Instr::DMov { dst, src } => {
                    chk_reg(*dst, "dst");
                    if let Op::Reg(r) = src {
                        chk_reg(*r, "src");
                    }
                }
                Instr::BarArrive { bar, .. } | Instr::BarSync { bar, .. }
                    if usize::from(*bar) >= self.barriers_used => {
                        err = Some(format!("barrier {bar} out of declared range"));
                    }
                Instr::BarArriveStage { base, k, .. } | Instr::BarSyncStage { base, k, .. }
                    if *k == 0
                        || usize::from(*base) + usize::from(*k) > self.barriers_used => {
                        err = Some(format!(
                            "stage barriers {base}..{base}+{k} out of declared range"
                        ));
                    }
                Instr::CpAsync { array, .. } if array.0 >= self.global_arrays.len() => {
                    err = Some(format!("global array {} undeclared", array.0));
                }
                Instr::LdGlobal { addr, .. } | Instr::StGlobal { addr, .. }
                    if addr.array.0 >= self.global_arrays.len() => {
                        err = Some(format!("global array {} undeclared", addr.array.0));
                    }
                Instr::LdConst { bank, .. }
                    if usize::from(*bank) >= self.const_banks.len() => {
                        err = Some(format!("const bank {bank} undeclared"));
                    }
                _ => {}
            }
        });
        match err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Visit every instruction in the tree (all branches).
    pub fn visit_ops(&self, f: &mut impl FnMut(&Instr)) {
        fn walk(nodes: &[Node], f: &mut impl FnMut(&Instr)) {
            for n in nodes {
                match n {
                    Node::Op(i) => f(i),
                    Node::WarpIf { body, .. } => walk(body, f),
                    Node::WarpSwitch { cases, .. } => {
                        for c in cases {
                            walk(c, f);
                        }
                    }
                    Node::Loop { body, .. } | Node::PointLoop { body, .. } => walk(body, f),
                }
            }
        }
        walk(&self.body, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_kernel() -> Kernel {
        Kernel {
            name: "t".into(),
            body: vec![],
            warps_per_cta: 4,
            points_per_cta: 32,
            dregs_per_thread: 8,
            iregs_per_thread: 2,
            shared_words: 64,
            local_words_per_thread: 0,
            const_banks: vec![],
            iconst_banks: vec![],
            barriers_used: 0,
            global_arrays: vec![],
            spilled_bytes_per_thread: 0,
            exp_const_from_registers: false,
        }
    }

    #[test]
    fn regs32_counts_doubles_twice() {
        let k = empty_kernel();
        assert_eq!(k.regs32_per_thread(), 18);
        assert_eq!(k.threads_per_cta(), 128);
        assert_eq!(k.shared_bytes(), 512);
    }

    #[test]
    fn issue_slots_and_flops() {
        let fma = Instr::DFma { dst: 0, a: Op::Imm(1.0), b: Op::Imm(2.0), c: Op::Imm(3.0), const_c: false };
        assert_eq!(fma.issue_slots(), 1);
        assert_eq!(fma.flops(), 2);
        let exp = Instr::DExp { dst: 0, a: Op::Imm(1.0) };
        assert_eq!(exp.issue_slots(), 12);
        assert_eq!(exp.flops(), 24);
        assert!(exp.is_dp());
        let shfl = Instr::Shfl { dst: 0, src: 1, lane: 3 };
        assert_eq!(shfl.issue_slots(), 2);
        assert_eq!(shfl.flops(), 0);
        assert!(!shfl.is_dp());
    }

    #[test]
    fn const_operand_slots_and_ablation() {
        let exp = Instr::DExp { dst: 0, a: Op::Imm(1.0) };
        assert_eq!(exp.const_operand_slots(false), 12);
        assert_eq!(exp.const_operand_slots(true), 0);
        let fma_c = Instr::DFma { dst: 0, a: Op::Imm(1.0), b: Op::Imm(2.0), c: Op::Imm(3.0), const_c: true };
        assert_eq!(fma_c.const_operand_slots(false), 1);
        assert_eq!(fma_c.const_operand_slots(true), 1);
    }

    #[test]
    fn static_instruction_count_covers_all_branches() {
        let mut k = empty_kernel();
        k.body = vec![
            Node::Op(Instr::DMov { dst: 0, src: Op::Imm(0.0) }),
            Node::WarpSwitch {
                case_of_warp: vec![0, 0, 1, 1],
                cases: vec![
                    vec![Node::Op(Instr::DMov { dst: 1, src: Op::Imm(1.0) })],
                    vec![
                        Node::Op(Instr::DMov { dst: 1, src: Op::Imm(2.0) }),
                        Node::Op(Instr::DMov { dst: 2, src: Op::Imm(3.0) }),
                    ],
                ],
            },
            Node::Loop {
                count: 4,
                body: vec![Node::Op(Instr::DAdd { dst: 0, a: Op::Reg(0), b: Op::Imm(1.0) })],
            },
        ];
        // 1 + (1 + 1 + 2) + (1 + 1)
        assert_eq!(k.static_instructions(), 7);
    }

    #[test]
    fn check_catches_out_of_range() {
        let mut k = empty_kernel();
        k.body = vec![Node::Op(Instr::DMov { dst: 99, src: Op::Imm(0.0) })];
        assert!(k.check().is_err());
        k.body = vec![Node::Op(Instr::BarSync { bar: 3, warps: 2 })];
        assert!(k.check().is_err());
        k.barriers_used = 4;
        assert!(k.check().is_ok());
    }

    #[test]
    fn check_catches_stage_barrier_and_cp_async_ranges() {
        let mut k = empty_kernel();
        // base 2 + k 3 needs barriers 2..5 declared.
        k.body = vec![Node::Op(Instr::BarSyncStage { base: 2, k: 3, warps: 2 })];
        k.barriers_used = 4;
        assert!(k.check().is_err());
        k.barriers_used = 5;
        assert!(k.check().is_ok());
        // k = 0 is malformed regardless of the declared budget.
        k.body = vec![Node::Op(Instr::BarArriveStage { base: 0, k: 0, warps: 2 })];
        assert!(k.check().is_err());
        // CpAsync must name a declared array.
        k.body = vec![Node::Op(Instr::CpAsync {
            addr: SAddr::lane(0),
            array: GlobalId(0),
            row: IdxOp::Imm(0),
            point: PointRef::Lane,
        })];
        assert!(k.check().is_err());
        k.global_arrays.push(ArrayDecl { name: "a".into(), rows: 1, output: false });
        assert!(k.check().is_ok());
        // One issue slot, no flops: a pure memory-engine operation.
        let cp = Instr::CpAsync {
            addr: SAddr::lane(0),
            array: GlobalId(0),
            row: IdxOp::Imm(0),
            point: PointRef::Lane,
        };
        assert_eq!(cp.issue_slots(), 1);
        assert_eq!(cp.flops(), 0);
    }

    #[test]
    fn saddr_helpers() {
        assert_eq!(SAddr::lane(64), SAddr { base: None, imm: 64, lane_stride: 1 });
        assert_eq!(SAddr::uniform(5).lane_stride, 0);
        assert_eq!(SAddr::dyn_lane(2, 0).base, Some(2));
    }
}
