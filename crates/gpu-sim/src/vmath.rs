//! Batched vector math for the transcendental floor.
//!
//! After the PR 6 lane kernels, ~75% of the DME-viscosity engine CTA is
//! serialized scalar libm `exp` calls. This module gives the engine and
//! interpreter one shared `exp` implementation with two selectable
//! numerics, chosen **once per process**:
//!
//! * **default** — every element goes through `f64::exp` (libm), exactly
//!   as the interpreter always has. With the `vexp` cargo feature off
//!   this is the *only* path, so default builds are bit-identical to
//!   pre-vmath behavior.
//! * **`vexp` feature + SIMD hardware** — a table-driven polynomial exp
//!   (range-reduce by `ln2/16`, a 16-entry `2^(j/16)` table, degree-7
//!   Taylor/Horner in `mul_add`, scale by `2^e` with a single final
//!   rounding). On AVX-512 machines a hand-written 8-wide intrinsics
//!   mirror runs (`exp_slice_avx512`: `vpermi2pd` keeps the whole
//!   table in two zmm registers, `vscalefpd` does the final scale);
//!   AVX2-only machines get the same scalar body autovectorized 4 wide.
//!   Dispatch follows the `lane_kernel!` pattern: CPUID `OnceLock`
//!   checks (`lanes::simd_ok` / `lanes::simd512_ok`)
//!   and a per-process veto via `SINGE_VEXP=0`.
//!
//! Bit-exactness discipline: the polynomial body uses only exactly
//! rounded operations (`+`, `-`, `*`, `mul_add`, compares, bit moves,
//! table loads), so the baseline compilation, the AVX2 compilation, and
//! the AVX-512 intrinsics mirror of the same algorithm produce
//! identical bits — which implementation *family* is active changes the
//! numerics, but within a process every `exp` call site (interpreter
//! fast path, engine scalar uop, engine batched `exp_slice`,
//! lowering-time rewrite corpus checks) agrees bit for bit. That is
//! what keeps the engine-vs-interpreter differential suite green by
//! construction with the feature on or off.

use crate::lanes::Lanes;

/// Whether the polynomial exp is active for this process. `false`
/// whenever the `vexp` feature is off; otherwise requires AVX2+FMA and
/// honors a `SINGE_VEXP=0` veto. Decided once — lowered engine programs
/// and cached results must not see the numerics change mid-process.
#[inline(always)]
pub fn vexp_active() -> bool {
    #[cfg(feature = "vexp")]
    {
        use std::sync::OnceLock;
        static ON: OnceLock<bool> = OnceLock::new();
        *ON.get_or_init(|| {
            crate::lanes::simd_ok() && std::env::var("SINGE_VEXP").as_deref() != Ok("0")
        })
    }
    #[cfg(not(feature = "vexp"))]
    false
}

/// `out[i] = exp(xs[i])` for every element, through the process-wide
/// implementation. The engine's batched `ExpBatch` uop funnels a whole
/// segment's worth of gathered operand lanes through one call here.
///
/// Position independence: `exp_slice` applies a pure per-element
/// function, so `exp_slice(xs)[i] == exp1(xs[i])` bitwise regardless of
/// slice length, alignment, or how operands were batched together.
#[inline]
pub fn exp_slice(xs: &[f64], out: &mut [f64]) {
    assert_eq!(xs.len(), out.len(), "exp_slice operand/result length mismatch");
    #[cfg(all(feature = "vexp", target_arch = "x86_64"))]
    if vexp_active() {
        if crate::lanes::simd512_ok() {
            // SAFETY: `simd512_ok` verified AVX-512 F+DQ via CPUID.
            unsafe { exp_slice_avx512(xs, out) };
            return;
        }
        // SAFETY: `vexp_active` verified AVX2+FMA via CPUID.
        unsafe { exp_slice_avx(xs, out) };
        return;
    }
    for (o, x) in out.iter_mut().zip(xs) {
        *o = x.exp();
    }
}

/// One warp chunk of `exp`, for the interpreter's `UnKind::Exp` fast
/// path and the engine's unbatched exp uops.
#[inline(always)]
pub(crate) fn exp_lanes(a: &Lanes, out: &mut Lanes) {
    exp_slice(a, out);
}

/// Single-value `exp` through the process-wide implementation. Used by
/// the lowering optimizer's rewrite gate: candidate `exp`-chain
/// rewrites are evaluated with exactly the numerics the runtime will
/// use, so a lowering-time bit-identity check is decisive.
#[inline]
pub fn exp1(x: f64) -> f64 {
    #[cfg(feature = "vexp")]
    if vexp_active() {
        // Outside the target_feature wrapper `mul_add` may fall back to
        // libm `fma`, which is the same correctly-rounded operation —
        // identical bits, just slower. Fine for lowering-time checks.
        return exp_poly(x);
    }
    x.exp()
}

/// The AVX2+FMA compilation of the element loop, for AVX-512-less
/// hardware. Keeping the loop in a small standalone `#[target_feature]`
/// function is what lets LLVM vectorize it 4 lanes wide (see the
/// `lane_kernel!` notes in [`crate::lanes`]).
#[cfg(all(feature = "vexp", target_arch = "x86_64"))]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn exp_slice_avx(xs: &[f64], out: &mut [f64]) {
    for (o, x) in out.iter_mut().zip(xs) {
        *o = exp_poly(*x);
    }
}

/// Hand-written 8-wide AVX-512 mirror of [`exp_poly`], instruction for
/// instruction:
///
/// * the float ops are the same exactly rounded fma/mul/sub sequence;
/// * the `vpermi2pd` two-register lookup returns exactly
///   `EXP_TAB[ki & 15]` (the index uses the low 4 bits of each lane,
///   which equal the scalar path's `(low 32 bits) & 15`);
/// * `e = ki >> 4` is a 64-bit `slli 32` + `srai 36`, reproducing the
///   scalar path's sign-extended arithmetic shift of the low 32 bits;
/// * `vscalefpd(m, e)` computes `round(m·2^e)` with a single rounding —
///   exactly the scalar path's `(m·s1)·s2`, whose first multiply is
///   exact (see [`exp_poly`]). Overflow → +inf and gradual subnormal
///   underflow agree because both are single-rounded.
///
/// Lanes where the two disagree on intermediate garbage (|x| large
/// enough that the magic-trick `ki` differs from the float-side `e`,
/// NaN) are exactly the lanes both paths overwrite with the same
/// saturation blends, so observable results stay bit-identical.
#[cfg(all(feature = "vexp", target_arch = "x86_64"))]
#[target_feature(enable = "avx512f", enable = "avx512dq")]
unsafe fn exp_slice_avx512(xs: &[f64], out: &mut [f64]) {
    use std::arch::x86_64::*;

    let tab_lo = _mm512_loadu_si512(EXP_TAB.as_ptr() as *const _);
    let tab_hi = _mm512_loadu_si512(EXP_TAB.as_ptr().add(8) as *const _);
    let invln2 = _mm512_set1_pd(INVLN2_16);
    let magic = _mm512_set1_pd(MAGIC);
    let nln2hi = _mm512_set1_pd(-LN2_16_HI);
    let nln2lo = _mm512_set1_pd(-LN2_16_LO);
    let one = _mm512_set1_pd(1.0);
    let over = _mm512_set1_pd(OVER);
    let under = _mm512_set1_pd(UNDER);
    let inf = _mm512_set1_pd(f64::INFINITY);
    let zero = _mm512_setzero_pd();
    let fifteen = _mm512_set1_epi64(15);

    let n = xs.len();
    let mut i = 0;
    while i + 8 <= n {
        let x = _mm512_loadu_pd(xs.as_ptr().add(i));
        let kf = _mm512_fmadd_pd(x, invln2, magic);
        let k = _mm512_sub_pd(kf, magic);
        let kbits = _mm512_castpd_si512(kf);
        let r = _mm512_fmadd_pd(k, nln2hi, x);
        let r = _mm512_fmadd_pd(k, nln2lo, r);

        let mut p = _mm512_set1_pd(1.0 / 5_040.0);
        p = _mm512_fmadd_pd(p, r, _mm512_set1_pd(1.0 / 720.0));
        p = _mm512_fmadd_pd(p, r, _mm512_set1_pd(1.0 / 120.0));
        p = _mm512_fmadd_pd(p, r, _mm512_set1_pd(1.0 / 24.0));
        p = _mm512_fmadd_pd(p, r, _mm512_set1_pd(1.0 / 6.0));
        p = _mm512_fmadd_pd(p, r, _mm512_set1_pd(0.5));
        p = _mm512_fmadd_pd(p, r, one);
        p = _mm512_fmadd_pd(p, r, one);

        let j = _mm512_and_epi64(kbits, fifteen);
        let t = _mm512_castsi512_pd(_mm512_permutex2var_epi64(tab_lo, j, tab_hi));
        let m = _mm512_mul_pd(p, t);
        let e = _mm512_srai_epi64::<36>(_mm512_slli_epi64::<32>(kbits));
        let v = _mm512_scalef_pd(m, _mm512_cvtepi64_pd(e));

        let nan_m = _mm512_cmp_pd_mask::<_CMP_UNORD_Q>(x, x);
        let over_m = _mm512_cmp_pd_mask::<_CMP_GT_OQ>(x, over);
        let under_m = _mm512_cmp_pd_mask::<_CMP_LT_OQ>(x, under);
        let v = _mm512_mask_blend_pd(over_m, v, inf);
        let v = _mm512_mask_blend_pd(under_m, v, zero);
        let v = _mm512_mask_blend_pd(nan_m, v, x);
        _mm512_storeu_pd(out.as_mut_ptr().add(i), v);
        i += 8;
    }
    while i < n {
        *out.get_unchecked_mut(i) = exp_poly(*xs.get_unchecked(i));
        i += 1;
    }
}

/// Bits of `2^(j/16)` correctly rounded, `j = 0..16` — the classic
/// 16-entry exp table (the same values glibc's `exp` tables carry).
/// 16 entries is the sweet spot for the AVX-512 path: the whole table
/// fits in two zmm registers, so the lookup is one `vpermi2pd` with no
/// memory gather.
#[cfg(feature = "vexp")]
const EXP_TAB: [u64; 16] = [
    0x3FF0_0000_0000_0000, // 2^(0/16)
    0x3FF0_B558_6CF9_890F,
    0x3FF1_72B8_3C7D_517B,
    0x3FF2_387A_6E75_6238,
    0x3FF3_06FE_0A31_B715,
    0x3FF3_DEA6_4C12_3422,
    0x3FF4_BFDA_D536_2A27,
    0x3FF5_AB07_DD48_5429,
    0x3FF6_A09E_667F_3BCD, // 2^(8/16) = sqrt(2)
    0x3FF7_A114_73EB_0187,
    0x3FF8_ACE5_422A_A0DB,
    0x3FF9_C491_82A3_F090,
    0x3FFA_E89F_995A_D3AD,
    0x3FFC_199B_DD85_529C,
    0x3FFD_5818_DCFB_A487,
    0x3FFE_A4AF_A2A4_90DA, // 2^(15/16)
];

/// `16/ln2`, `1.5·2^52` (the branch-free nearest-integer magic), the
/// Cody–Waite split of `ln2/16` (HI has 27 trailing zero bits, so
/// `k·LN2_16_HI` is exact for the full `|k| < 2^15` range reached by
/// finite-exp arguments), and the saturation thresholds.
#[cfg(feature = "vexp")]
const INVLN2_16: f64 = f64::from_bits(0x4037_1547_652B_82FE);
#[cfg(feature = "vexp")]
const MAGIC: f64 = 6_755_399_441_055_744.0;
#[cfg(feature = "vexp")]
const LN2_16_HI: f64 = f64::from_bits(0x3FA6_2E42_F800_0000);
#[cfg(feature = "vexp")]
const LN2_16_LO: f64 = f64::from_bits(0x3E0B_E8E7_BCD5_E4F2);
#[cfg(feature = "vexp")]
const OVER: f64 = 709.782712893384;
#[cfg(feature = "vexp")]
const UNDER: f64 = -745.1332191019412;

/// Table-driven polynomial `exp`: `x = k·(ln2/16) + r` with
/// `|r| ≤ ln2/32`, `exp(r)` by a degree-7 Taylor series in
/// Horner/`mul_add` form (truncation ~1.2e-18 relative over the reduced
/// range), `2^(j/16)` from [`EXP_TAB`] with `j = k mod 16`, and the
/// remaining `2^e` scale applied in two exact power-of-two multiplies
/// (the split keeps the subnormal underflow range and the overflow edge
/// correct with a single final rounding).
///
/// Every operation is exactly rounded and rounding-mode-independent in
/// practice (the process never leaves round-to-nearest-even), so the
/// baseline and AVX2 compilations of this body — and the hand-written
/// AVX-512 mirror in [`exp_slice_avx512`] — are bit-identical. Accuracy
/// is a few ulp — *not* correctly rounded and *not* equal to libm,
/// which is why the whole family is feature-gated and process-global.
#[cfg(feature = "vexp")]
#[inline(always)]
fn exp_poly(x: f64) -> f64 {
    let kf = x.mul_add(INVLN2_16, MAGIC);
    let k = kf - MAGIC;
    // Two's-complement k sits in the low mantissa bits of kf. Garbage
    // for |x| out of range — harmless, those lanes are selected away.
    let ki = (kf.to_bits() & 0xffff_ffff) as u32 as i32;
    let r = k.mul_add(-LN2_16_HI, x);
    let r = k.mul_add(-LN2_16_LO, r);

    // exp(r) ≈ Σ r^n / n! for n = 0..=7 over |r| ≤ ln2/32.
    let mut p: f64 = 1.0 / 5_040.0; // 1/7!
    p = p.mul_add(r, 1.0 / 720.0); // 1/6!
    p = p.mul_add(r, 1.0 / 120.0); // 1/5!
    p = p.mul_add(r, 1.0 / 24.0); // 1/4!
    p = p.mul_add(r, 1.0 / 6.0); // 1/3!
    p = p.mul_add(r, 0.5);
    p = p.mul_add(r, 1.0);
    p = p.mul_add(r, 1.0);

    let m = p * f64::from_bits(EXP_TAB[(ki & 15) as usize]);
    // 2^e in two halves: each factor stays a normal power of two for
    // every reachable e (e in [-1075, 1025] → halves in [-538, 513]),
    // `m·s1` stays normal (|m| ∈ (2^-1, 2^1.1)) so the first multiply
    // is exact, and the second rounds once — into the subnormal range
    // when e is deeply negative, to +inf past the overflow threshold.
    // One exact multiply + one rounding of `m·2^e` is precisely what
    // AVX-512 `vscalefpd` computes, so the mirror stays bit-identical.
    let e = ki >> 4;
    let e1 = e >> 1;
    let e2 = e - e1;
    let s1 = f64::from_bits(((1023i64 + e1 as i64) as u64) << 52);
    let s2 = f64::from_bits(((1023i64 + e2 as i64) as u64) << 52);
    let v = (m * s1) * s2;

    // Ordered selects, if-converted to blends under AVX2. NaN inputs
    // pass through with their payload; out-of-range inputs saturate.
    if x.is_nan() {
        x
    } else if x > OVER {
        f64::INFINITY
    } else if x < UNDER {
        0.0
    } else {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WARP_SIZE;

    /// Bit patterns that exercise every special-value class, mirroring
    /// the differential corpus in `tests/engine_prop.rs`.
    const SPECIALS: [u64; 13] = [
        0x0000_0000_0000_0000, // +0.0
        0x8000_0000_0000_0000, // -0.0
        0x0000_0000_0000_0001, // smallest subnormal
        0x8000_0000_0000_0001, // -smallest subnormal
        0x000f_ffff_ffff_ffff, // largest subnormal
        0x7fef_ffff_ffff_ffff, // f64::MAX
        0xffef_ffff_ffff_ffff, // -f64::MAX
        0x7ff0_0000_0000_0000, // +inf
        0xfff0_0000_0000_0000, // -inf
        0x7ff8_0000_0000_0000, // quiet NaN
        0x7ff8_dead_beef_0001, // NaN with payload
        0x3ff0_0000_0000_0000, // 1.0
        0x7e37_e43c_8800_759c, // 1e300
    ];

    fn corpus() -> Vec<f64> {
        let mut v: Vec<f64> = SPECIALS.iter().map(|&b| f64::from_bits(b)).collect();
        v.extend_from_slice(&[
            0.5, -0.5, 1.0, -1.0, 3.75, -3.75, 88.7, -88.7, 350.0, -350.0, 700.1, -700.1,
            709.78, 710.0, -708.4, -745.0, -745.2, -746.0, 1e-300, -1e-300, 6.25e-3, 1e3,
        ]);
        v
    }

    #[test]
    fn exp_slice_matches_exp1_elementwise() {
        // Position independence: slices of every length and offset give
        // the same bits as the single-value entry point.
        let xs = corpus();
        for len in [1, 2, 3, WARP_SIZE - 1, WARP_SIZE, 2 * WARP_SIZE + 5] {
            let buf: Vec<f64> = xs.iter().cycle().take(len).copied().collect();
            let mut out = vec![0.0; len];
            exp_slice(&buf, &mut out);
            for (i, (&x, &o)) in buf.iter().zip(&out).enumerate() {
                assert_eq!(
                    o.to_bits(),
                    exp1(x).to_bits(),
                    "len {len} elem {i} x={x:e}"
                );
            }
        }
    }

    #[test]
    fn exp_lanes_matches_exp_slice() {
        let xs = corpus();
        let mut a = [0.0; WARP_SIZE];
        for (l, slot) in a.iter_mut().enumerate() {
            *slot = xs[l % xs.len()];
        }
        let mut chunk = [0.0; WARP_SIZE];
        let mut flat = [0.0; WARP_SIZE];
        exp_lanes(&a, &mut chunk);
        exp_slice(&a, &mut flat);
        for l in 0..WARP_SIZE {
            assert_eq!(chunk[l].to_bits(), flat[l].to_bits(), "lane {l}");
        }
    }

    #[test]
    fn special_values_behave() {
        // Whatever family is active: exp(NaN) is NaN, exp(+inf)=+inf,
        // exp(-inf)=0, exp(±0)=1, overflow saturates to +inf, deep
        // underflow to +0.
        assert!(exp1(f64::NAN).is_nan());
        assert_eq!(exp1(f64::INFINITY), f64::INFINITY);
        assert_eq!(exp1(f64::NEG_INFINITY).to_bits(), 0.0f64.to_bits());
        assert_eq!(exp1(0.0).to_bits(), 1.0f64.to_bits());
        assert_eq!(exp1(-0.0).to_bits(), 1.0f64.to_bits());
        assert_eq!(exp1(1000.0), f64::INFINITY);
        assert_eq!(exp1(-1000.0).to_bits(), 0.0f64.to_bits());
        // Subnormal arguments: exp(x) ≈ 1.
        assert_eq!(exp1(f64::from_bits(1)).to_bits(), 1.0f64.to_bits());
    }

    #[test]
    fn dense_sweep_slice_matches_scalar_and_stays_close_to_libm() {
        // The AVX-512 mirror is hand-written intrinsics, so exercise it
        // (or whichever path dispatch picked) against the scalar body on
        // a dense pseudo-random sweep of the finite-exp argument range
        // plus raw bit patterns, all lengths crossing the 8-wide blocks.
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            // xorshift64* — deterministic, no dev-dependency.
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_f491_4f6c_dd1d)
        };
        let mut xs = Vec::with_capacity(4096);
        for i in 0..4096 {
            let u = next();
            let x = if i % 4 == 0 {
                f64::from_bits(u) // raw bits: NaNs, infs, subnormals, huge
            } else {
                // Uniform over [-760, 730]: spans under/overflow edges
                // and the entire finite-result range.
                (u >> 11) as f64 / (1u64 << 53) as f64 * 1490.0 - 760.0
            };
            xs.push(x);
        }
        let mut out = vec![0.0; xs.len()];
        exp_slice(&xs, &mut out);
        for (i, (&x, &o)) in xs.iter().zip(&out).enumerate() {
            assert_eq!(o.to_bits(), exp1(x).to_bits(), "elem {i} x={x:e}");
            let want = x.exp();
            if vexp_active() {
                if want.is_finite() && want.is_normal() {
                    let ulps = (o.to_bits() as i64 - want.to_bits() as i64).unsigned_abs();
                    assert!(ulps <= 4, "elem {i} x={x:e} got={o:e} want={want:e} ulps={ulps}");
                }
            } else {
                assert_eq!(o.to_bits(), want.to_bits(), "elem {i} x={x:e}");
            }
        }
    }

    #[test]
    fn close_to_libm_when_active() {
        // The polynomial family is allowed to differ from libm, but only
        // by a few ulp on finite results; the libm family must be exact.
        for &x in &corpus() {
            let got = exp1(x);
            let want = x.exp();
            if vexp_active() {
                if want.is_finite() && want > 0.0 && want.is_normal() {
                    let ulps = (got.to_bits() as i64 - want.to_bits() as i64).unsigned_abs();
                    assert!(ulps <= 4, "x={x:e} got={got:e} want={want:e} ulps={ulps}");
                }
            } else {
                assert_eq!(got.to_bits(), want.to_bits(), "x={x:e}");
            }
        }
    }
}
