//! GPU architecture descriptors for the two machines of the paper's
//! evaluation (§6): a Tesla C2070 (Fermi) and a Tesla K20c (Kepler).
//!
//! All headline numbers come straight from the paper or from the public
//! specifications of those parts; derived quantities (peak GFLOPS) are
//! cross-checked against the paper's §6.1 arithmetic in tests.


/// Which broadcast mechanism constant deduplication uses (paper §5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BroadcastKind {
    /// Fermi: write through a shared-memory mirror location (Listing 2).
    SharedMirror,
    /// Kepler: pairs of 32-bit shuffle instructions (Listing 3).
    Shuffle,
}

/// A simulated GPU architecture.
#[derive(Debug, Clone)]
pub struct GpuArch {
    /// Human-readable name.
    pub name: &'static str,
    /// Streaming multiprocessor count.
    pub sms: usize,
    /// SM clock in MHz.
    pub sm_clock_mhz: f64,
    /// DRAM clock in MHz (reported for completeness).
    pub dram_clock_mhz: f64,
    /// Double-precision fused-multiply-add issue width per SM, in lanes per
    /// cycle (Fermi: 16 — one warp instruction every other cycle; Kepler:
    /// 64 — one per quad every other cycle, paper §6.1).
    pub dp_lanes_per_cycle: usize,
    /// Fraction of theoretical DP issue achievable by optimized kernels
    /// (paper §6.1: optimized Fermi kernels such as DGEMM reach ~300 of
    /// 513 GFLOPS).
    pub dp_efficiency: f64,
    /// Extra throughput limit for DFMA instructions whose third operand is
    /// read from the constant cache, as a fraction of `dp` throughput
    /// (paper §6.1 measured ~617/750 on Kepler for the exp Taylor series).
    pub dp_const_operand_factor: f64,
    /// Maximum 32-bit registers per thread (Fermi 63, Kepler 255).
    pub max_regs_per_thread: usize,
    /// 32-bit registers per SM (128 KB Fermi, 256 KB Kepler).
    pub regs_per_sm: usize,
    /// Shared memory per SM in bytes (48 KB configurations).
    pub shared_per_sm: usize,
    /// Constant cache working set in bytes (8 KB on both, paper §3.2).
    pub const_cache_bytes: usize,
    /// Effective instruction-cache capacity in bytes (per SM). Models the
    /// L1i + L1.5i hierarchy of Fermi/Kepler-era parts: the 8 KB L1i is
    /// backed by a larger mid-level instruction cache whose misses are the
    /// expensive ones; thrash begins when concurrent warp code paths
    /// exceed this combined capacity (§5, Figure 9).
    pub icache_bytes: usize,
    /// Instruction cache line size in bytes.
    pub icache_line_bytes: usize,
    /// Instruction cache associativity.
    pub icache_assoc: usize,
    /// Encoded instruction size in bytes (8 on Fermi, 8 on Kepler).
    pub instr_bytes: usize,
    /// Max resident warps per SM (48 Fermi, 64 Kepler).
    pub max_warps_per_sm: usize,
    /// Max resident CTAs per SM (8 Fermi, 16 Kepler).
    pub max_ctas_per_sm: usize,
    /// Named barriers per SM — a conserved resource (16, paper §4.2).
    pub named_barriers_per_sm: usize,
    /// DRAM bandwidth in GB/s with ECC disabled (§6: ECC was disabled).
    pub dram_bw_gbs: f64,
    /// Local-memory (spill) path bandwidth in GB/s — limited by the L1/LSU
    /// pipe, not DRAM (paper §6.3 footnote: ~100 GB/s on K20c, 85 on C2070).
    pub local_bw_gbs: f64,
    /// Shared-memory access latency in cycles (paper §6.3: 30 cycles).
    pub shared_latency: f64,
    /// Shared-memory warp-accesses per cycle per SM.
    pub shared_throughput: f64,
    /// Global-memory latency in cycles.
    pub global_latency: f64,
    /// Constant-cache miss latency in cycles.
    pub const_miss_latency: f64,
    /// Constant-cache *hit* latency in cycles — constant loads feed
    /// dependent arithmetic, so even hits stall at low occupancy (§6.1:
    /// "the latency of loading constants was still exposed").
    pub const_hit_latency: f64,
    /// Instruction-cache miss penalty in cycles.
    pub icache_miss_penalty: f64,
    /// Named-barrier synchronization overhead in cycles per `bar.sync`
    /// (covers straggler wait; §6.2 measures its aggregate effect).
    pub barrier_sync_cycles: f64,
    /// Which constant-broadcast lowering this architecture wants (§5.2).
    pub broadcast: BroadcastKind,
    /// Whether warp shuffle instructions exist (Kepler yes, Fermi no).
    pub has_shfl: bool,
    /// Whether LDG texture-path loads exist (Kepler yes).
    pub has_ldg: bool,
    /// Whether the architecture has an async-copy engine that moves
    /// global memory into shared memory without staging through
    /// registers (Hopper-class `cp.async`; absent on Fermi/Kepler).
    pub has_async_copy: bool,
    /// Fixed kernel launch overhead in microseconds.
    pub launch_overhead_us: f64,
}

impl GpuArch {
    /// The paper's Fermi machine: Tesla C2070, 14 SMs @ 1147 MHz,
    /// 1494 MHz DRAM (§6).
    pub fn fermi_c2070() -> GpuArch {
        GpuArch {
            name: "Tesla C2070 (Fermi)",
            sms: 14,
            sm_clock_mhz: 1147.0,
            dram_clock_mhz: 1494.0,
            dp_lanes_per_cycle: 16,
            dp_efficiency: 0.62, // ~300 of 513 GFLOPS practical (§6.1)
            dp_const_operand_factor: 0.95,
            max_regs_per_thread: 63,
            regs_per_sm: 32 * 1024,
            shared_per_sm: 48 * 1024,
            const_cache_bytes: 8 * 1024,
            icache_bytes: 48 * 1024,
            icache_line_bytes: 64,
            icache_assoc: 4,
            instr_bytes: 8,
            max_warps_per_sm: 48,
            max_ctas_per_sm: 8,
            named_barriers_per_sm: 16,
            dram_bw_gbs: 144.0,
            local_bw_gbs: 85.0,
            shared_latency: 30.0,
            shared_throughput: 1.0,
            global_latency: 500.0,
            const_miss_latency: 250.0,
            const_hit_latency: 40.0,
            icache_miss_penalty: 30.0,
            barrier_sync_cycles: 22.0,
            broadcast: BroadcastKind::SharedMirror,
            has_shfl: false,
            has_ldg: false,
            has_async_copy: false,
            launch_overhead_us: 8.0,
        }
    }

    /// The paper's Kepler machine: Tesla K20c, 13 SMs @ 705 MHz,
    /// 2600 MHz DRAM (§6).
    pub fn kepler_k20c() -> GpuArch {
        GpuArch {
            name: "Tesla K20c (Kepler)",
            sms: 13,
            sm_clock_mhz: 705.0,
            dram_clock_mhz: 2600.0,
            dp_lanes_per_cycle: 64,
            dp_efficiency: 0.64, // ~750 of 1173 GFLOPS practical (§6.1)
            dp_const_operand_factor: 0.82, // 617.7 vs ~750 GFLOPS (§6.1)
            max_regs_per_thread: 255,
            regs_per_sm: 64 * 1024,
            shared_per_sm: 48 * 1024,
            const_cache_bytes: 8 * 1024,
            icache_bytes: 48 * 1024,
            icache_line_bytes: 64,
            icache_assoc: 4,
            instr_bytes: 8,
            max_warps_per_sm: 64,
            max_ctas_per_sm: 16,
            named_barriers_per_sm: 16,
            dram_bw_gbs: 208.0,
            local_bw_gbs: 100.0,
            shared_latency: 30.0,
            shared_throughput: 1.0,
            global_latency: 450.0,
            const_miss_latency: 200.0,
            const_hit_latency: 40.0,
            icache_miss_penalty: 30.0,
            barrier_sync_cycles: 25.0,
            broadcast: BroadcastKind::Shuffle,
            has_shfl: true,
            has_ldg: true,
            has_async_copy: false,
            launch_overhead_us: 6.0,
        }
    }

    /// A Hopper-class machine (H100-like composite): much larger shared
    /// memory, an async-copy engine, a wider double-precision issue path,
    /// and a deeper named-barrier file (modeling the move to
    /// shared-memory `mbarrier` objects, which lifts the hard 16-barrier
    /// ceiling of Fermi/Kepler). Numbers are representative of the
    /// public H100 specifications rather than tied to one SKU; the
    /// simulator's K-stage pipelined schedules target this description.
    pub fn hopper() -> GpuArch {
        GpuArch {
            name: "H100 (Hopper)",
            sms: 114,
            sm_clock_mhz: 1620.0,
            dram_clock_mhz: 2619.0,
            // Twice Kepler's DP lane count: one warp instruction per
            // cycle through `timing::issue_width` (128 / 16 = 8 slots).
            dp_lanes_per_cycle: 128,
            dp_efficiency: 0.70,
            dp_const_operand_factor: 0.90,
            max_regs_per_thread: 255,
            regs_per_sm: 64 * 1024,
            // 228 KB configurable shared memory per SM.
            shared_per_sm: 228 * 1024,
            const_cache_bytes: 64 * 1024,
            icache_bytes: 128 * 1024,
            icache_line_bytes: 128,
            icache_assoc: 4,
            instr_bytes: 16,
            max_warps_per_sm: 64,
            max_ctas_per_sm: 32,
            // mbarrier objects live in shared memory, so the budget is
            // far deeper than the 16 hardware named barriers.
            named_barriers_per_sm: 64,
            dram_bw_gbs: 2039.0,
            local_bw_gbs: 800.0,
            shared_latency: 29.0,
            shared_throughput: 1.0,
            global_latency: 600.0,
            const_miss_latency: 200.0,
            const_hit_latency: 35.0,
            icache_miss_penalty: 30.0,
            barrier_sync_cycles: 20.0,
            broadcast: BroadcastKind::Shuffle,
            has_shfl: true,
            has_ldg: true,
            has_async_copy: true,
            launch_overhead_us: 4.0,
        }
    }

    /// Theoretical peak double-precision GFLOPS:
    /// `SMs * clock * dp_lanes * 2 (FMA) / 1e3`.
    pub fn peak_dp_gflops(&self) -> f64 {
        self.sms as f64 * self.sm_clock_mhz * self.dp_lanes_per_cycle as f64 * 2.0 / 1.0e3
    }

    /// Practical peak after issue efficiency.
    pub fn practical_dp_gflops(&self) -> f64 {
        self.peak_dp_gflops() * self.dp_efficiency
    }

    /// SM clock in Hz.
    pub fn sm_clock_hz(&self) -> f64 {
        self.sm_clock_mhz * 1.0e6
    }

    /// DRAM bytes per SM-cycle available to one SM's share of bandwidth.
    pub fn dram_bytes_per_sm_cycle(&self) -> f64 {
        self.dram_bw_gbs * 1.0e9 / (self.sms as f64 * self.sm_clock_hz())
    }

    /// Local-path bytes per SM-cycle.
    pub fn local_bytes_per_sm_cycle(&self) -> f64 {
        self.local_bw_gbs * 1.0e9 / (self.sms as f64 * self.sm_clock_hz())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fermi_peak_matches_paper() {
        // Paper §6.1: "theoretical math throughput of 513 GFLOPS" for C2070.
        let a = GpuArch::fermi_c2070();
        assert!((a.peak_dp_gflops() - 513.0).abs() < 2.0, "{}", a.peak_dp_gflops());
    }

    #[test]
    fn kepler_peak_matches_paper() {
        // Paper §6.1: "theoretical throughput of 1173 GFLOPS on a K20c".
        let a = GpuArch::kepler_k20c();
        assert!((a.peak_dp_gflops() - 1173.0).abs() < 5.0, "{}", a.peak_dp_gflops());
    }

    #[test]
    fn practical_peaks_match_section6() {
        // ~300 GFLOPS practical on Fermi, ~750 on Kepler.
        let f = GpuArch::fermi_c2070().practical_dp_gflops();
        let k = GpuArch::kepler_k20c().practical_dp_gflops();
        assert!((290.0..330.0).contains(&f), "{f}");
        assert!((700.0..790.0).contains(&k), "{k}");
    }

    #[test]
    fn kepler_has_shuffle_fermi_does_not() {
        assert!(GpuArch::kepler_k20c().has_shfl);
        assert!(!GpuArch::fermi_c2070().has_shfl);
        assert_eq!(GpuArch::fermi_c2070().broadcast, BroadcastKind::SharedMirror);
        assert_eq!(GpuArch::kepler_k20c().broadcast, BroadcastKind::Shuffle);
    }

    #[test]
    fn register_ceilings_match_paper() {
        // Paper §3.2: "Fermi GPUs only support 64 registers per thread,
        // while Kepler GPUs support 256" (architectural 63/255 usable).
        assert_eq!(GpuArch::fermi_c2070().max_regs_per_thread, 63);
        assert_eq!(GpuArch::kepler_k20c().max_regs_per_thread, 255);
    }

    #[test]
    fn both_have_16_named_barriers_and_8kb_ccache() {
        for a in [GpuArch::fermi_c2070(), GpuArch::kepler_k20c()] {
            assert_eq!(a.named_barriers_per_sm, 16);
            assert_eq!(a.const_cache_bytes, 8192);
        }
    }

    #[test]
    fn only_hopper_has_async_copy() {
        assert!(GpuArch::hopper().has_async_copy);
        assert!(!GpuArch::fermi_c2070().has_async_copy);
        assert!(!GpuArch::kepler_k20c().has_async_copy);
    }

    #[test]
    fn hopper_is_strictly_bigger_where_pipelining_needs_it() {
        let h = GpuArch::hopper();
        let k = GpuArch::kepler_k20c();
        // K-stage buffer rings need SMEM headroom and barrier colors.
        assert!(h.shared_per_sm > 4 * k.shared_per_sm);
        assert!(h.named_barriers_per_sm >= 4 * k.named_barriers_per_sm);
        // Wider issue: double Kepler's DP lanes.
        assert_eq!(h.dp_lanes_per_cycle, 2 * k.dp_lanes_per_cycle);
        assert_eq!(h.broadcast, BroadcastKind::Shuffle);
        assert!(h.has_shfl && h.has_ldg);
    }
}
