//! Fixed-size 32-lane chunk kernels for the SIMT inner loops.
//!
//! Both the interpreter's fast path ([`crate::interp::exec_fast`]) and the
//! segment-compiled engine ([`crate::engine`]) execute every instruction
//! over all 32 lanes of a warp. This module gives those loops one shared,
//! autovectorization-friendly shape:
//!
//! * every kernel works on `[f64; WARP_SIZE]` chunks (the *lane chunk*),
//!   so LLVM sees exact trip counts and needs no bounds checks or runtime
//!   alias analysis inside the loop;
//! * on x86-64 each kernel also has AVX2+FMA and AVX-512 specializations
//!   (the same scalar body compiled under `#[target_feature]`, so
//!   `a.mul_add(b, c)` lowers to `vfmadd` instead of a libm call and the
//!   elementwise loops vectorize 4 or 8 lanes wide), selected by a
//!   runtime-CPUID branch per call.
//!   Keeping each specialization a small standalone function is load-
//!   bearing: an experiment that instead compiled the entire dispatch
//!   loops under `#[target_feature]` (to remove the per-call branch) made
//!   LLVM fully unroll the lane loops to *scalar* code — the noalias facts
//!   carried by the `&Lanes` parameters are what let the vectorizer work;
//! * results are **bit-identical** between the scalar and vector paths:
//!   only IEEE-exact operations (+, -, *, /, sqrt, fused multiply-add,
//!   negation, compares, selects, copies) are specialized. Operations
//!   whose vectorized lowering is *not* pinned down to the bit
//!   (`max`/`min` signed-zero ordering) live in `#[inline(never)]`
//!   helpers so every caller shares one machine-code copy; libm calls
//!   (`powf`, `exp`, `ln`, `log10`, `cbrt`) stay scalar in the callers.
//!
//! Operand order is preserved exactly as written in each kernel body:
//! IEEE addition is commutative in value but x86 propagates the *first*
//! operand's payload when both inputs are NaN, so callers that need
//! `c + p` rather than `p + c` get their own kernel variant.

use crate::WARP_SIZE;

/// One warp's worth of f64 lanes — the unit every kernel operates on.
pub(crate) type Lanes = [f64; WARP_SIZE];

/// Whether the AVX2+FMA specializations are usable on this machine.
/// Detected once; a relaxed atomic read afterwards. Shared with
/// [`crate::vmath`], which gates its polynomial exp on the same check.
#[cfg(target_arch = "x86_64")]
#[inline(always)]
pub(crate) fn simd_ok() -> bool {
    use std::sync::OnceLock;
    static OK: OnceLock<bool> = OnceLock::new();
    *OK.get_or_init(|| {
        std::is_x86_feature_detected!("avx2") && std::is_x86_feature_detected!("fma")
    })
}

#[cfg(not(target_arch = "x86_64"))]
#[inline(always)]
pub(crate) fn simd_ok() -> bool {
    false
}

/// Whether the AVX-512 specializations are usable on this machine
/// (F for the 8-wide f64 ops, DQ for `vcvtqq2pd` in the vmath exp).
/// Same once-detected pattern as [`simd_ok`].
#[cfg(target_arch = "x86_64")]
#[inline(always)]
pub(crate) fn simd512_ok() -> bool {
    use std::sync::OnceLock;
    static OK: OnceLock<bool> = OnceLock::new();
    *OK.get_or_init(|| {
        std::is_x86_feature_detected!("avx512f") && std::is_x86_feature_detected!("avx512dq")
    })
}

#[cfg(not(target_arch = "x86_64"))]
#[inline(always)]
pub(crate) fn simd512_ok() -> bool {
    false
}

/// Define one lane kernel: a single scalar body, compiled three times —
/// at the crate's baseline target features, under AVX2+FMA, and under
/// AVX-512 (8-wide f64, halving the trip count of every lane loop) —
/// with a runtime dispatch on the detected CPU. The compilations are
/// bit-identical for the IEEE-exact operations this module restricts
/// itself to (vector width never changes an exactly rounded elementwise
/// result), so the dispatch is invisible to differential tests.
macro_rules! lane_kernel {
    ($(#[$meta:meta])* $name:ident, ($($p:ident : $t:ty),*), $body:block) => {
        $(#[$meta])*
        #[inline]
        pub(crate) fn $name($($p: $t),*) {
            #[inline(always)]
            fn body($($p: $t),*) $body
            #[cfg(target_arch = "x86_64")]
            {
                #[target_feature(enable = "avx512f", enable = "avx512dq")]
                unsafe fn vect512($($p: $t),*) {
                    body($($p),*)
                }
                #[target_feature(enable = "avx2", enable = "fma")]
                unsafe fn vect($($p: $t),*) {
                    body($($p),*)
                }
                if simd512_ok() {
                    // SAFETY: `simd512_ok` verified AVX-512 via CPUID.
                    return unsafe { vect512($($p),*) };
                }
                if simd_ok() {
                    // SAFETY: `simd_ok` verified AVX2+FMA via CPUID.
                    return unsafe { vect($($p),*) };
                }
            }
            body($($p),*)
        }
    };
}

lane_kernel!(add, (a: &Lanes, b: &Lanes, out: &mut Lanes), {
    for l in 0..WARP_SIZE {
        out[l] = a[l] + b[l];
    }
});

lane_kernel!(sub, (a: &Lanes, b: &Lanes, out: &mut Lanes), {
    for l in 0..WARP_SIZE {
        out[l] = a[l] - b[l];
    }
});

lane_kernel!(mul, (a: &Lanes, b: &Lanes, out: &mut Lanes), {
    for l in 0..WARP_SIZE {
        out[l] = a[l] * b[l];
    }
});

lane_kernel!(div, (a: &Lanes, b: &Lanes, out: &mut Lanes), {
    for l in 0..WARP_SIZE {
        out[l] = a[l] / b[l];
    }
});

lane_kernel!(
    /// Fused multiply-add (single rounding), as `f64::mul_add`.
    fma,
    (a: &Lanes, b: &Lanes, c: &Lanes, out: &mut Lanes),
    {
        for l in 0..WARP_SIZE {
            out[l] = a[l].mul_add(b[l], c[l]);
        }
    }
);

lane_kernel!(sqrt, (a: &Lanes, out: &mut Lanes), {
    for l in 0..WARP_SIZE {
        out[l] = a[l].sqrt();
    }
});

lane_kernel!(neg, (a: &Lanes, out: &mut Lanes), {
    for l in 0..WARP_SIZE {
        out[l] = -a[l];
    }
});

lane_kernel!(
    /// Branch-free select: `out[l] = if pred[l] != 0.0 { a[l] } else { b[l] }`.
    sel,
    (pred: &Lanes, a: &Lanes, b: &Lanes, out: &mut Lanes),
    {
        for l in 0..WARP_SIZE {
            out[l] = if pred[l] != 0.0 { a[l] } else { b[l] };
        }
    }
);

/// Arithmetic kind for the in-place binary kernels, mirroring the
/// IEEE-exact subset of the decoded `BinKind` (the ±0-sensitive
/// `max`/`min` and libm `pow` stay on the snapshotting path).
#[derive(Debug, Clone, Copy)]
pub(crate) enum ArithKind {
    Add,
    Sub,
    Mul,
    Div,
}

lane_kernel!(
    /// `d[l] = d[l] <op> b[l]` — the accumulator shape `d = d op x`.
    /// Register chunks are WARP_SIZE-aligned, so an operand chunk either
    /// *is* the destination chunk or is disjoint from it; these in-place
    /// forms replace the 256-byte operand snapshot the generic path
    /// takes when the left operand aliases the destination. Identical
    /// IEEE ops in identical order — bit-identical to snapshot-then-op.
    bin_in_a,
    (kind: ArithKind, d: &mut Lanes, b: &Lanes),
    {
        macro_rules! arm {
            ($op:tt) => {{
                // Not `d[l] $op= b[l]`: the compound form changes the
                // LLVM IR shape enough that release codegen commutes the
                // operands of the (mathematically commutative) add/mul,
                // which flips NaN-payload propagation and breaks the
                // engine-vs-interpreter bit-identity proptests. Keep the
                // exact expression the snapshot path evaluates.
                #[allow(clippy::assign_op_pattern)]
                for l in 0..WARP_SIZE {
                    d[l] = d[l] $op b[l];
                }
            }};
        }
        match kind {
            ArithKind::Add => arm!(+),
            ArithKind::Sub => arm!(-),
            ArithKind::Mul => arm!(*),
            ArithKind::Div => arm!(/),
        }
    }
);

lane_kernel!(
    /// `d[l] = a[l] <op> d[l]` — the right operand aliases the
    /// destination. Operand order is preserved (x86 NaN-payload
    /// propagation follows the first operand), so this is not
    /// [`bin_in_a`] with arguments swapped.
    bin_in_b,
    (kind: ArithKind, a: &Lanes, d: &mut Lanes),
    {
        macro_rules! arm {
            ($op:tt) => {{
                // Not an `op=`: the lint's rewrite would swap operand
                // order, which changes NaN-payload propagation.
                #[allow(clippy::assign_op_pattern)]
                for l in 0..WARP_SIZE {
                    d[l] = a[l] $op d[l];
                }
            }};
        }
        match kind {
            ArithKind::Add => arm!(+),
            ArithKind::Sub => arm!(-),
            ArithKind::Mul => arm!(*),
            ArithKind::Div => arm!(/),
        }
    }
);

lane_kernel!(
    /// `d[l] = d[l] <op> d[l]` — both operands alias the destination.
    bin_in_aa,
    (kind: ArithKind, d: &mut Lanes),
    {
        macro_rules! arm {
            ($op:tt) => {
                for l in 0..WARP_SIZE {
                    d[l] = d[l] $op d[l];
                }
            };
        }
        match kind {
            ArithKind::Add => arm!(+),
            ArithKind::Sub => arm!(-),
            ArithKind::Mul => arm!(*),
            ArithKind::Div => arm!(/),
        }
    }
);

lane_kernel!(
    /// `d[l] = fma(a[l], b[l], d[l])` — the multiply-accumulate shape
    /// with the addend aliasing the destination.
    fma_in_c,
    (a: &Lanes, b: &Lanes, d: &mut Lanes),
    {
        for l in 0..WARP_SIZE {
            d[l] = a[l].mul_add(b[l], d[l]);
        }
    }
);

lane_kernel!(
    /// `d[l] = fma(d[l], b[l], c[l])` — the first factor aliases the
    /// destination.
    fma_in_a,
    (d: &mut Lanes, b: &Lanes, c: &Lanes),
    {
        for l in 0..WARP_SIZE {
            d[l] = d[l].mul_add(b[l], c[l]);
        }
    }
);

/// IEEE maxNum per lane. `#[inline(never)]`: `f64::max` lowers to an LLVM
/// intrinsic whose vectorized form may order +0.0/-0.0 differently from
/// the scalar form, so the engine's AVX2-compiled loop and the
/// interpreter's baseline loop must share this single machine-code copy to
/// stay bit-identical on signed-zero operands.
#[inline(never)]
pub(crate) fn max(a: &Lanes, b: &Lanes, out: &mut Lanes) {
    for l in 0..WARP_SIZE {
        out[l] = a[l].max(b[l]);
    }
}

/// IEEE minNum per lane; see [`max`] for why this is `#[inline(never)]`.
#[inline(never)]
pub(crate) fn min(a: &Lanes, b: &Lanes, out: &mut Lanes) {
    for l in 0..WARP_SIZE {
        out[l] = a[l].min(b[l]);
    }
}

/// Comparison kind for [`cmp`], mirroring [`crate::isa::Cmp`] without
/// dragging the ISA into this leaf module.
#[derive(Debug, Clone, Copy)]
pub(crate) enum CmpKind {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

lane_kernel!(
    /// Compare producing 0.0/1.0 per lane. The kind match sits outside the
    /// lane loop so each arm is an independently vectorizable loop.
    cmp,
    (kind: CmpKind, a: &Lanes, b: &Lanes, out: &mut Lanes),
    {
        macro_rules! arm {
            ($op:tt) => {
                for l in 0..WARP_SIZE {
                    out[l] = if a[l] $op b[l] { 1.0 } else { 0.0 };
                }
            };
        }
        match kind {
            CmpKind::Lt => arm!(<),
            CmpKind::Le => arm!(<=),
            CmpKind::Gt => arm!(>),
            CmpKind::Ge => arm!(>=),
            CmpKind::Eq => arm!(==),
            CmpKind::Ne => arm!(!=),
        }
    }
);

/// Two-rounding fused micro-op shapes for the engine's mul→add/sub fusion
/// (see `crate::engine`): the product `p = a*b` rounds once, then the
/// second operation rounds again — exactly the two instructions the
/// interpreter would execute, just without the dispatch in between.
/// Operand order encodes x86 NaN-payload propagation: `AddPC` is `p + c`,
/// `AddCP` is `c + p`, and likewise for subtraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FusedBin {
    AddPC,
    AddCP,
    SubPC,
    SubCP,
}

lane_kernel!(
    /// `t[l] = a[l]*b[l]; d[l] = t[l] <op> c[l]` with separate roundings,
    /// writing both the intermediate product chunk and the result chunk
    /// (the product register stays architecturally visible).
    mul_then_bin_both,
    (kind: FusedBin, a: &Lanes, b: &Lanes, c: &Lanes, t: &mut Lanes, d: &mut Lanes),
    {
        macro_rules! arm {
            (|$p:ident, $cv:ident| $e:expr) => {
                for l in 0..WARP_SIZE {
                    let $p = a[l] * b[l];
                    t[l] = $p;
                    let $cv = c[l];
                    d[l] = $e;
                }
            };
        }
        match kind {
            FusedBin::AddPC => arm!(|p, cv| p + cv),
            FusedBin::AddCP => arm!(|p, cv| cv + p),
            FusedBin::SubPC => arm!(|p, cv| p - cv),
            FusedBin::SubCP => arm!(|p, cv| cv - p),
        }
    }
);

lane_kernel!(
    /// [`mul_then_bin_both`] for the case where the product register and
    /// the result register are the same chunk: the intermediate write is
    /// immediately overwritten, so only the final value lands.
    mul_then_bin_same,
    (kind: FusedBin, a: &Lanes, b: &Lanes, c: &Lanes, d: &mut Lanes),
    {
        macro_rules! arm {
            (|$p:ident, $cv:ident| $e:expr) => {
                for l in 0..WARP_SIZE {
                    let $p = a[l] * b[l];
                    let $cv = c[l];
                    d[l] = $e;
                }
            };
        }
        match kind {
            FusedBin::AddPC => arm!(|p, cv| p + cv),
            FusedBin::AddCP => arm!(|p, cv| cv + p),
            FusedBin::SubPC => arm!(|p, cv| p - cv),
            FusedBin::SubCP => arm!(|p, cv| cv - p),
        }
    }
);

/// A resolved operand: either a shared reference to a live register chunk
/// (proven disjoint from every destination chunk of the current op) or an
/// owned snapshot (immediates, and operands that alias a destination).
/// The size gap between the variants is the point: `Own` keeps the
/// snapshot on the stack of the op being executed — boxing it would put a
/// heap allocation on the hottest path in the simulator.
#[allow(clippy::large_enum_variant)]
pub(crate) enum OpLanes<'a> {
    Ref(&'a Lanes),
    Own(Lanes),
}

impl OpLanes<'_> {
    #[inline(always)]
    pub(crate) fn get(&self) -> &Lanes {
        match self {
            OpLanes::Ref(r) => r,
            OpLanes::Own(v) => v,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(off: f64) -> Lanes {
        std::array::from_fn(|l| off + l as f64 * 0.5)
    }

    #[test]
    fn kernels_match_scalar_reference() {
        let a = seq(1.0);
        let b = seq(-3.0);
        let c = seq(0.25);
        let mut out = [0.0; WARP_SIZE];

        add(&a, &b, &mut out);
        for l in 0..WARP_SIZE {
            assert_eq!(out[l].to_bits(), (a[l] + b[l]).to_bits());
        }
        fma(&a, &b, &c, &mut out);
        for l in 0..WARP_SIZE {
            assert_eq!(out[l].to_bits(), a[l].mul_add(b[l], c[l]).to_bits());
        }
        cmp(CmpKind::Lt, &a, &b, &mut out);
        for l in 0..WARP_SIZE {
            assert_eq!(out[l], if a[l] < b[l] { 1.0 } else { 0.0 });
        }
    }

    #[test]
    fn fused_double_rounding_matches_two_ops() {
        // The fused kernels must round twice — NOT like mul_add.
        let a = seq(1.0e8);
        let b = seq(3.0e-9);
        let c = seq(1.0);
        let mut t = [0.0; WARP_SIZE];
        let mut d = [0.0; WARP_SIZE];
        mul_then_bin_both(FusedBin::AddPC, &a, &b, &c, &mut t, &mut d);
        for l in 0..WARP_SIZE {
            let p = a[l] * b[l];
            assert_eq!(t[l].to_bits(), p.to_bits());
            assert_eq!(d[l].to_bits(), (p + c[l]).to_bits());
        }
        let mut d2 = [0.0; WARP_SIZE];
        mul_then_bin_same(FusedBin::SubCP, &a, &b, &c, &mut d2);
        for l in 0..WARP_SIZE {
            assert_eq!(d2[l].to_bits(), (c[l] - a[l] * b[l]).to_bits());
        }
    }

    #[test]
    fn special_values_roundtrip_bitwise() {
        // NaN / Inf / denormal / negative zero flow through unchanged
        // between the scalar and (when available) vector paths — both run
        // the same IEEE ops, so comparing against inline scalar compute
        // covers whichever path dispatched.
        let mut a = seq(0.0);
        a[0] = f64::NAN;
        a[1] = f64::INFINITY;
        a[2] = f64::NEG_INFINITY;
        a[3] = -0.0;
        a[4] = f64::MIN_POSITIVE / 2.0; // denormal
        let b = seq(1.0);
        let mut out = [0.0; WARP_SIZE];
        mul(&a, &b, &mut out);
        for l in 0..WARP_SIZE {
            assert_eq!(out[l].to_bits(), (a[l] * b[l]).to_bits(), "lane {l}");
        }
        sub(&a, &a, &mut out);
        assert!(out[0].is_nan());
        assert!(out[1].is_nan()); // inf - inf
        assert_eq!(out[3].to_bits(), (-0.0f64 - -0.0f64).to_bits());
    }
}
